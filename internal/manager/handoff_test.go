package manager

import (
	"testing"
	"time"

	"dodo/internal/bulk"
	"dodo/internal/transport"
	"dodo/internal/wire"
)

// handoffRig is a rig with a tunable handoff grace window.
func handoffRig(t *testing.T, grace time.Duration) *testRig {
	t.Helper()
	n := transport.NewNetwork()
	cfg := fastCfg()
	cfg.HandoffGrace = grace
	mgr := New(n.Host("cmd"), cfg)
	cli := bulk.NewEndpoint(n.Host("client"), fastEndpointCfg(), clientHandler)
	t.Cleanup(func() { mgr.Close(); cli.Close() })
	return &testRig{n: n, mgr: mgr, cli: cli}
}

// drainHost sends the HostBusy announcement that opens the graceful
// reclaim overlay for addr.
func drainHost(t *testing.T, r *testRig, addr string, epoch uint64) {
	t.Helper()
	resp, err := r.cli.Call("cmd", &wire.HostStatus{HostAddr: addr, State: wire.HostBusy, Epoch: epoch})
	if err != nil || resp.(*wire.HostStatusAck).Status != wire.StatusOK {
		t.Fatalf("HostBusy announce: %v", err)
	}
}

func checkAlloc(t *testing.T, r *testRig, k wire.RegionKey) *wire.CheckAllocResp {
	t.Helper()
	resp, err := r.cli.Call("cmd", &wire.CheckAllocReq{Key: k})
	if err != nil {
		t.Fatalf("CheckAllocReq: %v", err)
	}
	return resp.(*wire.CheckAllocResp)
}

// TestHandoffRepointsRegionDirectory walks the whole manager-side
// sub-protocol: HostBusy opens the overlay (checkAlloc answers Busy,
// not Stale), HandoffOffer pre-allocates a target on the peer and
// returns the grant, HandoffDone atomically repoints the RD row, and
// the next checkAlloc revalidates the client onto the new host with the
// Fresh flag set.
func TestHandoffRepointsRegionDirectory(t *testing.T) {
	r := handoffRig(t, 10*time.Second)
	src := newFakeIMD(r.n, "imd1", 1<<20, 2)
	t.Cleanup(func() { src.ep.Close() })
	registerHost(t, r.cli, "cmd", "imd1", 2, 1<<20)

	k := key(4, 0)
	resp, err := r.cli.Call("cmd", &wire.AllocReq{Key: k, Length: 4096})
	if err != nil {
		t.Fatal(err)
	}
	ar := resp.(*wire.AllocResp)
	if ar.Status != wire.StatusOK || ar.Region.HostAddr != "imd1" {
		t.Fatalf("alloc = %+v", ar)
	}

	// The peer arrives after the allocation, so it holds nothing yet.
	dst := newFakeIMD(r.n, "imd2", 1<<20, 9)
	t.Cleanup(func() { dst.ep.Close() })
	registerHost(t, r.cli, "cmd", "imd2", 9, 1<<20)

	drainHost(t, r, "imd1", 2)
	if ca := checkAlloc(t, r, k); ca.Status != wire.StatusBusy {
		t.Fatalf("checkAlloc during drain = %v, want StatusBusy", ca.Status)
	}

	// The draining imd offers its region; the grant must target imd2
	// with a real pre-allocation behind it.
	resp, err = r.cli.Call("cmd", &wire.HandoffOffer{
		HostAddr: "imd1", Epoch: 2,
		Regions: []wire.HandoffRegion{{RegionID: ar.Region.RegionID, Length: 4096, Reads: 12}},
	})
	if err != nil {
		t.Fatal(err)
	}
	acc := resp.(*wire.HandoffAccept)
	if acc.Status != wire.StatusOK || len(acc.Grants) != 1 {
		t.Fatalf("HandoffAccept = %+v", acc)
	}
	g := acc.Grants[0]
	if g.OldRegionID != ar.Region.RegionID || g.Target.HostAddr != "imd2" || g.Target.Epoch != 9 {
		t.Fatalf("grant = %+v", g)
	}
	if !dst.has(g.Target.RegionID) {
		t.Fatal("manager granted a target it never allocated on the peer")
	}
	// The map holds until the outcome arrives.
	if ca := checkAlloc(t, r, k); ca.Status != wire.StatusBusy {
		t.Fatalf("checkAlloc after offer = %v, want StatusBusy", ca.Status)
	}

	resp, err = r.cli.Call("cmd", &wire.HandoffDone{HostAddr: "imd1", OldRegionID: g.OldRegionID, Status: wire.StatusOK})
	if err != nil || resp.(*wire.HostStatusAck).Status != wire.StatusOK {
		t.Fatalf("HandoffDone: %v", err)
	}
	ca := checkAlloc(t, r, k)
	if ca.Status != wire.StatusOK || !ca.Fresh || ca.Region != g.Target {
		t.Fatalf("checkAlloc after repoint = %+v, want OK/Fresh on %+v", ca, g.Target)
	}
	s := r.mgr.Stats()
	if s.HandoffOffers != 1 || s.HandoffPagesMoved != 1 || s.HandoffAborts != 0 || s.StaleDrops != 0 {
		t.Fatalf("stats = %+v", s)
	}
	if sched := r.mgr.HandoffSchedule(); len(sched) != 1 {
		t.Fatalf("HandoffSchedule = %v, want one entry", sched)
	}
}

// TestHandoffAbortFreesTargetAndExpiresToStale: a failed push aborts
// the grant (target freed on the peer), and once the overlay deadline
// passes, checkAlloc falls back to the stale-drop path so the client
// re-opens from disk instead of waiting forever.
func TestHandoffAbortFreesTargetAndExpiresToStale(t *testing.T) {
	r := handoffRig(t, 400*time.Millisecond)
	src := newFakeIMD(r.n, "imd1", 1<<20, 2)
	t.Cleanup(func() { src.ep.Close() })
	registerHost(t, r.cli, "cmd", "imd1", 2, 1<<20)
	k := key(5, 0)
	resp, err := r.cli.Call("cmd", &wire.AllocReq{Key: k, Length: 4096})
	if err != nil {
		t.Fatal(err)
	}
	ar := resp.(*wire.AllocResp)
	dst := newFakeIMD(r.n, "imd2", 1<<20, 9)
	t.Cleanup(func() { dst.ep.Close() })
	registerHost(t, r.cli, "cmd", "imd2", 9, 1<<20)

	drainHost(t, r, "imd1", 2)
	resp, err = r.cli.Call("cmd", &wire.HandoffOffer{
		HostAddr: "imd1", Epoch: 2,
		Regions: []wire.HandoffRegion{{RegionID: ar.Region.RegionID, Length: 4096}},
	})
	if err != nil {
		t.Fatal(err)
	}
	acc := resp.(*wire.HandoffAccept)
	if acc.Status != wire.StatusOK || len(acc.Grants) != 1 {
		t.Fatalf("HandoffAccept = %+v", acc)
	}
	tgt := acc.Grants[0].Target

	// The push failed; the imd reports the abort.
	if _, err := r.cli.Call("cmd", &wire.HandoffDone{
		HostAddr: "imd1", OldRegionID: ar.Region.RegionID, Status: wire.StatusBusy,
	}); err != nil {
		t.Fatal(err)
	}
	// The pre-allocated target is released on the peer (async notify).
	deadline := time.Now().Add(2 * time.Second)
	for dst.has(tgt.RegionID) {
		if time.Now().After(deadline) {
			t.Fatal("aborted grant's target region never freed on the peer")
		}
		time.Sleep(10 * time.Millisecond)
	}
	if s := r.mgr.Stats(); s.HandoffAborts != 1 || s.HandoffPagesMoved != 0 {
		t.Fatalf("stats after abort = %+v", s)
	}

	// Within the grace window the mapping still answers Busy; after it
	// expires the region is stale-dropped.
	deadline = time.Now().Add(5 * time.Second)
	for {
		ca := checkAlloc(t, r, k)
		if ca.Status == wire.StatusStale {
			break
		}
		if ca.Status != wire.StatusBusy {
			t.Fatalf("checkAlloc = %v, want Busy then Stale", ca.Status)
		}
		if time.Now().After(deadline) {
			t.Fatal("overlay never expired to the stale-drop path")
		}
		time.Sleep(25 * time.Millisecond)
	}
	if s := r.mgr.Stats(); s.StaleDrops != 1 {
		t.Fatalf("StaleDrops = %d, want 1", s.StaleDrops)
	}
}

// grantOne sets up the standard two-host drain scene on r: imd1
// (epoch 2) holds one allocated region, imd2 (epoch 9) arrives after
// the allocation, imd1 announces Busy and offers its region, and the
// manager grants a pre-allocated target on imd2. Returns the region
// key, the old region id, the grant, and the peer imd.
func grantOne(t *testing.T, r *testRig) (wire.RegionKey, uint64, wire.HandoffGrant, *fakeIMD) {
	t.Helper()
	src := newFakeIMD(r.n, "imd1", 1<<20, 2)
	t.Cleanup(func() { src.ep.Close() })
	registerHost(t, r.cli, "cmd", "imd1", 2, 1<<20)
	k := key(6, 0)
	resp, err := r.cli.Call("cmd", &wire.AllocReq{Key: k, Length: 4096})
	if err != nil {
		t.Fatal(err)
	}
	ar := resp.(*wire.AllocResp)
	if ar.Status != wire.StatusOK || ar.Region.HostAddr != "imd1" {
		t.Fatalf("alloc = %+v", ar)
	}
	dst := newFakeIMD(r.n, "imd2", 1<<20, 9)
	t.Cleanup(func() { dst.ep.Close() })
	registerHost(t, r.cli, "cmd", "imd2", 9, 1<<20)
	drainHost(t, r, "imd1", 2)
	resp, err = r.cli.Call("cmd", &wire.HandoffOffer{
		HostAddr: "imd1", Epoch: 2,
		Regions: []wire.HandoffRegion{{RegionID: ar.Region.RegionID, Length: 4096}},
	})
	if err != nil {
		t.Fatal(err)
	}
	acc := resp.(*wire.HandoffAccept)
	if acc.Status != wire.StatusOK || len(acc.Grants) != 1 {
		t.Fatalf("HandoffAccept = %+v", acc)
	}
	if !dst.has(acc.Grants[0].Target.RegionID) {
		t.Fatal("grant has no pre-allocation behind it")
	}
	return k, ar.Region.RegionID, acc.Grants[0], dst
}

// TestDuplicateHostBusyKeepsGrants: the HostBusy announce travels via
// ep.Call, which retransmits — a delayed duplicate arriving after the
// HandoffOffer registered grants must not replace the overlay (that
// would wipe the grants map, so the HandoffDone below would find
// nothing to repoint and the pre-allocated target would leak).
func TestDuplicateHostBusyKeepsGrants(t *testing.T) {
	r := handoffRig(t, 10*time.Second)
	k, oldID, g, dst := grantOne(t, r)

	// The delayed duplicate of the original announce lands now.
	drainHost(t, r, "imd1", 2)

	resp, err := r.cli.Call("cmd", &wire.HandoffDone{HostAddr: "imd1", OldRegionID: oldID, Status: wire.StatusOK})
	if err != nil || resp.(*wire.HostStatusAck).Status != wire.StatusOK {
		t.Fatalf("HandoffDone after duplicate announce: %v (ack %+v)", err, resp)
	}
	ca := checkAlloc(t, r, k)
	if ca.Status != wire.StatusOK || !ca.Fresh || ca.Region != g.Target {
		t.Fatalf("checkAlloc after repoint = %+v, want OK/Fresh on %+v", ca, g.Target)
	}
	if !dst.has(g.Target.RegionID) {
		t.Fatal("repointed target region is gone on the peer")
	}
	if s := r.mgr.Stats(); s.HandoffPagesMoved != 1 || s.HandoffAborts != 0 {
		t.Fatalf("stats = %+v", s)
	}
}

// TestReRecruitFreesUnresolvedGrants: when the draining host comes back
// idle (new epoch) before its handoff resolves, discarding the overlay
// must free the grants' pre-allocated targets on the peers — otherwise
// each would hold pool space until the peer churned.
func TestReRecruitFreesUnresolvedGrants(t *testing.T) {
	r := handoffRig(t, 10*time.Second)
	_, _, g, dst := grantOne(t, r)

	// The drain died with the old incarnation; the host re-recruits.
	registerHost(t, r.cli, "cmd", "imd1", 3, 1<<20)
	deadline := time.Now().Add(2 * time.Second)
	for dst.has(g.Target.RegionID) {
		if time.Now().After(deadline) {
			t.Fatal("unresolved grant's target never freed after re-recruit")
		}
		time.Sleep(10 * time.Millisecond)
	}
	if s := r.mgr.Stats(); s.HandoffAborts != 1 {
		t.Fatalf("HandoffAborts = %d, want 1", s.HandoffAborts)
	}
}

// TestExpiredOverlaySweepFreesGrants: when the imd goes silent after
// the offer (e.g. the HandoffAccept response was lost, so it never
// pushes a page or reports an outcome) and no client checkAllocs the
// host's regions, the keep-alive sweep must still discard the expired
// overlay and free the pre-allocated targets.
func TestExpiredOverlaySweepFreesGrants(t *testing.T) {
	r := handoffRig(t, 300*time.Millisecond)
	_, _, g, dst := grantOne(t, r)

	// No HandoffDone, no checkAlloc traffic: only the sweep can notice.
	deadline := time.Now().Add(5 * time.Second)
	for dst.has(g.Target.RegionID) {
		if time.Now().After(deadline) {
			t.Fatal("expired overlay's grant target never freed by the sweep")
		}
		time.Sleep(20 * time.Millisecond)
	}
	if s := r.mgr.Stats(); s.HandoffAborts != 1 {
		t.Fatalf("HandoffAborts = %d, want 1", s.HandoffAborts)
	}
}

// TestHandoffOfferRequiresDrainingIdentity: offers from hosts that are
// not mid-drain (never announced Busy, wrong epoch, or re-recruited
// since) are refused with StatusStale and place nothing.
func TestHandoffOfferRequiresDrainingIdentity(t *testing.T) {
	r := handoffRig(t, 10*time.Second)
	dst := newFakeIMD(r.n, "imd2", 1<<20, 9)
	t.Cleanup(func() { dst.ep.Close() })
	registerHost(t, r.cli, "cmd", "imd2", 9, 1<<20)

	offer := &wire.HandoffOffer{HostAddr: "imd1", Epoch: 2,
		Regions: []wire.HandoffRegion{{RegionID: 1, Length: 4096}}}

	// Never announced busy.
	resp, err := r.cli.Call("cmd", offer)
	if err != nil {
		t.Fatal(err)
	}
	if acc := resp.(*wire.HandoffAccept); acc.Status != wire.StatusStale || len(acc.Grants) != 0 {
		t.Fatalf("offer from non-draining host = %+v", acc)
	}

	// Draining, but the offer carries a previous incarnation's epoch.
	drainHost(t, r, "imd1", 3)
	resp, err = r.cli.Call("cmd", offer)
	if err != nil {
		t.Fatal(err)
	}
	if acc := resp.(*wire.HandoffAccept); acc.Status != wire.StatusStale {
		t.Fatalf("stale-epoch offer = %+v", acc)
	}

	// Re-recruited: the overlay is gone, a late offer is refused.
	registerHost(t, r.cli, "cmd", "imd1", 4, 1<<20)
	resp, err = r.cli.Call("cmd", &wire.HandoffOffer{HostAddr: "imd1", Epoch: 3,
		Regions: []wire.HandoffRegion{{RegionID: 1, Length: 4096}}})
	if err != nil {
		t.Fatal(err)
	}
	if acc := resp.(*wire.HandoffAccept); acc.Status != wire.StatusStale {
		t.Fatalf("offer after re-recruit = %+v", acc)
	}
	if dst.regions() != 0 {
		t.Fatal("refused offers still allocated target regions")
	}
	if s := r.mgr.Stats(); s.HandoffOffers != 0 {
		t.Fatalf("refused offers counted: %+v", s)
	}
}
