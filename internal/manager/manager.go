// Package manager implements Dodo's central manager daemon (cmd, §4.3).
//
// The cmd runs on a dedicated machine and keeps two data structures: the
// idle-workstation directory (IWD), tracking every recruited host with
// its epoch and largest-free-block hint, and the region directory (RD),
// a hash table of all allocated regions keyed by (backing-file inode,
// file offset, client). It exports alloc, free and checkAlloc to the
// client runtime, verifies hint-based availability against the hosting
// imd before committing an allocation, validates epochs to detect
// regions orphaned by imd restarts, and reclaims the regions of clients
// that stop answering its keep-alive echoes.
package manager

import (
	"fmt"
	"log"
	"math/rand"
	"sort"
	"sync"
	"time"

	"dodo/internal/bulk"
	"dodo/internal/locks"
	"dodo/internal/sim"
	"dodo/internal/transport"
	"dodo/internal/wire"
)

// Config tunes the manager.
type Config struct {
	// KeepAliveInterval is the period of liveness echoes to clients
	// (default 2s; the paper sends them "periodically").
	KeepAliveInterval time.Duration
	// KeepAliveMisses is how many consecutive failed echoes orphan a
	// client (default 3).
	KeepAliveMisses int
	// Clock provides time (default wall clock).
	Clock sim.Clock
	// Endpoint tunes the messaging layer.
	Endpoint bulk.Config
	// Logger receives operational events; nil silences them.
	Logger *log.Logger
	// Seed seeds host selection; 0 uses a fixed default so test runs
	// are reproducible.
	Seed int64
	// HandoffGrace is how long the manager holds a draining host's
	// region mappings in the Busy overlay awaiting handoff completion
	// before checkAlloc falls back to the stale-drop path (default 2s;
	// should comfortably exceed the imds' drain grace window).
	HandoffGrace time.Duration
	// Incarnation is this manager instance's monotonic incarnation
	// number, stamped into every response and keep-alive. A fresh
	// deployment runs incarnation 1 (the default); a crash-restarted
	// manager must be handed a strictly larger value so the periphery
	// can tell the rebuilt directory from the dead one, and so delayed
	// pre-crash frames are fenced.
	Incarnation uint64
	// RebuildGrace is the soft-state rebuild window after a restart
	// (Incarnation > 1): while it lasts, checkAlloc holds unknown keys
	// with StatusBusy instead of purging them, alloc holds new keys
	// instead of placing possible duplicates, and the keep-alive sweep
	// does not count misses — all awaiting the imds' inventory
	// re-reports and the clients' revalidation (default 3x the
	// keep-alive interval).
	RebuildGrace time.Duration
}

func (c Config) withDefaults() Config {
	if c.KeepAliveInterval == 0 {
		c.KeepAliveInterval = 2 * time.Second
	}
	if c.KeepAliveMisses == 0 {
		c.KeepAliveMisses = 3
	}
	if c.Clock == nil {
		c.Clock = sim.WallClock{}
	}
	if c.Seed == 0 {
		c.Seed = 990401
	}
	if c.HandoffGrace == 0 {
		c.HandoffGrace = 2 * time.Second
	}
	if c.Incarnation == 0 {
		c.Incarnation = 1
	}
	if c.RebuildGrace == 0 {
		c.RebuildGrace = 3 * c.KeepAliveInterval
	}
	return c
}

// hostEntry is one IWD row.
type hostEntry struct {
	addr        string
	epoch       uint64
	availBytes  uint64
	largestFree uint64
	// caps is the host imd's advertised fast-path capability set,
	// relayed to clients in AllocResp/CheckAllocResp so they know which
	// read protocol the host speaks. Zero (no fast paths) until the
	// host's next idle announce — inventory re-reports after a manager
	// restart do not carry caps, so a rebuilt row starts conservative
	// and upgrades on the next periodic announce.
	caps wire.Caps
}

// regionEntry is one RD row.
type regionEntry struct {
	key    wire.RegionKey
	region wire.Region
	client string // transport address of the owning client
	// fresh marks a region whose current host was populated by a
	// graceful-reclaim handoff: the host holds every byte the client
	// had confirmed, so checkAlloc advertises it as adoptable without
	// disk repopulation.
	fresh bool
}

// drainingHost is the graceful-reclaim overlay for a host that
// announced HostBusy: while it lasts, checkAlloc answers StatusBusy
// for that host's regions instead of stale-dropping them, giving the
// handoff a chance to repoint them to their new homes.
type drainingHost struct {
	epoch    uint64
	deadline time.Time
	// grants maps the draining host's region ids to their pre-allocated
	// targets until HandoffDone resolves each one.
	grants map[uint64]*handoffGrant
}

type handoffGrant struct {
	key    wire.RegionKey
	target wire.Region
}

// clientEntry tracks keep-alive state per client.
type clientEntry struct {
	addr   string
	misses int
	// caps is the client's advertised capability set, piggybacked on
	// its keep-alive acks. Informational for now: the manager itself
	// never speaks the data plane to clients.
	caps wire.Caps
}

// recovCounters is a client's cumulative recovery totals as last
// reported on a keep-alive ack. Kept even after the client is
// untracked, so cluster-wide aggregation survives churn without double
// counting (acks carry running totals, not deltas).
type recovCounters struct {
	drops, revalidations, reopens       uint64
	handoffAdopts                       uint64
	hedgedReads, hedgeWins, hedgeWasted uint64
	retryExhausted                      uint64
	checksumFailures                    uint64
	corruptHosts                        []wire.HostCount
}

// Manager is the central manager daemon.
type Manager struct {
	// dodo:unguarded — immutable after construction
	cfg Config
	// dodo:unguarded — set once in New before the endpoint loop starts
	ep *bulk.Endpoint
	// dodo:unguarded — immutable after construction
	log *log.Logger

	mu locks.Mutex
	// dodo:guardedby mu
	iwd map[string]*hostEntry
	// dodo:guardedby mu
	rd map[wire.RegionKey]*regionEntry
	// dodo:guardedby mu
	clients map[string]*clientEntry
	// dodo:guardedby mu
	recov map[string]recovCounters
	// dodo:guardedby mu
	draining map[string]*drainingHost
	// dodo:guardedby mu
	rng *rand.Rand
	// dodo:guardedby mu
	nextID uint64
	// dodo:guardedby mu
	shutdown bool

	// dodo:unguarded — set at construction; closed once under mu in Close
	stop chan struct{}
	// dodo:unguarded — WaitGroup is internally synchronized
	wg sync.WaitGroup

	// dodo:unguarded — immutable after construction (boot time of this
	// incarnation; the rebuild window is measured from it)
	bootAt time.Time

	// stats
	// dodo:guardedby mu
	allocs, allocFailures, frees, staleDrops, orphanReclaims int64
	// dodo:guardedby mu
	handoffOffers, handoffPagesMoved, handoffAborts int64
	// Crash-recovery counters: inventory re-reports folded in, RD rows
	// rebuilt from them, and requests fenced for a dead incarnation.
	// dodo:guardedby mu
	inventoryReports, rebuiltRegions, fencedRequests int64
	// handoffLog records every repointing in order, for the
	// same-seed-same-schedule determinism checks.
	// dodo:guardedby mu
	handoffLog []string
}

// New starts a manager serving on tr.
func New(tr transport.Transport, cfg Config) *Manager {
	cfg = cfg.withDefaults()
	m := &Manager{
		cfg:      cfg,
		log:      cfg.Logger,
		iwd:      make(map[string]*hostEntry),
		rd:       make(map[wire.RegionKey]*regionEntry),
		clients:  make(map[string]*clientEntry),
		recov:    make(map[string]recovCounters),
		draining: make(map[string]*drainingHost),
		rng:      rand.New(rand.NewSource(cfg.Seed)),
		stop:     make(chan struct{}),
	}
	m.bootAt = cfg.Clock.Now()
	// Region ids live in an incarnation-sized namespace: a restarted
	// manager's counter must not re-issue ids the dead incarnation
	// already granted, or an imd would treat the new allocation as an
	// idempotent duplicate of a live region and alias the two.
	m.nextID = (cfg.Incarnation - 1) << 32
	m.mu.SetRank(locks.RankManager)
	// Handlers run on their own goroutines and may fire before this
	// constructor returns; gate them until m.ep is assigned.
	ready := make(chan struct{})
	m.ep = bulk.NewEndpoint(tr, cfg.Endpoint, func(from string, msg wire.Message) wire.Message {
		<-ready
		return m.handle(from, msg)
	})
	close(ready)
	m.wg.Add(1)
	go m.keepAliveLoop()
	return m
}

// Addr returns the manager's transport address.
func (m *Manager) Addr() string { return m.ep.LocalAddr() }

// Incarnation returns this manager instance's incarnation number.
func (m *Manager) Incarnation() uint64 { return m.cfg.Incarnation }

// inRebuild reports whether the manager is inside its post-restart
// soft-state rebuild window. A first-incarnation manager starts with an
// authoritative (empty) directory and never rebuilds.
func (m *Manager) inRebuild() bool {
	return m.cfg.Incarnation > 1 && m.cfg.Clock.Now().Before(m.bootAt.Add(m.cfg.RebuildGrace))
}

// Close stops the manager.
func (m *Manager) Close() error {
	m.mu.Lock()
	if m.shutdown {
		m.mu.Unlock()
		return nil
	}
	m.shutdown = true
	close(m.stop)
	m.mu.Unlock()
	err := m.ep.Close()
	m.wg.Wait()
	return err
}

// probeTimeout is the per-attempt budget for speculative calls to hosts
// and clients that may be dead.
func (m *Manager) probeTimeout() time.Duration {
	t := m.cfg.Endpoint.CallTimeout
	if t == 0 {
		t = 500 * time.Millisecond
	}
	return t / 2
}

func (m *Manager) logf(format string, args ...any) {
	if m.log != nil {
		m.log.Printf(format, args...)
	}
}

// Snapshot reports directory sizes and counters for monitoring.
type Snapshot struct {
	IdleHosts      int
	Regions        int
	Clients        int
	Allocs         int64
	AllocFailures  int64
	Frees          int64
	StaleDrops     int64
	OrphanReclaims int64
	// Graceful-reclaim handoff counters.
	HandoffOffers     int64
	HandoffPagesMoved int64
	HandoffAborts     int64
	// Client recovery totals aggregated from keep-alive acks.
	ClientDrops          uint64
	ClientRevalidations  uint64
	ClientReopens        uint64
	ClientHandoffAdopts  uint64
	ClientHedgedReads    uint64
	ClientHedgeWins      uint64
	ClientHedgeWasted    uint64
	ClientRetryExhausted uint64
	// Crash-recovery state and counters.
	Incarnation      uint64
	InventoryReports int64
	RebuiltRegions   int64
	FencedRequests   int64
	// End-to-end checksum totals aggregated from keep-alive acks.
	ClientChecksumFailures uint64
}

// Stats returns a consistent snapshot.
func (m *Manager) Stats() Snapshot {
	m.mu.Lock()
	defer m.mu.Unlock()
	s := Snapshot{
		IdleHosts:         len(m.iwd),
		Regions:           len(m.rd),
		Clients:           len(m.clients),
		Allocs:            m.allocs,
		AllocFailures:     m.allocFailures,
		Frees:             m.frees,
		StaleDrops:        m.staleDrops,
		OrphanReclaims:    m.orphanReclaims,
		HandoffOffers:     m.handoffOffers,
		HandoffPagesMoved: m.handoffPagesMoved,
		HandoffAborts:     m.handoffAborts,
		Incarnation:       m.cfg.Incarnation,
		InventoryReports:  m.inventoryReports,
		RebuiltRegions:    m.rebuiltRegions,
		FencedRequests:    m.fencedRequests,
	}
	for _, rc := range m.recov {
		s.ClientDrops += rc.drops
		s.ClientRevalidations += rc.revalidations
		s.ClientReopens += rc.reopens
		s.ClientHandoffAdopts += rc.handoffAdopts
		s.ClientHedgedReads += rc.hedgedReads
		s.ClientHedgeWins += rc.hedgeWins
		s.ClientHedgeWasted += rc.hedgeWasted
		s.ClientRetryExhausted += rc.retryExhausted
		s.ClientChecksumFailures += rc.checksumFailures
	}
	return s
}

// corruptHostsLocked merges the per-host checksum-failure breakdowns
// last reported by each client into one address-sorted list.
func (m *Manager) corruptHostsLocked() []wire.HostCount {
	byHost := make(map[string]uint64)
	for _, rc := range m.recov {
		for _, hc := range rc.corruptHosts {
			byHost[hc.Addr] += hc.Count
		}
	}
	if len(byHost) == 0 {
		return nil
	}
	out := make([]wire.HostCount, 0, len(byHost))
	for addr, n := range byHost {
		out = append(out, wire.HostCount{Addr: addr, Count: n})
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Addr < out[j].Addr })
	return out
}

// hostCapsLocked returns the advertised capability set of the imd at
// addr, or zero when the host is unknown (reclaimed, or rebuilt from an
// inventory report that carries no caps). Caller holds m.mu.
func (m *Manager) hostCapsLocked(addr string) wire.Caps {
	if h := m.iwd[addr]; h != nil {
		return h.caps
	}
	return 0
}

// handle dispatches one request.
func (m *Manager) handle(from string, msg wire.Message) wire.Message {
	switch req := msg.(type) {
	case *wire.HostStatus:
		return m.handleHostStatus(req)
	case *wire.AllocReq:
		return m.handleAlloc(from, req)
	case *wire.FreeReq:
		return m.handleFree(req)
	case *wire.CheckAllocReq:
		return m.handleCheckAlloc(req)
	case *wire.ClusterStatsReq:
		return m.handleClusterStats(req)
	case *wire.HandoffOffer:
		return m.handleHandoffOffer(req)
	case *wire.HandoffDone:
		return m.handleHandoffDone(req)
	case *wire.InventoryReport:
		return m.handleInventoryReport(req)
	case *wire.IMDAllocReq, *wire.IMDFreeReq,
		*wire.ReadReq, *wire.ReadBatchReq, *wire.WriteReq,
		*wire.KeepAlive, *wire.HandoffPage:
		// Addressed to an imd or a client, not the manager; a frame
		// routed here is a misdirected peer. Explicitly ignored.
		return nil
	case *wire.AllocResp, *wire.FreeResp, *wire.CheckAllocResp,
		*wire.KeepAliveAck, *wire.HostStatusAck,
		*wire.IMDAllocResp, *wire.IMDFreeResp, *wire.DataResp,
		*wire.BulkOffer, *wire.BulkAccept, *wire.BulkData,
		*wire.BulkNack, *wire.BulkDone, *wire.ClusterStatsResp,
		*wire.HandoffAccept, *wire.InventoryAck, *wire.ReadBatchResp:
		// Responses and bulk frames are consumed by the endpoint's
		// dispatch before the handler runs; they cannot reach here.
		return nil
	}
	return nil
}

// handleClusterStats snapshots the IWD and counters for dodo-ctl.
func (m *Manager) handleClusterStats(*wire.ClusterStatsReq) wire.Message {
	m.mu.Lock()
	defer m.mu.Unlock()
	resp := &wire.ClusterStatsResp{
		Status:            wire.StatusOK,
		Regions:           uint64(len(m.rd)),
		Clients:           uint64(len(m.clients)),
		Allocs:            uint64(m.allocs),
		AllocFailures:     uint64(m.allocFailures),
		Frees:             uint64(m.frees),
		StaleDrops:        uint64(m.staleDrops),
		OrphanReclaims:    uint64(m.orphanReclaims),
		HandoffOffers:     uint64(m.handoffOffers),
		HandoffPagesMoved: uint64(m.handoffPagesMoved),
		HandoffAborts:     uint64(m.handoffAborts),
		Incarnation:       m.cfg.Incarnation,
		InventoryReports:  uint64(m.inventoryReports),
		RebuiltRegions:    uint64(m.rebuiltRegions),
		FencedRequests:    uint64(m.fencedRequests),
		CorruptHosts:      m.corruptHostsLocked(),
	}
	for _, rc := range m.recov {
		resp.ClientDrops += rc.drops
		resp.ClientRevalidations += rc.revalidations
		resp.ClientReopens += rc.reopens
		resp.ClientHandoffAdopts += rc.handoffAdopts
		resp.ClientHedgedReads += rc.hedgedReads
		resp.ClientHedgeWins += rc.hedgeWins
		resp.ClientHedgeWasted += rc.hedgeWasted
		resp.ClientRetryExhausted += rc.retryExhausted
		resp.ClientChecksumFailures += rc.checksumFailures
	}
	for _, h := range m.iwd {
		resp.Hosts = append(resp.Hosts, wire.HostInfo{
			Addr:        h.addr,
			Epoch:       h.epoch,
			AvailBytes:  h.availBytes,
			LargestFree: h.largestFree,
		})
	}
	return resp
}

// handleHostStatus updates the IWD from an rmd/imd report.
func (m *Manager) handleHostStatus(req *wire.HostStatus) wire.Message {
	m.mu.Lock()
	// Incarnation fence: a report stamped with another incarnation was
	// addressed to a dead manager instance. Refusing it (most notably a
	// delayed pre-crash HostBusy) keeps a stale frame from tearing down
	// or resurrecting rows in the rebuilt directory. Zero means the
	// sender has not heard any incarnation yet — first contact — and is
	// always accepted.
	if req.Incarnation != 0 && req.Incarnation != m.cfg.Incarnation {
		m.fencedRequests++
		m.mu.Unlock()
		m.logf("cmd: fenced host-status from %s (incarnation %d, ours %d)",
			req.HostAddr, req.Incarnation, m.cfg.Incarnation)
		return &wire.HostStatusAck{Status: wire.StatusStale, Incarnation: m.cfg.Incarnation}
	}
	var orphans []wire.Region
	switch req.State {
	case wire.HostIdle:
		m.iwd[req.HostAddr] = &hostEntry{
			addr:        req.HostAddr,
			epoch:       req.Epoch,
			availBytes:  req.AvailBytes,
			largestFree: req.LargestFree,
			caps:        req.Caps,
		}
		// A re-recruited host starts a new epoch; any old drain is moot,
		// but its unresolved grants still hold pre-allocated regions on
		// peer imds — free them.
		orphans = m.discardDrainingLocked(req.HostAddr)
	case wire.HostBusy:
		delete(m.iwd, req.HostAddr)
		// Open the graceful-reclaim overlay: until the deadline, the
		// host's regions answer checkAlloc with Busy (retry soon) rather
		// than Stale (gone), so a handoff can repoint them first. The
		// announce arrives via ep.Call, which retransmits, so a delayed
		// duplicate must keep the existing same-epoch overlay — replacing
		// it would wipe grants a HandoffOffer already registered, losing
		// their repoints and leaking the pre-allocated targets.
		if dh := m.draining[req.HostAddr]; dh == nil || dh.epoch != req.Epoch {
			orphans = m.discardDrainingLocked(req.HostAddr)
			m.draining[req.HostAddr] = &drainingHost{
				epoch:    req.Epoch,
				deadline: m.cfg.Clock.Now().Add(m.cfg.HandoffGrace),
				grants:   make(map[uint64]*handoffGrant),
			}
		}
	}
	m.mu.Unlock()
	m.freeHandoffTargets(orphans)
	m.logf("cmd: host %s -> %v (epoch %d, avail %d)", req.HostAddr, req.State, req.Epoch, req.AvailBytes)
	return &wire.HostStatusAck{Status: wire.StatusOK, Incarnation: m.cfg.Incarnation}
}

// handleInventoryReport folds one imd's full inventory into the
// directory. This is the soft-state rebuild path: after a restart the
// RD is empty, every imd that learns the new incarnation re-reports
// what it holds, and the rows are reconstructed here — including the
// owning client, which re-arms keep-alive tracking. The handler is
// idempotent (reports arrive via Call, which retransmits) and also
// safe outside the rebuild window: a row already present and matching
// is skipped, and a reported region whose key the directory has since
// repointed elsewhere is freed on the reporter as a stale copy.
func (m *Manager) handleInventoryReport(req *wire.InventoryReport) wire.Message {
	m.mu.Lock()
	if req.Incarnation != m.cfg.Incarnation {
		m.fencedRequests++
		m.mu.Unlock()
		m.logf("cmd: fenced inventory from %s (incarnation %d, ours %d)",
			req.HostAddr, req.Incarnation, m.cfg.Incarnation)
		return &wire.InventoryAck{Status: wire.StatusStale, Incarnation: m.cfg.Incarnation}
	}
	// The report carries the same availability hints as an idle
	// announce; upsert the IWD row unless the host is mid-drain.
	if m.draining[req.HostAddr] == nil {
		// Inventory reports carry no caps; keep whatever the last idle
		// announce established rather than downgrading the row.
		var caps wire.Caps
		if h := m.iwd[req.HostAddr]; h != nil {
			caps = h.caps
		}
		m.iwd[req.HostAddr] = &hostEntry{
			addr:        req.HostAddr,
			epoch:       req.Epoch,
			availBytes:  req.AvailBytes,
			largestFree: req.LargestFree,
			caps:        caps,
		}
	}
	var staleCopies []uint64
	rebuilt := 0
	for _, r := range req.Regions {
		if (r.Key == wire.RegionKey{}) {
			continue // region predates key metadata; cannot be re-keyed
		}
		if e, ok := m.rd[r.Key]; ok {
			if e.region.HostAddr == req.HostAddr && e.region.RegionID == r.RegionID {
				continue // already rebuilt from an earlier (or duplicate) report
			}
			// The directory has since mapped this key elsewhere (e.g. a
			// post-grace re-open repopulated it on a new host); the
			// reported copy is a dead-incarnation leftover. Free it.
			staleCopies = append(staleCopies, r.RegionID)
			continue
		}
		m.rd[r.Key] = &regionEntry{
			key: r.Key,
			region: wire.Region{
				HostAddr:   req.HostAddr,
				RegionID:   r.RegionID,
				PoolOffset: r.PoolOffset,
				Length:     r.Length,
				Epoch:      req.Epoch,
			},
			client: r.Client,
		}
		if r.Client != "" {
			m.trackClientLocked(r.Client)
		}
		rebuilt++
	}
	m.inventoryReports++
	m.rebuiltRegions += int64(rebuilt)
	m.mu.Unlock()
	for _, id := range staleCopies {
		m.ep.Notify(req.HostAddr, &wire.IMDFreeReq{RegionID: id})
	}
	m.logf("cmd: inventory from %s: %d regions reported, %d rebuilt, %d stale copies freed",
		req.HostAddr, len(req.Regions), rebuilt, len(staleCopies))
	return &wire.InventoryAck{Status: wire.StatusOK, Incarnation: m.cfg.Incarnation}
}

// discardDrainingLocked removes addr's graceful-reclaim overlay and
// returns the targets of its unresolved grants. The draining imd will
// never push to them — the overlay that tracked them is gone — so the
// caller must free them on their peers once m.mu is released; otherwise
// each would hold pre-allocated pool space until its host churned.
//
// dodo:acquires(grant)
func (m *Manager) discardDrainingLocked(addr string) []wire.Region {
	dh := m.draining[addr]
	if dh == nil {
		return nil
	}
	delete(m.draining, addr)
	if len(dh.grants) == 0 {
		return nil
	}
	targets := make([]wire.Region, 0, len(dh.grants))
	for _, g := range dh.grants {
		targets = append(targets, g.target)
	}
	// Deterministic order, so a given overlay state frees in a
	// reproducible sequence.
	sort.Slice(targets, func(i, j int) bool {
		if targets[i].HostAddr != targets[j].HostAddr {
			return targets[i].HostAddr < targets[j].HostAddr
		}
		return targets[i].RegionID < targets[j].RegionID
	})
	m.handoffAborts += int64(len(targets))
	return targets
}

// freeHandoffTargets releases pre-allocated handoff destinations on
// their peer imds. Must run without m.mu held.
//
// dodo:releases(grant)
func (m *Manager) freeHandoffTargets(targets []wire.Region) {
	for _, t := range targets {
		m.ep.Notify(t.HostAddr, &wire.IMDFreeReq{RegionID: t.RegionID})
	}
}

// expireDraining discards overlays whose deadline has passed and frees
// their unresolved grant targets. checkAlloc traffic does this on
// demand; the sweep covers hosts no client asks about — e.g. when the
// HandoffAccept response was lost, so the imd never pushed a page or
// reported an outcome for the grants the manager recorded.
func (m *Manager) expireDraining() {
	m.mu.Lock()
	now := m.cfg.Clock.Now()
	var expired []string
	for addr, dh := range m.draining {
		if !now.Before(dh.deadline) {
			expired = append(expired, addr)
		}
	}
	sort.Strings(expired)
	var orphans []wire.Region
	for _, addr := range expired {
		orphans = append(orphans, m.discardDrainingLocked(addr)...)
	}
	m.mu.Unlock()
	m.freeHandoffTargets(orphans)
}

// handleAlloc implements the alloc operation: pick a random idle host
// believed to have a large-enough free block, verify by asking its imd,
// and retry other hosts until success or exhaustion (§4.3).
func (m *Manager) handleAlloc(from string, req *wire.AllocReq) wire.Message {
	inc := m.cfg.Incarnation
	if req.Length == 0 {
		return &wire.AllocResp{Status: wire.StatusInvalid, Incarnation: inc}
	}
	m.mu.Lock()
	// Duplicate request (client retry): answer with the existing region.
	if e, ok := m.rd[req.Key]; ok {
		region := e.region
		caps := m.hostCapsLocked(region.HostAddr)
		m.mu.Unlock()
		return &wire.AllocResp{Status: wire.StatusOK, Incarnation: inc, Region: region, HostCaps: caps}
	}
	// During the post-restart rebuild window, hold allocations for keys
	// the directory does not know: the key may be about to reappear in
	// an inventory re-report, and placing a second copy now would
	// duplicate the allocation. Busy tells the client to back off and
	// retry; the window is bounded by RebuildGrace.
	if m.inRebuild() {
		m.mu.Unlock()
		m.logf("cmd: rebuild in progress; holding alloc of %v from %s", req.Key, from)
		return &wire.AllocResp{Status: wire.StatusBusy, Incarnation: inc}
	}
	// Candidate hosts, randomized (the paper picks randomly and retries).
	var candidates []string
	for addr, h := range m.iwd {
		if h.largestFree >= req.Length {
			candidates = append(candidates, addr)
		}
	}
	// Map iteration order is random; sort before the seeded shuffle so
	// the same seed yields the same placement schedule.
	sort.Strings(candidates)
	m.rng.Shuffle(len(candidates), func(i, j int) {
		candidates[i], candidates[j] = candidates[j], candidates[i]
	})
	m.nextID++
	id := m.nextID
	m.mu.Unlock()

	for _, host := range candidates {
		// Probe with a tight budget: a dead host must not stall the
		// client's allocation while live candidates remain. Key and
		// client ride along so the imd can reconstruct the directory
		// row in an inventory re-report after a manager crash.
		resp, err := m.ep.CallT(host, &wire.IMDAllocReq{RegionID: id, Length: req.Length,
			Key: req.Key, Client: from}, m.probeTimeout(), 1)
		if err != nil {
			// Host unreachable (shut down, crashed, or reclaimed):
			// drop it from the IWD and try another (§3.1).
			m.mu.Lock()
			delete(m.iwd, host)
			m.mu.Unlock()
			m.logf("cmd: alloc probe to %s failed: %v", host, err)
			continue
		}
		ar, ok := resp.(*wire.IMDAllocResp)
		if !ok {
			continue
		}
		m.mu.Lock()
		if h, live := m.iwd[host]; live {
			// The imd piggybacks availability on every response (§4.3).
			h.epoch = ar.Epoch
			h.availBytes = ar.AvailBytes
			h.largestFree = ar.LargestFree
		}
		if ar.Status != wire.StatusOK {
			m.mu.Unlock()
			continue
		}
		// Commit, unless a duplicate raced us to it.
		if e, dup := m.rd[req.Key]; dup {
			region := e.region
			caps := m.hostCapsLocked(region.HostAddr)
			m.mu.Unlock()
			m.ep.Notify(host, &wire.IMDFreeReq{RegionID: id})
			return &wire.AllocResp{Status: wire.StatusOK, Incarnation: inc, Region: region, HostCaps: caps}
		}
		region := wire.Region{
			HostAddr:   host,
			RegionID:   id,
			PoolOffset: ar.PoolOffset,
			Length:     req.Length,
			Epoch:      ar.Epoch,
		}
		m.rd[req.Key] = &regionEntry{key: req.Key, region: region, client: from}
		// Track only committed owners: tracking on request would leak a
		// keep-alive probe target whenever the allocation failed.
		m.trackClientLocked(from)
		m.allocs++
		caps := m.hostCapsLocked(host)
		m.mu.Unlock()
		m.logf("cmd: allocated %v (%d bytes) on %s", req.Key, req.Length, host)
		return &wire.AllocResp{Status: wire.StatusOK, Incarnation: inc, Region: region, HostCaps: caps}
	}
	m.mu.Lock()
	m.allocFailures++
	m.mu.Unlock()
	m.logf("cmd: allocation of %d bytes failed: no idle host has space", req.Length)
	return &wire.AllocResp{Status: wire.StatusNoMem, Incarnation: inc}
}

// handleFree implements the free operation (§4.3).
func (m *Manager) handleFree(req *wire.FreeReq) wire.Message {
	m.mu.Lock()
	e, ok := m.rd[req.Key]
	if !ok {
		m.mu.Unlock()
		return &wire.FreeResp{Status: wire.StatusNotFound, Incarnation: m.cfg.Incarnation}
	}
	delete(m.rd, req.Key)
	m.frees++
	m.untrackIdleClientLocked(e.client)
	host, id := e.region.HostAddr, e.region.RegionID
	m.mu.Unlock()
	// Forward to the hosting imd off the client's critical path;
	// best-effort (the host may be gone), but when the imd answers, its
	// piggybacked availability refreshes the IWD hints (§4.3).
	m.wg.Add(1)
	go func() {
		defer m.wg.Done()
		resp, err := m.ep.CallT(host, &wire.IMDFreeReq{RegionID: id}, m.probeTimeout(), 1)
		if err != nil {
			return
		}
		fr, ok := resp.(*wire.IMDFreeResp)
		if !ok {
			return
		}
		m.mu.Lock()
		if h, live := m.iwd[host]; live && h.epoch == fr.Epoch {
			h.availBytes = fr.AvailBytes
			h.largestFree = fr.LargestFree
		}
		m.mu.Unlock()
	}()
	return &wire.FreeResp{Status: wire.StatusOK, Incarnation: m.cfg.Incarnation}
}

// handleCheckAlloc implements checkAlloc: look the region up and verify
// its epoch against the hosting workstation's IWD entry (§4.3).
func (m *Manager) handleCheckAlloc(req *wire.CheckAllocReq) wire.Message {
	inc := m.cfg.Incarnation
	m.mu.Lock()
	var orphans []wire.Region
	resp := func() wire.Message {
		e, ok := m.rd[req.Key]
		if !ok {
			// During the rebuild window an unknown key is indistinguishable
			// from a not-yet-re-reported one: hold it with Busy so the
			// client keeps retrying instead of tearing down and re-opening
			// a region whose bytes are still intact on some imd.
			if m.inRebuild() {
				return &wire.CheckAllocResp{Status: wire.StatusBusy, Incarnation: inc}
			}
			return &wire.CheckAllocResp{Status: wire.StatusNotFound, Incarnation: inc}
		}
		h, hostIdle := m.iwd[e.region.HostAddr]
		if !hostIdle || h.epoch != e.region.Epoch {
			// Host not (or no longer) idle under this epoch. If it is mid
			// graceful reclaim, hold the mapping and tell the client to retry:
			// a handoff may repoint the region any moment now.
			if dh := m.draining[e.region.HostAddr]; dh != nil {
				if dh.epoch == e.region.Epoch && m.cfg.Clock.Now().Before(dh.deadline) {
					return &wire.CheckAllocResp{Status: wire.StatusBusy, Incarnation: inc}
				}
				if !m.cfg.Clock.Now().Before(dh.deadline) {
					// Grace expired with grants unresolved: the targets
					// must be freed or they leak on the peers.
					orphans = m.discardDrainingLocked(e.region.HostAddr)
				}
			}
			// Host reclaimed or imd restarted since allocation: the region
			// is gone. Delete it and report failure.
			delete(m.rd, req.Key)
			m.staleDrops++
			m.untrackIdleClientLocked(e.client)
			return &wire.CheckAllocResp{Status: wire.StatusStale, Incarnation: inc}
		}
		return &wire.CheckAllocResp{Status: wire.StatusOK, Fresh: e.fresh, Incarnation: inc,
			Region: e.region, HostCaps: h.caps}
	}()
	m.mu.Unlock()
	m.freeHandoffTargets(orphans)
	return resp
}

// handleHandoffOffer places a draining imd's hottest regions on peer
// imds. For each offered region still mapped in the RD, the manager
// picks the idle host with the most free space (addresses break ties,
// so the same cluster state yields the same schedule), pre-allocates a
// target region there, and records the grant in the draining overlay.
// The imd pushes the bytes and reports each outcome via HandoffDone.
func (m *Manager) handleHandoffOffer(req *wire.HandoffOffer) wire.Message {
	m.mu.Lock()
	dh := m.draining[req.HostAddr]
	if dh == nil || dh.epoch != req.Epoch || !m.cfg.Clock.Now().Before(dh.deadline) {
		m.mu.Unlock()
		return &wire.HandoffAccept{Status: wire.StatusStale}
	}
	m.handoffOffers++
	// Index the RD rows still pointing at the draining host, and
	// snapshot candidate targets, before dropping the lock for probes.
	byID := make(map[uint64]*regionEntry)
	for _, e := range m.rd {
		if e.region.HostAddr == req.HostAddr && e.region.Epoch == req.Epoch {
			byID[e.region.RegionID] = e
		}
	}
	targets := make([]*hostEntry, 0, len(m.iwd))
	for _, h := range m.iwd {
		targets = append(targets, &hostEntry{
			addr: h.addr, epoch: h.epoch,
			availBytes: h.availBytes, largestFree: h.largestFree,
		})
	}
	sort.Slice(targets, func(i, j int) bool { return targets[i].addr < targets[j].addr })
	m.mu.Unlock()

	var grants []wire.HandoffGrant
	for _, r := range req.Regions {
		e := byID[r.RegionID]
		if e == nil {
			continue // freed or unknown; nothing to repoint
		}
		if g, ok := m.placeHandoff(r, e.key, e.client, targets); ok {
			grants = append(grants, g)
		}
	}

	m.mu.Lock()
	dh = m.draining[req.HostAddr]
	if dh == nil || dh.epoch != req.Epoch {
		m.mu.Unlock()
		// The drain resolved while we were probing: release the targets.
		for _, g := range grants {
			m.ep.Notify(g.Target.HostAddr, &wire.IMDFreeReq{RegionID: g.Target.RegionID})
		}
		return &wire.HandoffAccept{Status: wire.StatusStale}
	}
	for _, g := range grants {
		dh.grants[g.OldRegionID] = &handoffGrant{key: byID[g.OldRegionID].key, target: g.Target}
	}
	m.mu.Unlock()
	m.logf("cmd: handoff offer from %s: %d regions offered, %d granted", req.HostAddr, len(req.Regions), len(grants))
	return &wire.HandoffAccept{Status: wire.StatusOK, Grants: grants}
}

// placeHandoff picks a target host for one offered region and
// pre-allocates the destination there. Targets are tried most-free
// first (address ascending on ties); the slice's hints are refreshed
// from piggybacked availability so later placements see earlier ones.
func (m *Manager) placeHandoff(r wire.HandoffRegion, key wire.RegionKey, client string, targets []*hostEntry) (wire.HandoffGrant, bool) {
	order := make([]*hostEntry, len(targets))
	copy(order, targets)
	// Stable sort on top of the address-ascending base order keeps the
	// tie-break deterministic.
	sort.SliceStable(order, func(i, j int) bool { return order[i].largestFree > order[j].largestFree })
	for _, t := range order {
		if t.largestFree < r.Length {
			continue
		}
		m.mu.Lock()
		m.nextID++
		id := m.nextID
		m.mu.Unlock()
		resp, err := m.ep.CallT(t.addr, &wire.IMDAllocReq{RegionID: id, Length: r.Length,
			Key: key, Client: client}, m.probeTimeout(), 1)
		if err != nil {
			t.largestFree = 0 // unreachable; skip for the rest of this offer
			continue
		}
		ar, ok := resp.(*wire.IMDAllocResp)
		if !ok {
			continue
		}
		t.epoch, t.availBytes, t.largestFree = ar.Epoch, ar.AvailBytes, ar.LargestFree
		if ar.Status != wire.StatusOK {
			continue
		}
		return wire.HandoffGrant{
			OldRegionID: r.RegionID,
			Target: wire.Region{
				HostAddr:   t.addr,
				RegionID:   id,
				PoolOffset: ar.PoolOffset,
				Length:     r.Length,
				Epoch:      ar.Epoch,
			},
		}, true
	}
	return wire.HandoffGrant{}, false
}

// handleHandoffDone resolves one granted handoff: on success the RD row
// is atomically repointed at the new host and marked fresh, so the
// owner's next checkAlloc revalidates to the copy instead of falling
// back to disk; on failure the pre-allocated target is released.
func (m *Manager) handleHandoffDone(req *wire.HandoffDone) wire.Message {
	m.mu.Lock()
	var g *handoffGrant
	if dh := m.draining[req.HostAddr]; dh != nil {
		g = dh.grants[req.OldRegionID]
		delete(dh.grants, req.OldRegionID)
	}
	if g == nil {
		m.mu.Unlock()
		return &wire.HostStatusAck{Status: wire.StatusNotFound}
	}
	freeTarget := false
	if req.Status == wire.StatusOK {
		if e, ok := m.rd[g.key]; ok && e.region.HostAddr == req.HostAddr {
			m.handoffLog = append(m.handoffLog, fmt.Sprintf("%v %s/%d -> %s/%d",
				g.key, req.HostAddr, req.OldRegionID, g.target.HostAddr, g.target.RegionID))
			e.region = g.target
			e.fresh = true
			m.handoffPagesMoved++
		} else {
			freeTarget = true // freed or re-placed while the push ran
		}
	} else {
		m.handoffAborts++
		freeTarget = true
	}
	addr, id := g.target.HostAddr, g.target.RegionID
	m.mu.Unlock()
	if freeTarget {
		m.ep.Notify(addr, &wire.IMDFreeReq{RegionID: id})
	}
	m.logf("cmd: handoff of %s/%d done: %v", req.HostAddr, req.OldRegionID, req.Status)
	return &wire.HostStatusAck{Status: wire.StatusOK}
}

// RegionRows snapshots the region directory's rows (host-then-id
// sorted). Test and harness introspection: after a crash-recovery sweep
// every row must point at a region its host's imd actually holds — a
// row that does not is dead-incarnation residue the rebuild failed to
// fence.
func (m *Manager) RegionRows() []wire.Region {
	m.mu.Lock()
	defer m.mu.Unlock()
	rows := make([]wire.Region, 0, len(m.rd))
	for _, e := range m.rd {
		rows = append(rows, e.region)
	}
	sort.Slice(rows, func(i, j int) bool {
		if rows[i].HostAddr != rows[j].HostAddr {
			return rows[i].HostAddr < rows[j].HostAddr
		}
		return rows[i].RegionID < rows[j].RegionID
	})
	return rows
}

// HandoffSchedule returns the ordered log of region repointings made by
// graceful-reclaim handoffs, for same-seed determinism checks.
func (m *Manager) HandoffSchedule() []string {
	m.mu.Lock()
	defer m.mu.Unlock()
	return append([]string(nil), m.handoffLog...)
}

// trackClientLocked registers a client for keep-alive monitoring.
func (m *Manager) trackClientLocked(addr string) {
	if _, ok := m.clients[addr]; !ok {
		m.clients[addr] = &clientEntry{addr: addr}
	}
}

// untrackIdleClientLocked forgets a client that owns no RD entries:
// without this, a client whose regions were all freed would be probed
// by the keep-alive loop forever. Its recovery counters stay in
// m.recov so cluster totals survive the untracking.
func (m *Manager) untrackIdleClientLocked(addr string) {
	if _, ok := m.clients[addr]; !ok {
		return
	}
	for _, e := range m.rd {
		if e.client == addr {
			return
		}
	}
	delete(m.clients, addr)
	m.logf("cmd: client %s owns no regions; keep-alive tracking dropped", addr)
}

// keepAliveLoop periodically echoes every known client and reclaims the
// regions of clients that stop responding (§3.1, §4.3).
func (m *Manager) keepAliveLoop() {
	defer m.wg.Done()
	for {
		select {
		case <-m.stop:
			return
		default:
		}
		if !sim.SleepInterruptible(m.cfg.Clock, m.cfg.KeepAliveInterval, m.stop) {
			return
		}
		m.expireDraining()
		m.mu.Lock()
		addrs := make([]string, 0, len(m.clients))
		for addr := range m.clients {
			addrs = append(addrs, addr)
		}
		m.mu.Unlock()
		for _, addr := range addrs {
			addr := addr
			m.wg.Add(1)
			go func() {
				defer m.wg.Done()
				resp, err := m.ep.CallT(addr, &wire.KeepAlive{Incarnation: m.cfg.Incarnation},
					m.probeTimeout(), 1)
				m.mu.Lock()
				c, ok := m.clients[addr]
				if !ok {
					m.mu.Unlock()
					return
				}
				if err == nil {
					c.misses = 0
					// The ack piggybacks the client's cumulative recovery
					// counters; remember the latest report.
					if ack, isAck := resp.(*wire.KeepAliveAck); isAck {
						c.caps = ack.Caps
						m.recov[addr] = recovCounters{
							drops:            ack.Drops,
							revalidations:    ack.Revalidations,
							reopens:          ack.Reopens,
							handoffAdopts:    ack.HandoffAdopts,
							hedgedReads:      ack.HedgedReads,
							hedgeWins:        ack.HedgeWins,
							hedgeWasted:      ack.HedgeWasted,
							retryExhausted:   ack.RetryExhausted,
							checksumFailures: ack.ChecksumFailures,
							corruptHosts:     ack.CorruptHosts,
						}
					}
					m.mu.Unlock()
					return
				}
				// Post-restart grace: while the rebuild window is open, a
				// missed echo proves nothing — the client may still be in
				// outage-mode backoff, or its address only just resurfaced
				// via an inventory report. Counting misses here would
				// orphan survivors before they get a chance to revalidate.
				if m.inRebuild() {
					m.mu.Unlock()
					return
				}
				c.misses++
				dead := c.misses >= m.cfg.KeepAliveMisses
				m.mu.Unlock()
				if dead {
					m.reclaimClient(addr)
				}
			}()
		}
	}
}

// reclaimClient frees every region owned by a dead client.
func (m *Manager) reclaimClient(addr string) {
	m.mu.Lock()
	delete(m.clients, addr)
	var victims []*regionEntry
	for key, e := range m.rd {
		if e.client == addr {
			victims = append(victims, e)
			delete(m.rd, key)
		}
	}
	m.orphanReclaims += int64(len(victims))
	m.mu.Unlock()
	for _, e := range victims {
		m.ep.Notify(e.region.HostAddr, &wire.IMDFreeReq{RegionID: e.region.RegionID})
	}
	m.logf("cmd: client %s presumed dead; reclaimed %d regions", addr, len(victims))
}
