package manager

import (
	"sync"
	"testing"
	"time"

	"dodo/internal/bulk"
	"dodo/internal/pool"
	"dodo/internal/transport"
	"dodo/internal/wire"
)

func fastEndpointCfg() bulk.Config {
	return bulk.Config{
		CallTimeout:   100 * time.Millisecond,
		CallRetries:   2,
		WindowTimeout: 80 * time.Millisecond,
		NackDelay:     30 * time.Millisecond,
	}
}

func fastCfg() Config {
	return Config{
		KeepAliveInterval: 100 * time.Millisecond,
		KeepAliveMisses:   2,
		Endpoint:          fastEndpointCfg(),
	}
}

// fakeIMD is a minimal idle-memory daemon for manager tests: a pool
// behind an endpoint answering IMDAllocReq/IMDFreeReq.
type fakeIMD struct {
	ep    *bulk.Endpoint
	mu    sync.Mutex
	pool  *pool.Pool
	epoch uint64
}

func newFakeIMD(n *transport.Network, addr string, size uint64, epoch uint64) *fakeIMD {
	f := &fakeIMD{pool: pool.NewFirstFitPool(size), epoch: epoch}
	f.ep = bulk.NewEndpoint(n.Host(addr), fastEndpointCfg(), f.handle)
	return f
}

func (f *fakeIMD) handle(from string, msg wire.Message) wire.Message {
	f.mu.Lock()
	defer f.mu.Unlock()
	switch req := msg.(type) {
	case *wire.IMDAllocReq:
		if f.pool.Has(req.RegionID) {
			// Duplicate: idempotent success.
			return &wire.IMDAllocResp{Status: wire.StatusOK, Epoch: f.epoch,
				AvailBytes: f.pool.FreeBytes(), LargestFree: f.pool.LargestFree()}
		}
		off, err := f.pool.Create(req.RegionID, req.Length)
		st := wire.StatusOK
		if err != nil {
			st = wire.StatusNoMem
		}
		return &wire.IMDAllocResp{Status: st, PoolOffset: off, Epoch: f.epoch,
			AvailBytes: f.pool.FreeBytes(), LargestFree: f.pool.LargestFree()}
	case *wire.IMDFreeReq:
		st := wire.StatusOK
		if err := f.pool.Delete(req.RegionID); err != nil {
			st = wire.StatusNotFound
		}
		return &wire.IMDFreeResp{Status: st, Epoch: f.epoch,
			AvailBytes: f.pool.FreeBytes(), LargestFree: f.pool.LargestFree()}
	}
	return nil
}

func (f *fakeIMD) regions() int {
	f.mu.Lock()
	defer f.mu.Unlock()
	return f.pool.Regions()
}

func (f *fakeIMD) has(id uint64) bool {
	f.mu.Lock()
	defer f.mu.Unlock()
	return f.pool.Has(id)
}

// registerHost announces a host as idle to the manager.
func registerHost(t *testing.T, cli *bulk.Endpoint, mgr string, addr string, epoch, avail uint64) {
	t.Helper()
	resp, err := cli.Call(mgr, &wire.HostStatus{
		HostAddr: addr, State: wire.HostIdle, Epoch: epoch, AvailBytes: avail, LargestFree: avail,
	})
	if err != nil {
		t.Fatalf("HostStatus: %v", err)
	}
	if ack := resp.(*wire.HostStatusAck); ack.Status != wire.StatusOK {
		t.Fatalf("HostStatus ack = %v", ack.Status)
	}
}

type testRig struct {
	n   *transport.Network
	mgr *Manager
	cli *bulk.Endpoint
}

func newRig(t *testing.T) *testRig {
	t.Helper()
	n := transport.NewNetwork()
	mgr := New(n.Host("cmd"), fastCfg())
	cli := bulk.NewEndpoint(n.Host("client"), fastEndpointCfg(), clientHandler)
	t.Cleanup(func() { mgr.Close(); cli.Close() })
	return &testRig{n: n, mgr: mgr, cli: cli}
}

// clientHandler answers keep-alives, as the runtime library must.
func clientHandler(from string, msg wire.Message) wire.Message {
	if ka, ok := msg.(*wire.KeepAlive); ok {
		return &wire.KeepAliveAck{ClientID: ka.ClientID}
	}
	return nil
}

func key(inode uint64, off int64) wire.RegionKey {
	return wire.RegionKey{Inode: inode, Offset: off, ClientID: 1}
}

func TestHostRegistrationAndDeregistration(t *testing.T) {
	r := newRig(t)
	registerHost(t, r.cli, "cmd", "imd1", 1, 1<<20)
	if got := r.mgr.Stats().IdleHosts; got != 1 {
		t.Fatalf("IdleHosts = %d, want 1", got)
	}
	resp, err := r.cli.Call("cmd", &wire.HostStatus{HostAddr: "imd1", State: wire.HostBusy})
	if err != nil || resp.(*wire.HostStatusAck).Status != wire.StatusOK {
		t.Fatalf("busy status: %v", err)
	}
	if got := r.mgr.Stats().IdleHosts; got != 0 {
		t.Fatalf("IdleHosts after busy = %d, want 0", got)
	}
}

func TestAllocThroughRealIMDFlow(t *testing.T) {
	r := newRig(t)
	imd := newFakeIMD(r.n, "imd1", 1<<20, 7)
	t.Cleanup(func() { imd.ep.Close() })
	registerHost(t, r.cli, "cmd", "imd1", 7, 1<<20)

	resp, err := r.cli.Call("cmd", &wire.AllocReq{Key: key(1, 0), Length: 4096})
	if err != nil {
		t.Fatalf("AllocReq: %v", err)
	}
	ar := resp.(*wire.AllocResp)
	if ar.Status != wire.StatusOK {
		t.Fatalf("alloc status = %v", ar.Status)
	}
	if ar.Region.HostAddr != "imd1" || ar.Region.Length != 4096 || ar.Region.Epoch != 7 {
		t.Fatalf("region = %+v", ar.Region)
	}
	if !imd.has(ar.Region.RegionID) {
		t.Fatal("imd pool does not hold the allocated region")
	}
	if got := r.mgr.Stats().Allocs; got != 1 {
		t.Fatalf("Allocs = %d, want 1", got)
	}
}

func TestAllocNoHostsReturnsNoMem(t *testing.T) {
	r := newRig(t)
	resp, err := r.cli.Call("cmd", &wire.AllocReq{Key: key(1, 0), Length: 4096})
	if err != nil {
		t.Fatalf("AllocReq: %v", err)
	}
	if st := resp.(*wire.AllocResp).Status; st != wire.StatusNoMem {
		t.Fatalf("alloc with no hosts = %v, want StatusNoMem", st)
	}
	if got := r.mgr.Stats().AllocFailures; got != 1 {
		t.Fatalf("AllocFailures = %d, want 1", got)
	}
}

func TestAllocZeroLengthInvalid(t *testing.T) {
	r := newRig(t)
	resp, err := r.cli.Call("cmd", &wire.AllocReq{Key: key(1, 0), Length: 0})
	if err != nil {
		t.Fatal(err)
	}
	if st := resp.(*wire.AllocResp).Status; st != wire.StatusInvalid {
		t.Fatalf("zero-length alloc = %v, want StatusInvalid", st)
	}
}

func TestAllocIsIdempotentByKey(t *testing.T) {
	r := newRig(t)
	imd := newFakeIMD(r.n, "imd1", 1<<20, 1)
	t.Cleanup(func() { imd.ep.Close() })
	registerHost(t, r.cli, "cmd", "imd1", 1, 1<<20)

	r1, err := r.cli.Call("cmd", &wire.AllocReq{Key: key(9, 100), Length: 1024})
	if err != nil {
		t.Fatal(err)
	}
	r2, err := r.cli.Call("cmd", &wire.AllocReq{Key: key(9, 100), Length: 1024})
	if err != nil {
		t.Fatal(err)
	}
	a, b := r1.(*wire.AllocResp).Region, r2.(*wire.AllocResp).Region
	if a != b {
		t.Fatalf("duplicate alloc returned different regions: %+v vs %+v", a, b)
	}
	if imd.regions() != 1 {
		t.Fatalf("imd holds %d regions after duplicate alloc, want 1", imd.regions())
	}
}

func TestAllocFallsBackToSecondHost(t *testing.T) {
	r := newRig(t)
	// imd1 claims space in the IWD but is actually full; imd2 has room.
	full := newFakeIMD(r.n, "imd1", 512, 1)
	roomy := newFakeIMD(r.n, "imd2", 1<<20, 1)
	t.Cleanup(func() { full.ep.Close(); roomy.ep.Close() })
	registerHost(t, r.cli, "cmd", "imd1", 1, 1<<20) // stale oversized hint
	registerHost(t, r.cli, "cmd", "imd2", 1, 1<<20)

	resp, err := r.cli.Call("cmd", &wire.AllocReq{Key: key(2, 0), Length: 8192})
	if err != nil {
		t.Fatal(err)
	}
	ar := resp.(*wire.AllocResp)
	if ar.Status != wire.StatusOK || ar.Region.HostAddr != "imd2" {
		t.Fatalf("alloc = %v on %s, want OK on imd2", ar.Status, ar.Region.HostAddr)
	}
}

func TestAllocDropsUnreachableHost(t *testing.T) {
	r := newRig(t)
	// Only one candidate, and it is unreachable: the manager must probe
	// it, fail, drop it from the IWD, and report no memory.
	registerHost(t, r.cli, "cmd", "dead-imd", 1, 1<<20)
	r.n.Host("dead-imd") // exists but never answers
	r.n.Partition("dead-imd")

	resp, err := r.cli.Call("cmd", &wire.AllocReq{Key: key(3, 0), Length: 4096})
	if err != nil {
		t.Fatal(err)
	}
	if st := resp.(*wire.AllocResp).Status; st != wire.StatusNoMem {
		t.Fatalf("alloc with only a dead host = %v, want StatusNoMem", st)
	}
	// The unreachable host must have been dropped from the IWD.
	if got := r.mgr.Stats().IdleHosts; got != 0 {
		t.Fatalf("IdleHosts = %d after probing dead host, want 0", got)
	}
}

func TestFreeForwardsToIMD(t *testing.T) {
	r := newRig(t)
	imd := newFakeIMD(r.n, "imd1", 1<<20, 1)
	t.Cleanup(func() { imd.ep.Close() })
	registerHost(t, r.cli, "cmd", "imd1", 1, 1<<20)

	if _, err := r.cli.Call("cmd", &wire.AllocReq{Key: key(4, 0), Length: 2048}); err != nil {
		t.Fatal(err)
	}
	resp, err := r.cli.Call("cmd", &wire.FreeReq{Key: key(4, 0)})
	if err != nil {
		t.Fatal(err)
	}
	if st := resp.(*wire.FreeResp).Status; st != wire.StatusOK {
		t.Fatalf("free = %v", st)
	}
	// Free is forwarded asynchronously; wait for the imd to see it.
	deadline := time.Now().Add(2 * time.Second)
	for imd.regions() != 0 && time.Now().Before(deadline) {
		time.Sleep(5 * time.Millisecond)
	}
	if imd.regions() != 0 {
		t.Fatal("imd still holds the freed region")
	}
	// Second free: not found.
	resp, err = r.cli.Call("cmd", &wire.FreeReq{Key: key(4, 0)})
	if err != nil {
		t.Fatal(err)
	}
	if st := resp.(*wire.FreeResp).Status; st != wire.StatusNotFound {
		t.Fatalf("double free = %v, want StatusNotFound", st)
	}
}

func TestCheckAllocValidAndStale(t *testing.T) {
	r := newRig(t)
	imd := newFakeIMD(r.n, "imd1", 1<<20, 5)
	t.Cleanup(func() { imd.ep.Close() })
	registerHost(t, r.cli, "cmd", "imd1", 5, 1<<20)

	alloc, err := r.cli.Call("cmd", &wire.AllocReq{Key: key(5, 0), Length: 1024})
	if err != nil {
		t.Fatal(err)
	}
	want := alloc.(*wire.AllocResp).Region

	resp, err := r.cli.Call("cmd", &wire.CheckAllocReq{Key: key(5, 0)})
	if err != nil {
		t.Fatal(err)
	}
	ca := resp.(*wire.CheckAllocResp)
	if ca.Status != wire.StatusOK || ca.Region != want {
		t.Fatalf("checkAlloc = %v %+v, want OK %+v", ca.Status, ca.Region, want)
	}

	// The imd restarts: epoch bumps. checkAlloc must detect staleness,
	// delete the region, and report failure (§4.3).
	registerHost(t, r.cli, "cmd", "imd1", 6, 1<<20)
	resp, err = r.cli.Call("cmd", &wire.CheckAllocReq{Key: key(5, 0)})
	if err != nil {
		t.Fatal(err)
	}
	if st := resp.(*wire.CheckAllocResp).Status; st != wire.StatusStale {
		t.Fatalf("stale checkAlloc = %v, want StatusStale", st)
	}
	if got := r.mgr.Stats().StaleDrops; got != 1 {
		t.Fatalf("StaleDrops = %d, want 1", got)
	}
	// And the region is gone from the RD now.
	resp, err = r.cli.Call("cmd", &wire.CheckAllocReq{Key: key(5, 0)})
	if err != nil {
		t.Fatal(err)
	}
	if st := resp.(*wire.CheckAllocResp).Status; st != wire.StatusNotFound {
		t.Fatalf("checkAlloc after stale drop = %v, want StatusNotFound", st)
	}
}

func TestCheckAllocHostReclaimedIsStale(t *testing.T) {
	r := newRig(t)
	imd := newFakeIMD(r.n, "imd1", 1<<20, 5)
	t.Cleanup(func() { imd.ep.Close() })
	registerHost(t, r.cli, "cmd", "imd1", 5, 1<<20)
	if _, err := r.cli.Call("cmd", &wire.AllocReq{Key: key(6, 0), Length: 512}); err != nil {
		t.Fatal(err)
	}
	// Owner reclaims the workstation.
	if _, err := r.cli.Call("cmd", &wire.HostStatus{HostAddr: "imd1", State: wire.HostBusy}); err != nil {
		t.Fatal(err)
	}
	resp, err := r.cli.Call("cmd", &wire.CheckAllocReq{Key: key(6, 0)})
	if err != nil {
		t.Fatal(err)
	}
	if st := resp.(*wire.CheckAllocResp).Status; st != wire.StatusStale {
		t.Fatalf("checkAlloc on reclaimed host = %v, want StatusStale", st)
	}
}

func TestKeepAliveReclaimsDeadClient(t *testing.T) {
	n := transport.NewNetwork()
	mgr := New(n.Host("cmd"), fastCfg())
	t.Cleanup(func() { mgr.Close() })
	imd := newFakeIMD(n, "imd1", 1<<20, 1)
	t.Cleanup(func() { imd.ep.Close() })

	cli := bulk.NewEndpoint(n.Host("client"), fastEndpointCfg(), clientHandler)
	registerHost(t, cli, "cmd", "imd1", 1, 1<<20)
	if _, err := cli.Call("cmd", &wire.AllocReq{Key: key(7, 0), Length: 1024}); err != nil {
		t.Fatal(err)
	}
	if imd.regions() != 1 {
		t.Fatal("precondition: imd should hold one region")
	}

	// Client dies: stop answering keep-alives.
	cli.Close()
	n.Partition("client")

	deadline := time.Now().Add(5 * time.Second)
	for time.Now().Before(deadline) {
		if s := mgr.Stats(); s.OrphanReclaims == 1 && s.Regions == 0 {
			break
		}
		time.Sleep(20 * time.Millisecond)
	}
	s := mgr.Stats()
	if s.OrphanReclaims != 1 || s.Regions != 0 || s.Clients != 0 {
		t.Fatalf("after client death: %+v, want 1 orphan reclaim, 0 regions, 0 clients", s)
	}
	deadline = time.Now().Add(2 * time.Second)
	for imd.regions() != 0 && time.Now().Before(deadline) {
		time.Sleep(10 * time.Millisecond)
	}
	if imd.regions() != 0 {
		t.Fatal("imd still holds the orphaned region")
	}
}

func TestKeepAliveKeepsLiveClient(t *testing.T) {
	r := newRig(t)
	imd := newFakeIMD(r.n, "imd1", 1<<20, 1)
	t.Cleanup(func() { imd.ep.Close() })
	registerHost(t, r.cli, "cmd", "imd1", 1, 1<<20)
	if _, err := r.cli.Call("cmd", &wire.AllocReq{Key: key(8, 0), Length: 1024}); err != nil {
		t.Fatal(err)
	}
	// Survive several keep-alive rounds.
	time.Sleep(500 * time.Millisecond)
	s := r.mgr.Stats()
	if s.OrphanReclaims != 0 || s.Regions != 1 {
		t.Fatalf("live client was reclaimed: %+v", s)
	}
}

func TestManagerCloseIsIdempotent(t *testing.T) {
	n := transport.NewNetwork()
	mgr := New(n.Host("cmd"), fastCfg())
	if err := mgr.Close(); err != nil {
		t.Fatal(err)
	}
	if err := mgr.Close(); err != nil {
		t.Fatal(err)
	}
}

func TestConcurrentAllocsDistinctKeys(t *testing.T) {
	r := newRig(t)
	imd := newFakeIMD(r.n, "imd1", 1<<22, 1)
	t.Cleanup(func() { imd.ep.Close() })
	registerHost(t, r.cli, "cmd", "imd1", 1, 1<<22)

	const workers = 8
	var wg sync.WaitGroup
	errs := make([]error, workers)
	for w := 0; w < workers; w++ {
		w := w
		wg.Add(1)
		go func() {
			defer wg.Done()
			resp, err := r.cli.Call("cmd", &wire.AllocReq{Key: key(100, int64(w)), Length: 4096})
			if err != nil {
				errs[w] = err
				return
			}
			if resp.(*wire.AllocResp).Status != wire.StatusOK {
				errs[w] = bulk.ErrRejected
			}
		}()
	}
	wg.Wait()
	for w, err := range errs {
		if err != nil {
			t.Fatalf("worker %d: %v", w, err)
		}
	}
	if got := r.mgr.Stats().Regions; got != workers {
		t.Fatalf("Regions = %d, want %d", got, workers)
	}
	if imd.regions() != workers {
		t.Fatalf("imd regions = %d, want %d", imd.regions(), workers)
	}
}

func TestFreeRefreshesIWDHints(t *testing.T) {
	r := newRig(t)
	imd := newFakeIMD(r.n, "imd1", 1<<20, 1)
	t.Cleanup(func() { imd.ep.Close() })
	registerHost(t, r.cli, "cmd", "imd1", 1, 1<<20)

	if _, err := r.cli.Call("cmd", &wire.AllocReq{Key: key(55, 0), Length: 1 << 19}); err != nil {
		t.Fatal(err)
	}
	// The alloc response's piggyback halves the availability hint.
	availHint := func() uint64 {
		resp, err := r.cli.Call("cmd", &wire.ClusterStatsReq{})
		if err != nil {
			t.Fatal(err)
		}
		st := resp.(*wire.ClusterStatsResp)
		if len(st.Hosts) != 1 {
			t.Fatalf("hosts = %d", len(st.Hosts))
		}
		return st.Hosts[0].AvailBytes
	}
	if got := availHint(); got != 1<<19 {
		t.Fatalf("avail hint after alloc = %d, want %d", got, 1<<19)
	}
	if _, err := r.cli.Call("cmd", &wire.FreeReq{Key: key(55, 0)}); err != nil {
		t.Fatal(err)
	}
	// The async free response must restore the full-pool availability.
	deadline := time.Now().Add(2 * time.Second)
	for time.Now().Before(deadline) {
		if availHint() == 1<<20 {
			return
		}
		time.Sleep(20 * time.Millisecond)
	}
	t.Fatalf("avail hint = %d after free, want %d", availHint(), 1<<20)
}

// TestFailedAllocDoesNotTrackClient: a client whose allocation fails
// owns nothing, so the keep-alive loop must not start probing it.
func TestFailedAllocDoesNotTrackClient(t *testing.T) {
	r := newRig(t)
	resp, err := r.cli.Call("cmd", &wire.AllocReq{Key: key(70, 0), Length: 4096})
	if err != nil {
		t.Fatal(err)
	}
	if st := resp.(*wire.AllocResp).Status; st != wire.StatusNoMem {
		t.Fatalf("alloc with no hosts = %v, want StatusNoMem", st)
	}
	if got := r.mgr.Stats().Clients; got != 0 {
		t.Fatalf("Clients = %d after a failed alloc, want 0 (keep-alive leak)", got)
	}
}

// TestClientUntrackedAfterLastFree: once a client frees its last region
// it must leave the keep-alive set — otherwise every client that ever
// allocated is probed forever.
func TestClientUntrackedAfterLastFree(t *testing.T) {
	r := newRig(t)
	imd := newFakeIMD(r.n, "imd1", 1<<20, 1)
	t.Cleanup(func() { imd.ep.Close() })
	registerHost(t, r.cli, "cmd", "imd1", 1, 1<<20)

	if _, err := r.cli.Call("cmd", &wire.AllocReq{Key: key(71, 0), Length: 1024}); err != nil {
		t.Fatal(err)
	}
	if _, err := r.cli.Call("cmd", &wire.AllocReq{Key: key(71, 4096), Length: 1024}); err != nil {
		t.Fatal(err)
	}
	if got := r.mgr.Stats().Clients; got != 1 {
		t.Fatalf("Clients = %d after allocs, want 1", got)
	}
	if _, err := r.cli.Call("cmd", &wire.FreeReq{Key: key(71, 0)}); err != nil {
		t.Fatal(err)
	}
	// One region left: still tracked.
	if got := r.mgr.Stats().Clients; got != 1 {
		t.Fatalf("Clients = %d with one region left, want 1", got)
	}
	if _, err := r.cli.Call("cmd", &wire.FreeReq{Key: key(71, 4096)}); err != nil {
		t.Fatal(err)
	}
	if got := r.mgr.Stats().Clients; got != 0 {
		t.Fatalf("Clients = %d after last free, want 0 (keep-alive leak)", got)
	}
}

// TestKeepAliveAggregatesRecoveryCounters: keep-alive acks piggyback the
// client's cumulative recovery counters; the manager's snapshot sums
// them, and the totals survive the client being untracked.
func TestKeepAliveAggregatesRecoveryCounters(t *testing.T) {
	n := transport.NewNetwork()
	mgr := New(n.Host("cmd"), fastCfg())
	t.Cleanup(func() { mgr.Close() })
	imd := newFakeIMD(n, "imd1", 1<<20, 1)
	t.Cleanup(func() { imd.ep.Close() })

	cli := bulk.NewEndpoint(n.Host("client"), fastEndpointCfg(), func(from string, msg wire.Message) wire.Message {
		if ka, ok := msg.(*wire.KeepAlive); ok {
			return &wire.KeepAliveAck{ClientID: ka.ClientID, Drops: 3, Revalidations: 2, Reopens: 1}
		}
		return nil
	})
	t.Cleanup(func() { cli.Close() })
	registerHost(t, cli, "cmd", "imd1", 1, 1<<20)
	if _, err := cli.Call("cmd", &wire.AllocReq{Key: key(72, 0), Length: 1024}); err != nil {
		t.Fatal(err)
	}

	deadline := time.Now().Add(5 * time.Second)
	for time.Now().Before(deadline) {
		if s := mgr.Stats(); s.ClientDrops == 3 && s.ClientRevalidations == 2 && s.ClientReopens == 1 {
			break
		}
		time.Sleep(20 * time.Millisecond)
	}
	if s := mgr.Stats(); s.ClientDrops != 3 || s.ClientRevalidations != 2 || s.ClientReopens != 1 {
		t.Fatalf("recovery counters never aggregated: %+v", s)
	}
	// Free the last region: the client is untracked, but the cluster
	// totals must not drop (acks carry running totals, not deltas).
	if _, err := cli.Call("cmd", &wire.FreeReq{Key: key(72, 0)}); err != nil {
		t.Fatal(err)
	}
	s := mgr.Stats()
	if s.Clients != 0 {
		t.Fatalf("Clients = %d after last free, want 0", s.Clients)
	}
	if s.ClientDrops != 3 || s.ClientRevalidations != 2 || s.ClientReopens != 1 {
		t.Fatalf("recovery totals lost on untrack: %+v", s)
	}
}

func TestClusterStatsRPC(t *testing.T) {
	r := newRig(t)
	imd := newFakeIMD(r.n, "imd1", 1<<20, 4)
	t.Cleanup(func() { imd.ep.Close() })
	registerHost(t, r.cli, "cmd", "imd1", 4, 1<<20)
	if _, err := r.cli.Call("cmd", &wire.AllocReq{Key: key(60, 0), Length: 4096}); err != nil {
		t.Fatal(err)
	}
	resp, err := r.cli.Call("cmd", &wire.ClusterStatsReq{})
	if err != nil {
		t.Fatal(err)
	}
	st := resp.(*wire.ClusterStatsResp)
	if st.Status != wire.StatusOK || len(st.Hosts) != 1 || st.Regions != 1 || st.Allocs != 1 {
		t.Fatalf("stats = %+v", st)
	}
	if st.Hosts[0].Addr != "imd1" || st.Hosts[0].Epoch != 4 {
		t.Fatalf("host row = %+v", st.Hosts[0])
	}
}
