package region

import (
	"bytes"
	"testing"

	"dodo/internal/core"
)

// gatedDodo blocks Mopen until released, so the test controls when an
// opportunistic cloneRemote's I/O runs relative to a concurrent write.
type gatedDodo struct {
	*benchDodo
	gate    chan struct{} // Mopen waits on this
	entered chan struct{} // signaled when Mopen is reached
}

func (g *gatedDodo) Mopen(length int64, backing core.Backing, offset int64) (int, error) {
	g.entered <- struct{}{}
	<-g.gate
	return g.benchDodo.Mopen(length, backing, offset)
}

func TestStaleCloneClobbersConcurrentWrite(t *testing.T) {
	fake := &gatedDodo{
		benchDodo: newBenchDodo(1<<20, 0),
		gate:      make(chan struct{}),
		entered:   make(chan struct{}, 1),
	}
	back := core.NewMemBacking(1, 8192)
	// Capacity below the region size: the region can never go local, so
	// every access is a read-/write-through.
	c := NewCache(fake, Config{Capacity: 1024, Policy: NewLRU(), PromoteOnAccess: true})

	const n = 8192
	fd, err := c.Copen(n, back, 0)
	if err != nil {
		t.Fatal(err)
	}
	old := bytes.Repeat([]byte{0xAA}, n)
	if _, err := back.WriteAt(old, 0); err != nil {
		t.Fatal(err)
	}

	// Reader: full-region read-through; it reads OLD from disk and then
	// tries the opportunistic cloneRemote, which parks in Mopen.
	readerDone := make(chan error, 1)
	go func() {
		buf := make([]byte, n)
		_, err := c.Cread(fd, 0, buf)
		readerDone <- err
	}()
	<-fake.entered // clone is in flight, holding OLD bytes

	// Writer: full-region write of NEW. cloneRemote is busy (cloning
	// flag), so this lands on disk directly and returns success.
	newData := bytes.Repeat([]byte{0xBB}, n)
	if _, err := c.Cwrite(fd, 0, newData); err != nil {
		t.Fatal(err)
	}

	// Release the clone. It must notice the write generation moved
	// while it was parked in Mopen and discard the fresh clone instead
	// of pushing OLD (whose Mwrite would reach disk too).
	close(fake.gate)
	if err := <-readerDone; err != nil {
		t.Fatal(err)
	}
	c.Quiesce()

	got := make([]byte, n)
	if _, err := c.Cread(fd, 0, got); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, newData) {
		t.Fatalf("acknowledged write lost: read back 0x%02x, want 0x%02x (stale clone overwrote it)", got[0], newData[0])
	}
	onDisk := make([]byte, n)
	if _, err := back.ReadAt(onDisk, 0); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(onDisk, newData) {
		t.Fatalf("disk reverted to 0x%02x after acknowledged write of 0x%02x", onDisk[0], newData[0])
	}
}
