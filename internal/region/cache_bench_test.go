package region

import (
	"fmt"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"dodo/internal/core"
)

// benchDodo is a thread-safe Dodo fake that charges a fixed latency per
// remote operation, outside its own lock, so concurrent callers overlap
// the way real network round-trips do. The cache under test decides how
// much of that overlap survives: a cache that holds its global mutex
// across Mread serializes every sleep. The op counters let concurrency
// tests observe fetch coalescing.
type benchDodo struct {
	latency time.Duration

	mopens, mreads, mwrites, mcloses, mreadBatches atomic.Int64

	mu       sync.Mutex
	capacity int64
	used     int64
	nextFD   int
	regions  map[int]*fakeRegion
}

// remoteUsed reports the bytes currently allocated in the fake remote
// cache — zero once every clone has been released.
func (f *benchDodo) remoteUsed() int64 {
	f.mu.Lock()
	defer f.mu.Unlock()
	return f.used
}

func newBenchDodo(capacity int64, latency time.Duration) *benchDodo {
	return &benchDodo{capacity: capacity, latency: latency, regions: make(map[int]*fakeRegion)}
}

func (f *benchDodo) Mopen(length int64, backing core.Backing, offset int64) (int, error) {
	f.mopens.Add(1)
	time.Sleep(f.latency)
	f.mu.Lock()
	defer f.mu.Unlock()
	if f.used+length > f.capacity {
		return -1, core.ErrNoMem
	}
	fd := f.nextFD
	f.nextFD++
	f.regions[fd] = &fakeRegion{data: make([]byte, length), backing: backing, backOff: offset}
	f.used += length
	return fd, nil
}

func (f *benchDodo) Mread(fd int, offset int64, buf []byte) (int, error) {
	f.mreads.Add(1)
	time.Sleep(f.latency)
	f.mu.Lock()
	defer f.mu.Unlock()
	r, ok := f.regions[fd]
	if !ok {
		return -1, core.ErrNoMem
	}
	return copy(buf, r.data[offset:]), nil
}

// MreadBatch serves a whole window of reads for one latency charge,
// modeling the real client's single-exchange batched fetch. With this
// method present the cache's prefetch pipeline batches each window
// instead of paying one round trip per region.
func (f *benchDodo) MreadBatch(reqs []core.BatchRead) []core.BatchResult {
	f.mreadBatches.Add(1)
	time.Sleep(f.latency)
	f.mu.Lock()
	defer f.mu.Unlock()
	results := make([]core.BatchResult, len(reqs))
	for i := range reqs {
		r, ok := f.regions[reqs[i].Fd]
		if !ok {
			results[i] = core.BatchResult{N: -1, Err: core.ErrNoMem}
			continue
		}
		results[i] = core.BatchResult{N: copy(reqs[i].Buf, r.data[reqs[i].Offset:])}
	}
	return results
}

func (f *benchDodo) Mwrite(fd int, offset int64, buf []byte) (int, error) {
	f.mwrites.Add(1)
	time.Sleep(f.latency)
	f.mu.Lock()
	r, ok := f.regions[fd]
	if !ok {
		f.mu.Unlock()
		return -1, core.ErrNoMem
	}
	n := copy(r.data[offset:], buf)
	backing, backOff := r.backing, r.backOff
	f.mu.Unlock()
	// Write-through to disk, like the real Mwrite.
	if _, err := backing.WriteAt(buf[:n], backOff+offset); err != nil {
		return -1, err
	}
	return n, nil
}

func (f *benchDodo) Mclose(fd int) error {
	f.mcloses.Add(1)
	f.mu.Lock()
	defer f.mu.Unlock()
	r, ok := f.regions[fd]
	if !ok {
		return core.ErrInval
	}
	f.used -= int64(len(r.data))
	delete(f.regions, fd)
	return nil
}

func (f *benchDodo) Msync(fd int) error { return nil }

// slowBacking wraps a MemBacking with a per-I/O seek latency, modeling
// the disk a read-through pays when a region is neither local nor
// remote.
type slowBacking struct {
	inner   *core.MemBacking
	latency time.Duration
}

func (b *slowBacking) ReadAt(p []byte, off int64) (int, error) {
	time.Sleep(b.latency)
	return b.inner.ReadAt(p, off)
}

func (b *slowBacking) WriteAt(p []byte, off int64) (int, error) {
	time.Sleep(b.latency)
	return b.inner.WriteAt(p, off)
}

func (b *slowBacking) Sync() error    { return b.inner.Sync() }
func (b *slowBacking) Inode() uint64  { return b.inner.Inode() }
func (b *slowBacking) Writable() bool { return b.inner.Writable() }

// BenchmarkCreadParallel drives 8 goroutines through a mixed population
// — 64 local, 32 remote, 32 disk-only regions — with promotion disabled
// so the population is stable across iterations. The first-in policy
// refuses victims once the cache fills, which is what pins the three
// classes in place. Remote reads cost 30µs, disk reads 60µs; how much
// of that latency the 8 readers can overlap is the measurement.
func BenchmarkCreadParallel(b *testing.B) {
	const (
		regionSize = 4096
		nLocal     = 64
		nRemote    = 32
		nDisk      = 32
		readers    = 8
	)
	fake := newBenchDodo(1<<30, 30*time.Microsecond)
	back := &slowBacking{
		inner:   core.NewMemBacking(1, (nLocal+nRemote+nDisk)*regionSize),
		latency: 60 * time.Microsecond,
	}
	c := NewCache(fake, Config{
		Capacity:        nLocal * regionSize,
		Policy:          NewFirstIn(),
		PromoteOnAccess: false,
	})
	var fds []int
	for i := 0; i < nLocal+nRemote+nDisk; i++ {
		fd, err := c.Copen(regionSize, back, int64(i)*regionSize)
		if err != nil {
			b.Fatal(err)
		}
		fds = append(fds, fd)
		if i >= nLocal && i < nLocal+nRemote {
			// The cache is full and first-in refuses victims, so the
			// prefetch stages this region in remote memory.
			c.Prefetch(fd)
			if st, _ := c.State(fd); st != StateRemote {
				b.Fatalf("region %d state = %v, want remote", i, st)
			}
		}
	}
	// Reads hit offset 512 for 1 KB: never a full-region read, so
	// read-through cannot opportunistically migrate the disk class.
	b.SetBytes(1024)
	b.ReportAllocs()
	b.ResetTimer()
	var wg sync.WaitGroup
	for g := 0; g < readers; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			buf := make([]byte, 1024)
			for i := g; i < b.N; i += readers {
				fd := fds[(i*13+g)%len(fds)]
				if _, err := c.Cread(fd, 512, buf); err != nil {
					b.Error(err)
					return
				}
			}
		}(g)
	}
	wg.Wait()
}

// BenchmarkPrefetchPipeline walks a long sequential file through a
// small cache. With PrefetchWorkers=0 every prefetch pull runs inline
// on the reading goroutine, so the walk pays each region's fetch
// latency in the foreground; with a worker pool the pulls for the next
// PrefetchWindow regions overlap the current read. The gap between the
// two sub-benchmarks is the pipelining win.
func BenchmarkPrefetchPipeline(b *testing.B) {
	const (
		regionSize = 4096
		nRegions   = 128
	)
	for _, workers := range []int{0, 4} {
		b.Run(fmt.Sprintf("workers=%d", workers), func(b *testing.B) {
			fake := newBenchDodo(1<<30, 30*time.Microsecond)
			back := &slowBacking{
				inner:   core.NewMemBacking(1, nRegions*regionSize),
				latency: 60 * time.Microsecond,
			}
			c := NewCache(fake, Config{
				Capacity:           8 * regionSize,
				Policy:             NewLRU(),
				PromoteOnAccess:    true,
				SequentialPrefetch: true,
				PrefetchWindow:     4,
				PrefetchWorkers:    workers,
			})
			defer c.Close()
			var fds []int
			for i := 0; i < nRegions; i++ {
				fd, err := c.Copen(regionSize, back, int64(i)*regionSize)
				if err != nil {
					b.Fatal(err)
				}
				fds = append(fds, fd)
			}
			buf := make([]byte, regionSize)
			b.SetBytes(regionSize)
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, err := c.Cread(fds[i%nRegions], 0, buf); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}
