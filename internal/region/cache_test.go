package region

import (
	"bytes"
	"errors"
	"testing"
	"time"

	"dodo/internal/core"
	"dodo/internal/sim"
)

// fakeDodo is an in-memory Dodo runtime with a bounded remote pool and
// switchable failure, letting cache tests run without a cluster.
type fakeDodo struct {
	capacity int64
	used     int64
	nextFD   int
	regions  map[int]*fakeRegion
	failAll  bool

	mopens, mreads, mwrites, mcloses int
}

type fakeRegion struct {
	data    []byte
	backing core.Backing
	backOff int64
}

func newFakeDodo(capacity int64) *fakeDodo {
	return &fakeDodo{capacity: capacity, regions: make(map[int]*fakeRegion)}
}

func (f *fakeDodo) Mopen(length int64, backing core.Backing, offset int64) (int, error) {
	f.mopens++
	if f.failAll || f.used+length > f.capacity {
		return -1, core.ErrNoMem
	}
	fd := f.nextFD
	f.nextFD++
	f.regions[fd] = &fakeRegion{data: make([]byte, length), backing: backing, backOff: offset}
	f.used += length
	return fd, nil
}

func (f *fakeDodo) Mread(fd int, offset int64, buf []byte) (int, error) {
	f.mreads++
	r, ok := f.regions[fd]
	if !ok || f.failAll {
		return -1, core.ErrNoMem
	}
	return copy(buf, r.data[offset:]), nil
}

func (f *fakeDodo) Mwrite(fd int, offset int64, buf []byte) (int, error) {
	f.mwrites++
	r, ok := f.regions[fd]
	if !ok || f.failAll {
		return -1, core.ErrNoMem
	}
	n := copy(r.data[offset:], buf)
	// Write-through to disk, like the real Mwrite.
	if _, err := r.backing.WriteAt(buf[:n], r.backOff+offset); err != nil {
		return -1, err
	}
	return n, nil
}

func (f *fakeDodo) Mclose(fd int) error {
	f.mcloses++
	r, ok := f.regions[fd]
	if !ok {
		return core.ErrInval
	}
	f.used -= int64(len(r.data))
	delete(f.regions, fd)
	return nil
}

func (f *fakeDodo) Msync(fd int) error { return nil }

func newTestCache(t *testing.T, localCap, remoteCap int64, policy Policy) (*Cache, *fakeDodo) {
	t.Helper()
	fake := newFakeDodo(remoteCap)
	c := NewCache(fake, Config{
		Capacity:         localCap,
		Policy:           policy,
		RefractionPeriod: 100 * time.Millisecond,
		PromoteOnAccess:  true,
	})
	return c, fake
}

func TestCopenReadWriteLocal(t *testing.T) {
	c, _ := newTestCache(t, 1<<20, 1<<20, NewLRU())
	back := core.NewMemBacking(1, 4096)
	fd, err := c.Copen(4096, back, 0)
	if err != nil {
		t.Fatal(err)
	}
	st, err := c.State(fd)
	if err != nil || st != StateLocal {
		t.Fatalf("State = %v, %v; want local", st, err)
	}
	data := bytes.Repeat([]byte("hi"), 2048)
	n, err := c.Cwrite(fd, 0, data)
	if err != nil || n != 4096 {
		t.Fatalf("Cwrite = %d, %v", n, err)
	}
	got := make([]byte, 4096)
	n, err = c.Cread(fd, 0, got)
	if err != nil || n != 4096 || !bytes.Equal(got, data) {
		t.Fatalf("Cread = %d, %v", n, err)
	}
	if c.Stats().LocalHits != 1 {
		t.Fatalf("LocalHits = %d, want 1", c.Stats().LocalHits)
	}
}

func TestCopenValidation(t *testing.T) {
	c, _ := newTestCache(t, 1<<20, 1<<20, NewLRU())
	back := core.NewMemBacking(1, 100)
	if _, err := c.Copen(0, back, 0); err == nil {
		t.Fatal("Copen(0) succeeded")
	}
	if _, err := c.Copen(10, back, -1); err == nil {
		t.Fatal("Copen(offset -1) succeeded")
	}
	if _, err := c.Copen(10, nil, 0); err == nil {
		t.Fatal("Copen(nil backing) succeeded")
	}
}

func TestBadDescriptorErrors(t *testing.T) {
	c, _ := newTestCache(t, 1<<20, 1<<20, NewLRU())
	buf := make([]byte, 8)
	if _, err := c.Cread(42, 0, buf); !errors.Is(err, ErrBadFD) {
		t.Fatalf("Cread bad fd = %v", err)
	}
	if _, err := c.Cwrite(42, 0, buf); !errors.Is(err, ErrBadFD) {
		t.Fatalf("Cwrite bad fd = %v", err)
	}
	if err := c.Cclose(42); !errors.Is(err, ErrBadFD) {
		t.Fatalf("Cclose bad fd = %v", err)
	}
	if err := c.Csync(42); !errors.Is(err, ErrBadFD) {
		t.Fatalf("Csync bad fd = %v", err)
	}
}

func TestRangeChecks(t *testing.T) {
	c, _ := newTestCache(t, 1<<20, 1<<20, NewLRU())
	back := core.NewMemBacking(1, 100)
	fd, _ := c.Copen(100, back, 0)
	buf := make([]byte, 8)
	if _, err := c.Cread(fd, 101, buf); !errors.Is(err, ErrRange) {
		t.Fatalf("Cread past end = %v", err)
	}
	if _, err := c.Cwrite(fd, 101, buf); !errors.Is(err, ErrRange) {
		t.Fatalf("Cwrite past end = %v", err)
	}
	// Short read/write at the tail.
	n, err := c.Cread(fd, 96, buf)
	if err != nil || n != 4 {
		t.Fatalf("tail Cread = %d, %v; want 4", n, err)
	}
	n, err = c.Cwrite(fd, 96, buf)
	if err != nil || n != 4 {
		t.Fatalf("tail Cwrite = %d, %v; want 4", n, err)
	}
}

func TestEvictionMigratesToRemote(t *testing.T) {
	// Local cache fits 2 regions; the third evicts the LRU victim into
	// remote memory (grimReaper, Figure 5).
	c, fake := newTestCache(t, 8192, 1<<20, NewLRU())
	back := core.NewMemBacking(1, 1<<20)
	fd0, _ := c.Copen(4096, back, 0)
	fd1, _ := c.Copen(4096, back, 4096)
	// Touch fd0 so fd1 is the LRU victim... actually touch order: read
	// fd0 makes fd1 least recent.
	buf := make([]byte, 16)
	if _, err := c.Cread(fd0, 0, buf); err != nil {
		t.Fatal(err)
	}
	fd2, err := c.Copen(4096, back, 8192)
	if err != nil {
		t.Fatal(err)
	}
	st1, _ := c.State(fd1)
	if st1 != StateRemote {
		t.Fatalf("victim state = %v, want remote", st1)
	}
	st2, _ := c.State(fd2)
	if st2 != StateLocal {
		t.Fatalf("new region state = %v, want local", st2)
	}
	if fake.mopens != 1 {
		t.Fatalf("mopens = %d, want 1 (one migration)", fake.mopens)
	}
	if c.Stats().Evictions != 1 || c.Stats().RemoteClones != 1 {
		t.Fatalf("stats = %+v", c.Stats())
	}
}

func TestEvictedDirtyRegionFlushedBeforeMigration(t *testing.T) {
	c, _ := newTestCache(t, 4096, 1<<20, NewLRU())
	back := core.NewMemBacking(1, 1<<20)
	fd0, _ := c.Copen(4096, back, 0)
	payload := bytes.Repeat([]byte{0xEE}, 4096)
	if _, err := c.Cwrite(fd0, 0, payload); err != nil {
		t.Fatal(err)
	}
	// Force eviction of the dirty region.
	if _, err := c.Copen(4096, back, 4096); err != nil {
		t.Fatal(err)
	}
	// Dirty data must be on disk now (writeToDisk before migration).
	if !bytes.Equal(back.Bytes()[:4096], payload) {
		t.Fatal("dirty victim was not written to disk before eviction")
	}
	// And readable from its remote copy.
	got := make([]byte, 4096)
	n, err := c.Cread(fd0, 0, got)
	if err != nil || n != 4096 || !bytes.Equal(got, payload) {
		t.Fatalf("read after eviction = %d, %v", n, err)
	}
}

func TestRemoteExhaustionSpillsToDiskWithRefraction(t *testing.T) {
	clock := sim.NewVirtualClock(time.Unix(0, 0))
	fake := newFakeDodo(4096) // remote fits one region only
	c := NewCache(fake, Config{
		Capacity:         4096, // local fits one region
		Policy:           NewLRU(),
		RefractionPeriod: time.Minute,
		Clock:            clock,
		PromoteOnAccess:  true,
	})
	back := core.NewMemBacking(1, 1<<20)
	fds := make([]int, 4)
	for i := range fds {
		fd, err := c.Copen(4096, back, int64(i)*4096)
		if err != nil {
			t.Fatalf("Copen %d: %v", i, err)
		}
		fds[i] = fd
	}
	// fd0 evicted -> remote (fits); fd1 evicted -> remote full -> disk
	// spill + refraction; fd2's eviction within refraction must skip
	// the mopen attempt entirely.
	st0, _ := c.State(fds[0])
	if st0 != StateRemote {
		t.Fatalf("fd0 state = %v, want remote", st0)
	}
	st1, _ := c.State(fds[1])
	if st1 != StateDiskOnly {
		t.Fatalf("fd1 state = %v, want disk-only", st1)
	}
	if c.Stats().RefractSkips == 0 {
		t.Fatal("no refraction skips recorded")
	}
	mopensBefore := fake.mopens
	clock.Advance(2 * time.Minute)
	// After refraction, attempts resume (and fail again, re-arming).
	if _, err := c.Copen(4096, back, 1<<19); err != nil {
		t.Fatal(err)
	}
	if fake.mopens <= mopensBefore {
		t.Fatal("no mopen attempted after refraction expired")
	}
}

func TestFirstInNeverReplaces(t *testing.T) {
	c, _ := newTestCache(t, 8192, 1<<20, NewFirstIn())
	back := core.NewMemBacking(1, 1<<20)
	fd0, _ := c.Copen(4096, back, 0)
	fd1, _ := c.Copen(4096, back, 4096)
	// Cache full of first-accessed regions; the next region cannot
	// displace them.
	fd2, err := c.Copen(4096, back, 8192)
	if err != nil {
		t.Fatal(err)
	}
	st0, _ := c.State(fd0)
	st1, _ := c.State(fd1)
	st2, _ := c.State(fd2)
	if st0 != StateLocal || st1 != StateLocal {
		t.Fatalf("first-in residents displaced: %v %v", st0, st1)
	}
	if st2 == StateLocal {
		t.Fatalf("late region became local under first-in: %v", st2)
	}
	// Reading the remote region must NOT promote it (no victim).
	buf := make([]byte, 16)
	if _, err := c.Cread(fd2, 0, buf); err != nil {
		t.Fatal(err)
	}
	st2, _ = c.State(fd2)
	if st2 == StateLocal || st2 == StateLocalRemote {
		t.Fatalf("first-in promoted a late region: %v", st2)
	}
	if c.Stats().Evictions != 0 {
		t.Fatalf("Evictions = %d under first-in, want 0", c.Stats().Evictions)
	}
}

func TestPromotionOnAccessUnderLRU(t *testing.T) {
	c, _ := newTestCache(t, 4096, 1<<20, NewLRU())
	back := core.NewMemBacking(1, 1<<20)
	fd0, _ := c.Copen(4096, back, 0)
	fd1, _ := c.Copen(4096, back, 4096) // evicts fd0 to remote
	st0, _ := c.State(fd0)
	if st0 != StateRemote {
		t.Fatalf("fd0 = %v, want remote", st0)
	}
	// Accessing fd0 promotes it back, evicting fd1.
	buf := make([]byte, 16)
	if _, err := c.Cread(fd0, 0, buf); err != nil {
		t.Fatal(err)
	}
	st0, _ = c.State(fd0)
	st1, _ := c.State(fd1)
	if st0 != StateLocalRemote && st0 != StateLocal {
		t.Fatalf("fd0 after promotion = %v", st0)
	}
	if st1 == StateLocal || st1 == StateLocalRemote {
		t.Fatalf("fd1 still local after fd0 promotion: %v", st1)
	}
	if c.Stats().Promotions != 1 {
		t.Fatalf("Promotions = %d, want 1", c.Stats().Promotions)
	}
}

func TestDataIntegrityAcrossStateTransitions(t *testing.T) {
	// Write distinct data into many regions through a tiny cache and
	// verify every byte survives local->remote->disk migrations.
	c, _ := newTestCache(t, 2*4096, 3*4096, NewLRU())
	back := core.NewMemBacking(1, 1<<20)
	const regions = 8
	fds := make([]int, regions)
	for i := 0; i < regions; i++ {
		fd, err := c.Copen(4096, back, int64(i)*4096)
		if err != nil {
			t.Fatalf("Copen %d: %v", i, err)
		}
		fds[i] = fd
		if _, err := c.Cwrite(fd, 0, bytes.Repeat([]byte{byte(i + 1)}, 4096)); err != nil {
			t.Fatalf("Cwrite %d: %v", i, err)
		}
	}
	for i := 0; i < regions; i++ {
		got := make([]byte, 4096)
		n, err := c.Cread(fds[i], 0, got)
		if err != nil || n != 4096 {
			t.Fatalf("Cread %d = %d, %v", i, n, err)
		}
		if !bytes.Equal(got, bytes.Repeat([]byte{byte(i + 1)}, 4096)) {
			st, _ := c.State(fds[i])
			t.Fatalf("region %d corrupted (state %v)", i, st)
		}
	}
}

func TestCsyncFlushesDirtyRegion(t *testing.T) {
	c, _ := newTestCache(t, 1<<20, 1<<20, NewLRU())
	back := core.NewMemBacking(1, 4096)
	fd, _ := c.Copen(4096, back, 0)
	payload := bytes.Repeat([]byte{0x5A}, 4096)
	if _, err := c.Cwrite(fd, 0, payload); err != nil {
		t.Fatal(err)
	}
	// Dirty write is write-back: disk does not have it yet.
	if bytes.Equal(back.Bytes(), payload) {
		t.Fatal("write-back region hit disk before Csync")
	}
	if err := c.Csync(fd); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(back.Bytes(), payload) {
		t.Fatal("Csync did not flush to disk")
	}
}

func TestCcloseFlushesAndFreesRemote(t *testing.T) {
	c, fake := newTestCache(t, 4096, 1<<20, NewLRU())
	back := core.NewMemBacking(1, 1<<20)
	fd0, _ := c.Copen(4096, back, 0)
	c.Cwrite(fd0, 0, bytes.Repeat([]byte{9}, 4096))
	c.Copen(4096, back, 4096) // evict fd0 to remote
	if err := c.Cclose(fd0); err != nil {
		t.Fatal(err)
	}
	if fake.mcloses != 1 {
		t.Fatalf("mcloses = %d, want 1", fake.mcloses)
	}
	if !bytes.Equal(back.Bytes()[:4096], bytes.Repeat([]byte{9}, 4096)) {
		t.Fatal("Cclose lost dirty data")
	}
	if _, err := c.Cread(fd0, 0, make([]byte, 8)); !errors.Is(err, ErrBadFD) {
		t.Fatal("closed descriptor still readable")
	}
}

func TestRemoteFailureFallsBackToDisk(t *testing.T) {
	c, fake := newTestCache(t, 4096, 1<<20, NewLRU())
	back := core.NewMemBacking(1, 1<<20)
	fd0, _ := c.Copen(4096, back, 0)
	want := bytes.Repeat([]byte{3}, 4096)
	c.Cwrite(fd0, 0, want)
	c.Copen(4096, back, 4096) // evict fd0 -> remote
	// Remote dies.
	fake.failAll = true
	// With promotion the read tries remote, fails, falls back to disk.
	got := make([]byte, 4096)
	n, err := c.Cread(fd0, 0, got)
	if err != nil || n != 4096 || !bytes.Equal(got, want) {
		t.Fatalf("read after remote failure = %d, %v", n, err)
	}
}

func TestSetPolicySwitchesBehavior(t *testing.T) {
	c, _ := newTestCache(t, 8192, 1<<20, NewLRU())
	back := core.NewMemBacking(1, 1<<20)
	fd0, _ := c.Copen(4096, back, 0)
	fd1, _ := c.Copen(4096, back, 4096)
	c.SetPolicy(NewMRU())
	buf := make([]byte, 8)
	c.Cread(fd0, 0, buf) // fd0 is now most recently used
	// Force an eviction: MRU must pick fd0.
	c.Copen(4096, back, 8192)
	st0, _ := c.State(fd0)
	st1, _ := c.State(fd1)
	if st0 == StateLocal || st0 == StateLocalRemote {
		t.Fatalf("MRU kept the most recently used region local (fd0=%v fd1=%v)", st0, st1)
	}
}

func TestUsedAccounting(t *testing.T) {
	c, _ := newTestCache(t, 1<<20, 1<<20, NewLRU())
	back := core.NewMemBacking(1, 1<<20)
	fd0, _ := c.Copen(1000, back, 0)
	c.Copen(2000, back, 1000)
	if got := c.Used(); got != 3000 {
		t.Fatalf("Used = %d, want 3000", got)
	}
	c.Cclose(fd0)
	if got := c.Used(); got != 2000 {
		t.Fatalf("Used after close = %d, want 2000", got)
	}
}

func TestPolicyModules(t *testing.T) {
	for _, name := range []string{"lru", "mru", "first-in", "fifo"} {
		p, err := NewPolicy(name)
		if err != nil {
			t.Fatalf("NewPolicy(%q): %v", name, err)
		}
		if p.Name() == "" {
			t.Fatalf("%q has empty name", name)
		}
		// Empty policy has no victim.
		if _, ok := p.Victim(); ok {
			t.Fatalf("%s: victim from empty policy", name)
		}
		p.NoteCached(1)
		p.NoteCached(2)
		p.NoteCached(3)
		p.NoteAccess(1, false) // 1 becomes most recent for LRU/MRU
		victim, ok := p.Victim()
		switch name {
		case "lru":
			if !ok || victim != 2 {
				t.Fatalf("lru victim = %d, %v; want 2", victim, ok)
			}
		case "mru":
			if !ok || victim != 1 {
				t.Fatalf("mru victim = %d, %v; want 1", victim, ok)
			}
		case "fifo":
			if !ok || victim != 1 {
				t.Fatalf("fifo victim = %d, %v; want 1 (insertion order)", victim, ok)
			}
		case "first-in":
			if ok {
				t.Fatal("first-in produced a victim")
			}
		}
		p.NoteUncached(2)
		p.NoteUncached(1)
		p.NoteUncached(3)
		if _, ok := p.Victim(); ok && name != "first-in" {
			t.Fatalf("%s: victim after all uncached", name)
		}
	}
	if _, err := NewPolicy("clock"); err == nil {
		t.Fatal("NewPolicy(clock) succeeded")
	}
}

func TestPolicyDoubleCacheIsIdempotent(t *testing.T) {
	p := NewLRU()
	p.NoteCached(1)
	p.NoteCached(1)
	p.NoteUncached(1)
	if _, ok := p.Victim(); ok {
		t.Fatal("double NoteCached left a phantom entry")
	}
}

func TestManyRegionsScalability(t *testing.T) {
	// 4096 small regions through a cache holding 512: exercises O(1)
	// policy structures.
	c, _ := newTestCache(t, 512*128, 1<<30, NewLRU())
	back := core.NewMemBacking(1, 4096*128)
	fds := make([]int, 4096)
	for i := range fds {
		fd, err := c.Copen(128, back, int64(i)*128)
		if err != nil {
			t.Fatalf("Copen %d: %v", i, err)
		}
		fds[i] = fd
	}
	buf := make([]byte, 128)
	for i := 0; i < 4096; i += 7 {
		if _, err := c.Cread(fds[i], 0, buf); err != nil {
			t.Fatalf("Cread %d: %v", i, err)
		}
	}
	s := c.Stats()
	if s.Evictions == 0 {
		t.Fatal("no evictions over 4096 regions through a 512-region cache")
	}
}

func BenchmarkCreadLocalHit(b *testing.B) {
	fake := newFakeDodo(1 << 30)
	c := NewCache(fake, Config{Capacity: 1 << 20, Policy: NewLRU(), PromoteOnAccess: true})
	back := core.NewMemBacking(1, 1<<20)
	fd, err := c.Copen(1<<20, back, 0)
	if err != nil {
		b.Fatal(err)
	}
	buf := make([]byte, 8192)
	b.SetBytes(8192)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := c.Cread(fd, int64(i%(1<<17))*8, buf); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkEvictionChurn(b *testing.B) {
	fake := newFakeDodo(1 << 40)
	c := NewCache(fake, Config{Capacity: 64 * 4096, Policy: NewLRU(), PromoteOnAccess: true})
	back := core.NewMemBacking(1, 1<<20)
	fds := make([]int, 128)
	for i := range fds {
		fd, err := c.Copen(4096, back, int64(i)*4096)
		if err != nil {
			b.Fatal(err)
		}
		fds[i] = fd
	}
	buf := make([]byte, 4096)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := c.Cread(fds[i%128], 0, buf); err != nil {
			b.Fatal(err)
		}
	}
}
