package region

import (
	"runtime"

	"dodo/internal/core"
)

// Sequential prefetching is this reproduction's implementation of the
// direction the paper points at via Voelker et al.'s cooperative
// prefetching: when the application walks regions of one backing file
// in order, the cache pulls the next regions toward local memory before
// they are asked for.
//
// Enable it with Config.SequentialPrefetch. Detection is per backing
// file (c.streams keys on the inode, so interleaved scans over
// different files each keep their own detector): an access to the
// region starting exactly where the previously accessed region of that
// file ended arms the prefetcher, which then runs Config.PrefetchWindow
// contiguous regions ahead. With Config.PrefetchWorkers > 0 the pulls
// run on a bounded background pool, overlapping the foreground
// accesses; with 0 workers they run synchronously on the accessing
// goroutine, which keeps virtual-time experiments deterministic. The
// pull itself goes through Prefetch, which callers can also invoke
// directly for application-directed prefetching (the explicit analogue
// of the paper's explicit-control philosophy).

// prefKey identifies a region by its backing location.
type prefKey struct {
	inode uint64
	off   int64
}

// maybePrefetchLocked records an access to r for sequential detection
// and returns the fds the prefetch pipeline should pull, accounting
// them in prefetchPend. Caller holds c.mu; the caller must pass the
// returned jobs to dispatchPrefetch after unlocking (the dispatch
// sends on a channel, which must never happen under the lock).
//
// dodo:acquires(prefslot)
func (c *Cache) maybePrefetchLocked(r *cregion) []int {
	if !c.cfg.SequentialPrefetch {
		return nil
	}
	inode := r.backing.Inode()
	next, armed := c.streams[inode]
	c.streams[inode] = r.backOff + r.length
	if !armed || next != r.backOff {
		return nil
	}
	// Sequential stream confirmed: collect up to PrefetchWindow
	// contiguous successor regions that are neither local nor already
	// in flight.
	var jobs []int
	off := r.backOff + r.length
	for i := 0; i < c.cfg.PrefetchWindow; i++ {
		nfd, ok := c.byLocation[prefKey{inode: inode, off: off}]
		if !ok {
			break // hole in the file coverage ends the window
		}
		nr := c.regions[nfd]
		if nr == nil {
			break
		}
		if nr.local == nil && nr.pend == nil {
			jobs = append(jobs, nfd)
		}
		off += nr.length
	}
	if len(jobs) == 0 || c.closed {
		return nil
	}
	c.prefetchPend += len(jobs)
	return jobs
}

// dispatchPrefetch hands jobs from maybePrefetchLocked to the pipeline.
// Must be called without c.mu. With no worker pool the pulls run
// inline; with a pool the window is queued whole — so the worker can
// batch its remote fetches — and dropped (prefetches are hints) when
// the queue is saturated. Every accounted job is retired exactly
// once — run, dropped on saturation, or drained by Close.
//
// dodo:releases(prefslot)
func (c *Cache) dispatchPrefetch(jobs []int) {
	if len(jobs) == 0 {
		return
	}
	if c.prefetchQ == nil {
		c.prefetchBatch(jobs)
		for range jobs {
			c.finishPrefetchJob()
		}
		return
	}
	select {
	case c.prefetchQ <- jobs:
	default:
		for range jobs {
			c.finishPrefetchJob() // queue full: drop the hints
		}
	}
}

// finishPrefetchJob retires one accounted prefetch job and wakes
// Quiesce waiters.
func (c *Cache) finishPrefetchJob() {
	c.mu.Lock()
	c.prefetchPend--
	c.quiesce.Broadcast()
	c.mu.Unlock()
}

// prefetchWorker drains the prefetch queue until Close.
func (c *Cache) prefetchWorker() {
	defer c.prefetchWG.Done()
	for {
		select {
		case <-c.prefetchStop:
			return
		case fds := <-c.prefetchQ:
			c.prefetchBatch(fds)
			for range fds {
				c.finishPrefetchJob()
			}
		}
	}
}

// Quiesce blocks until every queued or running prefetch has finished;
// tests and experiment sweeps call it to make asynchronous prefetch
// observable at a deterministic point.
func (c *Cache) Quiesce() {
	c.mu.Lock()
	for c.prefetchPend > 0 {
		c.quiesce.Wait()
	}
	c.mu.Unlock()
}

// Close stops the prefetch pipeline and waits for in-flight pulls to
// retire. Regions stay usable; Close only shuts down the background
// machinery.
func (c *Cache) Close() {
	c.mu.Lock()
	if c.closed {
		c.mu.Unlock()
		return
	}
	c.closed = true
	c.mu.Unlock()
	if c.prefetchQ == nil {
		return
	}
	close(c.prefetchStop)
	c.prefetchWG.Wait()
	// The workers are gone; retire anything still sitting in the queue
	// so prefetchPend drains and Quiesce callers wake.
	for {
		select {
		case fds := <-c.prefetchQ:
			for range fds {
				c.finishPrefetchJob()
			}
			continue
		default:
		}
		c.mu.Lock()
		pend := c.prefetchPend
		c.mu.Unlock()
		if pend == 0 {
			return
		}
		// A dispatcher accounted a job but has not enqueued it yet;
		// yield until it lands in the queue or gives up.
		runtime.Gosched()
	}
}

// Prefetch pulls the region toward the application: a local promotion
// when the policy can make space, otherwise a remote clone so at least
// the disk is out of the next access's path. It is a hint — failures
// are not errors.
func (c *Cache) Prefetch(fd int) {
	c.prefetch(fd)
}

// prefetch does the pull. Runs without c.mu held.
func (c *Cache) prefetch(fd int) {
	c.mu.Lock()
	r, ok := c.regions[fd]
	if !ok || r.local != nil || r.pend != nil {
		c.mu.Unlock()
		return
	}
	fits := r.length <= c.cfg.Capacity
	c.stats.Prefetches++
	c.mu.Unlock()
	if fits {
		c.fillRegion(fd)
	}
	c.mu.Lock()
	stillRemoteless := false
	if r2, ok := c.regions[fd]; ok && r2 == r {
		stillRemoteless = r2.local == nil && r2.pend == nil && r2.remoteFD < 0
	}
	c.mu.Unlock()
	if stillRemoteless {
		// Could not go local (policy refused); stage it in remote
		// memory instead, contents read from disk.
		// gen 0 is a placeholder: with nil data cloneRemote dates the
		// contents itself, at the claim that precedes its disk read.
		c.cloneRemote(fd, nil, 0, false)
	}
}

// prefetchBatch pulls one prefetch window of regions. When the
// runtime library supports batched reads, every region in the window
// that promotes from a healthy remote copy rides a single MreadBatch
// call — on the wire, one batched exchange per imd instead of a full
// read protocol per region; otherwise the regions are pulled one by
// one, exactly as before.
func (c *Cache) prefetchBatch(fds []int) {
	br, batched := c.dodo.(BatchReader)
	if !batched || len(fds) < 2 {
		for _, fd := range fds {
			c.prefetch(fd)
		}
		return
	}
	c.fillRegionsBatched(fds, br)
	// Epilogue per region, mirroring prefetch(): whatever could not go
	// local (policy refused, or the region outsizes the cache) is
	// staged in remote memory so at least the disk is out of the next
	// access's path.
	for _, fd := range fds {
		c.mu.Lock()
		r := c.regions[fd]
		stillRemoteless := r != nil && r.local == nil && r.pend == nil && r.remoteFD < 0
		c.mu.Unlock()
		if stillRemoteless {
			c.cloneRemote(fd, nil, 0, false)
		}
	}
}

// fillRegionsBatched is fillRegion over a prefetch window: one locked
// admission pass reserves space and registers fill markers for every
// admissible region, the remote-healthy fills are fetched with a
// single MreadBatch call, the rest fetch individually, and one final
// locked pass installs everything. Regions mid-transition or whose
// backing location is already filling are skipped, not waited on — a
// prefetch is a hint.
//
// dodo:transfers(marker)
func (c *Cache) fillRegionsBatched(fds []int, br BatchReader) {
	type fillJob struct {
		r       *cregion
		key     prefKey
		marker  *inflight
		v       ioView
		victims []evictJob
		fit     bool
		data    []byte
	}
	var jobs []*fillJob
	c.mu.Lock()
	for _, fd := range fds {
		r, ok := c.regions[fd]
		if !ok || r.local != nil || r.pend != nil {
			continue
		}
		c.stats.Prefetches++
		if r.length > c.cfg.Capacity {
			continue
		}
		key := prefKey{inode: r.backing.Inode(), off: r.backOff}
		if _, busy := c.fills[key]; busy {
			continue
		}
		victims, fit := c.reserveLocked(r.length)
		if !fit && len(victims) == 0 {
			continue
		}
		j := &fillJob{r: r, key: key, victims: victims, fit: fit}
		if fit {
			marker := newInflight()
			j.marker = marker
			r.pend = marker
			c.fills[key] = marker
			j.v = c.viewLocked(r)
		}
		jobs = append(jobs, j)
	}
	c.mu.Unlock()
	for _, j := range jobs {
		for i := range j.victims {
			c.evictIO(&j.victims[i])
		}
	}
	// Remote-healthy fills ride one batched exchange; revive/none modes
	// keep fetchContents' per-region handling.
	var batch []core.BatchRead
	var batchJobs []*fillJob
	for _, j := range jobs {
		if !j.fit {
			continue
		}
		if j.v.mode == remoteHealthy {
			j.data = make([]byte, j.v.length)
			batch = append(batch, core.BatchRead{Fd: j.v.remoteFD, Offset: 0, Buf: j.data})
			batchJobs = append(batchJobs, j)
		} else {
			j.data = c.fetchContents(j.v)
		}
	}
	if len(batchJobs) > 0 {
		results := br.MreadBatch(batch)
		for i, j := range batchJobs {
			res := results[i]
			if res.Err == nil && int64(res.N) == j.v.length {
				c.mu.Lock()
				c.stats.RemoteReads += int64(res.N)
				c.mu.Unlock()
				continue
			}
			c.remoteFailed(j.v.fd, res.Err)
			// Disk fallback, matching fetchContents: a failed remote
			// attempt may have left partial bytes, so start from zero.
			for k := range j.data {
				j.data[k] = 0
			}
			if _, err := j.v.backing.ReadAt(j.data, j.v.backOff); err == nil {
				c.mu.Lock()
				c.stats.DiskReads += j.v.length
				c.mu.Unlock()
			}
		}
	}
	c.mu.Lock()
	for _, j := range jobs {
		for i := range j.victims {
			c.settleEvictionLocked(&j.victims[i])
		}
		if j.fit {
			j.r.local = j.data
			c.stats.Promotions++
			c.cfg.Policy.NoteCached(j.r.fd)
			c.clearFillLocked(j.r, j.marker, j.key)
		}
	}
	c.mu.Unlock()
}

// registerLocationLocked indexes a region for prefetch lookup. Caller
// holds c.mu.
func (c *Cache) registerLocationLocked(r *cregion) {
	c.byLocation[prefKey{inode: r.backing.Inode(), off: r.backOff}] = r.fd
}

// unregisterLocationLocked removes a region from the prefetch index.
// Caller holds c.mu.
func (c *Cache) unregisterLocationLocked(r *cregion) {
	key := prefKey{inode: r.backing.Inode(), off: r.backOff}
	if c.byLocation[key] == r.fd {
		delete(c.byLocation, key)
	}
}
