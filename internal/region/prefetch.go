package region

// Sequential prefetching is this reproduction's implementation of the
// direction the paper points at via Voelker et al.'s cooperative
// prefetching: when the application walks regions of one backing file
// in order, the cache pulls the next region toward local memory before
// it is asked for.
//
// Enable it with Config.SequentialPrefetch. Detection is per backing
// file: an access to the region starting exactly where the previous
// accessed region ended arms the prefetcher. The prefetch itself runs
// through Prefetch, which callers can also invoke directly for
// application-directed prefetching (the explicit analogue of the
// paper's explicit-control philosophy).

// prefKey identifies a region by its backing location.
type prefKey struct {
	inode uint64
	off   int64
}

// notePrefetchLocked records an access for sequential detection and
// returns the fd of the region to prefetch, if any. Caller holds c.mu.
func (c *Cache) notePrefetchLocked(r *cregion) (int, bool) {
	key := prefKey{inode: r.backing.Inode(), off: r.backOff}
	next := prefKey{inode: key.inode, off: r.backOff + r.length}
	sequential := c.lastAccess == key
	c.lastAccess = next // next sequential access starts where this ended
	if !sequential {
		return 0, false
	}
	nfd, ok := c.byLocation[next]
	if !ok {
		return 0, false
	}
	nr := c.regions[nfd]
	if nr == nil || nr.local != nil {
		return 0, false
	}
	return nfd, true
}

// Prefetch pulls the region toward the application: a local promotion
// when the policy can make space, otherwise a remote clone so at least
// the disk is out of the next access's path. It is a hint — failures
// are not errors.
func (c *Cache) Prefetch(fd int) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.prefetchLocked(fd)
}

// prefetchLocked does the pull. Caller holds c.mu.
func (c *Cache) prefetchLocked(fd int) {
	r, ok := c.regions[fd]
	if !ok || r.local != nil {
		return
	}
	c.stats.Prefetches++
	c.promoteLocked(r)
	if r.local == nil && r.remoteFD < 0 {
		// Could not go local (policy refused); stage it in remote
		// memory instead, contents in hand from disk.
		c.cloneRemoteLocked(r, nil)
	}
}

// registerLocationLocked indexes a region for prefetch lookup. Caller
// holds c.mu.
func (c *Cache) registerLocationLocked(r *cregion) {
	c.byLocation[prefKey{inode: r.backing.Inode(), off: r.backOff}] = r.fd
}

// unregisterLocationLocked removes a region from the prefetch index.
// Caller holds c.mu.
func (c *Cache) unregisterLocationLocked(r *cregion) {
	key := prefKey{inode: r.backing.Inode(), off: r.backOff}
	if c.byLocation[key] == r.fd {
		delete(c.byLocation, key)
	}
}
