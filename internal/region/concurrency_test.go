package region

import (
	"bytes"
	"errors"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"dodo/internal/core"
)

// The tests in this file exercise the cache's concurrency model under
// the race detector (and, via verify.sh, under -tags lockcheck): no
// I/O under c.mu, in-flight markers serializing region transitions,
// fetch coalescing, and the prefetch pipeline. They use benchDodo (see
// cache_bench_test.go), the thread-safe fake; fakeDodo in cache_test.go
// is deliberately single-threaded and must not appear here.

// TestConcurrentCreadCoalescesFills checks the singleflight: eight
// goroutines faulting the same non-resident region trigger exactly one
// remote fetch and one promotion, and every reader sees the bytes.
func TestConcurrentCreadCoalescesFills(t *testing.T) {
	fake := newBenchDodo(1<<20, 200*time.Microsecond)
	back := core.NewMemBacking(1, 1<<20)
	c := NewCache(fake, Config{Capacity: 4096, Policy: NewLRU(), PromoteOnAccess: true})

	fdA, err := c.Copen(4096, back, 0)
	if err != nil {
		t.Fatal(err)
	}
	want := bytes.Repeat([]byte{0x5a}, 4096)
	if _, err := c.Cwrite(fdA, 0, want); err != nil {
		t.Fatal(err)
	}
	// Opening B evicts A (capacity is one region), staging A remotely.
	fdB, err := c.Copen(4096, back, 4096)
	if err != nil {
		t.Fatal(err)
	}
	if st, _ := c.State(fdA); st != StateRemote {
		t.Fatalf("precondition: A state = %v, want remote", st)
	}
	readsBefore := fake.mreads.Load()
	promosBefore := c.Stats().Promotions

	var wg sync.WaitGroup
	errs := make(chan error, 8)
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			buf := make([]byte, 4096)
			if _, err := c.Cread(fdA, 0, buf); err != nil {
				errs <- err
				return
			}
			if !bytes.Equal(buf, want) {
				errs <- errors.New("reader saw wrong bytes")
			}
		}()
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}
	if got := fake.mreads.Load() - readsBefore; got != 1 {
		t.Fatalf("remote fetches for 8 concurrent readers = %d, want 1 (coalesced)", got)
	}
	if got := c.Stats().Promotions - promosBefore; got != 1 {
		t.Fatalf("promotions = %d, want 1", got)
	}
	if got := c.Stats().LocalHits; got != 8 {
		t.Fatalf("local hits = %d, want 8 (every reader served from the one fill)", got)
	}
	_ = fdB
}

// TestConcurrentRegionOps runs parallel Cread/Cwrite/Csync/Cclose/
// Prefetch over a shared cache: eight writers each own a region and
// verify their own bytes round-trip through promotion, eviction and
// write-back; readers hammer shared read-only regions; a churn
// goroutine opens and closes regions while the prefetcher walks them.
// Afterwards the cache and the fake remote pool must both drain to
// zero — any leaked local budget or remote descriptor fails the test.
func TestConcurrentRegionOps(t *testing.T) {
	const (
		regionSize = 2048
		owners     = 8
		iters      = 60
	)
	fake := newBenchDodo(1<<22, 0)
	back := core.NewMemBacking(1, 1<<22)
	c := NewCache(fake, Config{
		Capacity:           4 * regionSize, // half the owners fit: constant eviction pressure
		Policy:             NewLRU(),
		PromoteOnAccess:    true,
		SequentialPrefetch: true,
		PrefetchWindow:     2,
		PrefetchWorkers:    2,
	})

	// Shared read-only regions, written once up front.
	var shared []int
	for i := 0; i < 4; i++ {
		fd, err := c.Copen(regionSize, back, int64(i)*regionSize)
		if err != nil {
			t.Fatal(err)
		}
		if _, err := c.Cwrite(fd, 0, bytes.Repeat([]byte{byte(0xe0 + i)}, regionSize)); err != nil {
			t.Fatal(err)
		}
		shared = append(shared, fd)
	}
	// Owned regions, one per writer goroutine, above the shared range.
	owned := make([]int, owners)
	for i := range owned {
		fd, err := c.Copen(regionSize, back, int64(8+i)*regionSize)
		if err != nil {
			t.Fatal(err)
		}
		owned[i] = fd
	}

	var failed atomic.Bool
	fail := func(format string, args ...any) {
		failed.Store(true)
		t.Errorf(format, args...)
	}
	var wg sync.WaitGroup
	for g := 0; g < owners; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			fd := owned[g]
			buf := make([]byte, regionSize)
			for k := 0; k < iters && !failed.Load(); k++ {
				pattern := byte(g*31 + k)
				if _, err := c.Cwrite(fd, 0, bytes.Repeat([]byte{pattern}, regionSize)); err != nil {
					fail("owner %d write %d: %v", g, k, err)
					return
				}
				if k%16 == 7 {
					if err := c.Csync(fd); err != nil {
						fail("owner %d csync %d: %v", g, k, err)
						return
					}
				}
				if _, err := c.Cread(fd, 0, buf); err != nil {
					fail("owner %d read %d: %v", g, k, err)
					return
				}
				for j := range buf {
					if buf[j] != pattern {
						fail("owner %d iter %d byte %d = %#x, want %#x", g, k, j, buf[j], pattern)
						return
					}
				}
			}
			if err := c.Cclose(fd); err != nil {
				fail("owner %d close: %v", g, err)
			}
		}(g)
	}
	// Shared readers: the bytes must never change.
	for g := 0; g < 2; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			buf := make([]byte, regionSize)
			for k := 0; k < 2*iters && !failed.Load(); k++ {
				i := (k + g) % len(shared)
				if _, err := c.Cread(shared[i], 0, buf); err != nil {
					fail("shared reader %d: %v", g, err)
					return
				}
				if buf[0] != byte(0xe0+i) || buf[regionSize-1] != byte(0xe0+i) {
					fail("shared region %d bytes changed: %#x", i, buf[0])
					return
				}
			}
		}(g)
	}
	// Explicit prefetch pressure across everything, open or closing.
	wg.Add(1)
	go func() {
		defer wg.Done()
		for k := 0; k < 2*iters && !failed.Load(); k++ {
			c.Prefetch(shared[k%len(shared)])
			c.Prefetch(owned[k%len(owned)]) // may already be closed: no-op
		}
	}()
	// Churn: open, touch, close — closes race the prefetch walker.
	wg.Add(1)
	go func() {
		defer wg.Done()
		buf := make([]byte, regionSize)
		for k := 0; k < iters && !failed.Load(); k++ {
			fd, err := c.Copen(regionSize, back, int64(32+k%4)*regionSize)
			if err != nil {
				fail("churn open %d: %v", k, err)
				return
			}
			if _, err := c.Cread(fd, 0, buf); err != nil {
				fail("churn read %d: %v", k, err)
				return
			}
			if err := c.Cclose(fd); err != nil {
				fail("churn close %d: %v", k, err)
				return
			}
		}
	}()
	wg.Wait()
	if failed.Load() {
		return
	}

	for _, fd := range shared {
		if err := c.Cclose(fd); err != nil {
			t.Fatalf("closing shared region: %v", err)
		}
	}
	c.Quiesce()
	c.Close()
	if got := c.Used(); got != 0 {
		t.Fatalf("Used = %d after closing every region, want 0 (budget leak)", got)
	}
	if got := fake.remoteUsed(); got != 0 {
		t.Fatalf("remote pool holds %d bytes after close, want 0 (descriptor leak)", got)
	}
}

// TestInterleavedSequentialStreams pins the satellite fix: two
// sequential scans over different backing files, interleaved, must
// each arm their own per-inode detector instead of clobbering a global
// one.
func TestInterleavedSequentialStreams(t *testing.T) {
	fake := newBenchDodo(1<<20, 0)
	backA := core.NewMemBacking(1, 1<<20)
	backB := core.NewMemBacking(2, 1<<20)
	c := NewCache(fake, Config{
		Capacity:           4096, // one region: scans never stay local
		Policy:             NewLRU(),
		PromoteOnAccess:    true,
		SequentialPrefetch: true,
	})
	var fdsA, fdsB []int
	for i := 0; i < 4; i++ {
		fdA, err := c.Copen(4096, backA, int64(i)*4096)
		if err != nil {
			t.Fatal(err)
		}
		fdsA = append(fdsA, fdA)
		fdB, err := c.Copen(4096, backB, int64(i)*4096)
		if err != nil {
			t.Fatal(err)
		}
		fdsB = append(fdsB, fdB)
	}
	buf := make([]byte, 4096)
	// A0, B0, A1, B1: both streams are sequential; under the old global
	// last-access key each access reset the other stream and neither
	// ever armed.
	for _, fd := range []int{fdsA[0], fdsB[0], fdsA[1], fdsB[1]} {
		if _, err := c.Cread(fd, 0, buf); err != nil {
			t.Fatal(err)
		}
	}
	if got := c.Stats().Prefetches; got < 2 {
		t.Fatalf("Prefetches = %d after two interleaved sequential streams, want >= 2", got)
	}
	for name, fd := range map[string]int{"A2": fdsA[2], "B2": fdsB[2]} {
		st, err := c.State(fd)
		if err != nil {
			t.Fatal(err)
		}
		if st == StateDiskOnly {
			t.Fatalf("region %s still disk-only: its stream was clobbered", name)
		}
	}
}

// failingBacking fails reads on demand; writes pass through.
type failingBacking struct {
	*core.MemBacking
	fail atomic.Bool
}

func (b *failingBacking) ReadAt(p []byte, off int64) (int, error) {
	if b.fail.Load() {
		return 0, errors.New("injected disk failure")
	}
	return b.MemBacking.ReadAt(p, off)
}

// TestNoPrefetchAfterFailedRead pins the satellite fix: a foreground
// read that fails must not arm or issue prefetch off the broken
// stream.
func TestNoPrefetchAfterFailedRead(t *testing.T) {
	fake := newBenchDodo(0, 0) // zero remote capacity: clones always fail
	back := &failingBacking{MemBacking: core.NewMemBacking(1, 1<<20)}
	c := NewCache(fake, Config{
		Capacity:           2048, // regions never fit locally
		Policy:             NewLRU(),
		PromoteOnAccess:    true,
		SequentialPrefetch: true,
	})
	var fds []int
	for i := 0; i < 3; i++ {
		fd, err := c.Copen(4096, back, int64(i)*4096)
		if err != nil {
			t.Fatal(err)
		}
		fds = append(fds, fd)
	}
	buf := make([]byte, 4096)
	// Region 0 reads fine and arms the stream.
	if _, err := c.Cread(fds[0], 0, buf); err != nil {
		t.Fatal(err)
	}
	// Region 1's read-through fails: the would-be prefetch of region 2
	// must be suppressed.
	back.fail.Store(true)
	if _, err := c.Cread(fds[1], 0, buf); err == nil {
		t.Fatal("read with failing disk and no remote copy succeeded")
	}
	if got := c.Stats().Prefetches; got != 0 {
		t.Fatalf("Prefetches = %d after a failed foreground read, want 0", got)
	}
}

// TestPrefetchWorkerPool exercises the asynchronous pipeline: with
// workers the pulls run in the background, Quiesce makes them
// observable, and Close drains without deadlock.
func TestPrefetchWorkerPool(t *testing.T) {
	fake := newBenchDodo(1<<20, 100*time.Microsecond)
	back := core.NewMemBacking(1, 1<<20)
	c := NewCache(fake, Config{
		Capacity:           4096,
		Policy:             NewLRU(),
		PromoteOnAccess:    true,
		SequentialPrefetch: true,
		PrefetchWindow:     2,
		PrefetchWorkers:    2,
	})
	var fds []int
	for i := 0; i < 8; i++ {
		fd, err := c.Copen(4096, back, int64(i)*4096)
		if err != nil {
			t.Fatal(err)
		}
		fds = append(fds, fd)
	}
	buf := make([]byte, 4096)
	if _, err := c.Cread(fds[0], 0, buf); err != nil {
		t.Fatal(err)
	}
	if _, err := c.Cread(fds[1], 0, buf); err != nil {
		t.Fatal(err)
	}
	c.Quiesce() // all queued pulls retired
	if got := c.Stats().Prefetches; got == 0 {
		t.Fatal("no prefetches ran on the worker pool")
	}
	// The window ran ahead: at least the next region left disk-only.
	st, err := c.State(fds[2])
	if err != nil {
		t.Fatal(err)
	}
	if st == StateDiskOnly {
		t.Fatal("region 2 still disk-only after pipelined walk")
	}
	c.Close()
	c.Close() // idempotent
	// The cache stays usable after Close; only the pipeline is gone.
	if _, err := c.Cread(fds[3], 0, buf); err != nil {
		t.Fatalf("Cread after Close: %v", err)
	}
	c.Quiesce() // must not hang with the pool stopped
}

// TestConcurrentAliasedRegions drives two descriptors over the same
// backing range from parallel readers: the per-location singleflight
// must coalesce their fills without wedging either descriptor.
func TestConcurrentAliasedRegions(t *testing.T) {
	fake := newBenchDodo(1<<20, 100*time.Microsecond)
	back := core.NewMemBacking(1, 1<<20)
	c := NewCache(fake, Config{Capacity: 8192, Policy: NewLRU(), PromoteOnAccess: true})
	seed, err := c.Copen(4096, back, 0)
	if err != nil {
		t.Fatal(err)
	}
	want := bytes.Repeat([]byte{0x42}, 4096)
	if _, err := c.Cwrite(seed, 0, want); err != nil {
		t.Fatal(err)
	}
	if err := c.Csync(seed); err != nil {
		t.Fatal(err)
	}
	alias, err := c.Copen(4096, back, 0) // same (inode, off)
	if err != nil {
		t.Fatal(err)
	}
	var wg sync.WaitGroup
	errs := make(chan error, 8)
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			fd := seed
			if g%2 == 1 {
				fd = alias
			}
			buf := make([]byte, 4096)
			for k := 0; k < 20; k++ {
				if _, err := c.Cread(fd, 0, buf); err != nil {
					errs <- err
					return
				}
				if !bytes.Equal(buf, want) {
					errs <- errors.New("aliased reader saw wrong bytes")
					return
				}
			}
		}(g)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}
}
