// Package region implements libmanage, the coarse-grain
// region-management library layered on top of the Dodo runtime (§3.3,
// §4.5). It manages a local cache of memory regions, tracks access
// patterns, and migrates regions between four states — cached locally,
// cached remotely, cached both, or on disk only — using pluggable
// replacement-policy modules and the grimReaper reclamation procedure of
// Figure 5.
package region

import (
	"container/list"
	"fmt"
)

// Policy is a replacement-policy module. Per §4.5, a module consists of
// state-management procedures invoked on every cread/cwrite and a
// reclamation procedure invoked when the local cache runs out of space.
//
// The cache calls NoteCached when a region enters the local cache,
// NoteAccess on each access to a locally cached region, NoteUncached
// when it leaves, and Victim to pick the next region to evict. Policies
// are not safe for concurrent use; the Cache serializes calls.
type Policy interface {
	// Name identifies the policy ("lru", "mru", "first-in", "fifo").
	Name() string
	// NoteCached records that fd entered the local cache.
	NoteCached(fd int)
	// NoteAccess records a read or write against a locally cached fd.
	NoteAccess(fd int, write bool)
	// NoteUncached records that fd left the local cache.
	NoteUncached(fd int)
	// Victim picks the region to evict. ok is false when the policy
	// refuses to evict anything (first-in's "once cached, never
	// replaced" contract).
	Victim() (fd int, ok bool)
}

// NewPolicy returns the named policy module.
func NewPolicy(name string) (Policy, error) {
	switch name {
	case "lru":
		return NewLRU(), nil
	case "mru":
		return NewMRU(), nil
	case "first-in", "firstin":
		return NewFirstIn(), nil
	case "fifo":
		return NewFIFO(), nil
	}
	return nil, fmt.Errorf("region: unknown policy %q", name)
}

// listPolicy is the shared recency/insertion machinery: a doubly linked
// list plus an index, giving O(1) hooks for all four policies.
type listPolicy struct {
	order *list.List            // front = oldest
	index map[int]*list.Element // fd -> element
}

func newListPolicy() listPolicy {
	return listPolicy{order: list.New(), index: make(map[int]*list.Element)}
}

func (p *listPolicy) noteCached(fd int) {
	if _, dup := p.index[fd]; dup {
		return
	}
	p.index[fd] = p.order.PushBack(fd)
}

func (p *listPolicy) noteUncached(fd int) {
	if el, ok := p.index[fd]; ok {
		p.order.Remove(el)
		delete(p.index, fd)
	}
}

func (p *listPolicy) touch(fd int) {
	if el, ok := p.index[fd]; ok {
		p.order.MoveToBack(el)
	}
}

func (p *listPolicy) oldest() (int, bool) {
	if el := p.order.Front(); el != nil {
		return el.Value.(int), true
	}
	return 0, false
}

func (p *listPolicy) newest() (int, bool) {
	if el := p.order.Back(); el != nil {
		return el.Value.(int), true
	}
	return 0, false
}

// LRU evicts the least recently used region — the library's default
// (§3.3).
type LRU struct{ listPolicy }

// NewLRU returns an LRU policy.
func NewLRU() *LRU { return &LRU{newListPolicy()} }

// Name returns "lru".
func (*LRU) Name() string { return "lru" }

// NoteCached records insertion.
func (p *LRU) NoteCached(fd int) { p.noteCached(fd) }

// NoteAccess refreshes recency.
func (p *LRU) NoteAccess(fd int, write bool) { p.touch(fd) }

// NoteUncached records removal.
func (p *LRU) NoteUncached(fd int) { p.noteUncached(fd) }

// Victim returns the least recently used resident region.
func (p *LRU) Victim() (int, bool) { return p.oldest() }

// MRU evicts the most recently used region — the right policy for large
// cyclic scans, offered by the paper's csetPolicy ("LRU/MRU/first-in
// etc").
type MRU struct{ listPolicy }

// NewMRU returns an MRU policy.
func NewMRU() *MRU { return &MRU{newListPolicy()} }

// Name returns "mru".
func (*MRU) Name() string { return "mru" }

// NoteCached records insertion.
func (p *MRU) NoteCached(fd int) { p.noteCached(fd) }

// NoteAccess refreshes recency.
func (p *MRU) NoteAccess(fd int, write bool) { p.touch(fd) }

// NoteUncached records removal.
func (p *MRU) NoteUncached(fd int) { p.noteUncached(fd) }

// Victim returns the most recently used resident region.
func (p *MRU) Victim() (int, bool) { return p.newest() }

// FirstIn caches regions in the order they are first accessed and never
// replaces them (§4.5): ideal for applications that scan their whole
// dataset repeatedly, per Uysal et al.'s observation that most
// data-intensive applications are sequential- or triangle-scan.
type FirstIn struct{ listPolicy }

// NewFirstIn returns a first-in policy.
func NewFirstIn() *FirstIn { return &FirstIn{newListPolicy()} }

// Name returns "first-in".
func (*FirstIn) Name() string { return "first-in" }

// NoteCached records insertion.
func (p *FirstIn) NoteCached(fd int) { p.noteCached(fd) }

// NoteAccess is a no-op: insertion order is all that matters.
func (p *FirstIn) NoteAccess(fd int, write bool) {}

// NoteUncached records removal.
func (p *FirstIn) NoteUncached(fd int) { p.noteUncached(fd) }

// Victim refuses: once cached, a region is not replaced.
func (p *FirstIn) Victim() (int, bool) { return 0, false }

// FIFO evicts in insertion order regardless of recency; it isolates the
// value of LRU's recency tracking in the policy ablation.
type FIFO struct{ listPolicy }

// NewFIFO returns a FIFO policy.
func NewFIFO() *FIFO { return &FIFO{newListPolicy()} }

// Name returns "fifo".
func (*FIFO) Name() string { return "fifo" }

// NoteCached records insertion.
func (p *FIFO) NoteCached(fd int) { p.noteCached(fd) }

// NoteAccess is a no-op.
func (p *FIFO) NoteAccess(fd int, write bool) {}

// NoteUncached records removal.
func (p *FIFO) NoteUncached(fd int) { p.noteUncached(fd) }

// Victim returns the oldest insertion.
func (p *FIFO) Victim() (int, bool) { return p.oldest() }
