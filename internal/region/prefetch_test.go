package region

import (
	"testing"

	"dodo/internal/core"
)

func prefetchCache(t *testing.T, localCap int64) (*Cache, *fakeDodo, *core.MemBacking) {
	t.Helper()
	fake := newFakeDodo(1 << 20)
	c := NewCache(fake, Config{
		Capacity:           localCap,
		Policy:             NewLRU(),
		PromoteOnAccess:    true,
		SequentialPrefetch: true,
	})
	back := core.NewMemBacking(1, 1<<20)
	return c, fake, back
}

func TestSequentialAccessPrefetchesNextRegion(t *testing.T) {
	c, _, back := prefetchCache(t, 1<<20)
	// Six contiguous 4 KB regions; opening faults them local already,
	// so shrink the cache story: open them, then force them out.
	var fds []int
	for i := 0; i < 6; i++ {
		fd, err := c.Copen(4096, back, int64(i)*4096)
		if err != nil {
			t.Fatal(err)
		}
		fds = append(fds, fd)
	}
	// Evict everything by pushing a large region through... simpler:
	// use a fresh cache with tiny capacity where nothing stays local.
	c2, _, back2 := prefetchCache(t, 4096) // one region fits
	fds = fds[:0]
	for i := 0; i < 6; i++ {
		fd, err := c2.Copen(4096, back2, int64(i)*4096)
		if err != nil {
			t.Fatal(err)
		}
		fds = append(fds, fd)
	}
	// Regions 0..5 exist; only one can be local at a time. Walk them in
	// order: after touching 0 then 1 (sequential), region 2 must have
	// been prefetched (local or remote) before we ask for it.
	buf := make([]byte, 4096)
	if _, err := c2.Cread(fds[0], 0, buf); err != nil {
		t.Fatal(err)
	}
	if _, err := c2.Cread(fds[1], 0, buf); err != nil {
		t.Fatal(err)
	}
	st, err := c2.State(fds[2])
	if err != nil {
		t.Fatal(err)
	}
	if st == StateDiskOnly {
		t.Fatalf("region 2 still disk-only after sequential walk; state = %v", st)
	}
	if c2.Stats().Prefetches == 0 {
		t.Fatal("no prefetches recorded")
	}
}

func TestNonSequentialAccessDoesNotPrefetch(t *testing.T) {
	c, _, back := prefetchCache(t, 4096)
	var fds []int
	for i := 0; i < 6; i++ {
		fd, err := c.Copen(4096, back, int64(i)*4096)
		if err != nil {
			t.Fatal(err)
		}
		fds = append(fds, fd)
	}
	buf := make([]byte, 4096)
	// Jumping around must not arm the prefetcher.
	for _, i := range []int{0, 3, 1, 4} {
		if _, err := c.Cread(fds[i], 0, buf); err != nil {
			t.Fatal(err)
		}
	}
	if got := c.Stats().Prefetches; got != 0 {
		t.Fatalf("Prefetches = %d after random walk, want 0", got)
	}
}

func TestPrefetchDisabledByDefault(t *testing.T) {
	fake := newFakeDodo(1 << 20)
	c := NewCache(fake, Config{Capacity: 4096, Policy: NewLRU(), PromoteOnAccess: true})
	back := core.NewMemBacking(1, 1<<20)
	var fds []int
	for i := 0; i < 4; i++ {
		fd, _ := c.Copen(4096, back, int64(i)*4096)
		fds = append(fds, fd)
	}
	buf := make([]byte, 4096)
	c.Cread(fds[0], 0, buf)
	c.Cread(fds[1], 0, buf)
	if got := c.Stats().Prefetches; got != 0 {
		t.Fatalf("Prefetches = %d with the feature off, want 0", got)
	}
}

func TestExplicitPrefetchAPI(t *testing.T) {
	// First-in refuses victims once full, so the third region stays
	// disk-only until explicitly prefetched (which stages it remotely).
	fake := newFakeDodo(1 << 20)
	c := NewCache(fake, Config{
		Capacity:        8192,
		Policy:          NewFirstIn(),
		PromoteOnAccess: true,
	})
	back := core.NewMemBacking(1, 1<<20)
	fd0, _ := c.Copen(4096, back, 0)
	fd1, _ := c.Copen(4096, back, 4096)
	fd2, err := c.Copen(4096, back, 8192) // cache full: disk-only
	if err != nil {
		t.Fatal(err)
	}
	_ = fd0
	_ = fd1
	st, _ := c.State(fd2)
	if st != StateDiskOnly {
		t.Fatalf("precondition: fd2 state = %v, want disk-only", st)
	}
	c.Prefetch(fd2)
	st, _ = c.State(fd2)
	if st == StateDiskOnly {
		t.Fatal("explicit Prefetch left the region disk-only")
	}
	// Prefetching a local or unknown region is a harmless no-op.
	c.Prefetch(fd2)
	c.Prefetch(9999)
}

// TestPrefetchWindowBatchesRemoteFills: when the runtime library
// implements BatchReader, a sequential walk's prefetch window is pulled
// with batched reads — at least one MreadBatch call — rather than one
// Mread round trip per region, and every region still carries the right
// bytes afterwards.
func TestPrefetchWindowBatchesRemoteFills(t *testing.T) {
	const regionSize = 4096
	fake := newBenchDodo(1<<30, 0)
	c := NewCache(fake, Config{
		Capacity:           4 * regionSize,
		Policy:             NewLRU(),
		PromoteOnAccess:    true,
		SequentialPrefetch: true,
		PrefetchWindow:     3,
	})
	defer c.Close()
	back := core.NewMemBacking(1, 6*regionSize)
	for i := 0; i < 6; i++ {
		pattern := make([]byte, regionSize)
		for j := range pattern {
			pattern[j] = byte(i + 1)
		}
		if _, err := back.WriteAt(pattern, int64(i)*regionSize); err != nil {
			t.Fatal(err)
		}
	}
	// Opening faults each region local; with room for four, the earliest
	// spill to remote memory, so the sequential walk below finds its
	// prefetch window remotely staged — the batchable case.
	var fds []int
	for i := 0; i < 6; i++ {
		fd, err := c.Copen(regionSize, back, int64(i)*regionSize)
		if err != nil {
			t.Fatal(err)
		}
		fds = append(fds, fd)
	}
	buf := make([]byte, regionSize)
	if _, err := c.Cread(fds[0], 0, buf); err != nil {
		t.Fatal(err)
	}
	if _, err := c.Cread(fds[1], 0, buf); err != nil {
		t.Fatal(err)
	}
	c.Quiesce()
	if got := fake.mreadBatches.Load(); got == 0 {
		t.Fatalf("mreadBatches = 0 after a sequential walk; want the prefetch window batched (stats %+v)", c.Stats())
	}
	if c.Stats().Prefetches == 0 {
		t.Fatal("no prefetches recorded")
	}
	for i := 0; i < 6; i++ {
		n, err := c.Cread(fds[i], 0, buf)
		if err != nil || n != regionSize {
			t.Fatalf("Cread %d = %d, %v", i, n, err)
		}
		for j := range buf {
			if buf[j] != byte(i+1) {
				t.Fatalf("region %d byte %d = %d, want %d", i, j, buf[j], i+1)
			}
		}
	}
}

func TestPrefetchIndexFollowsClose(t *testing.T) {
	c, _, back := prefetchCache(t, 1<<20)
	fd0, _ := c.Copen(4096, back, 0)
	fd1, _ := c.Copen(4096, back, 4096)
	if err := c.Cclose(fd1); err != nil {
		t.Fatal(err)
	}
	// Sequential walk over a closed successor must not panic or
	// resurrect it.
	buf := make([]byte, 4096)
	if _, err := c.Cread(fd0, 0, buf); err != nil {
		t.Fatal(err)
	}
	if _, err := c.Cread(fd0, 0, buf); err != nil {
		t.Fatal(err)
	}
	// Re-opening the same location re-registers it.
	fd1b, err := c.Copen(4096, back, 4096)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := c.Cread(fd1b, 0, buf); err != nil {
		t.Fatal(err)
	}
}

func TestPrefetchDataIntegrity(t *testing.T) {
	// Prefetched regions must carry the right bytes.
	c, _, back := prefetchCache(t, 4096)
	var fds []int
	for i := 0; i < 4; i++ {
		fd, _ := c.Copen(4096, back, int64(i)*4096)
		payload := make([]byte, 4096)
		for j := range payload {
			payload[j] = byte(i + 1)
		}
		if _, err := c.Cwrite(fd, 0, payload); err != nil {
			t.Fatal(err)
		}
		fds = append(fds, fd)
	}
	buf := make([]byte, 4096)
	for i := 0; i < 4; i++ {
		n, err := c.Cread(fds[i], 0, buf)
		if err != nil || n != 4096 {
			t.Fatalf("Cread %d = %d, %v", i, n, err)
		}
		for j := range buf {
			if buf[j] != byte(i+1) {
				t.Fatalf("region %d byte %d = %d, want %d", i, j, buf[j], i+1)
			}
		}
	}
}
