package region

import (
	"errors"
	"fmt"
	"time"

	"dodo/internal/core"
	"dodo/internal/locks"
	"dodo/internal/sim"
)

// Dodo is the slice of the runtime library the cache needs. *core.Client
// satisfies it; the virtual-time experiment harness provides a
// cost-accounting implementation.
type Dodo interface {
	Mopen(length int64, backing core.Backing, offset int64) (int, error)
	Mread(fd int, offset int64, buf []byte) (int, error)
	Mwrite(fd int, offset int64, buf []byte) (int, error)
	Mclose(fd int) error
	Msync(fd int) error
}

var _ Dodo = (*core.Client)(nil)

// State is a region's caching state — the four states of §3.3.
type State int

// Region states.
const (
	// StateDiskOnly: not cached in memory, only on disk.
	StateDiskOnly State = iota
	// StateLocal: cached in the local region cache only.
	StateLocal
	// StateRemote: cached in remote cluster memory only.
	StateRemote
	// StateLocalRemote: cached both locally and remotely.
	StateLocalRemote
)

func (s State) String() string {
	switch s {
	case StateDiskOnly:
		return "disk-only"
	case StateLocal:
		return "local"
	case StateRemote:
		return "remote"
	case StateLocalRemote:
		return "local+remote"
	}
	return fmt.Sprintf("region.State(%d)", int(s))
}

// Errors returned by the cache.
var (
	ErrBadFD = errors.New("region: bad region descriptor")
	ErrRange = errors.New("region: access beyond region bounds")
)

// Config tunes a Cache.
type Config struct {
	// Capacity is the local cache budget in bytes (the paper's
	// experiments use 80 MB).
	Capacity int64
	// Policy is the replacement policy module (default LRU, §3.3).
	Policy Policy
	// RefractionPeriod suppresses remote-clone attempts after one
	// fails for lack of remote space (Figure 5; default 5s).
	RefractionPeriod time.Duration
	// Clock provides time (default wall clock).
	Clock sim.Clock
	// PromoteOnAccess controls whether accessing a non-local region
	// pulls the whole region into the local cache (default true; the
	// first-in policy effectively disables it by refusing victims once
	// the cache fills).
	PromoteOnAccess bool
	// SequentialPrefetch pulls the next contiguous region of a backing
	// file toward the application when regions are accessed in order
	// (see prefetch.go). Off by default, as in the paper; this is the
	// cooperative-prefetching extension its related work points at.
	SequentialPrefetch bool
}

func (c Config) withDefaults() Config {
	if c.Policy == nil {
		c.Policy = NewLRU()
	}
	if c.RefractionPeriod == 0 {
		c.RefractionPeriod = 5 * time.Second
	}
	if c.Clock == nil {
		c.Clock = sim.WallClock{}
	}
	return c
}

// cregion is one entry of the local cache directory.
type cregion struct {
	fd      int
	length  int64
	backing core.Backing
	backOff int64

	local    []byte // non-nil iff cached locally
	dirty    bool   // local copy differs from disk
	remoteFD int    // core descriptor, -1 when no remote copy
	// remoteFailAt marks the remote copy suspect after an ErrNoMem
	// failure (host crashed or reclaimed, §3.1). The descriptor is kept:
	// the runtime's background recovery may re-open it, so the cache
	// retries after the refraction period instead of abandoning remote
	// memory forever. Zero means healthy.
	remoteFailAt time.Time
}

func (r *cregion) state() State {
	switch {
	case r.local != nil && r.remoteFD >= 0:
		return StateLocalRemote
	case r.local != nil:
		return StateLocal
	case r.remoteFD >= 0:
		return StateRemote
	}
	return StateDiskOnly
}

// Stats reports cache activity; the virtual-time experiments derive
// every figure from these counters.
type Stats struct {
	LocalHits     int64 // accesses served from the local cache
	RemoteReads   int64 // bytes served from remote memory (read-through)
	DiskReads     int64 // bytes served from disk (read-through)
	Promotions    int64 // regions pulled into the local cache
	Evictions     int64 // regions pushed out by grimReaper
	RemoteClones  int64 // evictions that went to remote memory
	DiskSpills    int64 // evictions that fell back to disk only
	WriteBacks    int64 // dirty flushes
	RefractSkips  int64 // remote clones skipped inside refraction
	Prefetches    int64 // prefetch pulls issued
	RemoteRevives int64 // suspect remote copies brought back into service
}

// Cache is the region-management library instance.
type Cache struct {
	// dodo:unguarded — immutable after construction
	cfg Config
	// dodo:unguarded — immutable after construction
	dodo Dodo

	mu locks.Mutex
	// dodo:guardedby mu
	regions map[int]*cregion
	// dodo:guardedby mu
	nextFD int
	// dodo:guardedby mu
	used int64
	// dodo:guardedby mu
	lastFail time.Time
	// dodo:guardedby mu
	failed bool
	// dodo:guardedby mu
	stats Stats

	// prefetch state (prefetch.go)
	// dodo:guardedby mu
	byLocation map[prefKey]int
	// dodo:guardedby mu
	lastAccess prefKey
}

// NewCache builds a region cache over the given Dodo runtime.
func NewCache(dodo Dodo, cfg Config) *Cache {
	c := &Cache{
		cfg:        cfg.withDefaults(),
		dodo:       dodo,
		regions:    make(map[int]*cregion),
		byLocation: make(map[prefKey]int),
	}
	c.mu.SetRank(locks.RankRegionCache)
	return c
}

// Stats returns a snapshot of the counters.
func (c *Cache) Stats() Stats {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.stats
}

// Used returns the bytes of local cache in use.
func (c *Cache) Used() int64 {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.used
}

// State reports a region's caching state.
func (c *Cache) State(fd int) (State, error) {
	c.mu.Lock()
	defer c.mu.Unlock()
	r, ok := c.regions[fd]
	if !ok {
		return 0, fmt.Errorf("%w: %d", ErrBadFD, fd)
	}
	return r.state(), nil
}

// SetPolicy switches the replacement policy (csetPolicy, §3.3). Resident
// regions are re-registered with the new policy in an arbitrary order.
func (c *Cache) SetPolicy(p Policy) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.cfg.Policy = p
	for fd, r := range c.regions {
		if r.local != nil {
			p.NoteCached(fd)
		}
	}
}

// Copen creates a region of length bytes backed by [offset,
// offset+length) of backing (§3.3). The region starts in the local cache
// when space can be made; otherwise it goes remote, or disk-only as the
// last resort. Contents are faulted in from disk on first access.
func (c *Cache) Copen(length int64, backing core.Backing, offset int64) (int, error) {
	if length < 1 || offset < 0 || backing == nil {
		return -1, fmt.Errorf("%w: length %d offset %d", core.ErrInval, length, offset)
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	fd := c.nextFD
	c.nextFD++
	r := &cregion{fd: fd, length: length, backing: backing, backOff: offset, remoteFD: -1}
	c.regions[fd] = r
	c.registerLocationLocked(r)
	// With local room the region is faulted in from disk immediately;
	// otherwise it stays disk-only for now, and the first full read or
	// the grimReaper migrates it to the remote cache with its real
	// contents in hand.
	if length <= c.cfg.Capacity && c.ensureSpaceLocked(length) {
		buf := make([]byte, length)
		if _, err := backing.ReadAt(buf, offset); err == nil {
			c.stats.DiskReads += length
		}
		r.local = buf
		c.used += length
		c.cfg.Policy.NoteCached(fd)
	}
	return fd, nil
}

// Cread reads len(buf) bytes at offset within the region (§3.3).
func (c *Cache) Cread(fd int, offset int64, buf []byte) (int, error) {
	c.mu.Lock()
	defer c.mu.Unlock()
	r, ok := c.regions[fd]
	if !ok {
		return -1, fmt.Errorf("%w: %d", ErrBadFD, fd)
	}
	if offset < 0 || offset > r.length {
		return -1, fmt.Errorf("%w: offset %d in %d-byte region", ErrRange, offset, r.length)
	}
	want := int64(len(buf))
	if offset+want > r.length {
		want = r.length - offset
	}
	if r.local == nil && c.cfg.PromoteOnAccess {
		c.promoteLocked(r)
	}
	if c.cfg.SequentialPrefetch {
		if nfd, ok := c.notePrefetchLocked(r); ok {
			defer c.prefetchLocked(nfd)
		}
	}
	if r.local != nil {
		copy(buf[:want], r.local[offset:offset+want])
		c.stats.LocalHits++
		c.cfg.Policy.NoteAccess(fd, false)
		return int(want), nil
	}
	// Read-through without caching.
	if c.remoteReadyLocked(r) {
		n, err := c.dodo.Mread(r.remoteFD, offset, buf[:want])
		if err == nil {
			c.stats.RemoteReads += int64(n)
			return n, nil
		}
		// Remote copy lost: fall back to disk (§3.1 drop semantics).
		c.noteRemoteFailLocked(r, err)
	}
	n, err := r.backing.ReadAt(buf[:want], r.backOff+offset)
	if err != nil {
		return -1, fmt.Errorf("region: disk read: %w", err)
	}
	c.stats.DiskReads += int64(n)
	// Opportunistic migration: a full-region read already has the
	// bytes in hand, so push them to the remote cache for later reads
	// (this is how first-in workloads populate remote memory without
	// displacing the protected local residents).
	if offset == 0 && want == r.length && int64(n) == r.length && r.remoteFD < 0 {
		c.cloneRemoteLocked(r, buf[:want])
	}
	return n, nil
}

// Cwrite writes buf at offset within the region (§3.3). Locally cached
// regions absorb the write (write-back, flushed by eviction or Csync);
// non-resident regions write through to remote memory and disk.
func (c *Cache) Cwrite(fd int, offset int64, buf []byte) (int, error) {
	c.mu.Lock()
	defer c.mu.Unlock()
	r, ok := c.regions[fd]
	if !ok {
		return -1, fmt.Errorf("%w: %d", ErrBadFD, fd)
	}
	if offset < 0 || offset > r.length {
		return -1, fmt.Errorf("%w: offset %d in %d-byte region", ErrRange, offset, r.length)
	}
	want := int64(len(buf))
	if offset+want > r.length {
		want = r.length - offset
	}
	if r.local == nil && c.cfg.PromoteOnAccess {
		c.promoteLocked(r)
	}
	if r.local != nil {
		copy(r.local[offset:offset+want], buf[:want])
		r.dirty = true
		c.cfg.Policy.NoteAccess(fd, true)
		return int(want), nil
	}
	// Write through.
	if c.remoteReadyLocked(r) {
		n, err := c.dodo.Mwrite(r.remoteFD, offset, buf[:want])
		if err == nil {
			return n, nil // Mwrite wrote disk too
		}
		c.noteRemoteFailLocked(r, err)
	}
	// A full-region write can establish the remote copy directly:
	// Mwrite propagates to both the remote host and the backing file.
	// Only for regions with no remote descriptor at all — a suspect
	// descriptor makes cloneRemoteLocked a no-op success, and the write
	// would reach neither remote memory nor disk.
	if offset == 0 && want == r.length && r.remoteFD < 0 {
		if c.cloneRemoteLocked(r, buf[:want]) {
			return int(want), nil
		}
	}
	n, err := r.backing.WriteAt(buf[:want], r.backOff+offset)
	if err != nil {
		return -1, fmt.Errorf("region: disk write: %w", err)
	}
	return n, nil
}

// Csync forces the region to remote memory and disk (§3.3: "blocks till
// the region has been written to remote memory and to disk").
func (c *Cache) Csync(fd int) error {
	c.mu.Lock()
	defer c.mu.Unlock()
	r, ok := c.regions[fd]
	if !ok {
		return fmt.Errorf("%w: %d", ErrBadFD, fd)
	}
	if r.local != nil && r.dirty {
		if r.remoteFD < 0 {
			c.cloneRemoteLocked(r, r.local) // best effort: remote copy wanted
		}
		if err := c.flushLocked(r); err != nil {
			return err
		}
	}
	if r.remoteFD >= 0 {
		return c.dodo.Msync(r.remoteFD)
	}
	return r.backing.Sync()
}

// Cclose flushes and releases the region (§3.3).
func (c *Cache) Cclose(fd int) error {
	c.mu.Lock()
	defer c.mu.Unlock()
	r, ok := c.regions[fd]
	if !ok {
		return fmt.Errorf("%w: %d", ErrBadFD, fd)
	}
	if r.local != nil && r.dirty {
		if err := c.flushLocked(r); err != nil {
			return err
		}
	}
	if r.local != nil {
		c.used -= r.length
		r.local = nil
		c.cfg.Policy.NoteUncached(fd)
	}
	if r.remoteFD >= 0 {
		_ = c.dodo.Mclose(r.remoteFD) // region may already be reclaimed
	}
	c.unregisterLocationLocked(r)
	delete(c.regions, fd)
	return nil
}

// flushLocked writes a dirty local copy to disk (and to the remote copy
// if one exists), clearing the dirty flag. Caller holds c.mu.
func (c *Cache) flushLocked(r *cregion) error {
	if c.remoteReadyLocked(r) {
		// Mwrite propagates to disk and remote in parallel (§3).
		if _, err := c.dodo.Mwrite(r.remoteFD, 0, r.local); err == nil {
			r.dirty = false
			c.stats.WriteBacks++
			return nil
		} else {
			c.noteRemoteFailLocked(r, err) // remote lost; fall through to disk
		}
	}
	if _, err := r.backing.WriteAt(r.local, r.backOff); err != nil {
		return fmt.Errorf("region: flushing region %d: %w", r.fd, err)
	}
	r.dirty = false
	c.stats.WriteBacks++
	return nil
}

// promoteLocked pulls a region into the local cache, evicting victims as
// needed. On failure the region stays where it is. Caller holds c.mu.
func (c *Cache) promoteLocked(r *cregion) {
	if r.length > c.cfg.Capacity || !c.ensureSpaceLocked(r.length) {
		return
	}
	buf := make([]byte, r.length)
	filled := false
	if c.remoteReadyLocked(r) {
		if n, err := c.dodo.Mread(r.remoteFD, 0, buf); err == nil && int64(n) == r.length {
			c.stats.RemoteReads += int64(n)
			filled = true
		} else {
			c.noteRemoteFailLocked(r, err)
		}
	}
	if !filled {
		if _, err := r.backing.ReadAt(buf, r.backOff); err == nil {
			c.stats.DiskReads += r.length
		}
	}
	r.local = buf
	c.used += r.length
	c.stats.Promotions++
	c.cfg.Policy.NoteCached(r.fd)
}

// ensureSpaceLocked is the grimReaper of Figure 5: evict regions chosen
// by the policy until need bytes are free, migrating each victim to the
// remote cache (writing dirty data to disk first) or spilling it to
// disk when the remote cache has no space. Caller holds c.mu.
func (c *Cache) ensureSpaceLocked(need int64) bool {
	for c.cfg.Capacity-c.used < need {
		fd, ok := c.cfg.Policy.Victim()
		if !ok {
			return false // policy refuses (first-in) or cache empty
		}
		victim := c.regions[fd]
		if victim == nil || victim.local == nil {
			// Stale policy entry; drop it and continue.
			c.cfg.Policy.NoteUncached(fd)
			continue
		}
		if victim.dirty {
			if err := c.flushLocked(victim); err != nil {
				return false
			}
		}
		if victim.remoteFD < 0 {
			c.cloneRemoteLocked(victim, victim.local)
		}
		// removeLocalEntry(R)
		c.used -= victim.length
		victim.local = nil
		c.cfg.Policy.NoteUncached(fd)
		c.stats.Evictions++
	}
	return true
}

// noteRemoteFailLocked records a failed remote access. ErrNoMem (host
// crashed, reclaimed, or dropped, §3.1) keeps the descriptor and marks
// the copy suspect so the cache repopulates through the runtime's
// background recovery after the refraction period; any other error is
// unrecoverable and drops the remote copy for good. Caller holds c.mu.
func (c *Cache) noteRemoteFailLocked(r *cregion, err error) {
	if errors.Is(err, core.ErrNoMem) {
		r.remoteFailAt = c.cfg.Clock.Now()
		return
	}
	r.remoteFD = -1
	r.remoteFailAt = time.Time{}
}

// remoteReadyLocked reports whether r's remote copy may be used. A
// suspect copy is refused until the refraction period has passed; on
// the first attempt after it, the full region contents are re-pushed
// before the copy is trusted again — writes during the outage went
// disk-only, so the remote bytes may be stale even when the runtime
// revived the descriptor. Caller holds c.mu.
func (c *Cache) remoteReadyLocked(r *cregion) bool {
	if r.remoteFD < 0 {
		return false
	}
	if r.remoteFailAt.IsZero() {
		return true
	}
	now := c.cfg.Clock.Now()
	if now.Sub(r.remoteFailAt) < c.cfg.RefractionPeriod {
		return false
	}
	data := r.local
	if data == nil {
		data = make([]byte, r.length)
		if _, err := r.backing.ReadAt(data, r.backOff); err != nil {
			return false
		}
		c.stats.DiskReads += r.length
	}
	if _, err := c.dodo.Mwrite(r.remoteFD, 0, data); err != nil {
		r.remoteFailAt = now // still down; stay suspect
		return false
	}
	if r.local != nil {
		r.dirty = false // Mwrite propagated the local bytes to disk too
	}
	r.remoteFailAt = time.Time{}
	c.stats.RemoteRevives++
	return true
}

// cloneRemoteLocked tries to give r a remote copy (cloneRemoteRegion of
// Figure 5), honoring the refraction period after a failed allocation.
// data supplies the region's current contents when the caller has them
// in hand; nil derives them from the local copy or, as a last resort,
// from the backing file (a remote region must always hold real bytes).
// Caller holds c.mu. Reports whether the region now has a remote copy.
func (c *Cache) cloneRemoteLocked(r *cregion, data []byte) bool {
	if r.remoteFD >= 0 {
		return true
	}
	now := c.cfg.Clock.Now()
	if c.failed && now.Sub(c.lastFail) < c.cfg.RefractionPeriod {
		c.stats.RefractSkips++
		return false
	}
	mfd, err := c.dodo.Mopen(r.length, r.backing, r.backOff)
	if err != nil {
		// No space in the remote cache: enter refraction (Figure 5).
		c.failed = true
		c.lastFail = now
		c.stats.DiskSpills++
		return false
	}
	c.failed = false
	if data == nil {
		data = r.local
	}
	if data == nil {
		// Disk-only source: the clone must carry the real contents.
		data = make([]byte, r.length)
		if _, err := r.backing.ReadAt(data, r.backOff); err != nil {
			_ = c.dodo.Mclose(mfd)
			return false
		}
		c.stats.DiskReads += r.length
	}
	// Push the contents so the remote copy is authoritative.
	if _, err := c.dodo.Mwrite(mfd, 0, data); err != nil {
		// Release the half-built clone: keeping the fd would leak a
		// client descriptor plus its manager-side allocation, and the
		// runtime's recovery loop would grind on the orphan forever.
		_ = c.dodo.Mclose(mfd)
		c.failed = true
		c.lastFail = now
		return false
	}
	r.remoteFD = mfd
	c.stats.RemoteClones++
	if r.local != nil {
		r.dirty = false
	}
	return true
}
