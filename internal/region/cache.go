package region

import (
	"errors"
	"fmt"
	"sync"
	"time"

	"dodo/internal/core"
	"dodo/internal/locks"
	"dodo/internal/sim"
)

// Dodo is the slice of the runtime library the cache needs. *core.Client
// satisfies it; the virtual-time experiment harness provides a
// cost-accounting implementation.
type Dodo interface {
	// Mopen allocates a remote region; the returned descriptor must be
	// Mclosed on every path, including error exits.
	//
	// dodo:acquires(dodofd)
	Mopen(length int64, backing core.Backing, offset int64) (int, error)
	Mread(fd int, offset int64, buf []byte) (int, error)
	Mwrite(fd int, offset int64, buf []byte) (int, error)
	// dodo:releases(dodofd)
	Mclose(fd int) error
	Msync(fd int) error
}

var _ Dodo = (*core.Client)(nil)

// BatchReader is the optional batched-read extension of Dodo: several
// reads issued as one call, letting the runtime collapse same-host
// reads into a single wire exchange. The prefetch pipeline feeds a
// whole PrefetchWindow through it when the Dodo implementation
// supports it; per-region Mread remains the universal fallback.
type BatchReader interface {
	MreadBatch(reqs []core.BatchRead) []core.BatchResult
}

var _ BatchReader = (*core.Client)(nil)

// State is a region's caching state — the four states of §3.3.
type State int

// Region states.
const (
	// StateDiskOnly: not cached in memory, only on disk.
	StateDiskOnly State = iota
	// StateLocal: cached in the local region cache only.
	StateLocal
	// StateRemote: cached in remote cluster memory only.
	StateRemote
	// StateLocalRemote: cached both locally and remotely.
	StateLocalRemote
)

func (s State) String() string {
	switch s {
	case StateDiskOnly:
		return "disk-only"
	case StateLocal:
		return "local"
	case StateRemote:
		return "remote"
	case StateLocalRemote:
		return "local+remote"
	}
	return fmt.Sprintf("region.State(%d)", int(s))
}

// Errors returned by the cache.
var (
	ErrBadFD = errors.New("region: bad region descriptor")
	ErrRange = errors.New("region: access beyond region bounds")
)

// Config tunes a Cache.
type Config struct {
	// Capacity is the local cache budget in bytes (the paper's
	// experiments use 80 MB).
	Capacity int64
	// Policy is the replacement policy module (default LRU, §3.3).
	Policy Policy
	// RefractionPeriod suppresses remote-clone attempts after one
	// fails for lack of remote space (Figure 5; default 5s).
	RefractionPeriod time.Duration
	// Clock provides time (default wall clock).
	Clock sim.Clock
	// PromoteOnAccess controls whether accessing a non-local region
	// pulls the whole region into the local cache (default true; the
	// first-in policy effectively disables it by refusing victims once
	// the cache fills).
	PromoteOnAccess bool
	// SequentialPrefetch pulls upcoming contiguous regions of a backing
	// file toward the application when regions are accessed in order
	// (see prefetch.go). Off by default, as in the paper; this is the
	// cooperative-prefetching extension its related work points at.
	SequentialPrefetch bool
	// PrefetchWindow is how many regions ahead of a detected sequential
	// stream the prefetcher runs (default 1).
	PrefetchWindow int
	// PrefetchWorkers sizes the asynchronous prefetch pool. 0 (the
	// default) runs prefetches synchronously on the accessing
	// goroutine, which keeps virtual-time experiments and the seeded
	// fault sweeps deterministic under the sim clock; >0 starts that
	// many background workers so prefetch I/O overlaps the foreground
	// accesses that armed it.
	PrefetchWorkers int
}

func (c Config) withDefaults() Config {
	if c.Policy == nil {
		c.Policy = NewLRU()
	}
	if c.RefractionPeriod == 0 {
		c.RefractionPeriod = 5 * time.Second
	}
	if c.Clock == nil {
		c.Clock = sim.WallClock{}
	}
	if c.PrefetchWindow < 1 {
		c.PrefetchWindow = 1
	}
	if c.PrefetchWorkers < 0 {
		c.PrefetchWorkers = 0
	}
	return c
}

// inflight is a region's in-flight marker: it is registered (under
// c.mu) by the operation that owns a region's transition — a fill, a
// dirty flush, or an eviction — before the lock is dropped for the
// I/O, and done is closed (again under c.mu) once the results are
// installed. Any operation that finds a marker on its region waits on
// done outside the lock, then re-looks the region up from scratch.
type inflight struct {
	done chan struct{}
}

// newInflight creates an in-flight marker. Whoever creates one owes
// its region a settled state: the marker must reach r.pend (and
// c.fills for fills) and eventually be cleared with done closed.
//
// dodo:acquires(marker)
func newInflight() *inflight { return &inflight{done: make(chan struct{})} }

// cregion is one entry of the local cache directory. Every field is
// guarded by the Cache's mu (the struct itself carries no lock): I/O
// phases work on ioView snapshots taken under the lock, and a non-nil
// pend gives its owner exclusive right to *mutate* the region's
// location state between two lock sections (see DESIGN.md §11).
type cregion struct {
	fd      int
	length  int64
	backing core.Backing
	backOff int64

	local    []byte // non-nil iff cached locally
	dirty    bool   // local copy differs from disk
	remoteFD int    // core descriptor, -1 when no remote copy
	// remoteFailAt marks the remote copy suspect after an ErrNoMem
	// failure (host crashed or reclaimed, §3.1). The descriptor is kept:
	// the runtime's background recovery may re-open it, so the cache
	// retries after the refraction period instead of abandoning remote
	// memory forever. Zero means healthy.
	remoteFailAt time.Time
	// pend is the in-flight marker; nil when the region is stable.
	pend *inflight
	// cloning suppresses duplicate remote-clone attempts from
	// marker-less read-through paths (cloneRemote).
	cloning bool
	// writeGen counts acknowledged write-throughs. A clone captures the
	// generation with its data snapshot and aborts before pushing if it
	// has moved: a push of pre-write bytes would clobber the
	// acknowledged write on disk and publish it remotely.
	writeGen uint64
	// clonePend is set only for a clone's push phase (Mwrite in
	// flight). Write-throughs wait on it so no write can interleave
	// with a push that already passed its staleness check.
	clonePend *inflight
}

func (r *cregion) state() State {
	switch {
	case r.local != nil && r.remoteFD >= 0:
		return StateLocalRemote
	case r.local != nil:
		return StateLocal
	case r.remoteFD >= 0:
		return StateRemote
	}
	return StateDiskOnly
}

// remoteMode classifies how an I/O phase may use a region's remote
// copy; it is decided under c.mu, before the lock is dropped.
type remoteMode int

const (
	// remoteNone: no usable remote copy (absent, or suspect inside the
	// refraction period).
	remoteNone remoteMode = iota
	// remoteHealthy: use the descriptor directly.
	remoteHealthy
	// remoteRevive: suspect but past refraction — writes during the
	// outage went disk-only, so the full contents must be re-pushed
	// before the copy is trusted again (§3.1).
	remoteRevive
)

// ioView is the under-lock snapshot an I/O phase works from once c.mu
// is dropped. cregion fields are only ever touched while holding the
// lock; everything an Mread/Mwrite/ReadAt/WriteAt needs travels here.
type ioView struct {
	fd       int
	length   int64
	backing  core.Backing
	backOff  int64
	remoteFD int
	mode     remoteMode
	// writeGen is the region's write generation at snapshot time; it
	// dates any bytes captured alongside this view for cloneRemote's
	// staleness check.
	writeGen uint64
}

// viewLocked snapshots r for an I/O phase. Caller holds c.mu.
func (c *Cache) viewLocked(r *cregion) ioView {
	return ioView{
		fd:       r.fd,
		length:   r.length,
		backing:  r.backing,
		backOff:  r.backOff,
		remoteFD: r.remoteFD,
		mode:     c.remoteModeLocked(r),
		writeGen: r.writeGen,
	}
}

// remoteModeLocked classifies r's remote copy. Caller holds c.mu.
func (c *Cache) remoteModeLocked(r *cregion) remoteMode {
	if r.remoteFD < 0 {
		return remoteNone
	}
	if r.remoteFailAt.IsZero() {
		return remoteHealthy
	}
	if c.cfg.Clock.Now().Sub(r.remoteFailAt) < c.cfg.RefractionPeriod {
		return remoteNone
	}
	return remoteRevive
}

// Stats reports cache activity; the virtual-time experiments derive
// every figure from these counters.
type Stats struct {
	LocalHits     int64 // accesses served from the local cache
	RemoteReads   int64 // bytes served from remote memory (read-through)
	DiskReads     int64 // bytes served from disk (read-through)
	Promotions    int64 // regions pulled into the local cache
	Evictions     int64 // regions pushed out by grimReaper
	RemoteClones  int64 // evictions that went to remote memory
	DiskSpills    int64 // evictions that fell back to disk only
	WriteBacks    int64 // dirty flushes
	RefractSkips  int64 // remote clones skipped inside refraction
	Prefetches    int64 // prefetch pulls issued
	RemoteRevives int64 // suspect remote copies brought back into service
}

// Cache is the region-management library instance. No disk or network
// I/O ever runs while mu is held: operations decide and reserve under
// the lock, mark the regions they are transitioning with in-flight
// markers, perform the I/O on ioView snapshots, and re-lock to install
// the results (DESIGN.md §11). Lock juggling is always local to one
// function: helpers called with the lock held (the *Locked family)
// never release it, and helpers that acquire it are never called with
// it held.
type Cache struct {
	// dodo:unguarded — immutable after construction
	cfg Config
	// dodo:unguarded — immutable after construction
	dodo Dodo

	mu locks.Mutex
	// dodo:guardedby mu
	regions map[int]*cregion
	// dodo:guardedby mu
	nextFD int
	// used counts local-cache bytes, including bytes pre-charged for
	// fills still in flight.
	// dodo:guardedby mu
	used int64
	// dodo:guardedby mu
	lastFail time.Time
	// dodo:guardedby mu
	failed bool
	// dodo:guardedby mu
	stats Stats
	// dodo:guardedby mu
	closed bool

	// prefetch state (prefetch.go)
	// dodo:guardedby mu
	byLocation map[prefKey]int
	// fills coalesces concurrent fetches of one backing location — the
	// singleflight per (inode, off): a fill marker is registered here
	// as well as on its region, and fill admission waits out any entry
	// already present for the location.
	// dodo:guardedby mu
	fills map[prefKey]*inflight
	// streams maps a backing inode to the offset where the next
	// sequential access would start, so interleaved scans over
	// different backing files each keep their own detector.
	// dodo:guardedby mu
	streams map[uint64]int64
	// prefetchPend counts prefetch jobs queued or running; Quiesce and
	// Close wait for it to drain.
	// dodo:guardedby mu
	prefetchPend int
	// quiesce signals prefetchPend transitions; it shares mu.
	// dodo:unguarded — sync.Cond is internally synchronized over mu
	quiesce *sync.Cond
	// prefetchQ feeds the worker pool one access's prefetch window at a
	// time, so a worker sees the whole window and can batch its remote
	// fetches; nil when PrefetchWorkers == 0.
	// dodo:unguarded — buffered channel, internally synchronized
	prefetchQ chan []int
	// prefetchStop stops the pool; closed once by Close.
	// dodo:unguarded — set at construction; closed once under the
	// closed flag in Close
	prefetchStop chan struct{}
	// dodo:unguarded — WaitGroup is internally synchronized
	prefetchWG sync.WaitGroup
}

// NewCache builds a region cache over the given Dodo runtime.
func NewCache(dodo Dodo, cfg Config) *Cache {
	c := &Cache{
		cfg:        cfg.withDefaults(),
		dodo:       dodo,
		regions:    make(map[int]*cregion),
		byLocation: make(map[prefKey]int),
		fills:      make(map[prefKey]*inflight),
		streams:    make(map[uint64]int64),
	}
	c.mu.SetRank(locks.RankRegionCache)
	c.quiesce = sync.NewCond(&c.mu)
	if c.cfg.PrefetchWorkers > 0 {
		c.prefetchQ = make(chan []int, 4*c.cfg.PrefetchWorkers+c.cfg.PrefetchWindow)
		c.prefetchStop = make(chan struct{})
		for i := 0; i < c.cfg.PrefetchWorkers; i++ {
			c.prefetchWG.Add(1)
			go c.prefetchWorker()
		}
	}
	return c
}

// Stats returns a snapshot of the counters.
func (c *Cache) Stats() Stats {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.stats
}

// Used returns the bytes of local cache in use (fills in flight count
// against the budget from the moment their space is reserved).
func (c *Cache) Used() int64 {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.used
}

// State reports a region's caching state.
func (c *Cache) State(fd int) (State, error) {
	c.mu.Lock()
	defer c.mu.Unlock()
	r, ok := c.regions[fd]
	if !ok {
		return 0, fmt.Errorf("%w: %d", ErrBadFD, fd)
	}
	return r.state(), nil
}

// SetPolicy switches the replacement policy (csetPolicy, §3.3). Resident
// regions are re-registered with the new policy in an arbitrary order.
func (c *Cache) SetPolicy(p Policy) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.cfg.Policy = p
	for fd, r := range c.regions {
		if r.local != nil {
			p.NoteCached(fd)
		}
	}
}

// Copen creates a region of length bytes backed by [offset,
// offset+length) of backing (§3.3). The region starts in the local cache
// when space can be made; otherwise it goes remote, or disk-only as the
// last resort. Contents are faulted in from disk on first access. The
// fill marker moves into r.pend/c.fills; clearFillLocked settles it.
//
// dodo:transfers(marker)
func (c *Cache) Copen(length int64, backing core.Backing, offset int64) (int, error) {
	if length < 1 || offset < 0 || backing == nil {
		return -1, fmt.Errorf("%w: length %d offset %d", core.ErrInval, length, offset)
	}
	c.mu.Lock()
	fd := c.nextFD
	c.nextFD++
	r := &cregion{fd: fd, length: length, backing: backing, backOff: offset, remoteFD: -1}
	c.regions[fd] = r
	c.registerLocationLocked(r)
	// With local room the region is faulted in from disk immediately;
	// otherwise it stays disk-only for now, and the first full read or
	// the grimReaper migrates it to the remote cache with its real
	// contents in hand.
	if length > c.cfg.Capacity {
		c.mu.Unlock()
		return fd, nil
	}
	victims, fit := c.reserveLocked(length)
	if !fit && len(victims) == 0 {
		c.mu.Unlock()
		return fd, nil
	}
	var marker *inflight
	var v ioView
	key := prefKey{inode: backing.Inode(), off: offset}
	if fit {
		marker = newInflight()
		r.pend = marker
		c.fills[key] = marker
		v = c.viewLocked(r)
	}
	c.mu.Unlock()

	for i := range victims {
		c.evictIO(&victims[i])
	}
	var data []byte
	if fit {
		// A fresh region cannot have a remote copy yet: disk is the
		// only source.
		data = make([]byte, length)
		if _, err := v.backing.ReadAt(data, v.backOff); err == nil {
			c.mu.Lock()
			c.stats.DiskReads += length
			c.mu.Unlock()
		}
	}

	c.mu.Lock()
	for i := range victims {
		c.settleEvictionLocked(&victims[i])
	}
	if fit {
		r.local = data
		c.cfg.Policy.NoteCached(fd)
		c.clearFillLocked(r, marker, key)
	}
	c.mu.Unlock()
	return fd, nil
}

// Cread reads len(buf) bytes at offset within the region (§3.3). The
// loop restarts whenever the region turns out to be mid-transition: it
// waits out the in-flight marker with the lock released and re-looks
// the region up from scratch.
func (c *Cache) Cread(fd int, offset int64, buf []byte) (int, error) {
	filled := false
	for {
		c.mu.Lock()
		r, ok := c.regions[fd]
		if !ok {
			c.mu.Unlock()
			return -1, fmt.Errorf("%w: %d", ErrBadFD, fd)
		}
		if r.pend != nil {
			p := r.pend
			c.mu.Unlock()
			<-p.done
			continue
		}
		if offset < 0 || offset > r.length {
			c.mu.Unlock()
			return -1, fmt.Errorf("%w: offset %d in %d-byte region", ErrRange, offset, r.length)
		}
		want := int64(len(buf))
		if offset+want > r.length {
			want = r.length - offset
		}
		if r.local == nil && c.cfg.PromoteOnAccess && !filled && r.length <= c.cfg.Capacity {
			c.mu.Unlock()
			filled = true // one attempt; the policy may refuse for good
			c.fillRegion(fd)
			continue
		}
		if r.local != nil {
			copy(buf[:want], r.local[offset:offset+want])
			c.stats.LocalHits++
			c.cfg.Policy.NoteAccess(fd, false)
			jobs := c.maybePrefetchLocked(r)
			c.mu.Unlock()
			c.dispatchPrefetch(jobs)
			return int(want), nil
		}
		// Read-through without caching.
		v := c.viewLocked(r)
		c.mu.Unlock()
		n, err := c.readThrough(v, offset, want, buf)
		if err != nil {
			// The foreground read failed: do not arm or issue
			// prefetch off a broken stream.
			return -1, err
		}
		c.mu.Lock()
		var jobs []int
		if r2, ok := c.regions[fd]; ok && r2 == r {
			// Read-through hits count as accesses too, so a hot
			// non-resident region can win promotion under policies
			// that rank by access (the local-hit path above is not the
			// only place the policy hears about traffic).
			c.cfg.Policy.NoteAccess(fd, false)
			jobs = c.maybePrefetchLocked(r2)
		}
		c.mu.Unlock()
		c.dispatchPrefetch(jobs)
		return n, nil
	}
}

// Cwrite writes buf at offset within the region (§3.3). Locally cached
// regions absorb the write (write-back, flushed by eviction or Csync);
// non-resident regions write through to remote memory and disk.
func (c *Cache) Cwrite(fd int, offset int64, buf []byte) (int, error) {
	filled := false
	for {
		c.mu.Lock()
		r, ok := c.regions[fd]
		if !ok {
			c.mu.Unlock()
			return -1, fmt.Errorf("%w: %d", ErrBadFD, fd)
		}
		if r.pend != nil {
			p := r.pend
			c.mu.Unlock()
			<-p.done
			continue
		}
		if offset < 0 || offset > r.length {
			c.mu.Unlock()
			return -1, fmt.Errorf("%w: offset %d in %d-byte region", ErrRange, offset, r.length)
		}
		want := int64(len(buf))
		if offset+want > r.length {
			want = r.length - offset
		}
		if r.local == nil && c.cfg.PromoteOnAccess && !filled && r.length <= c.cfg.Capacity {
			c.mu.Unlock()
			filled = true
			c.fillRegion(fd)
			continue
		}
		if r.local != nil {
			copy(r.local[offset:offset+want], buf[:want])
			r.dirty = true
			c.cfg.Policy.NoteAccess(fd, true)
			c.mu.Unlock()
			return int(want), nil
		}
		// Write through. A clone in its push phase holds bytes captured
		// before this write: wait it out so the push cannot land on top
		// of ours. (A clone that has not reached its push phase aborts
		// on the generation bump below instead — see cloneRemote.)
		if r.clonePend != nil {
			p := r.clonePend
			c.mu.Unlock()
			<-p.done
			continue
		}
		r.writeGen++
		v := c.viewLocked(r)
		c.mu.Unlock()
		return c.writeThrough(v, offset, want, buf)
	}
}

// Csync forces the region to remote memory and disk (§3.3: "blocks till
// the region has been written to remote memory and to disk"). Its
// marker moves into r.pend and is settled before every return.
//
// dodo:transfers(marker)
func (c *Cache) Csync(fd int) error {
	for {
		c.mu.Lock()
		r, ok := c.regions[fd]
		if !ok {
			c.mu.Unlock()
			return fmt.Errorf("%w: %d", ErrBadFD, fd)
		}
		if r.pend != nil {
			p := r.pend
			c.mu.Unlock()
			<-p.done
			continue
		}
		if r.local != nil && r.dirty {
			marker := newInflight()
			r.pend = marker
			data := r.local // the marker excludes concurrent mutation
			wantClone := r.remoteFD < 0
			v := c.viewLocked(r)
			c.mu.Unlock()

			flushed := false
			if wantClone && c.cloneRemote(fd, data, v.writeGen, true) {
				// The clone's Mwrite pushed data to the new remote
				// copy and through to disk: the flush already
				// happened.
				flushed = true
				c.mu.Lock()
				c.stats.WriteBacks++
				c.mu.Unlock()
			}
			var ferr error
			if !flushed {
				ferr = c.flushIO(v, data)
			}

			c.mu.Lock()
			r.pend = nil
			close(marker.done)
			if ferr != nil {
				c.mu.Unlock()
				return ferr
			}
			r.dirty = false
		}
		v := c.viewLocked(r)
		c.mu.Unlock()
		if v.remoteFD >= 0 {
			return c.dodo.Msync(v.remoteFD)
		}
		return v.backing.Sync()
	}
}

// Cclose flushes and releases the region (§3.3). Its marker moves into
// r.pend and is settled before every return.
//
// dodo:transfers(marker)
func (c *Cache) Cclose(fd int) error {
	for {
		c.mu.Lock()
		r, ok := c.regions[fd]
		if !ok {
			c.mu.Unlock()
			return fmt.Errorf("%w: %d", ErrBadFD, fd)
		}
		if r.pend != nil {
			p := r.pend
			c.mu.Unlock()
			<-p.done
			continue
		}
		if r.local != nil && r.dirty {
			marker := newInflight()
			r.pend = marker
			data := r.local // the marker excludes concurrent mutation
			v := c.viewLocked(r)
			c.mu.Unlock()
			ferr := c.flushIO(v, data)
			c.mu.Lock()
			r.pend = nil
			close(marker.done)
			if ferr != nil {
				// The region stays open (and dirty) so the caller can
				// retry or sync elsewhere.
				c.mu.Unlock()
				return ferr
			}
			r.dirty = false
		}
		if r.local != nil {
			c.used -= r.length
			r.local = nil
			c.cfg.Policy.NoteUncached(fd)
		}
		remoteFD := r.remoteFD
		c.unregisterLocationLocked(r)
		delete(c.regions, fd)
		c.mu.Unlock()
		if remoteFD >= 0 {
			_ = c.dodo.Mclose(remoteFD) // region may already be reclaimed
		}
		return nil
	}
}

// evictJob is one eviction decided under the lock and executed outside
// it: the victim's buffer is detached at decision time, the dirty
// flush and remote clone happen in evictIO, and settleEvictionLocked
// installs the outcome and releases the marker.
type evictJob struct {
	r      *cregion
	view   ioView
	data   []byte
	dirty  bool
	marker *inflight
	// reinstall is set by evictIO when the flush failed: the bytes
	// have nowhere durable to go, so the region re-enters the cache.
	reinstall bool
}

// reserveLocked is the decision half of the grimReaper (Figure 5):
// pick victims by policy until need bytes fit, detach their buffers,
// and pre-charge the budget for the caller's fill. The flushes and
// remote clones the evictions imply run later, outside the lock, via
// evictIO/settleEvictionLocked. Caller holds c.mu.
//
// Even when the policy refuses and fit is false, the already-detached
// victims are committed and must still be flushed by the caller. Each
// victim's in-flight marker is published through victim.pend; the
// caller's settleEvictionLocked retires it.
//
// dodo:transfers(marker)
func (c *Cache) reserveLocked(need int64) (victims []evictJob, fit bool) {
	for c.cfg.Capacity-c.used < need {
		fd, ok := c.cfg.Policy.Victim()
		if !ok {
			return victims, false // policy refuses (first-in) or cache empty
		}
		victim := c.regions[fd]
		if victim == nil || victim.local == nil {
			// Stale policy entry; drop it and continue.
			c.cfg.Policy.NoteUncached(fd)
			continue
		}
		if victim.pend != nil {
			// The victim is mid-transition (a Csync flush): give up
			// rather than spin on a region we may not touch.
			return victims, false
		}
		job := evictJob{
			r:      victim,
			data:   victim.local,
			dirty:  victim.dirty,
			marker: newInflight(),
		}
		victim.pend = job.marker
		victim.local = nil
		victim.dirty = false
		c.used -= victim.length
		c.cfg.Policy.NoteUncached(fd)
		job.view = c.viewLocked(victim)
		victims = append(victims, job)
	}
	c.used += need // pre-charge the fill; install adds nothing
	return victims, true
}

// evictIO is the I/O half of one eviction: flush dirty bytes to the
// victim's remote copy or disk, then try to stage the victim remotely
// (cloneRemoteRegion of Figure 5) so its next access skips the disk.
// Runs without c.mu.
func (c *Cache) evictIO(job *evictJob) {
	if job.dirty && c.flushIO(job.view, job.data) != nil {
		job.reinstall = true
		return
	}
	if job.view.remoteFD < 0 {
		c.cloneRemote(job.view.fd, job.data, job.view.writeGen, job.dirty)
	}
}

// settleEvictionLocked installs one eviction's outcome and releases
// its marker. Caller holds c.mu.
//
// dodo:releases(marker)
func (c *Cache) settleEvictionLocked(job *evictJob) {
	r := job.r
	if job.reinstall {
		// The flush failed: the detached bytes are the only copy, so
		// the region re-enters the cache, transiently overshooting the
		// budget rather than losing data. The next reservation evicts
		// harder.
		r.local = job.data
		r.dirty = true
		c.used += r.length
		c.cfg.Policy.NoteCached(r.fd)
	} else {
		c.stats.Evictions++
	}
	r.pend = nil
	close(job.marker.done)
}

// fillRegion pulls the region into the local cache (promotion). It
// acquires c.mu itself and must be called without it: victim
// selection, budget pre-charge and marker registration happen under
// the lock; the eviction flushes and the fetch run with it released;
// a final lock section installs the contents and wakes waiters.
//
// dodo:transfers(marker)
func (c *Cache) fillRegion(fd int) {
	c.mu.Lock()
	r, ok := c.regions[fd]
	if !ok || r.local != nil || r.pend != nil || r.length > c.cfg.Capacity {
		// Gone, already local, or mid-transition (someone else's fill
		// or flush owns it — the caller's retry loop waits that out).
		c.mu.Unlock()
		return
	}
	key := prefKey{inode: r.backing.Inode(), off: r.backOff}
	if f, busy := c.fills[key]; busy {
		// A region aliased to the same backing location is already
		// filling (the singleflight per (inode, off)): ride out its
		// I/O instead of issuing a duplicate fetch.
		c.mu.Unlock()
		<-f.done
		return
	}
	victims, fit := c.reserveLocked(r.length)
	if !fit && len(victims) == 0 {
		c.mu.Unlock()
		return // nothing to evict and no room: stay non-resident
	}
	var marker *inflight
	var v ioView
	if fit {
		marker = newInflight()
		r.pend = marker
		c.fills[key] = marker
		v = c.viewLocked(r)
	}
	c.mu.Unlock()

	for i := range victims {
		c.evictIO(&victims[i])
	}
	var data []byte
	if fit {
		data = c.fetchContents(v)
	}

	c.mu.Lock()
	for i := range victims {
		c.settleEvictionLocked(&victims[i])
	}
	if fit {
		r.local = data
		c.stats.Promotions++
		c.cfg.Policy.NoteCached(fd)
		c.clearFillLocked(r, marker, key)
	}
	c.mu.Unlock()
}

// clearFillLocked releases a fill marker: waiters wake and the
// singleflight entry comes off (unless a later fill for a re-opened
// alias already replaced it). Caller holds c.mu.
func (c *Cache) clearFillLocked(r *cregion, marker *inflight, key prefKey) {
	r.pend = nil
	if c.fills[key] == marker {
		delete(c.fills, key)
	}
	close(marker.done)
}

// fetchContents reads the full region behind v, remote copy first. It
// always returns a region-length buffer — zero-filled when every copy
// fails, matching the pre-concurrency fault-in behavior. Runs without
// c.mu.
func (c *Cache) fetchContents(v ioView) []byte {
	buf := make([]byte, v.length)
	switch v.mode {
	case remoteHealthy:
		n, err := c.dodo.Mread(v.remoteFD, 0, buf)
		if err == nil && int64(n) == v.length {
			c.mu.Lock()
			c.stats.RemoteReads += int64(n)
			c.mu.Unlock()
			return buf
		}
		c.remoteFailed(v.fd, err)
	case remoteRevive:
		// Writes during the outage went disk-only, so disk is the
		// authority: read it, push the bytes to revive the remote
		// copy, and serve the fill from the disk bytes.
		if _, err := v.backing.ReadAt(buf, v.backOff); err == nil {
			c.mu.Lock()
			c.stats.DiskReads += v.length
			c.mu.Unlock()
			if _, err := c.dodo.Mwrite(v.remoteFD, 0, buf); err == nil {
				c.remoteRevived(v.fd)
			} else {
				c.remoteStaySuspect(v.fd)
			}
			return buf
		}
	}
	if _, err := v.backing.ReadAt(buf, v.backOff); err == nil {
		c.mu.Lock()
		c.stats.DiskReads += v.length
		c.mu.Unlock()
	}
	return buf
}

// readThrough serves a read for a non-resident region from its remote
// copy or the backing file, without touching the local cache. Runs
// without c.mu, on an under-lock snapshot.
func (c *Cache) readThrough(v ioView, offset, want int64, buf []byte) (int, error) {
	if v.mode == remoteRevive {
		if c.reviveRemote(v) {
			v.mode = remoteHealthy
		} else {
			v.mode = remoteNone
		}
	}
	if v.mode == remoteHealthy {
		n, err := c.dodo.Mread(v.remoteFD, offset, buf[:want])
		if err == nil {
			c.mu.Lock()
			c.stats.RemoteReads += int64(n)
			c.mu.Unlock()
			return n, nil
		}
		// Remote copy lost: fall back to disk (§3.1 drop semantics).
		c.remoteFailed(v.fd, err)
	}
	n, err := v.backing.ReadAt(buf[:want], v.backOff+offset)
	if err != nil {
		return -1, fmt.Errorf("region: disk read: %w", err)
	}
	c.mu.Lock()
	c.stats.DiskReads += int64(n)
	c.mu.Unlock()
	// Opportunistic migration: a full-region read already has the
	// bytes in hand, so push them to the remote cache for later reads
	// (this is how first-in workloads populate remote memory without
	// displacing the protected local residents).
	if offset == 0 && want == v.length && int64(n) == v.length && v.remoteFD < 0 {
		c.cloneRemote(v.fd, buf[:want], v.writeGen, false)
	}
	return n, nil
}

// writeThrough propagates a write for a non-resident region to its
// remote copy (which reaches disk too) or the backing file. Runs
// without c.mu, on an under-lock snapshot.
func (c *Cache) writeThrough(v ioView, offset, want int64, buf []byte) (int, error) {
	if v.mode == remoteRevive {
		if c.reviveRemote(v) {
			v.mode = remoteHealthy
		} else {
			v.mode = remoteNone
		}
	}
	if v.mode == remoteHealthy {
		n, err := c.dodo.Mwrite(v.remoteFD, offset, buf[:want])
		if err == nil {
			c.noteThroughAccess(v.fd, true)
			return n, nil // Mwrite wrote disk too
		}
		c.remoteFailed(v.fd, err)
	}
	// A full-region write can establish the remote copy directly:
	// Mwrite propagates to both the remote host and the backing file.
	// Only for regions with no remote descriptor at all — a suspect
	// descriptor makes cloneRemote a no-op success, and the write
	// would reach neither remote memory nor disk.
	if offset == 0 && want == v.length && v.remoteFD < 0 {
		if c.cloneRemote(v.fd, buf[:want], v.writeGen, false) {
			c.noteThroughAccess(v.fd, true)
			return int(want), nil
		}
	}
	n, err := v.backing.WriteAt(buf[:want], v.backOff+offset)
	if err != nil {
		return -1, fmt.Errorf("region: disk write: %w", err)
	}
	c.noteThroughAccess(v.fd, true)
	return n, nil
}

// flushIO writes a region's full contents to its remote copy (Mwrite
// propagates to disk as well, §3) or directly to disk. The caller owns
// the region's marker; v is its under-lock snapshot. A suspect remote
// copy past refraction is revived by this very push. Runs without
// c.mu.
func (c *Cache) flushIO(v ioView, data []byte) error {
	if v.mode == remoteHealthy || v.mode == remoteRevive {
		if _, err := c.dodo.Mwrite(v.remoteFD, 0, data); err == nil {
			if v.mode == remoteRevive {
				c.remoteRevived(v.fd)
			}
			c.mu.Lock()
			c.stats.WriteBacks++
			c.mu.Unlock()
			return nil
		} else {
			c.remoteFailed(v.fd, err) // remote lost; fall through to disk
		}
	}
	if _, err := v.backing.WriteAt(data, v.backOff); err != nil {
		return fmt.Errorf("region: flushing region %d: %w", v.fd, err)
	}
	c.mu.Lock()
	c.stats.WriteBacks++
	c.mu.Unlock()
	return nil
}

// reviveRemote re-validates a suspect remote copy after the refraction
// period for a region with no local bytes: writes during the outage
// went disk-only, so the disk contents are pushed before the copy is
// trusted again (§3.1). Runs without c.mu.
func (c *Cache) reviveRemote(v ioView) bool {
	data := make([]byte, v.length)
	if _, err := v.backing.ReadAt(data, v.backOff); err != nil {
		return false
	}
	c.mu.Lock()
	c.stats.DiskReads += v.length
	c.mu.Unlock()
	if _, err := c.dodo.Mwrite(v.remoteFD, 0, data); err != nil {
		c.remoteStaySuspect(v.fd)
		return false
	}
	c.remoteRevived(v.fd)
	return true
}

// remoteFailed records a failed remote access. ErrNoMem (host crashed,
// reclaimed, or dropped, §3.1) keeps the descriptor and marks the copy
// suspect so the cache repopulates through the runtime's background
// recovery after the refraction period; any other error is
// unrecoverable and drops the remote copy for good. The region may
// have been closed while the lock was down; a missing fd is a no-op.
func (c *Cache) remoteFailed(fd int, err error) {
	c.mu.Lock()
	if r, ok := c.regions[fd]; ok {
		if errors.Is(err, core.ErrNoMem) {
			r.remoteFailAt = c.cfg.Clock.Now()
		} else {
			r.remoteFD = -1
			r.remoteFailAt = time.Time{}
		}
	}
	c.mu.Unlock()
}

// remoteStaySuspect re-arms a suspect remote copy's refraction window
// after a failed revival push.
func (c *Cache) remoteStaySuspect(fd int) {
	c.mu.Lock()
	if r, ok := c.regions[fd]; ok {
		r.remoteFailAt = c.cfg.Clock.Now()
	}
	c.mu.Unlock()
}

// remoteRevived clears a remote copy's suspect mark after a successful
// full-content push.
func (c *Cache) remoteRevived(fd int) {
	c.mu.Lock()
	if r, ok := c.regions[fd]; ok {
		r.remoteFailAt = time.Time{}
		c.stats.RemoteRevives++
	}
	c.mu.Unlock()
}

// noteThroughAccess tells the policy about a read-through or
// write-through access, so a hot non-resident region can win promotion
// under policies that rank by access frequency.
func (c *Cache) noteThroughAccess(fd int, write bool) {
	c.mu.Lock()
	if _, ok := c.regions[fd]; ok {
		c.cfg.Policy.NoteAccess(fd, write)
	}
	c.mu.Unlock()
}

// cloneRemote tries to give region fd a remote copy (cloneRemoteRegion
// of Figure 5), honoring the refraction period after a failed
// allocation. data supplies the region's current contents when the
// caller has them in hand; nil reads them from the backing file (a
// remote region must always hold real bytes). gen is the region's
// write generation (ioView.writeGen) observed under c.mu when data
// was captured: the clone aborts before its push if a write-through
// has landed since, because Mwrite propagates to disk and a push of
// pre-write bytes would silently clobber an acknowledged write.
// Writers arriving once the push phase has begun wait on the clone
// marker instead (see Cwrite), so the two can never interleave.
// clearDirty is set only by callers that own the region's marker and
// pass its live local bytes, so a successful push (which reaches disk
// too) may clear the dirty flag. Runs without c.mu; reports whether
// the region has a remote copy afterwards. The cloned descriptor
// either moves into r.remoteFD or is Mclosed on the failure,
// stale-data and lost-race paths.
//
// dodo:transfers(dodofd)
// dodo:transfers(marker)
func (c *Cache) cloneRemote(fd int, data []byte, gen uint64, clearDirty bool) bool {
	c.mu.Lock()
	r, ok := c.regions[fd]
	if !ok {
		c.mu.Unlock()
		return false
	}
	if r.remoteFD >= 0 {
		c.mu.Unlock()
		return true
	}
	if r.cloning {
		// Another goroutine is already on it; this attempt is
		// opportunistic, so just report no copy yet.
		c.mu.Unlock()
		return false
	}
	if data == nil {
		// The contents will be read from disk after this claim: date
		// them here, not at the caller (which has no bytes in hand).
		gen = r.writeGen
	}
	if r.writeGen != gen {
		// data already predates a write-through: don't even start.
		c.mu.Unlock()
		return false
	}
	now := c.cfg.Clock.Now()
	if c.failed && now.Sub(c.lastFail) < c.cfg.RefractionPeriod {
		c.stats.RefractSkips++
		c.mu.Unlock()
		return false
	}
	r.cloning = true
	length, backing, backOff := r.length, r.backing, r.backOff
	c.mu.Unlock()

	mfd, err := c.dodo.Mopen(length, backing, backOff)
	if err != nil {
		// No space in the remote cache: enter refraction (Figure 5).
		c.mu.Lock()
		c.failed = true
		c.lastFail = c.cfg.Clock.Now()
		c.stats.DiskSpills++
		c.cloneResetLocked(fd)
		c.mu.Unlock()
		return false
	}
	diskRead := int64(0)
	if data == nil {
		// Disk-only source: the clone must carry the real contents.
		data = make([]byte, length)
		if _, err := backing.ReadAt(data, backOff); err != nil {
			_ = c.dodo.Mclose(mfd)
			c.mu.Lock()
			c.cloneResetLocked(fd)
			c.mu.Unlock()
			return false
		}
		diskRead = length
	}

	// Enter the push phase: re-check that data is still current, then
	// raise the clone marker so no write-through can interleave with
	// the push below.
	c.mu.Lock()
	rp, ok := c.regions[fd]
	if !ok || rp.writeGen != gen {
		// Closed, or an acknowledged write landed while the lock was
		// down (e.g. during Mopen): pushing would clobber it on disk.
		// Discard the fresh clone instead.
		c.cloneResetLocked(fd)
		c.mu.Unlock()
		_ = c.dodo.Mclose(mfd)
		return false
	}
	marker := newInflight()
	rp.clonePend = marker
	c.mu.Unlock()

	// Push the contents so the remote copy is authoritative.
	if _, err := c.dodo.Mwrite(mfd, 0, data); err != nil {
		// Release the half-built clone: keeping the fd would leak a
		// client descriptor plus its manager-side allocation, and the
		// runtime's recovery loop would grind on the orphan forever.
		_ = c.dodo.Mclose(mfd)
		c.mu.Lock()
		c.failed = true
		c.lastFail = c.cfg.Clock.Now()
		c.cloneSettleLocked(fd, marker)
		c.mu.Unlock()
		return false
	}

	c.mu.Lock()
	c.failed = false
	c.stats.DiskReads += diskRead
	r2, ok := c.regions[fd]
	if !ok {
		// Closed while the lock was down: release the fresh clone.
		c.cloneSettleLocked(fd, marker)
		c.mu.Unlock()
		_ = c.dodo.Mclose(mfd)
		return false
	}
	if r2.remoteFD >= 0 {
		// Raced with another path that established a copy.
		c.cloneSettleLocked(fd, marker)
		c.mu.Unlock()
		_ = c.dodo.Mclose(mfd)
		return true
	}
	r2.remoteFD = mfd
	c.stats.RemoteClones++
	if clearDirty && r2.local != nil {
		r2.dirty = false // the push propagated the local bytes to disk
	}
	c.cloneSettleLocked(fd, marker)
	c.mu.Unlock()
	return true
}

// cloneResetLocked abandons a clone attempt that never reached its
// push phase: only the duplicate-suppression flag needs clearing.
// Caller holds c.mu.
func (c *Cache) cloneResetLocked(fd int) {
	if r, ok := c.regions[fd]; ok {
		r.cloning = false
	}
}

// cloneSettleLocked ends a clone's push phase: clears the flags and
// releases the marker any write-through may be parked on. The marker
// is closed even when the region is gone — waiters hold their own
// reference. Caller holds c.mu.
//
// dodo:releases(marker)
func (c *Cache) cloneSettleLocked(fd int, m *inflight) {
	if r, ok := c.regions[fd]; ok {
		r.cloning = false
		r.clonePend = nil
	}
	close(m.done)
}
