// Package workload implements the paper's synthetic benchmarks (§5.2.2)
// and the virtual-time application driver used to regenerate the
// evaluation figures. Each benchmark performs num_iter iterations; in
// each iteration it reads its entire data set according to its access
// pattern, one req_size request at a time, with a constant compute time
// between requests.
package workload

import (
	"fmt"
	"math/rand"
	"time"
)

// Request is one application I/O request.
type Request struct {
	Offset int64
	Size   int64
	// Write marks a write request (the synthetic benchmarks are pure
	// readers; lu writes each factored slab back once).
	Write bool
}

// Pattern produces the request stream of one iteration over the dataset.
// Implementations must be deterministic given their seed.
type Pattern interface {
	// Name identifies the benchmark ("sequential", "hotcold", "random").
	Name() string
	// Dataset returns the dataset size in bytes.
	Dataset() int64
	// RequestSize returns the per-request size in bytes.
	RequestSize() int64
	// Iteration returns the request sequence of the iter-th pass.
	Iteration(iter int) []Request
}

// requests returns the number of requests per iteration.
func requests(dataset, reqSize int64) int64 { return dataset / reqSize }

// Sequential reads the dataset front to back (§5.2.2 "sequential").
type Sequential struct {
	DatasetBytes int64
	ReqSize      int64
}

// Name returns "sequential".
func (s Sequential) Name() string { return "sequential" }

// Dataset returns the dataset size.
func (s Sequential) Dataset() int64 { return s.DatasetBytes }

// RequestSize returns the request size.
func (s Sequential) RequestSize() int64 { return s.ReqSize }

// Iteration returns the in-order scan.
func (s Sequential) Iteration(iter int) []Request {
	n := requests(s.DatasetBytes, s.ReqSize)
	out := make([]Request, n)
	for i := int64(0); i < n; i++ {
		out[i] = Request{Offset: i * s.ReqSize, Size: s.ReqSize}
	}
	return out
}

// Random reads req-size blocks uniformly at random from the entire
// dataset (§5.2.2 "random"). One iteration issues dataset/req_size
// requests, like the others.
type Random struct {
	DatasetBytes int64
	ReqSize      int64
	Seed         int64
}

// Name returns "random".
func (r Random) Name() string { return "random" }

// Dataset returns the dataset size.
func (r Random) Dataset() int64 { return r.DatasetBytes }

// RequestSize returns the request size.
func (r Random) RequestSize() int64 { return r.ReqSize }

// Iteration returns one pass of uniform random requests.
func (r Random) Iteration(iter int) []Request {
	rng := rand.New(rand.NewSource(r.Seed + int64(iter)*1_000_003))
	n := requests(r.DatasetBytes, r.ReqSize)
	blocks := r.DatasetBytes / r.ReqSize
	out := make([]Request, n)
	for i := int64(0); i < n; i++ {
		out[i] = Request{Offset: rng.Int63n(blocks) * r.ReqSize, Size: r.ReqSize}
	}
	return out
}

// HotCold divides the dataset into a 20% hot region and an 80% cold
// region; 80% of references go to the hot region, and requests within
// each region are random (§5.2.2 "hotcold").
type HotCold struct {
	DatasetBytes int64
	ReqSize      int64
	Seed         int64
	// HotFraction and HotProbability default to the paper's 0.2 / 0.8.
	HotFraction    float64
	HotProbability float64
}

// Name returns "hotcold".
func (h HotCold) Name() string { return "hotcold" }

// Dataset returns the dataset size.
func (h HotCold) Dataset() int64 { return h.DatasetBytes }

// RequestSize returns the request size.
func (h HotCold) RequestSize() int64 { return h.ReqSize }

func (h HotCold) params() (hotFrac, hotProb float64) {
	hotFrac, hotProb = h.HotFraction, h.HotProbability
	if hotFrac == 0 {
		hotFrac = 0.2
	}
	if hotProb == 0 {
		hotProb = 0.8
	}
	return hotFrac, hotProb
}

// Iteration returns one pass of the skewed request mix.
func (h HotCold) Iteration(iter int) []Request {
	hotFrac, hotProb := h.params()
	rng := rand.New(rand.NewSource(h.Seed + int64(iter)*1_000_003))
	n := requests(h.DatasetBytes, h.ReqSize)
	blocks := h.DatasetBytes / h.ReqSize
	hotBlocks := int64(float64(blocks) * hotFrac)
	if hotBlocks < 1 {
		hotBlocks = 1
	}
	out := make([]Request, n)
	for i := int64(0); i < n; i++ {
		var block int64
		if rng.Float64() < hotProb {
			block = rng.Int63n(hotBlocks)
		} else {
			block = hotBlocks + rng.Int63n(blocks-hotBlocks)
		}
		out[i] = Request{Offset: block * h.ReqSize, Size: h.ReqSize}
	}
	return out
}

// TracePattern replays a fixed request trace (used by the dmine and lu
// drivers, whose patterns come from the real algorithms).
type TracePattern struct {
	PatternName string
	DatasetSize int64
	ReqSize     int64
	// Trace holds one iteration's requests; PerIter overrides it with
	// per-iteration traces (triangle scans shrink every pass).
	Trace   []Request
	PerIter [][]Request
}

// Name returns the configured name.
func (t TracePattern) Name() string { return t.PatternName }

// Dataset returns the dataset size.
func (t TracePattern) Dataset() int64 { return t.DatasetSize }

// RequestSize returns the nominal request size.
func (t TracePattern) RequestSize() int64 { return t.ReqSize }

// Iteration returns the trace for the given pass.
func (t TracePattern) Iteration(iter int) []Request {
	if len(t.PerIter) > 0 {
		return t.PerIter[iter%len(t.PerIter)]
	}
	return t.Trace
}

// Spec bundles a benchmark configuration the way the paper reports one:
// pattern x request size x dataset size.
type Spec struct {
	Pattern Pattern
	// Iterations is the paper's num_iter (4 in all experiments).
	Iterations int
	// Compute is the constant compute time between requests (10 ms).
	Compute time.Duration
}

func (s Spec) String() string {
	return fmt.Sprintf("%s/%dKB/%dMB", s.Pattern.Name(), s.Pattern.RequestSize()>>10, s.Pattern.Dataset()>>20)
}
