package workload

import (
	"fmt"
	"time"

	"dodo/internal/core"
	"dodo/internal/region"
	"dodo/internal/simdisk"
	"dodo/internal/simnet"
)

// VirtualTime accumulates simulated time for one run. It satisfies
// sim.Clock so the region cache's refraction timer and any other
// time-dependent component observe the run's own timeline.
type VirtualTime struct {
	start time.Time
	total time.Duration
}

// NewVirtualTime starts a timeline.
func NewVirtualTime() *VirtualTime {
	return &VirtualTime{start: time.Date(1999, 8, 1, 0, 0, 0, 0, time.UTC)}
}

// Add charges d of simulated time.
func (v *VirtualTime) Add(d time.Duration) { v.total += d }

// Total returns the accumulated time.
func (v *VirtualTime) Total() time.Duration { return v.total }

// Now returns the position on the timeline.
func (v *VirtualTime) Now() time.Time { return v.start.Add(v.total) }

// Sleep advances the timeline (sim.Clock).
func (v *VirtualTime) Sleep(d time.Duration) { v.Add(d) }

// Storage is the stack under test: it serves one request and returns
// its simulated service time.
type Storage interface {
	Read(off, size int64) (time.Duration, error)
	Write(off, size int64) (time.Duration, error)
}

// Run executes a benchmark spec against a storage stack and returns the
// total simulated run time and the per-iteration times.
func Run(spec Spec, st Storage) (total time.Duration, perIter []time.Duration, err error) {
	iters := spec.Iterations
	if iters <= 0 {
		iters = 4
	}
	for it := 0; it < iters; it++ {
		var t time.Duration
		for _, req := range spec.Pattern.Iteration(it) {
			var d time.Duration
			var err error
			if req.Write {
				d, err = st.Write(req.Offset, req.Size)
			} else {
				d, err = st.Read(req.Offset, req.Size)
			}
			if err != nil {
				return 0, nil, fmt.Errorf("workload: iteration %d offset %d: %w", it, req.Offset, err)
			}
			t += d + spec.Compute
		}
		perIter = append(perIter, t)
		total += t
	}
	return total, perIter, nil
}

// DiskStorage is the no-Dodo baseline: every read goes to the local
// filesystem (disk model + OS page cache).
type DiskStorage struct {
	Disk *simdisk.Disk
	File uint64
}

// Read serves one request from the filesystem.
func (d *DiskStorage) Read(off, size int64) (time.Duration, error) {
	return d.Disk.Read(d.File, off, size), nil
}

// Write buffers one write in the page cache.
func (d *DiskStorage) Write(off, size int64) (time.Duration, error) {
	return d.Disk.Write(d.File, off, size), nil
}

// DodoConfig assembles a Dodo-enabled storage stack for one run.
type DodoConfig struct {
	// Net is the communication cost model (UDP or U-Net).
	Net simnet.CostModel
	// RemoteBytes is the aggregate idle memory (12 x 100 MB = 1200 MB
	// in the paper's experiments).
	RemoteBytes int64
	// LocalCacheBytes is the region-management library's local cache
	// (80 MB in the paper).
	LocalCacheBytes int64
	// RegionSize is the granularity at which the dataset is carved into
	// Dodo regions (defaults to the request size).
	RegionSize int64
	// Policy names the region-replacement policy ("lru", "first-in",
	// "mru", "fifo"); default "lru".
	Policy string
	// DiskCacheBytes is the OS page cache left on the app node. With
	// the region cache pinning 80 MB, the baseline's page cache budget
	// shrinks accordingly.
	DiskCacheBytes int64
	// Disk is the disk model (default: the paper's Quantum Fireball).
	Disk simdisk.Model
	// RefractionPeriod for failed remote allocations (default 5s).
	RefractionPeriod time.Duration
	// WriteOverlap is the fraction of remote-write time hidden behind
	// the application's other work (default 0.9). Region pushes need no
	// synchronous reply before the application issues its next disk
	// read, so the NIC drains the blast while the app blocks on the
	// disk — only the residual software cost lands on the critical
	// path. Set to a negative value for fully synchronous writes.
	WriteOverlap float64
	// SequentialPrefetch pulls the regions after a detected sequential
	// stream before the workload asks for them. The driver always runs
	// the pipeline with zero workers — pulls execute inline on the
	// faulting call — so virtual-time accounting stays deterministic.
	SequentialPrefetch bool
	// PrefetchWindow is how many regions ahead the prefetcher pulls
	// once a stream is detected (default 1).
	PrefetchWindow int
}

// DodoStorage routes reads through the region-management library backed
// by a cost-accounting Dodo runtime: local region cache, then remote
// cluster memory, then disk — charging the calibrated cost of every hop.
type DodoStorage struct {
	vt      *VirtualTime
	cache   *region.Cache
	dodo    *accountingDodo
	backing *accountingBacking
	disk    *simdisk.Disk
	model   simdisk.Model

	regionSize int64
	fds        map[int64]int
}

// NewDodoStorage builds the stack.
func NewDodoStorage(cfg DodoConfig) *DodoStorage {
	if cfg.RegionSize == 0 {
		cfg.RegionSize = 128 << 10
	}
	model := cfg.Disk
	if model.Name == "" {
		model = simdisk.QuantumFireballST32()
	}
	vt := NewVirtualTime()
	disk := simdisk.NewDisk(model, cfg.DiskCacheBytes)
	backing := &accountingBacking{vt: vt, disk: disk, file: 1}
	overlap := cfg.WriteOverlap
	if overlap == 0 {
		overlap = 0.9
	}
	if overlap < 0 {
		overlap = 0
	}
	dodo := &accountingDodo{vt: vt, net: cfg.Net, capacity: cfg.RemoteBytes, disk: disk,
		writeOverlap: overlap, regions: map[int]int64{}}
	policy, err := region.NewPolicy(cfg.Policy)
	if err != nil {
		policy = region.NewLRU()
	}
	cache := region.NewCache(dodo, region.Config{
		Capacity:         cfg.LocalCacheBytes,
		Policy:           policy,
		RefractionPeriod: cfg.RefractionPeriod,
		Clock:            vt,
		PromoteOnAccess:  true,
		// PrefetchWorkers stays 0: pulls run inline on the faulting
		// call, so fault sweeps and virtual-time runs are replayable.
		SequentialPrefetch: cfg.SequentialPrefetch,
		PrefetchWindow:     cfg.PrefetchWindow,
	})
	return &DodoStorage{
		vt:         vt,
		cache:      cache,
		dodo:       dodo,
		backing:    backing,
		disk:       disk,
		model:      model,
		regionSize: cfg.RegionSize,
		fds:        make(map[int64]int),
	}
}

// Read serves one request through the region cache, charging simulated
// time for every hop it takes.
func (s *DodoStorage) Read(off, size int64) (time.Duration, error) {
	t0 := s.vt.Total()
	// Requests may span regions; split on region boundaries.
	remaining := size
	for remaining > 0 {
		ridx := off / s.regionSize
		inOff := off - ridx*s.regionSize
		chunk := remaining
		if inOff+chunk > s.regionSize {
			chunk = s.regionSize - inOff
		}
		fd, ok := s.fds[ridx]
		if !ok {
			var err error
			fd, err = s.cache.Copen(s.regionSize, s.backing, ridx*s.regionSize)
			if err != nil {
				return 0, err
			}
			s.fds[ridx] = fd
		}
		buf := scratch(chunk)
		if _, err := s.cache.Cread(fd, inOff, buf); err != nil {
			return 0, err
		}
		// Delivering the bytes to the application is a memory copy
		// regardless of where they came from.
		s.vt.Add(s.model.HitCopy(chunk))
		off += chunk
		remaining -= chunk
	}
	return s.vt.Total() - t0, nil
}

// Write routes one write through the region cache (write-back locally,
// write-through to remote memory and the page cache otherwise).
func (s *DodoStorage) Write(off, size int64) (time.Duration, error) {
	t0 := s.vt.Total()
	remaining := size
	for remaining > 0 {
		ridx := off / s.regionSize
		inOff := off - ridx*s.regionSize
		chunk := remaining
		if inOff+chunk > s.regionSize {
			chunk = s.regionSize - inOff
		}
		fd, ok := s.fds[ridx]
		if !ok {
			var err error
			fd, err = s.cache.Copen(s.regionSize, s.backing, ridx*s.regionSize)
			if err != nil {
				return 0, err
			}
			s.fds[ridx] = fd
		}
		buf := scratch(chunk)
		if _, err := s.cache.Cwrite(fd, inOff, buf); err != nil {
			return 0, err
		}
		s.vt.Add(s.model.HitCopy(chunk))
		off += chunk
		remaining -= chunk
	}
	return s.vt.Total() - t0, nil
}

// Stats exposes the underlying caches for experiment reports.
func (s *DodoStorage) Stats() (region.Stats, DodoNetStats) {
	return s.cache.Stats(), s.dodo.stats
}

// scratchBuf is reused across requests; the driver is single-threaded.
var scratchBuf []byte

func scratch(n int64) []byte {
	if int64(len(scratchBuf)) < n {
		scratchBuf = make([]byte, n)
	}
	return scratchBuf[:n]
}

// DodoNetStats counts simulated remote-memory traffic.
type DodoNetStats struct {
	RemoteReads, RemoteWrites         int64
	RemoteReadBytes, RemoteWriteBytes int64
	Allocs, AllocFailures             int64
}

// accountingDodo implements region.Dodo by charging the network cost
// model instead of moving real bytes. Region contents are not stored:
// the virtual-time experiments measure time, and the workload driver
// never checks payloads (data-integrity coverage lives in the live
// cluster tests).
type accountingDodo struct {
	vt           *VirtualTime
	net          simnet.CostModel
	disk         *simdisk.Disk
	capacity     int64
	used         int64
	nextFD       int
	writeOverlap float64
	regions      map[int]int64
	stats        DodoNetStats
}

var _ region.Dodo = (*accountingDodo)(nil)

// controlRTT is the cost of one small control exchange with the central
// manager (alloc/free are two hops: client->cmd, cmd->imd).
func (a *accountingDodo) controlRTT() time.Duration { return 2 * a.net.RoundTrip(64) }

// dodo:acquires(dodofd)
func (a *accountingDodo) Mopen(length int64, backing core.Backing, offset int64) (int, error) {
	a.vt.Add(a.controlRTT())
	if a.used+length > a.capacity {
		a.stats.AllocFailures++
		return -1, core.ErrNoMem
	}
	fd := a.nextFD
	a.nextFD++
	a.regions[fd] = length
	a.used += length
	a.stats.Allocs++
	return fd, nil
}

func (a *accountingDodo) Mread(fd int, offset int64, buf []byte) (int, error) {
	length, ok := a.regions[fd]
	if !ok {
		return -1, core.ErrNoMem
	}
	n := int64(len(buf))
	if offset+n > length {
		n = length - offset
	}
	a.vt.Add(a.net.RoundTrip(int(n)))
	a.stats.RemoteReads++
	a.stats.RemoteReadBytes += n
	return int(n), nil
}

func (a *accountingDodo) Mwrite(fd int, offset int64, buf []byte) (int, error) {
	length, ok := a.regions[fd]
	if !ok {
		return -1, core.ErrNoMem
	}
	n := int64(len(buf))
	if offset+n > length {
		n = length - offset
	}
	// Remote send and backing-file write proceed in parallel (§3); the
	// backing write lands in the page cache (write-back), so the
	// network almost always dominates. Most of the network time
	// overlaps the application's subsequent work (WriteOverlap).
	netT := a.net.OneWay(64) + a.net.OneWay(int(n))
	netT = time.Duration(float64(netT) * (1 - a.writeOverlap))
	diskT := a.disk.Write(1, offset, n)
	if diskT > netT {
		a.vt.Add(diskT)
	} else {
		a.vt.Add(netT)
	}
	a.stats.RemoteWrites++
	a.stats.RemoteWriteBytes += n
	return int(n), nil
}

// dodo:releases(dodofd)
func (a *accountingDodo) Mclose(fd int) error {
	a.vt.Add(a.controlRTT())
	length, ok := a.regions[fd]
	if !ok {
		return core.ErrInval
	}
	a.used -= length
	delete(a.regions, fd)
	return nil
}

func (a *accountingDodo) Msync(fd int) error { return nil }

// accountingBacking implements core.Backing against the simulated disk.
type accountingBacking struct {
	vt   *VirtualTime
	disk *simdisk.Disk
	file uint64
}

var _ core.Backing = (*accountingBacking)(nil)

func (b *accountingBacking) ReadAt(p []byte, off int64) (int, error) {
	b.vt.Add(b.disk.Read(b.file, off, int64(len(p))))
	return len(p), nil
}

func (b *accountingBacking) WriteAt(p []byte, off int64) (int, error) {
	b.vt.Add(b.disk.Write(b.file, off, int64(len(p))))
	return len(p), nil
}

func (b *accountingBacking) Sync() error { return nil }

func (b *accountingBacking) Inode() uint64 { return b.file }

func (b *accountingBacking) Writable() bool { return true }
