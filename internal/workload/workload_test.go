package workload

import (
	"testing"
	"time"

	"dodo/internal/simdisk"
	"dodo/internal/simnet"
)

const (
	MB = 1 << 20
	KB = 1 << 10
)

func TestSequentialPatternCoversDataset(t *testing.T) {
	p := Sequential{DatasetBytes: 1 * MB, ReqSize: 8 * KB}
	reqs := p.Iteration(0)
	if len(reqs) != 128 {
		t.Fatalf("requests = %d, want 128", len(reqs))
	}
	for i, r := range reqs {
		if r.Offset != int64(i)*8*KB || r.Size != 8*KB {
			t.Fatalf("request %d = %+v", i, r)
		}
	}
}

func TestRandomPatternBoundsAndDeterminism(t *testing.T) {
	p := Random{DatasetBytes: 1 * MB, ReqSize: 8 * KB, Seed: 5}
	a := p.Iteration(0)
	b := p.Iteration(0)
	if len(a) != 128 {
		t.Fatalf("requests = %d", len(a))
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatal("random pattern not deterministic")
		}
		if a[i].Offset < 0 || a[i].Offset+a[i].Size > 1*MB || a[i].Offset%(8*KB) != 0 {
			t.Fatalf("request %d out of bounds: %+v", i, a[i])
		}
	}
	// Different iterations differ.
	c := p.Iteration(1)
	same := true
	for i := range a {
		if a[i] != c[i] {
			same = false
			break
		}
	}
	if same {
		t.Fatal("iterations 0 and 1 identical")
	}
}

func TestHotColdSkew(t *testing.T) {
	p := HotCold{DatasetBytes: 10 * MB, ReqSize: 8 * KB, Seed: 9}
	reqs := p.Iteration(0)
	hotLimit := int64(2 * MB) // 20% of 10 MB
	hot := 0
	for _, r := range reqs {
		if r.Offset < hotLimit {
			hot++
		}
	}
	frac := float64(hot) / float64(len(reqs))
	if frac < 0.74 || frac > 0.86 {
		t.Fatalf("hot fraction = %.2f, want ~0.80", frac)
	}
}

func TestTracePatternPerIter(t *testing.T) {
	tp := TracePattern{
		PatternName: "tri",
		DatasetSize: 1 * MB,
		ReqSize:     8 * KB,
		PerIter: [][]Request{
			{{Offset: 0, Size: 8 * KB}},
			{{Offset: 8 * KB, Size: 8 * KB}},
		},
	}
	if tp.Iteration(0)[0].Offset != 0 || tp.Iteration(1)[0].Offset != 8*KB {
		t.Fatal("per-iteration traces not honored")
	}
	if tp.Iteration(2)[0].Offset != 0 {
		t.Fatal("per-iteration traces should wrap")
	}
}

func baselineStorage(cacheBytes int64) *DiskStorage {
	return &DiskStorage{Disk: simdisk.NewDisk(simdisk.QuantumFireballST32(), cacheBytes), File: 1}
}

func smallDodoCfg(net simnet.CostModel, regionSize int64) DodoConfig {
	return DodoConfig{
		Net:              net,
		RemoteBytes:      64 * MB,
		LocalCacheBytes:  8 * MB,
		RegionSize:       regionSize,
		Policy:           "lru",
		DiskCacheBytes:   2 * MB,
		RefractionPeriod: time.Second,
	}
}

func TestRunAccountsComputeTime(t *testing.T) {
	spec := Spec{
		Pattern:    Sequential{DatasetBytes: 1 * MB, ReqSize: 8 * KB},
		Iterations: 2,
		Compute:    10 * time.Millisecond,
	}
	st := baselineStorage(256 * KB)
	total, perIter, err := Run(spec, st)
	if err != nil {
		t.Fatal(err)
	}
	if len(perIter) != 2 {
		t.Fatalf("iterations = %d", len(perIter))
	}
	computeOnly := time.Duration(2*128) * 10 * time.Millisecond
	if total <= computeOnly {
		t.Fatalf("total %v <= compute-only %v; I/O time missing", total, computeOnly)
	}
	if total > computeOnly+2*time.Second {
		t.Fatalf("total %v implausibly large", total)
	}
}

// Directional check at small scale: random I/O over a dataset larger
// than the local cache must be much faster with Dodo (remote memory)
// than against the disk, and U-Net must beat UDP.
func TestDodoBeatsDiskOnRandomReads(t *testing.T) {
	spec := Spec{
		Pattern:    Random{DatasetBytes: 32 * MB, ReqSize: 8 * KB, Seed: 3},
		Iterations: 4,
		Compute:    time.Millisecond,
	}
	base, _, err := Run(spec, baselineStorage(2*MB))
	if err != nil {
		t.Fatal(err)
	}
	udp, _, err := Run(spec, NewDodoStorage(smallDodoCfg(simnet.UDPFastEthernet(), 8*KB)))
	if err != nil {
		t.Fatal(err)
	}
	unet, _, err := Run(spec, NewDodoStorage(smallDodoCfg(simnet.UNetFastEthernet(), 8*KB)))
	if err != nil {
		t.Fatal(err)
	}
	if float64(base)/float64(udp) < 1.5 {
		t.Fatalf("UDP speedup = %.2f, want > 1.5 (base %v, dodo %v)", float64(base)/float64(udp), base, udp)
	}
	if unet >= udp {
		t.Fatalf("U-Net run (%v) not faster than UDP (%v)", unet, udp)
	}
}

// Sequential scans see no benefit: the filesystem already runs at wire
// speed (§5.3, "virtually no speedup for the sequential benchmark").
func TestSequentialSpeedupNearOne(t *testing.T) {
	spec := Spec{
		Pattern:    Sequential{DatasetBytes: 32 * MB, ReqSize: 8 * KB},
		Iterations: 4,
		Compute:    10 * time.Millisecond,
	}
	base, _, err := Run(spec, baselineStorage(2*MB))
	if err != nil {
		t.Fatal(err)
	}
	dodo, _, err := Run(spec, NewDodoStorage(smallDodoCfg(simnet.UNetFastEthernet(), 8*KB)))
	if err != nil {
		t.Fatal(err)
	}
	speedup := float64(base) / float64(dodo)
	if speedup < 0.85 || speedup > 1.15 {
		t.Fatalf("sequential speedup = %.2f, want ~1.0", speedup)
	}
}

// When the dataset fits in remote memory, steady-state iterations avoid
// the disk entirely (the dmine effect).
func TestSteadyStateAvoidsDisk(t *testing.T) {
	spec := Spec{
		Pattern:    Random{DatasetBytes: 16 * MB, ReqSize: 8 * KB, Seed: 1},
		Iterations: 4,
		Compute:    time.Millisecond,
	}
	st := NewDodoStorage(smallDodoCfg(simnet.UNetFastEthernet(), 8*KB))
	_, perIter, err := Run(spec, st)
	if err != nil {
		t.Fatal(err)
	}
	// Later iterations must be much faster than the first (which pays
	// the disk faults).
	if perIter[3] >= perIter[0]*3/4 {
		t.Fatalf("iteration 4 (%v) not much faster than iteration 1 (%v)", perIter[3], perIter[0])
	}
	stats, net := st.Stats()
	if net.RemoteReads == 0 || stats.DiskReads == 0 {
		t.Fatalf("expected both disk faults and remote reads: %+v %+v", stats, net)
	}
}

// Dataset exceeding remote memory: some reads keep hitting the disk, so
// the benefit shrinks (the paper's 2 GB random result).
func TestOverflowingRemoteMemoryShrinksBenefit(t *testing.T) {
	mkSpec := func(dataset int64) Spec {
		return Spec{
			Pattern:    Random{DatasetBytes: dataset, ReqSize: 8 * KB, Seed: 2},
			Iterations: 4,
			Compute:    time.Millisecond,
		}
	}
	cfg := smallDodoCfg(simnet.UNetFastEthernet(), 8*KB) // 64 MB remote
	fitTotal, _, err := Run(mkSpec(32*MB), NewDodoStorage(cfg))
	if err != nil {
		t.Fatal(err)
	}
	fitBase, _, err := Run(mkSpec(32*MB), baselineStorage(2*MB))
	if err != nil {
		t.Fatal(err)
	}
	overTotal, _, err := Run(mkSpec(128*MB), NewDodoStorage(cfg))
	if err != nil {
		t.Fatal(err)
	}
	overBase, _, err := Run(mkSpec(128*MB), baselineStorage(2*MB))
	if err != nil {
		t.Fatal(err)
	}
	fitSpeedup := float64(fitBase) / float64(fitTotal)
	overSpeedup := float64(overBase) / float64(overTotal)
	if overSpeedup >= fitSpeedup {
		t.Fatalf("speedup with overflowing dataset (%.2f) >= fitting dataset (%.2f)", overSpeedup, fitSpeedup)
	}
}

func TestVirtualTimeClock(t *testing.T) {
	vt := NewVirtualTime()
	t0 := vt.Now()
	vt.Add(time.Hour)
	vt.Sleep(time.Minute)
	if vt.Total() != time.Hour+time.Minute {
		t.Fatalf("Total = %v", vt.Total())
	}
	if got := vt.Now().Sub(t0); got != time.Hour+time.Minute {
		t.Fatalf("Now advanced %v", got)
	}
}

func TestSpecString(t *testing.T) {
	s := Spec{Pattern: Sequential{DatasetBytes: 1024 * MB, ReqSize: 8 * KB}}
	if s.String() != "sequential/8KB/1024MB" {
		t.Fatalf("String = %q", s.String())
	}
}

func BenchmarkDodoStorageRandomRead(b *testing.B) {
	st := NewDodoStorage(smallDodoCfg(simnet.UNetFastEthernet(), 8*KB))
	p := Random{DatasetBytes: 32 * MB, ReqSize: 8 * KB, Seed: 4}
	reqs := p.Iteration(0)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		r := reqs[i%len(reqs)]
		if _, err := st.Read(r.Offset, r.Size); err != nil {
			b.Fatal(err)
		}
	}
}
