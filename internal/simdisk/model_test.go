package simdisk

import (
	"math"
	"testing"
	"testing/quick"
	"time"
)

func msPer(d time.Duration) float64 { return float64(d) / float64(time.Millisecond) }

// The model must reproduce the paper's measured application-level
// numbers (§5.1) to within a few percent.
func TestCalibrationMatchesPaperMeasurements(t *testing.T) {
	m := QuantumFireballST32()
	if err := m.Validate(); err != nil {
		t.Fatal(err)
	}
	// Sequential: 7.75 MB/s at any size.
	for _, n := range []int64{8 << 10, 32 << 10} {
		got := m.MissRead(n, true)
		wantMS := float64(n) / 7.75e6 * 1000
		if math.Abs(msPer(got)-wantMS) > 0.05*wantMS {
			t.Errorf("sequential %d: %v, want ~%.2fms", n, got, wantMS)
		}
	}
	// Random 8 KB: 0.57 MB/s -> 14.0 ms (+-10%).
	r8 := msPer(m.MissRead(8<<10, false))
	if r8 < 12.6 || r8 > 15.4 {
		t.Errorf("random 8KB = %.2fms, want ~14.0ms (0.57 MB/s)", r8)
	}
	// Random 32 KB: 1.56 MB/s -> 20.0 ms (+-10%).
	r32 := msPer(m.MissRead(32<<10, false))
	if r32 < 18.0 || r32 > 22.0 {
		t.Errorf("random 32KB = %.2fms, want ~20.0ms (1.56 MB/s)", r32)
	}
	// Writes are a bit slower than reads at random.
	if m.MissWrite(8<<10, false) <= m.MissRead(8<<10, false) {
		t.Error("random write not slower than read")
	}
	// Cache hits are orders of magnitude faster than misses.
	if m.HitCopy(8<<10) > m.MissRead(8<<10, false)/20 {
		t.Error("cache hit not much faster than a random miss")
	}
}

func TestModelEdgeCases(t *testing.T) {
	m := QuantumFireballST32()
	if m.MissRead(0, true) != 0 || m.MissRead(-5, false) != 0 {
		t.Error("zero/negative size read has nonzero cost")
	}
	if m.MissWrite(0, false) != 0 || m.HitCopy(0) != 0 {
		t.Error("zero-size write/hit has nonzero cost")
	}
	bad := Model{Name: "bad"}
	if err := bad.Validate(); err == nil {
		t.Error("Validate accepted zero bandwidths")
	}
}

func TestFileCacheHitAfterMiss(t *testing.T) {
	c := NewFileCache(1<<20, 0)
	hit, miss, _ := c.Access(1, 0, 8192)
	if hit != 0 || miss != 8192 {
		t.Fatalf("cold access = hit %d miss %d, want all miss", hit, miss)
	}
	hit, miss, _ = c.Access(1, 0, 8192)
	if hit != 8192 || miss != 0 {
		t.Fatalf("warm access = hit %d miss %d, want all hit", hit, miss)
	}
	if c.HitRatio() <= 0 {
		t.Fatal("hit ratio not positive after a hit")
	}
}

func TestFileCacheSequentialDetection(t *testing.T) {
	c := NewFileCache(1<<30, 0)
	_, _, seq := c.Access(1, 0, 8192)
	if seq {
		t.Fatal("first access classified sequential")
	}
	_, _, seq = c.Access(1, 8192, 8192)
	if !seq {
		t.Fatal("contiguous access not classified sequential")
	}
	_, _, seq = c.Access(1, 1<<20, 8192)
	if seq {
		t.Fatal("jump classified sequential")
	}
	// Per-file tracking: interleaved files stay sequential.
	c.Access(2, 0, 4096)
	_, _, seq = c.Access(2, 4096, 4096)
	if !seq {
		t.Fatal("per-file sequential tracking broken")
	}
}

func TestFileCacheSequentialTolerance(t *testing.T) {
	// A small skip (within the readahead window) keeps the stream
	// sequential; a large jump breaks it.
	c := NewFileCache(1<<30, 32)
	c.Access(1, 0, 4096)
	_, _, seq := c.Access(1, 2*4096, 4096) // skip one page
	if !seq {
		t.Fatal("small skip broke sequentiality")
	}
	_, _, seq = c.Access(1, 1000*4096, 4096)
	if seq {
		t.Fatal("large jump still sequential")
	}
}

func TestFileCacheEvictsLRU(t *testing.T) {
	c := NewFileCache(8*PageSize, 1)
	for p := int64(0); p < 16; p++ {
		c.Access(1, p*PageSize, PageSize)
	}
	// The first pages are long evicted.
	hit, _, _ := c.Access(1, 0, PageSize)
	if hit != 0 {
		t.Fatal("LRU did not evict the oldest page")
	}
	// The most recent page survives. (Note: the re-access of page 0
	// above evicted one more page, so check the very last one.)
	hit, _, _ = c.Access(1, 15*PageSize, PageSize)
	if hit != PageSize {
		t.Fatal("most recent page was evicted")
	}
}

func TestFileCacheZeroCapacity(t *testing.T) {
	c := NewFileCache(0, 0)
	hit, miss, _ := c.Access(1, 0, 8192)
	if hit != 0 || miss != 8192 {
		t.Fatal("zero-capacity cache produced hits")
	}
	hit, _, _ = c.Access(1, 0, 8192)
	if hit != 0 {
		t.Fatal("zero-capacity cache retained pages")
	}
}

func TestFileCacheInsertMarksPagesForWrites(t *testing.T) {
	c := NewFileCache(1<<20, 0)
	c.Insert(1, 0, 16384)
	hit, miss, _ := c.Access(1, 0, 16384)
	if miss != 0 || hit != 16384 {
		t.Fatalf("written pages not cached: hit %d miss %d", hit, miss)
	}
}

func TestDiskReadCosts(t *testing.T) {
	d := NewDisk(QuantumFireballST32(), 1<<20)
	// Cold random read: full miss cost.
	t1 := d.Read(1, 1<<30, 8192)
	if msPer(t1) < 10 {
		t.Fatalf("cold random read = %v, want >= 10ms", t1)
	}
	// Re-read: cache hit, microseconds.
	t2 := d.Read(1, 1<<30, 8192)
	if t2 >= t1/20 {
		t.Fatalf("warm read = %v, want far below %v", t2, t1)
	}
}

func TestDiskSequentialScanBandwidth(t *testing.T) {
	// Scanning 64 MB sequentially with 8 KB requests through a small
	// cache must land near 7.75 MB/s end to end.
	d := NewDisk(QuantumFireballST32(), 1<<20)
	var total time.Duration
	const scan = 64 << 20
	for off := int64(0); off < scan; off += 8192 {
		total += d.Read(1, off, 8192)
	}
	bw := float64(scan) / total.Seconds() / 1e6
	if bw < 7.0 || bw > 8.5 {
		t.Fatalf("sequential scan bandwidth = %.2f MB/s, want ~7.75", bw)
	}
}

func TestDiskRandomReadBandwidthMatchesPaper(t *testing.T) {
	// Random 8 KB reads over a large span: ~0.57 MB/s.
	d := NewDisk(QuantumFireballST32(), 1<<20)
	var total time.Duration
	const reqs = 2000
	// Deterministic pseudo-random offsets far apart.
	off := int64(0)
	for i := 0; i < reqs; i++ {
		off = (off + 7919*PageSize) % (1 << 34)
		total += d.Read(1, off, 8192)
	}
	bw := float64(reqs*8192) / total.Seconds() / 1e6
	if bw < 0.5 || bw > 0.65 {
		t.Fatalf("random 8KB bandwidth = %.3f MB/s, want ~0.57", bw)
	}
}

func TestDiskWriteIsAsync(t *testing.T) {
	d := NewDisk(QuantumFireballST32(), 1<<20)
	tw := d.Write(1, 1<<30, 8192)
	if msPer(tw) > 1 {
		t.Fatalf("buffered write = %v, want sub-millisecond (page-cache write-back)", tw)
	}
	ts := d.SyncWrite(1, 1<<31, 8192, false)
	if msPer(ts) < 10 {
		t.Fatalf("sync write = %v, want >= 10ms", ts)
	}
}

func TestDiskStats(t *testing.T) {
	d := NewDisk(QuantumFireballST32(), 1<<20)
	d.Read(1, 0, 4096)
	d.Write(1, 0, 4096)
	r, w, rb, wb, busy := d.Stats()
	if r != 1 || w != 1 || rb != 4096 || wb != 4096 || busy <= 0 {
		t.Fatalf("stats = %d %d %d %d %v", r, w, rb, wb, busy)
	}
}

// Property: access never reports more hit+miss bytes than requested, and
// cost is monotone in size.
func TestPropertyAccessAccounting(t *testing.T) {
	f := func(off uint32, n uint16) bool {
		c := NewFileCache(1<<22, 0)
		hit, miss, _ := c.Access(1, int64(off), int64(n))
		return hit+miss == int64(n) && hit >= 0 && miss >= 0
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

// Property: the page cache never exceeds its capacity.
func TestPropertyCacheBounded(t *testing.T) {
	f := func(seed uint32) bool {
		c := NewFileCache(64*PageSize, 8)
		off := int64(seed)
		for i := 0; i < 300; i++ {
			off = (off*1103515245 + 12345) % (1 << 30)
			if off < 0 {
				off = -off
			}
			c.Access(uint64(i%3), off, 8192)
		}
		return c.used <= c.capacity
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

func BenchmarkDiskRead8KB(b *testing.B) {
	d := NewDisk(QuantumFireballST32(), 64<<20)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		d.Read(1, int64(i%100000)*8192, 8192)
	}
}
