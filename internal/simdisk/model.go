// Package simdisk models the storage stack of the paper's experimental
// platform (§5.1): a Quantum Fireball ST3.2A disk behind the Linux 2.0
// filesystem and its page cache.
//
// The model is calibrated directly to the paper's measured
// application-level numbers, which is what makes the reproduced speedup
// curves meaningful:
//
//	sequential reads:      7.75 MB/s (any request size)
//	random 8 KB reads:     0.57 MB/s  (≈ 14.0 ms per request)
//	random 32 KB reads:    1.56 MB/s  (≈ 20.0 ms per request)
//
// Fitting t = base + size/media to the two random points gives
// base ≈ 11.9 ms (seek + rotation) and media ≈ 3.96 MB/s; the sequential
// path bypasses positioning thanks to the filesystem's readahead, which
// the paper notes is "optimized for sequential access patterns".
package simdisk

import (
	"container/list"
	"fmt"
	"time"
)

// Model is a parametric disk service-time model.
type Model struct {
	// Name identifies the disk in reports.
	Name string
	// SeqBandwidth is the application-level sequential read bandwidth.
	SeqBandwidth float64
	// PositionTime is the average seek + rotational latency paid by a
	// random read.
	PositionTime time.Duration
	// MediaBandwidth is the post-positioning transfer rate.
	MediaBandwidth float64
	// WritePenalty is added to PositionTime for random writes (the
	// Fireball seeks ~1 ms slower on writes, §5.1).
	WritePenalty time.Duration
	// MemCopyBandwidth is the page-cache hit service rate (a 200 MHz
	// Pentium Pro copies roughly 80-120 MB/s).
	MemCopyBandwidth float64
	// HitOverhead is the fixed syscall + lookup cost of a cache hit.
	HitOverhead time.Duration
}

// QuantumFireballST32 returns the calibrated model of the paper's disk.
func QuantumFireballST32() Model {
	return Model{
		Name:             "quantum-fireball-st3.2a",
		SeqBandwidth:     7.75e6,
		PositionTime:     11900 * time.Microsecond,
		MediaBandwidth:   3.96e6,
		WritePenalty:     time.Millisecond,
		MemCopyBandwidth: 100e6,
		HitOverhead:      20 * time.Microsecond,
	}
}

// Validate reports an error for a non-physical model.
func (m Model) Validate() error {
	if m.SeqBandwidth <= 0 || m.MediaBandwidth <= 0 || m.MemCopyBandwidth <= 0 {
		return fmt.Errorf("simdisk: model %q: bandwidths must be positive", m.Name)
	}
	if m.PositionTime < 0 || m.WritePenalty < 0 || m.HitOverhead < 0 {
		return fmt.Errorf("simdisk: model %q: negative latencies", m.Name)
	}
	return nil
}

// MissRead returns the service time of n bytes read from the platters.
func (m Model) MissRead(n int64, sequential bool) time.Duration {
	if n <= 0 {
		return 0
	}
	if sequential {
		return time.Duration(float64(n) / m.SeqBandwidth * float64(time.Second))
	}
	return m.PositionTime + time.Duration(float64(n)/m.MediaBandwidth*float64(time.Second))
}

// MissWrite returns the service time of n bytes written to the platters.
func (m Model) MissWrite(n int64, sequential bool) time.Duration {
	if n <= 0 {
		return 0
	}
	if sequential {
		return time.Duration(float64(n) / m.SeqBandwidth * float64(time.Second))
	}
	return m.PositionTime + m.WritePenalty + time.Duration(float64(n)/m.MediaBandwidth*float64(time.Second))
}

// HitCopy returns the service time of n bytes served from the page cache.
func (m Model) HitCopy(n int64) time.Duration {
	if n <= 0 {
		return 0
	}
	return m.HitOverhead + time.Duration(float64(n)/m.MemCopyBandwidth*float64(time.Second))
}

// PageSize is the page-cache granularity.
const PageSize = 4096

// pageKey identifies a cached page.
type pageKey struct {
	file uint64
	page int64
}

// FileCache is the OS page cache: LRU over 4 KB pages with sequential
// readahead, the mechanism behind the baseline's sequential advantage.
type FileCache struct {
	capacity  int64 // bytes
	used      int64
	order     *list.List // front = LRU
	index     map[pageKey]*list.Element
	lastEnd   map[uint64]int64 // per-file last read end offset
	readahead int64            // sequentiality tolerance in pages

	hits, misses int64
}

// NewFileCache builds a page cache of the given byte capacity.
// readaheadPages is the sequentiality tolerance: an access starting
// within that many pages after the previous one still counts as part of
// the sequential stream (Linux 2.0's cluster readahead kept streams with
// small skips at full bandwidth). <= 0 selects the default of 32 pages.
//
// Note the model charges sequential misses at the measured end-to-end
// sequential bandwidth, which already amortizes the readahead benefit —
// so readahead pages are deliberately NOT pre-inserted as free hits.
func NewFileCache(capacity int64, readaheadPages int) *FileCache {
	if readaheadPages <= 0 {
		readaheadPages = 32
	}
	return &FileCache{
		capacity:  capacity,
		order:     list.New(),
		index:     make(map[pageKey]*list.Element),
		lastEnd:   make(map[uint64]int64),
		readahead: int64(readaheadPages),
	}
}

// Capacity returns the configured byte capacity.
func (c *FileCache) Capacity() int64 { return c.capacity }

// HitRatio returns hits/(hits+misses) over the cache's lifetime.
func (c *FileCache) HitRatio() float64 {
	total := c.hits + c.misses
	if total == 0 {
		return 0
	}
	return float64(c.hits) / float64(total)
}

// touch records a page access, inserting it if missing. Returns whether
// it was present.
func (c *FileCache) touch(k pageKey) bool {
	if el, ok := c.index[k]; ok {
		c.order.MoveToBack(el)
		return true
	}
	c.insert(k)
	return false
}

func (c *FileCache) insert(k pageKey) {
	if c.capacity < PageSize {
		return
	}
	if _, ok := c.index[k]; ok {
		return
	}
	for c.used+PageSize > c.capacity {
		front := c.order.Front()
		if front == nil {
			return
		}
		victim := front.Value.(pageKey)
		c.order.Remove(front)
		delete(c.index, victim)
		c.used -= PageSize
	}
	c.index[k] = c.order.PushBack(k)
	c.used += PageSize
}

// Access classifies a read of [off, off+n) of file: the bytes already
// cached, the missing bytes, and whether the miss run is sequential with
// the previous access to this file. Missing pages are inserted so that
// re-reads within the cache's reach are hits.
func (c *FileCache) Access(file uint64, off, n int64) (hitBytes, missBytes int64, sequential bool) {
	if n <= 0 {
		return 0, 0, false
	}
	if end, seen := c.lastEnd[file]; seen {
		gap := off - end
		sequential = gap >= 0 && gap <= c.readahead*PageSize
	}
	c.lastEnd[file] = off + n

	first := off / PageSize
	last := (off + n - 1) / PageSize
	var missPages int64
	for p := first; p <= last; p++ {
		if c.touch(pageKey{file, p}) {
			c.hits++
		} else {
			c.misses++
			missPages++
		}
	}
	totalPages := last - first + 1
	missBytes = n * missPages / totalPages
	hitBytes = n - missBytes
	return hitBytes, missBytes, sequential
}

// Insert marks [off, off+n) cached without an access (used for writes,
// which land in the page cache and are flushed asynchronously).
func (c *FileCache) Insert(file uint64, off, n int64) {
	if n <= 0 {
		return
	}
	first := off / PageSize
	last := (off + n - 1) / PageSize
	for p := first; p <= last; p++ {
		c.insert(pageKey{file, p})
	}
}

// Disk combines the service-time model with a page cache, exposing the
// read/write cost interface every simulated experiment charges against.
type Disk struct {
	model Model
	cache *FileCache

	// stats
	reads, writes         int64
	readBytes, writeBytes int64
	busy                  time.Duration
}

// NewDisk builds a disk with the given model and page-cache capacity.
func NewDisk(model Model, cacheBytes int64) *Disk {
	return &Disk{model: model, cache: NewFileCache(cacheBytes, 0)}
}

// Read returns the simulated service time of reading n bytes at off.
func (d *Disk) Read(file uint64, off, n int64) time.Duration {
	if n <= 0 {
		return 0
	}
	hit, miss, seq := d.cache.Access(file, off, n)
	t := d.model.HitCopy(hit)
	if miss > 0 {
		t += d.model.MissRead(miss, seq)
	}
	d.reads++
	d.readBytes += n
	d.busy += t
	return t
}

// Write returns the simulated service time of writing n bytes at off.
// Writes land in the page cache (write-back, like Linux 2.0's buffer
// cache): the caller pays a memory copy; the platter write is
// asynchronous and does not appear in the caller's latency.
func (d *Disk) Write(file uint64, off, n int64) time.Duration {
	if n <= 0 {
		return 0
	}
	d.cache.Insert(file, off, n)
	t := d.model.HitCopy(n)
	d.writes++
	d.writeBytes += n
	d.busy += t
	return t
}

// SyncWrite returns the service time of a synchronous write that must
// reach the platters (msync's path).
func (d *Disk) SyncWrite(file uint64, off, n int64, sequential bool) time.Duration {
	if n <= 0 {
		return 0
	}
	d.cache.Insert(file, off, n)
	t := d.model.MissWrite(n, sequential)
	d.writes++
	d.writeBytes += n
	d.busy += t
	return t
}

// Stats reports cumulative counters.
func (d *Disk) Stats() (reads, writes, readBytes, writeBytes int64, busy time.Duration) {
	return d.reads, d.writes, d.readBytes, d.writeBytes, d.busy
}

// CacheHitRatio exposes the page cache hit ratio.
func (d *Disk) CacheHitRatio() float64 { return d.cache.HitRatio() }
