package imd

import (
	"bytes"
	"math/rand"
	"testing"
	"time"

	"dodo/internal/bulk"
	"dodo/internal/transport"
	"dodo/internal/wire"
)

// TestDrainHandsOffPagesToPeer exercises the imd's side of the handoff
// sub-protocol end to end against a real peer imd: Drain offers the
// resident regions, pushes each granted page over the bulk path, and
// reports per-region outcomes. Granted pages land byte-exact on the
// peer; regions without a grant die with the drain and produce no
// HandoffDone.
func TestDrainHandsOffPagesToPeer(t *testing.T) {
	n := transport.NewNetwork(transport.WithMTU(1500))
	cmd := newFakeCMD(n)
	src := New(n.Host("imd1"), Config{
		ManagerAddr: "cmd", PoolSize: 1 << 20, Epoch: 3,
		GraceWindow: 3 * time.Second, Endpoint: fastEp(),
	})
	dst := New(n.Host("imd2"), Config{
		ManagerAddr: "cmd", PoolSize: 1 << 20, Epoch: 5,
		Endpoint: fastEp(),
	})
	cli := bulk.NewEndpoint(n.Host("client"), fastEp(), nil)
	t.Cleanup(func() { src.Close(); dst.Close(); cli.Close(); cmd.ep.Close() })
	r := &rig{n: n, cmd: cmd, d: src, cli: cli}

	// Two resident regions on the draining imd; only region 1 will be
	// granted a target.
	allocRegion(t, r, 1, 64<<10)
	allocRegion(t, r, 2, 4<<10)
	data := make([]byte, 64<<10)
	rand.New(rand.NewSource(41)).Read(data)
	writeRegion(t, r, 1, 0, data)
	writeRegion(t, r, 2, 0, bytes.Repeat([]byte{7}, 4<<10))

	// Pre-allocate region 1's destination on the peer, playing the
	// manager's placement step, and stage the grant.
	resp, err := cmd.ep.Call("imd2", &wire.IMDAllocReq{RegionID: 901, Length: 64 << 10})
	if err != nil {
		t.Fatalf("target alloc: %v", err)
	}
	tr := resp.(*wire.IMDAllocResp)
	if tr.Status != wire.StatusOK {
		t.Fatalf("target alloc = %v", tr.Status)
	}
	cmd.setGrant(1, wire.Region{
		HostAddr: "imd2", RegionID: 901, PoolOffset: tr.PoolOffset,
		Length: 64 << 10, Epoch: tr.Epoch,
	})

	src.Drain()

	// The offer carried both regions under the draining identity.
	cmd.mu.Lock()
	offers := append([]wire.HandoffOffer(nil), cmd.offers...)
	cmd.mu.Unlock()
	if len(offers) != 1 {
		t.Fatalf("offers = %d, want 1", len(offers))
	}
	if offers[0].HostAddr != "imd1" || offers[0].Epoch != 3 || len(offers[0].Regions) != 2 {
		t.Fatalf("offer = %+v", offers[0])
	}
	// Exactly the granted region reported done, successfully.
	dones := cmd.handoffOutcomes()
	if len(dones) != 1 {
		t.Fatalf("HandoffDone reports = %+v, want exactly one", dones)
	}
	if dones[0].HostAddr != "imd1" || dones[0].OldRegionID != 1 || dones[0].Status != wire.StatusOK {
		t.Fatalf("HandoffDone = %+v", dones[0])
	}
	if s := src.Stats(); s.PagesHandedOff != 1 || s.HandoffAborts != 0 {
		t.Fatalf("drained imd stats = %+v", s)
	}

	// The page is byte-exact on the peer, readable as a normal region.
	rd, err := cli.CallT("imd2", &wire.ReadReq{RegionID: 901, Epoch: tr.Epoch, Offset: 0, Length: 64 << 10}, 2*time.Second, 2)
	if err != nil {
		t.Fatalf("read from peer: %v", err)
	}
	dr := rd.(*wire.DataResp)
	if dr.Status != wire.StatusOK || dr.Count != 64<<10 {
		t.Fatalf("peer read = %+v", dr)
	}
	got, err := cli.RecvBulk("imd2", dr.TransferID, 10*time.Second)
	if err != nil {
		t.Fatalf("RecvBulk from peer: %v", err)
	}
	if !bytes.Equal(got, data) {
		t.Fatal("handed-off page differs from the source bytes")
	}
}

// TestHandoffPageRefusedOutsideDrain: the target-side HandoffPage
// handler enforces the same epoch gate as client writes, and a
// duplicate announcement for an already-applied handoff is confirmed
// without a second transfer (the bulk layer would have consumed it).
func TestHandoffPageStaleEpochRejected(t *testing.T) {
	r := newRig(t, 1<<20)
	allocRegion(t, r, 1, 4096)
	resp, err := r.cli.Call("imd1", &wire.HandoffPage{RegionID: 1, Epoch: 2, Length: 4096, TransferID: 99})
	if err != nil {
		t.Fatal(err)
	}
	if st := resp.(*wire.DataResp).Status; st != wire.StatusStale {
		t.Fatalf("stale-epoch HandoffPage = %v, want StatusStale", st)
	}
}
