// Package imd implements Dodo's idle memory daemon (§4.2).
//
// An imd is forked by the resource monitor daemon when its workstation
// becomes idle. It allocates a memory pool at startup (sized by the
// harvest limit of §3.1), initializes an epoch counter used to timestamp
// the remote regions it caches, announces itself to the central manager,
// serves alloc/free requests from the manager and read/write requests
// from client runtimes, and — when the workstation is reclaimed —
// completes ongoing transfers and exits.
package imd

import (
	"errors"
	"hash/fnv"
	"log"
	"math/rand"
	"sort"
	"sync"
	"time"

	"dodo/internal/bulk"
	"dodo/internal/locks"
	"dodo/internal/pool"
	"dodo/internal/retry"
	"dodo/internal/sim"
	"dodo/internal/transport"
	"dodo/internal/wire"
)

// Config tunes a daemon.
type Config struct {
	// ManagerAddr is the central manager's transport address.
	ManagerAddr string
	// PoolSize is the memory pool allocated at startup.
	PoolSize uint64
	// Epoch timestamps this daemon instance. The rmd hands each imd
	// incarnation a larger epoch than the last so the manager can
	// detect regions that died with a previous incarnation (§4.2-4.3).
	Epoch uint64
	// StatusInterval is the period of unsolicited availability reports
	// to the manager (default 1s; hints are also piggybacked on every
	// alloc/free response, §4.3).
	StatusInterval time.Duration
	// GraceWindow bounds the handoff phase of a polite drain: after the
	// HostBusy announcement the daemon keeps serving reads and pushes
	// its hottest pages to manager-chosen peers until the window
	// expires; whatever has not moved by then is aborted (default
	// 750ms). The owner's reclaim latency is bounded by this value.
	GraceWindow time.Duration
	// Clock provides time (default wall clock).
	Clock sim.Clock
	// Endpoint tunes the messaging layer.
	Endpoint bulk.Config
	// Allocator overrides the pool allocator (default: the paper's
	// first-fit with periodic coalescing).
	Allocator pool.Allocator
	// Logger receives operational events; nil silences them.
	Logger *log.Logger
}

func (c Config) withDefaults() Config {
	if c.StatusInterval == 0 {
		c.StatusInterval = time.Second
	}
	if c.GraceWindow == 0 {
		c.GraceWindow = 750 * time.Millisecond
	}
	if c.Clock == nil {
		c.Clock = sim.WallClock{}
	}
	return c
}

// Daemon is one idle memory daemon instance.
type Daemon struct {
	// dodo:unguarded — immutable after construction
	cfg Config
	// dodo:unguarded — set once in New before handlers are gated open
	ep *bulk.Endpoint
	// dodo:unguarded — immutable after construction
	log *log.Logger

	mu locks.Mutex
	// dodo:guardedby mu
	pool *pool.Pool
	// dodo:guardedby mu
	draining bool
	// drainDone marks the end of the drain grace window: reads were
	// still served between draining and drainDone, and refuse after.
	// dodo:guardedby mu
	drainDone bool
	// dodo:guardedby mu
	closed bool
	// lastWriteSeq gates writes per region: an announcement whose
	// WriteSeq is not newer than the last applied one is a network
	// replay (duplicate or delayed frame) and must not be applied —
	// applying it would roll the region back to older bytes that the
	// client has already overwritten and confirmed. Entries are
	// dropped when the region is created or deleted.
	// dodo:guardedby mu
	lastWriteSeq map[uint64]uint64
	// readCount tracks per-region read hotness so a drain can hand off
	// the most-read pages first when the grace window cannot fit all.
	// dodo:guardedby mu
	readCount map[uint64]uint64
	// handoffApplied marks regions whose bytes arrived via a handoff
	// page push, making duplicate HandoffPage announcements idempotent
	// (the same confirm-after-apply discipline as lastWriteSeq).
	// dodo:guardedby mu
	handoffApplied map[uint64]bool
	// regionMeta remembers, per region, the allocation-time key, owning
	// client and pool offset from the manager's IMDAllocReq. It exists
	// solely so an inventory re-report after a manager crash can hand
	// the restarted manager enough to rebuild full directory rows
	// (§ restart recovery). Entries predating client tracking carry a
	// zero key and are skipped by the manager.
	// dodo:guardedby mu
	regionMeta map[uint64]regionMeta
	// mgrIncarnation is the highest manager incarnation observed in any
	// HostStatusAck or InventoryAck; reportedIncarnation is the highest
	// one whose inventory re-report the manager acknowledged OK. A gap
	// between the two means the manager restarted and has not yet
	// rebuilt our rows — the report loop closes it.
	// dodo:guardedby mu
	mgrIncarnation uint64
	// dodo:guardedby mu
	reportedIncarnation uint64
	// reportKick wakes the inventory report loop; buffered so a kick
	// while a report is in flight coalesces instead of blocking.
	// dodo:unguarded — channel is internally synchronized
	reportKick chan struct{}

	// dodo:unguarded — WaitGroup is internally synchronized
	transfers sync.WaitGroup // in-flight region data pushes
	// pendingWrites tracks writes admitted (draining flag checked)
	// whose apply has not landed yet; Drain waits on it before the
	// handoff snapshots region contents.
	// dodo:unguarded — WaitGroup is internally synchronized
	pendingWrites sync.WaitGroup
	// dodo:unguarded — set at construction; closed once under mu in Close
	stop chan struct{}
	// dodo:unguarded — WaitGroup is internally synchronized
	loops sync.WaitGroup

	// stats
	// dodo:guardedby mu
	reads, writes, readBytes, writeBytes, staleRejects int64
	// dodo:guardedby mu
	pagesHandedOff, handoffAborts int64
	// checksumRejects counts inbound frames (writes, handoff pages)
	// whose CRC32-C did not match their bytes.
	// dodo:guardedby mu
	checksumRejects int64
	// inventoryReports counts re-reports the manager acknowledged OK.
	// dodo:guardedby mu
	inventoryReports int64
	// inlineReads / eagerReads / batchReads count fast-path read
	// decisions (inline payload, eager blast, batched fetch).
	// dodo:guardedby mu
	inlineReads, eagerReads, batchReads int64

	// eagerResp memoizes the response for each requester-chosen eager
	// transfer id, and eagerOrder its insertion order. A retransmitted
	// ReadReq/ReadBatchReq (the client's Call resends on timeout) MUST
	// get the original response back without starting a second blast:
	// the pool may have been written in between, and a second blast
	// under the same transfer id would interleave two snapshots into
	// the client's buffer and fail its end-to-end CRC. Bounded FIFO —
	// old entries only matter for duplicates, which the client's call
	// deadline bounds far tighter than the table size.
	// dodo:guardedby mu
	eagerResp map[eagerKey]wire.Message
	// dodo:guardedby mu
	eagerOrder []eagerKey
}

// eagerKey names a requester-chosen transfer: the requester's address
// plus the id it picked (unique per requester by construction).
type eagerKey struct {
	from string
	id   uint64
}

// eagerMemoCap bounds the eager response memo table.
const eagerMemoCap = 256

// regionMeta is the per-region allocation context replayed to a
// restarted manager in an InventoryReport.
type regionMeta struct {
	key    wire.RegionKey
	client string
	offset uint64
}

// New starts a daemon serving its pool on tr and registers it with the
// central manager.
func New(tr transport.Transport, cfg Config) *Daemon {
	cfg = cfg.withDefaults()
	alloc := cfg.Allocator
	if alloc == nil {
		alloc = pool.NewFirstFit(cfg.PoolSize)
	}
	d := &Daemon{
		cfg:            cfg,
		log:            cfg.Logger,
		pool:           pool.New(alloc),
		lastWriteSeq:   make(map[uint64]uint64),
		readCount:      make(map[uint64]uint64),
		handoffApplied: make(map[uint64]bool),
		regionMeta:     make(map[uint64]regionMeta),
		reportKick:     make(chan struct{}, 1),
		stop:           make(chan struct{}),
		eagerResp:      make(map[eagerKey]wire.Message),
	}
	d.mu.SetRank(locks.RankIMD)
	// Handlers may fire before this constructor returns; gate them
	// until d.ep is assigned.
	ready := make(chan struct{})
	d.ep = bulk.NewEndpoint(tr, cfg.Endpoint, func(from string, msg wire.Message) wire.Message {
		<-ready
		return d.handle(from, msg)
	})
	close(ready)
	// Namespace bulk transfer ids by incarnation: a restarted imd reuses
	// its transport address, and a client's bulk receiver keys transfer
	// state by (address, id). Without the seed, this incarnation's reads
	// would re-issue ids the previous one already used, and the client
	// would answer them from stale per-transfer state — failing the read
	// or, worse, serving the dead incarnation's bytes.
	d.ep.SeedTransferIDs(cfg.Epoch << 32)
	d.announce(wire.HostIdle)
	d.loops.Add(2)
	go d.statusLoop()
	go d.reportLoop()
	return d
}

// Addr returns the daemon's transport address.
func (d *Daemon) Addr() string { return d.ep.LocalAddr() }

// Epoch returns the daemon's epoch.
func (d *Daemon) Epoch() uint64 { return d.cfg.Epoch }

func (d *Daemon) logf(format string, args ...any) {
	if d.log != nil {
		d.log.Printf(format, args...)
	}
}

// announce sends a HostStatus to the manager (best-effort with retries).
func (d *Daemon) announce(state wire.HostState) {
	d.mu.Lock()
	avail, largest := d.pool.FreeBytes(), d.pool.LargestFree()
	d.mu.Unlock()
	d.mu.Lock()
	known := d.mgrIncarnation
	d.mu.Unlock()
	msg := &wire.HostStatus{
		HostAddr:    d.ep.LocalAddr(),
		State:       state,
		Epoch:       d.cfg.Epoch,
		AvailBytes:  avail,
		LargestFree: largest,
		Incarnation: known,
		// Advertise the read fast paths; the manager relays these to
		// clients on every alloc/check-alloc so they know this host
		// speaks inline, eager and batched reads. Periodic announces
		// also restore the advertisement after a manager restart (the
		// rebuilt directory starts with zero caps for every host).
		Caps: wire.LocalCaps,
	}
	resp, err := d.ep.Call(d.cfg.ManagerAddr, msg)
	if err != nil {
		d.logf("imd %s: announcing %v to cmd failed: %v", d.Addr(), state, err)
		return
	}
	// The ack carries the manager's incarnation: a value newer than the
	// last one we reported an inventory against means the manager
	// restarted with an empty directory and needs a re-report (§ restart
	// recovery). A StatusStale ack means our announce itself carried a
	// dead incarnation; the ack still names the live one, so the same
	// path recovers.
	if ack, ok := resp.(*wire.HostStatusAck); ok {
		d.noteIncarnation(ack.Incarnation)
	}
}

// noteIncarnation folds an incarnation observed on a manager ack into
// the daemon's view, kicking the inventory report loop when the
// manager is ahead of the last acknowledged report. Zero means the
// peer predates incarnation stamping and is ignored.
func (d *Daemon) noteIncarnation(inc uint64) {
	if inc == 0 {
		return
	}
	d.mu.Lock()
	prev := d.mgrIncarnation
	if inc > d.mgrIncarnation {
		d.mgrIncarnation = inc
	}
	kick := false
	if inc > d.reportedIncarnation {
		if prev == 0 && d.pool.Regions() == 0 {
			// First contact with an empty pool: the manager cannot be
			// missing any of our regions, so there is nothing to
			// re-report — it learns regions as it allocates them.
			d.reportedIncarnation = inc
		} else {
			kick = true
		}
	}
	d.mu.Unlock()
	if kick {
		d.kickReport()
	}
}

// kickReport wakes the report loop without blocking; concurrent kicks
// coalesce.
func (d *Daemon) kickReport() {
	select {
	case d.reportKick <- struct{}{}:
	default:
	}
}

// statusLoop keeps the manager's IWD hints fresh.
func (d *Daemon) statusLoop() {
	defer d.loops.Done()
	for {
		select {
		case <-d.stop:
			return
		default:
		}
		if !sim.SleepInterruptible(d.cfg.Clock, d.cfg.StatusInterval, d.stop) {
			return
		}
		d.mu.Lock()
		draining := d.draining
		d.mu.Unlock()
		if !draining {
			d.announce(wire.HostIdle)
		}
	}
}

// reportLoop pushes a full inventory re-report whenever a manager
// restart is detected (reportKick), retrying with seeded-jittered
// backoff until the new incarnation acknowledges it. The jitter seed
// is derived from this daemon's address so a cluster of imds that all
// notice the restart on the same announce tick fan their reports out
// instead of stampeding the freshly restarted manager — while any
// seeded run still replays the identical schedule.
func (d *Daemon) reportLoop() {
	defer d.loops.Done()
	h := fnv.New64a()
	_, _ = h.Write([]byte(d.ep.LocalAddr()))
	rng := rand.New(rand.NewSource(int64(h.Sum64()) ^ int64(d.cfg.Epoch)))
	for {
		select {
		case <-d.stop:
			return
		case <-d.reportKick:
		}
		d.runInventoryReport(rng)
	}
}

// runInventoryReport drives one re-report episode: snapshot the pool,
// send, and retry under a bounded budget. Giving up is safe — the
// next announce ack re-kicks the loop as long as the gap between
// observed and reported incarnations remains.
func (d *Daemon) runInventoryReport(rng *rand.Rand) {
	budget := retry.New(retry.Policy{
		Deadline: 8 * d.cfg.StatusInterval,
		Base:     d.cfg.StatusInterval / 4,
		Cap:      2 * d.cfg.StatusInterval,
		Factor:   2,
		Jitter:   0.5,
	}, d.cfg.Clock, rng)
	for {
		select {
		case <-d.stop:
			return
		default:
		}
		d.mu.Lock()
		if d.draining || d.closed {
			// A draining daemon is leaving the cluster; its HostBusy
			// announce already tells the manager everything it needs.
			d.mu.Unlock()
			return
		}
		inc := d.mgrIncarnation
		if inc <= d.reportedIncarnation {
			d.mu.Unlock()
			return
		}
		report := d.buildReportLocked(inc)
		d.mu.Unlock()

		resp, err := d.ep.CallT(d.cfg.ManagerAddr, report, d.callTimeout(), 1)
		if err == nil {
			if ack, ok := resp.(*wire.InventoryAck); ok {
				switch {
				case ack.Status == wire.StatusOK:
					d.mu.Lock()
					if inc > d.reportedIncarnation {
						d.reportedIncarnation = inc
					}
					d.inventoryReports++
					done := d.mgrIncarnation <= d.reportedIncarnation
					d.mu.Unlock()
					if done {
						return
					}
					// The manager moved to yet another incarnation while
					// we reported; that ack was progress, so the budget
					// reopens for the next round.
					budget.Reset()
					continue
				case ack.Status == wire.StatusStale && ack.Incarnation > inc:
					// Fenced: the manager restarted again under a newer
					// incarnation. Adopt it and re-report.
					d.mu.Lock()
					if ack.Incarnation > d.mgrIncarnation {
						d.mgrIncarnation = ack.Incarnation
					}
					d.mu.Unlock()
					budget.Reset()
					continue
				}
			}
		}
		delay, ok := budget.Next()
		if !ok {
			d.logf("imd %s: inventory report to incarnation %d exhausted retries", d.Addr(), inc)
			return
		}
		if !sim.SleepInterruptible(d.cfg.Clock, delay, d.stop) {
			return
		}
	}
}

// buildReportLocked snapshots the full inventory for incarnation inc.
// Caller holds d.mu.
func (d *Daemon) buildReportLocked(inc uint64) *wire.InventoryReport {
	ids := d.pool.RegionIDs()
	regions := make([]wire.InventoryRegion, 0, len(ids))
	for _, id := range ids {
		size, _ := d.pool.RegionSize(id)
		meta := d.regionMeta[id]
		regions = append(regions, wire.InventoryRegion{
			RegionID:   id,
			PoolOffset: meta.offset,
			Length:     size,
			WriteSeq:   d.lastWriteSeq[id],
			Key:        meta.key,
			Client:     meta.client,
		})
	}
	return &wire.InventoryReport{
		HostAddr:    d.ep.LocalAddr(),
		Epoch:       d.cfg.Epoch,
		Incarnation: inc,
		AvailBytes:  d.pool.FreeBytes(),
		LargestFree: d.pool.LargestFree(),
		Regions:     regions,
	}
}

// Drain is the polite reclaim path, called by the rmd when the
// workstation owner returns (§4.1-4.2): the daemon announces HostBusy
// (refusing new writes and allocations), then spends a bounded grace
// window still serving reads while it hands off its hottest pages to
// manager-chosen peer imds, waits for in-flight bulk transfers to
// finish, and only then tears down. Contrast Crash/Close, which
// abandon everything immediately.
func (d *Daemon) Drain() {
	d.mu.Lock()
	if d.draining || d.closed {
		d.mu.Unlock()
		return
	}
	d.draining = true
	d.mu.Unlock()
	d.announce(wire.HostBusy)
	// Settle writes admitted before the flag flipped: a write applying
	// after the handoff snapshot would be confirmed to the client yet
	// missing from the copy — exactly the staleness the write-seq gate
	// exists to prevent.
	d.pendingWrites.Wait()
	d.handoff()
	d.mu.Lock()
	d.drainDone = true
	d.mu.Unlock()
	d.transfers.Wait() // complete ongoing transfers, then exit
	_ = d.teardown()   // Drain has no error to return
}

// Crash tears the daemon down as a kill -9 or power failure would: no
// drain, no HostBusy announcement. The manager keeps believing the host
// is idle until an alloc probe fails or an epoch check exposes the
// restart — exactly the orphan-detection path of §4.3. Fault harnesses
// use it to model workstation crashes.
func (d *Daemon) Crash() { _ = d.Close() }

// Close releases the daemon without the polite drain (crash path):
// in-flight transfers are abandoned, nothing is handed off.
func (d *Daemon) Close() error { return d.teardown() }

// teardown releases the daemon's resources. It is shared by the crash
// path (Close/Crash, where it runs immediately) and the drain path
// (where Drain reaches it only after the grace window and transfer
// completion).
func (d *Daemon) teardown() error {
	d.mu.Lock()
	if d.closed {
		d.mu.Unlock()
		return nil
	}
	d.closed = true
	select {
	case <-d.stop:
	default:
		close(d.stop)
	}
	d.mu.Unlock()
	err := d.ep.Close()
	d.loops.Wait()
	return err
}

// callTimeout is the effective per-attempt call timeout of the
// daemon's endpoint (the raw config may be zero, meaning the bulk
// layer's default).
func (d *Daemon) callTimeout() time.Duration {
	if t := d.cfg.Endpoint.CallTimeout; t > 0 {
		return t
	}
	return 500 * time.Millisecond
}

// handoff runs the drain grace window: offer resident regions to the
// manager hottest-first, then push each granted page to its target imd
// and report the outcome. It runs inline on the Drain caller's
// goroutine; reads are still being served concurrently, so everything
// here snapshots under d.mu and performs RPCs lock-free.
func (d *Daemon) handoff() {
	deadline := d.cfg.Clock.Now().Add(d.cfg.GraceWindow)
	d.mu.Lock()
	regions := make([]wire.HandoffRegion, 0, d.pool.Regions())
	for _, id := range d.pool.RegionIDs() {
		size, _ := d.pool.RegionSize(id)
		regions = append(regions, wire.HandoffRegion{RegionID: id, Length: size, Reads: d.readCount[id]})
	}
	d.mu.Unlock()
	if len(regions) == 0 {
		return
	}
	// Hottest first; the grace window may not fit every page. Region id
	// breaks ties so the offer order is deterministic.
	sort.Slice(regions, func(i, j int) bool {
		if regions[i].Reads != regions[j].Reads {
			return regions[i].Reads > regions[j].Reads
		}
		return regions[i].RegionID < regions[j].RegionID
	})
	offer := &wire.HandoffOffer{HostAddr: d.ep.LocalAddr(), Epoch: d.cfg.Epoch, Regions: regions}
	rem := deadline.Sub(d.cfg.Clock.Now())
	if t := 2 * d.callTimeout(); rem > t {
		rem = t
	}
	if rem <= 0 {
		return
	}
	resp, err := d.ep.CallT(d.cfg.ManagerAddr, offer, rem, 0)
	if err != nil {
		d.logf("imd %s: handoff offer failed: %v", d.Addr(), err)
		return
	}
	acc, ok := resp.(*wire.HandoffAccept)
	if !ok || acc.Status != wire.StatusOK {
		return
	}
	for i, g := range acc.Grants {
		rem := deadline.Sub(d.cfg.Clock.Now())
		if rem <= 0 {
			// Grace expired: abort the remaining grants so the manager
			// frees their pre-allocated target regions.
			for _, rest := range acc.Grants[i:] {
				d.reportHandoff(rest.OldRegionID, wire.StatusBusy)
				d.mu.Lock()
				d.handoffAborts++
				d.mu.Unlock()
			}
			return
		}
		if d.pushPage(g, rem) {
			d.reportHandoff(g.OldRegionID, wire.StatusOK)
			d.mu.Lock()
			d.pagesHandedOff++
			d.mu.Unlock()
		} else {
			d.reportHandoff(g.OldRegionID, wire.StatusBusy)
			d.mu.Lock()
			d.handoffAborts++
			d.mu.Unlock()
		}
	}
}

// pushPage copies one region's bytes to its granted target imd over
// the bulk path, bounded by rem. True means the target confirmed the
// full page.
func (d *Daemon) pushPage(g wire.HandoffGrant, rem time.Duration) bool {
	d.mu.Lock()
	size, ok := d.pool.RegionSize(g.OldRegionID)
	if !ok {
		d.mu.Unlock()
		return false
	}
	data, err := d.pool.Read(g.OldRegionID, 0, size)
	if err != nil {
		d.mu.Unlock()
		return false
	}
	// Snapshot: concurrent grace-window reads share the pool buffer.
	snap := append([]byte(nil), data...)
	d.mu.Unlock()

	id := d.ep.NextTransferID()
	sendErr := make(chan error, 1)
	d.transfers.Add(1)
	go func() {
		defer d.transfers.Done()
		sendErr <- d.ep.SendBulk(g.Target.HostAddr, id, snap)
	}()
	req := &wire.HandoffPage{RegionID: g.Target.RegionID, Epoch: g.Target.Epoch, Length: size, TransferID: id, Crc: wire.Checksum(snap)}
	resp, callErr := d.ep.CallT(g.Target.HostAddr, req, rem/2, 1)
	if serr := <-sendErr; serr != nil {
		return false
	}
	if callErr != nil {
		return false
	}
	dr, ok := resp.(*wire.DataResp)
	return ok && dr.Status == wire.StatusOK && dr.Count == size
}

// reportHandoff tells the manager one region's handoff outcome so it
// can repoint (StatusOK) or free the target region (anything else).
func (d *Daemon) reportHandoff(oldID uint64, st wire.Status) {
	done := &wire.HandoffDone{HostAddr: d.ep.LocalAddr(), OldRegionID: oldID, Status: st}
	if _, err := d.ep.CallT(d.cfg.ManagerAddr, done, d.callTimeout(), 1); err != nil {
		d.logf("imd %s: reporting handoff of region %d: %v", d.Addr(), oldID, err)
	}
}

// Stats reports serving counters.
type Stats struct {
	Reads, Writes         int64
	ReadBytes, WriteBytes int64
	StaleRejects          int64
	// PagesHandedOff counts regions this daemon moved to peers during
	// its drain; HandoffAborts counts grants it had to abandon (grace
	// window expiry or unreachable target).
	PagesHandedOff, HandoffAborts int64
	// ChecksumRejects counts inbound writes and handoff pages refused
	// because their CRC32-C did not match the received bytes.
	ChecksumRejects int64
	// InventoryReports counts re-reports acknowledged by a restarted
	// manager.
	InventoryReports int64
	Regions          int
	FreeBytes        uint64
	LargestFree      uint64
}

// Stats returns a consistent snapshot.
func (d *Daemon) Stats() Stats {
	d.mu.Lock()
	defer d.mu.Unlock()
	return Stats{
		Reads:            d.reads,
		Writes:           d.writes,
		ReadBytes:        d.readBytes,
		WriteBytes:       d.writeBytes,
		StaleRejects:     d.staleRejects,
		PagesHandedOff:   d.pagesHandedOff,
		HandoffAborts:    d.handoffAborts,
		ChecksumRejects:  d.checksumRejects,
		InventoryReports: d.inventoryReports,
		Regions:          d.pool.Regions(),
		FreeBytes:        d.pool.FreeBytes(),
		LargestFree:      d.pool.LargestFree(),
	}
}

// HoldsRegion reports whether the pool currently holds the region.
// Test and harness introspection: cross-validating a rebuilt region
// directory against what the imds actually hold.
func (d *Daemon) HoldsRegion(id uint64) bool {
	d.mu.Lock()
	defer d.mu.Unlock()
	_, ok := d.pool.RegionSize(id)
	return ok
}

// handle dispatches one request.
func (d *Daemon) handle(from string, msg wire.Message) wire.Message {
	switch req := msg.(type) {
	case *wire.IMDAllocReq:
		return d.handleAlloc(req)
	case *wire.IMDFreeReq:
		return d.handleFree(req)
	case *wire.ReadReq:
		return d.handleRead(from, req)
	case *wire.ReadBatchReq:
		return d.handleReadBatch(from, req)
	case *wire.WriteReq:
		return d.handleWrite(from, req)
	case *wire.HandoffPage:
		return d.handleHandoffPage(from, req)
	case *wire.AllocReq, *wire.FreeReq, *wire.CheckAllocReq,
		*wire.KeepAlive, *wire.HostStatus, *wire.ClusterStatsReq,
		*wire.HandoffOffer, *wire.HandoffDone, *wire.InventoryReport:
		// Addressed to the central manager, not an imd; a frame routed
		// here is a misdirected client. Explicitly ignored.
		return nil
	case *wire.AllocResp, *wire.FreeResp, *wire.CheckAllocResp,
		*wire.KeepAliveAck, *wire.HostStatusAck,
		*wire.IMDAllocResp, *wire.IMDFreeResp, *wire.DataResp,
		*wire.BulkOffer, *wire.BulkAccept, *wire.BulkData,
		*wire.BulkNack, *wire.BulkDone, *wire.ClusterStatsResp,
		*wire.HandoffAccept, *wire.InventoryAck, *wire.ReadBatchResp:
		// Responses and bulk frames are consumed by the endpoint's
		// dispatch before the handler runs; they cannot reach here.
		return nil
	}
	return nil
}

// piggyback fills the availability hints carried on every manager-bound
// response (§4.3). Caller holds d.mu.
func (d *Daemon) piggybackLocked() (epoch, avail, largest uint64) {
	return d.cfg.Epoch, d.pool.FreeBytes(), d.pool.LargestFree()
}

func (d *Daemon) handleAlloc(req *wire.IMDAllocReq) wire.Message {
	d.mu.Lock()
	defer d.mu.Unlock()
	if d.draining {
		e, a, l := d.piggybackLocked()
		return &wire.IMDAllocResp{Status: wire.StatusBusy, Epoch: e, AvailBytes: a, LargestFree: l}
	}
	if d.pool.Has(req.RegionID) {
		// Duplicate of a request whose response was lost: idempotent.
		e, a, l := d.piggybackLocked()
		return &wire.IMDAllocResp{Status: wire.StatusOK, Epoch: e, AvailBytes: a, LargestFree: l}
	}
	off, err := d.pool.Create(req.RegionID, req.Length)
	st := wire.StatusOK
	if err != nil {
		st = wire.StatusNoMem
	} else {
		// Fresh region: restart its write-ordering gate and hotness,
		// and remember the allocation context for inventory re-reports.
		delete(d.lastWriteSeq, req.RegionID)
		delete(d.readCount, req.RegionID)
		delete(d.handoffApplied, req.RegionID)
		d.regionMeta[req.RegionID] = regionMeta{key: req.Key, client: req.Client, offset: off}
	}
	e, a, l := d.piggybackLocked()
	return &wire.IMDAllocResp{Status: st, PoolOffset: off, Epoch: e, AvailBytes: a, LargestFree: l}
}

func (d *Daemon) handleFree(req *wire.IMDFreeReq) wire.Message {
	d.mu.Lock()
	defer d.mu.Unlock()
	st := wire.StatusOK
	if err := d.pool.Delete(req.RegionID); err != nil {
		st = wire.StatusNotFound
	} else {
		delete(d.lastWriteSeq, req.RegionID)
		delete(d.readCount, req.RegionID)
		delete(d.handoffApplied, req.RegionID)
		delete(d.regionMeta, req.RegionID)
	}
	e, a, l := d.piggybackLocked()
	return &wire.IMDFreeResp{Status: st, Epoch: e, AvailBytes: a, LargestFree: l}
}

// memoizedLocked returns the memoized response for a requester-chosen
// transfer id, if any. Caller holds d.mu.
func (d *Daemon) memoizedLocked(from string, id uint64) (wire.Message, bool) {
	if id == 0 {
		return nil, false
	}
	resp, ok := d.eagerResp[eagerKey{from: from, id: id}]
	return resp, ok
}

// memoize records the response chosen for a requester-picked transfer
// id, evicting the oldest entry past the table bound.
func (d *Daemon) memoize(from string, id uint64, resp wire.Message) {
	if id == 0 {
		return
	}
	key := eagerKey{from: from, id: id}
	d.mu.Lock()
	defer d.mu.Unlock()
	if _, ok := d.eagerResp[key]; ok {
		return
	}
	d.eagerResp[key] = resp
	d.eagerOrder = append(d.eagerOrder, key)
	if len(d.eagerOrder) > eagerMemoCap {
		delete(d.eagerResp, d.eagerOrder[0])
		d.eagerOrder = d.eagerOrder[1:]
	}
}

// handleRead validates the request, snapshots the bytes and serves them
// by the fastest path the requester advertised: inline in the DataResp
// when they fit one frame, an eager blast under the requester's chosen
// transfer id, or the legacy offer/accept bulk push.
func (d *Daemon) handleRead(from string, req *wire.ReadReq) wire.Message {
	d.mu.Lock()
	// Retransmitted request for an eager transfer already underway: the
	// original response must come back untouched (see eagerResp).
	if resp, ok := d.memoizedLocked(from, req.XferID); ok {
		d.mu.Unlock()
		return resp
	}
	// A draining daemon keeps serving reads through the grace window
	// (drainDone marks its end): clients stay warm while the hand-off
	// runs, which is the whole point of the graceful reclaim.
	if d.draining && d.drainDone {
		d.mu.Unlock()
		return &wire.DataResp{Status: wire.StatusBusy}
	}
	if req.Epoch != d.cfg.Epoch {
		d.staleRejects++
		d.mu.Unlock()
		return &wire.DataResp{Status: wire.StatusStale}
	}
	if !d.pool.Has(req.RegionID) {
		d.mu.Unlock()
		return &wire.DataResp{Status: wire.StatusNotFound}
	}
	data, err := d.pool.Read(req.RegionID, req.Offset, req.Length)
	if err != nil {
		d.mu.Unlock()
		return &wire.DataResp{Status: wire.StatusInvalid}
	}
	// Snapshot: the pool buffer may be overwritten while the transfer
	// is in flight.
	snap := append([]byte(nil), data...)
	d.reads++
	d.readBytes += int64(len(snap))
	d.readCount[req.RegionID]++

	// Inline fast path: the whole read fits one frame alongside the
	// response fields — answer with the payload, no bulk transfer.
	if req.Caps&wire.CapInlineRead != 0 && len(snap) <= wire.InlineDataLimit(d.ep.Transport().MTU()) {
		d.inlineReads++
		d.mu.Unlock()
		return &wire.DataResp{
			Status: wire.StatusOK, Count: uint64(len(snap)), Crc: wire.Checksum(snap),
			Flags: wire.DataFlagInline, Payload: snap,
		}
	}

	// Eager fast path: the requester pre-registered its buffer under
	// XferID and told us the chunk/window it committed — blast the
	// first window now, DataResp doubles as the offer.
	eager := req.Caps&wire.CapEagerRead != 0 && req.XferID != 0 &&
		int(req.ChunkSize) > 0 && int(req.ChunkSize) <= d.ep.ChunkSize()
	if eager {
		d.eagerReads++
	}
	d.transfers.Add(1)
	d.mu.Unlock()

	// The checksum covers the snapshot, so the client verifies the
	// bytes end to end: a frame mangled anywhere between this pool and
	// the client's buffer fails the read instead of corrupting it.
	if eager {
		resp := &wire.DataResp{
			Status: wire.StatusOK, Count: uint64(len(snap)), TransferID: req.XferID,
			Crc: wire.Checksum(snap), Flags: wire.DataFlagEager,
		}
		// Memoize BEFORE the blast goroutine can finish: a retransmit
		// must never observe a gap and start a second blast.
		d.memoize(from, req.XferID, resp)
		go func() {
			defer d.transfers.Done()
			if err := d.ep.SendBulkEager(from, req.XferID, snap, int(req.ChunkSize), int(req.Window)); err != nil {
				d.logf("imd %s: eager read push to %s: %v", d.Addr(), from, err)
			}
		}()
		return resp
	}

	id := d.ep.NextTransferID()
	go func() {
		defer d.transfers.Done()
		if err := d.ep.SendBulk(from, id, snap); err != nil {
			d.logf("imd %s: pushing read data to %s: %v", d.Addr(), from, err)
		}
	}()
	return &wire.DataResp{Status: wire.StatusOK, Count: uint64(len(snap)), TransferID: id, Crc: wire.Checksum(snap)}
}

// handleReadBatch serves several region reads in one exchange: the
// per-item slots are packed into one stream (failed or short items
// zero-padded to their full requested length, so the stream length is
// exactly the sum the requester predicted), answered inline when the
// whole response fits one frame and blasted eagerly under the
// requester's transfer id otherwise.
func (d *Daemon) handleReadBatch(from string, req *wire.ReadBatchReq) wire.Message {
	d.mu.Lock()
	if resp, ok := d.memoizedLocked(from, req.XferID); ok {
		d.mu.Unlock()
		return resp
	}
	if d.draining && d.drainDone {
		d.mu.Unlock()
		return &wire.ReadBatchResp{Status: wire.StatusBusy}
	}
	total := 0
	for _, it := range req.Items {
		if it.Length > bulk.MaxTransfer || total+int(it.Length) > bulk.MaxTransfer {
			d.mu.Unlock()
			return &wire.ReadBatchResp{Status: wire.StatusInvalid}
		}
		total += int(it.Length)
	}
	stream := make([]byte, total)
	results := make([]wire.ReadBatchResult, len(req.Items))
	at := 0
	for i, it := range req.Items {
		slot := stream[at : at+int(it.Length)]
		at += int(it.Length)
		switch {
		case it.Epoch != d.cfg.Epoch:
			d.staleRejects++
			results[i] = wire.ReadBatchResult{Status: wire.StatusStale}
			continue
		case !d.pool.Has(it.RegionID):
			results[i] = wire.ReadBatchResult{Status: wire.StatusNotFound}
			continue
		}
		data, err := d.pool.Read(it.RegionID, it.Offset, it.Length)
		if err != nil {
			results[i] = wire.ReadBatchResult{Status: wire.StatusInvalid}
			continue
		}
		n := copy(slot, data)
		d.reads++
		d.readBytes += int64(n)
		d.readCount[it.RegionID]++
		results[i] = wire.ReadBatchResult{Status: wire.StatusOK, Count: uint64(n), Crc: wire.Checksum(slot[:n])}
	}
	d.batchReads++

	// Whole response in one frame when it fits: statuses, CRCs and the
	// stream itself, no bulk transfer.
	inlineSize := 12 + 13*len(results) + len(stream)
	if req.Caps&wire.CapInlineRead != 0 && wire.HeaderSize+inlineSize <= d.ep.Transport().MTU() {
		d.mu.Unlock()
		resp := &wire.ReadBatchResp{Status: wire.StatusOK, Flags: wire.DataFlagInline, Results: results, Payload: stream}
		d.memoize(from, req.XferID, resp)
		return resp
	}
	eager := req.Caps&wire.CapEagerRead != 0 && req.XferID != 0 &&
		int(req.ChunkSize) > 0 && int(req.ChunkSize) <= d.ep.ChunkSize()
	if !eager {
		// The batch protocol has no legacy ladder: a requester that
		// cannot receive an eager stream should not have sent a batch.
		d.mu.Unlock()
		return &wire.ReadBatchResp{Status: wire.StatusInvalid, Results: results}
	}
	d.transfers.Add(1)
	d.mu.Unlock()

	resp := &wire.ReadBatchResp{Status: wire.StatusOK, TransferID: req.XferID, Flags: wire.DataFlagEager, Results: results}
	d.memoize(from, req.XferID, resp)
	go func() {
		defer d.transfers.Done()
		if err := d.ep.SendBulkEager(from, req.XferID, stream, int(req.ChunkSize), int(req.Window)); err != nil {
			d.logf("imd %s: eager batch push to %s: %v", d.Addr(), from, err)
		}
	}()
	return resp
}

// handleWrite receives the announced bulk data and stores it.
func (d *Daemon) handleWrite(from string, req *wire.WriteReq) wire.Message {
	d.mu.Lock()
	if d.draining {
		d.mu.Unlock()
		return &wire.DataResp{Status: wire.StatusBusy}
	}
	if req.Epoch != d.cfg.Epoch {
		d.staleRejects++
		d.mu.Unlock()
		return &wire.DataResp{Status: wire.StatusStale}
	}
	if !d.pool.Has(req.RegionID) {
		d.mu.Unlock()
		return &wire.DataResp{Status: wire.StatusNotFound}
	}
	size, _ := d.pool.RegionSize(req.RegionID)
	if req.Offset > size {
		d.mu.Unlock()
		return &wire.DataResp{Status: wire.StatusInvalid}
	}
	if d.supersededLocked(req) {
		// Replay of a write that already applied (or was overwritten by
		// a newer one): confirm without touching region memory.
		d.mu.Unlock()
		return &wire.DataResp{Status: wire.StatusOK, Count: req.Length}
	}
	d.transfers.Add(1)
	// pendingWrites is taken under the same critical section that
	// checked draining: Drain flips the flag under d.mu and then waits
	// on this group, so every write it could not refuse is applied (or
	// failed) before the handoff snapshots region bytes.
	d.pendingWrites.Add(1)
	d.mu.Unlock()
	defer d.transfers.Done()
	defer d.pendingWrites.Done()

	// Wait for the client's blast under its announced transfer id.
	// Budget scales with size: a large region takes many windows.
	budget := 5*time.Second + time.Duration(req.Length/(1<<20))*2*time.Second
	data, err := d.ep.RecvBulk(from, req.TransferID, budget)
	if err != nil {
		if errors.Is(err, bulk.ErrConsumed) {
			// A duplicated announcement raced us to the bytes. Confirm
			// only once the racing handler's apply (or a newer write)
			// is visible; confirming earlier is how a duplicate used to
			// acknowledge a write whose apply was still pending —
			// letting the pending bytes later roll the region back.
			d.mu.Lock()
			applied := d.supersededLocked(req)
			d.mu.Unlock()
			if applied {
				return &wire.DataResp{Status: wire.StatusOK, Count: req.Length}
			}
			return &wire.DataResp{Status: wire.StatusInvalid}
		}
		d.logf("imd %s: receiving write data from %s: %v", d.Addr(), from, err)
		return &wire.DataResp{Status: wire.StatusInvalid}
	}
	if req.Crc != 0 && wire.Checksum(data) != req.Crc {
		// The bytes that arrived are not the bytes the client hashed:
		// refuse the write rather than store a corrupt page the client
		// believes is durable.
		d.mu.Lock()
		d.checksumRejects++
		d.mu.Unlock()
		return &wire.DataResp{Status: wire.StatusInvalid}
	}
	d.mu.Lock()
	defer d.mu.Unlock()
	if d.supersededLocked(req) {
		return &wire.DataResp{Status: wire.StatusOK, Count: req.Length}
	}
	n, err := d.pool.Write(req.RegionID, req.Offset, data)
	if err != nil {
		return &wire.DataResp{Status: wire.StatusInvalid}
	}
	if req.WriteSeq != 0 {
		d.lastWriteSeq[req.RegionID] = req.WriteSeq
	}
	d.writes++
	d.writeBytes += int64(n)
	return &wire.DataResp{Status: wire.StatusOK, Count: uint64(n)}
}

// handleHandoffPage receives one region's bytes from a draining peer
// imd. The manager already allocated the destination region here; the
// page body travels over the bulk path under the announced transfer
// id. Mirrors handleWrite, but whole-region and gated by the
// handoffApplied marker instead of a write sequence.
func (d *Daemon) handleHandoffPage(from string, req *wire.HandoffPage) wire.Message {
	d.mu.Lock()
	if d.draining {
		// A draining target must not accept pages it would itself need
		// to move; the sender aborts and the manager frees the grant.
		d.mu.Unlock()
		return &wire.DataResp{Status: wire.StatusBusy}
	}
	if req.Epoch != d.cfg.Epoch {
		d.staleRejects++
		d.mu.Unlock()
		return &wire.DataResp{Status: wire.StatusStale}
	}
	if !d.pool.Has(req.RegionID) {
		d.mu.Unlock()
		return &wire.DataResp{Status: wire.StatusNotFound}
	}
	if d.handoffApplied[req.RegionID] {
		// Duplicate announcement of a page that already landed.
		d.mu.Unlock()
		return &wire.DataResp{Status: wire.StatusOK, Count: req.Length}
	}
	d.transfers.Add(1)
	d.mu.Unlock()
	defer d.transfers.Done()

	budget := 5*time.Second + time.Duration(req.Length/(1<<20))*2*time.Second
	data, err := d.ep.RecvBulk(from, req.TransferID, budget)
	if err != nil {
		if errors.Is(err, bulk.ErrConsumed) {
			// A duplicated announcement raced us to the bytes; confirm
			// only once the racing handler's apply is visible.
			d.mu.Lock()
			applied := d.handoffApplied[req.RegionID]
			d.mu.Unlock()
			if applied {
				return &wire.DataResp{Status: wire.StatusOK, Count: req.Length}
			}
			return &wire.DataResp{Status: wire.StatusInvalid}
		}
		d.logf("imd %s: receiving handoff page from %s: %v", d.Addr(), from, err)
		return &wire.DataResp{Status: wire.StatusInvalid}
	}
	if req.Crc != 0 && wire.Checksum(data) != req.Crc {
		// A corrupt handoff page must not become the region's new home:
		// refusing makes the sender report the grant failed, so the
		// manager frees this copy and the client re-fetches from disk.
		d.mu.Lock()
		d.checksumRejects++
		d.mu.Unlock()
		return &wire.DataResp{Status: wire.StatusInvalid}
	}
	d.mu.Lock()
	defer d.mu.Unlock()
	if !d.pool.Has(req.RegionID) {
		return &wire.DataResp{Status: wire.StatusNotFound}
	}
	n, err := d.pool.Write(req.RegionID, 0, data)
	if err != nil {
		return &wire.DataResp{Status: wire.StatusInvalid}
	}
	d.handoffApplied[req.RegionID] = true
	d.writes++
	d.writeBytes += int64(n)
	return &wire.DataResp{Status: wire.StatusOK, Count: uint64(n)}
}

// supersededLocked reports whether req's write has already been applied
// or overwritten by a newer write to the same region. WriteSeq zero is
// unordered and never superseded. Caller holds d.mu.
func (d *Daemon) supersededLocked(req *wire.WriteReq) bool {
	return req.WriteSeq != 0 && req.WriteSeq <= d.lastWriteSeq[req.RegionID]
}
