package imd

import (
	"bytes"
	"math/rand"
	"sync"
	"testing"
	"time"

	"dodo/internal/bulk"
	"dodo/internal/transport"
	"dodo/internal/wire"
)

func fastEp() bulk.Config {
	return bulk.Config{
		CallTimeout:   150 * time.Millisecond,
		CallRetries:   4,
		WindowTimeout: 80 * time.Millisecond,
		NackDelay:     30 * time.Millisecond,
	}
}

// fakeCMD records host status reports and plays the manager's side of
// the graceful-reclaim handoff: offers are answered with the grants
// staged via setGrant, outcomes are recorded in arrival order.
type fakeCMD struct {
	ep *bulk.Endpoint
	mu sync.Mutex
	// statuses in arrival order
	statuses []wire.HostStatus
	// grants maps an offered region id to its pre-allocated target.
	grants map[uint64]wire.Region
	offers []wire.HandoffOffer
	dones  []wire.HandoffDone
}

func newFakeCMD(n *transport.Network) *fakeCMD {
	c := &fakeCMD{grants: map[uint64]wire.Region{}}
	c.ep = bulk.NewEndpoint(n.Host("cmd"), fastEp(), func(from string, msg wire.Message) wire.Message {
		if hs, ok := msg.(*wire.HostStatus); ok {
			c.mu.Lock()
			c.statuses = append(c.statuses, *hs)
			c.mu.Unlock()
			return &wire.HostStatusAck{Status: wire.StatusOK}
		}
		if off, ok := msg.(*wire.HandoffOffer); ok {
			acc := &wire.HandoffAccept{Status: wire.StatusOK}
			c.mu.Lock()
			c.offers = append(c.offers, *off)
			for _, r := range off.Regions {
				if tgt, ok := c.grants[r.RegionID]; ok {
					acc.Grants = append(acc.Grants, wire.HandoffGrant{OldRegionID: r.RegionID, Target: tgt})
				}
			}
			c.mu.Unlock()
			return acc
		}
		if dn, ok := msg.(*wire.HandoffDone); ok {
			c.mu.Lock()
			c.dones = append(c.dones, *dn)
			c.mu.Unlock()
			return &wire.HostStatusAck{Status: wire.StatusOK}
		}
		return nil
	})
	return c
}

// setGrant stages the target the next HandoffOffer mentioning oldID
// will be granted.
func (c *fakeCMD) setGrant(oldID uint64, target wire.Region) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.grants[oldID] = target
}

// handoffOutcomes snapshots the recorded HandoffDone reports.
func (c *fakeCMD) handoffOutcomes() []wire.HandoffDone {
	c.mu.Lock()
	defer c.mu.Unlock()
	return append([]wire.HandoffDone(nil), c.dones...)
}

func (c *fakeCMD) lastStatus() (wire.HostStatus, bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if len(c.statuses) == 0 {
		return wire.HostStatus{}, false
	}
	return c.statuses[len(c.statuses)-1], true
}

type rig struct {
	n   *transport.Network
	cmd *fakeCMD
	d   *Daemon
	cli *bulk.Endpoint
}

func newRig(t *testing.T, poolSize uint64) *rig {
	t.Helper()
	n := transport.NewNetwork(transport.WithMTU(1500))
	cmd := newFakeCMD(n)
	d := New(n.Host("imd1"), Config{
		ManagerAddr:    "cmd",
		PoolSize:       poolSize,
		Epoch:          3,
		StatusInterval: 50 * time.Millisecond,
		Endpoint:       fastEp(),
	})
	cli := bulk.NewEndpoint(n.Host("client"), fastEp(), nil)
	t.Cleanup(func() { d.Close(); cli.Close(); cmd.ep.Close() })
	return &rig{n: n, cmd: cmd, d: d, cli: cli}
}

// allocRegion asks the daemon directly (playing the manager's role).
func allocRegion(t *testing.T, r *rig, id, size uint64) *wire.IMDAllocResp {
	t.Helper()
	resp, err := r.cmd.ep.Call("imd1", &wire.IMDAllocReq{RegionID: id, Length: size})
	if err != nil {
		t.Fatalf("IMDAllocReq: %v", err)
	}
	return resp.(*wire.IMDAllocResp)
}

// writeRegion performs the full client write flow.
func writeRegion(t *testing.T, r *rig, id uint64, offset uint64, data []byte) *wire.DataResp {
	t.Helper()
	return writeRegionSeq(t, r, id, offset, data, 0)
}

// writeRegionSeq is writeRegion with an explicit write sequence number.
func writeRegionSeq(t *testing.T, r *rig, id uint64, offset uint64, data []byte, seq uint64) *wire.DataResp {
	t.Helper()
	xfer := r.cli.NextTransferID()
	var wg sync.WaitGroup
	var sendErr error
	wg.Add(1)
	go func() {
		defer wg.Done()
		sendErr = r.cli.SendBulk("imd1", xfer, data)
	}()
	resp, err := r.cli.CallT("imd1", &wire.WriteReq{
		RegionID: id, Epoch: 3, Offset: offset, Length: uint64(len(data)),
		TransferID: xfer, WriteSeq: seq,
	}, 2*time.Second, 2)
	wg.Wait()
	if err != nil {
		t.Fatalf("WriteReq: %v", err)
	}
	if sendErr != nil {
		t.Fatalf("SendBulk: %v", sendErr)
	}
	return resp.(*wire.DataResp)
}

// readRegion performs the full client read flow.
func readRegion(t *testing.T, r *rig, id uint64, offset, length uint64) (*wire.DataResp, []byte) {
	t.Helper()
	resp, err := r.cli.CallT("imd1", &wire.ReadReq{
		RegionID: id, Epoch: 3, Offset: offset, Length: length,
	}, 2*time.Second, 2)
	if err != nil {
		t.Fatalf("ReadReq: %v", err)
	}
	dr := resp.(*wire.DataResp)
	if dr.Status != wire.StatusOK {
		return dr, nil
	}
	data, err := r.cli.RecvBulk("imd1", dr.TransferID, 10*time.Second)
	if err != nil {
		t.Fatalf("RecvBulk: %v", err)
	}
	return dr, data
}

func TestAnnouncesIdleOnStartup(t *testing.T) {
	r := newRig(t, 1<<20)
	deadline := time.Now().Add(2 * time.Second)
	for time.Now().Before(deadline) {
		if hs, ok := r.cmd.lastStatus(); ok {
			if hs.State != wire.HostIdle || hs.Epoch != 3 || hs.AvailBytes != 1<<20 {
				t.Fatalf("startup status = %+v", hs)
			}
			return
		}
		time.Sleep(5 * time.Millisecond)
	}
	t.Fatal("no startup HostStatus reached the manager")
}

func TestAllocFreeLifecycle(t *testing.T) {
	r := newRig(t, 1<<20)
	ar := allocRegion(t, r, 1, 4096)
	if ar.Status != wire.StatusOK || ar.Epoch != 3 {
		t.Fatalf("alloc = %+v", ar)
	}
	if ar.AvailBytes != 1<<20-4096 {
		t.Fatalf("piggybacked avail = %d, want %d", ar.AvailBytes, 1<<20-4096)
	}
	// Duplicate alloc: idempotent.
	dup := allocRegion(t, r, 1, 4096)
	if dup.Status != wire.StatusOK {
		t.Fatalf("duplicate alloc = %v", dup.Status)
	}
	if got := r.d.Stats().Regions; got != 1 {
		t.Fatalf("Regions = %d, want 1", got)
	}
	resp, err := r.cmd.ep.Call("imd1", &wire.IMDFreeReq{RegionID: 1})
	if err != nil {
		t.Fatal(err)
	}
	fr := resp.(*wire.IMDFreeResp)
	if fr.Status != wire.StatusOK || fr.AvailBytes != 1<<20 {
		t.Fatalf("free = %+v", fr)
	}
	// Double free reports not-found.
	resp, err = r.cmd.ep.Call("imd1", &wire.IMDFreeReq{RegionID: 1})
	if err != nil {
		t.Fatal(err)
	}
	if st := resp.(*wire.IMDFreeResp).Status; st != wire.StatusNotFound {
		t.Fatalf("double free = %v", st)
	}
}

func TestAllocExhaustion(t *testing.T) {
	r := newRig(t, 8192)
	if ar := allocRegion(t, r, 1, 8192); ar.Status != wire.StatusOK {
		t.Fatalf("alloc = %v", ar.Status)
	}
	if ar := allocRegion(t, r, 2, 1); ar.Status != wire.StatusNoMem {
		t.Fatalf("over-alloc = %v, want StatusNoMem", ar.Status)
	}
}

func TestWriteThenReadRoundTrip(t *testing.T) {
	r := newRig(t, 1<<20)
	allocRegion(t, r, 1, 100<<10)
	data := make([]byte, 100<<10)
	rand.New(rand.NewSource(1)).Read(data)

	wr := writeRegion(t, r, 1, 0, data)
	if wr.Status != wire.StatusOK || wr.Count != uint64(len(data)) {
		t.Fatalf("write = %+v", wr)
	}
	dr, got := readRegion(t, r, 1, 0, uint64(len(data)))
	if dr.Status != wire.StatusOK || dr.Count != uint64(len(data)) {
		t.Fatalf("read = %+v", dr)
	}
	if !bytes.Equal(got, data) {
		t.Fatal("read data mismatch")
	}
	s := r.d.Stats()
	if s.Reads != 1 || s.Writes != 1 || s.ReadBytes != int64(len(data)) {
		t.Fatalf("stats = %+v", s)
	}
}

func TestPartialReadAndOffsetAccess(t *testing.T) {
	r := newRig(t, 1<<20)
	allocRegion(t, r, 1, 1000)
	payload := bytes.Repeat([]byte("abcd"), 250)
	writeRegion(t, r, 1, 0, payload)

	// Offset read in the middle.
	dr, got := readRegion(t, r, 1, 4, 8)
	if dr.Status != wire.StatusOK || string(got) != "abcdabcd" {
		t.Fatalf("offset read = %+v %q", dr, got)
	}
	// Short read at the tail (mread semantics, §3.2).
	dr, got = readRegion(t, r, 1, 990, 100)
	if dr.Status != wire.StatusOK || len(got) != 10 {
		t.Fatalf("tail read = %+v, %d bytes; want 10", dr, len(got))
	}
	// Offset beyond the end: invalid.
	dr, _ = readRegion(t, r, 1, 1001, 1)
	if dr.Status != wire.StatusInvalid {
		t.Fatalf("read past end = %v, want StatusInvalid", dr.Status)
	}
}

func TestStaleEpochRejected(t *testing.T) {
	r := newRig(t, 1<<20)
	allocRegion(t, r, 1, 4096)
	resp, err := r.cli.Call("imd1", &wire.ReadReq{RegionID: 1, Epoch: 2, Offset: 0, Length: 10})
	if err != nil {
		t.Fatal(err)
	}
	if st := resp.(*wire.DataResp).Status; st != wire.StatusStale {
		t.Fatalf("stale-epoch read = %v, want StatusStale", st)
	}
	if got := r.d.Stats().StaleRejects; got != 1 {
		t.Fatalf("StaleRejects = %d, want 1", got)
	}
}

func TestReadUnknownRegion(t *testing.T) {
	r := newRig(t, 1<<20)
	resp, err := r.cli.Call("imd1", &wire.ReadReq{RegionID: 99, Epoch: 3, Offset: 0, Length: 10})
	if err != nil {
		t.Fatal(err)
	}
	if st := resp.(*wire.DataResp).Status; st != wire.StatusNotFound {
		t.Fatalf("read unknown region = %v, want StatusNotFound", st)
	}
}

func TestWriteAtOffset(t *testing.T) {
	r := newRig(t, 1<<20)
	allocRegion(t, r, 1, 100)
	writeRegion(t, r, 1, 0, bytes.Repeat([]byte{'x'}, 100))
	wr := writeRegion(t, r, 1, 50, []byte("HELLO"))
	if wr.Status != wire.StatusOK || wr.Count != 5 {
		t.Fatalf("offset write = %+v", wr)
	}
	_, got := readRegion(t, r, 1, 48, 9)
	if string(got) != "xxHELLOxx" {
		t.Fatalf("after offset write read = %q", got)
	}
}

func TestDrainAnnouncesBusyAndRefusesWork(t *testing.T) {
	r := newRig(t, 1<<20)
	allocRegion(t, r, 1, 4096)
	r.d.Drain()
	deadline := time.Now().Add(2 * time.Second)
	var last wire.HostStatus
	for time.Now().Before(deadline) {
		if hs, ok := r.cmd.lastStatus(); ok && hs.State == wire.HostBusy {
			last = hs
			break
		}
		time.Sleep(5 * time.Millisecond)
	}
	if last.State != wire.HostBusy {
		t.Fatal("drain did not announce HostBusy to the manager")
	}
}

func TestStatusLoopRefreshesHints(t *testing.T) {
	r := newRig(t, 1<<20)
	allocRegion(t, r, 1, 1<<19)
	// Wait for a periodic status reflecting the allocation.
	deadline := time.Now().Add(3 * time.Second)
	for time.Now().Before(deadline) {
		if hs, ok := r.cmd.lastStatus(); ok && hs.AvailBytes == 1<<19 {
			return
		}
		time.Sleep(10 * time.Millisecond)
	}
	t.Fatal("status loop never reported the post-allocation availability")
}

func TestReadSnapshotIsolatedFromLaterWrites(t *testing.T) {
	// A read's bulk push must carry the bytes as of the read, even if a
	// write lands while the transfer is in flight.
	r := newRig(t, 1<<20)
	allocRegion(t, r, 1, 64<<10)
	first := bytes.Repeat([]byte{0xAA}, 64<<10)
	writeRegion(t, r, 1, 0, first)

	dr, err := r.cli.CallT("imd1", &wire.ReadReq{RegionID: 1, Epoch: 3, Offset: 0, Length: 64 << 10}, 2*time.Second, 2)
	if err != nil {
		t.Fatal(err)
	}
	xfer := dr.(*wire.DataResp).TransferID
	// Overwrite while the push may still be in flight.
	writeRegion(t, r, 1, 0, bytes.Repeat([]byte{0xBB}, 64<<10))
	got, err := r.cli.RecvBulk("imd1", xfer, 10*time.Second)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, first) {
		t.Fatal("read transfer was not snapshot-isolated from the concurrent write")
	}
}

func TestConcurrentClientReads(t *testing.T) {
	r := newRig(t, 1<<20)
	allocRegion(t, r, 1, 256<<10)
	data := make([]byte, 256<<10)
	rand.New(rand.NewSource(2)).Read(data)
	writeRegion(t, r, 1, 0, data)

	const readers = 6
	var wg sync.WaitGroup
	errs := make([]error, readers)
	for i := 0; i < readers; i++ {
		i := i
		wg.Add(1)
		go func() {
			defer wg.Done()
			cli := bulk.NewEndpoint(r.n.Host("reader"+string(rune('0'+i))), fastEp(), nil)
			defer cli.Close()
			resp, err := cli.CallT("imd1", &wire.ReadReq{RegionID: 1, Epoch: 3, Offset: uint64(i * 1000), Length: 32 << 10}, 2*time.Second, 2)
			if err != nil {
				errs[i] = err
				return
			}
			dr := resp.(*wire.DataResp)
			got, err := cli.RecvBulk("imd1", dr.TransferID, 10*time.Second)
			if err != nil {
				errs[i] = err
				return
			}
			if !bytes.Equal(got, data[i*1000:i*1000+32<<10]) {
				errs[i] = bulk.ErrRejected
			}
		}()
	}
	wg.Wait()
	for i, err := range errs {
		if err != nil {
			t.Fatalf("reader %d: %v", i, err)
		}
	}
}

func BenchmarkServeRead8KB(b *testing.B) {
	n := transport.NewNetwork(transport.WithMTU(1500))
	cmdEp := bulk.NewEndpoint(n.Host("cmd"), fastEp(), func(string, wire.Message) wire.Message {
		return &wire.HostStatusAck{Status: wire.StatusOK}
	})
	defer cmdEp.Close()
	d := New(n.Host("imd1"), Config{ManagerAddr: "cmd", PoolSize: 1 << 20, Epoch: 1, Endpoint: fastEp()})
	defer d.Close()
	cli := bulk.NewEndpoint(n.Host("client"), fastEp(), nil)
	defer cli.Close()
	if _, err := cmdEp.Call("imd1", &wire.IMDAllocReq{RegionID: 1, Length: 8 << 10}); err != nil {
		b.Fatal(err)
	}
	b.SetBytes(8 << 10)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		resp, err := cli.Call("imd1", &wire.ReadReq{RegionID: 1, Epoch: 1, Offset: 0, Length: 8 << 10})
		if err != nil {
			b.Fatal(err)
		}
		dr := resp.(*wire.DataResp)
		if _, err := cli.RecvBulk("imd1", dr.TransferID, 10*time.Second); err != nil {
			b.Fatal(err)
		}
	}
}

// §4.1: on reclaim the imd "handles the signal by completing the
// ongoing transfers and exiting". A read whose bulk push is in flight
// when Drain arrives must still deliver its data.
func TestDrainCompletesOngoingTransfers(t *testing.T) {
	r := newRig(t, 1<<20)
	allocRegion(t, r, 1, 512<<10)
	data := make([]byte, 512<<10)
	rand.New(rand.NewSource(9)).Read(data)
	writeRegion(t, r, 1, 0, data)

	// Start the read: the imd answers DataResp and begins blasting.
	resp, err := r.cli.CallT("imd1", &wire.ReadReq{RegionID: 1, Epoch: 3, Offset: 0, Length: 512 << 10}, 2*time.Second, 2)
	if err != nil {
		t.Fatal(err)
	}
	dr := resp.(*wire.DataResp)
	if dr.Status != wire.StatusOK {
		t.Fatalf("read = %v", dr.Status)
	}
	// Drain concurrently with the in-flight push.
	drained := make(chan struct{})
	go func() {
		r.d.Drain()
		close(drained)
	}()
	got, err := r.cli.RecvBulk("imd1", dr.TransferID, 15*time.Second)
	if err != nil {
		t.Fatalf("RecvBulk during drain: %v", err)
	}
	if !bytes.Equal(got, data) {
		t.Fatal("drain corrupted the in-flight transfer")
	}
	select {
	case <-drained:
	case <-time.After(10 * time.Second):
		t.Fatal("Drain never completed")
	}
	// After the drain, new work is refused.
	resp, err = r.cli.Call("imd1", &wire.ReadReq{RegionID: 1, Epoch: 3, Offset: 0, Length: 16})
	if err == nil {
		if st := resp.(*wire.DataResp).Status; st == wire.StatusOK {
			t.Fatal("drained imd accepted new work")
		}
	}
}

// TestReplayedWriteCannotRollBack: an announcement replayed by the
// network with an old WriteSeq is confirmed but never applied, so a
// delayed duplicate cannot roll the region back to bytes the client has
// already overwritten. A fresh region restarts the gate.
func TestReplayedWriteCannotRollBack(t *testing.T) {
	r := newRig(t, 1<<20)
	if ar := allocRegion(t, r, 1, 8192); ar.Status != wire.StatusOK {
		t.Fatalf("alloc = %v", ar.Status)
	}
	old := bytes.Repeat([]byte{0xaa}, 8192)
	cur := bytes.Repeat([]byte{0xbb}, 8192)
	if dr := writeRegionSeq(t, r, 1, 0, old, 1); dr.Status != wire.StatusOK {
		t.Fatalf("write seq 1 = %v", dr.Status)
	}
	if dr := writeRegionSeq(t, r, 1, 0, cur, 2); dr.Status != wire.StatusOK {
		t.Fatalf("write seq 2 = %v", dr.Status)
	}

	// The replay: same old bytes, stale sequence, a fresh transfer id
	// (the network replays the announcement; our endpoint can't reuse a
	// consumed transfer, so the replayed blast rides a new id).
	dr := writeRegionSeq(t, r, 1, 0, old, 1)
	if dr.Status != wire.StatusOK || dr.Count != 8192 {
		t.Fatalf("replayed write = %v count %d, want confirmed in full", dr.Status, dr.Count)
	}
	if _, data := readRegion(t, r, 1, 0, 8192); !bytes.Equal(data, cur) {
		t.Fatal("replayed announcement rolled the region back to stale bytes")
	}

	// Freeing and re-creating the region restarts the gate: sequence
	// numbering begins again for the new incarnation.
	if resp, err := r.cmd.ep.Call("imd1", &wire.IMDFreeReq{RegionID: 1}); err != nil {
		t.Fatalf("free: %v", err)
	} else if st := resp.(*wire.IMDFreeResp).Status; st != wire.StatusOK {
		t.Fatalf("free = %v", st)
	}
	if ar := allocRegion(t, r, 1, 8192); ar.Status != wire.StatusOK {
		t.Fatalf("re-alloc = %v", ar.Status)
	}
	if dr := writeRegionSeq(t, r, 1, 0, old, 1); dr.Status != wire.StatusOK {
		t.Fatalf("write seq 1 on fresh region = %v", dr.Status)
	}
	if _, data := readRegion(t, r, 1, 0, 8192); !bytes.Equal(data, old) {
		t.Fatal("fresh region refused its first write")
	}
}
