package imd

import (
	"sync"
	"testing"
	"time"

	"dodo/internal/bulk"
	"dodo/internal/simnet"
	"dodo/internal/transport"
	"dodo/internal/wire"
)

// invCMD is a fake manager for the crash-recovery protocol: it stamps a
// settable incarnation into announce acks (simulating restarts by
// bumping it) and records the inventory re-reports that arrive.
type invCMD struct {
	ep *bulk.Endpoint

	mu       sync.Mutex
	inc      uint64
	statuses int
	reports  []wire.InventoryReport
}

func newInvCMD(n *transport.Network, inc uint64) *invCMD {
	c := &invCMD{inc: inc}
	c.ep = bulk.NewEndpoint(n.Host("cmd"), fastEp(), func(from string, msg wire.Message) wire.Message {
		c.mu.Lock()
		defer c.mu.Unlock()
		switch m := msg.(type) {
		case *wire.HostStatus:
			c.statuses++
			return &wire.HostStatusAck{Status: wire.StatusOK, Incarnation: c.inc}
		case *wire.InventoryReport:
			c.reports = append(c.reports, *m)
			return &wire.InventoryAck{Status: wire.StatusOK, Incarnation: c.inc}
		default:
			_ = m
			return nil
		}
	})
	return c
}

func (c *invCMD) setIncarnation(inc uint64) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.inc = inc
}

func (c *invCMD) snapshot() (int, []wire.InventoryReport) {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.statuses, append([]wire.InventoryReport(nil), c.reports...)
}

// TestInventoryReportSurvivesLossyLink: an imd that learns of a manager
// restart through an announce ack must push its full inventory — keys,
// owners, write seqs — and keep retrying under its seeded backoff until
// the new incarnation acknowledges it, even when the link is dropping a
// third of all frames. First contact with an empty pool must NOT
// produce a report (there is nothing the manager could be missing).
func TestInventoryReportSurvivesLossyLink(t *testing.T) {
	n := transport.NewNetwork(transport.WithMTU(1500))
	cmd := newInvCMD(n, 1)
	d := New(n.Host("imd1"), Config{
		ManagerAddr:    "cmd",
		PoolSize:       1 << 20,
		Epoch:          3,
		StatusInterval: 50 * time.Millisecond,
		Endpoint:       fastEp(),
	})
	t.Cleanup(func() { d.Close(); cmd.ep.Close() })

	// Let a few announce cycles pass under incarnation 1.
	deadline := time.Now().Add(5 * time.Second)
	for time.Now().Before(deadline) {
		if st, _ := cmd.snapshot(); st >= 3 {
			break
		}
		time.Sleep(10 * time.Millisecond)
	}
	if _, reports := cmd.snapshot(); len(reports) != 0 {
		t.Fatalf("first contact with an empty pool produced %d inventory reports, want 0", len(reports))
	}

	// Two regions with directory metadata, as the manager's alloc path
	// would create them.
	keyA := wire.RegionKey{Inode: 11, Offset: 0, ClientID: 1}
	keyB := wire.RegionKey{Inode: 11, Offset: 4096, ClientID: 1}
	for i, alloc := range []*wire.IMDAllocReq{
		{RegionID: 7, Length: 4096, Key: keyA, Client: "client-a"},
		{RegionID: 8, Length: 2048, Key: keyB, Client: "client-a"},
	} {
		resp, err := cmd.ep.Call("imd1", alloc)
		if err != nil {
			t.Fatalf("alloc %d: %v", i, err)
		}
		if ar := resp.(*wire.IMDAllocResp); ar.Status != wire.StatusOK {
			t.Fatalf("alloc %d: status %v", i, ar.Status)
		}
	}

	// Manager "restarts" behind a lossy link: the next announce ack
	// carries incarnation 2, and the re-report must fight through the
	// loss until acked.
	n.SetEndpointFaults("imd1", simnet.Faults{LossRate: 0.35, Seed: 7})
	defer n.ClearEndpointFaults("imd1")
	cmd.setIncarnation(2)

	var got *wire.InventoryReport
	deadline = time.Now().Add(15 * time.Second)
	for time.Now().Before(deadline) && got == nil {
		_, reports := cmd.snapshot()
		for i := range reports {
			if reports[i].Incarnation == 2 {
				got = &reports[i]
				break
			}
		}
		time.Sleep(20 * time.Millisecond)
	}
	if got == nil {
		t.Fatal("no inventory report for incarnation 2 arrived over the lossy link")
	}
	if got.HostAddr != "imd1" || got.Epoch != 3 {
		t.Fatalf("report identity = %s/%d, want imd1/3", got.HostAddr, got.Epoch)
	}
	byID := make(map[uint64]wire.InventoryRegion)
	for _, r := range got.Regions {
		byID[r.RegionID] = r
	}
	if len(byID) != 2 {
		t.Fatalf("report carries %d regions, want 2: %+v", len(byID), got.Regions)
	}
	a, b := byID[7], byID[8]
	if a.Key != keyA || a.Client != "client-a" || a.Length != 4096 {
		t.Fatalf("region 7 metadata wrong: %+v", a)
	}
	if b.Key != keyB || b.Client != "client-a" || b.Length != 2048 {
		t.Fatalf("region 8 metadata wrong: %+v", b)
	}

	// The daemon records the acknowledged report; once acked it must not
	// re-report the same incarnation on later announce cycles.
	deadline = time.Now().Add(5 * time.Second)
	for time.Now().Before(deadline) && d.Stats().InventoryReports == 0 {
		time.Sleep(10 * time.Millisecond)
	}
	if st := d.Stats(); st.InventoryReports == 0 {
		t.Fatalf("daemon never counted the acknowledged report: %+v", st)
	}
}
