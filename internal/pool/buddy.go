package pool

import (
	"fmt"
	"math/bits"
)

// Buddy is a binary buddy allocator: every allocation is rounded up to a
// power of two and split recursively from the pool; frees merge with the
// block's buddy eagerly. It trades internal fragmentation (round-up
// waste) for zero external fragmentation growth — the scheme the paper
// planned to switch to if first-fit fragmentation became a problem.
type Buddy struct {
	size     uint64
	minOrder uint
	maxOrder uint
	// free[o] holds offsets of free blocks of size 1<<o.
	free map[uint][]uint64
	// allocOrder remembers each allocation's order for Free.
	allocOrder map[uint64]uint
	failures   int64
}

var _ Allocator = (*Buddy)(nil)

// NewBuddy builds a buddy allocator over size bytes, which must be a
// power of two. minBlock is the smallest block handed out (rounded up to
// a power of two, at least 64).
func NewBuddy(size uint64, minBlock uint64) (*Buddy, error) {
	if size == 0 || size&(size-1) != 0 {
		return nil, fmt.Errorf("pool: buddy size %d is not a power of two", size)
	}
	if minBlock < 64 {
		minBlock = 64
	}
	minOrder := uint(bits.Len64(minBlock - 1))
	maxOrder := uint(bits.Len64(size - 1))
	b := &Buddy{
		size:       size,
		minOrder:   minOrder,
		maxOrder:   maxOrder,
		free:       make(map[uint][]uint64),
		allocOrder: make(map[uint64]uint),
	}
	b.free[maxOrder] = []uint64{0}
	return b, nil
}

// Size returns the pool size.
func (b *Buddy) Size() uint64 { return b.size }

func (b *Buddy) orderFor(size uint64) uint {
	o := uint(bits.Len64(size - 1))
	if o < b.minOrder {
		o = b.minOrder
	}
	return o
}

// Alloc reserves a power-of-two block of at least size bytes.
func (b *Buddy) Alloc(size uint64) (uint64, bool) {
	if size == 0 || size > b.size {
		b.failures++
		return 0, false
	}
	want := b.orderFor(size)
	// Find the smallest order >= want with a free block.
	o := want
	for o <= b.maxOrder && len(b.free[o]) == 0 {
		o++
	}
	if o > b.maxOrder {
		b.failures++
		return 0, false
	}
	// Pop and split down to the wanted order.
	off := b.pop(o)
	for o > want {
		o--
		buddy := off + (uint64(1) << o)
		b.free[o] = append(b.free[o], buddy)
	}
	b.allocOrder[off] = want
	return off, true
}

func (b *Buddy) pop(o uint) uint64 {
	list := b.free[o]
	off := list[len(list)-1]
	b.free[o] = list[:len(list)-1]
	return off
}

// Free releases a block, merging it with its buddy transitively.
func (b *Buddy) Free(off uint64) error {
	o, ok := b.allocOrder[off]
	if !ok {
		return fmt.Errorf("%w: %d", ErrBadFree, off)
	}
	delete(b.allocOrder, off)
	for o < b.maxOrder {
		buddy := off ^ (uint64(1) << o)
		if !b.removeFree(o, buddy) {
			break
		}
		if buddy < off {
			off = buddy
		}
		o++
	}
	b.free[o] = append(b.free[o], off)
	return nil
}

func (b *Buddy) removeFree(o uint, off uint64) bool {
	list := b.free[o]
	for i, v := range list {
		if v == off {
			list[i] = list[len(list)-1]
			b.free[o] = list[:len(list)-1]
			return true
		}
	}
	return false
}

// FreeBytes returns the total free space (in block granularity, so it
// includes round-up waste of nothing — internal waste is attributed to
// allocations).
func (b *Buddy) FreeBytes() uint64 {
	var total uint64
	for o, list := range b.free {
		total += uint64(len(list)) << o
	}
	return total
}

// LargestFree returns the largest free block size.
func (b *Buddy) LargestFree() uint64 {
	var max uint64
	for o, list := range b.free {
		if len(list) > 0 && uint64(1)<<o > max {
			max = uint64(1) << o
		}
	}
	return max
}

// Failures returns how many allocations have failed.
func (b *Buddy) Failures() int64 { return b.failures }

// InternalWaste returns the bytes lost to power-of-two round-up across
// live allocations, given the exact sizes requested. The caller supplies
// the requested sizes keyed by offset (the Pool tracks them).
func (b *Buddy) InternalWaste(requested map[uint64]uint64) uint64 {
	var waste uint64
	for off, o := range b.allocOrder {
		if req, ok := requested[off]; ok {
			waste += (uint64(1) << o) - req
		}
	}
	return waste
}
