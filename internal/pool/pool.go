package pool

import (
	"errors"
	"fmt"
	"sort"
)

// Pool couples an Allocator with the actual byte storage and a region
// directory, providing the store the idle memory daemon serves remote
// memory regions from. It is not safe for concurrent use; the imd
// serializes access (its serving thread owns the pool).
type Pool struct {
	buf   []byte
	alloc Allocator
	// regions maps region id -> live extent.
	regions map[uint64]span
}

type span struct {
	off  uint64
	size uint64
}

// Errors returned by Pool operations.
var (
	ErrNoSpace    = errors.New("pool: insufficient free space")
	ErrNoRegion   = errors.New("pool: no such region")
	ErrDupRegion  = errors.New("pool: region id already exists")
	ErrOutOfRange = errors.New("pool: access beyond region bounds")
)

// New builds a pool of size bytes using the given allocator (whose Size
// must match). The backing slab is allocated eagerly, as the imd does on
// startup (§4.2).
func New(alloc Allocator) *Pool {
	return &Pool{
		buf:     make([]byte, alloc.Size()),
		alloc:   alloc,
		regions: make(map[uint64]span),
	}
}

// NewFirstFitPool is shorthand for the paper's default configuration.
func NewFirstFitPool(size uint64) *Pool { return New(NewFirstFit(size)) }

// Create carves a region of size bytes under id. The allocated block
// moves into p.regions; Delete frees it back to the allocator.
//
// dodo:transfers(palloc)
func (p *Pool) Create(id uint64, size uint64) (offset uint64, err error) {
	if _, dup := p.regions[id]; dup {
		return 0, fmt.Errorf("%w: %d", ErrDupRegion, id)
	}
	if size == 0 {
		return 0, ErrBadSize
	}
	off, ok := p.alloc.Alloc(size)
	if !ok {
		return 0, fmt.Errorf("%w: want %d, largest free %d", ErrNoSpace, size, p.alloc.LargestFree())
	}
	p.regions[id] = span{off: off, size: size}
	return off, nil
}

// Delete releases a region. The memory is marked free and reused, never
// returned to the OS.
func (p *Pool) Delete(id uint64) error {
	s, ok := p.regions[id]
	if !ok {
		return fmt.Errorf("%w: %d", ErrNoRegion, id)
	}
	delete(p.regions, id)
	return p.alloc.Free(s.off)
}

// Has reports whether a region exists.
func (p *Pool) Has(id uint64) bool {
	_, ok := p.regions[id]
	return ok
}

// RegionSize returns a region's length.
func (p *Pool) RegionSize(id uint64) (uint64, bool) {
	s, ok := p.regions[id]
	return s.size, ok
}

// Read copies up to len bytes at offset within region id, returning the
// bytes actually available (short reads at the region tail mirror the
// mread contract of §3.2).
func (p *Pool) Read(id uint64, offset uint64, length uint64) ([]byte, error) {
	s, ok := p.regions[id]
	if !ok {
		return nil, fmt.Errorf("%w: %d", ErrNoRegion, id)
	}
	if offset > s.size {
		return nil, fmt.Errorf("%w: offset %d in %d-byte region", ErrOutOfRange, offset, s.size)
	}
	if offset+length > s.size {
		length = s.size - offset
	}
	lo := s.off + offset
	return p.buf[lo : lo+length : lo+length], nil
}

// Write copies data into region id at offset, returning the bytes
// actually written (short writes at the tail mirror mwrite, §3.2).
func (p *Pool) Write(id uint64, offset uint64, data []byte) (int, error) {
	s, ok := p.regions[id]
	if !ok {
		return 0, fmt.Errorf("%w: %d", ErrNoRegion, id)
	}
	if offset > s.size {
		return 0, fmt.Errorf("%w: offset %d in %d-byte region", ErrOutOfRange, offset, s.size)
	}
	n := copy(p.buf[s.off+offset:s.off+s.size], data)
	return n, nil
}

// FreeBytes returns the allocator's free space.
func (p *Pool) FreeBytes() uint64 { return p.alloc.FreeBytes() }

// LargestFree returns the allocator's largest free block.
func (p *Pool) LargestFree() uint64 { return p.alloc.LargestFree() }

// Size returns the pool capacity.
func (p *Pool) Size() uint64 { return p.alloc.Size() }

// Regions returns the number of live regions.
func (p *Pool) Regions() int { return len(p.regions) }

// RegionIDs returns the ids of all live regions in ascending order.
func (p *Pool) RegionIDs() []uint64 {
	ids := make([]uint64, 0, len(p.regions))
	for id := range p.regions {
		ids = append(ids, id)
	}
	sort.Slice(ids, func(i, j int) bool { return ids[i] < ids[j] })
	return ids
}

// Allocator exposes the underlying allocator (for stats and ablations).
func (p *Pool) Allocator() Allocator { return p.alloc }
