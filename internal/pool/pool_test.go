package pool

import (
	"bytes"
	"errors"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestFirstFitBasicAllocFree(t *testing.T) {
	f := NewFirstFit(1000)
	off1, ok := f.Alloc(300)
	if !ok || off1 != 0 {
		t.Fatalf("first Alloc = %d, %v; want 0, true", off1, ok)
	}
	off2, ok := f.Alloc(300)
	if !ok || off2 != 300 {
		t.Fatalf("second Alloc = %d, %v; want 300, true", off2, ok)
	}
	if got := f.FreeBytes(); got != 400 {
		t.Fatalf("FreeBytes = %d, want 400", got)
	}
	if err := f.Free(off1); err != nil {
		t.Fatalf("Free: %v", err)
	}
	if got := f.FreeBytes(); got != 700 {
		t.Fatalf("FreeBytes after free = %d, want 700", got)
	}
	if err := f.Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestFirstFitPrefersLowestFit(t *testing.T) {
	f := NewFirstFit(1000)
	a, _ := f.Alloc(100) // [0,100)
	f.Alloc(100)         // [100,200)
	if err := f.Free(a); err != nil {
		t.Fatal(err)
	}
	// First fit must reuse the hole at 0, not extend at 200.
	got, ok := f.Alloc(50)
	if !ok || got != 0 {
		t.Fatalf("Alloc(50) = %d, %v; want 0 (first fit)", got, ok)
	}
}

func TestFirstFitExactFitDoesNotSplit(t *testing.T) {
	f := NewFirstFit(256)
	off, ok := f.Alloc(256)
	if !ok || off != 0 {
		t.Fatalf("Alloc(256) = %d, %v", off, ok)
	}
	if _, ok := f.Alloc(1); ok {
		t.Fatal("Alloc(1) on a full pool succeeded")
	}
	if f.LargestFree() != 0 || f.FreeBytes() != 0 {
		t.Fatalf("full pool reports free %d/largest %d", f.FreeBytes(), f.LargestFree())
	}
}

func TestFirstFitRejectsBadSizes(t *testing.T) {
	f := NewFirstFit(100)
	if _, ok := f.Alloc(0); ok {
		t.Fatal("Alloc(0) succeeded")
	}
	if _, ok := f.Alloc(101); ok {
		t.Fatal("Alloc beyond pool succeeded")
	}
	if f.Failures() != 2 {
		t.Fatalf("Failures = %d, want 2", f.Failures())
	}
}

func TestFirstFitDoubleFree(t *testing.T) {
	f := NewFirstFit(100)
	off, _ := f.Alloc(10)
	if err := f.Free(off); err != nil {
		t.Fatal(err)
	}
	if err := f.Free(off); !errors.Is(err, ErrBadFree) {
		t.Fatalf("double Free = %v, want ErrBadFree", err)
	}
	if err := f.Free(9999); !errors.Is(err, ErrBadFree) {
		t.Fatalf("Free of garbage = %v, want ErrBadFree", err)
	}
}

func TestFirstFitCoalesceRecoversLargeBlock(t *testing.T) {
	f := NewFirstFit(1000)
	f.SetCoalescePeriod(0) // disable periodic pass; rely on last-resort
	offs := make([]uint64, 0, 10)
	for i := 0; i < 10; i++ {
		off, ok := f.Alloc(100)
		if !ok {
			t.Fatalf("Alloc %d failed", i)
		}
		offs = append(offs, off)
	}
	for _, off := range offs {
		if err := f.Free(off); err != nil {
			t.Fatal(err)
		}
	}
	// Without coalescing the largest block is 100; the hint reflects that.
	if got := f.LargestFree(); got != 100 {
		t.Fatalf("LargestFree before coalesce = %d, want 100", got)
	}
	// A big allocation triggers the last-resort coalesce and succeeds.
	off, ok := f.Alloc(1000)
	if !ok || off != 0 {
		t.Fatalf("Alloc(1000) after frees = %d, %v; want last-resort coalesce to succeed", off, ok)
	}
	if err := f.Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestFirstFitPeriodicCoalesce(t *testing.T) {
	f := NewFirstFit(1000)
	f.SetCoalescePeriod(4)
	var offs []uint64
	for i := 0; i < 8; i++ {
		off, _ := f.Alloc(100)
		offs = append(offs, off)
	}
	for _, off := range offs[:4] {
		if err := f.Free(off); err != nil {
			t.Fatal(err)
		}
	}
	if f.Coalesces() == 0 {
		t.Fatal("periodic coalesce did not run after 4 frees")
	}
	if got := f.LargestFree(); got != 400 {
		t.Fatalf("LargestFree after periodic coalesce = %d, want 400", got)
	}
}

// Property: after any sequence of allocs and frees, invariants hold and
// accounting is exact.
func TestPropertyFirstFitInvariants(t *testing.T) {
	f := func(seed int64, ops uint8) bool {
		rng := rand.New(rand.NewSource(seed))
		const size = 1 << 16
		ff := NewFirstFit(size)
		live := map[uint64]uint64{} // off -> size
		var liveBytes uint64
		for i := 0; i < int(ops); i++ {
			if rng.Intn(2) == 0 || len(live) == 0 {
				n := uint64(rng.Intn(size/4) + 1)
				if off, ok := ff.Alloc(n); ok {
					live[off] = n
					liveBytes += n
				}
			} else {
				for off, n := range live {
					if err := ff.Free(off); err != nil {
						return false
					}
					liveBytes -= n
					delete(live, off)
					break
				}
			}
			if ff.FreeBytes() != size-liveBytes {
				return false
			}
			if ff.Validate() != nil {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

// Property: allocations never overlap.
func TestPropertyFirstFitNoOverlap(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		ff := NewFirstFit(1 << 14)
		type ext struct{ off, size uint64 }
		var live []ext
		for i := 0; i < 50; i++ {
			n := uint64(rng.Intn(1000) + 1)
			off, ok := ff.Alloc(n)
			if !ok {
				continue
			}
			for _, e := range live {
				if off < e.off+e.size && e.off < off+n {
					return false // overlap
				}
			}
			live = append(live, ext{off, n})
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

func TestBuddyBasic(t *testing.T) {
	b, err := NewBuddy(1024, 64)
	if err != nil {
		t.Fatal(err)
	}
	off1, ok := b.Alloc(100) // rounds to 128
	if !ok {
		t.Fatal("Alloc(100) failed")
	}
	off2, ok := b.Alloc(100)
	if !ok {
		t.Fatal("second Alloc(100) failed")
	}
	if off1 == off2 {
		t.Fatal("buddy handed out the same block twice")
	}
	if got := b.FreeBytes(); got != 1024-256 {
		t.Fatalf("FreeBytes = %d, want %d", got, 1024-256)
	}
	if err := b.Free(off1); err != nil {
		t.Fatal(err)
	}
	if err := b.Free(off2); err != nil {
		t.Fatal(err)
	}
	// After freeing both, merging must restore the full block.
	if got := b.LargestFree(); got != 1024 {
		t.Fatalf("LargestFree after merge = %d, want 1024", got)
	}
}

func TestBuddyRejectsNonPowerOfTwoSize(t *testing.T) {
	if _, err := NewBuddy(1000, 64); err == nil {
		t.Fatal("NewBuddy(1000) succeeded, want error")
	}
	if _, err := NewBuddy(0, 64); err == nil {
		t.Fatal("NewBuddy(0) succeeded, want error")
	}
}

func TestBuddyDoubleFree(t *testing.T) {
	b, _ := NewBuddy(1024, 64)
	off, _ := b.Alloc(64)
	if err := b.Free(off); err != nil {
		t.Fatal(err)
	}
	if err := b.Free(off); !errors.Is(err, ErrBadFree) {
		t.Fatalf("double Free = %v, want ErrBadFree", err)
	}
}

func TestBuddyExhaustion(t *testing.T) {
	b, _ := NewBuddy(1024, 64)
	count := 0
	for {
		if _, ok := b.Alloc(64); !ok {
			break
		}
		count++
	}
	if count != 16 {
		t.Fatalf("allocated %d 64-byte blocks from 1024, want 16", count)
	}
}

// Property: buddy never hands out overlapping blocks and merges fully on
// complete free.
func TestPropertyBuddyNoOverlapAndFullMerge(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		b, err := NewBuddy(1<<14, 64)
		if err != nil {
			return false
		}
		type ext struct{ off, size uint64 }
		live := map[uint64]ext{}
		for i := 0; i < 60; i++ {
			if rng.Intn(2) == 0 {
				n := uint64(rng.Intn(2000) + 1)
				if off, ok := b.Alloc(n); ok {
					// round up to the block size actually reserved
					blk := uint64(64)
					for blk < n {
						blk <<= 1
					}
					for _, e := range live {
						if off < e.off+e.size && e.off < off+blk {
							return false
						}
					}
					live[off] = ext{off, blk}
				}
			} else {
				for off := range live {
					if b.Free(off) != nil {
						return false
					}
					delete(live, off)
					break
				}
			}
		}
		for off := range live {
			if b.Free(off) != nil {
				return false
			}
		}
		return b.LargestFree() == 1<<14
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

func TestPoolCreateReadWriteDelete(t *testing.T) {
	p := NewFirstFitPool(1 << 16)
	if _, err := p.Create(1, 1000); err != nil {
		t.Fatal(err)
	}
	data := bytes.Repeat([]byte("dodo"), 250)
	n, err := p.Write(1, 0, data)
	if err != nil || n != 1000 {
		t.Fatalf("Write = %d, %v", n, err)
	}
	got, err := p.Read(1, 0, 1000)
	if err != nil || !bytes.Equal(got, data) {
		t.Fatalf("Read mismatch: %v", err)
	}
	// Offset read.
	got, err = p.Read(1, 4, 4)
	if err != nil || string(got) != "dodo" {
		t.Fatalf("offset Read = %q, %v", got, err)
	}
	if err := p.Delete(1); err != nil {
		t.Fatal(err)
	}
	if _, err := p.Read(1, 0, 1); !errors.Is(err, ErrNoRegion) {
		t.Fatalf("Read after delete = %v, want ErrNoRegion", err)
	}
}

func TestPoolShortReadsAndWritesAtTail(t *testing.T) {
	p := NewFirstFitPool(1 << 12)
	if _, err := p.Create(7, 100); err != nil {
		t.Fatal(err)
	}
	got, err := p.Read(7, 90, 50)
	if err != nil || len(got) != 10 {
		t.Fatalf("tail Read = %d bytes, %v; want 10 (short read)", len(got), err)
	}
	n, err := p.Write(7, 95, bytes.Repeat([]byte{1}, 50))
	if err != nil || n != 5 {
		t.Fatalf("tail Write = %d, %v; want 5 (short write)", n, err)
	}
	if _, err := p.Read(7, 101, 1); !errors.Is(err, ErrOutOfRange) {
		t.Fatalf("Read past end = %v, want ErrOutOfRange", err)
	}
	if _, err := p.Write(7, 101, []byte{1}); !errors.Is(err, ErrOutOfRange) {
		t.Fatalf("Write past end = %v, want ErrOutOfRange", err)
	}
}

func TestPoolDuplicateRegionID(t *testing.T) {
	p := NewFirstFitPool(1 << 12)
	if _, err := p.Create(1, 100); err != nil {
		t.Fatal(err)
	}
	if _, err := p.Create(1, 100); !errors.Is(err, ErrDupRegion) {
		t.Fatalf("duplicate Create = %v, want ErrDupRegion", err)
	}
}

func TestPoolExhaustionReportsNoSpace(t *testing.T) {
	p := NewFirstFitPool(1000)
	if _, err := p.Create(1, 900); err != nil {
		t.Fatal(err)
	}
	if _, err := p.Create(2, 200); !errors.Is(err, ErrNoSpace) {
		t.Fatalf("over-allocation = %v, want ErrNoSpace", err)
	}
	// Freed memory is reused, not returned to the OS (§4.2).
	if err := p.Delete(1); err != nil {
		t.Fatal(err)
	}
	if _, err := p.Create(2, 900); err != nil {
		t.Fatalf("Create after Delete = %v, want reuse of freed space", err)
	}
}

func TestPoolRegionAccounting(t *testing.T) {
	p := NewFirstFitPool(1 << 12)
	p.Create(1, 100)
	p.Create(2, 200)
	if p.Regions() != 2 {
		t.Fatalf("Regions = %d, want 2", p.Regions())
	}
	size, ok := p.RegionSize(2)
	if !ok || size != 200 {
		t.Fatalf("RegionSize(2) = %d, %v", size, ok)
	}
	if !p.Has(1) || p.Has(3) {
		t.Fatal("Has() wrong")
	}
	if p.Size() != 1<<12 {
		t.Fatalf("Size = %d", p.Size())
	}
}

// Property: pool data integrity — what you write is what you read, for
// arbitrary interleaved regions.
func TestPropertyPoolDataIntegrity(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		p := NewFirstFitPool(1 << 16)
		contents := map[uint64][]byte{}
		for id := uint64(1); id <= 12; id++ {
			size := uint64(rng.Intn(4000) + 1)
			if _, err := p.Create(id, size); err != nil {
				continue
			}
			data := make([]byte, size)
			rng.Read(data)
			if _, err := p.Write(id, 0, data); err != nil {
				return false
			}
			contents[id] = data
		}
		// Delete a few to force reuse, then rewrite.
		for id := range contents {
			if rng.Intn(3) == 0 {
				if p.Delete(id) != nil {
					return false
				}
				delete(contents, id)
			}
		}
		for id, want := range contents {
			got, err := p.Read(id, 0, uint64(len(want)))
			if err != nil || !bytes.Equal(got, want) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

func BenchmarkFirstFitAllocFree(b *testing.B) {
	f := NewFirstFit(1 << 30)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		off, ok := f.Alloc(128 << 10)
		if !ok {
			b.Fatal("alloc failed")
		}
		if err := f.Free(off); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkBuddyAllocFree(b *testing.B) {
	bd, err := NewBuddy(1<<30, 4096)
	if err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		off, ok := bd.Alloc(128 << 10)
		if !ok {
			b.Fatal("alloc failed")
		}
		if err := bd.Free(off); err != nil {
			b.Fatal(err)
		}
	}
}
