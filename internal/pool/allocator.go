// Package pool implements the idle memory daemon's memory pool (§4.2):
// a fixed slab of bytes allocated at daemon startup, carved into
// arbitrary-size regions. Freed space is never returned to the operating
// system — it is marked free and reused, exactly as the paper specifies.
//
// Two allocation policies are provided. FirstFit is the paper's choice: a
// first-fit scan with a periodically run coalescing pass to curb
// fragmentation. Buddy is the buddy-based scheme the paper names as its
// fallback "if this becomes a problem at a later date"; it exists here so
// the fragmentation trade-off can be measured (see the allocator ablation
// bench).
package pool

import (
	"errors"
	"fmt"
	"sort"
)

// Allocator carves regions from a fixed address range [0, Size).
type Allocator interface {
	// Alloc reserves size bytes, returning the block offset.
	// ok is false when no sufficiently large free block exists.
	//
	// dodo:acquires(palloc)
	Alloc(size uint64) (offset uint64, ok bool)
	// Free releases the block at offset (as returned by Alloc).
	//
	// dodo:releases(palloc)
	Free(offset uint64) error
	// FreeBytes returns the total free space.
	FreeBytes() uint64
	// LargestFree returns the largest single allocatable block — the
	// hint the imd piggybacks to the central manager's IWD (§4.3).
	LargestFree() uint64
	// Size returns the pool size.
	Size() uint64
}

// Errors returned by allocators.
var (
	ErrBadFree  = errors.New("pool: free of unallocated offset")
	ErrBadSize  = errors.New("pool: allocation size must be positive")
	ErrTooLarge = errors.New("pool: size exceeds pool")
)

// block is a contiguous span of the pool.
type block struct {
	off  uint64
	size uint64
	free bool
}

// FirstFit is the paper's allocator: first-fit placement over an
// offset-ordered block list, with coalescing run periodically (every
// CoalescePeriod frees) rather than on every free.
type FirstFit struct {
	size   uint64
	blocks []block // ordered by offset, covers the whole pool
	allocd map[uint64]int

	// CoalescePeriod is the number of Frees between automatic
	// coalescing passes. Zero selects the default (16). Alloc also
	// coalesces as a last resort before reporting failure.
	coalescePeriod int
	freesSince     int

	// stats
	coalesces int64
	failures  int64
}

var _ Allocator = (*FirstFit)(nil)

// NewFirstFit builds a first-fit allocator over size bytes.
func NewFirstFit(size uint64) *FirstFit {
	return &FirstFit{
		size:           size,
		blocks:         []block{{off: 0, size: size, free: true}},
		allocd:         make(map[uint64]int),
		coalescePeriod: 16,
	}
}

// SetCoalescePeriod tunes how many frees pass between coalescing runs.
// period <= 0 disables periodic coalescing (Alloc's last-resort pass
// still runs); this is the knob the fragmentation ablation turns.
func (f *FirstFit) SetCoalescePeriod(period int) { f.coalescePeriod = period }

// Size returns the pool size.
func (f *FirstFit) Size() uint64 { return f.size }

// Alloc reserves size bytes at the first free block large enough,
// splitting the block when it is bigger than needed.
//
// dodo:acquires(palloc)
func (f *FirstFit) Alloc(size uint64) (uint64, bool) {
	if size == 0 || size > f.size {
		f.failures++
		return 0, false
	}
	if off, ok := f.tryAlloc(size); ok {
		return off, true
	}
	// Last resort before failing: run the coalescing pass (§4.2's
	// periodic algorithm) and retry once.
	f.Coalesce()
	if off, ok := f.tryAlloc(size); ok {
		return off, true
	}
	f.failures++
	return 0, false
}

func (f *FirstFit) tryAlloc(size uint64) (uint64, bool) {
	for i := range f.blocks {
		b := &f.blocks[i]
		if !b.free || b.size < size {
			continue
		}
		off := b.off
		if b.size == size {
			b.free = false
		} else {
			rest := block{off: b.off + size, size: b.size - size, free: true}
			b.size = size
			b.free = false
			f.blocks = append(f.blocks, block{})
			copy(f.blocks[i+2:], f.blocks[i+1:])
			f.blocks[i+1] = rest
		}
		f.allocd[off] = 1
		return off, true
	}
	return 0, false
}

// Free releases an allocated block. Adjacent free blocks are merged only
// by the periodic coalescing pass, mirroring the paper's design.
//
// dodo:releases(palloc)
func (f *FirstFit) Free(off uint64) error {
	if _, ok := f.allocd[off]; !ok {
		return fmt.Errorf("%w: %d", ErrBadFree, off)
	}
	delete(f.allocd, off)
	i := f.findBlock(off)
	if i < 0 {
		return fmt.Errorf("%w: %d (directory out of sync)", ErrBadFree, off)
	}
	f.blocks[i].free = true
	f.freesSince++
	if f.coalescePeriod > 0 && f.freesSince >= f.coalescePeriod {
		f.Coalesce()
	}
	return nil
}

func (f *FirstFit) findBlock(off uint64) int {
	i := sort.Search(len(f.blocks), func(i int) bool { return f.blocks[i].off >= off })
	if i < len(f.blocks) && f.blocks[i].off == off {
		return i
	}
	return -1
}

// Coalesce merges every run of adjacent free blocks. It is idempotent.
func (f *FirstFit) Coalesce() {
	f.coalesces++
	f.freesSince = 0
	out := f.blocks[:0]
	for _, b := range f.blocks {
		if len(out) > 0 {
			last := &out[len(out)-1]
			if last.free && b.free && last.off+last.size == b.off {
				last.size += b.size
				continue
			}
		}
		out = append(out, b)
	}
	f.blocks = out
}

// FreeBytes returns total free space.
func (f *FirstFit) FreeBytes() uint64 {
	var total uint64
	for _, b := range f.blocks {
		if b.free {
			total += b.size
		}
	}
	return total
}

// LargestFree returns the largest allocatable block as the pool stands
// now (without coalescing — the hint must reflect what an allocation
// this instant would see; Alloc's fallback pass may still do better).
func (f *FirstFit) LargestFree() uint64 {
	var max uint64
	for _, b := range f.blocks {
		if b.free && b.size > max {
			max = b.size
		}
	}
	return max
}

// FragStats describes external fragmentation: 1 - largest/free.
// A value near 0 means free space is contiguous; near 1, shattered.
func (f *FirstFit) FragStats() (freeBytes, largest uint64, frag float64) {
	freeBytes = f.FreeBytes()
	largest = f.LargestFree()
	if freeBytes == 0 {
		return freeBytes, largest, 0
	}
	return freeBytes, largest, 1 - float64(largest)/float64(freeBytes)
}

// Coalesces returns how many coalescing passes have run.
func (f *FirstFit) Coalesces() int64 { return f.coalesces }

// Failures returns how many allocations have failed.
func (f *FirstFit) Failures() int64 { return f.failures }

// checkInvariants verifies the block list tiles [0, size) exactly and
// the allocation directory matches. Tests call this through Validate.
func (f *FirstFit) checkInvariants() error {
	var at uint64
	for i, b := range f.blocks {
		if b.off != at {
			return fmt.Errorf("pool: block %d at %d, expected %d (gap or overlap)", i, b.off, at)
		}
		if b.size == 0 {
			return fmt.Errorf("pool: zero-size block at %d", b.off)
		}
		if !b.free {
			if _, ok := f.allocd[b.off]; !ok {
				return fmt.Errorf("pool: allocated block %d missing from directory", b.off)
			}
		}
		at += b.size
	}
	if at != f.size {
		return fmt.Errorf("pool: blocks cover %d bytes, pool is %d", at, f.size)
	}
	for off := range f.allocd {
		i := f.findBlock(off)
		if i < 0 || f.blocks[i].free {
			return fmt.Errorf("pool: directory entry %d has no allocated block", off)
		}
	}
	return nil
}

// Validate checks internal invariants, returning the first violation.
func (f *FirstFit) Validate() error { return f.checkInvariants() }
