// Package retry provides the unified per-operation retry budget shared
// by the client runtime, the bulk transfer layer and recovery loops.
//
// Before this package each layer carried its own ad-hoc knobs
// (CallTimeout x CallRetries, WindowTimeout x TransferRetries, a
// hand-rolled doubling RecoveryBackoff). A Budget replaces all of them
// with one model: an operation owns a stall deadline, and between
// attempts it waits a capped-exponential, optionally jittered delay.
// Progress (bytes acknowledged, a NACK naming missing packets) resets
// the deadline — only a *stall* consumes budget, retransmission work
// that is visibly advancing does not.
//
// Time comes from an injected sim.Clock and jitter from an injected
// seeded *rand.Rand, so seeded runs produce identical retry schedules
// (the clock-discipline and seeded-rand analyzers enforce this).
package retry

import (
	"math/rand"
	"time"

	"dodo/internal/sim"
)

// Policy describes the retry budget for one class of operation.
type Policy struct {
	// Deadline bounds the total stall time across attempts. Once the
	// clock has advanced Deadline past the budget's start (or last
	// Reset), Next returns false. Zero means unbounded.
	Deadline time.Duration
	// Base is the first inter-attempt delay.
	Base time.Duration
	// Cap bounds a single delay after exponential growth. Zero means
	// no cap short of the deadline itself.
	Cap time.Duration
	// Factor is the per-attempt growth multiplier. Values below 1 are
	// treated as 1 (constant delay).
	Factor float64
	// Jitter randomizes each delay by a fraction in [1-Jitter, 1+Jitter)
	// to decorrelate retry storms. Zero disables jitter; values are
	// clamped to [0, 1).
	Jitter float64
}

// Budget tracks one operation's consumption of a Policy. Not
// goroutine-safe: a budget belongs to the single goroutine driving the
// operation.
type Budget struct {
	p        Policy
	clock    sim.Clock
	rng      *rand.Rand
	start    time.Time
	next     time.Duration
	attempts int
}

// New creates a budget for one operation. rng may be nil when
// p.Jitter is zero.
func New(p Policy, clock sim.Clock, rng *rand.Rand) *Budget {
	if p.Factor < 1 {
		p.Factor = 1
	}
	if p.Jitter < 0 {
		p.Jitter = 0
	}
	if p.Jitter >= 1 {
		p.Jitter = 0.999
	}
	return &Budget{p: p, clock: clock, rng: rng, start: clock.Now(), next: p.Base}
}

// Next returns the delay to wait before the next attempt, or false if
// the budget is exhausted (the deadline elapsed with no progress).
// The first call returns Base; subsequent calls grow it by Factor up
// to Cap. Delays never extend past the deadline: the last delay is
// truncated so the caller's total stall is exactly Deadline.
func (b *Budget) Next() (time.Duration, bool) {
	var elapsed time.Duration
	if b.p.Deadline > 0 {
		elapsed = b.clock.Now().Sub(b.start)
		if elapsed >= b.p.Deadline {
			return 0, false
		}
	}
	d := b.next
	if b.p.Jitter > 0 && b.rng != nil {
		d = time.Duration(float64(d) * (1 + b.p.Jitter*(2*b.rng.Float64()-1)))
		if d < 0 {
			d = 0
		}
	}
	if b.p.Deadline > 0 {
		if rem := b.p.Deadline - elapsed; d > rem {
			d = rem
		}
	}
	grown := time.Duration(float64(b.next) * b.p.Factor)
	if b.p.Cap > 0 && grown > b.p.Cap {
		grown = b.p.Cap
	}
	b.next = grown
	b.attempts++
	return d, true
}

// Reset restarts the budget after observed progress: the deadline
// window reopens and the backoff returns to Base. A transfer that is
// retransmitting productively (each NACK names fewer packets) calls
// Reset per window so only a genuine stall can exhaust it.
func (b *Budget) Reset() {
	b.start = b.clock.Now()
	b.next = b.p.Base
}

// Attempts returns how many delays Next has handed out.
func (b *Budget) Attempts() int { return b.attempts }
