package retry

import (
	"math/rand"
	"testing"
	"time"

	"dodo/internal/sim"
)

var t0 = time.Date(1999, 8, 2, 12, 0, 0, 0, time.UTC)

func TestConstantPolicyMatchesLegacyCallTiming(t *testing.T) {
	// The legacy call path sent retries+1 times, each waiting timeout.
	// The derived policy {Base: timeout, Deadline: (retries+1)*timeout,
	// Factor: 1} must hand out exactly retries+1 delays of timeout each.
	clock := sim.NewVirtualClock(t0)
	const timeout = 100 * time.Millisecond
	const retries = 4
	b := New(Policy{Base: timeout, Deadline: (retries + 1) * timeout, Factor: 1}, clock, nil)
	for i := 0; i <= retries; i++ {
		d, ok := b.Next()
		if !ok {
			t.Fatalf("attempt %d: budget exhausted early", i)
		}
		if d != timeout {
			t.Fatalf("attempt %d: delay = %v, want %v", i, d, timeout)
		}
		clock.Advance(d)
	}
	if _, ok := b.Next(); ok {
		t.Fatalf("budget should be exhausted after %d attempts", retries+1)
	}
	if b.Attempts() != retries+1 {
		t.Fatalf("Attempts() = %d, want %d", b.Attempts(), retries+1)
	}
}

func TestExponentialGrowthAndCap(t *testing.T) {
	clock := sim.NewVirtualClock(t0)
	b := New(Policy{Base: 10 * time.Millisecond, Cap: 40 * time.Millisecond, Factor: 2}, clock, nil)
	want := []time.Duration{10, 20, 40, 40, 40}
	for i, w := range want {
		d, ok := b.Next()
		if !ok {
			t.Fatalf("attempt %d: exhausted with no deadline set", i)
		}
		if d != w*time.Millisecond {
			t.Fatalf("attempt %d: delay = %v, want %v", i, d, w*time.Millisecond)
		}
	}
}

func TestDeadlineTruncatesFinalDelay(t *testing.T) {
	clock := sim.NewVirtualClock(t0)
	b := New(Policy{Base: 60 * time.Millisecond, Deadline: 100 * time.Millisecond, Factor: 1}, clock, nil)
	d, ok := b.Next()
	if !ok || d != 60*time.Millisecond {
		t.Fatalf("first delay = %v/%v", d, ok)
	}
	clock.Advance(d)
	d, ok = b.Next()
	if !ok {
		t.Fatal("second attempt should fit in the deadline")
	}
	if d != 40*time.Millisecond {
		t.Fatalf("second delay = %v, want truncation to 40ms", d)
	}
	clock.Advance(d)
	if _, ok := b.Next(); ok {
		t.Fatal("budget must be exhausted at the deadline")
	}
}

func TestResetReopensDeadline(t *testing.T) {
	clock := sim.NewVirtualClock(t0)
	b := New(Policy{Base: 50 * time.Millisecond, Deadline: 100 * time.Millisecond, Factor: 2}, clock, nil)
	for i := 0; i < 10; i++ {
		d, ok := b.Next()
		if !ok {
			t.Fatalf("iteration %d: budget exhausted despite Reset on progress", i)
		}
		if d != 50*time.Millisecond {
			t.Fatalf("iteration %d: delay = %v, want Base after Reset", i, d)
		}
		clock.Advance(d)
		b.Reset()
	}
}

func TestJitterIsSeededAndBounded(t *testing.T) {
	mk := func(seed int64) []time.Duration {
		clock := sim.NewVirtualClock(t0)
		rng := rand.New(rand.NewSource(seed))
		b := New(Policy{Base: 100 * time.Millisecond, Factor: 1, Jitter: 0.2}, clock, rng)
		var out []time.Duration
		for i := 0; i < 8; i++ {
			d, _ := b.Next()
			out = append(out, d)
		}
		return out
	}
	a, b2 := mk(7), mk(7)
	for i := range a {
		if a[i] != b2[i] {
			t.Fatalf("same seed diverged at %d: %v vs %v", i, a[i], b2[i])
		}
		lo, hi := 80*time.Millisecond, 120*time.Millisecond
		if a[i] < lo || a[i] > hi {
			t.Fatalf("jittered delay %v outside [%v, %v]", a[i], lo, hi)
		}
	}
	c := mk(8)
	same := true
	for i := range a {
		if a[i] != c[i] {
			same = false
		}
	}
	if same {
		t.Fatal("different seeds produced identical jitter")
	}
}
