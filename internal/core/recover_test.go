package core

import (
	"bytes"
	"errors"
	"math/rand"
	"sync"
	"testing"
	"time"

	"dodo/internal/bulk"
	"dodo/internal/imd"
	"dodo/internal/manager"
	"dodo/internal/simnet"
	"dodo/internal/transport"
	"dodo/internal/wire"
)

// TestRogueResponderDegradesToNoMem: a misrouted or malformed response
// on the data path must surface as ErrNoMem (degrade to the backing
// file), never as a nil-pointer panic. The fake manager hands out a
// region on a host whose daemon answers reads and writes with the wrong
// message type.
func TestRogueResponderDegradesToNoMem(t *testing.T) {
	n := transport.NewNetwork(transport.WithMTU(1500))
	mgrEp := bulk.NewEndpoint(n.Host("cmd"), fastEp(), func(from string, msg wire.Message) wire.Message {
		switch req := msg.(type) {
		case *wire.AllocReq:
			return &wire.AllocResp{Status: wire.StatusOK, Region: wire.Region{
				HostAddr: "rogue", RegionID: 7, Length: req.Length, Epoch: 1,
			}}
		case *wire.FreeReq:
			return &wire.FreeResp{Status: wire.StatusOK}
		}
		return nil
	})
	defer mgrEp.Close()
	rogueEp := bulk.NewEndpoint(n.Host("rogue"), fastEp(), func(from string, msg wire.Message) wire.Message {
		switch msg.(type) {
		case *wire.ReadReq, *wire.WriteReq:
			return &wire.FreeResp{Status: wire.StatusOK} // wrong type on purpose
		}
		return nil
	})
	defer rogueEp.Close()

	cli := New(n.Host("client"), Config{
		ManagerAddr: "cmd", ClientID: 1, RefractionPeriod: 100 * time.Millisecond,
		DisableRecovery: true, Endpoint: fastEp(),
	})
	defer cli.Close()

	back := NewMemBacking(40, 1<<20)
	fd, err := cli.Mopen(4096, back, 0)
	if err != nil {
		t.Fatal(err)
	}
	buf := make([]byte, 4096)
	if _, err := cli.Mread(fd, 0, buf); !errors.Is(err, ErrNoMem) {
		t.Fatalf("Mread from rogue host = %v, want ErrNoMem", err)
	}
	if cli.RegionValid(fd) {
		t.Fatal("descriptor still valid after a rogue response")
	}
	// The write path hits the same decode guard.
	fd2, err := cli.Mopen(4096, back, 4096)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := cli.Mwrite(fd2, 0, make([]byte, 4096)); !errors.Is(err, ErrNoMem) {
		t.Fatalf("Mwrite to rogue host = %v, want ErrNoMem", err)
	}
}

// TestCrashedIMDMidWorkloadFallsBack: an imd that dies without draining
// (kill -9 semantics) turns reads into ErrNoMem — the caller's signal to
// fall back to the backing file — and drops the host's descriptors.
func TestCrashedIMDMidWorkloadFallsBack(t *testing.T) {
	s := newStack(t, 1, 1<<20)
	back := NewMemBacking(41, 1<<20)
	fd, err := s.cli.Mopen(8192, back, 0)
	if err != nil {
		t.Fatal(err)
	}
	payload := bytes.Repeat([]byte{0x5a}, 8192)
	if _, err := s.cli.Mwrite(fd, 0, payload); err != nil {
		t.Fatal(err)
	}
	s.imds[0].Crash()
	buf := make([]byte, 8192)
	if _, err := s.cli.Mread(fd, 0, buf); !errors.Is(err, ErrNoMem) {
		t.Fatalf("Mread after imd crash = %v, want ErrNoMem", err)
	}
	if s.cli.RegionValid(fd) {
		t.Fatal("descriptor still valid after crash-induced drop")
	}
	if s.cli.Stats().DropEvents == 0 {
		t.Fatal("DropEvents = 0 after a crashed-host read")
	}
	// The write-through copy still serves the data.
	if !bytes.Equal(back.Bytes()[:8192], payload) {
		t.Fatal("backing file does not hold the written data")
	}
}

// TestRecoveryReopensAfterCrashRestart: the background recovery loop
// turns a crash/restart pair into a transparent re-open — the descriptor
// becomes valid again, repopulated from the backing file, with no Mopen
// from the application.
func TestRecoveryReopensAfterCrashRestart(t *testing.T) {
	s := newStack(t, 1, 1<<20)
	back := NewMemBacking(42, 1<<20)
	fd, err := s.cli.Mopen(8192, back, 0)
	if err != nil {
		t.Fatal(err)
	}
	payload := make([]byte, 8192)
	rand.New(rand.NewSource(7)).Read(payload)
	if _, err := s.cli.Mwrite(fd, 0, payload); err != nil {
		t.Fatal(err)
	}

	s.imds[0].Crash()
	buf := make([]byte, 8192)
	if _, err := s.cli.Mread(fd, 0, buf); !errors.Is(err, ErrNoMem) {
		t.Fatalf("Mread after crash = %v, want ErrNoMem", err)
	}

	// The workstation restarts with a bumped epoch (same address). The
	// manager's IWD entry is refreshed by the new status report, the
	// recovery pass sees the epoch mismatch via checkAlloc, re-allocates,
	// and repopulates from the backing file.
	d2 := imd.New(s.n.Host("imd0"), imd.Config{
		ManagerAddr: "cmd", PoolSize: 1 << 20, Epoch: 2,
		StatusInterval: 100 * time.Millisecond, Endpoint: fastEp(),
	})
	t.Cleanup(func() { d2.Close() })

	deadline := time.Now().Add(15 * time.Second)
	for time.Now().Before(deadline) && !s.cli.RegionValid(fd) {
		time.Sleep(20 * time.Millisecond)
	}
	if !s.cli.RegionValid(fd) {
		t.Fatalf("descriptor never recovered after restart; stats %+v", s.cli.Stats())
	}
	st := s.cli.Stats()
	if st.Reopens == 0 {
		t.Fatalf("Reopens = 0 after a recovered crash; stats %+v", st)
	}
	if st.Revalidations == 0 {
		t.Fatalf("Revalidations = 0 after a recovered crash; stats %+v", st)
	}
	n, err := s.cli.Mread(fd, 0, buf)
	if err != nil || n != len(payload) {
		t.Fatalf("Mread after recovery = %d, %v", n, err)
	}
	if !bytes.Equal(buf, payload) {
		t.Fatal("recovered region holds different bytes than the backing file")
	}
}

// TestDuplicateMopenAliasesOneRegion: two Mopens of the same
// (inode, offset) yield two descriptors aliasing one RD entry; the first
// Mclose must leave the region alive and the second must succeed.
func TestDuplicateMopenAliasesOneRegion(t *testing.T) {
	s := newStack(t, 1, 1<<20)
	back := NewMemBacking(43, 1<<20)
	fd1, err := s.cli.Mopen(4096, back, 0)
	if err != nil {
		t.Fatal(err)
	}
	fd2, err := s.cli.Mopen(4096, back, 0)
	if err != nil {
		t.Fatalf("duplicate Mopen: %v", err)
	}
	if fd1 == fd2 {
		t.Fatalf("duplicate Mopen returned the same descriptor %d", fd1)
	}
	if got := s.mgr.Stats().Regions; got != 1 {
		t.Fatalf("manager regions = %d, want 1 shared entry", got)
	}
	// The descriptors alias the same region.
	payload := bytes.Repeat([]byte{0xc3}, 4096)
	if _, err := s.cli.Mwrite(fd1, 0, payload); err != nil {
		t.Fatal(err)
	}
	buf := make([]byte, 4096)
	if _, err := s.cli.Mread(fd2, 0, buf); err != nil || !bytes.Equal(buf, payload) {
		t.Fatalf("alias read = %v; bytes equal %v", err, bytes.Equal(buf, payload))
	}
	// First close: region stays alive for the surviving alias.
	if err := s.cli.Mclose(fd1); err != nil {
		t.Fatalf("first Mclose: %v", err)
	}
	if _, err := s.cli.Mread(fd2, 0, buf); err != nil {
		t.Fatalf("alias read after first close: %v", err)
	}
	if got := s.mgr.Stats().Regions; got != 1 {
		t.Fatalf("manager regions = %d after first close, want 1", got)
	}
	// Last close frees the RD entry; it must not report "already freed".
	if err := s.cli.Mclose(fd2); err != nil {
		t.Fatalf("second Mclose: %v", err)
	}
	deadline := time.Now().Add(2 * time.Second)
	for time.Now().Before(deadline) {
		if s.mgr.Stats().Regions == 0 {
			return
		}
		time.Sleep(10 * time.Millisecond)
	}
	t.Fatalf("manager regions = %d after last close, want 0", s.mgr.Stats().Regions)
}

// TestWriteSeqSurvivesFailedFree: an Mclose whose free never reaches
// the manager leaves the RD entry — and the imd region behind it, write
// gate included — alive, and a later Mopen of the same key re-attaches
// to them via the manager's duplicate-allocation path. The client must
// keep its write-sequence counter across that cycle: restarting it
// would make every post-reopen write look superseded to the imd, which
// would confirm the writes without applying them and freeze the remote
// copy at stale bytes.
func TestWriteSeqSurvivesFailedFree(t *testing.T) {
	n := transport.NewNetwork(transport.WithMTU(1500))
	mgr := manager.New(n.Host("cmd"), manager.Config{
		KeepAliveInterval: 200 * time.Millisecond,
		// The manager goes dark for the length of Mclose's retry budget;
		// that window must not read as a dead client, or the eviction
		// path frees the region for real and hides the re-attach.
		KeepAliveMisses: 50,
		Endpoint:        fastEp(),
	})
	d := imd.New(n.Host("imd0"), imd.Config{
		ManagerAddr: "cmd", PoolSize: 1 << 20, Epoch: 1,
		StatusInterval: 100 * time.Millisecond, Endpoint: fastEp(),
	})
	cli := New(n.Host("client"), Config{
		ManagerAddr: "cmd", ClientID: 1, RefractionPeriod: 300 * time.Millisecond,
		Endpoint: fastEp(),
	})
	t.Cleanup(func() {
		cli.Close()
		d.Close()
		mgr.Close()
	})

	back := NewMemBacking(45, 1<<20)
	fd, err := cli.Mopen(8192, back, 0)
	if err != nil {
		t.Fatal(err)
	}
	old := bytes.Repeat([]byte{0x11}, 8192)
	if _, err := cli.Mwrite(fd, 0, old); err != nil {
		t.Fatal(err)
	}

	// The manager goes dark: the free is lost, and both the RD entry
	// and the imd region (with its write gate) survive the close.
	n.SetEndpointFaults("cmd", simnet.Faults{LossRate: 1})
	if err := cli.Mclose(fd); err == nil {
		t.Fatal("Mclose with an unreachable manager reported success")
	}
	n.ClearEndpointFaults("cmd")

	// Re-open the same key: the duplicate path hands back the region
	// that already saw the first incarnation's writes.
	fd2, err := cli.Mopen(8192, back, 0)
	if err != nil {
		t.Fatalf("re-open after failed free: %v", err)
	}
	cur := bytes.Repeat([]byte{0x22}, 8192)
	if _, err := cli.Mwrite(fd2, 0, cur); err != nil {
		t.Fatalf("write after re-attach: %v", err)
	}
	buf := make([]byte, 8192)
	if _, err := cli.Mread(fd2, 0, buf); err != nil {
		t.Fatalf("read after re-attach: %v", err)
	}
	if !bytes.Equal(buf, cur) {
		t.Fatalf("remote region frozen at stale bytes: got 0x%02x, want 0x%02x", buf[0], cur[0])
	}
}

// TestZeroLengthMwriteShortCircuits: a write whose span within the
// region is empty returns immediately — no disk goroutine, no remote
// transfer.
func TestZeroLengthMwriteShortCircuits(t *testing.T) {
	s := newStack(t, 1, 1<<20)
	back := NewMemBacking(44, 1<<20)
	fd, err := s.cli.Mopen(4096, back, 0)
	if err != nil {
		t.Fatal(err)
	}
	if n, err := s.cli.Mwrite(fd, 0, nil); n != 0 || err != nil {
		t.Fatalf("Mwrite(nil) = %d, %v; want 0, nil", n, err)
	}
	// Offset at the region tail: nothing to write, not an error.
	if n, err := s.cli.Mwrite(fd, 4096, []byte("past-the-end")); n != 0 || err != nil {
		t.Fatalf("Mwrite at tail = %d, %v; want 0, nil", n, err)
	}
	st := s.cli.Stats()
	if st.RemoteWrites != 0 || st.RemoteWriteBytes != 0 {
		t.Fatalf("zero-length Mwrite reached the remote host: %+v", st)
	}
	for _, b := range back.Bytes()[:4096] {
		if b != 0 {
			t.Fatal("zero-length Mwrite touched the backing file")
		}
	}
}

// TestHandoffAdoptionBlockedByDiskOnlyWrites: a graceful drain repoints
// the region to a Fresh handoff copy, but the client only learns about
// the drain from a failed read (which bumps no write sequence). If the
// app then goes disk-only — the documented ErrNoMem fallback — the
// handoff copy is behind the backing file even though the write-seq
// gate is settled. Recovery must refuse to adopt the Fresh copy and
// repopulate it from disk instead.
func TestHandoffAdoptionBlockedByDiskOnlyWrites(t *testing.T) {
	n := transport.NewNetwork(transport.WithMTU(1500))
	mgr := manager.New(n.Host("cmd"), manager.Config{
		KeepAliveInterval: 200 * time.Millisecond,
		KeepAliveMisses:   8,
		HandoffGrace:      10 * time.Second,
		Endpoint:          fastEp(),
	})
	var imds []*imd.Daemon
	for i := 0; i < 2; i++ {
		imds = append(imds, imd.New(n.Host("imd"+string(rune('0'+i))), imd.Config{
			ManagerAddr: "cmd", PoolSize: 1 << 20, Epoch: uint64(i + 1),
			StatusInterval: 100 * time.Millisecond,
			GraceWindow:    2 * time.Second,
			Endpoint:       fastEp(),
		}))
	}
	cli := New(n.Host("client"), Config{
		ManagerAddr: "cmd", ClientID: 1,
		RefractionPeriod: 2 * time.Second,
		RecoveryBackoff:  250 * time.Millisecond,
		DisableHedging:   true,
		Endpoint:         fastEp(),
	})
	t.Cleanup(func() {
		cli.Close()
		for _, d := range imds {
			d.Close()
		}
		mgr.Close()
	})
	deadline := time.Now().Add(5 * time.Second)
	for mgr.Stats().IdleHosts != 2 {
		if time.Now().After(deadline) {
			t.Fatal("imds never registered")
		}
		time.Sleep(20 * time.Millisecond)
	}

	back := NewMemBacking(90, 1<<20)
	fd, err := cli.Mopen(8192, back, 0)
	if err != nil {
		t.Fatal(err)
	}
	old := bytes.Repeat([]byte{0xaa}, 8192)
	if _, err := cli.Mwrite(fd, 0, old); err != nil {
		t.Fatal(err)
	}

	// Drain whichever imd holds the region; its handoff pushes the old
	// payload to the peer and the manager repoints the RD row Fresh.
	host, ok := cli.RegionHost(fd)
	if !ok {
		t.Fatal("no region host")
	}
	var victim *imd.Daemon
	for _, d := range imds {
		if d.Addr() == host {
			victim = d
		}
	}
	victim.Drain()

	// The client finds out the hard way: a read against the torn-down
	// host fails and drops the descriptor without bumping any sequence.
	buf := make([]byte, 8192)
	if _, err := cli.Mread(fd, 0, buf); !errors.Is(err, ErrNoMem) {
		t.Fatalf("Mread after drain = %v, want ErrNoMem", err)
	}
	// The app retries the write, is told the region can't take it, and
	// goes disk-only — exactly what the ErrNoMem contract prescribes.
	if _, err := cli.Mwrite(fd, 0, bytes.Repeat([]byte{0xbb}, 8192)); !errors.Is(err, ErrNoMem) {
		t.Fatalf("Mwrite after drop = %v, want ErrNoMem", err)
	}
	fresh := bytes.Repeat([]byte{0xbb}, 8192)
	if _, err := back.WriteAt(fresh, 0); err != nil {
		t.Fatal(err)
	}

	// Recovery must repopulate from the backing file, not adopt the
	// stale-but-Fresh handoff copy.
	deadline = time.Now().Add(15 * time.Second)
	for !cli.RegionValid(fd) {
		if time.Now().After(deadline) {
			t.Fatal("region never recovered")
		}
		time.Sleep(20 * time.Millisecond)
	}
	if got := cli.Stats().HandoffAdopts; got != 0 {
		t.Fatalf("HandoffAdopts = %d, want 0 (disk-dirty region adopted)", got)
	}
	if _, err := cli.Mread(fd, 0, buf); err != nil {
		t.Fatalf("Mread after recovery: %v", err)
	}
	if !bytes.Equal(buf, fresh) {
		t.Fatal("recovered region serves the pre-drain bytes: disk-only write lost")
	}
}

// TestCommitReopenFreesOrphanedAllocation: when the last alias of a
// region is Mclosed while a recovery re-open is pushing bytes, the
// re-created manager mapping can end up owned by nobody — Mclose's own
// FreeReq covers the common orders, but when that free is lost the
// allocation used to sit on the manager until the client died.
// commitReopen must release the mapping itself when it finds the
// descriptor gone and no aliases remaining, and must NOT release it
// while other aliases of the key are still open.
func TestCommitReopenFreesOrphanedAllocation(t *testing.T) {
	n := transport.NewNetwork(transport.WithMTU(1500))
	var (
		mu      sync.Mutex
		liveKey bool // manager-side mapping for the key exists
		frees   int
	)
	reg := wire.Region{HostAddr: "host", RegionID: 3, Length: 8192, Epoch: 1}
	mgrEp := bulk.NewEndpoint(n.Host("cmd"), fastEp(), func(from string, msg wire.Message) wire.Message {
		switch msg.(type) {
		case *wire.AllocReq:
			mu.Lock()
			liveKey = true
			mu.Unlock()
			return &wire.AllocResp{Status: wire.StatusOK, Region: reg}
		case *wire.FreeReq:
			mu.Lock()
			liveKey = false
			frees++
			mu.Unlock()
			return &wire.FreeResp{Status: wire.StatusOK}
		}
		return nil
	})
	defer mgrEp.Close()

	cli := New(n.Host("client"), Config{
		ManagerAddr: "cmd", ClientID: 1, DisableRecovery: true, Endpoint: fastEp(),
	})
	defer cli.Close()

	back := NewMemBacking(44, 1<<20)
	fd, err := cli.Mopen(8192, back, 0)
	if err != nil {
		t.Fatal(err)
	}
	cli.mu.Lock()
	key := cli.regions[fd].key
	cli.mu.Unlock()
	if err := cli.Mclose(fd); err != nil {
		t.Fatal(err)
	}

	// Replay the racy interleaving deterministically: the recovery pass
	// re-allocated the key (manager maps it again) and repopulated, but
	// by the time it commits, the Mclose above has already removed the
	// descriptor and the mapping has no owner.
	mu.Lock()
	liveKey = true
	mu.Unlock()
	if !cli.commitReopen(fd, key, reg, 0) {
		t.Fatal("commitReopen on a closed descriptor = false, want true")
	}
	mu.Lock()
	leaked, got := liveKey, frees
	mu.Unlock()
	if leaked {
		t.Fatalf("manager still maps the key after commitReopen on a closed descriptor (frees=%d): orphaned allocation leaked", got)
	}

	// With another alias of the key still open, the mapping is owned and
	// the last Mclose frees it; commitReopen must leave it alone.
	fd1, err := cli.Mopen(8192, back, 0)
	if err != nil {
		t.Fatal(err)
	}
	fd2, err := cli.Mopen(8192, back, 0) // same (inode, offset): alias
	if err != nil {
		t.Fatal(err)
	}
	if err := cli.Mclose(fd1); err != nil {
		t.Fatal(err)
	}
	mu.Lock()
	liveKey = true
	preFrees := frees
	mu.Unlock()
	if !cli.commitReopen(fd1, key, reg, 0) {
		t.Fatal("commitReopen with a surviving alias = false, want true")
	}
	mu.Lock()
	still, post := liveKey, frees
	mu.Unlock()
	if !still || post != preFrees {
		t.Fatalf("commitReopen freed a mapping other aliases still own (liveKey=%v frees %d->%d)", still, preFrees, post)
	}
	if err := cli.Mclose(fd2); err != nil {
		t.Fatal(err)
	}
}
