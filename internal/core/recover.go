package core

import (
	"io"
	"math/rand"
	"sort"

	"dodo/internal/retry"
	"dodo/internal/sim"
	"dodo/internal/wire"
)

// Background region recovery: the paper's client drops every descriptor
// on a failed host and never looks back (§3.1) — a workload that
// outlives a crash runs disk-only forever. The recovery loop closes
// that gap with a drop → backoff → revalidate → re-open state machine:
//
//	dropHost kicks the loop; after an exponential backoff (initial
//	Config.RecoveryBackoff, doubling per failed pass, capped at the
//	refraction period so recovery probes are never more aggressive
//	than fresh allocations), each invalid descriptor is revalidated
//	with checkAlloc (§4.3). If the manager still maps the key, the
//	region is repopulated in place; if the mapping is gone, it is
//	re-allocated under its original key and then repopulated. Either
//	way the descriptor flips back to valid only after the full region
//	contents — read from the backing file, which Mwrite's
//	write-through contract keeps authoritative — have been pushed to
//	the hosting imd end-to-end.
//
// A descriptor is never marked valid on directory state alone: the
// manager's view can outlive reachability (its RD entry survives a
// partition between client and host), and even a reachable copy may be
// stale (writes issued while the descriptor was invalid reached only
// the backing file). The repopulating push settles both concerns at
// once. Callers that write to the backing file directly while a
// descriptor is invalid should do so before their next Mwrite, as the
// region cache does under its lock; a direct write racing the
// repopulation push may reach only the disk copy.
//
// The loop rides the injected clock, so fault-sweep harnesses replay it
// deterministically, and it never holds c.mu across a network call.

// recoveryLoop waits for drop events and runs backoff-paced recovery
// passes until every descriptor is valid again.
func (c *Client) recoveryLoop() {
	defer c.recoverWG.Done()
	rng := rand.New(rand.NewSource(c.cfg.Seed))
	for {
		select {
		case <-c.recoverStop:
			return
		case <-c.recoverKick:
		}
		// One retry budget per drop event: no deadline (recovery never
		// gives up while descriptors are invalid), capped-exponential
		// pacing so recovery probes are never more aggressive than fresh
		// allocations, and a little seeded jitter so the clients dropped
		// by one reclaim don't probe the manager in lockstep.
		budget := retry.New(retry.Policy{
			Base:   c.cfg.RecoveryBackoff,
			Cap:    c.cfg.RefractionPeriod,
			Factor: 2,
			Jitter: 0.1,
		}, c.cfg.Clock, rng)
		for {
			wait, _ := budget.Next()
			if !sim.SleepInterruptible(c.cfg.Clock, wait, c.recoverStop) {
				return
			}
			if c.recoverPass() == 0 {
				break // fully recovered; sleep until the next drop
			}
		}
	}
}

// recoverPass probes every invalid descriptor once and reports how many
// remain invalid. Descriptors are visited in fd order so a given
// cluster state yields a reproducible probe sequence.
func (c *Client) recoverPass() int {
	c.mu.Lock()
	if c.closed {
		c.mu.Unlock()
		return 0
	}
	var fds []int
	for fd, r := range c.regions {
		if !r.valid || r.needsReval {
			fds = append(fds, fd)
		}
	}
	c.mu.Unlock()
	sort.Ints(fds)
	remaining := 0
	for _, fd := range fds {
		if !c.recoverRegion(fd) {
			remaining++
		}
	}
	return remaining
}

// recoverRegion revalidates one descriptor, re-opening its region if
// the manager no longer has a live mapping. It reports whether the
// descriptor is valid (or gone) afterwards.
func (c *Client) recoverRegion(fd int) bool {
	r, err := c.lookup(fd)
	if err != nil {
		return true // closed underneath us; nothing left to recover
	}
	if r.valid && !r.needsReval {
		return true
	}
	c.revalidations.Add(1)
	resp, err := c.ep.Call(c.cfg.ManagerAddr, &wire.CheckAllocReq{Key: r.key})
	if err != nil {
		return false // manager unreachable; retry next pass
	}
	ca, ok := resp.(*wire.CheckAllocResp)
	if !ok {
		return false
	}
	if !c.noteIncarnation(ca.Incarnation) {
		// Delayed answer from a dead manager incarnation: worthless,
		// treat as lost and retry against the live one next pass.
		return false
	}
	if ca.Status == wire.StatusBusy {
		// Either the hosting imd is draining and the manager is holding
		// the mapping open while a handoff runs, or a restarted manager
		// is still rebuilding its directory from inventory re-reports.
		// Retry next pass: the entry will reappear, repoint (Fresh) or
		// go stale once the hold ends.
		return false
	}
	if r.valid {
		// needsReval confirmation for a still-valid mapping: the
		// restarted manager has finished rebuilding. If the row
		// survived, refresh it and keep serving; if it is gone, the
		// usual invalid-descriptor machinery below takes over.
		return c.confirmReval(fd, ca)
	}
	if ca.Status != wire.StatusOK {
		// checkAlloc purged the stale RD entry (or never had one);
		// re-allocate and repopulate.
		return c.reopenRegion(fd)
	}
	// A fresh mapping is a graceful-reclaim handoff copy holding every
	// byte this client ever had confirmed; if the write-seq gate is
	// settled and no disk-only writes could have happened since the
	// drop, it can be adopted outright, skipping the repopulation.
	if ca.Fresh && c.adoptHandoff(fd, r.key, ca.Region, ca.HostCaps) {
		c.logf("dodo: adopted handoff copy for fd %d on %s region %d", fd, ca.Region.HostAddr, ca.Region.RegionID)
		return true
	}
	// The manager still maps the key — the failure may have been a
	// transient flap. Directory state alone proves neither reachability
	// nor freshness (writes during the outage went disk-only), so push
	// the backing contents end-to-end before trusting the region again.
	if !c.repopulate(r, ca.Region) {
		return false
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	live, present := c.regions[fd]
	if !present {
		return true
	}
	if !live.valid {
		live.remote = ca.Region
		live.caps = ca.HostCaps
		live.valid = true
		// The push carried the backing bytes end-to-end, so any
		// disk-only writes made while invalid are now remote too.
		live.diskDirty = false
	}
	return true
}

// confirmReval settles a still-valid needsReval descriptor against the
// answer from a rebuilt manager directory. A surviving row refreshes
// the mapping in place — the hosting imd never stopped serving, so no
// repopulation is needed. A missing row means the imd's inventory
// never reached the new incarnation (it died during the outage, or
// its report was fenced): the descriptor is invalidated and re-opened
// through the ordinary repopulating path.
func (c *Client) confirmReval(fd int, ca *wire.CheckAllocResp) bool {
	c.mu.Lock()
	live, present := c.regions[fd]
	if !present {
		c.mu.Unlock()
		return true // closed underneath us
	}
	if !live.valid {
		// Dropped while the probe was in flight; the next pass runs the
		// invalid-descriptor machinery with fresh state.
		c.mu.Unlock()
		return false
	}
	if ca.Status == wire.StatusOK {
		live.remote = ca.Region
		live.caps = ca.HostCaps
		live.needsReval = false
		c.mu.Unlock()
		return true
	}
	live.valid = false
	live.gen++
	live.needsReval = false
	c.mu.Unlock()
	c.logf("dodo: fd %d lost its directory row across a manager restart; re-opening", fd)
	return c.reopenRegion(fd)
}

// adoptHandoff flips fd onto a handoff-fresh region without disk
// repopulation. Safe only when the handoff copy provably holds every
// byte the backing file does:
//
//   - the write-seq gate is settled (writeSeq == confirmedSeq), so every
//     announced write was confirmed before the drain snapshot — an
//     outstanding unconfirmed announcement means the disk may be ahead
//     of the copy; and
//   - the descriptor is not disk-dirty: the app was never told this
//     region cannot take writes, so it had no sanctioned occasion to
//     write the backing file directly. Disk-only writes never touch the
//     sequence counters, which is why the gate alone cannot rule them
//     out — a drop triggered by a read refusal bumps no sequence, yet
//     the app may have gone disk-only the moment an Mwrite failed.
//
// When either check fails the caller repopulates from the backing file,
// which settles both concerns at once.
func (c *Client) adoptHandoff(fd int, key wire.RegionKey, reg wire.Region, caps wire.Caps) bool {
	c.mu.Lock()
	defer c.mu.Unlock()
	live, present := c.regions[fd]
	if !present || live.valid {
		return true // closed or revived underneath us; nothing to adopt
	}
	if c.writeSeq[key] != c.confirmedSeq[key] || live.diskDirty {
		return false
	}
	live.remote = reg
	live.caps = caps
	live.valid = true
	c.handoffAdopts.Add(1)
	return true
}

// repopulate pushes the descriptor's backing-file bytes to reg. The
// backing is authoritative: every successful Mwrite wrote through to
// it, and writes attempted while the descriptor was invalid could only
// have landed there.
func (c *Client) repopulate(r regionState, reg wire.Region) bool {
	// A short read past EOF leaves the tail zeroed, matching bytes
	// never written through.
	data := make([]byte, r.length)
	if _, err := r.backing.ReadAt(data, r.backOff); err != nil && err != io.EOF {
		return false
	}
	fresh := r
	fresh.remote = reg
	if err := c.remoteWrite(fresh, 0, data); err != nil {
		c.logf("dodo: repopulating fd %d on %s region %d: %v", r.fd, reg.HostAddr, reg.RegionID, err)
		return false
	}
	c.logf("dodo: repopulated fd %d on %s region %d (%d bytes, first byte %02x)",
		r.fd, reg.HostAddr, reg.RegionID, len(data), data[0])
	return true
}

// reopenRegion allocates a fresh region under the descriptor's original
// key and pushes the backing bytes to it before marking it valid.
func (c *Client) reopenRegion(fd int) bool {
	r, err := c.lookup(fd)
	if err != nil {
		return true // closed while recovering; nothing left to do
	}
	if r.valid {
		return true // an alias's recovery or a caller revived it first
	}
	resp, err := c.ep.Call(c.cfg.ManagerAddr, &wire.AllocReq{Key: r.key, Length: uint64(r.length)})
	if err != nil {
		return false
	}
	ar, ok := resp.(*wire.AllocResp)
	if !ok || ar.Status != wire.StatusOK {
		return false
	}
	if !c.noteIncarnation(ar.Incarnation) {
		return false // dead-incarnation answer; retry next pass
	}
	if !c.repopulate(r, ar.Region) {
		// The push failed (the new host may itself have died); undo the
		// allocation so a later checkAlloc cannot resurrect a region
		// holding garbage.
		c.freeKey(r.key)
		return false
	}
	return c.commitReopen(fd, r.key, ar.Region, ar.HostCaps)
}

// commitReopen installs the freshly allocated region on fd after a
// successful repopulation. If the descriptor was Mclosed while the push
// ran, the re-created mapping may have no owner left: Mclose's own
// FreeReq frees it when it lands after our AllocReq, but when that free
// is lost (manager unreachable from Mclose) the allocation would sit on
// the manager until the client dies. Releasing it here whenever no
// alias remains makes the invariant local: every path out of a re-open
// either installs the region on a live descriptor or frees it.
func (c *Client) commitReopen(fd int, key wire.RegionKey, reg wire.Region, caps wire.Caps) bool {
	c.mu.Lock()
	live, present := c.regions[fd]
	if !present {
		// Closed mid-recovery. With other aliases of the key still
		// open, the mapping is owned and their last Mclose frees it;
		// with none, nobody will, so release it now.
		orphaned := c.aliases[key] == 0
		c.mu.Unlock()
		if orphaned {
			c.freeKey(key)
		}
		return true
	}
	if live.valid {
		// Revived by another path (alias recovery); the manager answered
		// our AllocReq with the existing mapping, which that path owns.
		c.mu.Unlock()
		return true
	}
	live.remote = reg
	live.caps = caps
	live.valid = true
	live.diskDirty = false // the push carried the backing bytes
	c.reopens.Add(1)
	c.mu.Unlock()
	c.logf("dodo: re-opened fd %d -> %s region %d after drop", fd, reg.HostAddr, reg.RegionID)
	return true
}

// freeKey best-effort releases a region allocation the recovery pass
// could not populate.
func (c *Client) freeKey(key wire.RegionKey) {
	if _, err := c.ep.Call(c.cfg.ManagerAddr, &wire.FreeReq{Key: key}); err != nil {
		c.logf("dodo: releasing unrecovered region %v: %v", key, err)
	}
}
