// Package core implements libdodo, the Dodo runtime library linked into
// every application (§3.2, §4.4).
//
// The library gives applications explicit control over the remote memory
// cache through an API modeled on stdio: Mopen allocates a remote region
// backed by a file range, Mread fetches from remote memory, Mwrite
// propagates to the backing file and the remote region in parallel,
// Mclose frees the region, Msync barriers on disk. A region table tracks
// every region the application created; a refraction period suppresses
// allocation attempts after a failure; and any access failure against a
// host drops all descriptors served by that host (§3.1).
package core

import (
	"errors"
	"fmt"
	"os"
	"syscall"

	"dodo/internal/locks"
)

// Backing is the disk store behind a remote region: every Dodo region is
// a read-only cache of a byte range of some backing file (§3.2 mopen).
// *os.File satisfies the I/O surface; FileBacking adds the inode. Tests
// and simulations use MemBacking.
type Backing interface {
	// ReadAt and WriteAt use absolute backing offsets.
	ReadAt(p []byte, off int64) (int, error)
	WriteAt(p []byte, off int64) (int, error)
	// Sync blocks until written data is durable (msync's contract).
	Sync() error
	// Inode identifies the backing object for the region-directory key.
	Inode() uint64
	// Writable reports whether the backing was opened for writing;
	// mopen requires it (§3.2).
	Writable() bool
}

// FileBacking adapts an *os.File opened read-write.
type FileBacking struct {
	F *os.File
}

var _ Backing = (*FileBacking)(nil)

// NewFileBacking wraps an open file, verifying it is writable and
// resolving its inode.
func NewFileBacking(f *os.File) (*FileBacking, error) {
	if f == nil {
		return nil, errors.New("core: nil file")
	}
	// The backing file must be open in write mode (mopen's EINVAL
	// contract, §3.2). Check the open-file flags.
	if !fdWritable(f) {
		return nil, fmt.Errorf("core: backing file %s not open for writing (EINVAL)", f.Name())
	}
	return &FileBacking{F: f}, nil
}

// fdWritable reports whether the file was opened with write access.
func fdWritable(f *os.File) bool {
	flags, _, errno := syscall.Syscall(syscall.SYS_FCNTL, f.Fd(), syscall.F_GETFL, 0)
	if errno != 0 {
		// Cannot interrogate (non-Unix?): assume writable and let the
		// first write fail loudly instead.
		return true
	}
	acc := flags & syscall.O_ACCMODE
	return acc == syscall.O_WRONLY || acc == syscall.O_RDWR
}

// ReadAt reads from the file.
func (b *FileBacking) ReadAt(p []byte, off int64) (int, error) { return b.F.ReadAt(p, off) }

// WriteAt writes to the file.
func (b *FileBacking) WriteAt(p []byte, off int64) (int, error) { return b.F.WriteAt(p, off) }

// Sync flushes the file.
func (b *FileBacking) Sync() error { return b.F.Sync() }

// Inode returns the file's inode number.
func (b *FileBacking) Inode() uint64 {
	fi, err := b.F.Stat()
	if err != nil {
		return 0
	}
	if st, ok := fi.Sys().(*syscall.Stat_t); ok {
		return st.Ino
	}
	// Non-Unix platform: hash the name for a stable identifier.
	var h uint64 = 14695981039346656037
	for _, c := range b.F.Name() {
		h ^= uint64(c)
		h *= 1099511628211
	}
	return h
}

// Writable reports whether the file was opened for writing.
func (b *FileBacking) Writable() bool { return fdWritable(b.F) }

// MemBacking is an in-memory backing store for tests and virtual-time
// simulations. It grows on demand and is safe for concurrent use.
type MemBacking struct {
	mu locks.Mutex
	// dodo:guardedby mu
	data []byte
	// dodo:unguarded — immutable after construction
	inode uint64
	// dodo:guardedby mu
	readOnly bool

	// Counters let experiments account simulated disk traffic.
	// dodo:guardedby mu
	reads, writes, readBytes, writeBytes int64
}

var _ Backing = (*MemBacking)(nil)

// NewMemBacking creates an in-memory backing with the given inode.
func NewMemBacking(inode uint64, size int) *MemBacking {
	b := &MemBacking{data: make([]byte, size), inode: inode}
	b.mu.SetRank(locks.RankBacking)
	return b
}

// SetReadOnly makes subsequent writes fail (for mopen validation tests).
func (b *MemBacking) SetReadOnly() {
	b.mu.Lock()
	b.readOnly = true
	b.mu.Unlock()
}

// ReadAt reads from the store.
func (b *MemBacking) ReadAt(p []byte, off int64) (int, error) {
	b.mu.Lock()
	defer b.mu.Unlock()
	if off < 0 {
		return 0, errors.New("core: negative offset")
	}
	if off >= int64(len(b.data)) {
		return 0, fmt.Errorf("core: read at %d beyond backing of %d bytes", off, len(b.data))
	}
	n := copy(p, b.data[off:])
	b.reads++
	b.readBytes += int64(n)
	if n < len(p) {
		return n, fmt.Errorf("core: short read at backing tail")
	}
	return n, nil
}

// WriteAt writes to the store, growing it as needed.
func (b *MemBacking) WriteAt(p []byte, off int64) (int, error) {
	b.mu.Lock()
	defer b.mu.Unlock()
	if b.readOnly {
		return 0, errors.New("core: backing is read-only")
	}
	if off < 0 {
		return 0, errors.New("core: negative offset")
	}
	if need := off + int64(len(p)); need > int64(len(b.data)) {
		grown := make([]byte, need)
		copy(grown, b.data)
		b.data = grown
	}
	n := copy(b.data[off:], p)
	b.writes++
	b.writeBytes += int64(n)
	return n, nil
}

// Sync is a no-op for memory.
func (b *MemBacking) Sync() error { return nil }

// Inode returns the configured identifier.
func (b *MemBacking) Inode() uint64 { return b.inode }

// Writable reports the read-only flag.
func (b *MemBacking) Writable() bool {
	b.mu.Lock()
	defer b.mu.Unlock()
	return !b.readOnly
}

// Traffic reports cumulative I/O counters.
func (b *MemBacking) Traffic() (reads, writes, readBytes, writeBytes int64) {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.reads, b.writes, b.readBytes, b.writeBytes
}

// Bytes returns a copy of the store contents (test helper).
func (b *MemBacking) Bytes() []byte {
	b.mu.Lock()
	defer b.mu.Unlock()
	return append([]byte(nil), b.data...)
}
