package core

import (
	"bytes"
	"math/rand"
	"sync/atomic"
	"testing"
	"time"

	"dodo/internal/bulk"
	"dodo/internal/imd"
	"dodo/internal/manager"
	"dodo/internal/simnet"
	"dodo/internal/transport"
)

// countingTransport wraps a transport and counts datagrams in each
// direction. It deliberately does NOT implement transport.VecSender, so
// every frame the client emits passes through Send exactly once.
type countingTransport struct {
	transport.Transport
	sends, recvs atomic.Int64
}

func (t *countingTransport) Send(to string, data []byte) error {
	t.sends.Add(1)
	return t.Transport.Send(to, data)
}

func (t *countingTransport) Recv(timeout time.Duration) ([]byte, string, error) {
	data, from, err := t.Transport.Recv(timeout)
	if err == nil {
		t.recvs.Add(1)
	}
	return data, from, err
}

// quietStack is newStack with background chatter stretched out to tens
// of seconds (keep-alives, status announces), so that after setup the
// only frames crossing the client's transport are the ones the test
// provokes. The client's transport is wrapped in a frame counter.
func quietStack(t *testing.T, mut func(*Config)) (*stack, *countingTransport) {
	t.Helper()
	n := transport.NewNetwork(transport.WithMTU(1500))
	mgr := manager.New(n.Host("cmd"), manager.Config{
		KeepAliveInterval: 10 * time.Second,
		KeepAliveMisses:   3,
		Endpoint:          fastEp(),
	})
	s := &stack{n: n, mgr: mgr}
	d := imd.New(n.Host("imd0"), imd.Config{
		ManagerAddr:    "cmd",
		PoolSize:       1 << 20,
		Epoch:          1,
		StatusInterval: 10 * time.Second,
		Endpoint:       fastEp(),
	})
	s.imds = append(s.imds, d)
	ct := &countingTransport{Transport: n.Host("client")}
	cfg := Config{
		ManagerAddr:      "cmd",
		ClientID:         1,
		RefractionPeriod: 300 * time.Millisecond,
		DisableHedging:   true,
		Endpoint:         fastEp(),
	}
	if mut != nil {
		mut(&cfg)
	}
	s.cli = New(ct, cfg)
	t.Cleanup(func() {
		s.cli.Close()
		d.Close()
		mgr.Close()
	})
	return s, ct
}

// mopenRetry retries Mopen until the imd's startup announce has reached
// the manager (stacks with long status intervals announce exactly once,
// and the client may dial in before that announce lands).
func mopenRetry(t *testing.T, cli *Client, length int64, back Backing, off int64) int {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for {
		fd, err := cli.Mopen(length, back, off)
		if err == nil {
			return fd
		}
		if time.Now().After(deadline) {
			t.Fatalf("Mopen never succeeded: %v", err)
		}
		time.Sleep(20 * time.Millisecond)
	}
}

// TestSmallReadSingleExchange pins the inline fast path at the
// transport level: a sub-MTU Mread against a capable imd must cost
// exactly one request frame out and one response frame in — no bulk
// offer, no accept, no done handshake.
func TestSmallReadSingleExchange(t *testing.T) {
	s, ct := quietStack(t, nil)
	back := NewMemBacking(7, 16<<10)
	fd := mopenRetry(t, s.cli, 16<<10, back, 0)
	data := make([]byte, 16<<10)
	rand.New(rand.NewSource(5)).Read(data)
	if n, err := s.cli.Mwrite(fd, 0, data); err != nil || n != len(data) {
		t.Fatalf("Mwrite = %d, %v", n, err)
	}
	buf := make([]byte, 512)
	if _, err := s.cli.Mread(fd, 0, buf); err != nil {
		t.Fatalf("warm Mread: %v", err)
	}
	// Let any trailing frames from the write transfer settle, then
	// snapshot the counters around one small read.
	time.Sleep(400 * time.Millisecond)
	sends, recvs := ct.sends.Load(), ct.recvs.Load()
	n, err := s.cli.Mread(fd, 1024, buf)
	if err != nil || n != 512 {
		t.Fatalf("Mread = %d, %v", n, err)
	}
	if !bytes.Equal(buf, data[1024:1536]) {
		t.Fatal("inline read returned wrong bytes")
	}
	dSends, dRecvs := ct.sends.Load()-sends, ct.recvs.Load()-recvs
	if dSends != 1 || dRecvs != 1 {
		t.Fatalf("sub-MTU Mread cost %d sends + %d recvs, want exactly 1 + 1", dSends, dRecvs)
	}
	if st := s.cli.Stats(); st.InlineReads < 2 {
		t.Fatalf("InlineReads = %d, want >= 2", st.InlineReads)
	}
}

// TestReadFastPathStats: small reads ride the inline path, large reads
// the eager path, and both return the written bytes.
func TestReadFastPathStats(t *testing.T) {
	// Hedging disabled: a hedged read's disk leg can win the race and
	// satisfy the read without touching the eager path.
	s, _ := quietStack(t, nil)
	back := NewMemBacking(8, 256<<10)
	fd := mopenRetry(t, s.cli, 256<<10, back, 0)
	data := make([]byte, 256<<10)
	rand.New(rand.NewSource(6)).Read(data)
	if n, err := s.cli.Mwrite(fd, 0, data); err != nil || n != len(data) {
		t.Fatalf("Mwrite = %d, %v", n, err)
	}
	small := make([]byte, 1024)
	if n, err := s.cli.Mread(fd, 4096, small); err != nil || n != 1024 {
		t.Fatalf("small Mread = %d, %v", n, err)
	}
	if !bytes.Equal(small, data[4096:5120]) {
		t.Fatal("small read returned wrong bytes")
	}
	large := make([]byte, 256<<10)
	if n, err := s.cli.Mread(fd, 0, large); err != nil || n != len(large) {
		t.Fatalf("large Mread = %d, %v", n, err)
	}
	if !bytes.Equal(large, data) {
		t.Fatal("large read returned wrong bytes")
	}
	st := s.cli.Stats()
	if st.InlineReads == 0 {
		t.Fatalf("InlineReads = 0 after a sub-MTU read; stats %+v", st)
	}
	if st.EagerReads == 0 {
		t.Fatalf("EagerReads = 0 after a multi-window read; stats %+v", st)
	}
}

// TestReadFastPathDisabled: with DisableReadFastPath the client never
// requests inline or eager service and every read uses the legacy
// offer/accept ladder — and still returns the right bytes. This is the
// interop posture a new client takes against an old imd.
func TestReadFastPathDisabled(t *testing.T) {
	s, _ := quietStack(t, func(c *Config) { c.DisableReadFastPath = true })
	back := NewMemBacking(9, 128<<10)
	fd := mopenRetry(t, s.cli, 128<<10, back, 0)
	data := make([]byte, 128<<10)
	rand.New(rand.NewSource(7)).Read(data)
	if n, err := s.cli.Mwrite(fd, 0, data); err != nil || n != len(data) {
		t.Fatalf("Mwrite = %d, %v", n, err)
	}
	small := make([]byte, 700)
	if n, err := s.cli.Mread(fd, 100, small); err != nil || n != 700 {
		t.Fatalf("small Mread = %d, %v", n, err)
	}
	large := make([]byte, 128<<10)
	if n, err := s.cli.Mread(fd, 0, large); err != nil || n != len(large) {
		t.Fatalf("large Mread = %d, %v", n, err)
	}
	if !bytes.Equal(small, data[100:800]) || !bytes.Equal(large, data) {
		t.Fatal("legacy reads returned wrong bytes")
	}
	st := s.cli.Stats()
	if st.InlineReads != 0 || st.EagerReads != 0 || st.BatchReads != 0 {
		t.Fatalf("fast-path stats nonzero with the feature disabled: %+v", st)
	}
}

// TestMreadBatch: several same-host reads collapse into one batched
// exchange; per-item validation failures and short reads keep Mread's
// semantics.
func TestMreadBatch(t *testing.T) {
	s := newStack(t, 1, 1<<20)
	sizes := []int64{8 << 10, 12 << 10, 20 << 10}
	var fds []int
	var payloads [][]byte
	for i, size := range sizes {
		back := NewMemBacking(uint64(20+i), int(size))
		fd := mopenRetry(t, s.cli, size, back, 0)
		data := make([]byte, size)
		rand.New(rand.NewSource(int64(30 + i))).Read(data)
		if n, err := s.cli.Mwrite(fd, 0, data); err != nil || n != len(data) {
			t.Fatalf("Mwrite %d = %d, %v", i, n, err)
		}
		fds = append(fds, fd)
		payloads = append(payloads, data)
	}
	reqs := []BatchRead{
		{Fd: fds[0], Offset: 0, Buf: make([]byte, sizes[0])},
		{Fd: fds[1], Offset: 0, Buf: make([]byte, sizes[1])},
		// Tail read: buffer larger than what remains — short count.
		{Fd: fds[2], Offset: 16 << 10, Buf: make([]byte, 8<<10)},
		// Invalid descriptor.
		{Fd: 9999, Offset: 0, Buf: make([]byte, 16)},
		// Offset past the end of the region.
		{Fd: fds[0], Offset: sizes[0] + 1, Buf: make([]byte, 16)},
		// Zero-length read at exactly the end.
		{Fd: fds[0], Offset: sizes[0], Buf: make([]byte, 16)},
	}
	results := s.cli.MreadBatch(reqs)
	if len(results) != len(reqs) {
		t.Fatalf("MreadBatch returned %d results for %d requests", len(results), len(reqs))
	}
	if results[0].Err != nil || results[0].N != int(sizes[0]) || !bytes.Equal(reqs[0].Buf, payloads[0]) {
		t.Fatalf("item 0 = %d, %v", results[0].N, results[0].Err)
	}
	if results[1].Err != nil || results[1].N != int(sizes[1]) || !bytes.Equal(reqs[1].Buf, payloads[1]) {
		t.Fatalf("item 1 = %d, %v", results[1].N, results[1].Err)
	}
	if results[2].Err != nil || results[2].N != 4<<10 || !bytes.Equal(reqs[2].Buf[:4<<10], payloads[2][16<<10:]) {
		t.Fatalf("item 2 = %d, %v (want short read of 4096)", results[2].N, results[2].Err)
	}
	if results[3].Err == nil {
		t.Fatal("item 3 (bad fd) succeeded, want error")
	}
	if results[4].Err == nil {
		t.Fatal("item 4 (offset out of range) succeeded, want error")
	}
	if results[5].Err != nil || results[5].N != 0 {
		t.Fatalf("item 5 (zero-length) = %d, %v, want 0, nil", results[5].N, results[5].Err)
	}
	if st := s.cli.Stats(); st.BatchReads == 0 {
		t.Fatalf("BatchReads = 0 after a batched exchange; stats %+v", st)
	}
}

// TestMreadBatchSerialFallback: when the fast paths are disabled the
// batch API still serves every item, one Mread at a time.
func TestMreadBatchSerialFallback(t *testing.T) {
	s, _ := quietStack(t, func(c *Config) { c.DisableReadFastPath = true })
	var fds []int
	var payloads [][]byte
	for i := 0; i < 3; i++ {
		back := NewMemBacking(uint64(40+i), 4096)
		fd := mopenRetry(t, s.cli, 4096, back, 0)
		data := make([]byte, 4096)
		rand.New(rand.NewSource(int64(50 + i))).Read(data)
		if n, err := s.cli.Mwrite(fd, 0, data); err != nil || n != len(data) {
			t.Fatalf("Mwrite %d = %d, %v", i, n, err)
		}
		fds = append(fds, fd)
		payloads = append(payloads, data)
	}
	reqs := make([]BatchRead, len(fds))
	for i, fd := range fds {
		reqs[i] = BatchRead{Fd: fd, Buf: make([]byte, 4096)}
	}
	results := s.cli.MreadBatch(reqs)
	for i := range results {
		if results[i].Err != nil || results[i].N != 4096 || !bytes.Equal(reqs[i].Buf, payloads[i]) {
			t.Fatalf("item %d = %d, %v", i, results[i].N, results[i].Err)
		}
	}
	if st := s.cli.Stats(); st.BatchReads != 0 {
		t.Fatalf("BatchReads = %d with the fast paths disabled, want 0", st.BatchReads)
	}
}

func lossyEp() bulk.Config {
	return bulk.Config{
		CallTimeout:   150 * time.Millisecond,
		CallRetries:   8,
		WindowTimeout: 80 * time.Millisecond,
		NackDelay:     30 * time.Millisecond,
	}
}

// TestMreadFastPathUnderLoss: the eager fast path over a 35%-loss link
// must degrade to selective-NACK recovery and still deliver
// byte-identical data end to end. Setup calls (open, write) may fail
// outright under this much loss — those retry; reads that complete must
// be correct.
func TestMreadFastPathUnderLoss(t *testing.T) {
	n := transport.NewNetwork(transport.WithMTU(1500),
		transport.WithFaults(simnet.Faults{LossRate: 0.35, Seed: 42}))
	mgr := manager.New(n.Host("cmd"), manager.Config{
		KeepAliveInterval: 250 * time.Millisecond,
		KeepAliveMisses:   200,
		Endpoint:          lossyEp(),
	})
	d := imd.New(n.Host("imd0"), imd.Config{
		ManagerAddr:    "cmd",
		PoolSize:       1 << 20,
		Epoch:          1,
		StatusInterval: 100 * time.Millisecond,
		Endpoint:       lossyEp(),
	})
	cli := New(n.Host("client"), Config{
		ManagerAddr:      "cmd",
		ClientID:         1,
		RefractionPeriod: 50 * time.Millisecond,
		DisableHedging:   true,
		Endpoint:         lossyEp(),
	})
	t.Cleanup(func() {
		cli.Close()
		d.Close()
		mgr.Close()
	})
	data := make([]byte, 96<<10)
	rand.New(rand.NewSource(13)).Read(data)
	back := NewMemBacking(60, len(data))
	got := make([]byte, len(data))
	reads, fd := 0, -1
	deadline := time.Now().Add(60 * time.Second)
	for reads < 3 {
		if time.Now().After(deadline) {
			t.Fatalf("only %d/3 lossy reads completed before the deadline", reads)
		}
		if fd < 0 {
			f, err := cli.Mopen(int64(len(data)), back, 0)
			if err != nil {
				time.Sleep(50 * time.Millisecond)
				continue
			}
			if _, err := cli.Mwrite(f, 0, data); err != nil {
				// The write dropped the host; reopen and try again.
				continue
			}
			fd = f
		}
		n2, err := cli.Mread(fd, 0, got)
		if err != nil {
			fd = -1
			continue
		}
		if n2 != len(data) || !bytes.Equal(got, data) {
			t.Fatalf("lossy read %d delivered %d bytes, equal=%v", reads, n2, bytes.Equal(got, data))
		}
		reads++
	}
	if st := cli.Stats(); st.EagerReads == 0 {
		t.Fatalf("EagerReads = 0 after lossy multi-window reads; stats %+v", st)
	}
}

// BenchmarkSmallRead measures one 1 KB remote read through a full
// in-process stack: fastpath rides the inline DataResp (1 round trip),
// legacy walks the request/offer/accept/data/done ladder.
func BenchmarkSmallRead(b *testing.B) {
	for _, mode := range []struct {
		name    string
		disable bool
	}{{"fastpath", false}, {"legacy", true}} {
		b.Run(mode.name, func(b *testing.B) {
			n := transport.NewNetwork(transport.WithMTU(1500))
			mgr := manager.New(n.Host("cmd"), manager.Config{
				KeepAliveInterval: 10 * time.Second,
				KeepAliveMisses:   3,
				Endpoint:          fastEp(),
			})
			d := imd.New(n.Host("imd0"), imd.Config{
				ManagerAddr:    "cmd",
				PoolSize:       1 << 20,
				Epoch:          1,
				StatusInterval: 10 * time.Second,
				Endpoint:       fastEp(),
			})
			cli := New(n.Host("client"), Config{
				ManagerAddr:         "cmd",
				ClientID:            1,
				RefractionPeriod:    300 * time.Millisecond,
				DisableHedging:      true,
				DisableReadFastPath: mode.disable,
				Endpoint:            fastEp(),
			})
			defer func() {
				cli.Close()
				d.Close()
				mgr.Close()
			}()
			back := NewMemBacking(70, 64<<10)
			var fd int
			deadline := time.Now().Add(5 * time.Second)
			for {
				var err error
				fd, err = cli.Mopen(64<<10, back, 0)
				if err == nil {
					break
				}
				if time.Now().After(deadline) {
					b.Fatalf("Mopen never succeeded: %v", err)
				}
				time.Sleep(20 * time.Millisecond)
			}
			data := make([]byte, 64<<10)
			rand.New(rand.NewSource(21)).Read(data)
			if _, err := cli.Mwrite(fd, 0, data); err != nil {
				b.Fatal(err)
			}
			buf := make([]byte, 1024)
			b.SetBytes(1024)
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, err := cli.Mread(fd, int64(i%63)<<10, buf); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}
