package core

import (
	"bytes"
	"errors"
	"math/rand"
	"testing"
	"time"

	"dodo/internal/imd"
	"dodo/internal/manager"
	"dodo/internal/transport"
)

// hedgeStack builds a deployment whose client hedges aggressively: any
// host with one latency sample gets a near-zero hedge delay, so every
// subsequent remote read races a disk read.
func hedgeStack(t *testing.T, imdCount int) *stack {
	t.Helper()
	n := transport.NewNetwork(transport.WithMTU(1500))
	mgr := manager.New(n.Host("cmd"), manager.Config{
		KeepAliveInterval: 200 * time.Millisecond,
		KeepAliveMisses:   3,
		Endpoint:          fastEp(),
	})
	s := &stack{n: n, mgr: mgr}
	for i := 0; i < imdCount; i++ {
		d := imd.New(n.Host("imd"+string(rune('0'+i))), imd.Config{
			ManagerAddr:    "cmd",
			PoolSize:       1 << 20,
			Epoch:          1,
			StatusInterval: 100 * time.Millisecond,
			Endpoint:       fastEp(),
		})
		s.imds = append(s.imds, d)
	}
	s.cli = New(n.Host("client"), Config{
		ManagerAddr:      "cmd",
		ClientID:         1,
		RefractionPeriod: 300 * time.Millisecond,
		HedgeMultiplier:  1e-6,
		HedgeFloor:       time.Nanosecond,
		Endpoint:         fastEp(),
	})
	t.Cleanup(func() {
		s.cli.Close()
		for _, d := range s.imds {
			d.Close()
		}
		mgr.Close()
	})
	return s
}

// TestHedgeColdStartPerEpoch pins the EWMA bootstrap rule: a host with
// no latency samples under its current epoch is never hedged against —
// including a freshly recruited incarnation of a host we knew under an
// older epoch — so the very first read to a new imd cannot waste a disk
// read on an unknown latency.
func TestHedgeColdStartPerEpoch(t *testing.T) {
	s := newStack(t, 1, 1<<20)
	c := s.cli

	if _, hedge := c.hedgeDelay("imd0", 1); hedge {
		t.Fatal("hedged with no samples at all")
	}
	c.recordLatency("imd0", 1, 10*time.Millisecond)
	d, hedge := c.hedgeDelay("imd0", 1)
	if !hedge {
		t.Fatal("not hedging with a sample on the books")
	}
	if want := 40 * time.Millisecond; d != want { // multiplier default 4
		t.Fatalf("hedge delay = %v, want %v", d, want)
	}
	// The host restarts under a new epoch: its history is void, the
	// first read of the new incarnation must go unhedged.
	if _, hedge := c.hedgeDelay("imd0", 2); hedge {
		t.Fatal("hedged the first read to a fresh incarnation")
	}
	c.recordLatency("imd0", 2, 100*time.Microsecond)
	d, hedge = c.hedgeDelay("imd0", 2)
	if !hedge {
		t.Fatal("new incarnation never warmed up")
	}
	if want := 2 * time.Millisecond; d != want { // floored (default 2ms)
		t.Fatalf("floored hedge delay = %v, want %v", d, want)
	}

	// DisableHedging wins over any history.
	off := New(s.n.Host("client2"), Config{
		ManagerAddr: "cmd", ClientID: 2, DisableHedging: true, Endpoint: fastEp(),
	})
	t.Cleanup(func() { off.Close() })
	off.recordLatency("imd0", 1, 10*time.Millisecond)
	if _, hedge := off.hedgeDelay("imd0", 1); hedge {
		t.Fatal("DisableHedging did not disable hedging")
	}
}

// TestHedgedReadsStayFresh: with hedging forced on, reads race the
// backing store — and must still always return the latest written
// bytes, because Mwrite writes through to the backing before
// confirming. The first read stays unhedged (cold start), later reads
// hedge and stay correct across interleaved writes.
func TestHedgedReadsStayFresh(t *testing.T) {
	s := hedgeStack(t, 1)
	back := NewMemBacking(61, 1<<20)
	fd, err := s.cli.Mopen(32<<10, back, 0)
	if err != nil {
		t.Fatal(err)
	}
	buf := make([]byte, 32<<10)
	data := make([]byte, 32<<10)
	for round := 0; round < 4; round++ {
		rand.New(rand.NewSource(int64(round) + 500)).Read(data)
		if _, err := s.cli.Mwrite(fd, 0, data); err != nil {
			t.Fatalf("round %d: Mwrite: %v", round, err)
		}
		n, err := s.cli.Mread(fd, 0, buf)
		if err != nil || n != len(buf) {
			t.Fatalf("round %d: Mread = %d, %v", round, n, err)
		}
		if !bytes.Equal(buf, data) {
			t.Fatalf("round %d: hedged read returned bytes older than the confirmed write", round)
		}
		st := s.cli.Stats()
		if round == 0 && st.HedgedReads != 0 {
			t.Fatalf("first read to a fresh host hedged: %+v", st)
		}
		if round > 0 && st.HedgedReads < int64(round) {
			t.Fatalf("round %d: hedging never engaged: %+v", round, st)
		}
	}
}

// TestHedgedReadSurvivesDeadHost: once the client has a latency sample,
// a read against a crashed imd is answered by the hedge's disk leg —
// the caller sees a successful, byte-correct read instead of ErrNoMem,
// while the drop still triggers background recovery.
func TestHedgedReadSurvivesDeadHost(t *testing.T) {
	s := hedgeStack(t, 1)
	back := NewMemBacking(62, 1<<20)
	fd, err := s.cli.Mopen(16<<10, back, 0)
	if err != nil {
		t.Fatal(err)
	}
	data := make([]byte, 16<<10)
	rand.New(rand.NewSource(99)).Read(data)
	if _, err := s.cli.Mwrite(fd, 0, data); err != nil {
		t.Fatal(err)
	}
	buf := make([]byte, 16<<10)
	if _, err := s.cli.Mread(fd, 0, buf); err != nil {
		t.Fatalf("warm-up read: %v", err)
	}

	s.imds[0].Crash()
	n, err := s.cli.Mread(fd, 0, buf)
	if err != nil || n != len(buf) {
		t.Fatalf("hedged read against dead host = %d, %v; want disk-leg success", n, err)
	}
	if !bytes.Equal(buf, data) {
		t.Fatal("disk leg served wrong bytes")
	}
	st := s.cli.Stats()
	if st.HedgedReads == 0 || st.HedgeWins == 0 {
		t.Fatalf("disk leg never credited: %+v", st)
	}
	// The losing remote leg finishes in the background; its failure must
	// still drop the host so recovery kicks in.
	deadline := time.Now().Add(5 * time.Second)
	for s.cli.Stats().DropEvents == 0 {
		if time.Now().After(deadline) {
			t.Fatalf("remote failure never dropped the host for recovery: %+v", s.cli.Stats())
		}
		time.Sleep(10 * time.Millisecond)
	}
}

// TestCloseDuringHedgedReads: Close must be able to join in-flight
// hedged-read legs without tripping the WaitGroup reuse rule — the
// counter must never rise from zero while Close's Wait runs. Readers
// race Close from several goroutines; under the race detector (and
// often without it) an unguarded hedgeWG.Add panics here.
func TestCloseDuringHedgedReads(t *testing.T) {
	for round := 0; round < 3; round++ {
		s := hedgeStack(t, 1)
		back := NewMemBacking(uint64(70+round), 1<<20)
		fd, err := s.cli.Mopen(8192, back, 0)
		if err != nil {
			t.Fatal(err)
		}
		payload := bytes.Repeat([]byte{0x42}, 8192)
		if _, err := s.cli.Mwrite(fd, 0, payload); err != nil {
			t.Fatal(err)
		}
		// One warm read records a latency sample, so every read below
		// spawns hedge legs.
		buf := make([]byte, 8192)
		if _, err := s.cli.Mread(fd, 0, buf); err != nil {
			t.Fatal(err)
		}
		done := make(chan struct{})
		for g := 0; g < 4; g++ {
			go func() {
				defer func() { done <- struct{}{} }()
				b := make([]byte, 8192)
				for {
					if _, err := s.cli.Mread(fd, 0, b); errors.Is(err, ErrClosed) {
						return
					}
				}
			}()
		}
		time.Sleep(time.Duration(10+10*round) * time.Millisecond)
		s.cli.Close()
		for g := 0; g < 4; g++ {
			<-done
		}
	}
}

// TestHedgeLegRefusedAfterClose pins the gate directly: once Close has
// flipped the flag, no code path may register new hedge legs (the
// WaitGroup counter must never rise from zero while Close waits).
func TestHedgeLegRefusedAfterClose(t *testing.T) {
	s := hedgeStack(t, 1)
	s.cli.Close()
	if s.cli.tryHedgeLeg() {
		t.Fatal("tryHedgeLeg succeeded on a closed client")
	}
}
