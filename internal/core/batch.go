package core

import (
	"fmt"
	"sort"

	"dodo/internal/bulk"
	"dodo/internal/wire"
)

// BatchRead is one item of an MreadBatch call: read up to len(Buf)
// bytes at Offset within region Fd into Buf.
type BatchRead struct {
	Fd     int
	Offset int64
	Buf    []byte
}

// BatchResult is the per-item outcome of an MreadBatch call, with the
// same semantics as the matching Mread's return values.
type BatchResult struct {
	N   int
	Err error
}

// batchItem is one validated, batch-eligible MreadBatch entry.
type batchItem struct {
	idx  int // index into the caller's reqs/results
	fd   int
	off  int64
	want int64
	buf  []byte
	r    regionState
}

// MreadBatch performs several reads at once. Items whose regions live
// on the same imd — and whose host advertises the batched-read
// capability — ride a single request/response exchange feeding one
// bulk stream, instead of one full read protocol per region; everything
// else falls back to individual Mread calls. The region cache's
// prefetch pipeline is the intended caller: a PrefetchWindow of
// same-file regions usually lands on few hosts, so the window's worth
// of round trips collapses into one or two.
//
// The returned slice has one entry per request, in order.
func (c *Client) MreadBatch(reqs []BatchRead) []BatchResult {
	results := make([]BatchResult, len(reqs))
	groups := make(map[string][]*batchItem)
	var serial []int
	for i := range reqs {
		r, err := c.lookup(reqs[i].Fd)
		if err != nil {
			results[i] = BatchResult{-1, err}
			continue
		}
		off := reqs[i].Offset
		if off < 0 || off > r.length {
			results[i] = BatchResult{-1, fmt.Errorf("%w: offset %d in %d-byte region", ErrInval, off, r.length)}
			continue
		}
		if !r.valid {
			results[i] = BatchResult{-1, fmt.Errorf("%w: region %d is not active", ErrNoMem, reqs[i].Fd)}
			continue
		}
		want := int64(len(reqs[i].Buf))
		if off+want > r.length {
			want = r.length - off
		}
		if want == 0 {
			results[i] = BatchResult{0, nil}
			continue
		}
		if c.readCaps(r)&wire.CapBatchRead == 0 {
			serial = append(serial, i)
			continue
		}
		groups[r.remote.HostAddr] = append(groups[r.remote.HostAddr],
			&batchItem{idx: i, fd: reqs[i].Fd, off: off, want: want, buf: reqs[i].Buf, r: r})
	}
	hosts := make([]string, 0, len(groups))
	for host := range groups {
		hosts = append(hosts, host)
	}
	sort.Strings(hosts)
	for _, host := range hosts {
		items := groups[host]
		if len(items) == 1 {
			// A batch of one gains nothing over the single-read fast
			// path, which can also assemble straight into the buffer.
			serial = append(serial, items[0].idx)
			continue
		}
		// Split so each exchange's concatenated stream stays within a
		// single transfer.
		start, total := 0, int64(0)
		for i, it := range items {
			if i > start && total+it.want > bulk.MaxTransfer {
				c.batchGroup(host, items[start:i], total, results)
				start, total = i, 0
			}
			total += it.want
		}
		c.batchGroup(host, items[start:], total, results)
	}
	for _, i := range serial {
		results[i].N, results[i].Err = c.Mread(reqs[i].Fd, reqs[i].Offset, reqs[i].Buf)
	}
	return results
}

// batchGroup runs one ReadBatchReq exchange against host for items
// (all hosted there, concatenated stream length total) and fills in
// their results. Protocol-level refusals fall back to individual
// Mreads; transport-level failures drop the host like any other read.
func (c *Client) batchGroup(host string, items []*batchItem, total int64, results []BatchResult) {
	failAll := func(err error) {
		for _, it := range items {
			results[it.idx] = BatchResult{-1, err}
		}
	}
	fallback := func() {
		for _, it := range items {
			results[it.idx].N, results[it.idx].Err = c.Mread(it.fd, it.off, it.buf)
		}
	}
	// The response stream is one slot per item, each exactly the
	// requested length (zero-padded on per-item failure), so its total
	// size is known up front — pre-register the receive before the
	// request leaves, as for eager single reads.
	stream := make([]byte, total)
	id := c.ep.NextTransferID()
	chunk := c.ep.ChunkSize()
	window, err := c.ep.ExpectBulkInto(stream, host, id, chunk)
	if err != nil {
		fallback()
		return
	}
	witems := make([]wire.ReadBatchItem, len(items))
	for i, it := range items {
		witems[i] = wire.ReadBatchItem{
			RegionID: it.r.remote.RegionID,
			Epoch:    it.r.remote.Epoch,
			Offset:   uint64(it.off),
			Length:   uint64(it.want),
		}
	}
	req := &wire.ReadBatchReq{
		Caps:      wire.CapInlineRead | wire.CapEagerRead | wire.CapBatchRead,
		XferID:    id,
		ChunkSize: uint32(chunk),
		Window:    uint32(window),
		Items:     witems,
	}
	resp, err := c.ep.Call(host, req)
	if err != nil {
		c.ep.CancelExpect(host, id)
		c.dropHost(host)
		failAll(fmt.Errorf("%w: host %s unreachable: %v", ErrNoMem, host, err))
		return
	}
	br, ok := resp.(*wire.ReadBatchResp)
	if !ok {
		c.ep.CancelExpect(host, id)
		c.dropHost(host)
		failAll(fmt.Errorf("%w: unexpected response %v", ErrNoMem, resp.Kind()))
		return
	}
	if br.Status != wire.StatusOK || len(br.Results) != len(items) {
		// The imd refused the batch as a whole (draining, oversize,
		// or a host that stopped speaking batch); each read still has
		// the full single-read machinery to fall back on.
		c.ep.CancelExpect(host, id)
		fallback()
		return
	}
	switch {
	case br.Flags&wire.DataFlagInline != 0:
		c.ep.CancelExpect(host, id)
		if int64(len(br.Payload)) != total {
			fallback()
			return
		}
		copy(stream, br.Payload)
	case br.Flags&wire.DataFlagEager != 0:
		if _, err := c.ep.RecvBulkInto(stream, host, id, dataBudget(total)); err != nil {
			c.dropHost(host)
			failAll(fmt.Errorf("%w: transfer failed: %v", ErrNoMem, err))
			return
		}
	default:
		c.ep.CancelExpect(host, id)
		fallback()
		return
	}
	c.batchReads.Add(1)
	off := int64(0)
	for i, it := range items {
		slot := stream[off : off+it.want]
		off += it.want
		res := br.Results[i]
		if res.Status != wire.StatusOK {
			// Only this item's region was refused (stale epoch, freed
			// region); re-run it through the single-read path, whose
			// drop/fallback handling the caller already expects.
			results[it.idx].N, results[it.idx].Err = c.Mread(it.fd, it.off, it.buf)
			continue
		}
		n := int(res.Count)
		if n > len(slot) {
			n = len(slot)
		}
		if res.Crc != 0 && wire.Checksum(slot[:n]) != res.Crc {
			results[it.idx] = BatchResult{-1, c.failChecksum(host)}
			continue
		}
		results[it.idx] = BatchResult{copy(it.buf, slot[:n]), nil}
		c.remoteReads.Add(1)
		c.remoteReadBy.Add(int64(n))
	}
}
