package core

import (
	"bytes"
	"errors"
	"testing"
	"time"

	"dodo/internal/imd"
	"dodo/internal/manager"
	"dodo/internal/transport"
)

// TestManagerUnreachableDegradesGracefully: with the central manager
// gone, no new regions can be allocated — but data-path operations to
// live imds keep working (control and data planes are separate, §4).
func TestManagerUnreachableDegradesGracefully(t *testing.T) {
	s := newStack(t, 1, 1<<20)
	back := NewMemBacking(21, 1<<20)
	fd, err := s.cli.Mopen(8192, back, 0)
	if err != nil {
		t.Fatal(err)
	}
	payload := bytes.Repeat([]byte{0x11}, 8192)
	if _, err := s.cli.Mwrite(fd, 0, payload); err != nil {
		t.Fatal(err)
	}

	// The manager's machine dies.
	s.n.Partition("cmd")

	// Reads and writes go directly to the imd: still fine.
	buf := make([]byte, 8192)
	if n, err := s.cli.Mread(fd, 0, buf); err != nil || n != 8192 {
		t.Fatalf("Mread with dead manager = %d, %v", n, err)
	}
	if !bytes.Equal(buf, payload) {
		t.Fatal("data corrupted")
	}
	if _, err := s.cli.Mwrite(fd, 4096, payload[:1024]); err != nil {
		t.Fatalf("Mwrite with dead manager: %v", err)
	}
	// New allocations fail with ENOMEM semantics.
	if _, err := s.cli.Mopen(4096, back, 8192); !errors.Is(err, ErrNoMem) {
		t.Fatalf("Mopen with dead manager = %v, want ErrNoMem", err)
	}
	// Mclose cannot reach the manager; it reports the failure.
	if err := s.cli.Mclose(fd); err == nil {
		t.Fatal("Mclose with dead manager succeeded")
	}
}

// TestNetworkFlapRecoversViaCheckAlloc: a transient partition drops the
// client's descriptors, but the region is still alive at the imd and in
// the manager's directory; checkAlloc revalidates it after the heal
// (§4.3's purpose).
func TestNetworkFlapRecoversViaCheckAlloc(t *testing.T) {
	s := newStack(t, 1, 1<<20)
	back := NewMemBacking(22, 1<<20)
	fd, err := s.cli.Mopen(8192, back, 0)
	if err != nil {
		t.Fatal(err)
	}
	payload := bytes.Repeat([]byte{0x22}, 8192)
	if _, err := s.cli.Mwrite(fd, 0, payload); err != nil {
		t.Fatal(err)
	}

	// Flap: the imd's switch port goes dark, one read fails, the
	// descriptor drops.
	s.n.Partition("imd0")
	buf := make([]byte, 8192)
	if _, err := s.cli.Mread(fd, 0, buf); !errors.Is(err, ErrNoMem) {
		t.Fatalf("Mread during flap = %v, want ErrNoMem", err)
	}
	if s.cli.RegionValid(fd) {
		t.Fatal("descriptor still valid during flap")
	}
	s.n.Heal("imd0")

	// checkAlloc revalidates: the epoch still matches, the region is
	// intact, the descriptor comes back.
	ok, err := s.cli.CheckAlloc(fd)
	if err != nil || !ok {
		t.Fatalf("CheckAlloc after heal = %v, %v; want true", ok, err)
	}
	if !s.cli.RegionValid(fd) {
		t.Fatal("descriptor not restored after CheckAlloc")
	}
	n, err := s.cli.Mread(fd, 0, buf)
	if err != nil || n != 8192 || !bytes.Equal(buf, payload) {
		t.Fatalf("Mread after recovery = %d, %v", n, err)
	}
}

// TestTwoClientsAreIsolated: the multi-client extension of footnote 4 —
// region keys include the client id, so two applications caching the
// same (inode, offset) range get independent regions.
func TestTwoClientsAreIsolated(t *testing.T) {
	n := transport.NewNetwork(transport.WithMTU(1500))
	mgr := manager.New(n.Host("cmd"), manager.Config{
		KeepAliveInterval: time.Hour,
		Endpoint:          fastEp(),
	})
	d := imd.New(n.Host("imd0"), imd.Config{
		ManagerAddr: "cmd", PoolSize: 1 << 20, Epoch: 1,
		StatusInterval: 100 * time.Millisecond, Endpoint: fastEp(),
	})
	t.Cleanup(func() { d.Close(); mgr.Close() })

	cliA := New(n.Host("appA"), Config{ManagerAddr: "cmd", ClientID: 1, Endpoint: fastEp()})
	cliB := New(n.Host("appB"), Config{ManagerAddr: "cmd", ClientID: 2, Endpoint: fastEp()})
	t.Cleanup(func() { cliA.Close(); cliB.Close() })

	// Same backing identity, same offset — different clients.
	backA := NewMemBacking(50, 1<<20)
	backB := NewMemBacking(50, 1<<20)
	fdA, err := cliA.Mopen(4096, backA, 0)
	if err != nil {
		t.Fatal(err)
	}
	fdB, err := cliB.Mopen(4096, backB, 0)
	if err != nil {
		t.Fatal(err)
	}
	// Two distinct regions must exist.
	if got := mgr.Stats().Regions; got != 2 {
		t.Fatalf("manager regions = %d, want 2 (per-client isolation)", got)
	}
	// Writes do not bleed across clients.
	if _, err := cliA.Mwrite(fdA, 0, bytes.Repeat([]byte{0xAA}, 4096)); err != nil {
		t.Fatal(err)
	}
	if _, err := cliB.Mwrite(fdB, 0, bytes.Repeat([]byte{0xBB}, 4096)); err != nil {
		t.Fatal(err)
	}
	bufA := make([]byte, 4096)
	bufB := make([]byte, 4096)
	if _, err := cliA.Mread(fdA, 0, bufA); err != nil {
		t.Fatal(err)
	}
	if _, err := cliB.Mread(fdB, 0, bufB); err != nil {
		t.Fatal(err)
	}
	if bufA[0] != 0xAA || bufB[0] != 0xBB {
		t.Fatalf("cross-client bleed: A sees %x, B sees %x", bufA[0], bufB[0])
	}
	// A's Mclose must not disturb B.
	if err := cliA.Mclose(fdA); err != nil {
		t.Fatal(err)
	}
	if _, err := cliB.Mread(fdB, 0, bufB); err != nil || bufB[0] != 0xBB {
		t.Fatalf("B's region damaged by A's close: %v", err)
	}
}

// TestSameClientIDSharesRegions: two processes presenting the same
// client id share the region namespace — the paper's single-client
// semantics, which is also how dmine's re-run finds its data.
func TestSameClientIDSharesRegions(t *testing.T) {
	n := transport.NewNetwork(transport.WithMTU(1500))
	mgr := manager.New(n.Host("cmd"), manager.Config{
		KeepAliveInterval: time.Hour,
		Endpoint:          fastEp(),
	})
	d := imd.New(n.Host("imd0"), imd.Config{
		ManagerAddr: "cmd", PoolSize: 1 << 20, Epoch: 1,
		StatusInterval: 100 * time.Millisecond, Endpoint: fastEp(),
	})
	t.Cleanup(func() { d.Close(); mgr.Close() })

	back := NewMemBacking(60, 1<<20)
	first := New(n.Host("p1"), Config{ManagerAddr: "cmd", ClientID: 9, Endpoint: fastEp()})
	fd1, err := first.Mopen(4096, back, 0)
	if err != nil {
		t.Fatal(err)
	}
	want := bytes.Repeat([]byte{0x77}, 4096)
	if _, err := first.Mwrite(fd1, 0, want); err != nil {
		t.Fatal(err)
	}
	first.Close()

	second := New(n.Host("p2"), Config{ManagerAddr: "cmd", ClientID: 9, Endpoint: fastEp()})
	defer second.Close()
	fd2, err := second.Mopen(4096, back, 0)
	if err != nil {
		t.Fatal(err)
	}
	got := make([]byte, 4096)
	if _, err := second.Mread(fd2, 0, got); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, want) {
		t.Fatal("second process with the same client id did not see the cached data")
	}
	if mgr.Stats().Regions != 1 {
		t.Fatalf("regions = %d, want 1 shared", mgr.Stats().Regions)
	}
}

// TestConcurrentReadersAndWritersOneClient: the runtime library is safe
// for concurrent use by application goroutines.
func TestConcurrentReadersAndWritersOneClient(t *testing.T) {
	s := newStack(t, 2, 1<<20)
	back := NewMemBacking(70, 1<<20)
	const regions = 8
	fds := make([]int, regions)
	for i := range fds {
		fd, err := s.cli.Mopen(16<<10, back, int64(i)*16<<10)
		if err != nil {
			t.Fatal(err)
		}
		fds[i] = fd
	}
	errCh := make(chan error, regions*2)
	for i := range fds {
		i := i
		go func() {
			payload := bytes.Repeat([]byte{byte(i + 1)}, 16<<10)
			_, err := s.cli.Mwrite(fds[i], 0, payload)
			errCh <- err
		}()
	}
	for i := 0; i < regions; i++ {
		if err := <-errCh; err != nil {
			t.Fatalf("concurrent write: %v", err)
		}
	}
	for i := range fds {
		i := i
		go func() {
			buf := make([]byte, 16<<10)
			n, err := s.cli.Mread(fds[i], 0, buf)
			if err == nil && (n != 16<<10 || buf[0] != byte(i+1)) {
				err = errors.New("corrupt read")
			}
			errCh <- err
		}()
	}
	for i := 0; i < regions; i++ {
		if err := <-errCh; err != nil {
			t.Fatalf("concurrent read: %v", err)
		}
	}
}
