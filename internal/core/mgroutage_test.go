package core

import (
	"bytes"
	"errors"
	"testing"
	"time"

	"dodo/internal/imd"
	"dodo/internal/manager"
	"dodo/internal/transport"
)

// outageStack is a deployment whose manager can be crashed and
// restarted under a new incarnation, exercising the client's
// manager-outage mode.
type outageStack struct {
	n   *transport.Network
	d   *imd.Daemon
	cli *Client
}

func newOutageStack(t *testing.T, firstInc uint64) (*outageStack, *manager.Manager) {
	t.Helper()
	n := transport.NewNetwork(transport.WithMTU(1500))
	mgr := manager.New(n.Host("cmd"), outageMgrConfig(firstInc))
	d := imd.New(n.Host("imd0"), imd.Config{
		ManagerAddr:    "cmd",
		PoolSize:       1 << 20,
		Epoch:          1,
		StatusInterval: 50 * time.Millisecond,
		Endpoint:       fastEp(),
	})
	cli := New(n.Host("client"), Config{
		ManagerAddr: "cmd",
		ClientID:    1,
		// OutageWindow defaults to half of this: 5s of queueing.
		RefractionPeriod: 10 * time.Second,
		RecoveryBackoff:  50 * time.Millisecond,
		Endpoint:         fastEp(),
	})
	t.Cleanup(func() { cli.Close(); d.Close() })
	deadline := time.Now().Add(5 * time.Second)
	for time.Now().Before(deadline) && mgr.Stats().IdleHosts == 0 {
		time.Sleep(10 * time.Millisecond)
	}
	if mgr.Stats().IdleHosts != 1 {
		t.Fatal("manager never saw the imd")
	}
	return &outageStack{n: n, d: d, cli: cli}, mgr
}

func outageMgrConfig(inc uint64) manager.Config {
	return manager.Config{
		KeepAliveInterval: 100 * time.Millisecond,
		KeepAliveMisses:   5,
		Incarnation:       inc,
		RebuildGrace:      300 * time.Millisecond,
		Endpoint:          fastEp(),
	}
}

// TestMopenQueuesThroughManagerOutage: with the manager down, Mopen
// enters outage mode — it queues under capped backoff instead of
// failing — and completes transparently once a restarted manager (new
// incarnation) finishes its rebuild window. Descriptors opened against
// the dead incarnation keep serving and revalidate onto the new one.
func TestMopenQueuesThroughManagerOutage(t *testing.T) {
	s, mgr := newOutageStack(t, 1)

	back0 := NewMemBacking(100, 8<<10)
	fd0, err := s.cli.Mopen(8<<10, back0, 0)
	if err != nil {
		t.Fatalf("warm-up Mopen: %v", err)
	}
	data := bytes.Repeat([]byte{0xA5}, 8<<10)
	if n, err := s.cli.Mwrite(fd0, 0, data); err != nil || n != len(data) {
		t.Fatalf("warm-up Mwrite = %d, %v", n, err)
	}

	// Crash: the process dies, the directory dies with it.
	mgr.Close()

	type result struct {
		fd  int
		err error
	}
	back1 := NewMemBacking(101, 4<<10)
	done := make(chan result, 1)
	go func() {
		fd, err := s.cli.Mopen(4<<10, back1, 0)
		done <- result{fd, err}
	}()

	// The allocation must queue, not fail fast.
	select {
	case r := <-done:
		t.Fatalf("Mopen returned (%d, %v) while the manager was down; want outage-mode queueing", r.fd, r.err)
	case <-time.After(250 * time.Millisecond):
	}

	mgr2 := manager.New(s.n.Host("cmd"), outageMgrConfig(2))
	t.Cleanup(func() { mgr2.Close() })

	var r result
	select {
	case r = <-done:
	case <-time.After(8 * time.Second):
		t.Fatal("Mopen still queued 8s after the manager restarted")
	}
	if r.err != nil || r.fd < 0 {
		t.Fatalf("queued Mopen = (%d, %v), want success after restart", r.fd, r.err)
	}
	small := bytes.Repeat([]byte{0x5A}, 4<<10)
	if n, err := s.cli.Mwrite(r.fd, 0, small); err != nil || n != len(small) {
		t.Fatalf("Mwrite on post-restart region = %d, %v", n, err)
	}

	// The pre-crash descriptor keeps serving: its bytes live on the imd,
	// which the crash never touched.
	got := make([]byte, len(data))
	if n, err := s.cli.Mread(fd0, 0, got); err != nil || n != len(data) {
		t.Fatalf("Mread on pre-crash region = %d, %v", n, err)
	}
	if !bytes.Equal(got, data) {
		t.Fatal("pre-crash region served wrong bytes after the restart")
	}

	// And the client catches up to the new incarnation via keep-alives
	// or its revalidation traffic.
	deadline := time.Now().Add(5 * time.Second)
	for time.Now().Before(deadline) && s.cli.Stats().ManagerIncarnation < 2 {
		time.Sleep(20 * time.Millisecond)
	}
	if st := s.cli.Stats(); st.ManagerIncarnation != 2 {
		t.Fatalf("client never adopted incarnation 2: %+v", st)
	}
}

// TestStaleManagerIncarnationFenced: a client that has seen incarnation
// N refuses responses stamped with an older incarnation (a zombie or
// delayed pre-crash instance) instead of acting on its directory, and
// its regions keep serving untouched.
func TestStaleManagerIncarnationFenced(t *testing.T) {
	s, mgr := newOutageStack(t, 2)

	back := NewMemBacking(200, 8<<10)
	fd, err := s.cli.Mopen(8<<10, back, 0)
	if err != nil {
		t.Fatalf("Mopen: %v", err)
	}
	data := bytes.Repeat([]byte{0x3C}, 8<<10)
	if n, err := s.cli.Mwrite(fd, 0, data); err != nil || n != len(data) {
		t.Fatalf("Mwrite = %d, %v", n, err)
	}
	if st := s.cli.Stats(); st.ManagerIncarnation != 2 {
		t.Fatalf("client incarnation = %d, want 2", st.ManagerIncarnation)
	}

	// Replace the live manager with a zombie running the dead
	// incarnation 1 at the same address.
	mgr.Close()
	zombie := manager.New(s.n.Host("cmd"), outageMgrConfig(1))
	t.Cleanup(func() { zombie.Close() })

	// checkAlloc against the zombie is fenced client-side: error, not a
	// verdict on the region.
	if ok, err := s.cli.CheckAlloc(fd); err == nil {
		t.Fatalf("CheckAlloc against a dead incarnation = (%v, nil), want an error", ok)
	} else if !errors.Is(err, ErrNoMem) {
		t.Fatalf("CheckAlloc error = %v, want ErrNoMem", err)
	}

	// The region was not invalidated by the fenced exchange.
	got := make([]byte, len(data))
	if n, err := s.cli.Mread(fd, 0, got); err != nil || n != len(data) {
		t.Fatalf("Mread after fencing = %d, %v", n, err)
	}
	if !bytes.Equal(got, data) {
		t.Fatal("region served wrong bytes after a fenced exchange")
	}
	if st := s.cli.Stats(); st.ManagerIncarnation != 2 {
		t.Fatalf("client regressed to incarnation %d", st.ManagerIncarnation)
	}
}
