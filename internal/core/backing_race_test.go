package core

import (
	"sync"
	"testing"
)

// TestMemBackingReadOnlyConcurrent is the regression test for the race
// the guarded-by pass found: SetReadOnly and Writable touched readOnly
// without MemBacking.mu while WriteAt read it under the lock. Before
// the fix this test fails under -race (concurrent unsynchronized
// read/write of b.readOnly); after it, every access goes through mu.
func TestMemBackingReadOnlyConcurrent(t *testing.T) {
	b := NewMemBacking(7, 4096)
	var wg sync.WaitGroup
	start := make(chan struct{})
	wg.Add(3)
	go func() {
		defer wg.Done()
		<-start
		b.SetReadOnly()
	}()
	go func() {
		defer wg.Done()
		<-start
		for i := 0; i < 100; i++ {
			_ = b.Writable()
		}
	}()
	go func() {
		defer wg.Done()
		<-start
		buf := []byte("payload")
		for i := 0; i < 100; i++ {
			// Errors are expected once SetReadOnly lands; the point is
			// that the readOnly check itself is synchronized.
			_, _ = b.WriteAt(buf, int64(i))
		}
	}()
	close(start)
	wg.Wait()
	if b.Writable() {
		t.Fatal("backing still writable after SetReadOnly")
	}
	if _, err := b.WriteAt([]byte("x"), 0); err == nil {
		t.Fatal("WriteAt succeeded on a read-only backing")
	}
}
