package core

import (
	"errors"
	"fmt"
	"io"
	"log"
	"math/rand"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"dodo/internal/bulk"
	"dodo/internal/locks"
	"dodo/internal/retry"
	"dodo/internal/sim"
	"dodo/internal/transport"
	"dodo/internal/wire"
)

// Errors mirroring the errno values of the paper's API (§3.2).
var (
	// ErrNoMem is the ENOMEM of §3.2: no remote memory could be
	// allocated, or the region is no longer active (host crashed,
	// reclaimed, or region dropped).
	ErrNoMem = errors.New("dodo: remote memory unavailable (ENOMEM)")
	// ErrInval is the EINVAL of §3.2: bad descriptor, offset, length or
	// backing file.
	ErrInval = errors.New("dodo: invalid argument (EINVAL)")
	// ErrClosed reports use of a closed client.
	ErrClosed = errors.New("dodo: client closed")
)

// Config tunes the runtime library.
type Config struct {
	// ManagerAddr is the central manager's transport address.
	ManagerAddr string
	// ClientID distinguishes clients in region keys (multi-client
	// extension of the paper's footnote 4).
	ClientID uint32
	// RefractionPeriod suppresses allocation attempts after a failed
	// one (§3.1; default 5s).
	RefractionPeriod time.Duration
	// RecoveryBackoff is the initial delay before the background
	// recovery pass probes dropped regions; it doubles per failed pass,
	// capped at RefractionPeriod (default RefractionPeriod/8).
	RecoveryBackoff time.Duration
	// DisableRecovery turns the background recovery pass off, restoring
	// the paper's original drop-and-forget behavior.
	DisableRecovery bool
	// OutageWindow bounds manager-outage mode: when the manager is
	// unreachable (crashed, restarting) or still rebuilding its
	// directory (StatusBusy), Mopen queues behind a capped-exponential
	// backoff for up to this long before giving up with ErrNoMem.
	// Reads and writes against already-validated regions never touch
	// the manager and keep working throughout (default
	// RefractionPeriod/2).
	OutageWindow time.Duration
	// HedgeMultiplier scales the per-host EWMA read latency into the
	// hedge delay: a remote read still outstanding after Multiplier
	// times the mean triggers a backup read from the backing file
	// (default 4).
	HedgeMultiplier float64
	// HedgeFloor is the minimum hedge delay, so a run of fast samples
	// cannot make the client hedge every read (default 2ms).
	HedgeFloor time.Duration
	// DisableHedging turns hedged reads off.
	DisableHedging bool
	// DisableReadFastPath turns the negotiated read fast paths off
	// (inline small reads, eager-first-window transfers, batched
	// fetches), forcing every read through the legacy
	// request/offer/accept ladder. For benchmarks and interop tests.
	DisableReadFastPath bool
	// Seed seeds recovery-backoff jitter; 0 uses a fixed default so
	// test runs are reproducible.
	Seed int64
	// Clock provides time (default wall clock).
	Clock sim.Clock
	// Endpoint tunes the messaging layer.
	Endpoint bulk.Config
	// Logger receives operational events; nil silences them.
	Logger *log.Logger
}

func (c Config) withDefaults() Config {
	if c.RefractionPeriod == 0 {
		c.RefractionPeriod = 5 * time.Second
	}
	if c.RecoveryBackoff == 0 {
		c.RecoveryBackoff = c.RefractionPeriod / 8
	}
	if c.OutageWindow == 0 {
		c.OutageWindow = c.RefractionPeriod / 2
	}
	if c.HedgeMultiplier == 0 {
		c.HedgeMultiplier = 4
	}
	if c.HedgeFloor == 0 {
		c.HedgeFloor = 2 * time.Millisecond
	}
	if c.Seed == 0 {
		c.Seed = 727272
	}
	if c.Clock == nil {
		c.Clock = sim.WallClock{}
	}
	return c
}

// hostLatency is the per-host remote-read latency EWMA that sizes
// hedge delays. Samples are scoped to the host's epoch: a re-recruited
// imd (new epoch) starts cold, so its first read is never hedged on
// another incarnation's history.
type hostLatency struct {
	epoch   uint64
	samples int64
	ewma    time.Duration
}

// regionState is one row of the client's region table (§4.4).
type regionState struct {
	fd      int
	key     wire.RegionKey
	remote  wire.Region
	backing Backing
	// backOff is the region's base offset within the backing file.
	backOff int64
	length  int64
	// caps is the hosting imd's advertised fast-path capability set,
	// relayed by the manager with the mapping. Zero means legacy-only:
	// reads use the request/offer/accept ladder.
	caps wire.Caps
	// valid is the local/remote flag: false once the remote copy is
	// known lost.
	valid bool
	// gen counts invalidations. remoteWrite snapshots it and refuses
	// to report success when it changed while the write was in flight:
	// the confirmation may describe a superseded announcement — a
	// recovery repopulation pushed (possibly older) backing bytes with
	// a newer sequence, and the imd then confirmed this write without
	// applying it. Success here would let the caller trust a stale
	// remote copy.
	gen uint64
	// diskDirty records that, while the descriptor was invalid, the
	// app was told the region cannot take writes (a failed Mwrite, or
	// CheckAlloc reporting the mapping gone) — its documented recourse
	// is writing the backing file directly, and such writes never touch
	// the sequence counters. While set, a graceful-reclaim handoff copy
	// must not be adopted (it may be behind the disk); only an
	// end-to-end repopulation from the backing file clears it. A failed
	// Mread deliberately does not set the flag: refusing a read gives
	// the app no new license to write anywhere.
	diskDirty bool
	// needsReval marks a still-valid descriptor whose manager-side row
	// may be gone: the manager restarted under a new incarnation, so
	// its rebuilt directory must be consulted before this mapping is
	// trusted past the next keep-alive cycle. The region keeps serving
	// reads and writes (the hosting imd is unaffected by a manager
	// crash); the recovery loop clears the flag once checkAlloc against
	// the new incarnation confirms the row.
	needsReval bool
}

// Client is the Dodo runtime library instance linked into an
// application.
type Client struct {
	// dodo:unguarded — immutable after construction
	cfg Config
	// dodo:unguarded — set once in New before the endpoint loop starts
	ep *bulk.Endpoint
	// dodo:unguarded — immutable after construction
	log *log.Logger

	mu locks.Mutex
	// dodo:guardedby mu
	regions map[int]*regionState
	// aliases refcounts open descriptors per region key: duplicate
	// Mopens of the same (inode, offset) share one RD entry, and only
	// the last Mclose frees it.
	// dodo:guardedby mu
	aliases map[wire.RegionKey]int
	// writeSeq orders remote writes per region key. Every WriteReq
	// carries the next sequence so the hosting imd can discard a
	// duplicated or delayed announcement that would otherwise roll the
	// region back to older bytes. The counter survives re-opens (a
	// fresh imd region starts its gate at zero, so any positive
	// sequence passes) and is dropped only once the manager confirms
	// the free: an unconfirmed free can leave both the manager's RD
	// entry and the imd region (gate included) alive, and a later
	// Mopen of the same key re-attaches to them — restarting the
	// counter there would make every new write look superseded and
	// freeze the remote copy at stale bytes.
	// dodo:guardedby mu
	writeSeq map[wire.RegionKey]uint64
	// confirmedSeq tracks the highest writeSeq the hosting imd has
	// confirmed per key. When it equals writeSeq, every announced write
	// landed remotely — the settled state a graceful-reclaim handoff
	// copy can be adopted in without disk repopulation.
	// dodo:guardedby mu
	confirmedSeq map[wire.RegionKey]uint64
	// dodo:guardedby mu
	hostLat map[string]*hostLatency
	// mgrIncarnation is the highest manager incarnation observed on any
	// response or keep-alive. A response stamped with an older value is
	// a delayed frame from a dead incarnation and is discarded; a newer
	// value means the manager restarted, so every valid descriptor is
	// marked needsReval (its directory row is being rebuilt from imd
	// inventory and must be confirmed before it is trusted further).
	// dodo:guardedby mu
	mgrIncarnation uint64
	// corruptHosts counts page-checksum failures by the host that
	// served the corrupt frame; reported on every keep-alive ack.
	// dodo:guardedby mu
	corruptHosts map[string]uint64
	// dodo:guardedby mu
	nextFD int
	// dodo:guardedby mu
	lastAllocFail time.Time
	// dodo:guardedby mu
	failedOnce bool
	// dodo:guardedby mu
	closed bool

	// Background recovery (drop -> backoff -> revalidate -> re-open).
	// dodo:unguarded — set at construction; closed once under mu in Close
	recoverStop chan struct{}
	// dodo:unguarded — buffered signal channel, internally synchronized
	recoverKick chan struct{}
	// dodo:unguarded — WaitGroup is internally synchronized
	recoverWG sync.WaitGroup
	// hedgeWG tracks hedged-read legs so Close can join them; Add races
	// with Close are excluded by checking closed under mu first (§9).
	// dodo:unguarded — WaitGroup is internally synchronized
	hedgeWG sync.WaitGroup

	// Stats counters: lone tallies with no cross-field invariant, kept
	// atomic so hot paths (Mread/Mwrite completions, hedge outcomes)
	// never serialize on mu just to count.
	// dodo:atomic
	remoteReads, remoteWrites atomic.Int64
	// dodo:atomic
	remoteReadBy, remoteWriteBy atomic.Int64
	// dodo:atomic
	dropEvents, refractionSkips atomic.Int64
	// dodo:atomic
	revalidations, reopens atomic.Int64
	// dodo:atomic
	handoffAdopts atomic.Int64
	// dodo:atomic
	hedgedReads, hedgeWins, hedgeWasted atomic.Int64
	// dodo:atomic
	checksumFails atomic.Int64
	// dodo:atomic
	inlineReads, eagerReads, batchReads atomic.Int64
}

// New creates a client runtime over tr.
func New(tr transport.Transport, cfg Config) *Client {
	cfg = cfg.withDefaults()
	c := &Client{
		cfg:          cfg,
		log:          cfg.Logger,
		regions:      make(map[int]*regionState),
		aliases:      make(map[wire.RegionKey]int),
		writeSeq:     make(map[wire.RegionKey]uint64),
		confirmedSeq: make(map[wire.RegionKey]uint64),
		hostLat:      make(map[string]*hostLatency),
		corruptHosts: make(map[string]uint64),
		recoverStop:  make(chan struct{}),
		recoverKick:  make(chan struct{}, 1),
	}
	c.mu.SetRank(locks.RankCoreClient)
	// The client must echo the manager's keep-alives (§3.1) or its
	// regions are reclaimed as orphans. The ack piggybacks the recovery
	// counters so the manager aggregates them cluster-wide. The probe's
	// incarnation stamp doubles as the client's restart detector: a
	// value newer than any seen before flips every valid descriptor to
	// needsReval.
	c.ep = bulk.NewEndpoint(tr, cfg.Endpoint, func(from string, msg wire.Message) wire.Message {
		if ka, ok := msg.(*wire.KeepAlive); ok {
			c.noteIncarnation(ka.Incarnation)
			return &wire.KeepAliveAck{
				ClientID:         ka.ClientID,
				Drops:            uint64(c.dropEvents.Load()),
				Revalidations:    uint64(c.revalidations.Load()),
				Reopens:          uint64(c.reopens.Load()),
				HandoffAdopts:    uint64(c.handoffAdopts.Load()),
				HedgedReads:      uint64(c.hedgedReads.Load()),
				HedgeWins:        uint64(c.hedgeWins.Load()),
				HedgeWasted:      uint64(c.hedgeWasted.Load()),
				RetryExhausted:   uint64(c.ep.RetryExhausted()),
				ChecksumFailures: uint64(c.checksumFails.Load()),
				CorruptHosts:     c.corruptHostsSnapshot(),
				Caps:             wire.LocalCaps,
			}
		}
		return nil
	})
	if !cfg.DisableRecovery {
		c.recoverWG.Add(1)
		go c.recoveryLoop()
	}
	return c
}

// Addr returns the client's transport address.
func (c *Client) Addr() string { return c.ep.LocalAddr() }

// Close releases the client. Open regions are left to the central
// manager's keep-alive reclamation — exactly what happens when an
// application exits without mclosing (§4.3) — so persistent-region
// workloads like dmine can deliberately leave their data cached.
func (c *Client) Close() error {
	c.mu.Lock()
	if c.closed {
		c.mu.Unlock()
		return nil
	}
	c.closed = true
	c.mu.Unlock()
	select {
	case <-c.recoverStop:
	default:
		close(c.recoverStop)
	}
	err := c.ep.Close()
	c.recoverWG.Wait()
	c.hedgeWG.Wait()
	return err
}

func (c *Client) logf(format string, args ...any) {
	if c.log != nil {
		c.log.Printf(format, args...)
	}
}

// Stats reports client-side counters.
type Stats struct {
	RemoteReads, RemoteWrites         int64
	RemoteReadBytes, RemoteWriteBytes int64
	DropEvents                        int64
	RefractionSkips                   int64
	// Revalidations counts checkAlloc probes by the recovery pass;
	// Reopens counts regions transparently re-opened after a drop.
	Revalidations, Reopens int64
	// HandoffAdopts counts regions re-validated onto a graceful-reclaim
	// handoff copy without disk repopulation.
	HandoffAdopts int64
	// HedgedReads counts remote reads that triggered a backup disk
	// read; HedgeWins are those the backup answered first, HedgeWasted
	// those where the remote still won.
	HedgedReads, HedgeWins, HedgeWasted int64
	// RetryExhausted counts endpoint operations that ran their retry
	// budget dry.
	RetryExhausted int64
	// ChecksumFailures counts remote reads whose page failed its
	// CRC32-C check; CorruptHosts breaks them down by serving host.
	ChecksumFailures int64
	CorruptHosts     []wire.HostCount
	// InlineReads counts remote reads answered inline in the read
	// response (1 RTT); EagerReads counts reads served by an
	// eager-first-window bulk transfer; BatchReads counts batched
	// multi-region exchanges.
	InlineReads, EagerReads, BatchReads int64
	// ManagerIncarnation is the highest manager incarnation observed.
	ManagerIncarnation uint64
	OpenRegions        int
}

// Stats returns a snapshot. Counters are loaded atomically; only the
// region-table size needs the lock.
func (c *Client) Stats() Stats {
	c.mu.Lock()
	open := len(c.regions)
	inc := c.mgrIncarnation
	c.mu.Unlock()
	return Stats{
		RemoteReads:        c.remoteReads.Load(),
		RemoteWrites:       c.remoteWrites.Load(),
		RemoteReadBytes:    c.remoteReadBy.Load(),
		RemoteWriteBytes:   c.remoteWriteBy.Load(),
		DropEvents:         c.dropEvents.Load(),
		RefractionSkips:    c.refractionSkips.Load(),
		Revalidations:      c.revalidations.Load(),
		Reopens:            c.reopens.Load(),
		HandoffAdopts:      c.handoffAdopts.Load(),
		HedgedReads:        c.hedgedReads.Load(),
		HedgeWins:          c.hedgeWins.Load(),
		HedgeWasted:        c.hedgeWasted.Load(),
		RetryExhausted:     c.ep.RetryExhausted(),
		ChecksumFailures:   c.checksumFails.Load(),
		CorruptHosts:       c.corruptHostsSnapshot(),
		InlineReads:        c.inlineReads.Load(),
		EagerReads:         c.eagerReads.Load(),
		BatchReads:         c.batchReads.Load(),
		ManagerIncarnation: inc,
		OpenRegions:        open,
	}
}

// dataBudget scales a call timeout with the transfer size so large
// regions are not cut off mid-blast.
func dataBudget(n int64) time.Duration {
	return 5*time.Second + time.Duration(n/(1<<20))*2*time.Second
}

// Mopen allocates a new remote memory region of length bytes, backed by
// the byte range [offset, offset+length) of backing (§3.2). It returns
// a non-negative region descriptor for use with the other calls.
//
// Errors follow the paper: ErrInval for a bad length, offset or
// non-writable backing; ErrNoMem when the cluster has no space (in
// which case further Mopens are suppressed for the refraction period).
//
// The descriptor owns a manager-side region mapping: every successful
// Mopen must be balanced by an Mclose on every path.
//
// dodo:acquires(dodofd)
func (c *Client) Mopen(length int64, backing Backing, offset int64) (int, error) {
	if length < 1 || offset < 0 {
		return -1, fmt.Errorf("%w: length %d, offset %d", ErrInval, length, offset)
	}
	if backing == nil || !backing.Writable() {
		return -1, fmt.Errorf("%w: backing file not open for writing", ErrInval)
	}
	c.mu.Lock()
	if c.closed {
		c.mu.Unlock()
		return -1, ErrClosed
	}
	// Refraction period: after a failed allocation, don't even ask
	// (§3.1: "the library refrains from making allocation calls for a
	// fixed time period").
	if c.failedOnce && c.cfg.Clock.Now().Sub(c.lastAllocFail) < c.cfg.RefractionPeriod {
		c.refractionSkips.Add(1)
		c.mu.Unlock()
		return -1, fmt.Errorf("%w: in refraction period", ErrNoMem)
	}
	c.mu.Unlock()

	key := wire.RegionKey{Inode: backing.Inode(), Offset: offset, ClientID: c.cfg.ClientID}
	// Manager-outage mode: a crashed or rebuilding manager answers with
	// silence or StatusBusy, neither of which means the cluster is out
	// of memory. Queue the allocation behind a capped-exponential
	// backoff for up to OutageWindow — long enough to ride out a
	// restart plus its rebuild grace — before reporting ErrNoMem. The
	// retry budget is created lazily so the common single-shot success
	// costs nothing extra.
	var budget *retry.Budget
	var ar *wire.AllocResp
	for {
		resp, err := c.ep.Call(c.cfg.ManagerAddr, &wire.AllocReq{Key: key, Length: uint64(length)})
		outage := false
		if err != nil {
			outage = true // unreachable: crashed or restarting
		} else {
			var ok bool
			if ar, ok = resp.(*wire.AllocResp); !ok {
				return -1, fmt.Errorf("%w: unexpected response %v", ErrNoMem, resp.Kind())
			}
			if !c.noteIncarnation(ar.Incarnation) {
				outage = true // delayed answer from a dead incarnation
			} else if ar.Status == wire.StatusBusy {
				outage = true // directory rebuild in progress
			}
		}
		if !outage {
			break
		}
		if budget == nil {
			budget = retry.New(retry.Policy{
				Deadline: c.cfg.OutageWindow,
				Base:     c.cfg.RecoveryBackoff,
				Cap:      c.cfg.OutageWindow / 2,
				Factor:   2,
				Jitter:   0.1,
			}, c.cfg.Clock, rand.New(rand.NewSource(c.cfg.Seed)))
		}
		delay, more := budget.Next()
		if !more {
			// Outage outlived the window. Deliberately no refraction:
			// this is not a capacity verdict, and the next Mopen should
			// probe the manager again immediately.
			if err != nil {
				return -1, fmt.Errorf("%w: manager unreachable: %v", ErrNoMem, err)
			}
			return -1, fmt.Errorf("%w: manager rebuilding its directory", ErrNoMem)
		}
		if !sim.SleepInterruptible(c.cfg.Clock, delay, c.recoverStop) {
			return -1, ErrClosed
		}
	}
	if ar.Status != wire.StatusOK {
		c.mu.Lock()
		c.failedOnce = true
		c.lastAllocFail = c.cfg.Clock.Now()
		c.mu.Unlock()
		if ar.Status == wire.StatusInvalid {
			return -1, ErrInval
		}
		return -1, ErrNoMem
	}

	c.mu.Lock()
	fd := c.nextFD
	c.nextFD++
	c.regions[fd] = &regionState{
		fd:      fd,
		key:     key,
		remote:  ar.Region,
		caps:    ar.HostCaps,
		backing: backing,
		backOff: offset,
		length:  length,
		valid:   true,
	}
	c.aliases[key]++
	c.mu.Unlock()
	c.logf("dodo: mopen fd %d -> %s region %d (%d bytes)", fd, ar.Region.HostAddr, ar.Region.RegionID, length)
	return fd, nil
}

// lookup returns a snapshot of the region table row for fd. A snapshot
// (not the live pointer) keeps Mread/Mwrite race-free against concurrent
// dropHost/CheckAlloc mutations.
func (c *Client) lookup(fd int) (regionState, error) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.closed {
		return regionState{}, ErrClosed
	}
	r, ok := c.regions[fd]
	if !ok {
		return regionState{}, fmt.Errorf("%w: bad region descriptor %d", ErrInval, fd)
	}
	return *r, nil
}

// dropHost invalidates every region hosted by addr: when one access to a
// node fails, all descriptors for that node are dropped (§3.1).
func (c *Client) dropHost(addr string) {
	c.mu.Lock()
	n := 0
	for _, r := range c.regions {
		if r.valid && r.remote.HostAddr == addr {
			r.valid = false
			r.gen++
			n++
		}
	}
	if n > 0 {
		c.dropEvents.Add(1)
		// The host is gone, so its latency history is dead weight: a
		// long-lived client in a churny cluster would otherwise grow
		// the EWMA map one entry per failed host, forever. A relaunched
		// host re-learns from scratch (recordLatency restarts the
		// series on an epoch change anyway).
		delete(c.hostLat, addr)
		c.logf("dodo: dropped %d region descriptors on failed host %s", n, addr)
	}
	kick := n > 0 && !c.cfg.DisableRecovery
	c.mu.Unlock()
	if kick {
		// Wake the recovery loop (outside the lock; the channel is
		// buffered so a pending kick coalesces with this one).
		select {
		case c.recoverKick <- struct{}{}:
		default:
		}
	}
}

// noteIncarnation folds an incarnation stamped on a manager response
// into the client's view. It returns false when the frame came from a
// dead incarnation — the caller must treat the response as a failure,
// exactly like a lost frame (incarnation fencing: a delayed pre-crash
// answer must not install directory state the restarted manager no
// longer vouches for). A newer incarnation than any seen before means
// the manager restarted: every valid descriptor flips to needsReval
// and the recovery loop is kicked to confirm each row against the
// rebuilt directory. Zero (a peer predating incarnation stamping) is
// always accepted.
func (c *Client) noteIncarnation(inc uint64) bool {
	if inc == 0 {
		return true
	}
	c.mu.Lock()
	if inc < c.mgrIncarnation {
		c.mu.Unlock()
		return false
	}
	kick := false
	if inc > c.mgrIncarnation {
		prev := c.mgrIncarnation
		c.mgrIncarnation = inc
		if prev != 0 {
			n := 0
			for _, r := range c.regions {
				if r.valid && !r.needsReval {
					r.needsReval = true
					n++
				}
			}
			if n > 0 {
				c.logf("dodo: manager restarted (incarnation %d -> %d); revalidating %d regions", prev, inc, n)
			}
			kick = n > 0 && !c.cfg.DisableRecovery
		}
	}
	c.mu.Unlock()
	if kick {
		select {
		case c.recoverKick <- struct{}{}:
		default:
		}
	}
	return true
}

// noteCorrupt records one page-checksum failure served by addr.
func (c *Client) noteCorrupt(addr string) {
	c.checksumFails.Add(1)
	c.mu.Lock()
	c.corruptHosts[addr]++
	c.mu.Unlock()
}

// corruptHostsSnapshot returns the per-host corruption counters in
// address order for a keep-alive ack.
func (c *Client) corruptHostsSnapshot() []wire.HostCount {
	c.mu.Lock()
	hosts := make([]wire.HostCount, 0, len(c.corruptHosts))
	for addr, n := range c.corruptHosts {
		hosts = append(hosts, wire.HostCount{Addr: addr, Count: n})
	}
	c.mu.Unlock()
	if len(hosts) == 0 {
		return nil
	}
	sort.Slice(hosts, func(i, j int) bool { return hosts[i].Addr < hosts[j].Addr })
	return hosts
}

// markDiskDirty flags fd's region as possibly behind the backing file:
// the app has just been told the region cannot take a write, so its
// sanctioned fallback — writing the backing file directly — may happen
// at any point from here until a repopulation pushes the disk bytes
// back end-to-end. See regionState.diskDirty.
func (c *Client) markDiskDirty(fd int) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if r, ok := c.regions[fd]; ok {
		r.diskDirty = true
	}
}

// Mread reads up to len(buf) bytes at offset within the region into buf
// (§3.2). It returns the number of bytes read, which is short if fewer
// bytes are available at that offset. ErrNoMem reports an inactive
// region (invalid descriptor state, crashed or reclaimed host); ErrInval
// reports bad arguments. On ErrNoMem the caller falls back to the
// backing file.
func (c *Client) Mread(fd int, offset int64, buf []byte) (int, error) {
	r, err := c.lookup(fd)
	if err != nil {
		return -1, err
	}
	if offset < 0 || offset > r.length {
		return -1, fmt.Errorf("%w: offset %d in %d-byte region", ErrInval, offset, r.length)
	}
	if !r.valid {
		return -1, fmt.Errorf("%w: region %d is not active", ErrNoMem, fd)
	}
	want := int64(len(buf))
	if offset+want > r.length {
		want = r.length - offset
	}
	if want == 0 {
		return 0, nil
	}
	if delay, hedge := c.hedgeDelay(r.remote.HostAddr, r.remote.Epoch); hedge {
		return c.hedgedRead(r, offset, want, buf, delay)
	}
	// Unhedged reads assemble straight into the caller's buffer: the
	// inline payload or bulk stream lands in buf with no intermediate
	// allocation.
	n, err := c.remoteReadInto(r, offset, want, buf[:want])
	if err != nil {
		return -1, err
	}
	c.remoteReads.Add(1)
	c.remoteReadBy.Add(int64(n))
	return n, nil
}

// remoteRead performs the wire read against the hosting imd into a
// private buffer; hedged reads use it so the remote leg never touches
// the caller's buffer while the disk leg may be racing it.
func (c *Client) remoteRead(r regionState, offset, want int64) ([]byte, error) {
	data := make([]byte, want)
	n, err := c.remoteReadInto(r, offset, want, data)
	if err != nil {
		return nil, err
	}
	return data[:n], nil
}

// readCaps returns the fast-path capability set usable against r: the
// intersection of what the hosting imd advertised and what this client
// is configured to speak.
func (c *Client) readCaps(r regionState) wire.Caps {
	if c.cfg.DisableReadFastPath {
		return 0
	}
	return r.caps & wire.LocalCaps
}

// remoteReadInto performs the wire read against the hosting imd,
// assembling the bytes into dst (len(dst) == want), and records a
// latency sample on success. Failures drop every descriptor on the
// host (§3.1) and surface as ErrNoMem so callers fall back to the
// backing file.
//
// Three protocols, negotiated per host via the capability bits the
// manager relays with the mapping:
//
//   - inline: a read that fits one frame comes back in the DataResp
//     payload itself — one round trip, no bulk machinery;
//   - eager: the client picks the transfer id, pre-registers the
//     receive, and advertises its window in the request; the imd
//     blasts the first window immediately, with the DataResp doubling
//     as the bulk offer. The selective-NACK engine still governs the
//     transfer, so a lossy first window degrades to ordinary recovery;
//   - legacy: the request/offer/accept ladder, for hosts that
//     advertise no caps (or when DisableReadFastPath is set).
func (c *Client) remoteReadInto(r regionState, offset, want int64, dst []byte) (int, error) {
	start := c.cfg.Clock.Now()
	host := r.remote.HostAddr
	req := &wire.ReadReq{
		RegionID: r.remote.RegionID,
		Epoch:    r.remote.Epoch,
		Offset:   uint64(offset),
		Length:   uint64(want),
	}
	caps := c.readCaps(r)
	req.Caps = caps & wire.CapInlineRead
	inlineLikely := caps&wire.CapInlineRead != 0 &&
		want <= int64(wire.InlineDataLimit(c.ep.Transport().MTU()))
	// For reads the imd won't inline, pre-register the eager receive
	// under a client-chosen transfer id BEFORE the request leaves:
	// the first eager packets may land before the response does.
	var xferID uint64
	if caps&wire.CapEagerRead != 0 && !inlineLikely {
		id := c.ep.NextTransferID()
		chunk := c.ep.ChunkSize()
		if window, err := c.ep.ExpectBulkInto(dst[:want], host, id, chunk); err == nil {
			xferID = id
			req.Caps = caps
			req.XferID = id
			req.ChunkSize = uint32(chunk)
			req.Window = uint32(window)
		}
	}
	cancel := func() {
		if xferID != 0 {
			c.ep.CancelExpect(host, xferID)
			xferID = 0
		}
	}
	resp, err := c.ep.Call(host, req)
	if err != nil {
		cancel()
		c.dropHost(host)
		return -1, fmt.Errorf("%w: host %s unreachable: %v", ErrNoMem, host, err)
	}
	dr, ok := resp.(*wire.DataResp)
	if !ok {
		// A misrouted or unexpected response type must degrade, not
		// panic: dr is nil here, so it cannot be formatted.
		cancel()
		c.dropHost(host)
		return -1, fmt.Errorf("%w: unexpected response %v", ErrNoMem, resp.Kind())
	}
	if dr.Status != wire.StatusOK {
		cancel()
		c.dropHost(host)
		return -1, fmt.Errorf("%w: read refused (%v)", ErrNoMem, dr.Status)
	}
	var n int
	switch {
	case dr.Flags&wire.DataFlagInline != 0:
		// The bytes rode the response itself; any pre-registered
		// receive is moot.
		cancel()
		if dr.Crc != 0 && wire.Checksum(dr.Payload) != dr.Crc {
			return -1, c.failChecksum(host)
		}
		n = copy(dst, dr.Payload)
		c.inlineReads.Add(1)
		c.recordLatency(host, r.remote.Epoch, c.cfg.Clock.Now().Sub(start))
		return n, nil
	case dr.Flags&wire.DataFlagEager != 0 && xferID != 0 && dr.TransferID == xferID:
		n, err = c.ep.RecvBulkInto(dst[:want], host, xferID, dataBudget(want))
		if err == nil {
			c.eagerReads.Add(1)
		}
	default:
		// Legacy ladder: the imd allocated its own transfer id and is
		// waiting on the offer/accept handshake. Drop the eager
		// registration (if any) and receive normally.
		cancel()
		n, err = c.ep.RecvBulkInto(dst[:want], host, dr.TransferID, dataBudget(want))
	}
	if err != nil {
		c.dropHost(host)
		return -1, fmt.Errorf("%w: transfer failed: %v", ErrNoMem, err)
	}
	if dr.Crc != 0 && wire.Checksum(dst[:n]) != dr.Crc {
		// The bytes that arrived are not the bytes the imd hashed:
		// fail the read rather than hand the app a corrupt page. The
		// drop → revalidate path then repopulates the region from the
		// backing file end-to-end.
		return -1, c.failChecksum(host)
	}
	c.recordLatency(host, r.remote.Epoch, c.cfg.Clock.Now().Sub(start))
	return n, nil
}

// failChecksum records a page-checksum failure against host and drops
// its descriptors.
func (c *Client) failChecksum(host string) error {
	c.noteCorrupt(host)
	c.dropHost(host)
	return fmt.Errorf("%w: page checksum mismatch from %s", ErrNoMem, host)
}

// finishRemoteRead copies remotely served bytes out and counts them.
func (c *Client) finishRemoteRead(buf, data []byte) int {
	n := copy(buf, data)
	c.remoteReads.Add(1)
	c.remoteReadBy.Add(int64(n))
	return n
}

// recordLatency feeds one successful remote-read round trip into the
// host's EWMA (alpha 0.2), restarting the series when the host's epoch
// changed since the last sample.
func (c *Client) recordLatency(addr string, epoch uint64, d time.Duration) {
	c.mu.Lock()
	defer c.mu.Unlock()
	h := c.hostLat[addr]
	if h == nil || h.epoch != epoch {
		h = &hostLatency{epoch: epoch}
		c.hostLat[addr] = h
	}
	if h.samples == 0 {
		h.ewma = d
	} else {
		h.ewma += (d - h.ewma) / 5
	}
	h.samples++
}

// hedgeDelay returns how long to let a remote read run before issuing
// the backup disk read, and whether to hedge at all. A host with no
// samples for its current epoch is never hedged: a freshly recruited
// imd must not be judged by another incarnation's (or nobody's)
// latency history.
func (c *Client) hedgeDelay(addr string, epoch uint64) (time.Duration, bool) {
	if c.cfg.DisableHedging {
		return 0, false
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	h := c.hostLat[addr]
	if h == nil || h.epoch != epoch || h.samples < 1 {
		return 0, false
	}
	d := time.Duration(float64(h.ewma) * c.cfg.HedgeMultiplier)
	if d < c.cfg.HedgeFloor {
		d = c.cfg.HedgeFloor
	}
	return d, true
}

// tryHedgeLeg registers one hedged-read goroutine with hedgeWG, unless
// the client is closed. The closed check and the Add share c.mu with
// Close's flag flip, which happens strictly before Close calls
// hedgeWG.Wait — so the WaitGroup counter can never rise from zero
// while Wait is running (the documented WaitGroup misuse). On a true
// return the caller owes a hedgeWG.Done from the leg it launches.
//
// dodo:acquires(wg)
func (c *Client) tryHedgeLeg() bool {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.closed {
		return false
	}
	c.hedgeWG.Add(1)
	return true
}

// hedgedRead issues the remote read and, if it is still outstanding
// after delay, a backup read from the backing file; the first success
// wins. The backing is authoritative for every confirmed write (Mwrite
// writes through before reporting success), so the backup can never
// return bytes older than the caller could already observe on disk —
// the write-seq gate is respected by construction.
func (c *Client) hedgedRead(r regionState, offset, want int64, buf []byte, delay time.Duration) (int, error) {
	type result struct {
		data []byte
		err  error
	}
	remoteCh := make(chan result, 1)
	if !c.tryHedgeLeg() {
		// Closing underneath us: run the remote read synchronously so
		// no goroutine outlives Close's hedgeWG.Wait.
		data, err := c.remoteRead(r, offset, want)
		if err != nil {
			return -1, err
		}
		return c.finishRemoteRead(buf, data), nil
	}
	go func() {
		defer c.hedgeWG.Done()
		data, err := c.remoteRead(r, offset, want)
		remoteCh <- result{data, err}
	}()
	timerCh, stopTimer := sim.NewTimer(c.cfg.Clock, delay)
	defer stopTimer.Stop()
	select {
	case res := <-remoteCh:
		// The remote answered within the hedge delay; the common case.
		if res.err != nil {
			return -1, res.err
		}
		return c.finishRemoteRead(buf, res.data), nil
	case <-timerCh:
	}
	// The remote is slow: race a backing-file read against it.
	diskCh := make(chan result, 1)
	if !c.tryHedgeLeg() {
		// Closing underneath us: skip the backup leg and wait out the
		// remote (its WaitGroup slot predates Close's Wait).
		res := <-remoteCh
		if res.err != nil {
			return -1, res.err
		}
		return c.finishRemoteRead(buf, res.data), nil
	}
	c.hedgedReads.Add(1)
	go func() {
		defer c.hedgeWG.Done()
		data := make([]byte, want)
		// A short read past EOF leaves the tail zeroed — bytes never
		// written through (the recovery repopulation convention).
		if _, err := r.backing.ReadAt(data, r.backOff+offset); err != nil && err != io.EOF {
			diskCh <- result{nil, err}
			return
		}
		diskCh <- result{data, nil}
	}()
	select {
	case res := <-remoteCh:
		if res.err == nil {
			// The remote still won; the backup was wasted work.
			c.hedgeWasted.Add(1)
			return c.finishRemoteRead(buf, res.data), nil
		}
		// The remote leg failed (its descriptors are already dropped);
		// the backup is the only way to serve this read.
		d := <-diskCh
		if d.err != nil {
			return -1, res.err
		}
		c.hedgeWins.Add(1)
		return copy(buf, d.data), nil
	case d := <-diskCh:
		if d.err != nil {
			// The backup failed; fall back to waiting on the remote.
			res := <-remoteCh
			if res.err != nil {
				return -1, res.err
			}
			return c.finishRemoteRead(buf, res.data), nil
		}
		c.hedgeWins.Add(1)
		// Join the losing leg in the background so its latency sample
		// or host drop still lands.
		if c.tryHedgeLeg() {
			go func() {
				defer c.hedgeWG.Done()
				if res := <-remoteCh; res.err == nil {
					c.hedgeWasted.Add(1)
				}
			}()
		} else if res := <-remoteCh; res.err == nil {
			// Closing: drain the remote leg inline instead.
			c.hedgeWasted.Add(1)
		}
		return copy(buf, d.data), nil
	}
}

// Mwrite writes buf to the backing file and to the remote region in
// parallel (§3: "Writes to remote memory are propagated to disk in
// parallel to being sent to the remote host"). It returns the bytes
// written into the region (short at the region tail). A backing-file
// failure surfaces as that write's error; a remote failure drops the
// host's descriptors and reports ErrNoMem (the disk copy may still have
// succeeded — the region is simply no longer cached).
func (c *Client) Mwrite(fd int, offset int64, buf []byte) (int, error) {
	r, err := c.lookup(fd)
	if err != nil {
		return -1, err
	}
	if offset < 0 || offset > r.length {
		return -1, fmt.Errorf("%w: offset %d in %d-byte region", ErrInval, offset, r.length)
	}
	if !r.valid {
		// The app is being told the region can't take this write; it
		// may now legitimately write the backing file directly, which
		// bumps no sequence — so any handoff snapshot is unadoptable.
		c.markDiskDirty(fd)
		return -1, fmt.Errorf("%w: region %d is not active", ErrNoMem, fd)
	}
	want := int64(len(buf))
	if offset+want > r.length {
		want = r.length - offset
	}
	if want == 0 {
		return 0, nil
	}
	data := buf[:want]

	// Disk and remote in parallel.
	type diskResult struct {
		n   int
		err error
	}
	diskCh := make(chan diskResult, 1)
	go func() {
		n, err := r.backing.WriteAt(data, r.backOff+offset)
		diskCh <- diskResult{n, err}
	}()

	remoteErr := c.remoteWrite(r, offset, data)
	disk := <-diskCh

	if disk.err != nil {
		// The paper passes through the backing write's errno.
		return -1, fmt.Errorf("dodo: backing write failed: %w", disk.err)
	}
	if remoteErr != nil {
		c.dropHost(r.remote.HostAddr)
		// Belt and braces: the unconfirmed announcement already blocks
		// adoption via the write-seq gate, but the app is also being
		// told to fall back to disk-only writes from here on.
		c.markDiskDirty(fd)
		return -1, fmt.Errorf("%w: remote write failed: %v", ErrNoMem, remoteErr)
	}
	c.remoteWrites.Add(1)
	c.remoteWriteBy.Add(want)
	return int(want), nil
}

func (c *Client) remoteWrite(r regionState, offset int64, data []byte) error {
	xfer := c.ep.NextTransferID()
	c.mu.Lock()
	c.writeSeq[r.key]++
	seq := c.writeSeq[r.key]
	c.mu.Unlock()
	sendErr := make(chan error, 1)
	go func() { sendErr <- c.ep.SendBulk(r.remote.HostAddr, xfer, data) }()
	req := &wire.WriteReq{
		RegionID:   r.remote.RegionID,
		Epoch:      r.remote.Epoch,
		Offset:     uint64(offset),
		Length:     uint64(len(data)),
		TransferID: xfer,
		WriteSeq:   seq,
		Crc:        wire.Checksum(data),
	}
	resp, err := c.ep.CallT(r.remote.HostAddr, req, dataBudget(int64(len(data))), 2)
	if serr := <-sendErr; serr != nil && err == nil {
		return serr
	}
	if err != nil {
		return err
	}
	dr, ok := resp.(*wire.DataResp)
	if !ok {
		return fmt.Errorf("unexpected response %v", resp.Kind())
	}
	if dr.Status != wire.StatusOK {
		return fmt.Errorf("write refused (%v)", dr.Status)
	}
	if dr.Count != uint64(len(data)) {
		return fmt.Errorf("short remote write: %d of %d bytes", dr.Count, len(data))
	}
	// A drop/recovery cycle while this write was in flight means the
	// confirmation cannot be trusted: the recovery repopulation pushed
	// backing bytes — possibly older than ours — under a newer
	// sequence, so the imd may have confirmed this announcement without
	// applying it. Fail the write; the caller re-pushes against the
	// recovered region with a sequence that postdates the repopulation.
	c.mu.Lock()
	live, alive := c.regions[r.fd]
	recycled := !alive || live.gen != r.gen
	if !recycled && seq > c.confirmedSeq[r.key] {
		c.confirmedSeq[r.key] = seq
	}
	c.mu.Unlock()
	if recycled {
		return fmt.Errorf("region %d recovered while the write was in flight", r.fd)
	}
	return nil
}

// Mclose deallocates the region (§3.2). It contacts the central manager
// to free the remote memory and removes the descriptor; it does not
// touch the backing file.
//
// dodo:releases(dodofd)
func (c *Client) Mclose(fd int) error {
	c.mu.Lock()
	if c.closed {
		c.mu.Unlock()
		return ErrClosed
	}
	r, ok := c.regions[fd]
	if !ok {
		c.mu.Unlock()
		return fmt.Errorf("%w: bad region descriptor %d", ErrInval, fd)
	}
	delete(c.regions, fd)
	c.aliases[r.key]--
	if c.aliases[r.key] > 0 {
		// Other descriptors still alias this RD entry (duplicate Mopen
		// of the same inode/offset); only the last Mclose frees it.
		c.mu.Unlock()
		return nil
	}
	delete(c.aliases, r.key)
	c.mu.Unlock()

	resp, err := c.ep.Call(c.cfg.ManagerAddr, &wire.FreeReq{Key: r.key})
	if err != nil {
		// The free never reached the manager: its RD entry — and the
		// imd region behind it, write-ordering gate included — may
		// still be live, and a future Mopen of this key can re-attach
		// to them. Keep the sequence counter so those writes stay
		// ahead of the gate.
		return fmt.Errorf("%w: cannot contact central manager: %v", ErrInval, err)
	}
	// The manager answered, so its RD entry is gone either way and the
	// next Mopen of this key gets a fresh region with a fresh gate; the
	// counter can restart. Skip the delete if the key was re-opened
	// while the free was in flight — the live descriptor owns it now.
	c.mu.Lock()
	if c.aliases[r.key] == 0 {
		delete(c.writeSeq, r.key)
		delete(c.confirmedSeq, r.key)
	}
	c.mu.Unlock()
	if fr, ok := resp.(*wire.FreeResp); !ok || fr.Status != wire.StatusOK {
		return fmt.Errorf("%w: region already reclaimed", ErrInval)
	}
	return nil
}

// Msync blocks until all data in the region is on disk (§3.2). Mwrite
// writes through to the backing synchronously, so this reduces to
// syncing the backing store.
func (c *Client) Msync(fd int) error {
	r, err := c.lookup(fd)
	if err != nil {
		return err
	}
	return r.backing.Sync()
}

// CheckAlloc asks the central manager whether the region behind fd is
// still valid (the checkAlloc operation of §4.3), refreshing the local
// descriptor on success and invalidating it on staleness.
func (c *Client) CheckAlloc(fd int) (bool, error) {
	r, err := c.lookup(fd)
	if err != nil {
		return false, err
	}
	resp, err := c.ep.Call(c.cfg.ManagerAddr, &wire.CheckAllocReq{Key: r.key})
	if err != nil {
		return false, fmt.Errorf("%w: manager unreachable: %v", ErrNoMem, err)
	}
	ca, ok := resp.(*wire.CheckAllocResp)
	if !ok {
		return false, ErrNoMem
	}
	if !c.noteIncarnation(ca.Incarnation) {
		// A delayed answer from a dead manager incarnation proves
		// nothing about the rebuilt directory; treat it as lost.
		return false, fmt.Errorf("%w: stale manager incarnation", ErrNoMem)
	}
	if ca.Status == wire.StatusBusy {
		// The manager is rebuilding (or the hosting imd is draining);
		// the row's fate is undecided, so the descriptor keeps its
		// current state and the caller retries.
		return false, fmt.Errorf("%w: manager busy", ErrNoMem)
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	live, present := c.regions[fd]
	if !present {
		return false, fmt.Errorf("%w: bad region descriptor %d", ErrInval, fd)
	}
	if ca.Status != wire.StatusOK {
		if live.valid {
			live.valid = false
			live.gen++
		}
		// The caller now knows the region can't take writes and may go
		// disk-only; any handoff snapshot is unadoptable until a
		// repopulation pushes the backing bytes back.
		live.diskDirty = true
		return false, nil
	}
	if ca.Fresh && !live.valid {
		// A graceful-reclaim handoff copy. Same adoption gate as the
		// recovery loop (see adoptHandoff): the write-seq gate must be
		// settled and no disk-only writes may have happened since the
		// drop, else the copy could be behind the backing file.
		if c.writeSeq[live.key] != c.confirmedSeq[live.key] || live.diskDirty {
			return false, nil
		}
		c.handoffAdopts.Add(1)
	}
	live.remote = ca.Region
	live.caps = ca.HostCaps
	live.valid = true
	live.needsReval = false
	return true, nil
}

// RegionValid reports the local/remote flag of the region table row.
func (c *Client) RegionValid(fd int) bool {
	c.mu.Lock()
	defer c.mu.Unlock()
	r, ok := c.regions[fd]
	return ok && r.valid
}

// RegionHost reports which imd currently backs fd's region; ok is
// false while the descriptor is invalid (dropped, awaiting recovery).
func (c *Client) RegionHost(fd int) (addr string, ok bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	r, live := c.regions[fd]
	if !live || !r.valid {
		return "", false
	}
	return r.remote.HostAddr, true
}
