package core

import (
	"bytes"
	"errors"
	"math/rand"
	"os"
	"path/filepath"
	"testing"
	"time"

	"dodo/internal/bulk"
	"dodo/internal/imd"
	"dodo/internal/manager"
	"dodo/internal/sim"
	"dodo/internal/transport"
)

func fastEp() bulk.Config {
	return bulk.Config{
		CallTimeout:   150 * time.Millisecond,
		CallRetries:   4,
		WindowTimeout: 80 * time.Millisecond,
		NackDelay:     30 * time.Millisecond,
	}
}

// stack is a complete in-process Dodo deployment: manager + imds + client.
type stack struct {
	n    *transport.Network
	mgr  *manager.Manager
	imds []*imd.Daemon
	cli  *Client
}

func newStack(t *testing.T, imdCount int, poolSize uint64) *stack {
	t.Helper()
	n := transport.NewNetwork(transport.WithMTU(1500))
	mgr := manager.New(n.Host("cmd"), manager.Config{
		KeepAliveInterval: 200 * time.Millisecond,
		KeepAliveMisses:   3,
		Endpoint:          fastEp(),
	})
	s := &stack{n: n, mgr: mgr}
	for i := 0; i < imdCount; i++ {
		d := imd.New(n.Host("imd"+string(rune('0'+i))), imd.Config{
			ManagerAddr:    "cmd",
			PoolSize:       poolSize,
			Epoch:          1,
			StatusInterval: 100 * time.Millisecond,
			Endpoint:       fastEp(),
		})
		s.imds = append(s.imds, d)
	}
	s.cli = New(n.Host("client"), Config{
		ManagerAddr:      "cmd",
		ClientID:         1,
		RefractionPeriod: 300 * time.Millisecond,
		Endpoint:         fastEp(),
	})
	t.Cleanup(func() {
		s.cli.Close()
		for _, d := range s.imds {
			d.Close()
		}
		mgr.Close()
	})
	return s
}

func TestMopenMwriteMreadRoundTrip(t *testing.T) {
	s := newStack(t, 2, 1<<20)
	back := NewMemBacking(100, 64<<10)
	fd, err := s.cli.Mopen(64<<10, back, 0)
	if err != nil {
		t.Fatalf("Mopen: %v", err)
	}
	if fd < 0 {
		t.Fatalf("Mopen fd = %d, want non-negative", fd)
	}
	data := make([]byte, 64<<10)
	rand.New(rand.NewSource(1)).Read(data)
	n, err := s.cli.Mwrite(fd, 0, data)
	if err != nil || n != len(data) {
		t.Fatalf("Mwrite = %d, %v", n, err)
	}
	// The write must have reached the backing file too (write-through).
	if !bytes.Equal(back.Bytes()[:len(data)], data) {
		t.Fatal("backing file does not hold the written data")
	}
	got := make([]byte, len(data))
	n, err = s.cli.Mread(fd, 0, got)
	if err != nil || n != len(data) {
		t.Fatalf("Mread = %d, %v", n, err)
	}
	if !bytes.Equal(got, data) {
		t.Fatal("Mread returned different bytes than Mwrite stored")
	}
	if err := s.cli.Mclose(fd); err != nil {
		t.Fatalf("Mclose: %v", err)
	}
}

func TestMopenValidation(t *testing.T) {
	s := newStack(t, 1, 1<<20)
	back := NewMemBacking(1, 1024)
	if _, err := s.cli.Mopen(0, back, 0); !errors.Is(err, ErrInval) {
		t.Fatalf("Mopen(len 0) = %v, want ErrInval", err)
	}
	if _, err := s.cli.Mopen(100, back, -1); !errors.Is(err, ErrInval) {
		t.Fatalf("Mopen(offset -1) = %v, want ErrInval", err)
	}
	ro := NewMemBacking(2, 1024)
	ro.SetReadOnly()
	if _, err := s.cli.Mopen(100, ro, 0); !errors.Is(err, ErrInval) {
		t.Fatalf("Mopen(read-only backing) = %v, want ErrInval", err)
	}
	if _, err := s.cli.Mopen(100, nil, 0); !errors.Is(err, ErrInval) {
		t.Fatalf("Mopen(nil backing) = %v, want ErrInval", err)
	}
}

func TestMreadShortAtTailAndOffsets(t *testing.T) {
	s := newStack(t, 1, 1<<20)
	back := NewMemBacking(3, 1000)
	fd, err := s.cli.Mopen(1000, back, 0)
	if err != nil {
		t.Fatal(err)
	}
	payload := bytes.Repeat([]byte("wxyz"), 250)
	if _, err := s.cli.Mwrite(fd, 0, payload); err != nil {
		t.Fatal(err)
	}
	// Middle read.
	buf := make([]byte, 8)
	n, err := s.cli.Mread(fd, 4, buf)
	if err != nil || n != 8 || string(buf) != "wxyzwxyz" {
		t.Fatalf("middle Mread = %d %q %v", n, buf, err)
	}
	// Short read at tail: asks 100, gets 10 (§3.2).
	buf = make([]byte, 100)
	n, err = s.cli.Mread(fd, 990, buf)
	if err != nil || n != 10 {
		t.Fatalf("tail Mread = %d, %v; want 10", n, err)
	}
	// Offset beyond end: EINVAL.
	if _, err := s.cli.Mread(fd, 1001, buf); !errors.Is(err, ErrInval) {
		t.Fatalf("Mread past end = %v, want ErrInval", err)
	}
	// Bad descriptor: EINVAL.
	if _, err := s.cli.Mread(99, 0, buf); !errors.Is(err, ErrInval) {
		t.Fatalf("Mread bad fd = %v, want ErrInval", err)
	}
}

func TestMwriteShortAtTail(t *testing.T) {
	s := newStack(t, 1, 1<<20)
	back := NewMemBacking(4, 100)
	fd, err := s.cli.Mopen(100, back, 0)
	if err != nil {
		t.Fatal(err)
	}
	n, err := s.cli.Mwrite(fd, 95, bytes.Repeat([]byte{7}, 50))
	if err != nil || n != 5 {
		t.Fatalf("tail Mwrite = %d, %v; want 5 (short write)", n, err)
	}
	if _, err := s.cli.Mwrite(fd, 101, []byte{1}); !errors.Is(err, ErrInval) {
		t.Fatalf("Mwrite past end = %v, want ErrInval", err)
	}
}

func TestMcloseSemantics(t *testing.T) {
	s := newStack(t, 1, 1<<20)
	back := NewMemBacking(5, 1024)
	fd, err := s.cli.Mopen(1024, back, 0)
	if err != nil {
		t.Fatal(err)
	}
	if err := s.cli.Mclose(fd); err != nil {
		t.Fatal(err)
	}
	// Closed descriptor: EINVAL everywhere.
	if err := s.cli.Mclose(fd); !errors.Is(err, ErrInval) {
		t.Fatalf("double Mclose = %v, want ErrInval", err)
	}
	if _, err := s.cli.Mread(fd, 0, make([]byte, 10)); !errors.Is(err, ErrInval) {
		t.Fatalf("Mread after Mclose = %v, want ErrInval", err)
	}
	// The imd must have released the space.
	deadline := time.Now().Add(2 * time.Second)
	for time.Now().Before(deadline) {
		if s.imds[0].Stats().Regions == 0 {
			return
		}
		time.Sleep(10 * time.Millisecond)
	}
	t.Fatal("imd did not release the closed region")
}

func TestMsyncFlushesBacking(t *testing.T) {
	dir := t.TempDir()
	f, err := os.OpenFile(filepath.Join(dir, "backing.dat"), os.O_CREATE|os.O_RDWR, 0o644)
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	fb, err := NewFileBacking(f)
	if err != nil {
		t.Fatal(err)
	}
	s := newStack(t, 1, 1<<20)
	fd, err := s.cli.Mopen(4096, fb, 0)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := s.cli.Mwrite(fd, 0, []byte("durable")); err != nil {
		t.Fatal(err)
	}
	if err := s.cli.Msync(fd); err != nil {
		t.Fatalf("Msync: %v", err)
	}
	got := make([]byte, 7)
	if _, err := f.ReadAt(got, 0); err != nil || string(got) != "durable" {
		t.Fatalf("backing after Msync = %q, %v", got, err)
	}
}

func TestRealFileBackingRoundTrip(t *testing.T) {
	dir := t.TempDir()
	f, err := os.OpenFile(filepath.Join(dir, "data.bin"), os.O_CREATE|os.O_RDWR, 0o644)
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	fb, err := NewFileBacking(f)
	if err != nil {
		t.Fatal(err)
	}
	if fb.Inode() == 0 {
		t.Fatal("FileBacking.Inode() = 0 on Linux")
	}
	s := newStack(t, 1, 1<<20)
	// Region at file offset 512 (mopen's in-place update flexibility).
	fd, err := s.cli.Mopen(1024, fb, 512)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := s.cli.Mwrite(fd, 0, []byte("at-offset")); err != nil {
		t.Fatal(err)
	}
	got := make([]byte, 9)
	if _, err := f.ReadAt(got, 512); err != nil || string(got) != "at-offset" {
		t.Fatalf("file at offset 512 = %q, %v", got, err)
	}
}

func TestReadOnlyFileRejectedByMopen(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "ro.dat")
	if err := os.WriteFile(path, []byte("x"), 0o644); err != nil {
		t.Fatal(err)
	}
	f, err := os.Open(path) // read-only
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	if _, err := NewFileBacking(f); err == nil {
		t.Fatal("NewFileBacking accepted a read-only file")
	}
}

func TestAllocationFailureAndRefractionPeriod(t *testing.T) {
	s := newStack(t, 1, 8192) // tiny pool
	back := NewMemBacking(6, 1<<20)
	if _, err := s.cli.Mopen(1<<19, back, 0); !errors.Is(err, ErrNoMem) {
		t.Fatalf("oversized Mopen = %v, want ErrNoMem", err)
	}
	// Within the refraction period the library must not even try.
	start := time.Now()
	if _, err := s.cli.Mopen(1<<19, back, 4096); !errors.Is(err, ErrNoMem) {
		t.Fatalf("Mopen in refraction = %v, want ErrNoMem", err)
	}
	if elapsed := time.Since(start); elapsed > 50*time.Millisecond {
		t.Fatalf("refraction-period Mopen took %v; it should not contact the manager", elapsed)
	}
	if s.cli.Stats().RefractionSkips != 1 {
		t.Fatalf("RefractionSkips = %d, want 1", s.cli.Stats().RefractionSkips)
	}
	// After the period, attempts resume (and succeed for a small region).
	time.Sleep(350 * time.Millisecond)
	fd, err := s.cli.Mopen(1024, back, 8192)
	if err != nil {
		t.Fatalf("Mopen after refraction = %v", err)
	}
	_ = s.cli.Mclose(fd)
}

func TestHostFailureDropsAllItsDescriptors(t *testing.T) {
	s := newStack(t, 2, 1<<20)
	back := NewMemBacking(7, 1<<20)
	// Open several regions; they land across imd0/imd1.
	fds := make([]int, 6)
	for i := range fds {
		fd, err := s.cli.Mopen(4096, back, int64(i*4096))
		if err != nil {
			t.Fatalf("Mopen %d: %v", i, err)
		}
		fds[i] = fd
		if _, err := s.cli.Mwrite(fd, 0, bytes.Repeat([]byte{byte(i)}, 4096)); err != nil {
			t.Fatalf("Mwrite %d: %v", i, err)
		}
	}
	// Kill imd0's host.
	s.n.Partition("imd0")
	// Reads now fail for regions on imd0 — and each failure must drop
	// every descriptor on that host (§3.1).
	sawNoMem := false
	for _, fd := range fds {
		buf := make([]byte, 16)
		if _, err := s.cli.Mread(fd, 0, buf); errors.Is(err, ErrNoMem) {
			sawNoMem = true
			break
		}
	}
	if !sawNoMem {
		t.Fatal("no read failed although a host is dead")
	}
	// All regions on the dead host are now invalid; regions on the live
	// host still work.
	validCount := 0
	for _, fd := range fds {
		if s.cli.RegionValid(fd) {
			validCount++
			buf := make([]byte, 16)
			if _, err := s.cli.Mread(fd, 0, buf); err != nil {
				t.Fatalf("read from surviving host failed: %v", err)
			}
		}
	}
	if validCount == 0 || validCount == len(fds) {
		t.Fatalf("validCount = %d of %d; want the dead host's regions dropped and the live host's kept", validCount, len(fds))
	}
	if s.cli.Stats().DropEvents == 0 {
		t.Fatal("DropEvents = 0, want at least one drop event")
	}
}

func TestDropHostPrunesLatencyHistory(t *testing.T) {
	s := newStack(t, 1, 1<<20)
	back := NewMemBacking(77, 1<<20)
	fd, err := s.cli.Mopen(4096, back, 0)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := s.cli.Mwrite(fd, 0, bytes.Repeat([]byte{0xaa}, 4096)); err != nil {
		t.Fatal(err)
	}
	// A successful read records a latency sample for the hosting imd.
	buf := make([]byte, 4096)
	if _, err := s.cli.Mread(fd, 0, buf); err != nil {
		t.Fatal(err)
	}
	s.cli.mu.Lock()
	_, tracked := s.cli.hostLat["imd0"]
	s.cli.mu.Unlock()
	if !tracked {
		t.Fatal("no hostLat entry for imd0 after a successful read")
	}
	// Kill the host; the failing read drops its descriptors — and must
	// drop its latency history with them, or a long-lived client in a
	// churny cluster grows the map one dead host at a time.
	s.n.Partition("imd0")
	if _, err := s.cli.Mread(fd, 0, buf); err != nil && !errors.Is(err, ErrNoMem) {
		t.Fatalf("Mread on dead host = %v, want ErrNoMem or hedged disk success", err)
	}
	// The drop may land on a hedged read's background leg; poll briefly.
	deadline := time.Now().Add(2 * time.Second)
	for {
		s.cli.mu.Lock()
		_, tracked = s.cli.hostLat["imd0"]
		s.cli.mu.Unlock()
		if !tracked {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("hostLat entry for the dead host was never pruned")
		}
		time.Sleep(10 * time.Millisecond)
	}
}

func TestMreadOnDroppedRegionIsNoMem(t *testing.T) {
	s := newStack(t, 1, 1<<20)
	back := NewMemBacking(8, 1<<20)
	fd, err := s.cli.Mopen(4096, back, 0)
	if err != nil {
		t.Fatal(err)
	}
	s.n.Partition("imd0")
	buf := make([]byte, 16)
	if _, err := s.cli.Mread(fd, 0, buf); !errors.Is(err, ErrNoMem) {
		t.Fatalf("Mread on dead host = %v, want ErrNoMem", err)
	}
	// Second read: descriptor already dropped, immediate ErrNoMem.
	start := time.Now()
	if _, err := s.cli.Mread(fd, 0, buf); !errors.Is(err, ErrNoMem) {
		t.Fatalf("Mread on dropped region = %v, want ErrNoMem", err)
	}
	if time.Since(start) > 50*time.Millisecond {
		t.Fatal("dropped-region Mread hit the network; it should fail locally")
	}
}

func TestCheckAllocLifecycle(t *testing.T) {
	s := newStack(t, 1, 1<<20)
	back := NewMemBacking(9, 1<<20)
	fd, err := s.cli.Mopen(4096, back, 0)
	if err != nil {
		t.Fatal(err)
	}
	ok, err := s.cli.CheckAlloc(fd)
	if err != nil || !ok {
		t.Fatalf("CheckAlloc = %v, %v; want true", ok, err)
	}
	// Drain the imd (owner reclaims the host). The manager learns via
	// HostBusy; checkAlloc must now report the region stale.
	s.imds[0].Drain()
	deadline := time.Now().Add(3 * time.Second)
	for time.Now().Before(deadline) {
		ok, err = s.cli.CheckAlloc(fd)
		if err == nil && !ok {
			if s.cli.RegionValid(fd) {
				t.Fatal("descriptor still valid after stale CheckAlloc")
			}
			return
		}
		time.Sleep(20 * time.Millisecond)
	}
	t.Fatal("CheckAlloc never reported the drained host's region stale")
}

func TestPersistentRegionsSurviveClientRestart(t *testing.T) {
	// The dmine pattern (§5.2.1): a client exits without freeing; a new
	// client re-opens the same (inode, offset) keys and finds the data
	// still cached.
	n := transport.NewNetwork(transport.WithMTU(1500))
	mgr := manager.New(n.Host("cmd"), manager.Config{
		KeepAliveInterval: time.Hour, // don't reclaim during the test
		Endpoint:          fastEp(),
	})
	d := imd.New(n.Host("imd0"), imd.Config{
		ManagerAddr: "cmd", PoolSize: 1 << 20, Epoch: 1,
		StatusInterval: 100 * time.Millisecond, Endpoint: fastEp(),
	})
	t.Cleanup(func() { d.Close(); mgr.Close() })

	back := NewMemBacking(77, 1<<20)
	run1 := New(n.Host("client"), Config{ManagerAddr: "cmd", ClientID: 1, Endpoint: fastEp()})
	fd, err := run1.Mopen(8192, back, 0)
	if err != nil {
		t.Fatal(err)
	}
	want := bytes.Repeat([]byte("persist!"), 1024)
	if _, err := run1.Mwrite(fd, 0, want); err != nil {
		t.Fatal(err)
	}
	run1.Close() // exit without Mclose

	run2 := New(n.Host("client2"), Config{ManagerAddr: "cmd", ClientID: 1, Endpoint: fastEp()})
	defer run2.Close()
	fd2, err := run2.Mopen(8192, back, 0)
	if err != nil {
		t.Fatalf("re-Mopen: %v", err)
	}
	got := make([]byte, 8192)
	nread, err := run2.Mread(fd2, 0, got)
	if err != nil || nread != 8192 {
		t.Fatalf("Mread in run 2 = %d, %v", nread, err)
	}
	if !bytes.Equal(got, want) {
		t.Fatal("second run did not see the first run's cached data")
	}
	// Only one region must exist on the imd (same key reused).
	if d.Stats().Regions != 1 {
		t.Fatalf("imd regions = %d, want 1", d.Stats().Regions)
	}
}

func TestClientUsesVirtualClockForRefraction(t *testing.T) {
	// The refraction timer runs off the configured clock, so the
	// simulated experiments control it.
	n := transport.NewNetwork()
	clock := sim.NewVirtualClock(time.Date(1999, 1, 1, 0, 0, 0, 0, time.UTC))
	mgr := manager.New(n.Host("cmd"), manager.Config{KeepAliveInterval: time.Hour, Endpoint: fastEp()})
	cli := New(n.Host("client"), Config{
		ManagerAddr: "cmd", RefractionPeriod: time.Minute, Clock: clock, Endpoint: fastEp(),
	})
	t.Cleanup(func() { cli.Close(); mgr.Close() })

	back := NewMemBacking(10, 1<<20)
	if _, err := cli.Mopen(4096, back, 0); !errors.Is(err, ErrNoMem) {
		t.Fatal("expected ErrNoMem with no imds")
	}
	if _, err := cli.Mopen(4096, back, 4096); !errors.Is(err, ErrNoMem) {
		t.Fatal("expected refraction ErrNoMem")
	}
	if cli.Stats().RefractionSkips != 1 {
		t.Fatalf("RefractionSkips = %d, want 1", cli.Stats().RefractionSkips)
	}
	clock.Advance(2 * time.Minute)
	// Attempt resumes (fails again for lack of hosts, but contacts the
	// manager rather than skipping).
	if _, err := cli.Mopen(4096, back, 4096); !errors.Is(err, ErrNoMem) {
		t.Fatal("expected ErrNoMem")
	}
	if got := cli.Stats().RefractionSkips; got != 1 {
		t.Fatalf("RefractionSkips = %d after clock advance, want still 1", got)
	}
}

func TestStatsCounters(t *testing.T) {
	s := newStack(t, 1, 1<<20)
	back := NewMemBacking(11, 1<<20)
	fd, _ := s.cli.Mopen(8192, back, 0)
	payload := make([]byte, 8192)
	s.cli.Mwrite(fd, 0, payload)
	s.cli.Mread(fd, 0, payload)
	s.cli.Mread(fd, 0, payload)
	st := s.cli.Stats()
	if st.RemoteReads != 2 || st.RemoteWrites != 1 {
		t.Fatalf("stats = %+v", st)
	}
	if st.RemoteReadBytes != 16384 || st.RemoteWriteBytes != 8192 {
		t.Fatalf("byte counters = %+v", st)
	}
	if st.OpenRegions != 1 {
		t.Fatalf("OpenRegions = %d", st.OpenRegions)
	}
}
