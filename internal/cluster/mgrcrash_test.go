package cluster

import (
	"fmt"
	"testing"
	"time"

	"dodo/internal/bulk"
	"dodo/internal/faults"
	"dodo/internal/imd"
	"dodo/internal/manager"
	"dodo/internal/monitor"
	"dodo/internal/sim"
	"dodo/internal/wire"
)

// mgrSweepPlan layers manager crash/restart windows on the standard
// churn plan: the directory dies and rebuilds mid-workload.
func mgrSweepPlan(hosts []string) faults.Plan {
	p := sweepPlan(hosts)
	p.MgrCrashMean = 1000 * time.Millisecond
	p.MgrRestartDelay = 300 * time.Millisecond
	return p
}

// mgrSweepCluster is sweepCluster with fast announce and rebuild
// cadences, so inventory re-reports and client revalidation converge
// inside the test's settle windows.
func mgrSweepCluster(t *testing.T) (*Cluster, []*Workstation, []string) {
	t.Helper()
	c := New(Config{
		PoolBytes: 1 << 20,
		Monitor:   monitor.Config{IdleAfter: 2 * time.Second},
		Endpoint:  fastEp(),
		Manager: manager.Config{
			KeepAliveInterval: 200 * time.Millisecond,
			KeepAliveMisses:   8,
			RebuildGrace:      600 * time.Millisecond,
		},
		IMD: imd.Config{StatusInterval: 100 * time.Millisecond},
	})
	t.Cleanup(func() { c.Close() })
	names := []string{"ws0", "ws1", "ws2"}
	var stations []*Workstation
	for _, name := range names {
		w := c.AddWorkstation(name, AlwaysIdle())
		driveIdle(w, 3)
		stations = append(stations, w)
	}
	deadline := time.Now().Add(5 * time.Second)
	for time.Now().Before(deadline) && c.Manager().Stats().IdleHosts < len(names) {
		time.Sleep(10 * time.Millisecond)
	}
	if got := c.Manager().Stats().IdleHosts; got != len(names) {
		t.Fatalf("idle hosts = %d, want %d", got, len(names))
	}
	return c, stations, names
}

// validateRegionDirectory cross-checks every RD row against what the
// imds actually hold: a row whose host runs a live imd under the row's
// epoch must be backed by a real region there. A row with a mismatched
// epoch is lazily-cleaned stale state (it exists without manager
// crashes too) — but a live-epoch row without a backing region is
// dead-incarnation residue the rebuild failed to fence.
func validateRegionDirectory(mgr *manager.Manager, stations []*Workstation) error {
	byAddr := make(map[string]*Workstation, len(stations))
	for _, w := range stations {
		byAddr[w.IMDAddr()] = w
	}
	for _, row := range mgr.RegionRows() {
		w := byAddr[row.HostAddr]
		if w == nil {
			return fmt.Errorf("RD row points at unknown host %s", row.HostAddr)
		}
		d := w.IMD()
		if d == nil || d.Epoch() != row.Epoch {
			continue
		}
		if !d.HoldsRegion(row.RegionID) {
			return fmt.Errorf("dead RD row: %s region %d not held by the live imd", row.HostAddr, row.RegionID)
		}
	}
	return nil
}

// TestManagerCrashRecovery is the crash-recovery acceptance sweep: the
// standard three-pattern workload runs while a seeded schedule crashes
// and restarts the central manager (on top of imd crashes, blackouts,
// reclaims and link faults). Every byte must stay correct (runSweepCore
// verifies backing files against shadows — zero lost acknowledged
// writes), and once churn subsides: the manager runs a later
// incarnation with a directory rebuilt from imd inventory re-reports,
// every client has revalidated onto it, and no directory row points at
// a region that does not exist.
func TestManagerCrashRecovery(t *testing.T) {
	c, stations, names := mgrSweepCluster(t)
	cli, _, _ := runSweepCore(t, c, mgrSweepPlan(names))

	finalInc := c.ManagerIncarnation()
	if finalInc < 2 {
		t.Fatalf("manager incarnation = %d; the plan never crashed the manager", finalInc)
	}
	mgr := c.Manager()
	if mgr == nil {
		t.Fatal("manager not running after a completed (self-healing) schedule")
	}
	if got := mgr.Stats().Incarnation; got != finalInc {
		t.Fatalf("manager reports incarnation %d, harness says %d", got, finalInc)
	}

	// The rebuilt directory came from inventory re-reports.
	deadline := time.Now().Add(10 * time.Second)
	for time.Now().Before(deadline) && mgr.Stats().InventoryReports == 0 {
		time.Sleep(20 * time.Millisecond)
	}
	if st := mgr.Stats(); st.InventoryReports == 0 {
		t.Fatalf("no inventory re-reports reached the final incarnation: %+v", st)
	}

	// Every client revalidated: the runtime adopted the final
	// incarnation and its recovery pass probed the rebuilt directory.
	deadline = time.Now().Add(10 * time.Second)
	for time.Now().Before(deadline) {
		st := cli.Stats()
		if st.ManagerIncarnation == finalInc && st.Revalidations > 0 {
			break
		}
		time.Sleep(20 * time.Millisecond)
	}
	if st := cli.Stats(); st.ManagerIncarnation != finalInc || st.Revalidations == 0 {
		t.Fatalf("client never revalidated onto incarnation %d: %+v", finalInc, st)
	}

	// Zero dead-incarnation RD rows. Retried briefly: the recovery loop
	// may still be converging when the first snapshot is cut.
	deadline = time.Now().Add(5 * time.Second)
	var lastErr error
	for time.Now().Before(deadline) {
		if lastErr = validateRegionDirectory(mgr, stations); lastErr == nil {
			break
		}
		time.Sleep(50 * time.Millisecond)
	}
	if lastErr != nil {
		t.Fatalf("region directory never converged: %v", lastErr)
	}
	t.Logf("final manager stats: %+v", mgr.Stats())
}

// TestManagerCrashScheduleDeterministic: a plan with manager crash
// windows replayed against two freshly built live clusters applies the
// identical timeline and counts, crashes the manager at least once, and
// leaves both deployments with a live manager at the same incarnation.
func TestManagerCrashScheduleDeterministic(t *testing.T) {
	plan := mgrSweepPlan([]string{"ws0", "ws1", "ws2"})

	replay := func() (string, faults.Counts, *Cluster) {
		c, _, _ := mgrSweepCluster(t)
		s := faults.NewScheduler(plan, sim.NewVirtualClock(t0), c.FaultTarget())
		for el := time.Duration(0); el <= plan.Duration; el += 25 * time.Millisecond {
			s.Step(el)
		}
		if s.Remaining() != 0 {
			t.Fatalf("%d events left unapplied", s.Remaining())
		}
		return faults.Timeline(s.Events()), s.Counts(), c
	}
	tl1, c1, cl1 := replay()
	tl2, c2, cl2 := replay()
	if tl1 != tl2 {
		t.Fatalf("same seed, different timelines:\n--- run 1\n%s--- run 2\n%s", tl1, tl2)
	}
	if c1 != c2 {
		t.Fatalf("same seed, different counts: %v vs %v", c1, c2)
	}
	if c1.MgrCrashes == 0 || c1.MgrCrashes != c1.MgrRestarts {
		t.Fatalf("plan applied %d manager crashes / %d restarts; want a balanced nonzero pair", c1.MgrCrashes, c1.MgrRestarts)
	}
	for i, c := range []*Cluster{cl1, cl2} {
		if c.Manager() == nil {
			t.Fatalf("run %d: manager not running after a completed schedule", i+1)
		}
		if got := c.ManagerIncarnation(); got != uint64(1+c1.MgrCrashes) {
			t.Fatalf("run %d: incarnation %d after %d crashes", i+1, got, c1.MgrCrashes)
		}
	}
}

// TestIncarnationFencing: after a crash+restart, frames stamped with
// the dead incarnation are refused with StatusStale (carrying the live
// incarnation so the sender can converge) and leave no trace in the
// directory — no IWD row, no RD row. The same frames re-sent under the
// live incarnation are accepted.
func TestIncarnationFencing(t *testing.T) {
	c, _, _ := sweepCluster(t)
	c.CrashManager()
	c.RestartManager()
	if inc := c.ManagerIncarnation(); inc != 2 {
		t.Fatalf("incarnation after one crash+restart = %d, want 2", inc)
	}
	mgr := c.Manager()

	probe := bulk.NewEndpoint(c.Network().Host("probe"), fastEp(), nil)
	t.Cleanup(func() { probe.Close() })

	ghostStatus := func(inc uint64) *wire.HostStatusAck {
		resp, err := probe.Call(c.ManagerAddr(), &wire.HostStatus{
			HostAddr: "ghost", State: wire.HostIdle, Epoch: 9,
			AvailBytes: 1 << 20, LargestFree: 1 << 20, Incarnation: inc,
		})
		if err != nil {
			t.Fatalf("HostStatus(inc=%d): %v", inc, err)
		}
		return resp.(*wire.HostStatusAck)
	}
	ghostInIWD := func() bool {
		resp, err := probe.Call(c.ManagerAddr(), &wire.ClusterStatsReq{})
		if err != nil {
			t.Fatalf("ClusterStatsReq: %v", err)
		}
		for _, h := range resp.(*wire.ClusterStatsResp).Hosts {
			if h.Addr == "ghost" {
				return true
			}
		}
		return false
	}

	// Dead-incarnation announce: fenced, not admitted.
	if ack := ghostStatus(1); ack.Status != wire.StatusStale || ack.Incarnation != 2 {
		t.Fatalf("dead-incarnation announce ack = %+v, want Stale under incarnation 2", ack)
	}
	if ghostInIWD() {
		t.Fatal("fenced announce still admitted the host to the IWD")
	}

	// Dead-incarnation inventory: fenced, no RD rows built.
	key := wire.RegionKey{Inode: 77, Offset: 0, ClientID: 9}
	inv := &wire.InventoryReport{
		HostAddr: "ghost", Epoch: 9, Incarnation: 1,
		AvailBytes: 1 << 20, LargestFree: 1 << 20,
		Regions: []wire.InventoryRegion{{RegionID: 41, Length: 4096, Key: key, Client: "nobody"}},
	}
	resp, err := probe.Call(c.ManagerAddr(), inv)
	if err != nil {
		t.Fatalf("InventoryReport: %v", err)
	}
	if ack := resp.(*wire.InventoryAck); ack.Status != wire.StatusStale || ack.Incarnation != 2 {
		t.Fatalf("dead-incarnation inventory ack = %+v, want Stale under incarnation 2", ack)
	}
	for _, row := range mgr.RegionRows() {
		if row.HostAddr == "ghost" {
			t.Fatalf("fenced inventory still built RD row %+v", row)
		}
	}
	if st := mgr.Stats(); st.FencedRequests < 2 {
		t.Fatalf("FencedRequests = %d, want at least the 2 probes", st.FencedRequests)
	}

	// The Stale acks named the live incarnation; re-sending under it is
	// accepted — the convergence path every fenced imd follows.
	if ack := ghostStatus(2); ack.Status != wire.StatusOK || ack.Incarnation != 2 {
		t.Fatalf("live-incarnation announce ack = %+v, want OK", ack)
	}
	if !ghostInIWD() {
		t.Fatal("live-incarnation announce did not admit the host")
	}
}
