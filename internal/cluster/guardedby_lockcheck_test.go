//go:build lockcheck

package cluster

import (
	"bytes"
	"testing"
	"time"

	"dodo/internal/core"
	"dodo/internal/monitor"
)

// TestGuardedByCleanScheduleNoRankPanics is the dynamic half of the
// guarded-by contract (DESIGN.md §10): the static pass proves every
// annotated field access holds its declared mutex, and this test runs
// the same annotated components — manager, imd, client, monitor,
// cluster — through a recruit/write/read/reclaim schedule with the
// lockcheck runtime compiled in. A schedule the pass accepts must
// complete without a rank panic; any panic here means an acquisition
// the annotations describe violates the rank hierarchy at runtime.
func TestGuardedByCleanScheduleNoRankPanics(t *testing.T) {
	c := fastCluster(t, 2)
	ws1 := c.AddWorkstation("ws1", AlwaysIdle())
	driveIdle(ws1, 3)
	active := map[int]bool{8: true}
	ws2 := c.AddWorkstation("ws2", Scripted(t0, active))
	driveIdle(ws2, 3)

	deadline := time.Now().Add(3 * time.Second)
	for time.Now().Before(deadline) && c.Manager().Stats().IdleHosts < 2 {
		time.Sleep(10 * time.Millisecond)
	}
	if got := c.Manager().Stats().IdleHosts; got != 2 {
		t.Fatalf("idle hosts = %d, want 2", got)
	}

	cli := c.NewClient("app", core.Config{ClientID: 1})
	back := core.NewMemBacking(42, 1<<20)
	data := bytes.Repeat([]byte("guarded"), 4096/7+1)[:4096]
	var fds []int
	for i := 0; i < 4; i++ {
		fd, err := cli.Mopen(4096, back, int64(i)*4096)
		if err != nil {
			t.Fatalf("Mopen %d: %v", i, err)
		}
		if _, err := cli.Mwrite(fd, 0, data); err != nil {
			t.Fatalf("Mwrite %d: %v", i, err)
		}
		fds = append(fds, fd)
	}
	for i, fd := range fds {
		got := make([]byte, 4096)
		if n, err := cli.Mread(fd, 0, got); err != nil || n != 4096 {
			t.Fatalf("Mread %d = %d, %v", i, n, err)
		}
	}

	// Reclaim ws2 mid-life so the drain/handoff lock paths run too.
	for i := 4; i <= 8; i++ {
		ws2.Step(t0.Add(time.Duration(i) * time.Second))
	}
	if ws2.IMD() != nil {
		t.Fatal("reclaim left ws2's imd running")
	}
	if ws2.Monitor().State() != monitor.StateBusy {
		t.Fatal("ws2 not busy after owner return")
	}
	// Reads still answer after the reclaim (recovery paths take the
	// same annotated locks).
	got := make([]byte, 4096)
	if n, err := cli.Mread(fds[0], 0, got); err != nil || n != 4096 {
		t.Fatalf("post-reclaim Mread = %d, %v", n, err)
	}
}
