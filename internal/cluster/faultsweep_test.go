package cluster

import (
	"bytes"
	"fmt"
	"log"
	"sync"
	"testing"
	"time"

	"dodo/internal/core"
	"dodo/internal/faults"
	"dodo/internal/manager"
	"dodo/internal/monitor"
	"dodo/internal/region"
	"dodo/internal/sim"
	"dodo/internal/simnet"
	"dodo/internal/workload"
)

const (
	sweepReqSize = 8 << 10
	sweepBlocks  = 16
	sweepDataset = sweepBlocks * sweepReqSize
)

func sweepPlan(hosts []string) faults.Plan {
	return faults.Plan{
		Seed:           1999,
		Duration:       2500 * time.Millisecond,
		Hosts:          hosts,
		CrashMean:      700 * time.Millisecond,
		RestartDelay:   250 * time.Millisecond,
		BlackoutMean:   1100 * time.Millisecond,
		BlackoutLength: 300 * time.Millisecond,
		ReclaimMean:    900 * time.Millisecond,
		ReclaimLength:  300 * time.Millisecond,
		DegradeMean:    800 * time.Millisecond,
		DegradeLength:  250 * time.Millisecond,
		Link: simnet.Faults{
			LossRate:     0.15,
			DupRate:      0.05,
			ReorderRate:  0.10,
			ReorderDelay: 2 * time.Millisecond,
		},
	}
}

// sweepCluster builds a 3-workstation deployment with every host
// recruited and registered at the manager.
func sweepCluster(t *testing.T) (*Cluster, []*Workstation, []string) {
	t.Helper()
	c := New(Config{
		PoolBytes: 1 << 20,
		Monitor:   monitor.Config{IdleAfter: 2 * time.Second},
		Endpoint:  fastEp(),
		Manager: manager.Config{
			KeepAliveInterval: 200 * time.Millisecond,
			// Generous miss budget: a scheduled manager blackout must not
			// look like a dead client.
			KeepAliveMisses: 8,
		},
	})
	t.Cleanup(func() { c.Close() })
	names := []string{"ws0", "ws1", "ws2"}
	var stations []*Workstation
	for _, name := range names {
		w := c.AddWorkstation(name, AlwaysIdle())
		driveIdle(w, 3)
		stations = append(stations, w)
	}
	deadline := time.Now().Add(5 * time.Second)
	for time.Now().Before(deadline) && c.Manager().Stats().IdleHosts < len(names) {
		time.Sleep(10 * time.Millisecond)
	}
	if got := c.Manager().Stats().IdleHosts; got != len(names) {
		t.Fatalf("idle hosts = %d, want %d", got, len(names))
	}
	return c, stations, names
}

// TestFaultScheduleDeterministic: one plan replayed against two freshly
// built live clusters applies the identical event sequence and tallies
// identical final counts — the same-seed ⇒ same-faults contract — and
// leaves both deployments fully healed.
func TestFaultScheduleDeterministic(t *testing.T) {
	plan := sweepPlan([]string{"ws0", "ws1", "ws2"})
	plan.Duration = 1200 * time.Millisecond

	replay := func() (string, faults.Counts, []*Workstation) {
		c, stations, _ := sweepCluster(t)
		s := faults.NewScheduler(plan, sim.NewVirtualClock(t0), c.FaultTarget())
		for el := time.Duration(0); el <= plan.Duration; el += 25 * time.Millisecond {
			s.Step(el)
		}
		if s.Remaining() != 0 {
			t.Fatalf("%d events left unapplied", s.Remaining())
		}
		return faults.Timeline(s.Events()), s.Counts(), stations
	}
	tl1, c1, st1 := replay()
	tl2, c2, st2 := replay()
	if tl1 == "" {
		t.Fatal("empty schedule")
	}
	if tl1 != tl2 {
		t.Fatalf("same seed, different timelines:\n--- run 1\n%s--- run 2\n%s", tl1, tl2)
	}
	if c1 != c2 {
		t.Fatalf("same seed, different final counts: %v vs %v", c1, c2)
	}
	// Every down window heals inside the plan, so both deployments end
	// with all hosts recruited.
	for _, stations := range [][]*Workstation{st1, st2} {
		for _, w := range stations {
			if w.IMD() == nil {
				t.Fatalf("workstation %s not recruited after a completed schedule", w.Name)
			}
		}
	}
}

// sweepWorkload drives one access pattern through a region cache whose
// runtime descriptors live on the churning cluster, checking every read
// against a shadow copy.
type sweepWorkload struct {
	name   string
	pat    workload.Pattern
	back   *core.MemBacking
	cache  *region.Cache
	trace  *sweepTrace
	fds    []int
	shadow []byte
	ver    byte
}

func newSweepWorkload(t *testing.T, cli *core.Client, tr *sweepTrace, inode uint64, pat workload.Pattern) *sweepWorkload {
	t.Helper()
	w := &sweepWorkload{
		name:  pat.Name(),
		pat:   pat,
		back:  core.NewMemBacking(inode, 1<<20),
		trace: tr,
		cache: region.NewCache(newTraceDodo(pat.Name(), cli, tr), region.Config{
			Capacity:         4 * sweepReqSize, // force evictions into remote memory
			RefractionPeriod: 250 * time.Millisecond,
			PromoteOnAccess:  true,
		}),
		shadow: make([]byte, sweepDataset),
	}
	for b := 0; b < sweepBlocks; b++ {
		fd, err := w.cache.Copen(sweepReqSize, w.back, int64(b)*sweepReqSize)
		if err != nil {
			t.Fatalf("%s: Copen block %d: %v", w.name, b, err)
		}
		w.fds = append(w.fds, fd)
	}
	return w
}

// fill produces deterministic, version-stamped block contents.
func (w *sweepWorkload) fill(buf []byte, block int, ver byte) {
	for i := range buf {
		buf[i] = byte(block)*31 ^ byte(i) ^ ver
	}
}

// run loops the pattern until done closes (at least two iterations),
// issuing a write every third request. Cache operations must never fail
// under churn — the cache degrades to the backing file internally — and
// every read must match the shadow copy.
func (w *sweepWorkload) run(done <-chan struct{}) error {
	buf := make([]byte, sweepReqSize)
	for iter := 0; ; iter++ {
		if iter >= 2 {
			select {
			case <-done:
				return nil
			default:
			}
		}
		for qi, req := range w.pat.Iteration(iter) {
			block := int(req.Offset / sweepReqSize)
			n, err := w.cache.Cread(w.fds[block], 0, buf)
			if err != nil || n != sweepReqSize {
				return fmt.Errorf("%s iter %d: Cread block %d = %d, %v", w.name, iter, block, n, err)
			}
			if !bytes.Equal(buf, w.shadow[req.Offset:req.Offset+sweepReqSize]) {
				return fmt.Errorf("%s iter %d: stale read at block %d", w.name, iter, block)
			}
			if qi%3 == 0 {
				w.ver++
				w.fill(buf, block, w.ver)
				if n, err := w.cache.Cwrite(w.fds[block], 0, buf); err != nil || n != sweepReqSize {
					return fmt.Errorf("%s iter %d: Cwrite block %d = %d, %v", w.name, iter, block, n, err)
				}
				copy(w.shadow[req.Offset:], buf)
			}
		}
	}
}

// readPass reads every block once, verifying against the shadow, and
// reports how many bytes were served from remote memory during the pass.
func (w *sweepWorkload) readPass() (int64, error) {
	before := w.cache.Stats().RemoteReads
	buf := make([]byte, sweepReqSize)
	for b, fd := range w.fds {
		n, err := w.cache.Cread(fd, 0, buf)
		if err != nil || n != sweepReqSize {
			return 0, fmt.Errorf("%s: read pass block %d = %d, %v", w.name, b, n, err)
		}
		if !bytes.Equal(buf, w.shadow[int64(b)*sweepReqSize:int64(b+1)*sweepReqSize]) {
			// The fill is version-stamped (buf[i] = block*31 ^ i ^ ver), so
			// recover which version was served to aid diagnosis.
			st, _ := w.cache.State(fd)
			gotVer := buf[0] ^ byte(b)*31
			wantVer := w.shadow[int64(b)*sweepReqSize] ^ byte(b)*31
			var back [1]byte
			_, _ = w.back.ReadAt(back[:], int64(b)*sweepReqSize)
			hist := ""
			if w.trace != nil {
				hist = "\ntrace:\n" + w.trace.dump(fmt.Sprintf("%s blk%d ", w.name, b), "dodo:")
			}
			return 0, fmt.Errorf("%s: read pass stale block %d: served ver %d, want ver %d (backing ver %d, state %v)%s",
				w.name, b, gotVer, wantVer, back[0]^byte(b)*31, st, hist)
		}
	}
	return w.cache.Stats().RemoteReads - before, nil
}

// runSweepCore drives the three access patterns through region caches
// while the given fault plan churns the cluster, then verifies
// quiescent byte-correctness and waits for remote service to resume.
// It returns the client, the workloads and the settle poller so callers
// can stage further failure phases on top.
func runSweepCore(t *testing.T, c *Cluster, plan faults.Plan) (*core.Client, []*sweepWorkload, func(string)) {
	t.Helper()
	tr := newSweepTrace()
	cli := c.NewClient("app", core.Config{
		ClientID: 1, RefractionPeriod: 250 * time.Millisecond,
		Logger: log.New(tr, "", 0),
	})

	wls := []*sweepWorkload{
		newSweepWorkload(t, cli, tr, 101, workload.Sequential{DatasetBytes: sweepDataset, ReqSize: sweepReqSize}),
		newSweepWorkload(t, cli, tr, 102, workload.HotCold{DatasetBytes: sweepDataset, ReqSize: sweepReqSize, Seed: 2}),
		newSweepWorkload(t, cli, tr, 103, workload.Random{DatasetBytes: sweepDataset, ReqSize: sweepReqSize, Seed: 3}),
	}

	sched := faults.NewScheduler(plan, sim.WallClock{}, c.FaultTarget())
	done := make(chan struct{})
	sched.Start()
	go func() { sched.Wait(); close(done) }()

	var wg sync.WaitGroup
	errs := make(chan error, len(wls))
	for _, w := range wls {
		w := w
		wg.Add(1)
		go func() {
			defer wg.Done()
			errs <- w.run(done)
		}()
	}
	wg.Wait()
	for range wls {
		if err := <-errs; err != nil {
			t.Fatal(err)
		}
	}
	if sched.Remaining() != 0 {
		t.Fatalf("%d scheduled faults never fired", sched.Remaining())
	}
	t.Logf("sweep applied: %v", sched.Counts())
	t.Logf("client stats after churn: %+v", cli.Stats())

	// Byte-correctness at quiescence: flush write-back state and compare
	// the backing files to the shadows.
	for _, w := range wls {
		for b, fd := range w.fds {
			if err := w.cache.Csync(fd); err != nil {
				t.Fatalf("%s: Csync block %d: %v", w.name, b, err)
			}
		}
		if !bytes.Equal(w.back.Bytes()[:sweepDataset], w.shadow) {
			t.Fatalf("%s: backing file diverged from shadow after the sweep", w.name)
		}
	}

	// The schedule heals everything it breaks, so remote service must
	// come back: poll until a read pass serves bytes from remote memory.
	waitRemote := func(phase string) {
		deadline := time.Now().Add(15 * time.Second)
		for time.Now().Before(deadline) {
			var remote int64
			for _, w := range wls {
				n, err := w.readPass()
				if err != nil {
					t.Fatalf("%s: %v", phase, err)
				}
				remote += n
			}
			if remote > 0 {
				return
			}
			time.Sleep(50 * time.Millisecond)
		}
		t.Fatalf("%s: remote reads never resumed", phase)
	}
	waitRemote("post-churn settle")
	return cli, wls, waitRemote
}

// TestSeededFaultSweep is the acceptance sweep of the failure-path work:
// three access patterns run through region caches while a seeded
// schedule crashes, drains, restarts, partitions and degrades the
// cluster. Nothing may panic, no cache operation may fail, every read
// must be byte-correct against the shadow copy, and once churn subsides
// the client must transparently re-open its regions and serve from
// remote memory again.
func TestSeededFaultSweep(t *testing.T) {
	c, stations, names := sweepCluster(t)
	cli, wls, waitRemote := runSweepCore(t, c, sweepPlan(names))

	// Forced cluster-wide outage: crash every imd, then restart with
	// bumped epochs. The first touch of each healthy remote copy drops
	// the host; the background recovery must then revalidate, re-open
	// and repopulate without any application-level Mopen.
	for _, w := range stations {
		w.Crash()
	}
	for _, w := range wls {
		if _, err := w.readPass(); err != nil {
			t.Fatalf("read pass during total outage: %v", err)
		}
	}
	if st := cli.Stats(); st.DropEvents == 0 {
		t.Fatalf("DropEvents = 0 after a cluster-wide crash: %+v", st)
	}
	for _, w := range stations {
		w.Recruit()
	}
	deadline := time.Now().Add(20 * time.Second)
	for time.Now().Before(deadline) {
		st := cli.Stats()
		if st.Reopens > 0 && st.Revalidations > 0 {
			break
		}
		time.Sleep(50 * time.Millisecond)
	}
	if st := cli.Stats(); st.Reopens == 0 || st.Revalidations == 0 {
		t.Fatalf("recovery never re-opened a region after restart: %+v", st)
	}
	waitRemote("post-restart recovery")

	// No descriptor leaks: failed clone attempts under churn must not
	// leave orphan fds behind for the recovery loop to grind on.
	if st := cli.Stats(); st.OpenRegions != len(wls)*sweepBlocks {
		t.Fatalf("client leaked region descriptors: OpenRegions = %d, want %d", st.OpenRegions, len(wls)*sweepBlocks)
	}

	// Cluster-wide counters made it to the manager via keep-alive acks.
	deadline = time.Now().Add(5 * time.Second)
	for time.Now().Before(deadline) && c.Manager().Stats().ClientDrops == 0 {
		time.Sleep(50 * time.Millisecond)
	}
	if s := c.Manager().Stats(); s.ClientDrops == 0 {
		t.Fatalf("manager never aggregated client drop counters: %+v", s)
	}
	t.Logf("final client stats: %+v", cli.Stats())
}
