package cluster

import (
	"bytes"
	"errors"
	"math/rand"
	"testing"
	"time"

	"dodo/internal/core"
	"dodo/internal/faults"
	"dodo/internal/imd"
	"dodo/internal/manager"
	"dodo/internal/monitor"
	"dodo/internal/sim"
)

// handoffCluster builds a deployment tuned for graceful-reclaim tests:
// generous grace windows so no grant is aborted by a deadline while the
// race detector slows everything down.
func handoffCluster(t *testing.T, hosts []string) (*Cluster, []*Workstation) {
	t.Helper()
	c := New(Config{
		PoolBytes: 1 << 20,
		Monitor:   monitor.Config{IdleAfter: 2 * time.Second},
		Endpoint:  fastEp(),
		Manager: manager.Config{
			KeepAliveInterval: 200 * time.Millisecond,
			KeepAliveMisses:   8,
			HandoffGrace:      10 * time.Second,
		},
		IMD: imd.Config{GraceWindow: 1500 * time.Millisecond},
	})
	t.Cleanup(func() { c.Close() })
	var stations []*Workstation
	for _, name := range hosts {
		w := c.AddWorkstation(name, AlwaysIdle())
		driveIdle(w, 3)
		stations = append(stations, w)
	}
	deadline := time.Now().Add(5 * time.Second)
	for time.Now().Before(deadline) && c.Manager().Stats().IdleHosts < len(hosts) {
		time.Sleep(10 * time.Millisecond)
	}
	if got := c.Manager().Stats().IdleHosts; got != len(hosts) {
		t.Fatalf("idle hosts = %d, want %d", got, len(hosts))
	}
	return c, stations
}

// openRegions opens n regions, writes distinct contents to each, and
// returns the descriptors with their expected bytes.
func openRegions(t *testing.T, cli *core.Client, back *core.MemBacking, n int) ([]int, [][]byte) {
	t.Helper()
	var fds []int
	var want [][]byte
	for i := 0; i < n; i++ {
		fd, err := cli.Mopen(4096, back, int64(i)*4096)
		if err != nil {
			t.Fatalf("Mopen %d: %v", i, err)
		}
		data := make([]byte, 4096)
		rand.New(rand.NewSource(int64(i) + 100)).Read(data)
		if _, err := cli.Mwrite(fd, 0, data); err != nil {
			t.Fatalf("Mwrite %d: %v", i, err)
		}
		fds = append(fds, fd)
		want = append(want, data)
	}
	return fds, want
}

// TestGracefulReclaimHandoff is the acceptance test of the tentpole: on
// an owner return, the draining imd hands its pages to peer imds and
// the manager repoints the region map, so the client's next touch of
// each region revalidates to the new host — served from remote memory,
// not repopulated from disk. At least 70% of the reclaimed host's
// resident pages must take the handoff path (here: all of them).
func TestGracefulReclaimHandoff(t *testing.T) {
	c, stations := handoffCluster(t, []string{"ws0", "ws1", "ws2"})
	cli := c.NewClient("app", core.Config{ClientID: 1, RefractionPeriod: 250 * time.Millisecond})
	back := core.NewMemBacking(55, 1<<20)
	fds, want := openRegions(t, cli, back, 12)

	// Find the workstation hosting the most regions and its residents.
	perHost := map[string][]int{}
	for _, fd := range fds {
		addr, ok := cli.RegionHost(fd)
		if !ok {
			t.Fatalf("region %d has no host before the reclaim", fd)
		}
		perHost[addr] = append(perHost[addr], fd)
	}
	var victim *Workstation
	for _, w := range stations {
		if victim == nil || len(perHost[w.IMDAddr()]) > len(perHost[victim.IMDAddr()]) {
			victim = w
		}
	}
	resident := perHost[victim.IMDAddr()]
	if len(resident) == 0 {
		t.Fatal("no regions landed on the victim host")
	}
	diskBefore := cli.Stats().RemoteReads // baseline not needed; keep reads counted below

	// Owner returns. The imd drains: pages stream to peers, the manager
	// repoints the region map, and the client — kept active so drops
	// trigger its recovery loop — must adopt the handoff copies.
	victim.Reclaim()
	need := (len(resident)*7 + 9) / 10 // ceil(0.7 * resident)
	deadline := time.Now().Add(20 * time.Second)
	buf := make([]byte, 4096)
	for cli.Stats().HandoffAdopts < int64(need) {
		if time.Now().After(deadline) {
			t.Fatalf("HandoffAdopts = %d after 20s, want >= %d (manager: %+v, client: %+v)",
				cli.Stats().HandoffAdopts, need, c.Manager().Stats(), cli.Stats())
		}
		for _, fd := range resident {
			if _, err := cli.Mread(fd, 0, buf); err != nil && !errors.Is(err, core.ErrNoMem) {
				t.Fatalf("Mread during drain = %v", err)
			}
		}
		time.Sleep(20 * time.Millisecond)
	}

	// Every adopted region now lives on a peer and serves the confirmed
	// bytes from remote memory.
	moved := 0
	for i, fd := range fds {
		addr, ok := cli.RegionHost(fd)
		if ok && addr != victim.IMDAddr() {
			if containsFD(resident, fd) {
				moved++
			}
		}
		n, err := cli.Mread(fd, 0, buf)
		if err != nil || n != 4096 || !bytes.Equal(buf, want[i]) {
			t.Fatalf("Mread %d after handoff = %d, %v (match=%v)", fd, n, err, bytes.Equal(buf, want[i]))
		}
	}
	if moved < need {
		t.Fatalf("only %d/%d resident regions moved off the reclaimed host, want >= %d",
			moved, len(resident), need)
	}
	ms := c.Manager().Stats()
	if ms.HandoffOffers == 0 || ms.HandoffPagesMoved < int64(need) {
		t.Fatalf("manager handoff counters too low: %+v", ms)
	}
	if got := cli.Stats().RemoteReads; got <= diskBefore {
		t.Fatal("post-handoff reads were not served from remote memory")
	}
	if st := victim.IMD(); st != nil {
		t.Fatal("victim still recruited after reclaim")
	}
}

func containsFD(fds []int, fd int) bool {
	for _, f := range fds {
		if f == fd {
			return true
		}
	}
	return false
}

// TestHandoffScheduleDeterministic: two identical deployments given the
// same reclaim produce byte-identical handoff schedules — placement is
// a pure function of the directory state and the manager's seed, not of
// goroutine timing.
func TestHandoffScheduleDeterministic(t *testing.T) {
	run := func() ([]string, map[int]string) {
		c, _ := handoffCluster(t, []string{"ws0", "ws1", "ws2"})
		cli := c.NewClient("app", core.Config{ClientID: 1, RefractionPeriod: 250 * time.Millisecond})
		back := core.NewMemBacking(77, 1<<20)
		fds, _ := openRegions(t, cli, back, 10)

		placement := map[int]string{}
		victimAddr := ""
		var victim *Workstation
		for _, fd := range fds {
			addr, ok := cli.RegionHost(fd)
			if !ok {
				t.Fatalf("region %d unplaced", fd)
			}
			placement[fd] = addr
		}
		// Reclaim a fixed host; the client stays quiescent so the only
		// directory mutations are the drain's own.
		victim = c.workstation("ws1")
		victimAddr = victim.IMDAddr()
		onVictim := 0
		for _, addr := range placement {
			if addr == victimAddr {
				onVictim++
			}
		}
		victim.Reclaim()
		deadline := time.Now().Add(15 * time.Second)
		for {
			s := c.Manager().Stats()
			if int(s.HandoffPagesMoved) >= onVictim {
				break
			}
			if time.Now().After(deadline) {
				t.Fatalf("handoff incomplete: moved %d of %d (aborts %d)",
					s.HandoffPagesMoved, onVictim, s.HandoffAborts)
			}
			time.Sleep(10 * time.Millisecond)
		}
		if s := c.Manager().Stats(); s.HandoffAborts != 0 {
			t.Fatalf("unexpected handoff aborts: %+v", s)
		}
		return c.Manager().HandoffSchedule(), placement
	}

	sched1, place1 := run()
	sched2, place2 := run()
	if len(sched1) == 0 {
		t.Fatal("empty handoff schedule")
	}
	if len(place1) != len(place2) {
		t.Fatalf("placement counts differ: %d vs %d", len(place1), len(place2))
	}
	for fd, addr := range place1 {
		if place2[fd] != addr {
			t.Fatalf("same seed, different placement for fd %d: %s vs %s", fd, addr, place2[fd])
		}
	}
	if len(sched1) != len(sched2) {
		t.Fatalf("same seed, different schedule lengths: %d vs %d\n%v\n%v",
			len(sched1), len(sched2), sched1, sched2)
	}
	for i := range sched1 {
		if sched1[i] != sched2[i] {
			t.Fatalf("same seed, schedules diverge at %d:\n  run1: %s\n  run2: %s", i, sched1[i], sched2[i])
		}
	}
}

// TestReclaimDuringBulkRead drives a seeded reclaim/recruit churn plan
// against a host serving large bulk reads. Whatever instant the owner
// returns — including mid-blast — every read that reports success must
// deliver the complete, correct page (served by the draining imd inside
// its grace window, by a handoff peer, or by the hedged disk leg); a
// read may only otherwise fail with ErrNoMem, the fall-back-to-disk
// contract.
func TestReclaimDuringBulkRead(t *testing.T) {
	c, _ := handoffCluster(t, []string{"ws0", "ws1"})
	cli := c.NewClient("app", core.Config{ClientID: 1, RefractionPeriod: 250 * time.Millisecond})
	back := core.NewMemBacking(91, 1<<20)

	const regionLen = 256 << 10
	fd, err := cli.Mopen(regionLen, back, 0)
	if err != nil {
		t.Fatal(err)
	}
	data := make([]byte, regionLen)
	rand.New(rand.NewSource(2026)).Read(data)
	if _, err := cli.Mwrite(fd, 0, data); err != nil {
		t.Fatal(err)
	}

	plan := faults.Plan{
		Seed:          1999,
		Duration:      2500 * time.Millisecond,
		Hosts:         []string{"ws0", "ws1"},
		ReclaimMean:   600 * time.Millisecond,
		ReclaimLength: 250 * time.Millisecond,
	}
	sched := faults.NewScheduler(plan, sim.WallClock{}, c.FaultTarget())
	sched.Start()
	done := make(chan struct{})
	go func() { sched.Wait(); close(done) }()

	buf := make([]byte, regionLen)
	reads, ok := 0, 0
	for alive := true; alive; {
		select {
		case <-done:
			alive = false
		default:
		}
		n, err := cli.Mread(fd, 0, buf)
		reads++
		switch {
		case err == nil:
			if n != regionLen || !bytes.Equal(buf, data) {
				t.Fatalf("read %d: n=%d, correct=%v — a reclaim corrupted an in-flight page",
					reads, n, bytes.Equal(buf, data))
			}
			ok++
		case errors.Is(err, core.ErrNoMem):
			// Region inactive while recovery runs: the app would fall
			// back to the backing file, which Mwrite kept authoritative.
		default:
			t.Fatalf("read %d: unexpected error %v", reads, err)
		}
	}
	if sched.Counts().Reclaims == 0 {
		t.Fatal("plan applied no reclaims; the sweep tested nothing")
	}
	if ok == 0 {
		t.Fatalf("no read completed across %d attempts under reclaim churn", reads)
	}

	// Churn over (every reclaim heals inside the plan): remote service
	// resumes and the bytes are still exact.
	deadline := time.Now().Add(15 * time.Second)
	for {
		n, err := cli.Mread(fd, 0, buf)
		if err == nil && n == regionLen && cli.RegionValid(fd) {
			if !bytes.Equal(buf, data) {
				t.Fatal("post-churn read returned wrong bytes")
			}
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("remote service never resumed: n=%d err=%v", n, err)
		}
		time.Sleep(20 * time.Millisecond)
	}
	t.Logf("reads=%d ok=%d counts=%v client=%+v manager=%+v",
		reads, ok, sched.Counts(), cli.Stats(), c.Manager().Stats())
}
