package cluster

import (
	"bytes"
	"fmt"
	"sync"
	"time"

	"dodo/internal/core"
	"dodo/internal/region"
)

// sweepTrace is a bounded in-memory event log shared by the sweep's
// tracing shims and the core client's logger, so a stale-read failure
// can be diagnosed from the exact traffic that produced it.
type sweepTrace struct {
	mu    sync.Mutex
	start time.Time
	lines []string
}

func newSweepTrace() *sweepTrace { return &sweepTrace{start: time.Now()} }

func (tr *sweepTrace) add(format string, args ...any) {
	tr.mu.Lock()
	defer tr.mu.Unlock()
	line := fmt.Sprintf("%8.3fs ", time.Since(tr.start).Seconds()) + fmt.Sprintf(format, args...)
	tr.lines = append(tr.lines, line)
	if len(tr.lines) > 8000 {
		tr.lines = tr.lines[len(tr.lines)-8000:]
	}
}

// Write lets the core client's *log.Logger feed the same ring.
func (tr *sweepTrace) Write(p []byte) (int, error) {
	tr.add("%s", bytes.TrimRight(p, "\n"))
	return len(p), nil
}

// dump returns every line containing any of the given substrings.
func (tr *sweepTrace) dump(contains ...string) string {
	tr.mu.Lock()
	defer tr.mu.Unlock()
	var b bytes.Buffer
	for _, l := range tr.lines {
		for _, c := range contains {
			if bytes.Contains([]byte(l), []byte(c)) {
				b.WriteString(l)
				b.WriteByte('\n')
				break
			}
		}
	}
	return b.String()
}

// traceDodo interposes on the region cache's view of the runtime,
// logging every call with the block it targets and the version byte of
// the data moved.
type traceDodo struct {
	name  string
	inner region.Dodo
	tr    *sweepTrace

	mu     sync.Mutex
	blocks map[int]int64 // core fd -> block number
}

func newTraceDodo(name string, inner region.Dodo, tr *sweepTrace) *traceDodo {
	return &traceDodo{name: name, inner: inner, tr: tr, blocks: make(map[int]int64)}
}

func (d *traceDodo) block(fd int) int64 {
	d.mu.Lock()
	defer d.mu.Unlock()
	b, ok := d.blocks[fd]
	if !ok {
		return -1
	}
	return b
}

func (d *traceDodo) Mopen(length int64, backing core.Backing, offset int64) (int, error) {
	fd, err := d.inner.Mopen(length, backing, offset)
	d.mu.Lock()
	if err == nil {
		d.blocks[fd] = offset / sweepReqSize
	}
	d.mu.Unlock()
	d.tr.add("%s blk%d Mopen -> fd=%d err=%v", d.name, offset/sweepReqSize, fd, err)
	return fd, err
}

func (d *traceDodo) Mread(fd int, offset int64, buf []byte) (int, error) {
	n, err := d.inner.Mread(fd, offset, buf)
	b0 := byte(0)
	if n > 0 {
		b0 = buf[0]
	}
	d.tr.add("%s blk%d Mread fd=%d off=%d len=%d -> n=%d b0=%02x err=%v",
		d.name, d.block(fd), fd, offset, len(buf), n, b0, err)
	return n, err
}

func (d *traceDodo) Mwrite(fd int, offset int64, buf []byte) (int, error) {
	b0 := byte(0)
	if len(buf) > 0 {
		b0 = buf[0]
	}
	n, err := d.inner.Mwrite(fd, offset, buf)
	d.tr.add("%s blk%d Mwrite fd=%d off=%d len=%d b0=%02x -> n=%d err=%v",
		d.name, d.block(fd), fd, offset, len(buf), b0, n, err)
	return n, err
}

func (d *traceDodo) Mclose(fd int) error {
	err := d.inner.Mclose(fd)
	d.tr.add("%s blk%d Mclose fd=%d err=%v", d.name, d.block(fd), fd, err)
	d.mu.Lock()
	delete(d.blocks, fd)
	d.mu.Unlock()
	return err
}

func (d *traceDodo) Msync(fd int) error {
	err := d.inner.Msync(fd)
	d.tr.add("%s blk%d Msync fd=%d err=%v", d.name, d.block(fd), fd, err)
	return err
}

var _ region.Dodo = (*traceDodo)(nil)
