// Package cluster assembles complete Dodo deployments in one process:
// a central manager, one resource-monitor + idle-memory-daemon pair per
// workstation, and client runtimes, all wired over any transport
// (in-memory for tests and examples, real UDP for live deployments).
//
// It supplies the glue the paper describes in §4.1: the rmd forks the
// imd when its workstation goes idle (with a fresh epoch) and signals it
// to drain when the owner returns.
package cluster

import (
	"log"
	"sync"
	"time"

	"dodo/internal/bulk"
	"dodo/internal/core"
	"dodo/internal/imd"
	"dodo/internal/locks"
	"dodo/internal/manager"
	"dodo/internal/monitor"
	"dodo/internal/transport"
)

// Config assembles a cluster. Workstations are added individually with
// AddWorkstation.
type Config struct {
	// PoolBytes is each imd's memory pool. When zero, the harvest
	// limit must be supplied per-host via the Workstation API.
	PoolBytes uint64
	// Monitor tunes the idleness policy (§4.1 defaults when zero).
	Monitor monitor.Config
	// Endpoint tunes all messaging.
	Endpoint bulk.Config
	// Manager tunes the central manager.
	Manager manager.Config
	// IMD carries per-imd knobs (grace window, status interval, clock)
	// applied at each recruitment; ManagerAddr, PoolSize, Epoch,
	// Endpoint and Logger are filled in by the harness.
	IMD imd.Config
	// Logger receives lifecycle events; nil silences them.
	Logger *log.Logger
}

// Cluster is a running deployment.
type Cluster struct {
	// dodo:unguarded — immutable after construction
	cfg Config
	// dodo:unguarded — immutable after construction
	net *transport.Network

	mu locks.Mutex
	// mgr is the live central manager; nil between a CrashManager and
	// the following RestartManager.
	// dodo:guardedby mu
	mgr *manager.Manager
	// mgrIncarnation numbers manager incarnations, starting at 1 for
	// the one New boots. A real deployment would persist this tiny
	// counter (or derive it from a boot timestamp); the harness plays
	// the role of that stable store.
	// dodo:guardedby mu
	mgrIncarnation uint64
	// dodo:guardedby mu
	workstations []*Workstation
	// dodo:guardedby mu
	clients []*core.Client
	// dodo:guardedby mu
	closed bool
}

// Workstation is one participating desktop machine: a resource monitor
// plus the idle memory daemon it forks while the host is idle.
type Workstation struct {
	// dodo:unguarded — immutable after construction
	Name string

	// dodo:unguarded — immutable after construction
	cluster *Cluster
	// dodo:unguarded — immutable after construction
	mon *monitor.Monitor

	mu locks.Mutex
	// dodo:guardedby mu
	imd *imd.Daemon
	// dodo:guardedby mu
	epoch uint64
	// dodo:guardedby mu
	pool uint64
	// drainWG tracks a predecessor imd still spending its drain grace
	// window; the next recruitment waits for its teardown (as the rmd
	// waits for the old imd process to exit) before re-forking on the
	// same address.
	// dodo:unguarded — WaitGroup is internally synchronized
	drainWG sync.WaitGroup
}

// New builds a cluster over a fresh in-memory network. The manager
// listens at address "cmd".
func New(cfg Config) *Cluster {
	net := transport.NewNetwork(transport.WithMTU(1500))
	c := &Cluster{
		cfg:            cfg,
		net:            net,
		mgrIncarnation: 1,
	}
	c.mu.SetRank(locks.RankCluster)
	c.mgr = manager.New(net.Host("cmd"), c.managerConfig(1))
	return c
}

// managerConfig derives one incarnation's manager configuration.
func (c *Cluster) managerConfig(incarnation uint64) manager.Config {
	mgrCfg := c.cfg.Manager
	mgrCfg.Endpoint = c.cfg.Endpoint
	mgrCfg.Incarnation = incarnation
	if mgrCfg.Logger == nil {
		mgrCfg.Logger = c.cfg.Logger
	}
	return mgrCfg
}

// Network exposes the fabric (for partition/heal fault injection).
func (c *Cluster) Network() *transport.Network { return c.net }

// Manager exposes the central manager; nil while it is crashed.
func (c *Cluster) Manager() *manager.Manager {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.mgr
}

// ManagerIncarnation reports the incarnation of the most recently
// started manager.
func (c *Cluster) ManagerIncarnation() uint64 {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.mgrIncarnation
}

// CrashManager kills the central manager outright: the process dies
// and its in-memory directory dies with it (contrast a blackout, which
// only partitions a surviving process). No-op while already crashed.
func (c *Cluster) CrashManager() {
	c.mu.Lock()
	m := c.mgr
	c.mgr = nil
	c.mu.Unlock()
	if m != nil {
		_ = m.Close()
	}
}

// RestartManager boots a fresh manager at the same address under the
// next incarnation. Its directory starts empty and rebuilds as soft
// state from imd inventory re-reports; clients revalidate against it
// via the incarnation stamped on every response. No-op while a manager
// is already running.
func (c *Cluster) RestartManager() {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.mgr != nil || c.closed {
		return
	}
	c.mgrIncarnation++
	c.mgr = manager.New(c.net.Host(c.ManagerAddr()), c.managerConfig(c.mgrIncarnation))
}

// ManagerAddr returns the manager's address on the fabric.
func (c *Cluster) ManagerAddr() string { return "cmd" }

// AddWorkstation registers a workstation with the given activity source
// driving its monitor. The workstation starts busy; the monitor's
// Run/Step drives recruiting.
func (c *Cluster) AddWorkstation(name string, src monitor.Source) *Workstation {
	w := &Workstation{Name: name, cluster: c, pool: c.cfg.PoolBytes}
	w.mu.SetRank(locks.RankWorkstation)
	monCfg := c.cfg.Monitor
	w.mon = monitor.New(src, monCfg, monitor.Hooks{
		OnRecruit: func(now time.Time) { w.recruit() },
		OnReclaim: func(now time.Time) { w.reclaim() },
	})
	c.mu.Lock()
	c.workstations = append(c.workstations, w)
	c.mu.Unlock()
	return w
}

// Monitor exposes the workstation's rmd state machine.
func (w *Workstation) Monitor() *monitor.Monitor { return w.mon }

// SetPool overrides the pool size used at the next recruitment (the
// harvest limit of §3.1, computed from the host's memory sample).
func (w *Workstation) SetPool(bytes uint64) {
	w.mu.Lock()
	defer w.mu.Unlock()
	w.pool = bytes
}

// IMD returns the live idle-memory daemon, if the host is recruited.
func (w *Workstation) IMD() *imd.Daemon {
	w.mu.Lock()
	defer w.mu.Unlock()
	return w.imd
}

// recruit forks the imd (rmd behavior on busy->idle, §4.1): new epoch,
// fresh pool, registration with the manager.
func (w *Workstation) recruit() {
	w.mu.Lock()
	if w.imd != nil {
		w.mu.Unlock()
		return
	}
	w.mu.Unlock()
	// A draining predecessor still owns the imd address for its grace
	// window; wait for its teardown before forking the next incarnation.
	w.drainWG.Wait()
	w.mu.Lock()
	defer w.mu.Unlock()
	if w.imd != nil {
		return
	}
	w.epoch++
	imdCfg := w.cluster.cfg.IMD
	imdCfg.ManagerAddr = w.cluster.ManagerAddr()
	imdCfg.PoolSize = w.pool
	imdCfg.Epoch = w.epoch
	imdCfg.Endpoint = w.cluster.cfg.Endpoint
	if imdCfg.Logger == nil {
		imdCfg.Logger = w.cluster.cfg.Logger
	}
	w.imd = imd.New(w.cluster.net.Host(w.IMDAddr()), imdCfg)
}

// reclaim signals the imd to drain and exit (rmd behavior on
// idle->busy, §4.1). The drain runs in the background: the owner gets
// the machine back immediately while the imd spends its grace window
// serving reads and handing pages off to peers.
func (w *Workstation) reclaim() {
	w.mu.Lock()
	d := w.imd
	w.imd = nil
	if d != nil {
		w.drainWG.Add(1)
	}
	w.mu.Unlock()
	if d != nil {
		go func() {
			defer w.drainWG.Done()
			d.Drain()
		}()
	}
}

// Step advances the workstation's monitor by one sample at now.
func (w *Workstation) Step(now time.Time) monitor.State { return w.mon.Step(now) }

// NewClient attaches a client runtime at the given address.
func (c *Cluster) NewClient(addr string, cfg core.Config) *core.Client {
	cfg.ManagerAddr = c.ManagerAddr()
	cfg.Endpoint = c.cfg.Endpoint
	if cfg.Logger == nil {
		cfg.Logger = c.cfg.Logger
	}
	cli := core.New(c.net.Host(addr), cfg)
	c.mu.Lock()
	c.clients = append(c.clients, cli)
	c.mu.Unlock()
	return cli
}

// Close tears the whole deployment down.
func (c *Cluster) Close() error {
	c.mu.Lock()
	if c.closed {
		c.mu.Unlock()
		return nil
	}
	c.closed = true
	ws := append([]*Workstation(nil), c.workstations...)
	clients := append([]*core.Client(nil), c.clients...)
	mgr := c.mgr
	c.mgr = nil
	c.mu.Unlock()
	var first error
	for _, cli := range clients {
		if err := cli.Close(); err != nil && first == nil {
			first = err
		}
	}
	for _, w := range ws {
		w.mu.Lock()
		d := w.imd
		w.imd = nil
		w.mu.Unlock()
		if d != nil {
			if err := d.Close(); err != nil && first == nil {
				first = err
			}
		}
		// A drain still in its grace window tears itself down; join it
		// so Close leaves no daemon behind.
		w.drainWG.Wait()
	}
	if mgr != nil {
		if err := mgr.Close(); err != nil && first == nil {
			first = err
		}
	}
	return first
}

// AlwaysIdle is a monitor source describing a dedicated (Beowulf-style)
// node: no console, no load — the §3 "dedicated cluster" case where
// machines are recruited whenever lightly loaded.
func AlwaysIdle() monitor.Source {
	return monitor.SourceFunc(func(now time.Time) monitor.Sample {
		return monitor.Sample{Time: now, ConsoleActive: false, Load: 0}
	})
}

// Scripted returns a source that reports console activity exactly at
// the given instants (second granularity from start).
func Scripted(start time.Time, activeSeconds map[int]bool) monitor.Source {
	return monitor.SourceFunc(func(now time.Time) monitor.Sample {
		sec := int(now.Sub(start) / time.Second)
		return monitor.Sample{Time: now, ConsoleActive: activeSeconds[sec]}
	})
}
