package cluster

import (
	"testing"

	"dodo/internal/simnet"
)

// TestSweepNoLinkFaults runs the seeded sweep with only host-level
// churn (crashes, blackouts, reclaims): link faults and call-path
// degradation are disabled. Isolates recovery-path correctness from
// packet loss/duplication/reordering.
func TestSweepNoLinkFaults(t *testing.T) {
	c, _, names := sweepCluster(t)
	plan := sweepPlan(names)
	plan.DegradeMean = 0
	plan.Link = simnet.Faults{}
	runSweepCore(t, c, plan)
}

// TestSweepLinksOnly runs the seeded sweep with only link faults and
// degradation windows: no host ever crashes, blacks out or reclaims.
// Isolates protocol robustness (retries, dedup, write ordering) from
// host churn.
func TestSweepLinksOnly(t *testing.T) {
	c, _, names := sweepCluster(t)
	plan := sweepPlan(names)
	plan.CrashMean = 0
	plan.BlackoutMean = 0
	plan.ReclaimMean = 0
	runSweepCore(t, c, plan)
}
