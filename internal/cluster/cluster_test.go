package cluster

import (
	"bytes"
	"errors"
	"fmt"
	"testing"
	"time"

	"dodo/internal/bulk"
	"dodo/internal/core"
	"dodo/internal/manager"
	"dodo/internal/monitor"
	"dodo/internal/trace"
)

var t0 = time.Date(1999, 8, 2, 10, 0, 0, 0, time.UTC)

func fastEp() bulk.Config {
	return bulk.Config{
		CallTimeout:   150 * time.Millisecond,
		CallRetries:   4,
		WindowTimeout: 80 * time.Millisecond,
		NackDelay:     30 * time.Millisecond,
	}
}

func fastCluster(t *testing.T, hosts int) *Cluster {
	t.Helper()
	c := New(Config{
		PoolBytes: 1 << 20,
		Monitor:   monitor.Config{IdleAfter: 2 * time.Second},
		Endpoint:  fastEp(),
		Manager: manager.Config{
			KeepAliveInterval: 200 * time.Millisecond,
			KeepAliveMisses:   3,
		},
	})
	t.Cleanup(func() { c.Close() })
	return c
}

// driveIdle steps a workstation's monitor past the idle threshold.
func driveIdle(w *Workstation, seconds int) {
	for i := 0; i <= seconds; i++ {
		w.Step(t0.Add(time.Duration(i) * time.Second))
	}
}

func TestRecruitmentLifecycle(t *testing.T) {
	c := fastCluster(t, 1)
	w := c.AddWorkstation("ws1", AlwaysIdle())
	if w.IMD() != nil {
		t.Fatal("imd running before recruitment")
	}
	driveIdle(w, 3)
	if w.Monitor().State() != monitor.StateIdle {
		t.Fatal("workstation not idle after quiet period")
	}
	if w.IMD() == nil {
		t.Fatal("recruitment did not fork an imd")
	}
	// Manager learns about the host.
	deadline := time.Now().Add(2 * time.Second)
	for time.Now().Before(deadline) {
		if c.Manager().Stats().IdleHosts == 1 {
			return
		}
		time.Sleep(10 * time.Millisecond)
	}
	t.Fatal("manager never saw the recruited host")
}

func TestReclaimKillsIMDAndInformsManager(t *testing.T) {
	c := fastCluster(t, 1)
	active := map[int]bool{10: true}
	w := c.AddWorkstation("ws1", Scripted(t0, active))
	driveIdle(w, 9) // idle by t=2s+, recruited
	if w.IMD() == nil {
		t.Fatal("precondition: imd should be up")
	}
	w.Step(t0.Add(10 * time.Second)) // owner returns
	if w.IMD() != nil {
		t.Fatal("reclaim left the imd running")
	}
	deadline := time.Now().Add(2 * time.Second)
	for time.Now().Before(deadline) {
		if c.Manager().Stats().IdleHosts == 0 {
			return
		}
		time.Sleep(10 * time.Millisecond)
	}
	t.Fatal("manager still lists the reclaimed host as idle")
}

func TestEpochAdvancesAcrossIncarnations(t *testing.T) {
	c := fastCluster(t, 1)
	active := map[int]bool{5: true}
	w := c.AddWorkstation("ws1", Scripted(t0, active))
	driveIdle(w, 4)
	first := w.IMD()
	if first == nil {
		t.Fatal("no imd after first idle period")
	}
	e1 := first.Epoch()
	w.Step(t0.Add(5 * time.Second)) // reclaim
	// Idle again: second incarnation.
	for i := 6; i <= 9; i++ {
		w.Step(t0.Add(time.Duration(i) * time.Second))
	}
	second := w.IMD()
	if second == nil {
		t.Fatal("no imd after second idle period")
	}
	if second.Epoch() <= e1 {
		t.Fatalf("epoch did not advance: %d then %d", e1, second.Epoch())
	}
}

func TestEndToEndApplicationOverLiveCluster(t *testing.T) {
	c := fastCluster(t, 3)
	for _, name := range []string{"ws1", "ws2", "ws3"} {
		w := c.AddWorkstation(name, AlwaysIdle())
		driveIdle(w, 3)
	}
	// Wait for the manager to see all three hosts.
	deadline := time.Now().Add(3 * time.Second)
	for time.Now().Before(deadline) && c.Manager().Stats().IdleHosts < 3 {
		time.Sleep(10 * time.Millisecond)
	}
	if got := c.Manager().Stats().IdleHosts; got != 3 {
		t.Fatalf("idle hosts = %d, want 3", got)
	}

	cli := c.NewClient("app", core.Config{ClientID: 1})
	back := core.NewMemBacking(42, 1<<20)
	data := bytes.Repeat([]byte("cluster"), 4096/7+1)[:4096]

	var fds []int
	for i := 0; i < 6; i++ {
		fd, err := cli.Mopen(4096, back, int64(i)*4096)
		if err != nil {
			t.Fatalf("Mopen %d: %v", i, err)
		}
		if _, err := cli.Mwrite(fd, 0, data); err != nil {
			t.Fatalf("Mwrite %d: %v", i, err)
		}
		fds = append(fds, fd)
	}
	for i, fd := range fds {
		got := make([]byte, 4096)
		n, err := cli.Mread(fd, 0, got)
		if err != nil || n != 4096 || !bytes.Equal(got, data) {
			t.Fatalf("Mread %d = %d, %v", i, n, err)
		}
	}
	// Regions actually spread across the hosts' imds.
	total := 0
	for _, w := range c.workstations {
		if d := w.IMD(); d != nil {
			total += d.Stats().Regions
		}
	}
	if total != 6 {
		t.Fatalf("regions across imds = %d, want 6", total)
	}
}

func TestReclaimInvalidatesClientRegions(t *testing.T) {
	c := fastCluster(t, 1)
	active := map[int]bool{60: true}
	w := c.AddWorkstation("ws1", Scripted(t0, active))
	driveIdle(w, 4)
	deadline := time.Now().Add(2 * time.Second)
	for time.Now().Before(deadline) && c.Manager().Stats().IdleHosts < 1 {
		time.Sleep(10 * time.Millisecond)
	}

	cli := c.NewClient("app", core.Config{ClientID: 1})
	back := core.NewMemBacking(7, 1<<20)
	fd, err := cli.Mopen(4096, back, 0)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := cli.Mwrite(fd, 0, bytes.Repeat([]byte{1}, 4096)); err != nil {
		t.Fatal(err)
	}
	// Owner returns; the imd drains in the background. With no peer to
	// hand its pages to, the drain ends with the region gone: reads may
	// still be served during the grace window, but must then fail with
	// ErrNoMem so the app falls back to its backing file.
	w.Step(t0.Add(60 * time.Second))
	buf := make([]byte, 4096)
	deadline = time.Now().Add(5 * time.Second)
	for {
		_, err := cli.Mread(fd, 0, buf)
		if errors.Is(err, core.ErrNoMem) {
			break
		}
		if err != nil {
			t.Fatalf("Mread after reclaim = %v, want ErrNoMem", err)
		}
		if time.Now().After(deadline) {
			t.Fatal("Mread kept succeeding long after the drain grace window")
		}
		time.Sleep(10 * time.Millisecond)
	}
	if cli.RegionValid(fd) {
		t.Fatal("descriptor still valid after host reclaim")
	}
	// Data still intact on disk.
	if !bytes.Equal(back.Bytes()[:4096], bytes.Repeat([]byte{1}, 4096)) {
		t.Fatal("backing lost the written data")
	}
}

func TestClusterCloseIdempotent(t *testing.T) {
	c := fastCluster(t, 1)
	w := c.AddWorkstation("ws1", AlwaysIdle())
	driveIdle(w, 3)
	if err := c.Close(); err != nil {
		t.Fatal(err)
	}
	if err := c.Close(); err != nil {
		t.Fatal(err)
	}
}

// TestTraceDrivenChurn drives workstations with the calibrated §2
// traces at simulated-minute granularity: hosts are recruited and
// reclaimed as their synthetic owners come and go, and the manager's
// view tracks the monitors'.
func TestTraceDrivenChurn(t *testing.T) {
	c := New(Config{
		PoolBytes: 1 << 20,
		// One trace minute per sample; 5 samples of quiet = recruit.
		Monitor:  monitor.Config{IdleAfter: 5 * time.Minute, SampleInterval: time.Minute},
		Endpoint: fastEp(),
		Manager:  manager.Config{KeepAliveInterval: time.Hour, Endpoint: fastEp()},
	})
	t.Cleanup(func() { c.Close() })

	// Busy-heavy profile so churn happens within a simulated day.
	profile := trace.ActivityProfile{MeanBusy: 30 * time.Minute, MeanIdle: 90 * time.Minute, WorkBias: 1}
	var stations []*Workstation
	for i := 0; i < 4; i++ {
		h := trace.NewHost(trace.Class128MB, profile, int64(i)*37+1)
		stations = append(stations, c.AddWorkstation(fmt.Sprintf("tw%d", i), trace.NewMonitorSource(h)))
	}
	start := time.Date(1999, 8, 2, 0, 0, 0, 0, time.UTC)
	transitions := 0
	for m := 0; m < 24*60; m++ { // one simulated day
		now := start.Add(time.Duration(m) * time.Minute)
		for _, w := range stations {
			w.Step(now)
		}
	}
	recruitedNow := 0
	for _, w := range stations {
		transitions += w.Monitor().Transitions()
		if w.IMD() != nil {
			recruitedNow++
			if w.Monitor().State() != monitor.StateIdle {
				t.Fatal("imd running on a busy host")
			}
		} else if w.Monitor().State() == monitor.StateIdle {
			t.Fatal("idle host without an imd")
		}
	}
	if transitions < 8 {
		t.Fatalf("only %d recruit/reclaim transitions in a simulated day; churn too low", transitions)
	}
	// Manager eventually agrees with the monitors' current view.
	deadline := time.Now().Add(3 * time.Second)
	for time.Now().Before(deadline) && c.Manager().Stats().IdleHosts != recruitedNow {
		time.Sleep(10 * time.Millisecond)
	}
	if got := c.Manager().Stats().IdleHosts; got != recruitedNow {
		t.Fatalf("manager sees %d idle hosts, monitors say %d", got, recruitedNow)
	}
}
