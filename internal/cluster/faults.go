package cluster

import (
	"fmt"

	"dodo/internal/faults"
	"dodo/internal/simnet"
)

// Fault-injection surface: the lifecycle transitions a faults.Scheduler
// needs, exported on Workstation and adapted from Cluster. Each is
// idempotent, so overlapping fault windows in a schedule degrade to
// no-ops instead of corrupting the deployment.

// IMDAddr returns the fabric address the workstation's imd occupies
// while recruited (stable across restarts).
func (w *Workstation) IMDAddr() string { return fmt.Sprintf("imd-%s", w.Name) }

// Crash kills the workstation's imd without the polite drain — the
// §3.1 workstation-crash case. No-op while the host is not recruited.
func (w *Workstation) Crash() {
	w.mu.Lock()
	d := w.imd
	w.imd = nil
	w.mu.Unlock()
	if d != nil {
		d.Crash()
	}
}

// Recruit forks the imd as the rmd does on busy->idle (§4.1), with a
// bumped epoch. No-op while the host is already recruited.
func (w *Workstation) Recruit() { w.recruit() }

// Reclaim drains the imd as the rmd does on idle->busy (§4.1). No-op
// while the host is not recruited.
func (w *Workstation) Reclaim() { w.reclaim() }

// workstation looks a workstation up by name.
func (c *Cluster) workstation(name string) *Workstation {
	c.mu.Lock()
	defer c.mu.Unlock()
	for _, w := range c.workstations {
		if w.Name == name {
			return w
		}
	}
	return nil
}

// FaultTarget adapts the cluster to the fault scheduler: host names in
// the schedule are workstation names; link degradation applies to the
// host's imd address on the fabric.
func (c *Cluster) FaultTarget() faults.Target { return faultTarget{c} }

type faultTarget struct{ c *Cluster }

func (t faultTarget) CrashIMD(host string) {
	if w := t.c.workstation(host); w != nil {
		w.Crash()
	}
}

func (t faultTarget) RestartIMD(host string) {
	if w := t.c.workstation(host); w != nil {
		w.Recruit()
	}
}

func (t faultTarget) BlackoutManager() { t.c.net.Partition(t.c.ManagerAddr()) }

func (t faultTarget) RestoreManager() { t.c.net.Heal(t.c.ManagerAddr()) }

func (t faultTarget) ReclaimHost(host string) {
	if w := t.c.workstation(host); w != nil {
		w.Reclaim()
	}
}

func (t faultTarget) RecruitHost(host string) {
	if w := t.c.workstation(host); w != nil {
		w.Recruit()
	}
}

func (t faultTarget) DegradeLinks(host string, f simnet.Faults) {
	if w := t.c.workstation(host); w != nil {
		t.c.net.SetEndpointFaults(w.IMDAddr(), f)
	}
}

func (t faultTarget) RestoreLinks(host string) {
	if w := t.c.workstation(host); w != nil {
		t.c.net.ClearEndpointFaults(w.IMDAddr())
	}
}

func (t faultTarget) CrashManager() { t.c.CrashManager() }

func (t faultTarget) RestartManager() { t.c.RestartManager() }
