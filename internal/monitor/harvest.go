package monitor

// MemSample is one observation of the host's memory usage, in bytes,
// broken down the way the paper's inquiry-program suite reports it
// (§2, §3.1: kernel, file cache, process virtual memory, free list).
type MemSample struct {
	Total     uint64
	Kernel    uint64
	FileCache uint64
	Process   uint64
	// LotsFree is the paging free list the kernel insists on keeping
	// (Solaris lotsfree; Linux min free pages).
	LotsFree uint64
}

// InUse returns the memory committed to the owner's work.
func (m MemSample) InUse() uint64 { return m.Kernel + m.FileCache + m.Process }

// Available returns total minus in-use (the §2 definition used for
// Table 1's "available memory" column).
func (m MemSample) Available() uint64 {
	used := m.InUse()
	if used > m.Total {
		return 0
	}
	return m.Total - used
}

// DefaultHeadroomFraction is the paper's file-cache headroom: 15% of
// total memory is usually enough to hold the live files in the file
// cache ([2] via §3.1).
const DefaultHeadroomFraction = 0.15

// HarvestLimit computes the maximum pool the idle memory daemon may
// allocate on this host (§3.1): everything beyond the memory in use,
// the paging free list, and a headroom of headroomFrac of total memory
// reserved for files likely to be opened soon. headroomFrac < 0 selects
// the default 15%.
func HarvestLimit(m MemSample, headroomFrac float64) uint64 {
	if headroomFrac < 0 {
		headroomFrac = DefaultHeadroomFraction
	}
	reserved := m.InUse() + m.LotsFree + uint64(headroomFrac*float64(m.Total))
	if reserved >= m.Total {
		return 0
	}
	return m.Total - reserved
}
