package monitor

import (
	"fmt"
	"os"
	"strconv"
	"strings"
	"time"
)

// SystemSource samples a live Linux host the way the paper's rmd does:
// load from /proc (the paper reads /proc/uptime-adjacent state and the
// w command's load), console activity from the access times of input
// device files (§4.1: "it uses the stat system call to monitor the
// access times for the corresponding device files").
//
// Every probe is best-effort: a missing file yields a conservative
// (busy-looking) sample rather than an error, because a monitor that
// dies leaves the host unprotected.
type SystemSource struct {
	// LoadPath is the loadavg file (default /proc/loadavg).
	LoadPath string
	// DevicePaths are the input device files to stat
	// (default /dev/console; deployments add /dev/input/*).
	DevicePaths []string
	// ExcludedLoad is a static estimate of screen-saver + imd load to
	// subtract, standing in for the paper's per-process accounting.
	ExcludedLoad float64

	lastDevTimes map[string]time.Time
}

// NewSystemSource builds a source with the standard probe paths.
func NewSystemSource() *SystemSource {
	return &SystemSource{
		LoadPath:     "/proc/loadavg",
		DevicePaths:  []string{"/dev/console", "/dev/tty0", "/dev/psaux"},
		lastDevTimes: make(map[string]time.Time),
	}
}

// Sample probes the host.
func (s *SystemSource) Sample(now time.Time) Sample {
	if s.lastDevTimes == nil {
		s.lastDevTimes = make(map[string]time.Time)
	}
	load, err := ReadLoadAvg(s.LoadPath)
	if err != nil {
		// Unreadable load: assume busy.
		load = 1.0
	}
	active := false
	for _, dev := range s.DevicePaths {
		fi, err := os.Stat(dev)
		if err != nil {
			continue
		}
		at := fi.ModTime()
		if prev, ok := s.lastDevTimes[dev]; ok && at.After(prev) {
			active = true
		}
		s.lastDevTimes[dev] = at
	}
	return Sample{Time: now, ConsoleActive: active, Load: load, ExcludedLoad: s.ExcludedLoad}
}

// ReadLoadAvg parses the 1-minute load average from a loadavg-format
// file ("0.25 0.30 0.28 1/234 5678").
func ReadLoadAvg(path string) (float64, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return 0, fmt.Errorf("monitor: reading %s: %w", path, err)
	}
	fields := strings.Fields(string(data))
	if len(fields) == 0 {
		return 0, fmt.Errorf("monitor: %s is empty", path)
	}
	load, err := strconv.ParseFloat(fields[0], 64)
	if err != nil {
		return 0, fmt.Errorf("monitor: parsing load from %s: %w", path, err)
	}
	return load, nil
}
