package monitor

import (
	"os"
	"path/filepath"
	"sync/atomic"
	"testing"
	"testing/quick"
	"time"

	"dodo/internal/sim"
)

var t0 = time.Date(1999, 8, 2, 10, 0, 0, 0, time.UTC) // a Monday, 10:00

// scriptedSource returns quiet samples except at the listed active
// instants (second granularity from t0).
func scriptedSource(activeSeconds map[int]bool, load float64) Source {
	return SourceFunc(func(now time.Time) Sample {
		sec := int(now.Sub(t0) / time.Second)
		return Sample{ConsoleActive: activeSeconds[sec], Load: load}
	})
}

// drive steps the monitor once per second for n seconds.
func drive(m *Monitor, n int) {
	for i := 0; i <= n; i++ {
		m.Step(t0.Add(time.Duration(i) * time.Second))
	}
}

func TestStartsBusy(t *testing.T) {
	m := New(scriptedSource(nil, 0), Config{}, Hooks{})
	if m.State() != StateBusy {
		t.Fatal("monitor must start busy")
	}
}

func TestRecruitsAfterFiveQuietMinutes(t *testing.T) {
	var recruitedAt time.Time
	m := New(scriptedSource(nil, 0.1), Config{}, Hooks{
		OnRecruit: func(now time.Time) { recruitedAt = now },
	})
	drive(m, 299)
	if m.State() != StateBusy {
		t.Fatal("recruited before 5 minutes of quiet")
	}
	drive(m, 301)
	if m.State() != StateIdle {
		t.Fatal("not recruited after 5+ minutes of quiet")
	}
	if want := t0.Add(300 * time.Second); !recruitedAt.Equal(want) {
		t.Fatalf("recruited at %v, want %v", recruitedAt, want)
	}
}

func TestConsoleActivityResetsIdleClock(t *testing.T) {
	m := New(scriptedSource(map[int]bool{200: true}, 0.1), Config{}, Hooks{})
	drive(m, 400) // quiet except second 200
	if m.State() != StateIdle {
		// 400-200 = 200s < 300s: must still be busy
	} else {
		t.Fatal("activity at t=200 did not reset the idle clock")
	}
	drive(m, 501) // 501-200 > 300
	if m.State() != StateIdle {
		t.Fatal("not recruited once 5 quiet minutes accumulated after activity")
	}
}

func TestHighLoadPreventsRecruiting(t *testing.T) {
	m := New(scriptedSource(nil, 0.5), Config{}, Hooks{})
	drive(m, 600)
	if m.State() != StateBusy {
		t.Fatal("recruited a host with load 0.5 >= 0.3")
	}
}

func TestExcludedLoadDoesNotPreventRecruiting(t *testing.T) {
	// Screen saver + imd load is subtracted (§4.1).
	src := SourceFunc(func(now time.Time) Sample {
		return Sample{Load: 0.9, ExcludedLoad: 0.75}
	})
	m := New(src, Config{}, Hooks{})
	drive(m, 301)
	if m.State() != StateIdle {
		t.Fatal("excluded load was not subtracted from the idle predicate")
	}
}

func TestReclaimIsImmediate(t *testing.T) {
	var reclaimedAt time.Time
	active := map[int]bool{400: true}
	m := New(scriptedSource(active, 0.0), Config{}, Hooks{
		OnReclaim: func(now time.Time) { reclaimedAt = now },
	})
	drive(m, 399)
	if m.State() != StateIdle {
		t.Fatal("precondition: host should be idle at t=399")
	}
	m.Step(t0.Add(400 * time.Second))
	if m.State() != StateBusy {
		t.Fatal("activity did not reclaim the host immediately")
	}
	if want := t0.Add(400 * time.Second); !reclaimedAt.Equal(want) {
		t.Fatalf("reclaimed at %v, want %v (same second as activity)", reclaimedAt, want)
	}
}

func TestTransitionsCount(t *testing.T) {
	active := map[int]bool{400: true}
	m := New(scriptedSource(active, 0), Config{}, Hooks{})
	drive(m, 800)
	// busy->idle at 300, idle->busy at 400, busy->idle at ~701.
	if got := m.Transitions(); got != 3 {
		t.Fatalf("Transitions = %d, want 3", got)
	}
}

func TestCustomConfig(t *testing.T) {
	cfg := Config{IdleAfter: 10 * time.Second, LoadThreshold: 0.5, SampleInterval: time.Second}
	m := New(scriptedSource(nil, 0.4), cfg, Hooks{}) // 0.4 < 0.5: quiet
	drive(m, 11)
	if m.State() != StateIdle {
		t.Fatal("custom IdleAfter/LoadThreshold not honored")
	}
}

func TestNeverRuleBlocksRecruiting(t *testing.T) {
	cfg := Config{Rules: RuleSet{Never{}}}
	m := New(scriptedSource(nil, 0), cfg, Hooks{})
	drive(m, 1000)
	if m.State() != StateBusy {
		t.Fatal("Never rule did not block recruiting")
	}
}

func TestOutsideHoursRule(t *testing.T) {
	r := OutsideHours{StartHour: 9, EndHour: 17, Days: Weekdays}
	monday10 := time.Date(1999, 8, 2, 10, 0, 0, 0, time.UTC)
	monday18 := time.Date(1999, 8, 2, 18, 0, 0, 0, time.UTC)
	saturday10 := time.Date(1999, 8, 7, 10, 0, 0, 0, time.UTC)
	if r.Permit(monday10) {
		t.Error("permitted during protected weekday hours")
	}
	if !r.Permit(monday18) {
		t.Error("denied outside protected hours")
	}
	if !r.Permit(saturday10) {
		t.Error("denied on an unprotected day")
	}
}

func TestOutsideHoursRuleReclaimsAtWindowStart(t *testing.T) {
	// Host idle overnight gets reclaimed when the protected window opens.
	cfg := Config{Rules: RuleSet{OutsideHours{StartHour: 11, EndHour: 17, Days: Weekdays}}}
	m := New(scriptedSource(nil, 0), cfg, Hooks{})
	drive(m, 310) // 10:00-10:05: recruited
	if m.State() != StateIdle {
		t.Fatal("precondition: idle before window")
	}
	m.Step(time.Date(1999, 8, 2, 11, 0, 0, 0, time.UTC))
	if m.State() != StateBusy {
		t.Fatal("rule window opening did not reclaim the host")
	}
}

func TestRuleSetConjunction(t *testing.T) {
	rs := RuleSet{OutsideHours{StartHour: 9, EndHour: 17, Days: Weekdays}, Never{}}
	if rs.Permit(time.Date(1999, 8, 7, 3, 0, 0, 0, time.UTC)) {
		t.Fatal("conjunction with Never still permitted")
	}
	if RuleSet(nil).String() != "always" {
		t.Errorf("empty RuleSet String = %q", RuleSet(nil).String())
	}
	if rs.String() == "" {
		t.Error("RuleSet String empty")
	}
}

func TestAfterQuietPeriodRule(t *testing.T) {
	base := t0
	r := AfterQuietPeriod{Since: func() time.Time { return base }, Quiet: time.Hour}
	if r.Permit(base.Add(30 * time.Minute)) {
		t.Error("permitted before quiet period elapsed")
	}
	if !r.Permit(base.Add(2 * time.Hour)) {
		t.Error("denied after quiet period elapsed")
	}
	if !(AfterQuietPeriod{Quiet: time.Hour}).Permit(base) {
		t.Error("nil Since must permit")
	}
}

func TestRunOnVirtualClock(t *testing.T) {
	clock := sim.NewVirtualClock(t0)
	var recruits atomic.Int32
	m := New(scriptedSource(nil, 0), Config{}, Hooks{
		OnRecruit: func(time.Time) { recruits.Add(1) },
	})
	stop := make(chan struct{})
	done := make(chan struct{})
	go func() {
		defer close(done)
		// The virtual clock's Sleep advances time, so Run self-drives.
		m.Run(clock, stop)
	}()
	deadline := time.Now().Add(5 * time.Second)
	for recruits.Load() == 0 && time.Now().Before(deadline) {
		time.Sleep(time.Millisecond)
	}
	close(stop)
	<-done
	if got := recruits.Load(); got != 1 {
		t.Fatalf("recruits = %d, want 1", got)
	}
}

func TestHarvestLimitMatchesPaperFormula(t *testing.T) {
	// 128 MB host: 25 MB in use, 2 MB lotsfree, 15% headroom (19.2 MB)
	// -> harvest = 128 - 25 - 2 - 19.2 = 81.8 MB.
	mb := uint64(1 << 20)
	m := MemSample{Total: 128 * mb, Kernel: 15 * mb, FileCache: 5 * mb, Process: 5 * mb, LotsFree: 2 * mb}
	got := HarvestLimit(m, -1)
	want := 128*mb - 25*mb - 2*mb - uint64(0.15*float64(128*mb))
	if got != want {
		t.Fatalf("HarvestLimit = %d, want %d", got, want)
	}
}

func TestHarvestLimitZeroWhenBusyHost(t *testing.T) {
	m := MemSample{Total: 64 << 20, Kernel: 20 << 20, FileCache: 20 << 20, Process: 30 << 20}
	if got := HarvestLimit(m, -1); got != 0 {
		t.Fatalf("HarvestLimit on overcommitted host = %d, want 0", got)
	}
}

func TestMemSampleAccessors(t *testing.T) {
	m := MemSample{Total: 100, Kernel: 10, FileCache: 20, Process: 30}
	if m.InUse() != 60 || m.Available() != 40 {
		t.Fatalf("InUse/Available = %d/%d, want 60/40", m.InUse(), m.Available())
	}
	over := MemSample{Total: 10, Kernel: 20}
	if over.Available() != 0 {
		t.Fatal("Available must clamp at 0")
	}
}

// Property: harvest limit never exceeds available memory and never goes
// negative, for any memory sample and headroom in [0,1].
func TestPropertyHarvestLimitBounded(t *testing.T) {
	f := func(total, kernel, fc, proc, lots uint32, headroomPct uint8) bool {
		m := MemSample{
			Total:     uint64(total),
			Kernel:    uint64(kernel),
			FileCache: uint64(fc),
			Process:   uint64(proc),
			LotsFree:  uint64(lots),
		}
		frac := float64(headroomPct%101) / 100
		limit := HarvestLimit(m, frac)
		return limit <= m.Available()
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

// Property: the monitor never recruits while any sample within the last
// IdleAfter window was active.
func TestPropertyNoRecruitWithinWindowOfActivity(t *testing.T) {
	f := func(seed int64, activity []bool) bool {
		active := map[int]bool{}
		for i, a := range activity {
			if a {
				active[i] = true
			}
		}
		cfg := Config{IdleAfter: 30 * time.Second}
		m := New(scriptedSource(active, 0), cfg, Hooks{})
		lastActive := 0
		for i := 0; i <= len(activity); i++ {
			st := m.Step(t0.Add(time.Duration(i) * time.Second))
			if active[i] {
				lastActive = i
			}
			if st == StateIdle && i-lastActive < 30 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestReadLoadAvg(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "loadavg")
	if err := os.WriteFile(path, []byte("0.25 0.30 0.28 1/234 5678\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	load, err := ReadLoadAvg(path)
	if err != nil || load != 0.25 {
		t.Fatalf("ReadLoadAvg = %v, %v; want 0.25", load, err)
	}
	if _, err := ReadLoadAvg(filepath.Join(dir, "missing")); err == nil {
		t.Fatal("ReadLoadAvg of missing file succeeded")
	}
	if err := os.WriteFile(path, []byte("garbage"), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := ReadLoadAvg(path); err == nil {
		t.Fatal("ReadLoadAvg of garbage succeeded")
	}
	if err := os.WriteFile(path, []byte(""), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := ReadLoadAvg(path); err == nil {
		t.Fatal("ReadLoadAvg of empty file succeeded")
	}
}

func TestSystemSourceDegradesGracefully(t *testing.T) {
	src := &SystemSource{
		LoadPath:    "/nonexistent/loadavg",
		DevicePaths: []string{"/nonexistent/dev"},
	}
	s := src.Sample(time.Now())
	// Unreadable probes must look busy, not idle.
	if s.Load < 0.3 {
		t.Fatalf("unreadable load sampled as %v, want busy-looking", s.Load)
	}
}

func TestSystemSourceDetectsDeviceActivity(t *testing.T) {
	dir := t.TempDir()
	dev := filepath.Join(dir, "console")
	if err := os.WriteFile(dev, []byte("x"), 0o644); err != nil {
		t.Fatal(err)
	}
	loadPath := filepath.Join(dir, "loadavg")
	if err := os.WriteFile(loadPath, []byte("0.01 0.01 0.01"), 0o644); err != nil {
		t.Fatal(err)
	}
	src := &SystemSource{LoadPath: loadPath, DevicePaths: []string{dev}}
	first := src.Sample(time.Now())
	if first.ConsoleActive {
		t.Fatal("first sample (no baseline) reported activity")
	}
	// Touch the device with a newer mtime.
	future := time.Now().Add(time.Hour)
	if err := os.Chtimes(dev, future, future); err != nil {
		t.Fatal(err)
	}
	second := src.Sample(time.Now())
	if !second.ConsoleActive {
		t.Fatal("mtime bump not detected as console activity")
	}
	third := src.Sample(time.Now())
	if third.ConsoleActive {
		t.Fatal("unchanged mtime still reported as activity")
	}
}

func BenchmarkMonitorStep(b *testing.B) {
	m := New(scriptedSource(nil, 0.1), Config{}, Hooks{})
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		m.Step(t0.Add(time.Duration(i) * time.Second))
	}
}
