// Package monitor implements the resource monitor daemon's policy engine
// (rmd, §4.1): sampling console activity and processor load once a
// second, deciding when the workstation is idle (no keyboard/mouse
// activity and adjusted load below 0.3 for five minutes or more), and
// driving the recruit/reclaim lifecycle of the idle memory daemon.
//
// The engine is written against interfaces so the same state machine
// runs over real /proc + device-file probes (SystemSource), scripted
// samples in tests, and the synthetic workstation traces used by the
// non-dedicated-cluster experiments.
package monitor

import (
	"time"

	"dodo/internal/locks"
	"dodo/internal/sim"
)

// Sample is one observation of the workstation, taken at 1 Hz.
type Sample struct {
	// Time the sample was taken.
	Time time.Time
	// ConsoleActive reports keyboard or mouse activity since the last
	// sample (the rmd stats the input device files, §4.1).
	ConsoleActive bool
	// Load is the processor load average.
	Load float64
	// ExcludedLoad is the load attributable to the screen saver and the
	// idle memory daemon itself, which the rmd subtracts so that
	// hosting guest data never causes a host to look busy (§4.1).
	ExcludedLoad float64
}

// AdjustedLoad returns the load with the excluded processes removed.
func (s Sample) AdjustedLoad() float64 {
	l := s.Load - s.ExcludedLoad
	if l < 0 {
		return 0
	}
	return l
}

// Source produces workstation samples.
type Source interface {
	Sample(now time.Time) Sample
}

// SourceFunc adapts a function to the Source interface.
type SourceFunc func(now time.Time) Sample

// Sample calls f.
func (f SourceFunc) Sample(now time.Time) Sample { return f(now) }

// Config tunes the idleness predicate. Zero fields take the paper's
// values.
type Config struct {
	// IdleAfter is how long console and processor must both stay quiet
	// before the host is recruited (paper: 5 minutes).
	IdleAfter time.Duration
	// LoadThreshold is the adjusted-load ceiling (paper: 0.3).
	LoadThreshold float64
	// SampleInterval is the probe period (paper: 1 second).
	SampleInterval time.Duration
	// Rules are the owner's Condor-style preference rules; if any rule
	// forbids recruiting at a given time, the host is treated as busy.
	Rules RuleSet
}

func (c Config) withDefaults() Config {
	if c.IdleAfter == 0 {
		c.IdleAfter = 5 * time.Minute
	}
	if c.LoadThreshold == 0 {
		c.LoadThreshold = 0.3
	}
	if c.SampleInterval == 0 {
		c.SampleInterval = time.Second
	}
	return c
}

// State is the monitor's view of the host.
type State int

// Monitor states.
const (
	// StateBusy: the owner is (or recently was) using the machine.
	StateBusy State = iota
	// StateIdle: the idleness predicate held for IdleAfter; the host is
	// recruited and its imd is running.
	StateIdle
)

func (s State) String() string {
	if s == StateIdle {
		return "idle"
	}
	return "busy"
}

// Hooks receive lifecycle transitions. OnRecruit fires on busy->idle
// (the rmd forks the imd and notifies the cmd); OnReclaim fires on
// idle->busy (the rmd signals the imd to drain and notifies the cmd).
type Hooks struct {
	OnRecruit func(now time.Time)
	OnReclaim func(now time.Time)
}

// Monitor is the rmd state machine. Safe for concurrent State queries;
// Step is called from one goroutine (the sampling loop).
type Monitor struct {
	// dodo:unguarded — immutable after construction
	cfg Config
	// dodo:unguarded — immutable after construction
	src Source
	// dodo:unguarded — immutable after construction
	hooks Hooks

	mu locks.Mutex
	// dodo:guardedby mu
	state State
	// dodo:guardedby mu
	lastActive time.Time
	// dodo:guardedby mu
	haveSample bool
	// dodo:guardedby mu
	transitions int
}

// New builds a monitor. The host starts busy: recruiting requires
// demonstrated idleness, never assumption.
func New(src Source, cfg Config, hooks Hooks) *Monitor {
	m := &Monitor{cfg: cfg.withDefaults(), src: src, hooks: hooks, state: StateBusy}
	m.mu.SetRank(locks.RankMonitor)
	return m
}

// State returns the current state.
func (m *Monitor) State() State {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.state
}

// Transitions returns how many recruit/reclaim transitions have fired.
func (m *Monitor) Transitions() int {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.transitions
}

// Step takes one sample at now and advances the state machine,
// returning the state after the step.
func (m *Monitor) Step(now time.Time) State {
	s := m.src.Sample(now)
	s.Time = now

	active := s.ConsoleActive || s.AdjustedLoad() >= m.cfg.LoadThreshold
	permitted := m.cfg.Rules.Permit(now)

	m.mu.Lock()
	if !m.haveSample {
		// Until proven otherwise the host counts as just-active.
		m.lastActive = now
		m.haveSample = true
	}
	if active || !permitted {
		m.lastActive = now
	}
	idleFor := now.Sub(m.lastActive)
	var fire func(time.Time)
	switch {
	case m.state == StateBusy && idleFor >= m.cfg.IdleAfter:
		m.state = StateIdle
		m.transitions++
		fire = m.hooks.OnRecruit
	case m.state == StateIdle && (active || !permitted):
		// Reclaim is immediate: the owner must never wait (§3).
		m.state = StateBusy
		m.transitions++
		fire = m.hooks.OnReclaim
	}
	state := m.state
	m.mu.Unlock()

	if fire != nil {
		fire(now)
	}
	return state
}

// Run samples at the configured interval on the given clock until stop
// is closed. With a sim.VirtualClock this drives simulated deployments;
// with sim.WallClock it is the live rmd loop.
func (m *Monitor) Run(clock sim.Clock, stop <-chan struct{}) {
	for {
		select {
		case <-stop:
			return
		default:
		}
		m.Step(clock.Now())
		clock.Sleep(m.cfg.SampleInterval)
	}
}
