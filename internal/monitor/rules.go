package monitor

import (
	"fmt"
	"strings"
	"time"
)

// Rule is one owner preference in the Condor style the paper borrows
// (§3.1): it grants or withholds permission to recruit the host at a
// given moment. Rules express policy only; mechanism (the idleness
// predicate) stays in the Monitor.
type Rule interface {
	// Permit reports whether recruiting is allowed at now.
	Permit(now time.Time) bool
	// String renders the rule for the owner's config listing.
	String() string
}

// RuleSet combines rules conjunctively: recruiting is permitted only if
// every rule permits it. An empty set always permits.
type RuleSet []Rule

// Permit evaluates the conjunction.
func (rs RuleSet) Permit(now time.Time) bool {
	for _, r := range rs {
		if !r.Permit(now) {
			return false
		}
	}
	return true
}

func (rs RuleSet) String() string {
	if len(rs) == 0 {
		return "always"
	}
	parts := make([]string, len(rs))
	for i, r := range rs {
		parts[i] = r.String()
	}
	return strings.Join(parts, " && ")
}

// Never withholds permission unconditionally: the owner opted out.
type Never struct{}

// Permit always returns false.
func (Never) Permit(time.Time) bool { return false }
func (Never) String() string        { return "never" }

// OutsideHours permits recruiting only outside the owner's working
// hours [StartHour, EndHour) on the listed weekdays. The classic Condor
// default: "not 9-17 on weekdays".
type OutsideHours struct {
	StartHour, EndHour int
	Days               []time.Weekday
}

// Permit reports whether now falls outside the protected window.
func (r OutsideHours) Permit(now time.Time) bool {
	inDay := false
	for _, d := range r.Days {
		if now.Weekday() == d {
			inDay = true
			break
		}
	}
	if !inDay {
		return true
	}
	h := now.Hour()
	return h < r.StartHour || h >= r.EndHour
}

func (r OutsideHours) String() string {
	return fmt.Sprintf("outside %02d:00-%02d:00 on %v", r.StartHour, r.EndHour, r.Days)
}

// Weekdays is the Monday-Friday convenience slice.
var Weekdays = []time.Weekday{time.Monday, time.Tuesday, time.Wednesday, time.Thursday, time.Friday}

// AfterQuietPeriod permits recruiting only when the predicate has been
// given extra settle time beyond the monitor's own window; owners use it
// to make harvesting more conservative on their machine.
type AfterQuietPeriod struct {
	// Since is consulted lazily so the rule composes with any activity
	// bookkeeping the embedding program keeps.
	Since func() time.Time
	Quiet time.Duration
}

// Permit reports whether the extra quiet period has elapsed.
func (r AfterQuietPeriod) Permit(now time.Time) bool {
	if r.Since == nil {
		return true
	}
	return now.Sub(r.Since()) >= r.Quiet
}

func (r AfterQuietPeriod) String() string {
	return fmt.Sprintf("after %v of quiet", r.Quiet)
}
