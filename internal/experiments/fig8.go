package experiments

import (
	"time"

	"dodo/internal/workload"
)

// Fig8Row is one bar of Figure 8: a synthetic benchmark at one request
// size, dataset size and transport.
type Fig8Row struct {
	Pattern   string
	ReqKB     int
	DatasetMB int
	Transport string

	BaselineTime time.Duration
	DodoTime     time.Duration
	// Speedup is total-runtime baseline/Dodo over all four iterations,
	// the paper's metric (regions are created during the first
	// iteration, §5.2.2).
	Speedup float64
	// SteadySpeedup excludes the first iteration of both runs: the
	// regime once the remote cache is populated.
	SteadySpeedup float64
}

// Figure8Config parameterizes the sweep.
type Figure8Config struct {
	// Scale shrinks all sizes proportionally (1 = paper scale:
	// 1 GB / 2 GB datasets against 1.2 GB of remote memory).
	Scale float64
	// Seed feeds the random patterns.
	Seed int64
	// Policy is the region-replacement policy (default "lru").
	Policy string
}

// Figure8 reruns the full sweep of §5.3 Figure 8: {sequential, hotcold,
// random} x {8 KB, 32 KB} x {1 GB, 2 GB} x {UDP, U-Net}.
func Figure8(cfg Figure8Config) ([]Fig8Row, error) {
	if cfg.Scale == 0 {
		cfg.Scale = 1
	}
	if cfg.Policy == "" {
		cfg.Policy = "lru"
	}
	datasets := []int64{scaled(1<<30, cfg.Scale), scaled(2<<30, cfg.Scale)}
	reqSizes := []int64{8 << 10, 32 << 10}
	var rows []Fig8Row
	for _, dataset := range datasets {
		for _, req := range reqSizes {
			patterns := []workload.Pattern{
				workload.Sequential{DatasetBytes: dataset, ReqSize: req},
				workload.HotCold{DatasetBytes: dataset, ReqSize: req, Seed: cfg.Seed},
				workload.Random{DatasetBytes: dataset, ReqSize: req, Seed: cfg.Seed + 1},
			}
			for _, p := range patterns {
				for _, net := range Transports() {
					spec := workload.Spec{Pattern: p, Iterations: Iterations, Compute: ComputePerRequest}
					dodoCfg := workload.DodoConfig{
						Net:             net,
						RemoteBytes:     scaled(RemoteMemoryBytes, cfg.Scale),
						LocalCacheBytes: scaled(LocalCacheBytes, cfg.Scale),
						RegionSize:      req,
						Policy:          cfg.Policy,
						DiskCacheBytes:  scaled(DodoPageCache, cfg.Scale),
					}
					base, dodo, pib, pid, err := runPair(spec, dodoCfg, cfg.Scale)
					if err != nil {
						return nil, err
					}
					row := Fig8Row{
						Pattern:      p.Name(),
						ReqKB:        int(req >> 10),
						DatasetMB:    int(dataset >> 20),
						Transport:    net.Name,
						BaselineTime: base,
						DodoTime:     dodo,
						Speedup:      speedup(base, dodo),
					}
					var sb, sd time.Duration
					for i := 1; i < len(pib); i++ {
						sb += pib[i]
						sd += pid[i]
					}
					row.SteadySpeedup = speedup(sb, sd)
					rows = append(rows, row)
				}
			}
		}
	}
	return rows, nil
}

// FindFig8 selects a row from the sweep.
func FindFig8(rows []Fig8Row, pattern string, reqKB, datasetMB int, transport string) (Fig8Row, bool) {
	for _, r := range rows {
		if r.Pattern == pattern && r.ReqKB == reqKB && r.DatasetMB == datasetMB && r.Transport == transport {
			return r, true
		}
	}
	return Fig8Row{}, false
}
