package experiments

import (
	"encoding/csv"
	"fmt"
	"io"
	"strconv"
)

// CSV emitters: every figure's data in a plot-ready form, one file per
// figure (dodo-bench -csv <dir> writes them). Columns carry units in
// the header so gnuplot/matplotlib scripts need no side knowledge.

// WriteFigure1CSV emits hour, all-hosts MB, idle-hosts MB, idle-host
// count for one cluster.
func WriteFigure1CSV(w io.Writer, res Fig1Result) error {
	cw := csv.NewWriter(w)
	if err := cw.Write([]string{"hour", "avail_all_mb", "avail_idle_mb", "idle_hosts"}); err != nil {
		return err
	}
	for _, s := range res.Series {
		rec := []string{
			fmt.Sprintf("%.3f", s.Time.Sub(res.Series[0].Time).Hours()),
			fmt.Sprintf("%.1f", float64(s.AvailAll)/(1<<20)),
			fmt.Sprintf("%.1f", float64(s.AvailIdle)/(1<<20)),
			strconv.Itoa(s.IdleHosts),
		}
		if err := cw.Write(rec); err != nil {
			return err
		}
	}
	cw.Flush()
	return cw.Error()
}

// WriteFigure2CSV emits hour, available MB for one workstation.
func WriteFigure2CSV(w io.Writer, res Fig2Result) error {
	cw := csv.NewWriter(w)
	if err := cw.Write([]string{"hour", "avail_mb", "active"}); err != nil {
		return err
	}
	for _, s := range res.Series {
		active := "0"
		if s.Active {
			active = "1"
		}
		rec := []string{
			fmt.Sprintf("%.3f", s.Time.Sub(res.Series[0].Time).Hours()),
			fmt.Sprintf("%.2f", float64(s.Mem.Available())/(1<<20)),
			active,
		}
		if err := cw.Write(rec); err != nil {
			return err
		}
	}
	cw.Flush()
	return cw.Error()
}

// WriteFigure7CSV emits the application speedup bars.
func WriteFigure7CSV(w io.Writer, rows []Fig7Row) error {
	cw := csv.NewWriter(w)
	if err := cw.Write([]string{"app", "transport", "baseline_s", "dodo_s", "speedup"}); err != nil {
		return err
	}
	for _, r := range rows {
		rec := []string{
			r.App, r.Transport,
			fmt.Sprintf("%.1f", r.BaselineTime.Seconds()),
			fmt.Sprintf("%.1f", r.DodoTime.Seconds()),
			fmt.Sprintf("%.3f", r.Speedup),
		}
		if err := cw.Write(rec); err != nil {
			return err
		}
	}
	cw.Flush()
	return cw.Error()
}

// WriteFigure8CSV emits the synthetic-benchmark sweep.
func WriteFigure8CSV(w io.Writer, rows []Fig8Row) error {
	cw := csv.NewWriter(w)
	header := []string{"pattern", "req_kb", "dataset_mb", "transport",
		"baseline_s", "dodo_s", "speedup", "steady_speedup"}
	if err := cw.Write(header); err != nil {
		return err
	}
	for _, r := range rows {
		rec := []string{
			r.Pattern, strconv.Itoa(r.ReqKB), strconv.Itoa(r.DatasetMB), r.Transport,
			fmt.Sprintf("%.1f", r.BaselineTime.Seconds()),
			fmt.Sprintf("%.1f", r.DodoTime.Seconds()),
			fmt.Sprintf("%.3f", r.Speedup),
			fmt.Sprintf("%.3f", r.SteadySpeedup),
		}
		if err := cw.Write(rec); err != nil {
			return err
		}
	}
	cw.Flush()
	return cw.Error()
}

// WriteReclaimCSV emits the recruitment-policy comparison.
func WriteReclaimCSV(w io.Writer, rows []ReclaimRow) error {
	cw := csv.NewWriter(w)
	header := []string{"policy", "recruits", "reclaims", "harvest_mb",
		"mean_delay_ms", "p95_delay_ms", "max_delay_ms", "overshoot_reclaims"}
	if err := cw.Write(header); err != nil {
		return err
	}
	for _, r := range rows {
		rec := []string{
			r.Policy, strconv.Itoa(r.Recruitments), strconv.Itoa(r.Reclaims),
			fmt.Sprintf("%.1f", r.HarvestedMB),
			fmt.Sprintf("%.1f", float64(r.MeanDelay.Microseconds())/1000),
			fmt.Sprintf("%.1f", float64(r.P95Delay.Microseconds())/1000),
			fmt.Sprintf("%.1f", float64(r.MaxDelay.Microseconds())/1000),
			strconv.Itoa(r.OvershootReclaims),
		}
		if err := cw.Write(rec); err != nil {
			return err
		}
	}
	cw.Flush()
	return cw.Error()
}

// WriteHeadroomCSV emits the headroom sensitivity sweep.
func WriteHeadroomCSV(w io.Writer, rows []HeadroomRow) error {
	cw := csv.NewWriter(w)
	if err := cw.Write([]string{"headroom_pct", "harvest_mb", "mean_delay_ms", "overshoot_frac"}); err != nil {
		return err
	}
	for _, r := range rows {
		rec := []string{
			fmt.Sprintf("%.0f", r.HeadroomFraction*100),
			fmt.Sprintf("%.1f", r.HarvestedMB),
			fmt.Sprintf("%.1f", float64(r.MeanDelay.Microseconds())/1000),
			fmt.Sprintf("%.3f", r.OvershootFrac),
		}
		if err := cw.Write(rec); err != nil {
			return err
		}
	}
	cw.Flush()
	return cw.Error()
}
