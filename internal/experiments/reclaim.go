package experiments

import (
	"time"

	"dodo/internal/monitor"
	"dodo/internal/trace"
)

// ReclaimRow summarizes the owner-perceived delay at workstation
// reclamation for one recruitment policy — the §5.3.1 trace-driven
// experiment ("using a memory recruitment policy that targets only idle
// hosts and that does not harvest more memory than is idle ensures that
// users experience virtually no delays when reclaiming their
// workstations").
type ReclaimRow struct {
	Policy string
	// Recruitments and Reclaims over the simulated period.
	Recruitments int
	Reclaims     int
	// HarvestedMB is the mean pool size recruited.
	HarvestedMB float64
	// Delay statistics over all reclaims.
	MeanDelay time.Duration
	P95Delay  time.Duration
	MaxDelay  time.Duration
	// OvershootReclaims counts reclaims where harvested memory exceeded
	// what was still idle, forcing the owner to page back in.
	OvershootReclaims int
}

// ReclaimConfig parameterizes the churn simulation.
type ReclaimConfig struct {
	Hosts    int
	Duration time.Duration
	Seed     int64
}

// drainOverhead is the fixed cost of the imd completing in-flight
// transfers and exiting when the owner returns (§4.1).
const drainOverhead = 30 * time.Millisecond

// diskPageInRate is how fast the owner's evicted pages stream back from
// disk once the host is overcommitted.
const diskPageInRate = 7.75e6 // bytes/s, the sequential disk rate

// Reclamation runs the churn simulation under two recruitment policies:
//
//   - "dodo": harvest at most the §3.1 limit — memory in use plus the
//     paging free list plus a 15% file-cache headroom stay untouched;
//   - "greedy": harvest every byte not in active use at recruitment
//     time, with no headroom (what a naive harvester would do).
//
// Guest regions are read-only cache copies, so reclaiming them is
// instantaneous — the imd exits and its pool is dropped. The owner's
// delay is therefore the drain overhead plus the time to page back the
// owner's own pages that the kernel evicted *during tenancy*: whenever
// the host's available memory dipped below what the daemon had
// harvested, the difference came out of the owner's working set. The
// 15% headroom plus the paging free list is exactly the reserve that
// absorbs those dips (§3.1).
func Reclamation(cfg ReclaimConfig) []ReclaimRow {
	if cfg.Hosts <= 0 {
		cfg.Hosts = 24
	}
	if cfg.Duration <= 0 {
		cfg.Duration = 7 * 24 * time.Hour
	}
	rows := make([]ReclaimRow, 0, 2)
	for _, policy := range []string{"dodo", "greedy"} {
		rows = append(rows, runReclaim(policy, cfg))
	}
	return rows
}

func runReclaim(policy string, cfg ReclaimConfig) ReclaimRow {
	row := ReclaimRow{Policy: policy}
	classes := trace.Table1Classes()
	var delays []time.Duration
	var harvestedSum float64

	for h := 0; h < cfg.Hosts; h++ {
		class := classes[h%len(classes)]
		host := trace.NewHost(class, trace.ProfileClusterA, cfg.Seed+int64(h)*131)
		var (
			recruited bool
			harvested uint64
			minAvail  uint64
		)
		now := studyStart
		for t := time.Duration(0); t < cfg.Duration; t += time.Minute {
			s := host.Step(now, time.Minute)
			now = now.Add(time.Minute)
			switch {
			case !recruited && s.Idle:
				// Recruit: size the pool by policy.
				switch policy {
				case "dodo":
					harvested = monitor.HarvestLimit(s.Mem, -1)
				default: // greedy: everything not in use right now
					harvested = s.Mem.Available()
				}
				if harvested > 0 {
					recruited = true
					minAvail = s.Mem.Available()
					row.Recruitments++
					harvestedSum += float64(harvested) / (1 << 20)
				}
			case recruited && !s.Active:
				// Tenancy: track the availability dips the daemon's
				// pool may have pushed into the owner's pages.
				if a := s.Mem.Available(); a < minAvail {
					minAvail = a
				}
			case recruited && s.Active:
				// Owner returns: the imd drains and exits; guest pages
				// are dropped for free. Owner pages evicted during
				// tenancy stream back from disk.
				row.Reclaims++
				delay := drainOverhead
				if harvested > minAvail {
					evicted := harvested - minAvail
					delay += time.Duration(float64(evicted) / diskPageInRate * float64(time.Second))
					row.OvershootReclaims++
				}
				delays = append(delays, delay)
				recruited = false
				harvested = 0
			}
		}
	}
	if row.Recruitments > 0 {
		row.HarvestedMB = harvestedSum / float64(row.Recruitments)
	}
	if len(delays) > 0 {
		row.MeanDelay, row.P95Delay, row.MaxDelay = delayStats(delays)
	}
	return row
}

func delayStats(delays []time.Duration) (mean, p95, max time.Duration) {
	// Insertion sort is fine at these sizes.
	sorted := append([]time.Duration(nil), delays...)
	for i := 1; i < len(sorted); i++ {
		for j := i; j > 0 && sorted[j] < sorted[j-1]; j-- {
			sorted[j], sorted[j-1] = sorted[j-1], sorted[j]
		}
	}
	var sum time.Duration
	for _, d := range sorted {
		sum += d
	}
	mean = sum / time.Duration(len(sorted))
	p95 = sorted[len(sorted)*95/100]
	max = sorted[len(sorted)-1]
	return mean, p95, max
}

// runReclaimWithHeadroom drives the same churn simulation with a
// parametric headroom fraction, for the headroom sensitivity sweep.
func runReclaimWithHeadroom(frac float64, cfg ReclaimConfig) HeadroomRow {
	classes := trace.Table1Classes()
	var (
		delays       []time.Duration
		harvestedSum float64
		recruits     int
		overshoots   int
	)
	for h := 0; h < cfg.Hosts; h++ {
		class := classes[h%len(classes)]
		host := trace.NewHost(class, trace.ProfileClusterA, cfg.Seed+int64(h)*131)
		var (
			recruited bool
			harvested uint64
			minAvail  uint64
		)
		now := studyStart
		for t := time.Duration(0); t < cfg.Duration; t += time.Minute {
			s := host.Step(now, time.Minute)
			now = now.Add(time.Minute)
			switch {
			case !recruited && s.Idle:
				harvested = monitor.HarvestLimit(s.Mem, frac)
				if harvested > 0 {
					recruited = true
					minAvail = s.Mem.Available()
					recruits++
					harvestedSum += float64(harvested) / (1 << 20)
				}
			case recruited && !s.Active:
				if a := s.Mem.Available(); a < minAvail {
					minAvail = a
				}
			case recruited && s.Active:
				delay := drainOverhead
				if harvested > minAvail {
					evicted := harvested - minAvail
					delay += time.Duration(float64(evicted) / diskPageInRate * float64(time.Second))
					overshoots++
				}
				delays = append(delays, delay)
				recruited = false
			}
		}
	}
	row := HeadroomRow{HeadroomFraction: frac}
	if recruits > 0 {
		row.HarvestedMB = harvestedSum / float64(recruits)
	}
	if len(delays) > 0 {
		mean, _, _ := delayStats(delays)
		row.MeanDelay = mean
		row.OvershootFrac = float64(overshoots) / float64(len(delays))
	}
	return row
}
