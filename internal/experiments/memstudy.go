package experiments

import (
	"time"

	"dodo/internal/trace"
)

// studyStart anchors the synthetic monitoring period (a Monday, as in
// the original multi-week study).
var studyStart = time.Date(1998, 9, 7, 0, 0, 0, 0, time.UTC)

// Table1Row is one row of Table 1: mean (std) KB per memory component
// for one host class.
type Table1Row struct {
	Class       string
	KernelKB    trace.MeanStd
	FileCacheKB trace.MeanStd
	ProcessKB   trace.MeanStd
	AvailKB     trace.MeanStd

	// Paper columns for side-by-side comparison.
	PaperKernelKB, PaperFileKB, PaperProcKB, PaperAvailKB float64
}

// Table1 regenerates Table 1 from synthetic traces: hostsPerClass hosts
// of each class monitored for the given duration.
func Table1(hostsPerClass int, duration time.Duration, seed int64) []Table1Row {
	if hostsPerClass <= 0 {
		hostsPerClass = 6
	}
	if duration <= 0 {
		duration = 7 * 24 * time.Hour
	}
	stats := trace.Table1Study(hostsPerClass, duration, seed)
	rows := make([]Table1Row, 0, len(stats))
	for _, st := range stats {
		rows = append(rows, Table1Row{
			Class:         st.Class.Name,
			KernelKB:      st.KernelKB,
			FileCacheKB:   st.FileKB,
			ProcessKB:     st.ProcessKB,
			AvailKB:       st.AvailKB,
			PaperKernelKB: st.Class.KernelMeanKB,
			PaperFileKB:   st.Class.FileCacheMeanKB,
			PaperProcKB:   st.Class.ProcessMeanKB,
			PaperAvailKB:  st.Class.AvailMeanKB(),
		})
	}
	return rows
}

// Fig1Result is one cluster's Figure 1 series with its headline
// averages.
type Fig1Result struct {
	Cluster string
	Series  []trace.ClusterSample
	// Averages in MB.
	AvgAllMB, AvgIdleMB float64
	// Paper's averages for comparison.
	PaperAllMB, PaperIdleMB float64
}

// Figure1 regenerates Figure 1: availability series for both clusters
// over the given duration.
func Figure1(duration time.Duration, seed int64) []Fig1Result {
	if duration <= 0 {
		duration = 7 * 24 * time.Hour
	}
	out := []Fig1Result{
		{Cluster: "clusterA", PaperAllMB: 3549, PaperIdleMB: 2747},
		{Cluster: "clusterB", PaperAllMB: 852, PaperIdleMB: 742},
	}
	clusters := []*trace.Cluster{trace.NewClusterA(seed), trace.NewClusterB(seed + 1)}
	for i, c := range clusters {
		series := c.Series(studyStart, duration, time.Minute)
		all, idle := trace.SeriesAverages(series)
		out[i].Series = series
		out[i].AvgAllMB = all
		out[i].AvgIdleMB = idle
	}
	return out
}

// Fig2Result is one workstation's Figure 2 series.
type Fig2Result struct {
	Class  string
	Series []trace.Sample
	// Summary statistics of available memory in MB.
	MeanMB, MinMB, MaxMB float64
	TotalMB              float64
}

// Figure2 regenerates Figure 2: per-workstation availability variation,
// one host per class.
func Figure2(duration time.Duration, seed int64) []Fig2Result {
	if duration <= 0 {
		duration = 7 * 24 * time.Hour
	}
	var out []Fig2Result
	for i, class := range trace.Table1Classes() {
		h := trace.NewHost(class, trace.ProfileClusterA, seed+int64(i)*101)
		series := trace.HostSeries(h, studyStart, duration, time.Minute)
		var ms trace.MeanStd
		for _, s := range series {
			ms.Add(float64(s.Mem.Available()) / (1 << 20))
		}
		out = append(out, Fig2Result{
			Class:   class.Name,
			Series:  series,
			MeanMB:  ms.Mean,
			MinMB:   ms.Min(),
			MaxMB:   ms.Max(),
			TotalMB: float64(class.TotalKB) / 1024,
		})
	}
	return out
}
