// Package experiments regenerates every table and figure of the paper's
// evaluation (§2 and §5) from the reimplemented system: the idle-memory
// study (Table 1, Figures 1-2), the application and synthetic-benchmark
// speedups (Figures 7-8), the non-dedicated-cluster reclamation result
// (§5.3.1), and the ablation studies of Dodo's design choices.
//
// Each experiment returns typed rows so that the bench harness, the
// dodo-bench binary and the test suite all consume the same code path.
// A Scale parameter shrinks datasets proportionally (memory sizes,
// dataset sizes and cache sizes all scale together), preserving every
// ratio the speedups depend on while letting the test suite run in
// seconds; Scale=1 reproduces the paper's exact configuration.
package experiments

import (
	"time"

	"dodo/internal/simdisk"
	"dodo/internal/simnet"
	"dodo/internal/workload"
)

// Paper-exact platform constants (§5.1).
const (
	// RemoteMemoryBytes: 12 idle-memory daemons x 100 MB pools.
	RemoteMemoryBytes = int64(1200) << 20
	// LocalCacheBytes: the region-management library's local cache.
	LocalCacheBytes = int64(80) << 20
	// BaselinePageCache: page cache available to the no-Dodo run on the
	// 128 MB application node (node memory minus kernel and the
	// application's own buffers).
	BaselinePageCache = int64(96) << 20
	// DodoPageCache: page cache left once the 80 MB local region cache
	// is pinned.
	DodoPageCache = int64(16) << 20
	// ComputePerRequest is the synthetic benchmarks' constant compute
	// time between requests (§5.2.2).
	ComputePerRequest = 10 * time.Millisecond
	// Iterations is the synthetic benchmarks' num_iter.
	Iterations = 4
)

// Transports returns the two communication substrates of the evaluation.
func Transports() []simnet.CostModel {
	return []simnet.CostModel{simnet.UDPFastEthernet(), simnet.UNetFastEthernet()}
}

// scaled applies the proportional scale factor to a byte size.
func scaled(bytes int64, scale float64) int64 {
	if scale >= 1 {
		return bytes
	}
	v := int64(float64(bytes) * scale)
	if v < 1<<20 {
		v = 1 << 20
	}
	return v
}

// runPair runs one spec against the baseline and one Dodo configuration,
// returning both simulated times.
func runPair(spec workload.Spec, dodoCfg workload.DodoConfig, scale float64) (base, dodo time.Duration, perIterBase, perIterDodo []time.Duration, err error) {
	baseline := &workload.DiskStorage{
		Disk: simdisk.NewDisk(simdisk.QuantumFireballST32(), scaled(BaselinePageCache, scale)),
		File: 1,
	}
	base, perIterBase, err = workload.Run(spec, baseline)
	if err != nil {
		return 0, 0, nil, nil, err
	}
	st := workload.NewDodoStorage(dodoCfg)
	dodo, perIterDodo, err = workload.Run(spec, st)
	if err != nil {
		return 0, 0, nil, nil, err
	}
	return base, dodo, perIterBase, perIterDodo, nil
}

// speedup guards the division.
func speedup(base, dodo time.Duration) float64 {
	if dodo == 0 {
		return 0
	}
	return float64(base) / float64(dodo)
}
