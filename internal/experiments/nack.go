package experiments

import (
	"fmt"
	"time"

	"dodo/internal/bulk"
	"dodo/internal/sim"
	"dodo/internal/simnet"
	"dodo/internal/transport"
)

// NackRow compares loss recovery strategies for the bulk transfer
// protocol (§4.4) over a live lossy in-memory network.
type NackRow struct {
	Mode        string // "selective-nack" or "full-window"
	LossRate    float64
	Transfers   int
	Bytes       int64
	WallTime    time.Duration
	Retransmits int64
	// RedundantBytes approximates wasted retransmission volume.
	RedundantBytes int64
}

// NackAblation runs real bulk transfers through a lossy network with the
// selective NACK of §4.4 and with naive full-window retransmission,
// measuring the retransmission traffic each needs. clk times the runs
// and drives the protocol timers (sim.WallClock{} for real benchmarks).
func NackAblation(clk sim.Clock, lossRate float64, transfers int, transferBytes int, seed int64) ([]NackRow, error) {
	if clk == nil {
		clk = sim.WallClock{}
	}
	if lossRate <= 0 {
		lossRate = 0.05
	}
	if transfers <= 0 {
		transfers = 8
	}
	if transferBytes <= 0 {
		transferBytes = 256 << 10
	}
	cfg := bulk.Config{
		CallTimeout:     150 * time.Millisecond,
		CallRetries:     8,
		WindowTimeout:   60 * time.Millisecond,
		NackDelay:       20 * time.Millisecond,
		RecvWindow:      32,
		TransferRetries: 20,
		Clock:           clk,
	}
	var rows []NackRow
	for _, full := range []bool{false, true} {
		mode := "selective-nack"
		if full {
			mode = "full-window"
		}
		n := transport.NewNetwork(
			transport.WithMTU(1500),
			transport.WithFaults(simnet.Faults{LossRate: lossRate, Seed: seed}),
		)
		sndCfg := cfg
		sndCfg.RetransmitFullWindow = full
		snd := bulk.NewEndpoint(n.Host("sender"), sndCfg, nil)
		rcv := bulk.NewEndpoint(n.Host("receiver"), cfg, nil)

		data := make([]byte, transferBytes)
		start := clk.Now()
		for i := 0; i < transfers; i++ {
			id := snd.NextTransferID()
			errCh := make(chan error, 1)
			go func() {
				_, err := rcv.RecvBulk("sender", id, 60*time.Second)
				errCh <- err
			}()
			if err := snd.SendBulk("receiver", id, data); err != nil {
				_ = snd.Close()
				_ = rcv.Close()
				return nil, fmt.Errorf("experiments: %s transfer %d: %w", mode, i, err)
			}
			if err := <-errCh; err != nil {
				_ = snd.Close()
				_ = rcv.Close()
				return nil, fmt.Errorf("experiments: %s receive %d: %w", mode, i, err)
			}
		}
		wall := clk.Now().Sub(start)
		retrans, _, _ := snd.Stats()
		_ = snd.Close()
		_ = rcv.Close()
		chunk := int64(1500 - 24)
		rows = append(rows, NackRow{
			Mode:           mode,
			LossRate:       lossRate,
			Transfers:      transfers,
			Bytes:          int64(transfers) * int64(transferBytes),
			WallTime:       wall,
			Retransmits:    retrans,
			RedundantBytes: retrans * chunk,
		})
	}
	return rows, nil
}

// TransportRow is one line of the UDP vs U-Net microbenchmark table.
type TransportRow struct {
	SizeBytes int
	UDPTime   time.Duration
	UNetTime  time.Duration
	Ratio     float64
}

// TransportMicro tabulates modeled round-trip times for the two
// substrates across the request sizes the evaluation uses.
func TransportMicro() []TransportRow {
	udp, unet := simnet.UDPFastEthernet(), simnet.UNetFastEthernet()
	var rows []TransportRow
	for _, size := range []int{64, 1024, 8 << 10, 32 << 10, 128 << 10, 512 << 10} {
		u, n := udp.RoundTrip(size), unet.RoundTrip(size)
		rows = append(rows, TransportRow{
			SizeBytes: size,
			UDPTime:   u,
			UNetTime:  n,
			Ratio:     float64(u) / float64(n),
		})
	}
	return rows
}
