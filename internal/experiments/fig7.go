package experiments

import (
	"time"

	"dodo/internal/apps/dmine"
	"dodo/internal/apps/lu"
	"dodo/internal/simdisk"
	"dodo/internal/workload"
)

// Fig7Row is one bar of Figure 7: an application at one transport.
type Fig7Row struct {
	App       string // "lu", "dmine-run1", "dmine-run2"
	Transport string

	BaselineTime time.Duration
	DodoTime     time.Duration
	Speedup      float64
}

// Figure7Config parameterizes the application experiments.
type Figure7Config struct {
	// Scale shrinks dataset and memory sizes proportionally (1 = paper
	// scale: dmine 1 GB, lu 512 MiB, remote 1.2 GB).
	Scale float64
	Seed  int64
}

// Figure7 reruns the application experiments of §5.3 Figure 7:
//
//   - lu: one out-of-core factorization; regions deleted at completion,
//     so the benefit comes from re-reading slabs within the run
//     (speedups ~1.2 U-Net / ~1.15 UDP — modest because lu is
//     compute-bound, yet hours of a >6 hour run).
//   - dmine: two consecutive runs against retained regions. Run 1 faults
//     the corpus in from disk (no speedup); run 2 runs entirely from
//     remote memory (~3.2 U-Net / ~2.6 UDP).
func Figure7(cfg Figure7Config) ([]Fig7Row, error) {
	if cfg.Scale == 0 {
		cfg.Scale = 1
	}
	var rows []Fig7Row

	// lu. The paper's triangle-scan trace is cheap to simulate at full
	// scale; Scale shrinks it via the synthetic-scale knob only when
	// below 1 to keep tests fast.
	luSpec := luSpecScaled(cfg.Scale)
	for _, net := range Transports() {
		dodoCfg := workload.DodoConfig{
			Net:             net,
			RemoteBytes:     scaled(RemoteMemoryBytes, cfg.Scale),
			LocalCacheBytes: scaled(LocalCacheBytes, cfg.Scale),
			RegionSize:      luSpec.Pattern.RequestSize(),
			Policy:          "first-in", // §5.2.1: triangle scan -> first-in
			DiskCacheBytes:  scaled(DodoPageCache, cfg.Scale),
		}
		base, dodo, _, _, err := runPair(luSpec, dodoCfg, cfg.Scale)
		if err != nil {
			return nil, err
		}
		rows = append(rows, Fig7Row{
			App: "lu", Transport: net.Name,
			BaselineTime: base, DodoTime: dodo, Speedup: speedup(base, dodo),
		})
	}

	// dmine: two runs against the same Dodo state.
	spec := dmineSpecScaled(cfg.Scale, cfg.Seed)
	for _, net := range Transports() {
		baseline := &workload.DiskStorage{
			Disk: simdisk.NewDisk(simdisk.QuantumFireballST32(), scaled(BaselinePageCache, cfg.Scale)),
			File: 1,
		}
		base, _, err := workload.Run(spec, baseline)
		if err != nil {
			return nil, err
		}
		st := workload.NewDodoStorage(workload.DodoConfig{
			Net:             net,
			RemoteBytes:     scaled(RemoteMemoryBytes, cfg.Scale),
			LocalCacheBytes: scaled(LocalCacheBytes, cfg.Scale),
			RegionSize:      spec.Pattern.RequestSize(),
			Policy:          "first-in", // §5.2.1: multi-scan -> first-in
			DiskCacheBytes:  scaled(DodoPageCache, cfg.Scale),
		})
		run1, _, err := workload.Run(spec, st)
		if err != nil {
			return nil, err
		}
		run2, _, err := workload.Run(spec, st) // regions retained
		if err != nil {
			return nil, err
		}
		rows = append(rows,
			Fig7Row{App: "dmine-run1", Transport: net.Name, BaselineTime: base, DodoTime: run1, Speedup: speedup(base, run1)},
			Fig7Row{App: "dmine-run2", Transport: net.Name, BaselineTime: base, DodoTime: run2, Speedup: speedup(base, run2)},
		)
	}
	return rows, nil
}

// luSpecScaled returns the lu benchmark spec, shrunk below paper scale
// by substituting a proportionally smaller synthetic triangle scan.
func luSpecScaled(scale float64) workload.Spec {
	if scale >= 1 {
		return lu.FigureSpec()
	}
	// Shrink the matrix so the dataset scales with `scale` (dataset
	// grows with n^2).
	full := lu.FigureSpec()
	fullTrace := full.Pattern.(workload.TracePattern)
	factor := scale // dataset fraction
	var reqs []workload.Request
	limit := int64(float64(fullTrace.DatasetSize) * factor)
	for _, r := range fullTrace.Trace {
		if r.Offset+r.Size <= limit {
			reqs = append(reqs, r)
		}
	}
	return workload.Spec{
		Pattern: workload.TracePattern{
			PatternName: "lu",
			DatasetSize: limit,
			ReqSize:     fullTrace.ReqSize,
			Trace:       reqs,
		},
		Iterations: 1,
		Compute:    full.Compute,
	}
}

// dmineSpecScaled returns the dmine run spec at the given scale.
func dmineSpecScaled(scale float64, seed int64) workload.Spec {
	if scale >= 1 {
		return dmine.FigureSpec(seed)
	}
	full := dmine.FigureSpec(seed)
	tr := full.Pattern.(workload.TracePattern)
	limit := int64(float64(tr.DatasetSize) * scale)
	var perIter [][]workload.Request
	for _, pass := range tr.PerIter {
		var reqs []workload.Request
		for _, r := range pass {
			if r.Offset+r.Size <= limit {
				reqs = append(reqs, r)
			}
		}
		perIter = append(perIter, reqs)
	}
	return workload.Spec{
		Pattern: workload.TracePattern{
			PatternName: "dmine",
			DatasetSize: limit,
			ReqSize:     tr.ReqSize,
			PerIter:     perIter,
		},
		Iterations: 1,
		Compute:    full.Compute,
	}
}
