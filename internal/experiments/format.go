package experiments

import (
	"fmt"
	"io"
	"time"
)

// FormatTable1 renders the Table 1 reproduction side by side with the
// paper's values.
func FormatTable1(w io.Writer, rows []Table1Row) {
	fmt.Fprintf(w, "Table 1: average memory usage by purpose (KB), measured vs paper\n")
	fmt.Fprintf(w, "%-8s %22s %22s %22s %22s\n", "class", "kernel", "file-cache", "process", "available")
	for _, r := range rows {
		fmt.Fprintf(w, "%-8s %9.0f (%6.0f)/%5.0f %9.0f (%6.0f)/%5.0f %9.0f (%6.0f)/%5.0f %9.0f (%6.0f)/%5.0f\n",
			r.Class,
			r.KernelKB.Mean, r.KernelKB.Std, r.PaperKernelKB,
			r.FileCacheKB.Mean, r.FileCacheKB.Std, r.PaperFileKB,
			r.ProcessKB.Mean, r.ProcessKB.Std, r.PaperProcKB,
			r.AvailKB.Mean, r.AvailKB.Std, r.PaperAvailKB)
	}
	fmt.Fprintf(w, "(cells are measured-mean (std)/paper-mean)\n")
}

// FormatFigure1 renders the cluster availability headline numbers.
func FormatFigure1(w io.Writer, results []Fig1Result) {
	fmt.Fprintf(w, "Figure 1: average available memory (MB), measured vs paper\n")
	fmt.Fprintf(w, "%-10s %14s %14s %14s %14s\n", "cluster", "all-hosts", "paper", "idle-hosts", "paper")
	for _, r := range results {
		fmt.Fprintf(w, "%-10s %14.0f %14.0f %14.0f %14.0f\n",
			r.Cluster, r.AvgAllMB, r.PaperAllMB, r.AvgIdleMB, r.PaperIdleMB)
	}
}

// FormatFigure1Series renders a downsampled availability series (the
// actual Figure 1 curves) as rows of time vs MB.
func FormatFigure1Series(w io.Writer, res Fig1Result, points int) {
	if points <= 0 {
		points = 24
	}
	stride := len(res.Series) / points
	if stride < 1 {
		stride = 1
	}
	fmt.Fprintf(w, "Figure 1 series, %s (hour, all-hosts MB, idle-hosts MB)\n", res.Cluster)
	for i := 0; i < len(res.Series); i += stride {
		s := res.Series[i]
		fmt.Fprintf(w, "%7.1f %10.0f %10.0f\n",
			s.Time.Sub(res.Series[0].Time).Hours(),
			float64(s.AvailAll)/(1<<20), float64(s.AvailIdle)/(1<<20))
	}
}

// FormatFigure2 renders per-host availability summaries.
func FormatFigure2(w io.Writer, results []Fig2Result) {
	fmt.Fprintf(w, "Figure 2: per-workstation available memory over a week (MB)\n")
	fmt.Fprintf(w, "%-8s %10s %10s %10s %10s\n", "class", "total", "mean", "min", "max")
	for _, r := range results {
		fmt.Fprintf(w, "%-8s %10.0f %10.1f %10.1f %10.1f\n", r.Class, r.TotalMB, r.MeanMB, r.MinMB, r.MaxMB)
	}
}

// FormatFigure7 renders the application speedups.
func FormatFigure7(w io.Writer, rows []Fig7Row) {
	fmt.Fprintf(w, "Figure 7: application speedup with Dodo (paper: lu 1.2 U-Net / 1.15 UDP; dmine ~1.0 first run, 3.2 U-Net / 2.6 UDP on re-runs)\n")
	fmt.Fprintf(w, "%-12s %-6s %14s %14s %9s\n", "app", "net", "baseline", "dodo", "speedup")
	for _, r := range rows {
		fmt.Fprintf(w, "%-12s %-6s %14s %14s %9.2f\n",
			r.App, r.Transport, fmtDur(r.BaselineTime), fmtDur(r.DodoTime), r.Speedup)
	}
}

// FormatFigure8 renders the synthetic-benchmark sweep.
func FormatFigure8(w io.Writer, rows []Fig8Row) {
	fmt.Fprintf(w, "Figure 8: synthetic benchmark speedups (num_iter=4, 10ms compute)\n")
	fmt.Fprintf(w, "%-12s %6s %8s %-6s %12s %12s %9s %9s\n",
		"pattern", "req", "dataset", "net", "baseline", "dodo", "speedup", "steady")
	for _, r := range rows {
		fmt.Fprintf(w, "%-12s %4dKB %6dMB %-6s %12s %12s %9.2f %9.2f\n",
			r.Pattern, r.ReqKB, r.DatasetMB, r.Transport,
			fmtDur(r.BaselineTime), fmtDur(r.DodoTime), r.Speedup, r.SteadySpeedup)
	}
}

// FormatReclamation renders the §5.3.1 recruitment-policy comparison.
func FormatReclamation(w io.Writer, rows []ReclaimRow) {
	fmt.Fprintf(w, "Reclamation delay (§5.3.1): recruitment policy vs owner-perceived delay\n")
	fmt.Fprintf(w, "%-8s %9s %9s %12s %12s %12s %12s %10s\n",
		"policy", "recruits", "reclaims", "harvestMB", "mean-delay", "p95-delay", "max-delay", "overshoot")
	for _, r := range rows {
		fmt.Fprintf(w, "%-8s %9d %9d %12.1f %12s %12s %12s %9d\n",
			r.Policy, r.Recruitments, r.Reclaims, r.HarvestedMB,
			fmtDur(r.MeanDelay), fmtDur(r.P95Delay), fmtDur(r.MaxDelay), r.OvershootReclaims)
	}
}

// FormatAllocator renders the allocator ablation.
func FormatAllocator(w io.Writer, rows []AllocatorRow) {
	fmt.Fprintf(w, "Allocator ablation (§4.2): first-fit + coalescing vs buddy\n")
	fmt.Fprintf(w, "%-10s %9s %9s %12s %12s %8s %12s\n",
		"allocator", "attempts", "failures", "free-bytes", "largest", "frag", "int-waste")
	for _, r := range rows {
		fmt.Fprintf(w, "%-10s %9d %9d %12d %12d %8.3f %12d\n",
			r.Allocator, r.Attempts, r.Failures, r.FinalFreeBytes, r.FinalLargest,
			r.Fragmentation, r.InternalWasteBytes)
	}
}

// FormatPolicy renders the replacement-policy ablation.
func FormatPolicy(w io.Writer, rows []PolicyRow) {
	fmt.Fprintf(w, "Replacement-policy ablation (§3.3): speedup and local-cache behavior by pattern x policy\n")
	fmt.Fprintf(w, "%-12s %-10s %9s %11s %11s\n", "pattern", "policy", "speedup", "local-hit%", "evictions")
	for _, r := range rows {
		fmt.Fprintf(w, "%-12s %-10s %9.2f %10.1f%% %11d\n", r.Pattern, r.Policy, r.Speedup, r.LocalHitRate*100, r.Evictions)
	}
}

// FormatRefraction renders the refraction-period ablation.
func FormatRefraction(w io.Writer, rows []RefractionRow) {
	fmt.Fprintf(w, "Refraction-period ablation (§3.1): wasted allocation RPCs under memory pressure\n")
	fmt.Fprintf(w, "%-14s %14s %14s %14s\n", "refraction", "alloc-RPCs", "skipped", "runtime")
	for _, r := range rows {
		fmt.Fprintf(w, "%-14s %14d %14d %14s\n",
			fmtDur(r.RefractionPeriod), r.AllocAttempts, r.Skipped, fmtDur(r.RunTime))
	}
}

// FormatPrefetch renders the sequential-prefetch window sweep.
func FormatPrefetch(w io.Writer, rows []PrefetchRow) {
	fmt.Fprintf(w, "Sequential-prefetch ablation (§3.3): window depth vs scan traffic placement\n")
	fmt.Fprintf(w, "%-8s %9s %12s %12s %12s\n", "window", "speedup", "prefetches", "disk-MB", "remote-MB")
	for _, r := range rows {
		win := "off"
		if r.Window > 0 {
			win = fmt.Sprintf("%d", r.Window)
		}
		fmt.Fprintf(w, "%-8s %9.2f %12d %12.1f %12.1f\n", win, r.Speedup, r.Prefetches,
			float64(r.DiskReads)/(1<<20), float64(r.RemoteReads)/(1<<20))
	}
}

// FormatHeadroom renders the headroom sensitivity sweep.
func FormatHeadroom(w io.Writer, rows []HeadroomRow) {
	fmt.Fprintf(w, "Headroom ablation (§3.1): harvest size vs owner delay\n")
	fmt.Fprintf(w, "%-10s %12s %12s %12s\n", "headroom", "harvestMB", "mean-delay", "overshoot")
	for _, r := range rows {
		fmt.Fprintf(w, "%9.0f%% %12.1f %12s %11.1f%%\n",
			r.HeadroomFraction*100, r.HarvestedMB, fmtDur(r.MeanDelay), r.OvershootFrac*100)
	}
}

// FormatNack renders the selective-NACK ablation.
func FormatNack(w io.Writer, rows []NackRow) {
	fmt.Fprintf(w, "Bulk-protocol loss recovery (§4.4): selective NACK vs full-window retransmit\n")
	fmt.Fprintf(w, "%-16s %6s %10s %12s %12s %14s\n", "mode", "loss", "transfers", "wall-time", "retransmits", "redundant-B")
	for _, r := range rows {
		fmt.Fprintf(w, "%-16s %5.1f%% %10d %12s %12d %14d\n",
			r.Mode, r.LossRate*100, r.Transfers, fmtDur(r.WallTime), r.Retransmits, r.RedundantBytes)
	}
}

// FormatTransport renders the UDP vs U-Net microbenchmark table.
func FormatTransport(w io.Writer, rows []TransportRow) {
	fmt.Fprintf(w, "Transport microbenchmark: modeled request round-trip (request + data reply)\n")
	fmt.Fprintf(w, "%10s %12s %12s %8s\n", "size", "UDP", "U-Net", "ratio")
	for _, r := range rows {
		fmt.Fprintf(w, "%9dB %12s %12s %8.2f\n", r.SizeBytes, fmtDur(r.UDPTime), fmtDur(r.UNetTime), r.Ratio)
	}
}

// fmtDur renders durations compactly at a sensible precision.
func fmtDur(d time.Duration) string {
	switch {
	case d == 0:
		return "0"
	case d < time.Millisecond:
		return fmt.Sprintf("%.0fµs", float64(d)/float64(time.Microsecond))
	case d < time.Second:
		return fmt.Sprintf("%.1fms", float64(d)/float64(time.Millisecond))
	case d < time.Minute:
		return fmt.Sprintf("%.2fs", d.Seconds())
	case d < time.Hour:
		return fmt.Sprintf("%.1fm", d.Minutes())
	default:
		return fmt.Sprintf("%.2fh", d.Hours())
	}
}
