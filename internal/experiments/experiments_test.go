package experiments

import (
	"bytes"
	"strings"
	"testing"
	"time"

	"dodo/internal/sim"
)

const testScale = 0.0625 // 64 MB / 128 MB datasets: fast but same ratios

func fig8Rows(t *testing.T) []Fig8Row {
	t.Helper()
	rows, err := Figure8(Figure8Config{Scale: testScale, Seed: 7})
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 24 { // 3 patterns x 2 req sizes x 2 datasets x 2 nets
		t.Fatalf("rows = %d, want 24", len(rows))
	}
	return rows
}

func get(t *testing.T, rows []Fig8Row, pattern string, reqKB, dsMB int, nett string) Fig8Row {
	t.Helper()
	r, ok := FindFig8(rows, pattern, reqKB, dsMB, nett)
	if !ok {
		t.Fatalf("row %s/%d/%d/%s missing", pattern, reqKB, dsMB, nett)
	}
	return r
}

// The headline Figure 8 shapes, asserted at reduced scale:
//
//  1. sequential ~ 1.0 (the filesystem already streams at wire speed);
//  2. hotcold and random substantially above 1;
//  3. growing the dataset past remote memory hurts random...
//  4. ...but helps hotcold (hot set still fits; baseline cache dilutes);
//  5. U-Net >= UDP everywhere.
func TestFigure8Shapes(t *testing.T) {
	rows := fig8Rows(t)
	small := int(scaled(1<<30, testScale) >> 20)
	large := int(scaled(2<<30, testScale) >> 20)

	// 1. Sequential near 1.
	for _, nett := range []string{"udp", "unet"} {
		for _, ds := range []int{small, large} {
			for _, req := range []int{8, 32} {
				r := get(t, rows, "sequential", req, ds, nett)
				if r.Speedup < 0.85 || r.Speedup > 1.15 {
					t.Errorf("sequential/%dKB/%dMB/%s speedup = %.2f, want ~1.0", req, ds, nett, r.Speedup)
				}
			}
		}
	}
	// 2. hotcold/random clearly above sequential.
	for _, p := range []string{"hotcold", "random"} {
		r := get(t, rows, p, 8, small, "unet")
		if r.Speedup < 1.3 {
			t.Errorf("%s/8KB/%dMB/unet speedup = %.2f, want >= 1.3", p, small, r.Speedup)
		}
	}
	// 3. random: large dataset (overflowing remote memory) hurts.
	rs := get(t, rows, "random", 8, small, "unet")
	rl := get(t, rows, "random", 8, large, "unet")
	if rl.Speedup >= rs.Speedup {
		t.Errorf("random speedup grew with dataset: %.2f -> %.2f", rs.Speedup, rl.Speedup)
	}
	// 4. hotcold: large dataset helps (paper's surprising result).
	hs := get(t, rows, "hotcold", 8, small, "unet")
	hl := get(t, rows, "hotcold", 8, large, "unet")
	if hl.Speedup <= hs.Speedup {
		t.Errorf("hotcold speedup fell with dataset: %.2f -> %.2f", hs.Speedup, hl.Speedup)
	}
	// 5. U-Net >= UDP for every cell.
	for _, p := range []string{"sequential", "hotcold", "random"} {
		for _, req := range []int{8, 32} {
			for _, ds := range []int{small, large} {
				u := get(t, rows, p, req, ds, "udp")
				n := get(t, rows, p, req, ds, "unet")
				if n.Speedup < u.Speedup-0.02 {
					t.Errorf("%s/%d/%d: unet %.2f < udp %.2f", p, req, ds, n.Speedup, u.Speedup)
				}
			}
		}
	}
}

func TestFigure7Shapes(t *testing.T) {
	rows, err := Figure7(Figure7Config{Scale: 0.125, Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	find := func(app, nett string) Fig7Row {
		for _, r := range rows {
			if r.App == app && r.Transport == nett {
				return r
			}
		}
		t.Fatalf("row %s/%s missing", app, nett)
		return Fig7Row{}
	}
	// dmine: first run no speedup, second run large speedup.
	run1 := find("dmine-run1", "unet")
	if run1.Speedup < 0.8 || run1.Speedup > 1.1 {
		t.Errorf("dmine run1 speedup = %.2f, want ~1.0 (paper: no speedup)", run1.Speedup)
	}
	run2u := find("dmine-run2", "unet")
	if run2u.Speedup < 2.4 || run2u.Speedup > 4.0 {
		t.Errorf("dmine run2 unet speedup = %.2f, want ~3.2", run2u.Speedup)
	}
	run2d := find("dmine-run2", "udp")
	if run2d.Speedup < 2.0 || run2d.Speedup > 3.2 {
		t.Errorf("dmine run2 udp speedup = %.2f, want ~2.6", run2d.Speedup)
	}
	if run2u.Speedup <= run2d.Speedup {
		t.Errorf("dmine: unet (%.2f) not faster than udp (%.2f)", run2u.Speedup, run2d.Speedup)
	}
	// lu: modest speedup, unet >= udp.
	luU := find("lu", "unet")
	luD := find("lu", "udp")
	if luU.Speedup < 1.05 || luU.Speedup > 1.35 {
		t.Errorf("lu unet speedup = %.2f, want ~1.2", luU.Speedup)
	}
	if luD.Speedup < 1.02 || luD.Speedup > luU.Speedup+0.01 {
		t.Errorf("lu udp speedup = %.2f (unet %.2f), want ~1.15 and <= unet", luD.Speedup, luU.Speedup)
	}
}

func TestTable1Reproduction(t *testing.T) {
	rows := Table1(3, 48*time.Hour, 11)
	if len(rows) != 4 {
		t.Fatalf("classes = %d", len(rows))
	}
	for _, r := range rows {
		if relErr(r.AvailKB.Mean, r.PaperAvailKB) > 0.15 {
			t.Errorf("%s avail = %.0f, paper %.0f", r.Class, r.AvailKB.Mean, r.PaperAvailKB)
		}
		if relErr(r.KernelKB.Mean, r.PaperKernelKB) > 0.15 {
			t.Errorf("%s kernel = %.0f, paper %.0f", r.Class, r.KernelKB.Mean, r.PaperKernelKB)
		}
	}
}

func relErr(got, want float64) float64 {
	if want == 0 {
		return got
	}
	d := got - want
	if d < 0 {
		d = -d
	}
	return d / want
}

func TestFigure1Reproduction(t *testing.T) {
	res := Figure1(72*time.Hour, 5)
	if len(res) != 2 {
		t.Fatalf("clusters = %d", len(res))
	}
	for _, r := range res {
		if relErr(r.AvgAllMB, r.PaperAllMB) > 0.18 {
			t.Errorf("%s all-hosts = %.0f MB, paper %.0f", r.Cluster, r.AvgAllMB, r.PaperAllMB)
		}
		if relErr(r.AvgIdleMB, r.PaperIdleMB) > 0.25 {
			t.Errorf("%s idle-hosts = %.0f MB, paper %.0f", r.Cluster, r.AvgIdleMB, r.PaperIdleMB)
		}
		if r.AvgIdleMB >= r.AvgAllMB {
			t.Errorf("%s idle >= all", r.Cluster)
		}
		if len(r.Series) == 0 {
			t.Errorf("%s has no series", r.Cluster)
		}
	}
}

func TestFigure2Reproduction(t *testing.T) {
	res := Figure2(72*time.Hour, 9)
	if len(res) != 4 {
		t.Fatalf("hosts = %d", len(res))
	}
	for _, r := range res {
		// Dips exist but typical availability is high.
		if r.MinMB > 0.6*r.MeanMB {
			t.Errorf("%s: no dips (min %.1f, mean %.1f)", r.Class, r.MinMB, r.MeanMB)
		}
		if r.MeanMB < 0.3*r.TotalMB {
			t.Errorf("%s: mean %.1f below 30%% of total %.0f", r.Class, r.MeanMB, r.TotalMB)
		}
	}
}

func TestReclamationPolicyComparison(t *testing.T) {
	rows := Reclamation(ReclaimConfig{Hosts: 12, Duration: 4 * 24 * time.Hour, Seed: 2})
	if len(rows) != 2 {
		t.Fatalf("rows = %d", len(rows))
	}
	var dodo, greedy ReclaimRow
	for _, r := range rows {
		switch r.Policy {
		case "dodo":
			dodo = r
		case "greedy":
			greedy = r
		}
	}
	if dodo.Reclaims == 0 || greedy.Reclaims == 0 {
		t.Fatalf("no reclaims simulated: %+v %+v", dodo, greedy)
	}
	// The paper's claim: virtually no delay under the Dodo policy.
	if dodo.MeanDelay > 200*time.Millisecond {
		t.Errorf("dodo mean reclaim delay = %v, want < 200ms", dodo.MeanDelay)
	}
	// Greedy harvesting hurts noticeably more.
	if greedy.MeanDelay < 2*dodo.MeanDelay {
		t.Errorf("greedy delay %v not clearly worse than dodo %v", greedy.MeanDelay, dodo.MeanDelay)
	}
	// And Dodo still harvests a useful pool.
	if dodo.HarvestedMB < 10 {
		t.Errorf("dodo harvested only %.1f MB on average", dodo.HarvestedMB)
	}
}

func TestAllocatorAblation(t *testing.T) {
	rows := AllocatorAblation(32<<20, 8000, 3)
	if len(rows) != 2 {
		t.Fatalf("rows = %d", len(rows))
	}
	for _, r := range rows {
		if r.Attempts == 0 {
			t.Errorf("%s: no attempts", r.Allocator)
		}
		if r.Fragmentation < 0 || r.Fragmentation > 1 {
			t.Errorf("%s: fragmentation %f out of range", r.Allocator, r.Fragmentation)
		}
	}
	// Buddy pays internal waste; first-fit doesn't.
	if rows[0].InternalWasteBytes != 0 {
		t.Error("first-fit reported internal waste")
	}
	if rows[1].InternalWasteBytes == 0 {
		t.Error("buddy reported zero internal waste under jittered sizes")
	}
}

func TestPolicyAblation(t *testing.T) {
	rows, err := PolicyAblation(0.03125, 5)
	if err != nil {
		t.Fatal(err)
	}
	byKey := map[string]float64{}
	for _, r := range rows {
		byKey[r.Pattern+"/"+r.Policy] = r.Speedup
	}
	// Hotcold favors recency: LRU must not lose to first-in or MRU
	// (remote memory is fast enough that the absolute gap is small —
	// the local cache only shaves the last network hop).
	if byKey["hotcold/lru"] < byKey["hotcold/first-in"]-0.02 {
		t.Errorf("hotcold: lru %.2f < first-in %.2f", byKey["hotcold/lru"], byKey["hotcold/first-in"])
	}
	if byKey["hotcold/lru"] < byKey["hotcold/mru"]-0.02 {
		t.Errorf("hotcold: lru %.2f < mru %.2f", byKey["hotcold/lru"], byKey["hotcold/mru"])
	}
	// All policies keep sequential near 1.
	for _, p := range []string{"lru", "mru", "first-in", "fifo"} {
		if s := byKey["sequential/"+p]; s < 0.8 || s > 1.2 {
			t.Errorf("sequential/%s speedup = %.2f", p, s)
		}
	}
	// Every cell lands in a sane range.
	for k, v := range byKey {
		if v < 0.7 || v > 4 {
			t.Errorf("%s speedup = %.2f out of range", k, v)
		}
	}
}

func TestRefractionAblation(t *testing.T) {
	rows, err := RefractionAblation(0.03125, 6)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 2 {
		t.Fatalf("rows = %d", len(rows))
	}
	noRefraction, withRefraction := rows[0], rows[1]
	if withRefraction.Skipped == 0 {
		t.Error("refraction period skipped no allocations under pressure")
	}
	if noRefraction.AllocAttempts <= withRefraction.AllocAttempts {
		t.Errorf("refraction did not reduce allocation RPCs: %d vs %d",
			noRefraction.AllocAttempts, withRefraction.AllocAttempts)
	}
}

func TestHeadroomAblation(t *testing.T) {
	rows := HeadroomAblation(8, 36*time.Hour, 4)
	if len(rows) < 4 {
		t.Fatalf("rows = %d", len(rows))
	}
	// Harvest shrinks monotonically with headroom.
	for i := 1; i < len(rows); i++ {
		if rows[i].HarvestedMB > rows[i-1].HarvestedMB {
			t.Errorf("harvest grew with headroom: %.1f -> %.1f at %.0f%%",
				rows[i-1].HarvestedMB, rows[i].HarvestedMB, rows[i].HeadroomFraction*100)
		}
	}
	// Delay at 0% headroom exceeds delay at 15%.
	var at0, at15 HeadroomRow
	for _, r := range rows {
		if r.HeadroomFraction == 0 {
			at0 = r
		}
		if r.HeadroomFraction == 0.15 {
			at15 = r
		}
	}
	if at0.MeanDelay <= at15.MeanDelay {
		t.Errorf("0%% headroom delay %v not worse than 15%% %v", at0.MeanDelay, at15.MeanDelay)
	}
}

func TestNackAblation(t *testing.T) {
	rows, err := NackAblation(sim.WallClock{}, 0.05, 4, 128<<10, 9)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 2 {
		t.Fatalf("rows = %d", len(rows))
	}
	sel, full := rows[0], rows[1]
	if sel.Mode != "selective-nack" || full.Mode != "full-window" {
		t.Fatalf("unexpected row order: %s %s", sel.Mode, full.Mode)
	}
	if full.Retransmits <= sel.Retransmits {
		t.Errorf("full-window retransmits (%d) not above selective (%d)",
			full.Retransmits, sel.Retransmits)
	}
}

func TestTransportMicroTable(t *testing.T) {
	rows := TransportMicro()
	if len(rows) == 0 {
		t.Fatal("no rows")
	}
	for _, r := range rows {
		if r.UNetTime >= r.UDPTime {
			t.Errorf("size %d: unet %v >= udp %v", r.SizeBytes, r.UNetTime, r.UDPTime)
		}
		if r.Ratio <= 1 {
			t.Errorf("size %d: ratio %.2f", r.SizeBytes, r.Ratio)
		}
	}
}

func TestFormattersProduceOutput(t *testing.T) {
	var buf bytes.Buffer
	FormatTable1(&buf, Table1(1, 2*time.Hour, 1))
	FormatFigure2(&buf, Figure2(2*time.Hour, 1))
	res := Figure1(2*time.Hour, 1)
	FormatFigure1(&buf, res)
	FormatFigure1Series(&buf, res[0], 4)
	FormatReclamation(&buf, Reclamation(ReclaimConfig{Hosts: 2, Duration: 12 * time.Hour, Seed: 1}))
	FormatAllocator(&buf, AllocatorAblation(1<<20, 500, 1))
	FormatTransport(&buf, TransportMicro())
	out := buf.String()
	for _, want := range []string{"Table 1", "Figure 1", "Figure 2", "Reclamation", "Allocator", "Transport"} {
		if !strings.Contains(out, want) {
			t.Errorf("formatted output missing %q", want)
		}
	}
	if strings.Contains(out, "%!") {
		t.Errorf("format verb error in output:\n%s", out)
	}
}

func TestCSVWriters(t *testing.T) {
	var buf bytes.Buffer
	res := Figure1(2*time.Hour, 1)
	if err := WriteFigure1CSV(&buf, res[0]); err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimSpace(buf.String()), "\n")
	if len(lines) != len(res[0].Series)+1 {
		t.Fatalf("fig1 csv lines = %d, want %d", len(lines), len(res[0].Series)+1)
	}
	if lines[0] != "hour,avail_all_mb,avail_idle_mb,idle_hosts" {
		t.Fatalf("fig1 header = %q", lines[0])
	}

	buf.Reset()
	f2 := Figure2(2*time.Hour, 1)
	if err := WriteFigure2CSV(&buf, f2[0]); err != nil {
		t.Fatal(err)
	}
	if !strings.HasPrefix(buf.String(), "hour,avail_mb,active\n") {
		t.Fatal("fig2 header wrong")
	}

	buf.Reset()
	rows7 := []Fig7Row{{App: "lu", Transport: "udp", BaselineTime: time.Hour, DodoTime: 50 * time.Minute, Speedup: 1.2}}
	if err := WriteFigure7CSV(&buf, rows7); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "lu,udp,3600.0,3000.0,1.200") {
		t.Fatalf("fig7 csv = %q", buf.String())
	}

	buf.Reset()
	rows8 := []Fig8Row{{Pattern: "random", ReqKB: 8, DatasetMB: 1024, Transport: "unet",
		BaselineTime: time.Minute, DodoTime: 30 * time.Second, Speedup: 2, SteadySpeedup: 2.2}}
	if err := WriteFigure8CSV(&buf, rows8); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "random,8,1024,unet,60.0,30.0,2.000,2.200") {
		t.Fatalf("fig8 csv = %q", buf.String())
	}

	buf.Reset()
	if err := WriteReclaimCSV(&buf, Reclamation(ReclaimConfig{Hosts: 2, Duration: 12 * time.Hour, Seed: 1})); err != nil {
		t.Fatal(err)
	}
	if !strings.HasPrefix(buf.String(), "policy,") {
		t.Fatal("reclaim header wrong")
	}

	buf.Reset()
	if err := WriteHeadroomCSV(&buf, HeadroomAblation(2, 12*time.Hour, 1)); err != nil {
		t.Fatal(err)
	}
	if !strings.HasPrefix(buf.String(), "headroom_pct,") {
		t.Fatal("headroom header wrong")
	}
}
