package experiments

import (
	"math/rand"
	"time"

	"dodo/internal/pool"
	"dodo/internal/simdisk"
	"dodo/internal/simnet"
	"dodo/internal/workload"
)

// AllocatorRow compares pool allocators under region churn — the §4.2
// design choice (first-fit with periodic coalescing now, buddy "if this
// becomes a problem at a later date").
type AllocatorRow struct {
	Allocator string
	// Failures out of Attempts allocations.
	Attempts, Failures int64
	// FinalFreeBytes and FinalLargest after the churn.
	FinalFreeBytes, FinalLargest uint64
	// Fragmentation = 1 - largest/free at the end.
	Fragmentation float64
	// InternalWasteBytes counts buddy round-up waste (0 for first-fit).
	InternalWasteBytes uint64
}

// AllocatorAblation churns region-sized allocations through both
// allocators: ops random create/delete with sizes drawn from the
// region-size distribution the workloads produce.
func AllocatorAblation(poolSize uint64, ops int, seed int64) []AllocatorRow {
	if poolSize == 0 {
		poolSize = 64 << 20
	}
	if ops <= 0 {
		ops = 20000
	}
	sizes := []uint64{8 << 10, 32 << 10, 128 << 10, 512 << 10, 1 << 20}
	run := func(name string, alloc pool.Allocator) AllocatorRow {
		rng := rand.New(rand.NewSource(seed))
		row := AllocatorRow{Allocator: name}
		requested := map[uint64]uint64{}
		var live []uint64
		for i := 0; i < ops; i++ {
			if rng.Intn(3) != 0 || len(live) == 0 {
				size := sizes[rng.Intn(len(sizes))]
				// Regions are "usually multiples of the pagesize" but
				// arbitrary sizes occur (§4.2); jitter half of them.
				if rng.Intn(2) == 0 {
					size += uint64(rng.Intn(4096))
				}
				row.Attempts++
				if off, ok := alloc.Alloc(size); ok {
					live = append(live, off)
					requested[off] = size
				} else {
					row.Failures++
				}
			} else {
				idx := rng.Intn(len(live))
				off := live[idx]
				live[idx] = live[len(live)-1]
				live = live[:len(live)-1]
				_ = alloc.Free(off)
				delete(requested, off)
			}
		}
		row.FinalFreeBytes = alloc.FreeBytes()
		row.FinalLargest = alloc.LargestFree()
		if row.FinalFreeBytes > 0 {
			row.Fragmentation = 1 - float64(row.FinalLargest)/float64(row.FinalFreeBytes)
		}
		if b, ok := alloc.(*pool.Buddy); ok {
			row.InternalWasteBytes = b.InternalWaste(requested)
		}
		drainAllocs(alloc, live)
		return row
	}
	ff := pool.NewFirstFit(poolSize)
	buddy, err := pool.NewBuddy(poolSize, 4096)
	rows := []AllocatorRow{run("first-fit", ff)}
	if err == nil {
		rows = append(rows, run("buddy", buddy))
	}
	return rows
}

// drainAllocs frees every allocation still live at the end of an
// ablation run. The row's fragmentation stats are captured before the
// drain, so the measured numbers are unaffected; this just returns the
// pool to empty instead of abandoning the survivors.
//
// dodo:releases(palloc)
func drainAllocs(alloc pool.Allocator, live []uint64) {
	for _, off := range live {
		_ = alloc.Free(off)
	}
}

// PolicyRow is one cell of the replacement-policy ablation.
type PolicyRow struct {
	Pattern string
	Policy  string
	Speedup float64
	// LocalHitRate is the fraction of requests served by the local
	// region cache — where policies differ even when remote memory is
	// fast enough to mask the difference in total runtime.
	LocalHitRate float64
	// Evictions counts grimReaper migrations (promotion churn).
	Evictions int64
}

// PolicyAblation reruns the synthetic benchmarks under every
// region-replacement policy, quantifying §3.3's claim that policy choice
// should follow the access pattern (first-in for scans, LRU for skewed
// access).
func PolicyAblation(scale float64, seed int64) ([]PolicyRow, error) {
	if scale == 0 {
		scale = 0.0625
	}
	dataset := scaled(1<<30, scale)
	req := int64(8 << 10)
	net := simnet.UNetFastEthernet()
	patterns := []workload.Pattern{
		workload.Sequential{DatasetBytes: dataset, ReqSize: req},
		workload.HotCold{DatasetBytes: dataset, ReqSize: req, Seed: seed},
		workload.Random{DatasetBytes: dataset, ReqSize: req, Seed: seed + 1},
	}
	var rows []PolicyRow
	for _, p := range patterns {
		for _, policy := range []string{"lru", "mru", "first-in", "fifo"} {
			spec := workload.Spec{Pattern: p, Iterations: Iterations, Compute: ComputePerRequest}
			cfg := workload.DodoConfig{
				Net:             net,
				RemoteBytes:     scaled(RemoteMemoryBytes, scale),
				LocalCacheBytes: scaled(LocalCacheBytes, scale),
				RegionSize:      req,
				Policy:          policy,
				DiskCacheBytes:  scaled(DodoPageCache, scale),
			}
			baseline := &workload.DiskStorage{
				Disk: simdisk.NewDisk(simdisk.QuantumFireballST32(), scaled(BaselinePageCache, scale)),
				File: 1,
			}
			base, _, err := workload.Run(spec, baseline)
			if err != nil {
				return nil, err
			}
			st := workload.NewDodoStorage(cfg)
			dodo, _, err := workload.Run(spec, st)
			if err != nil {
				return nil, err
			}
			cstats, _ := st.Stats()
			requests := int64(spec.Iterations) * (p.Dataset() / p.RequestSize())
			row := PolicyRow{
				Pattern:   p.Name(),
				Policy:    policy,
				Speedup:   speedup(base, dodo),
				Evictions: cstats.Evictions,
			}
			if requests > 0 {
				// A promotion serves its own access "locally" after
				// fetching, so subtract promotions to count accesses
				// that needed no fetch at all.
				pure := cstats.LocalHits - cstats.Promotions
				if pure < 0 {
					pure = 0
				}
				row.LocalHitRate = float64(pure) / float64(requests)
			}
			rows = append(rows, row)
		}
	}
	return rows, nil
}

// RefractionRow quantifies what the refraction period saves when the
// remote cache is exhausted (§3.1, Figure 5).
type RefractionRow struct {
	RefractionPeriod time.Duration
	// AllocAttempts is the number of manager allocation RPCs issued.
	AllocAttempts int64
	// Skipped is how many attempts the refraction suppressed.
	Skipped int64
	RunTime time.Duration
}

// RefractionAblation runs a workload that overflows remote memory, with
// and without the refraction period, and counts wasted allocation RPCs.
func RefractionAblation(scale float64, seed int64) ([]RefractionRow, error) {
	if scale == 0 {
		scale = 0.0625
	}
	dataset := scaled(2<<30, scale) // overflows the scaled remote pool
	req := int64(8 << 10)
	var rows []RefractionRow
	for _, period := range []time.Duration{time.Nanosecond, 5 * time.Second} {
		spec := workload.Spec{
			Pattern:    workload.Random{DatasetBytes: dataset, ReqSize: req, Seed: seed},
			Iterations: Iterations,
			Compute:    ComputePerRequest,
		}
		st := workload.NewDodoStorage(workload.DodoConfig{
			Net:              simnet.UNetFastEthernet(),
			RemoteBytes:      scaled(RemoteMemoryBytes, scale),
			LocalCacheBytes:  scaled(LocalCacheBytes, scale),
			RegionSize:       req,
			Policy:           "lru",
			DiskCacheBytes:   scaled(DodoPageCache, scale),
			RefractionPeriod: period,
		})
		total, _, err := workload.Run(spec, st)
		if err != nil {
			return nil, err
		}
		cstats, nstats := st.Stats()
		rows = append(rows, RefractionRow{
			RefractionPeriod: period,
			AllocAttempts:    nstats.Allocs + nstats.AllocFailures,
			Skipped:          cstats.RefractSkips,
			RunTime:          total,
		})
	}
	return rows, nil
}

// HeadroomRow is one point of the harvest-headroom sensitivity sweep.
type HeadroomRow struct {
	HeadroomFraction float64
	HarvestedMB      float64
	MeanDelay        time.Duration
	OvershootFrac    float64
}

// HeadroomAblation sweeps the §3.1 file-cache headroom from 0 to 30%,
// trading harvested pool size against owner-perceived reclaim delay.
// The paper's 15% sits where delays have collapsed while most of the
// idle memory is still harvested.
func HeadroomAblation(hosts int, duration time.Duration, seed int64) []HeadroomRow {
	if hosts <= 0 {
		hosts = 16
	}
	if duration <= 0 {
		duration = 3 * 24 * time.Hour
	}
	var rows []HeadroomRow
	for _, frac := range []float64{0, 0.05, 0.10, 0.15, 0.20, 0.30} {
		row := headroomRun(frac, hosts, duration, seed)
		rows = append(rows, row)
	}
	return rows
}

func headroomRun(frac float64, hosts int, duration time.Duration, seed int64) HeadroomRow {
	cfg := ReclaimConfig{Hosts: hosts, Duration: duration, Seed: seed}
	row := runReclaimWithHeadroom(frac, cfg)
	return row
}

// PrefetchRow is one point of the sequential-prefetch sweep.
type PrefetchRow struct {
	// Window is the prefetch depth; 0 means prefetch disabled.
	Window int
	// Speedup over the disk-only baseline for a sequential scan.
	Speedup float64
	// Prefetches issued, and where the scan's bytes came from:
	// foreground/pull disk reads vs remote-memory reads.
	Prefetches, DiskReads, RemoteReads int64
}

// PrefetchAblation sweeps the sequential-prefetch window over a scan
// workload. The driver runs the pipeline with zero workers — pulls
// execute inline on the faulting call, so virtual time charges them to
// the foreground and the sweep cannot show latency hiding (that is
// BenchmarkPrefetchPipeline's job, in wall-clock time with a worker
// pool). What it does show, deterministically: arming the pipeline is
// cost-neutral on the scan (speedup stays ~1), while each window
// consolidates a region's per-request disk read-throughs into one bulk
// pull and shifts the remaining traffic to remote memory.
func PrefetchAblation(scale float64, seed int64) ([]PrefetchRow, error) {
	if scale == 0 {
		scale = 0.0625
	}
	dataset := scaled(1<<30, scale)
	req := int64(8 << 10)
	// Regions are 4 requests wide: partial-region reads cannot migrate a
	// region opportunistically (that path needs a full-region read), so
	// getting ahead of the stream is the only way a cold region's later
	// touches avoid the disk. With region == request size every read
	// would clone as a side effect and the sweep would show nothing.
	spec := workload.Spec{
		Pattern:    workload.Sequential{DatasetBytes: dataset, ReqSize: req},
		Iterations: Iterations,
		Compute:    ComputePerRequest,
	}
	baseline := &workload.DiskStorage{
		Disk: simdisk.NewDisk(simdisk.QuantumFireballST32(), scaled(BaselinePageCache, scale)),
		File: 1,
	}
	base, _, err := workload.Run(spec, baseline)
	if err != nil {
		return nil, err
	}
	var rows []PrefetchRow
	for _, window := range []int{0, 1, 2, 4} {
		st := workload.NewDodoStorage(workload.DodoConfig{
			Net:                simnet.UNetFastEthernet(),
			RemoteBytes:        scaled(RemoteMemoryBytes, scale),
			LocalCacheBytes:    scaled(LocalCacheBytes, scale),
			RegionSize:         4 * req,
			Policy:             "first-in",
			DiskCacheBytes:     scaled(DodoPageCache, scale),
			SequentialPrefetch: window > 0,
			PrefetchWindow:     window,
		})
		dodo, _, err := workload.Run(spec, st)
		if err != nil {
			return nil, err
		}
		cstats, _ := st.Stats()
		rows = append(rows, PrefetchRow{
			Window:      window,
			Speedup:     speedup(base, dodo),
			Prefetches:  cstats.Prefetches,
			DiskReads:   cstats.DiskReads,
			RemoteReads: cstats.RemoteReads,
		})
	}
	return rows, nil
}
