package bulk

import (
	"fmt"
	"time"

	"dodo/internal/locks"
	"dodo/internal/sim"
	"dodo/internal/transport"
	"dodo/internal/wire"
)

// MaxTransfer bounds a single bulk transfer.
const MaxTransfer = 1 << 30

// chunkSize returns the per-packet payload for this endpoint's transport.
func (ep *Endpoint) chunkSize() int {
	return ep.tr.MTU() - wire.HeaderSize - 12 // 12 = BulkData fixed fields
}

// sendData transmits one BulkData packet: scatter-gather when the
// transport supports it (the payload rides the send as its own segment,
// no sender-side frame is built), and a pooled frame otherwise — either
// way the per-packet heap allocation of the old Encode path is gone.
func (ep *Endpoint) sendData(to string, id uint64, seq uint32, payload []byte) error {
	var prefix [wire.BulkDataPrefixSize]byte
	wire.PutBulkDataPrefix(prefix[:], id, seq, len(payload))
	if vs, ok := ep.tr.(transport.VecSender); ok {
		return vs.SendVec(to, prefix[:], payload)
	}
	frame := wire.GetFrame(wire.BulkDataPrefixSize + len(payload))
	defer wire.PutFrame(frame)
	copy(frame, prefix[:])
	copy(frame[wire.BulkDataPrefixSize:], payload)
	return ep.tr.Send(to, frame)
}

// SendBulk pushes data to the peer under the given transfer id using the
// blast/selective-NACK protocol. The receiver must be expecting the
// transfer (Dodo always announces it first through a control message:
// DataResp for reads, WriteReq for writes).
func (ep *Endpoint) SendBulk(to string, id uint64, data []byte) error {
	if len(data) > MaxTransfer {
		return fmt.Errorf("bulk: transfer of %d bytes exceeds MaxTransfer", len(data))
	}
	respCh, err := ep.registerTx(id)
	if err != nil {
		return err
	}
	defer ep.unregisterTx(id)

	chunk := ep.chunkSize()
	offer := &wire.BulkOffer{TransferID: id, TotalLen: uint64(len(data)), ChunkSize: uint32(chunk)}
	resp, err := ep.Call(to, offer)
	if err != nil {
		return fmt.Errorf("bulk: offering transfer %d to %s: %w", id, to, err)
	}
	accept, ok := resp.(*wire.BulkAccept)
	if !ok {
		return fmt.Errorf("bulk: offer answered with %v", resp.Kind())
	}
	if accept.Status != wire.StatusOK {
		return fmt.Errorf("%w: %v", ErrRejected, accept.Status)
	}
	window := int(accept.Window)
	if window < 1 {
		window = 1
	}
	return ep.runTransfer(to, id, data, chunk, window, respCh)
}

// SendBulkEager pushes data under a RECEIVER-chosen transfer id with no
// offer/accept exchange: the receiver pre-registered its buffer (via
// ExpectBulkInto) and named id, chunk and window in its request, so the
// first window can be blasted immediately — DataResp doubles as the
// offer. Everything after the opening is the ordinary window /
// selective-NACK engine, so loss degrades to exactly the legacy
// recovery protocol (the re-offer path answers a receiver that lost the
// whole opening blast).
func (ep *Endpoint) SendBulkEager(to string, id uint64, data []byte, chunk, window int) error {
	if len(data) > MaxTransfer {
		return fmt.Errorf("bulk: transfer of %d bytes exceeds MaxTransfer", len(data))
	}
	if chunk <= 0 || chunk > ep.chunkSize() {
		return fmt.Errorf("bulk: eager transfer %d: chunk %d outside (0, %d]", id, chunk, ep.chunkSize())
	}
	if window < 1 {
		window = 1
	}
	respCh, err := ep.registerTx(id)
	if err != nil {
		return err
	}
	defer ep.unregisterTx(id)
	return ep.runTransfer(to, id, data, chunk, window, respCh)
}

// registerTx claims the sender-side response channel for transfer id.
func (ep *Endpoint) registerTx(id uint64) (chan wire.Message, error) {
	respCh := make(chan wire.Message, 16)
	ep.mu.Lock()
	if ep.closed {
		ep.mu.Unlock()
		return nil, ErrClosed
	}
	ep.tx[id] = respCh
	ep.mu.Unlock()
	return respCh, nil
}

func (ep *Endpoint) unregisterTx(id uint64) {
	ep.mu.Lock()
	delete(ep.tx, id)
	ep.mu.Unlock()
}

// runTransfer drives the shared window / selective-NACK engine over an
// already-announced transfer: blast each window, wait for the ack (an
// empty NACK), resupply whatever selective NACKs name. Both the
// offer/accept path (SendBulk) and the eager path (SendBulkEager) end
// up here, so fault recovery is identical for the two.
func (ep *Endpoint) runTransfer(to string, id uint64, data []byte, chunk, window int, respCh chan wire.Message) error {
	offer := &wire.BulkOffer{TransferID: id, TotalLen: uint64(len(data)), ChunkSize: uint32(chunk)}
	npkts := 0
	if len(data) > 0 {
		npkts = (len(data) + chunk - 1) / chunk
	}
	blast := func(seqs []uint32) error {
		for _, s := range seqs {
			lo := int(s) * chunk
			hi := lo + chunk
			if hi > len(data) {
				hi = len(data)
			}
			if err := ep.sendData(to, id, s, data[lo:hi]); err != nil {
				return fmt.Errorf("bulk: blasting packet %d of transfer %d: %w", s, id, err)
			}
		}
		return nil
	}

	if npkts == 0 {
		// Empty region: nothing to blast, just await the receiver's Done.
		return ep.awaitDone(to, id, offer, respCh, blast)
	}

	for base := 0; base < npkts; base += window {
		end := base + window
		if end > npkts {
			end = npkts
		}
		winSeqs := make([]uint32, 0, end-base)
		for s := base; s < end; s++ {
			winSeqs = append(winSeqs, uint32(s))
		}
		if err := blast(winSeqs); err != nil {
			return err
		}
		// Per-window stall budget: a selective NACK naming missing
		// packets is progress (the receiver is alive and converging) and
		// resets it; only consecutive silent timeouts can exhaust it.
		budget := ep.newBudget(ep.cfg.Window)
	await:
		for {
			wait, ok := budget.Next()
			if !ok {
				ep.retryExhausted.Add(1)
				return fmt.Errorf("bulk: transfer %d window at %d: %w", id, base, ErrTimeout)
			}
			timerC, timer := sim.NewTimer(ep.cfg.Clock, wait)
			select {
			case msg := <-respCh:
				timer.Stop()
				//vet:ignore wire-exhaustiveness — narrow correlation switch: routeTxResponse feeds only BulkNack/BulkDone
				switch m := msg.(type) {
				case *wire.BulkDone:
					if m.Status != wire.StatusOK {
						return fmt.Errorf("%w: %v", ErrRejected, m.Status)
					}
					return nil // receiver has everything
				case *wire.BulkNack:
					if len(m.Missing) == 0 {
						break await // window acknowledged
					}
					budget.Reset()
					resend := m.Missing
					if ep.cfg.RetransmitFullWindow {
						resend = winSeqs // ablation: no selective recovery
					}
					ep.retransmits.Add(int64(len(resend)))
					if err := blast(resend); err != nil {
						return err
					}
				}
			case <-timerC:
				ep.retransmits.Add(int64(len(winSeqs)))
				if err := blast(winSeqs); err != nil {
					return err
				}
			case <-ep.stop:
				timer.Stop()
				return ErrClosed
			}
		}
	}
	// All windows acked; the final window's response is BulkDone, which
	// returns above. Reaching here means the ack raced the Done — wait
	// for it briefly, tolerating loss.
	return ep.awaitDone(to, id, offer, respCh, blast)
}

// awaitDone waits for the receiver's BulkDone after every window has
// been acknowledged. Acks can arrive early when duplicates trigger
// re-acknowledgements, so the receiver may still be missing packets:
// NACKs arriving here are served with retransmissions rather than
// ignored.
func (ep *Endpoint) awaitDone(to string, id uint64, offer *wire.BulkOffer, respCh chan wire.Message, blast func([]uint32) error) error {
	budget := ep.newBudget(ep.cfg.Window)
	for {
		wait, ok := budget.Next()
		if !ok {
			ep.retryExhausted.Add(1)
			return fmt.Errorf("bulk: transfer %d: completion unacknowledged: %w", id, ErrTimeout)
		}
		timerC, timer := sim.NewTimer(ep.cfg.Clock, wait)
		select {
		case msg := <-respCh:
			timer.Stop()
			//vet:ignore wire-exhaustiveness — narrow correlation switch: routeTxResponse feeds only BulkNack/BulkDone
			switch m := msg.(type) {
			case *wire.BulkDone:
				if m.Status != wire.StatusOK {
					return fmt.Errorf("%w: %v", ErrRejected, m.Status)
				}
				return nil
			case *wire.BulkNack:
				if len(m.Missing) > 0 {
					// The receiver still lacks packets (stale acks let
					// us run ahead); resupply them. That is progress:
					// reset the stall budget.
					budget.Reset()
					ep.retransmits.Add(int64(len(m.Missing)))
					if err := blast(m.Missing); err != nil {
						return err
					}
				}
				// Empty nack: stale window ack; drain it.
			}
		case <-timerC:
			// Re-offer: a completed receiver answers duplicates with Done.
			if err := ep.Notify(to, offer); err != nil {
				return err
			}
		case <-ep.stop:
			timer.Stop()
			return ErrClosed
		}
	}
}

// ExpectBulkInto pre-registers transfer (from, id) with dst as its
// destination: packets assemble directly into dst, no transfer-sized
// intermediate buffer is ever allocated. It is the receive half of the
// eager fast path — the requester itself picks the transfer id, calls
// ExpectBulkInto BEFORE announcing the id to the sender, and then waits
// with RecvBulkInto(dst, ...), so eager data can never race ahead of
// the receiver's state. The returned window is the receive window the
// caller must advertise (the sender paces its blasts by it). chunk is
// the packet payload size the caller will advertise alongside.
// dodo:adopts(dst)
func (ep *Endpoint) ExpectBulkInto(dst []byte, from string, id uint64, chunk int) (window int, err error) {
	if chunk <= 0 {
		return 0, fmt.Errorf("bulk: expecting transfer %d: invalid chunk %d", id, chunk)
	}
	if len(dst) > MaxTransfer {
		return 0, fmt.Errorf("bulk: transfer of %d bytes exceeds MaxTransfer", len(dst))
	}
	key := rxKey{from: from, id: id}
	ep.mu.Lock()
	if ep.closed {
		ep.mu.Unlock()
		return 0, ErrClosed
	}
	if _, ok := ep.rx[key]; ok {
		ep.mu.Unlock()
		return 0, fmt.Errorf("bulk: transfer %d from %s already registered", id, from)
	}
	rx := newRxTransfer(ep, from, id)
	window = ep.cfg.RecvWindow
	ep.rx[key] = rx
	ep.mu.Unlock()

	rx.mu.Lock()
	rx.buf = dst
	rx.external = true
	rx.chunk = chunk
	rx.npkts = (len(dst) + chunk - 1) / chunk
	rx.got = make([]bool, rx.npkts)
	rx.window = window
	rx.sized = true
	if rx.npkts == 0 {
		rx.completeLocked()
	}
	// The NACK timer is not armed yet: it starts with the first packet
	// (or the sender's re-offer). Arming it here would fire NACKs for a
	// transfer whose announcement has not even been sent.
	rx.mu.Unlock()
	return window, nil
}

// CancelExpect abandons a transfer pre-registered with ExpectBulkInto
// when the responder answered on a different path (inline payload, an
// error, or a legacy peer that ignored the eager fields) — no packets
// will ever arrive under id. No tombstone is left: requester-chosen ids
// are never reused.
func (ep *Endpoint) CancelExpect(from string, id uint64) {
	key := rxKey{from: from, id: id}
	ep.mu.Lock()
	rx := ep.rx[key]
	delete(ep.rx, key)
	ep.mu.Unlock()
	if rx != nil {
		rx.fail(errExpectCanceled)
	}
}

var errExpectCanceled = fmt.Errorf("bulk: expected transfer canceled")

// RecvBulk waits for the peer at from to complete transfer id and returns
// the assembled bytes. It may be called before or after the first packet
// arrives.
func (ep *Endpoint) RecvBulk(from string, id uint64, timeout time.Duration) ([]byte, error) {
	buf, external, err := ep.recvBulk(from, id, timeout)
	if err != nil {
		return nil, err
	}
	if external {
		// Assembled into caller-owned memory (ExpectBulkInto); hand back
		// a private copy to honor RecvBulk's ownership contract.
		return append([]byte(nil), buf...), nil
	}
	return buf, nil
}

// RecvBulkInto waits for transfer (from, id) and leaves the bytes in
// dst, returning how many were assembled. When the transfer was
// pre-registered with ExpectBulkInto(dst, ...), the bytes are already
// in place and no copy happens at all; an offer-driven transfer is
// assembled in its own buffer and copied into dst once — still one copy
// fewer than RecvBulk-then-copy.
func (ep *Endpoint) RecvBulkInto(dst []byte, from string, id uint64, timeout time.Duration) (int, error) {
	buf, external, err := ep.recvBulk(from, id, timeout)
	if err != nil {
		return 0, err
	}
	if external {
		return len(buf), nil
	}
	if len(buf) > len(dst) {
		return 0, fmt.Errorf("bulk: transfer %d from %s: %d bytes exceed %d-byte destination", id, from, len(buf), len(dst))
	}
	return copy(dst, buf), nil
}

func (ep *Endpoint) recvBulk(from string, id uint64, timeout time.Duration) (buf []byte, external bool, err error) {
	key := rxKey{from: from, id: id}
	ep.mu.Lock()
	if ep.closed {
		ep.mu.Unlock()
		return nil, false, ErrClosed
	}
	rx, ok := ep.rx[key]
	if !ok {
		rx = newRxTransfer(ep, from, id)
		ep.rx[key] = rx
	}
	ep.mu.Unlock()

	var timeoutCh <-chan time.Time
	if timeout > 0 {
		c, timer := sim.NewTimer(ep.cfg.Clock, timeout)
		defer timer.Stop()
		timeoutCh = c
	}
	select {
	case <-rx.done:
	case <-timeoutCh:
		ep.mu.Lock()
		delete(ep.rx, key)
		ep.mu.Unlock()
		rx.stopTimer()
		return nil, false, fmt.Errorf("bulk: receiving transfer %d from %s: %w", id, from, ErrTimeout)
	case <-ep.stop:
		return nil, false, ErrClosed
	}
	rx.mu.Lock()
	err = rx.err
	buf = rx.buf
	external = rx.external
	consumed := err == nil && buf == nil
	// Leave a tombstone: if the sender's copy of our BulkDone was lost,
	// its re-offer or retransmissions must be answered with Done again
	// rather than resurrecting an empty transfer. Transfer ids are never
	// reused — restartable senders seed an incarnation-unique id base
	// (SeedTransferIDs) — so the tombstone cannot mask a future transfer.
	rx.buf = nil
	rx.mu.Unlock()
	sim.AfterFunc(ep.cfg.Clock, tombstoneTTL, func() {
		ep.mu.Lock()
		if ep.rx[key] == rx {
			delete(ep.rx, key)
		}
		ep.mu.Unlock()
	})
	if err != nil {
		return nil, false, err
	}
	if consumed {
		// A concurrent receive for the same transfer (a duplicated
		// announcement) took the bytes first.
		return nil, false, fmt.Errorf("bulk: transfer %d from %s: %w", id, from, ErrConsumed)
	}
	return buf, external, nil
}

// tombstoneTTL is how long a consumed transfer's completion record
// lingers to answer the sender's loss-recovery duplicates.
const tombstoneTTL = 30 * time.Second

// rxTransfer is receive-side per-transfer state.
type rxTransfer struct {
	// dodo:unguarded — immutable after construction
	ep *Endpoint
	// dodo:unguarded — immutable after construction
	from string
	// dodo:unguarded — immutable after construction
	id uint64

	mu locks.Mutex
	// dodo:guardedby mu
	buf []byte
	// external marks buf as caller-owned (installed by ExpectBulkInto):
	// the bytes are assembled in place and must not be handed out as an
	// owned buffer.
	// dodo:guardedby mu
	external bool
	// dodo:guardedby mu
	got []bool
	// dodo:guardedby mu
	gotCount int
	// dodo:guardedby mu
	npkts int
	// dodo:guardedby mu
	chunk int
	// dodo:guardedby mu
	window int
	// dodo:guardedby mu
	winBase int
	// dodo:guardedby mu
	sized bool
	// dodo:guardedby mu
	complete bool
	// dodo:guardedby mu
	err error
	// dodo:unguarded — set at construction; closed once under mu
	done chan struct{}
	// dodo:guardedby mu
	timer sim.StopTimer
}

func newRxTransfer(ep *Endpoint, from string, id uint64) *rxTransfer {
	rx := &rxTransfer{ep: ep, from: from, id: id, done: make(chan struct{})}
	rx.mu.SetRank(locks.RankBulkTransfer)
	return rx
}

func (rx *rxTransfer) fail(err error) {
	rx.mu.Lock()
	defer rx.mu.Unlock()
	if rx.complete {
		return
	}
	rx.complete = true
	rx.err = err
	if rx.timer != nil {
		rx.timer.Stop()
	}
	close(rx.done)
}

func (rx *rxTransfer) stopTimer() {
	rx.mu.Lock()
	defer rx.mu.Unlock()
	if rx.timer != nil {
		rx.timer.Stop()
	}
}

// handleOffer processes a BulkOffer: size (or re-acknowledge) the
// transfer and answer with our advertised window.
func (ep *Endpoint) handleOffer(from string, seq uint32, m *wire.BulkOffer) {
	key := rxKey{from: from, id: m.TransferID}
	ep.mu.Lock()
	rx, ok := ep.rx[key]
	if !ok {
		rx = newRxTransfer(ep, from, m.TransferID)
		ep.rx[key] = rx
	}
	window := ep.cfg.RecvWindow
	ep.mu.Unlock()

	status := wire.StatusOK
	rx.mu.Lock()
	if !rx.sized && !rx.complete {
		if m.TotalLen > MaxTransfer || m.ChunkSize == 0 {
			status = wire.StatusInvalid
		} else {
			rx.buf = make([]byte, m.TotalLen)
			rx.chunk = int(m.ChunkSize)
			rx.npkts = int((m.TotalLen + uint64(m.ChunkSize) - 1) / uint64(m.ChunkSize))
			rx.got = make([]bool, rx.npkts)
			rx.window = window
			rx.sized = true
			if rx.npkts == 0 {
				// Empty transfer: complete immediately.
				rx.completeLocked()
			} else {
				rx.resetTimerLocked()
			}
		}
	}
	completed := rx.complete && rx.err == nil
	rx.mu.Unlock()

	frame, err := wire.Encode(seq, &wire.BulkAccept{TransferID: m.TransferID, Window: uint32(window), Status: status})
	if err == nil {
		_ = ep.tr.Send(from, frame)
	}
	if completed {
		_ = ep.Notify(from, &wire.BulkDone{TransferID: m.TransferID, Status: wire.StatusOK})
	}
}

// handleData processes one BulkData packet. payload is BORROWED — it
// aliases the receive loop's frame buffer and is only valid for the
// duration of the call, so the bytes are copied into the assembling
// buffer synchronously (the only copy the receive path makes).
func (ep *Endpoint) handleData(from string, id uint64, seq uint32, payload []byte) {
	key := rxKey{from: from, id: id}
	ep.mu.Lock()
	rx, ok := ep.rx[key]
	ep.mu.Unlock()
	if !ok {
		// Stale packet for a consumed transfer: tell the sender to stop.
		_ = ep.Notify(from, &wire.BulkDone{TransferID: id, Status: wire.StatusOK})
		return
	}
	rx.mu.Lock()
	if !rx.sized {
		// Data raced ahead of the (lost) offer; the sender's offer
		// retry will size us. Drop the packet.
		rx.mu.Unlock()
		return
	}
	if rx.complete {
		rx.mu.Unlock()
		_ = ep.Notify(from, &wire.BulkDone{TransferID: id, Status: wire.StatusOK})
		return
	}
	s := int(seq)
	if s >= rx.npkts {
		rx.mu.Unlock()
		return
	}
	if rx.got[s] {
		// Duplicate: the sender is likely re-blasting because our window
		// ack was lost. Re-acknowledge so it can make progress.
		ep.dupsDropped.Add(1)
		rx.mu.Unlock()
		_ = ep.Notify(from, &wire.BulkNack{TransferID: id, Missing: nil})
		return
	}
	lo := s * rx.chunk
	want := rx.chunk
	if lo+want > len(rx.buf) {
		want = len(rx.buf) - lo
	}
	if len(payload) != want {
		rx.mu.Unlock()
		return // corrupt chunk; NACK timer will recover it
	}
	copy(rx.buf[lo:], payload)
	rx.got[s] = true
	rx.gotCount++
	rx.resetTimerLocked()

	// Advance past every now-complete window; ack each advance.
	acked := false
	for rx.winBase < rx.npkts {
		end := rx.winBase + rx.window
		if end > rx.npkts {
			end = rx.npkts
		}
		full := true
		for i := rx.winBase; i < end; i++ {
			if !rx.got[i] {
				full = false
				break
			}
		}
		if !full {
			break
		}
		rx.winBase = end
		acked = true
	}
	if rx.gotCount == rx.npkts {
		rx.completeLocked()
		rx.mu.Unlock()
		_ = ep.Notify(from, &wire.BulkDone{TransferID: id, Status: wire.StatusOK})
		return
	}
	rx.mu.Unlock()
	if acked {
		_ = ep.Notify(from, &wire.BulkNack{TransferID: id, Missing: nil})
	}
}

// completeLocked marks the transfer done. Caller holds rx.mu.
func (rx *rxTransfer) completeLocked() {
	if rx.complete {
		return
	}
	rx.complete = true
	if rx.timer != nil {
		rx.timer.Stop()
	}
	close(rx.done)
}

// resetTimerLocked (re)arms the selective-NACK timer. Caller holds rx.mu.
func (rx *rxTransfer) resetTimerLocked() {
	if rx.timer != nil {
		rx.timer.Stop()
	}
	rx.timer = sim.AfterFunc(rx.ep.cfg.Clock, rx.ep.cfg.NackDelay, rx.nackTimeout)
}

// nackTimeout fires when the current window stalls: identify the missing
// packets by sequence number and send the selective NACK (§4.4).
func (rx *rxTransfer) nackTimeout() {
	rx.mu.Lock()
	if rx.complete || !rx.sized {
		rx.mu.Unlock()
		return
	}
	end := rx.winBase + rx.window
	if end > rx.npkts {
		end = rx.npkts
	}
	var missing []uint32
	for i := rx.winBase; i < end; i++ {
		if !rx.got[i] {
			missing = append(missing, uint32(i))
		}
	}
	rx.resetTimerLocked()
	from, id := rx.from, rx.id
	rx.mu.Unlock()
	if len(missing) > 0 {
		rx.ep.nacksSent.Add(1)
		_ = rx.ep.Notify(from, &wire.BulkNack{TransferID: id, Missing: missing})
	}
}
