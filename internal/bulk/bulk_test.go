package bulk

import (
	"bytes"
	"errors"
	"math/rand"
	"sync"
	"testing"
	"testing/quick"
	"time"

	"dodo/internal/simnet"
	"dodo/internal/transport"
	"dodo/internal/usocket"
	"dodo/internal/wire"
)

// fastCfg keeps protocol timers short for tests.
func fastCfg() Config {
	return Config{
		CallTimeout:     150 * time.Millisecond,
		CallRetries:     6,
		WindowTimeout:   80 * time.Millisecond,
		NackDelay:       30 * time.Millisecond,
		RecvWindow:      16,
		TransferRetries: 10,
	}
}

// endpointPair builds two endpoints on a fresh in-memory network.
func endpointPair(t *testing.T, opts ...transport.NetworkOption) (*Endpoint, *Endpoint) {
	t.Helper()
	n := transport.NewNetwork(opts...)
	a := NewEndpoint(n.Host("a"), fastCfg(), nil)
	b := NewEndpoint(n.Host("b"), fastCfg(), nil)
	t.Cleanup(func() { a.Close(); b.Close() })
	return a, b
}

func echoHandler(from string, msg wire.Message) wire.Message {
	switch m := msg.(type) {
	case *wire.KeepAlive:
		return &wire.KeepAliveAck{ClientID: m.ClientID}
	case *wire.ReadReq:
		return &wire.DataResp{Status: wire.StatusOK, Count: m.Length, TransferID: 1}
	}
	return nil
}

func TestCallResponse(t *testing.T) {
	n := transport.NewNetwork()
	srv := NewEndpoint(n.Host("srv"), fastCfg(), echoHandler)
	cli := NewEndpoint(n.Host("cli"), fastCfg(), nil)
	t.Cleanup(func() { srv.Close(); cli.Close() })

	resp, err := cli.Call("srv", &wire.KeepAlive{ClientID: 9})
	if err != nil {
		t.Fatalf("Call: %v", err)
	}
	ack, ok := resp.(*wire.KeepAliveAck)
	if !ok || ack.ClientID != 9 {
		t.Fatalf("Call response = %+v, want KeepAliveAck{9}", resp)
	}
}

func TestCallRetriesThroughLoss(t *testing.T) {
	// 40% frame loss: Call must still succeed via retransmission.
	n := transport.NewNetwork(WithTestFaults(simnet.Faults{LossRate: 0.4, Seed: 3}))
	srv := NewEndpoint(n.Host("srv"), fastCfg(), echoHandler)
	cli := NewEndpoint(n.Host("cli"), fastCfg(), nil)
	t.Cleanup(func() { srv.Close(); cli.Close() })

	for i := 0; i < 10; i++ {
		resp, err := cli.Call("srv", &wire.KeepAlive{ClientID: uint32(i)})
		if err != nil {
			t.Fatalf("Call %d through lossy net: %v", i, err)
		}
		if ack := resp.(*wire.KeepAliveAck); ack.ClientID != uint32(i) {
			t.Fatalf("Call %d: mismatched ack %d", i, ack.ClientID)
		}
	}
}

// WithTestFaults re-exports transport.WithFaults for brevity.
func WithTestFaults(f simnet.Faults) transport.NetworkOption { return transport.WithFaults(f) }

func TestCallTimesOutAgainstDeadPeer(t *testing.T) {
	n := transport.NewNetwork()
	cli := NewEndpoint(n.Host("cli"), fastCfg(), nil)
	n.Host("dead")      // exists on the network,
	n.Partition("dead") // but every frame to it vanishes
	t.Cleanup(func() { cli.Close() })
	start := time.Now()
	_, err := cli.Call("dead", &wire.KeepAlive{ClientID: 1})
	if err == nil {
		t.Fatal("Call to dead peer succeeded")
	}
	if time.Since(start) < 150*time.Millisecond {
		t.Fatal("Call gave up before exhausting retries")
	}
}

func TestNotifyDoesNotWait(t *testing.T) {
	a, b := endpointPair(t)
	start := time.Now()
	if err := a.Notify(b.LocalAddr(), &wire.KeepAlive{ClientID: 1}); err != nil {
		t.Fatalf("Notify: %v", err)
	}
	if time.Since(start) > 50*time.Millisecond {
		t.Fatal("Notify blocked")
	}
}

func TestCallAfterClose(t *testing.T) {
	a, b := endpointPair(t)
	a.Close()
	if _, err := a.Call(b.LocalAddr(), &wire.KeepAlive{}); !errors.Is(err, ErrClosed) {
		t.Fatalf("Call after close = %v, want ErrClosed", err)
	}
	if err := a.Notify(b.LocalAddr(), &wire.KeepAlive{}); !errors.Is(err, ErrClosed) {
		t.Fatalf("Notify after close = %v, want ErrClosed", err)
	}
}

func sendAndRecv(t *testing.T, a, b *Endpoint, data []byte) []byte {
	t.Helper()
	id := a.NextTransferID()
	var (
		wg      sync.WaitGroup
		got     []byte
		recvErr error
	)
	wg.Add(1)
	go func() {
		defer wg.Done()
		got, recvErr = b.RecvBulk(a.LocalAddr(), id, 30*time.Second)
	}()
	if err := a.SendBulk(b.LocalAddr(), id, data); err != nil {
		t.Fatalf("SendBulk(%d bytes): %v", len(data), err)
	}
	wg.Wait()
	if recvErr != nil {
		t.Fatalf("RecvBulk: %v", recvErr)
	}
	return got
}

func TestBulkTransferSizes(t *testing.T) {
	a, b := endpointPair(t)
	rng := rand.New(rand.NewSource(1))
	for _, size := range []int{0, 1, 100, 1400, 1500, 8 << 10, 64 << 10, 300 << 10} {
		data := make([]byte, size)
		rng.Read(data)
		got := sendAndRecv(t, a, b, data)
		if !bytes.Equal(got, data) {
			t.Fatalf("transfer of %d bytes corrupted (got %d bytes)", size, len(got))
		}
	}
}

func TestBulkTransferOverUNetMTU(t *testing.T) {
	// Over U-Net the chunk size is ~1.4 KB, so a 128 KB region needs ~90
	// packets and multiple windows — the paper's dmine request size.
	seg := usocket.NewSegment()
	sa, err := seg.Socket(64, 256)
	if err != nil {
		t.Fatal(err)
	}
	sb, err := seg.Socket(64, 256)
	if err != nil {
		t.Fatal(err)
	}
	ma, _ := usocket.Aton("00:00:00:00:00:01")
	mb, _ := usocket.Aton("00:00:00:00:00:02")
	if err := sa.Bind(ma); err != nil {
		t.Fatal(err)
	}
	if err := sb.Bind(mb); err != nil {
		t.Fatal(err)
	}
	ta, err := usocket.NewTransport(sa)
	if err != nil {
		t.Fatal(err)
	}
	tb, err := usocket.NewTransport(sb)
	if err != nil {
		t.Fatal(err)
	}
	a := NewEndpoint(ta, fastCfg(), nil)
	b := NewEndpoint(tb, fastCfg(), nil)
	t.Cleanup(func() { a.Close(); b.Close() })

	data := make([]byte, 128<<10)
	rand.New(rand.NewSource(2)).Read(data)
	got := sendAndRecv(t, a, b, data)
	if !bytes.Equal(got, data) {
		t.Fatal("128KB transfer over U-Net corrupted")
	}
}

func TestBulkTransferThroughLoss(t *testing.T) {
	n := transport.NewNetwork(
		transport.WithMTU(1500),
		transport.WithFaults(simnet.Faults{LossRate: 0.10, Seed: 11}),
	)
	a := NewEndpoint(n.Host("a"), fastCfg(), nil)
	b := NewEndpoint(n.Host("b"), fastCfg(), nil)
	t.Cleanup(func() { a.Close(); b.Close() })

	data := make([]byte, 100<<10)
	rand.New(rand.NewSource(3)).Read(data)
	got := sendAndRecv(t, a, b, data)
	if !bytes.Equal(got, data) {
		t.Fatal("transfer through 10% loss corrupted")
	}
	_, nacks, _ := b.Stats()
	retrans, _, _ := a.Stats()
	if retrans == 0 && nacks == 0 {
		t.Error("expected recovery activity (retransmits or NACKs) under 10% loss")
	}
}

func TestBulkTransferThroughDuplication(t *testing.T) {
	n := transport.NewNetwork(
		transport.WithMTU(1500),
		transport.WithFaults(simnet.Faults{DupRate: 0.3, Seed: 5}),
	)
	a := NewEndpoint(n.Host("a"), fastCfg(), nil)
	b := NewEndpoint(n.Host("b"), fastCfg(), nil)
	t.Cleanup(func() { a.Close(); b.Close() })

	data := make([]byte, 50<<10)
	rand.New(rand.NewSource(4)).Read(data)
	got := sendAndRecv(t, a, b, data)
	if !bytes.Equal(got, data) {
		t.Fatal("transfer through duplication corrupted")
	}
}

func TestBulkTransferThroughReordering(t *testing.T) {
	n := transport.NewNetwork(
		transport.WithMTU(1500),
		transport.WithFaults(simnet.Faults{ReorderRate: 0.2, ReorderDelay: 10 * time.Millisecond, Seed: 6}),
	)
	a := NewEndpoint(n.Host("a"), fastCfg(), nil)
	b := NewEndpoint(n.Host("b"), fastCfg(), nil)
	t.Cleanup(func() { a.Close(); b.Close() })

	data := make([]byte, 50<<10)
	rand.New(rand.NewSource(7)).Read(data)
	got := sendAndRecv(t, a, b, data)
	if !bytes.Equal(got, data) {
		t.Fatal("transfer through reordering corrupted")
	}
}

func TestRecvBulkTimeout(t *testing.T) {
	a, b := endpointPair(t)
	_, err := b.RecvBulk(a.LocalAddr(), 999, 100*time.Millisecond)
	if !errors.Is(err, ErrTimeout) {
		t.Fatalf("RecvBulk with no sender = %v, want ErrTimeout", err)
	}
}

func TestSendBulkToDeadPeer(t *testing.T) {
	n := transport.NewNetwork()
	a := NewEndpoint(n.Host("a"), fastCfg(), nil)
	n.Host("dead").Close()
	t.Cleanup(func() { a.Close() })
	err := a.SendBulk("dead", 1, []byte("data"))
	if err == nil {
		t.Fatal("SendBulk to dead peer succeeded")
	}
}

func TestSendBulkRejectsOversize(t *testing.T) {
	a, b := endpointPair(t)
	// Don't allocate >1GB; fake it with a header-level check using a
	// slice header trick is unsafe, so just over-advertise via length.
	err := a.SendBulk(b.LocalAddr(), 1, make([]byte, 0))
	if err != nil {
		// zero-byte transfer must work; tested elsewhere. Here ensure no error.
		t.Fatalf("empty SendBulk: %v", err)
	}
}

func TestConcurrentTransfers(t *testing.T) {
	a, b := endpointPair(t)
	const transfers = 8
	rng := rand.New(rand.NewSource(8))
	datas := make([][]byte, transfers)
	ids := make([]uint64, transfers)
	for i := range datas {
		datas[i] = make([]byte, 20<<10+i*1000)
		rng.Read(datas[i])
		ids[i] = a.NextTransferID()
	}
	var wg sync.WaitGroup
	errs := make([]error, 2*transfers)
	results := make([][]byte, transfers)
	for i := 0; i < transfers; i++ {
		i := i
		wg.Add(2)
		go func() {
			defer wg.Done()
			errs[i] = a.SendBulk(b.LocalAddr(), ids[i], datas[i])
		}()
		go func() {
			defer wg.Done()
			results[i], errs[transfers+i] = b.RecvBulk(a.LocalAddr(), ids[i], 30*time.Second)
		}()
	}
	wg.Wait()
	for i, err := range errs {
		if err != nil {
			t.Fatalf("transfer op %d: %v", i, err)
		}
	}
	for i := range results {
		if !bytes.Equal(results[i], datas[i]) {
			t.Fatalf("concurrent transfer %d corrupted", i)
		}
	}
}

func TestTransferIDsAreDistinctAcrossSenders(t *testing.T) {
	// Two senders using the same numeric id must not collide at the
	// receiver: rx state is keyed by (sender, id).
	n := transport.NewNetwork()
	a := NewEndpoint(n.Host("a"), fastCfg(), nil)
	c := NewEndpoint(n.Host("c"), fastCfg(), nil)
	b := NewEndpoint(n.Host("b"), fastCfg(), nil)
	t.Cleanup(func() { a.Close(); b.Close(); c.Close() })

	da := bytes.Repeat([]byte{'A'}, 5000)
	dc := bytes.Repeat([]byte{'C'}, 7000)
	var wg sync.WaitGroup
	var ra, rc []byte
	var ea, ec error
	wg.Add(2)
	go func() { defer wg.Done(); ra, ea = b.RecvBulk("a", 42, 10*time.Second) }()
	go func() { defer wg.Done(); rc, ec = b.RecvBulk("c", 42, 10*time.Second) }()
	if err := a.SendBulk("b", 42, da); err != nil {
		t.Fatal(err)
	}
	if err := c.SendBulk("b", 42, dc); err != nil {
		t.Fatal(err)
	}
	wg.Wait()
	if ea != nil || ec != nil {
		t.Fatalf("recv errors: %v %v", ea, ec)
	}
	if !bytes.Equal(ra, da) || !bytes.Equal(rc, dc) {
		t.Fatal("same-id transfers from different senders collided")
	}
}

func TestHandlerRunsConcurrentlyWithNestedCall(t *testing.T) {
	// srv's handler for ReadReq issues a nested Call back to a second
	// server; this deadlocks if handlers run on the receive loop.
	n := transport.NewNetwork()
	backend := NewEndpoint(n.Host("backend"), fastCfg(), echoHandler)
	var front *Endpoint
	front = NewEndpoint(n.Host("front"), fastCfg(), func(from string, msg wire.Message) wire.Message {
		if _, ok := msg.(*wire.ReadReq); ok {
			resp, err := front.Call("backend", &wire.KeepAlive{ClientID: 5})
			if err != nil {
				return &wire.DataResp{Status: wire.StatusInvalid}
			}
			return &wire.DataResp{Status: wire.StatusOK, Count: uint64(resp.(*wire.KeepAliveAck).ClientID)}
		}
		return nil
	})
	cli := NewEndpoint(n.Host("cli"), fastCfg(), nil)
	t.Cleanup(func() { backend.Close(); front.Close(); cli.Close() })

	resp, err := cli.Call("front", &wire.ReadReq{RegionID: 1, Length: 10})
	if err != nil {
		t.Fatalf("Call: %v", err)
	}
	dr := resp.(*wire.DataResp)
	if dr.Status != wire.StatusOK || dr.Count != 5 {
		t.Fatalf("nested call result = %+v", dr)
	}
}

func TestPropertyBulkRoundTripRandomSizes(t *testing.T) {
	a, b := endpointPair(t)
	f := func(seed int64, size uint32) bool {
		size %= 64 << 10
		data := make([]byte, size)
		rand.New(rand.NewSource(seed)).Read(data)
		id := a.NextTransferID()
		var got []byte
		var recvErr error
		done := make(chan struct{})
		go func() {
			got, recvErr = b.RecvBulk(a.LocalAddr(), id, 30*time.Second)
			close(done)
		}()
		if err := a.SendBulk(b.LocalAddr(), id, data); err != nil {
			return false
		}
		<-done
		return recvErr == nil && bytes.Equal(got, data)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Fatal(err)
	}
}

func BenchmarkBulkTransfer64KBMem(b *testing.B) {
	n := transport.NewNetwork(transport.WithMTU(1500))
	a := NewEndpoint(n.Host("a"), fastCfg(), nil)
	dst := NewEndpoint(n.Host("b"), fastCfg(), nil)
	defer a.Close()
	defer dst.Close()
	data := make([]byte, 64<<10)
	b.SetBytes(64 << 10)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		id := a.NextTransferID()
		done := make(chan error, 1)
		go func() {
			_, err := dst.RecvBulk("a", id, 30*time.Second)
			done <- err
		}()
		if err := a.SendBulk("b", id, data); err != nil {
			b.Fatal(err)
		}
		if err := <-done; err != nil {
			b.Fatal(err)
		}
	}
}

// TestTransferIDReuseAcrossRestart pins down the restarted-sender id
// collision: a receiver keys transfer state by (address, id), so a new
// endpoint at an old address that restarts its id counter collides with
// the predecessor's tombstones, and its transfers are answered from
// stale state instead of delivering bytes. SeedTransferIDs is the cure.
func TestTransferIDReuseAcrossRestart(t *testing.T) {
	n := transport.NewNetwork()
	a := NewEndpoint(n.Host("a"), fastCfg(), nil)
	t.Cleanup(func() { a.Close() })

	// Incarnation 1 delivers transfer 1 and the receiver consumes it.
	b1 := NewEndpoint(n.Host("b"), fastCfg(), nil)
	id1 := b1.NextTransferID()
	old := bytes.Repeat([]byte{0xAA}, 4000)
	if err := b1.SendBulk("a", id1, old); err != nil {
		t.Fatalf("incarnation 1 SendBulk: %v", err)
	}
	if got, err := a.RecvBulk("b", id1, 5*time.Second); err != nil || !bytes.Equal(got, old) {
		t.Fatalf("incarnation 1 RecvBulk: %v", err)
	}
	b1.Close()

	// Incarnation 2 restarts the counter: it reuses id 1, the receiver's
	// tombstone confirms the transfer without taking the bytes, and the
	// delivery is silently lost.
	b2 := NewEndpoint(n.Host("b"), fastCfg(), nil)
	if id := b2.NextTransferID(); id != id1 {
		t.Fatalf("unseeded restart allocated id %d, want reuse of %d", id, id1)
	}
	fresh := bytes.Repeat([]byte{0xBB}, 4000)
	if err := b2.SendBulk("a", id1, fresh); err != nil {
		t.Fatalf("incarnation 2 SendBulk: %v", err)
	}
	if _, err := a.RecvBulk("b", id1, 5*time.Second); !errors.Is(err, ErrConsumed) {
		t.Fatalf("reused id RecvBulk error = %v, want ErrConsumed", err)
	}
	b2.Close()

	// Incarnation 3 seeds an epoch-scoped base: ids stop colliding and
	// transfers deliver again.
	b3 := NewEndpoint(n.Host("b"), fastCfg(), nil)
	t.Cleanup(func() { b3.Close() })
	b3.SeedTransferIDs(2 << 32)
	id3 := b3.NextTransferID()
	if id3 == id1 {
		t.Fatalf("seeded incarnation reused id %d", id1)
	}
	if err := b3.SendBulk("a", id3, fresh); err != nil {
		t.Fatalf("incarnation 3 SendBulk: %v", err)
	}
	got, err := a.RecvBulk("b", id3, 5*time.Second)
	if err != nil || !bytes.Equal(got, fresh) {
		t.Fatalf("incarnation 3 RecvBulk: %v", err)
	}
}
