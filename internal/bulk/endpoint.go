// Package bulk implements Dodo's messaging layer: request/response
// correlation for the control protocol, and the bulk data-transfer
// protocol of §4.4 for region payloads.
//
// The bulk protocol is the paper's: a region that does not fit in one
// packet is partitioned into sequenced chunks; the sender negotiates the
// buffer space available at the receiver (BulkOffer/BulkAccept), blasts
// as many packets as fit in that window, and waits; the receiver waits
// for the full window or a timeout, then reports the missing sequence
// numbers with a selective NACK (an empty NACK acknowledges the window).
// Duplicate packets are dropped, as the paper's extension note suggests.
package bulk

import (
	"errors"
	"fmt"
	"math/rand"
	"sync"
	"sync/atomic"
	"time"

	"dodo/internal/locks"
	"dodo/internal/retry"
	"dodo/internal/sim"
	"dodo/internal/transport"
	"dodo/internal/wire"
)

// Errors returned by the endpoint.
var (
	ErrClosed   = errors.New("bulk: endpoint closed")
	ErrTimeout  = errors.New("bulk: operation timed out")
	ErrRejected = errors.New("bulk: transfer rejected by receiver")
	// ErrConsumed reports a RecvBulk for a transfer whose bytes were
	// already handed to an earlier caller. A duplicated announcement
	// must not be confirmed as if it delivered data: the original
	// handleWrite race let the duplicate reply success with zero bytes
	// while the real apply was still pending.
	ErrConsumed = errors.New("bulk: transfer already consumed")
)

// Config tunes an endpoint. Zero fields take the listed defaults.
type Config struct {
	// CallTimeout is the wait per request attempt (default 500ms).
	CallTimeout time.Duration
	// CallRetries is the number of request retransmissions after the
	// first attempt (default 4).
	CallRetries int
	// WindowTimeout is the sender's wait for a window acknowledgement
	// before re-blasting (default 250ms).
	WindowTimeout time.Duration
	// NackDelay is the receiver's wait for window completion before it
	// sends a selective NACK (default 100ms).
	NackDelay time.Duration
	// RecvWindow is the packet buffer space this endpoint advertises to
	// bulk senders (default 64 packets).
	RecvWindow int
	// TransferRetries bounds re-blasts per window (default 8).
	TransferRetries int
	// RetransmitFullWindow disables the selective part of loss
	// recovery: on any NACK the sender re-blasts the whole window
	// instead of just the missing packets. It exists for the ablation
	// quantifying what §4.4's selective NACK buys.
	RetransmitFullWindow bool
	// Clock drives every protocol timer (call retries, window
	// timeouts, NACK delays, tombstones). Default sim.WallClock{};
	// inject a sim.VirtualClock to run the protocol in virtual time.
	Clock sim.Clock
	// Call is the unified retry budget for request/response calls.
	// Zero-valued fields derive from the legacy knobs: Base=CallTimeout,
	// Deadline=(CallRetries+1)*CallTimeout, Factor=1. Setting Factor,
	// Cap or Jitter makes call retries exponential and/or jittered.
	Call retry.Policy
	// Window is the stall budget for bulk-transfer windows, derived
	// from WindowTimeout/TransferRetries when zero. Receiver progress
	// (a NACK naming missing packets) resets the budget, so only a
	// genuine stall can exhaust it.
	Window retry.Policy
	// Seed seeds the per-operation RNGs used for retry jitter, keeping
	// retry schedules reproducible in seeded runs (default 1).
	Seed int64
}

func (c Config) withDefaults() Config {
	if c.CallTimeout == 0 {
		c.CallTimeout = 500 * time.Millisecond
	}
	if c.CallRetries == 0 {
		c.CallRetries = 4
	}
	if c.WindowTimeout == 0 {
		c.WindowTimeout = 250 * time.Millisecond
	}
	if c.NackDelay == 0 {
		c.NackDelay = 100 * time.Millisecond
	}
	if c.RecvWindow == 0 {
		c.RecvWindow = 64
	}
	if c.TransferRetries == 0 {
		c.TransferRetries = 8
	}
	if c.Clock == nil {
		c.Clock = sim.WallClock{}
	}
	if c.Call.Base == 0 {
		c.Call.Base = c.CallTimeout
	}
	if c.Call.Deadline == 0 {
		c.Call.Deadline = time.Duration(c.CallRetries+1) * c.CallTimeout
	}
	if c.Window.Base == 0 {
		c.Window.Base = c.WindowTimeout
	}
	if c.Window.Deadline == 0 {
		c.Window.Deadline = time.Duration(c.TransferRetries+1) * c.WindowTimeout
	}
	if c.Seed == 0 {
		c.Seed = 1
	}
	return c
}

// Handler reacts to an incoming request and returns the response to send
// back, or nil for no response. Handlers run on their own goroutines, so
// they may issue nested Calls.
type Handler func(from string, msg wire.Message) wire.Message

// Endpoint wraps a Transport with request/response correlation and bulk
// transfer state. All daemons and the client runtime communicate through
// Endpoints.
type Endpoint struct {
	// dodo:unguarded — immutable after construction
	tr transport.Transport
	// dodo:unguarded — immutable after construction
	cfg Config
	// dodo:unguarded — immutable after construction
	handler Handler

	mu locks.Mutex
	// dodo:guardedby mu
	calls map[uint32]chan wire.Message
	// dodo:guardedby mu
	rx map[rxKey]*rxTransfer
	// dodo:guardedby mu
	tx map[uint64]chan wire.Message
	// dodo:guardedby mu
	nextSeq uint32
	// dodo:guardedby mu
	closed bool
	// dodo:atomic
	nextXfer atomic.Uint64

	// dodo:unguarded — WaitGroup is internally synchronized
	wg sync.WaitGroup
	// dodo:unguarded — set at construction; closed once under mu in Close
	stop chan struct{}

	// opSeq numbers retry budgets so each gets a distinct but
	// reproducible jitter stream derived from cfg.Seed.
	// dodo:atomic
	opSeq atomic.Int64

	// Stats counters (atomic).
	// dodo:atomic
	retransmits atomic.Int64
	// dodo:atomic
	nacksSent atomic.Int64
	// dodo:atomic
	dupsDropped atomic.Int64
	// dodo:atomic
	retryExhausted atomic.Int64
}

type rxKey struct {
	from string
	id   uint64
}

// NewEndpoint starts an endpoint's receive loop over tr. handler may be
// nil for pure-client endpoints.
func NewEndpoint(tr transport.Transport, cfg Config, handler Handler) *Endpoint {
	ep := &Endpoint{
		tr:      tr,
		cfg:     cfg.withDefaults(),
		handler: handler,
		calls:   make(map[uint32]chan wire.Message),
		rx:      make(map[rxKey]*rxTransfer),
		tx:      make(map[uint64]chan wire.Message),
		stop:    make(chan struct{}),
	}
	ep.mu.SetRank(locks.RankBulkEndpoint)
	ep.wg.Add(1)
	go ep.recvLoop()
	return ep
}

// LocalAddr returns the underlying transport address.
func (ep *Endpoint) LocalAddr() string { return ep.tr.LocalAddr() }

// Transport exposes the underlying transport (for MTU interrogation).
func (ep *Endpoint) Transport() transport.Transport { return ep.tr }

// ChunkSize is the per-packet bulk payload for this endpoint's
// transport, exported so fast-path peers can negotiate a chunk both
// sides can carry.
func (ep *Endpoint) ChunkSize() int { return ep.chunkSize() }

// RecvWindow is the receive window this endpoint advertises.
func (ep *Endpoint) RecvWindow() int { return ep.cfg.RecvWindow }

// Close shuts the endpoint down and fails all pending operations.
func (ep *Endpoint) Close() error {
	ep.mu.Lock()
	if ep.closed {
		ep.mu.Unlock()
		return nil
	}
	ep.closed = true
	close(ep.stop)
	for seq, ch := range ep.calls {
		close(ch)
		delete(ep.calls, seq)
	}
	for key, rx := range ep.rx {
		rx.fail(ErrClosed)
		delete(ep.rx, key)
	}
	ep.mu.Unlock()
	err := ep.tr.Close()
	ep.wg.Wait()
	return err
}

// Stats reports protocol counters: sender re-blasts, selective NACKs
// sent, and duplicate packets dropped.
func (ep *Endpoint) Stats() (retransmits, nacksSent, dupsDropped int64) {
	return ep.retransmits.Load(), ep.nacksSent.Load(), ep.dupsDropped.Load()
}

// RetryExhausted reports how many operations (calls or bulk windows)
// ran their unified retry budget dry at this endpoint.
func (ep *Endpoint) RetryExhausted() int64 { return ep.retryExhausted.Load() }

// newBudget creates a retry budget for one operation. Jittered budgets
// get a private RNG seeded from cfg.Seed and the operation counter, so
// concurrent operations never share RNG state and a seeded run replays
// the same schedules.
func (ep *Endpoint) newBudget(p retry.Policy) *retry.Budget {
	var rng *rand.Rand
	if p.Jitter > 0 {
		rng = rand.New(rand.NewSource(ep.cfg.Seed + ep.opSeq.Add(1)))
	}
	return retry.New(p, ep.cfg.Clock, rng)
}

// NextTransferID returns a fresh locally unique bulk transfer id.
//
// Receivers key transfer state by (sender address, id) and assume ids
// are never reused — see RecvBulk's tombstone. A process that can be
// restarted at the same transport address (an imd incarnation) must
// therefore SeedTransferIDs with an incarnation-unique base, or its ids
// restart at 1 and collide with state the peer still holds for the
// previous incarnation: reads then fail ErrConsumed against tombstones,
// or worse, silently return a dead incarnation's buffered bytes.
func (ep *Endpoint) NextTransferID() uint64 { return ep.nextXfer.Add(1) }

// SeedTransferIDs starts the transfer-id counter at base, namespacing
// this endpoint's transfers away from any predecessor at the same
// address. Call before the first transfer; Dodo's imd seeds with
// epoch<<32, which keeps incarnations disjoint for 2^32 transfers each.
func (ep *Endpoint) SeedTransferIDs(base uint64) { ep.nextXfer.Store(base) }

// Notify sends msg without expecting a response.
func (ep *Endpoint) Notify(to string, msg wire.Message) error {
	ep.mu.Lock()
	seq := ep.nextSeq
	ep.nextSeq++
	closed := ep.closed
	ep.mu.Unlock()
	if closed {
		return ErrClosed
	}
	frame, err := wire.EncodePooled(seq, msg)
	if err != nil {
		return err
	}
	defer wire.PutFrame(frame)
	return ep.tr.Send(to, frame)
}

// Call sends msg to to and waits for the correlated response, resending
// on timeout. Responders must tolerate duplicate requests (all Dodo
// request handlers are idempotent).
func (ep *Endpoint) Call(to string, msg wire.Message) (wire.Message, error) {
	return ep.call(to, msg, ep.cfg.Call)
}

// CallT is Call with an explicit per-attempt timeout and retry count,
// for callers that probe possibly-dead peers (the central manager's
// allocation probes and keep-alive echoes) and must give up faster than
// their own callers' patience. The pair maps onto the unified budget as
// Base=timeout, Deadline=(retries+1)*timeout; backoff shape (Factor,
// Cap, Jitter) still comes from cfg.Call.
func (ep *Endpoint) CallT(to string, msg wire.Message, timeout time.Duration, retries int) (wire.Message, error) {
	p := ep.cfg.Call
	p.Base = timeout
	p.Deadline = time.Duration(retries+1) * timeout
	return ep.call(to, msg, p)
}

func (ep *Endpoint) call(to string, msg wire.Message, p retry.Policy) (wire.Message, error) {
	ep.mu.Lock()
	if ep.closed {
		ep.mu.Unlock()
		return nil, ErrClosed
	}
	seq := ep.nextSeq
	ep.nextSeq++
	ch := make(chan wire.Message, 1)
	ep.calls[seq] = ch
	ep.mu.Unlock()

	defer func() {
		ep.mu.Lock()
		delete(ep.calls, seq)
		ep.mu.Unlock()
	}()

	frame, err := wire.Encode(seq, msg)
	if err != nil {
		return nil, err
	}
	budget := ep.newBudget(p)
	for {
		wait, ok := budget.Next()
		if !ok {
			ep.retryExhausted.Add(1)
			return nil, fmt.Errorf("bulk: call %v to %s: %w", msg.Kind(), to, ErrTimeout)
		}
		if budget.Attempts() > 1 {
			ep.retransmits.Add(1)
		}
		if err := ep.tr.Send(to, frame); err != nil {
			return nil, fmt.Errorf("bulk: call %v to %s: %w", msg.Kind(), to, err)
		}
		timerC, timer := sim.NewTimer(ep.cfg.Clock, wait)
		select {
		case resp, ok := <-ch:
			timer.Stop()
			if !ok {
				return nil, ErrClosed
			}
			return resp, nil
		case <-timerC:
		case <-ep.stop:
			timer.Stop()
			return nil, ErrClosed
		}
	}
}

// recvLoop is the endpoint's demultiplexer.
func (ep *Endpoint) recvLoop() {
	defer ep.wg.Done()
	for {
		data, from, err := ep.tr.Recv(200 * time.Millisecond)
		if errors.Is(err, transport.ErrTimeout) {
			select {
			case <-ep.stop:
				return
			default:
				continue
			}
		}
		if errors.Is(err, transport.ErrClosed) {
			return
		}
		if err != nil {
			// Transient receive errors must not kill the daemon, but a
			// persistently failing transport must not spin either.
			timerC, timer := sim.NewTimer(ep.cfg.Clock, 5*time.Millisecond)
			select {
			case <-ep.stop:
				timer.Stop()
				return
			case <-timerC:
			}
			continue
		}
		// Data-plane fast path: BulkData frames — the overwhelming bulk
		// of traffic — are parsed in place and their payload copied
		// straight into the assembling transfer, skipping the allocating
		// general decoder entirely.
		if id, seq, payload, derr := wire.DecodeBulkData(data); derr == nil {
			ep.handleData(from, id, seq, payload)
			continue
		}
		h, msg, err := wire.Decode(data)
		if err != nil {
			continue
		}
		ep.dispatch(from, h, msg)
	}
}

// dispatch routes every wire message type explicitly: bulk sub-protocol
// frames to the transfer machinery, responses to their correlated Call,
// requests to the registered handler. The enumeration is deliberately
// exhaustive (enforced by dodo-vet's wire-exhaustiveness pass): a new
// wire type fails vet here until this switch decides what to do with it.
func (ep *Endpoint) dispatch(from string, h wire.Header, msg wire.Message) {
	switch m := msg.(type) {
	case *wire.BulkOffer:
		ep.handleOffer(from, h.Seq, m)
	case *wire.BulkData:
		// Normally intercepted by recvLoop's in-place fast path; kept
		// for completeness (tests may dispatch decoded messages).
		ep.handleData(from, m.TransferID, m.Seq, m.Payload)
	case *wire.BulkNack, *wire.BulkDone:
		ep.routeTxResponse(msg)
	case *wire.AllocResp, *wire.FreeResp, *wire.CheckAllocResp,
		*wire.KeepAliveAck, *wire.HostStatusAck,
		*wire.IMDAllocResp, *wire.IMDFreeResp, *wire.DataResp,
		*wire.BulkAccept, *wire.ClusterStatsResp, *wire.HandoffAccept,
		*wire.InventoryAck, *wire.ReadBatchResp:
		ep.mu.Lock()
		ch, ok := ep.calls[h.Seq]
		if ok {
			delete(ep.calls, h.Seq)
		}
		ep.mu.Unlock()
		if ok {
			ch <- msg
		}
	case *wire.AllocReq, *wire.FreeReq, *wire.CheckAllocReq,
		*wire.KeepAlive, *wire.HostStatus,
		*wire.IMDAllocReq, *wire.IMDFreeReq,
		*wire.ReadReq, *wire.WriteReq, *wire.ClusterStatsReq,
		*wire.HandoffOffer, *wire.HandoffPage, *wire.HandoffDone,
		*wire.InventoryReport, *wire.ReadBatchReq:
		if ep.handler == nil {
			return
		}
		// Handlers run on their own goroutine so they can issue
		// nested Calls through this same endpoint.
		ep.wg.Add(1)
		go func() {
			defer ep.wg.Done()
			resp := ep.handler(from, msg)
			if resp == nil {
				return
			}
			frame, err := wire.Encode(h.Seq, resp)
			if err != nil {
				return
			}
			_ = ep.tr.Send(from, frame)
		}()
	}
}

func (ep *Endpoint) routeTxResponse(msg wire.Message) {
	var id uint64
	//vet:ignore wire-exhaustiveness — narrow correlation switch: dispatch routes only BulkNack/BulkDone here
	switch m := msg.(type) {
	case *wire.BulkNack:
		id = m.TransferID
	case *wire.BulkDone:
		id = m.TransferID
	}
	ep.mu.Lock()
	ch := ep.tx[id]
	ep.mu.Unlock()
	if ch != nil {
		select {
		case ch <- msg:
		default: // sender is behind; drop rather than block the loop
		}
	}
}
