// Package bulk implements Dodo's messaging layer: request/response
// correlation for the control protocol, and the bulk data-transfer
// protocol of §4.4 for region payloads.
//
// The bulk protocol is the paper's: a region that does not fit in one
// packet is partitioned into sequenced chunks; the sender negotiates the
// buffer space available at the receiver (BulkOffer/BulkAccept), blasts
// as many packets as fit in that window, and waits; the receiver waits
// for the full window or a timeout, then reports the missing sequence
// numbers with a selective NACK (an empty NACK acknowledges the window).
// Duplicate packets are dropped, as the paper's extension note suggests.
package bulk

import (
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"dodo/internal/locks"
	"dodo/internal/sim"
	"dodo/internal/transport"
	"dodo/internal/wire"
)

// Errors returned by the endpoint.
var (
	ErrClosed   = errors.New("bulk: endpoint closed")
	ErrTimeout  = errors.New("bulk: operation timed out")
	ErrRejected = errors.New("bulk: transfer rejected by receiver")
	// ErrConsumed reports a RecvBulk for a transfer whose bytes were
	// already handed to an earlier caller. A duplicated announcement
	// must not be confirmed as if it delivered data: the original
	// handleWrite race let the duplicate reply success with zero bytes
	// while the real apply was still pending.
	ErrConsumed = errors.New("bulk: transfer already consumed")
)

// Config tunes an endpoint. Zero fields take the listed defaults.
type Config struct {
	// CallTimeout is the wait per request attempt (default 500ms).
	CallTimeout time.Duration
	// CallRetries is the number of request retransmissions after the
	// first attempt (default 4).
	CallRetries int
	// WindowTimeout is the sender's wait for a window acknowledgement
	// before re-blasting (default 250ms).
	WindowTimeout time.Duration
	// NackDelay is the receiver's wait for window completion before it
	// sends a selective NACK (default 100ms).
	NackDelay time.Duration
	// RecvWindow is the packet buffer space this endpoint advertises to
	// bulk senders (default 64 packets).
	RecvWindow int
	// TransferRetries bounds re-blasts per window (default 8).
	TransferRetries int
	// RetransmitFullWindow disables the selective part of loss
	// recovery: on any NACK the sender re-blasts the whole window
	// instead of just the missing packets. It exists for the ablation
	// quantifying what §4.4's selective NACK buys.
	RetransmitFullWindow bool
	// Clock drives every protocol timer (call retries, window
	// timeouts, NACK delays, tombstones). Default sim.WallClock{};
	// inject a sim.VirtualClock to run the protocol in virtual time.
	Clock sim.Clock
}

func (c Config) withDefaults() Config {
	if c.CallTimeout == 0 {
		c.CallTimeout = 500 * time.Millisecond
	}
	if c.CallRetries == 0 {
		c.CallRetries = 4
	}
	if c.WindowTimeout == 0 {
		c.WindowTimeout = 250 * time.Millisecond
	}
	if c.NackDelay == 0 {
		c.NackDelay = 100 * time.Millisecond
	}
	if c.RecvWindow == 0 {
		c.RecvWindow = 64
	}
	if c.TransferRetries == 0 {
		c.TransferRetries = 8
	}
	if c.Clock == nil {
		c.Clock = sim.WallClock{}
	}
	return c
}

// Handler reacts to an incoming request and returns the response to send
// back, or nil for no response. Handlers run on their own goroutines, so
// they may issue nested Calls.
type Handler func(from string, msg wire.Message) wire.Message

// Endpoint wraps a Transport with request/response correlation and bulk
// transfer state. All daemons and the client runtime communicate through
// Endpoints.
type Endpoint struct {
	tr      transport.Transport
	cfg     Config
	handler Handler

	mu       locks.Mutex
	calls    map[uint32]chan wire.Message
	rx       map[rxKey]*rxTransfer
	tx       map[uint64]chan wire.Message
	nextSeq  uint32
	closed   bool
	nextXfer atomic.Uint64

	wg   sync.WaitGroup
	stop chan struct{}

	// Stats counters (atomic).
	retransmits atomic.Int64
	nacksSent   atomic.Int64
	dupsDropped atomic.Int64
}

type rxKey struct {
	from string
	id   uint64
}

// NewEndpoint starts an endpoint's receive loop over tr. handler may be
// nil for pure-client endpoints.
func NewEndpoint(tr transport.Transport, cfg Config, handler Handler) *Endpoint {
	ep := &Endpoint{
		tr:      tr,
		cfg:     cfg.withDefaults(),
		handler: handler,
		calls:   make(map[uint32]chan wire.Message),
		rx:      make(map[rxKey]*rxTransfer),
		tx:      make(map[uint64]chan wire.Message),
		stop:    make(chan struct{}),
	}
	ep.mu.SetRank(locks.RankBulkEndpoint)
	ep.wg.Add(1)
	go ep.recvLoop()
	return ep
}

// LocalAddr returns the underlying transport address.
func (ep *Endpoint) LocalAddr() string { return ep.tr.LocalAddr() }

// Transport exposes the underlying transport (for MTU interrogation).
func (ep *Endpoint) Transport() transport.Transport { return ep.tr }

// Close shuts the endpoint down and fails all pending operations.
func (ep *Endpoint) Close() error {
	ep.mu.Lock()
	if ep.closed {
		ep.mu.Unlock()
		return nil
	}
	ep.closed = true
	close(ep.stop)
	for seq, ch := range ep.calls {
		close(ch)
		delete(ep.calls, seq)
	}
	for key, rx := range ep.rx {
		rx.fail(ErrClosed)
		delete(ep.rx, key)
	}
	ep.mu.Unlock()
	err := ep.tr.Close()
	ep.wg.Wait()
	return err
}

// Stats reports protocol counters: sender re-blasts, selective NACKs
// sent, and duplicate packets dropped.
func (ep *Endpoint) Stats() (retransmits, nacksSent, dupsDropped int64) {
	return ep.retransmits.Load(), ep.nacksSent.Load(), ep.dupsDropped.Load()
}

// NextTransferID returns a fresh locally unique bulk transfer id.
//
// Receivers key transfer state by (sender address, id) and assume ids
// are never reused — see RecvBulk's tombstone. A process that can be
// restarted at the same transport address (an imd incarnation) must
// therefore SeedTransferIDs with an incarnation-unique base, or its ids
// restart at 1 and collide with state the peer still holds for the
// previous incarnation: reads then fail ErrConsumed against tombstones,
// or worse, silently return a dead incarnation's buffered bytes.
func (ep *Endpoint) NextTransferID() uint64 { return ep.nextXfer.Add(1) }

// SeedTransferIDs starts the transfer-id counter at base, namespacing
// this endpoint's transfers away from any predecessor at the same
// address. Call before the first transfer; Dodo's imd seeds with
// epoch<<32, which keeps incarnations disjoint for 2^32 transfers each.
func (ep *Endpoint) SeedTransferIDs(base uint64) { ep.nextXfer.Store(base) }

// Notify sends msg without expecting a response.
func (ep *Endpoint) Notify(to string, msg wire.Message) error {
	ep.mu.Lock()
	seq := ep.nextSeq
	ep.nextSeq++
	closed := ep.closed
	ep.mu.Unlock()
	if closed {
		return ErrClosed
	}
	frame, err := wire.Encode(seq, msg)
	if err != nil {
		return err
	}
	return ep.tr.Send(to, frame)
}

// Call sends msg to to and waits for the correlated response, resending
// on timeout. Responders must tolerate duplicate requests (all Dodo
// request handlers are idempotent).
func (ep *Endpoint) Call(to string, msg wire.Message) (wire.Message, error) {
	return ep.CallT(to, msg, ep.cfg.CallTimeout, ep.cfg.CallRetries)
}

// CallT is Call with an explicit per-attempt timeout and retry budget,
// for callers that probe possibly-dead peers (the central manager's
// allocation probes and keep-alive echoes) and must give up faster than
// their own callers' patience.
func (ep *Endpoint) CallT(to string, msg wire.Message, timeout time.Duration, retries int) (wire.Message, error) {
	ep.mu.Lock()
	if ep.closed {
		ep.mu.Unlock()
		return nil, ErrClosed
	}
	seq := ep.nextSeq
	ep.nextSeq++
	ch := make(chan wire.Message, 1)
	ep.calls[seq] = ch
	ep.mu.Unlock()

	defer func() {
		ep.mu.Lock()
		delete(ep.calls, seq)
		ep.mu.Unlock()
	}()

	frame, err := wire.Encode(seq, msg)
	if err != nil {
		return nil, err
	}
	for attempt := 0; attempt <= retries; attempt++ {
		if attempt > 0 {
			ep.retransmits.Add(1)
		}
		if err := ep.tr.Send(to, frame); err != nil {
			return nil, fmt.Errorf("bulk: call %v to %s: %w", msg.Kind(), to, err)
		}
		timerC, timer := sim.NewTimer(ep.cfg.Clock, timeout)
		select {
		case resp, ok := <-ch:
			timer.Stop()
			if !ok {
				return nil, ErrClosed
			}
			return resp, nil
		case <-timerC:
		case <-ep.stop:
			timer.Stop()
			return nil, ErrClosed
		}
	}
	return nil, fmt.Errorf("bulk: call %v to %s: %w", msg.Kind(), to, ErrTimeout)
}

// recvLoop is the endpoint's demultiplexer.
func (ep *Endpoint) recvLoop() {
	defer ep.wg.Done()
	for {
		data, from, err := ep.tr.Recv(200 * time.Millisecond)
		if errors.Is(err, transport.ErrTimeout) {
			select {
			case <-ep.stop:
				return
			default:
				continue
			}
		}
		if errors.Is(err, transport.ErrClosed) {
			return
		}
		if err != nil {
			// Transient receive errors must not kill the daemon, but a
			// persistently failing transport must not spin either.
			timerC, timer := sim.NewTimer(ep.cfg.Clock, 5*time.Millisecond)
			select {
			case <-ep.stop:
				timer.Stop()
				return
			case <-timerC:
			}
			continue
		}
		h, msg, err := wire.Decode(data)
		if err != nil {
			continue
		}
		ep.dispatch(from, h, msg)
	}
}

// dispatch routes every wire message type explicitly: bulk sub-protocol
// frames to the transfer machinery, responses to their correlated Call,
// requests to the registered handler. The enumeration is deliberately
// exhaustive (enforced by dodo-vet's wire-exhaustiveness pass): a new
// wire type fails vet here until this switch decides what to do with it.
func (ep *Endpoint) dispatch(from string, h wire.Header, msg wire.Message) {
	switch m := msg.(type) {
	case *wire.BulkOffer:
		ep.handleOffer(from, h.Seq, m)
	case *wire.BulkData:
		ep.handleData(from, m)
	case *wire.BulkNack, *wire.BulkDone:
		ep.routeTxResponse(msg)
	case *wire.AllocResp, *wire.FreeResp, *wire.CheckAllocResp,
		*wire.KeepAliveAck, *wire.HostStatusAck,
		*wire.IMDAllocResp, *wire.IMDFreeResp, *wire.DataResp,
		*wire.BulkAccept, *wire.ClusterStatsResp:
		ep.mu.Lock()
		ch, ok := ep.calls[h.Seq]
		if ok {
			delete(ep.calls, h.Seq)
		}
		ep.mu.Unlock()
		if ok {
			ch <- msg
		}
	case *wire.AllocReq, *wire.FreeReq, *wire.CheckAllocReq,
		*wire.KeepAlive, *wire.HostStatus,
		*wire.IMDAllocReq, *wire.IMDFreeReq,
		*wire.ReadReq, *wire.WriteReq, *wire.ClusterStatsReq:
		if ep.handler == nil {
			return
		}
		// Handlers run on their own goroutine so they can issue
		// nested Calls through this same endpoint.
		ep.wg.Add(1)
		go func() {
			defer ep.wg.Done()
			resp := ep.handler(from, msg)
			if resp == nil {
				return
			}
			frame, err := wire.Encode(h.Seq, resp)
			if err != nil {
				return
			}
			_ = ep.tr.Send(from, frame)
		}()
	}
}

func (ep *Endpoint) routeTxResponse(msg wire.Message) {
	var id uint64
	//vet:ignore wire-exhaustiveness — narrow correlation switch: dispatch routes only BulkNack/BulkDone here
	switch m := msg.(type) {
	case *wire.BulkNack:
		id = m.TransferID
	case *wire.BulkDone:
		id = m.TransferID
	}
	ep.mu.Lock()
	ch := ep.tx[id]
	ep.mu.Unlock()
	if ch != nil {
		select {
		case ch <- msg:
		default: // sender is behind; drop rather than block the loop
		}
	}
}
