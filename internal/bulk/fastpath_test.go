package bulk

import (
	"bytes"
	"math/rand"
	"testing"
	"time"

	"dodo/internal/simnet"
	"dodo/internal/transport"
)

// TestEagerTransferDelivers: the receiver pre-registers the transfer
// under its own id, the sender blasts without an offer/accept
// handshake, and the bytes assemble straight into the caller's buffer.
func TestEagerTransferDelivers(t *testing.T) {
	a, b := endpointPair(t, transport.WithMTU(1500))
	data := make([]byte, 200<<10)
	rand.New(rand.NewSource(11)).Read(data)

	id := b.NextTransferID()
	dst := make([]byte, len(data))
	window, err := b.ExpectBulkInto(dst, a.LocalAddr(), id, a.ChunkSize())
	if err != nil {
		t.Fatalf("ExpectBulkInto: %v", err)
	}
	if window <= 0 {
		t.Fatalf("ExpectBulkInto window = %d, want > 0", window)
	}
	done := make(chan error, 1)
	go func() { done <- a.SendBulkEager(b.LocalAddr(), id, data, a.ChunkSize(), window) }()
	n, err := b.RecvBulkInto(dst, a.LocalAddr(), id, 10*time.Second)
	if err != nil {
		t.Fatalf("RecvBulkInto: %v", err)
	}
	if n != len(data) || !bytes.Equal(dst, data) {
		t.Fatalf("eager transfer delivered %d bytes, equal=%v", n, bytes.Equal(dst, data))
	}
	if err := <-done; err != nil {
		t.Fatalf("SendBulkEager: %v", err)
	}
}

// TestEagerTransferDegradesToNackUnderLoss: with 35% frame loss the
// eager first window cannot arrive whole, so the transfer must fall
// back to the selective-NACK recovery protocol — and still deliver
// byte-identical contents. This is the interop guarantee behind the
// eager fast path: skipping offer/accept skips a round trip, never the
// reliability machinery.
func TestEagerTransferDegradesToNackUnderLoss(t *testing.T) {
	n := transport.NewNetwork(transport.WithMTU(1500),
		WithTestFaults(simnet.Faults{LossRate: 0.35, Seed: 77}))
	a := NewEndpoint(n.Host("a"), fastCfg(), nil)
	b := NewEndpoint(n.Host("b"), fastCfg(), nil)
	t.Cleanup(func() { a.Close(); b.Close() })

	data := make([]byte, 96<<10)
	rand.New(rand.NewSource(7)).Read(data)
	for i := 0; i < 3; i++ {
		id := b.NextTransferID()
		dst := make([]byte, len(data))
		window, err := b.ExpectBulkInto(dst, "a", id, a.ChunkSize())
		if err != nil {
			t.Fatalf("ExpectBulkInto %d: %v", i, err)
		}
		done := make(chan error, 1)
		go func() { done <- a.SendBulkEager("b", id, data, a.ChunkSize(), window) }()
		if _, err := b.RecvBulkInto(dst, "a", id, 30*time.Second); err != nil {
			t.Fatalf("RecvBulkInto %d through 35%% loss: %v", i, err)
		}
		if !bytes.Equal(dst, data) {
			t.Fatalf("transfer %d: bytes corrupted by loss recovery", i)
		}
		if err := <-done; err != nil {
			t.Fatalf("SendBulkEager %d: %v", i, err)
		}
	}
}

// TestCancelExpect: a canceled registration fails its waiter and frees
// the (from, id) key for reuse.
func TestCancelExpect(t *testing.T) {
	a, b := endpointPair(t)
	id := b.NextTransferID()
	dst := make([]byte, 4096)
	if _, err := b.ExpectBulkInto(dst, a.LocalAddr(), id, 1024); err != nil {
		t.Fatalf("ExpectBulkInto: %v", err)
	}
	b.CancelExpect(a.LocalAddr(), id)
	if _, err := b.RecvBulkInto(dst, a.LocalAddr(), id, 200*time.Millisecond); err == nil {
		t.Fatal("RecvBulkInto after CancelExpect succeeded, want error")
	}
	// The key is free again: a fresh registration must not collide.
	if _, err := b.ExpectBulkInto(dst, a.LocalAddr(), id, 1024); err != nil {
		t.Fatalf("re-register after cancel: %v", err)
	}
	b.CancelExpect(a.LocalAddr(), id)
}

// TestExpectBulkIntoRejectsDuplicate: double registration of one
// (from, id) key is a caller bug and must error, not corrupt state.
func TestExpectBulkIntoRejectsDuplicate(t *testing.T) {
	a, b := endpointPair(t)
	id := b.NextTransferID()
	dst := make([]byte, 4096)
	if _, err := b.ExpectBulkInto(dst, a.LocalAddr(), id, 1024); err != nil {
		t.Fatalf("first ExpectBulkInto: %v", err)
	}
	if _, err := b.ExpectBulkInto(dst, a.LocalAddr(), id, 1024); err == nil {
		t.Fatal("duplicate ExpectBulkInto succeeded, want error")
	}
	b.CancelExpect(a.LocalAddr(), id)
}

// TestRecvBulkIntoLegacyTransfer: RecvBulkInto also serves the legacy
// offer/accept ladder, copying the assembled transfer into the
// caller's buffer.
func TestRecvBulkIntoLegacyTransfer(t *testing.T) {
	a, b := endpointPair(t, transport.WithMTU(1500))
	data := make([]byte, 48<<10)
	rand.New(rand.NewSource(3)).Read(data)
	id := a.NextTransferID()
	done := make(chan error, 1)
	go func() { done <- a.SendBulk(b.LocalAddr(), id, data) }()
	dst := make([]byte, len(data))
	n, err := b.RecvBulkInto(dst, a.LocalAddr(), id, 10*time.Second)
	if err != nil || n != len(data) || !bytes.Equal(dst, data) {
		t.Fatalf("RecvBulkInto legacy = %d, %v, equal=%v", n, err, bytes.Equal(dst[:max(n, 0)], data[:max(n, 0)]))
	}
	if err := <-done; err != nil {
		t.Fatalf("SendBulk: %v", err)
	}
}

// BenchmarkEagerTransfer64KBMem is the fast-path twin of
// BenchmarkBulkTransfer64KBMem: no offer/accept round trip, packets
// assemble into a pre-registered caller buffer.
func BenchmarkEagerTransfer64KBMem(b *testing.B) {
	n := transport.NewNetwork(transport.WithMTU(1500))
	a := NewEndpoint(n.Host("a"), fastCfg(), nil)
	dst := NewEndpoint(n.Host("b"), fastCfg(), nil)
	defer a.Close()
	defer dst.Close()
	data := make([]byte, 64<<10)
	buf := make([]byte, 64<<10)
	b.SetBytes(64 << 10)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		id := dst.NextTransferID()
		window, err := dst.ExpectBulkInto(buf, "a", id, a.ChunkSize())
		if err != nil {
			b.Fatal(err)
		}
		done := make(chan error, 1)
		go func() {
			_, err := dst.RecvBulkInto(buf, "a", id, 30*time.Second)
			done <- err
		}()
		if err := a.SendBulkEager("b", id, data, a.ChunkSize(), window); err != nil {
			b.Fatal(err)
		}
		if err := <-done; err != nil {
			b.Fatal(err)
		}
	}
}
