// Package usocket reimplements the paper's libusocket (§4.6): a library
// with a UDP-socket-like interface layered on top of U-Net, the
// user-level network architecture of von Eicken et al.
//
// The original ran against a real DEC-Tulip NIC with a modified driver.
// Here the "NIC" is an emulated Ethernet segment (Segment): endpoints are
// addressed by MAC address, frames carry at most one MTU of payload, the
// receive queue is a fixed ring that drops on overflow, and there is no
// reliability — exactly the properties the Dodo bulk-transfer protocol
// (§4.4) was designed around. The API mirrors Figure 6 of the paper:
//
//	u_socket     -> Segment.Socket
//	u_close      -> Socket.Close
//	u_aton       -> Aton
//	u_ntoa       -> MACAddr.String
//	u_bind       -> Socket.Bind
//	u_connect    -> Socket.Connect
//	u_send       -> Socket.Send
//	u_send_iovec -> Socket.SendIovec
//	u_recv       -> Socket.Recv
//	u_recv_iovec -> Socket.RecvIovec
package usocket

import (
	"errors"
	"fmt"
	"sync"
	"time"

	"dodo/internal/locks"
	"dodo/internal/sim"
)

// MTU is the largest payload of a single U-Net frame: one Ethernet frame
// (1500 bytes) minus the U-Net header ("≈1500 bytes for U-Net", §4.4).
const MTU = 1468

// Errors returned by the library.
var (
	ErrClosed     = errors.New("usocket: socket closed")
	ErrTimeout    = errors.New("usocket: receive timed out")
	ErrTooLarge   = errors.New("usocket: frame exceeds MTU")
	ErrNotBound   = errors.New("usocket: socket not bound")
	ErrNotConn    = errors.New("usocket: socket not connected")
	ErrAddrInUse  = errors.New("usocket: address already bound")
	ErrBadAddress = errors.New("usocket: malformed MAC address")
)

// MACAddr is a 6-byte Ethernet MAC address (the paper's macaddr_t).
type MACAddr [6]byte

// Aton parses "aa:bb:cc:dd:ee:ff" into a MACAddr (the paper's u_aton).
func Aton(s string) (MACAddr, error) {
	var m MACAddr
	var parts [6]int
	n, err := fmt.Sscanf(s, "%02x:%02x:%02x:%02x:%02x:%02x",
		&parts[0], &parts[1], &parts[2], &parts[3], &parts[4], &parts[5])
	if err != nil || n != 6 {
		return MACAddr{}, fmt.Errorf("%w: %q", ErrBadAddress, s)
	}
	for i, p := range parts {
		if p < 0 || p > 255 {
			return MACAddr{}, fmt.Errorf("%w: %q", ErrBadAddress, s)
		}
		m[i] = byte(p)
	}
	return m, nil
}

// String formats the address as "aa:bb:cc:dd:ee:ff" (the paper's u_ntoa).
func (m MACAddr) String() string {
	return fmt.Sprintf("%02x:%02x:%02x:%02x:%02x:%02x", m[0], m[1], m[2], m[3], m[4], m[5])
}

// Iovec is a scatter/gather element, mirroring struct iovec. The paper
// uses iovecs with sendmsg/recvmsg "to avoid copying to and from a
// temporary buffer"; SendIovec and RecvIovec preserve that shape.
type Iovec struct {
	Base []byte
}

// Segment is the emulated Ethernet wire: a set of U-Net endpoints that
// can frame-switch to each other by MAC address.
type Segment struct {
	mu locks.Mutex
	// dodo:guardedby mu
	bound map[MACAddr]*Socket
	// dropProb, when set by tests via SetLoss, drops frames
	// deterministically every 1-in-n sends.
	// dodo:guardedby mu
	lossEvery int
	// dodo:guardedby mu
	sends int
}

// NewSegment creates an empty wire.
func NewSegment() *Segment {
	g := &Segment{bound: make(map[MACAddr]*Socket)}
	g.mu.SetRank(locks.RankSegment)
	return g
}

// SetLoss makes the segment drop every n-th frame (0 disables loss).
// U-Net itself is lossy under receive-queue overflow; this adds wire
// loss for protocol tests.
func (g *Segment) SetLoss(everyN int) {
	g.mu.Lock()
	defer g.mu.Unlock()
	g.lossEvery = everyN
}

// Socket creates an unbound socket on this segment (the paper's
// u_socket). sendBuf and recvBuf are queue capacities in frames; recvBuf
// frames beyond capacity are dropped, as on real U-Net endpoints. The
// socket must be Closed (directly or through the transport wrapping it)
// to unregister from the segment.
//
// dodo:acquires(sock)
func (g *Segment) Socket(sendBuf, recvBuf int) (*Socket, error) {
	if sendBuf <= 0 || recvBuf <= 0 {
		return nil, fmt.Errorf("usocket: buffer sizes must be positive (got %d, %d)", sendBuf, recvBuf)
	}
	s := &Socket{seg: g, recvCap: recvBuf}
	s.mu.SetRank(locks.RankSocket)
	s.cond = sync.NewCond(&s.mu)
	return s, nil
}

type frame struct {
	from MACAddr
	data []byte
}

// Socket is one U-Net endpoint.
type Socket struct {
	// dodo:unguarded — immutable after construction
	seg *Segment
	// dodo:unguarded — immutable after construction
	recvCap int

	mu locks.Mutex
	// dodo:unguarded — set at construction; Cond is internally synchronized
	cond *sync.Cond
	// dodo:guardedby mu
	queue []frame
	// dodo:guardedby mu
	bound bool
	// dodo:guardedby mu
	addr MACAddr
	// dodo:guardedby mu
	conn bool
	// dodo:guardedby mu
	peer MACAddr
	// dodo:guardedby mu
	closed bool
	// dodo:guardedby mu
	overflow int // frames dropped at the receive queue
}

// Bind attaches the socket to a local MAC address (the paper's u_bind).
func (s *Socket) Bind(addr MACAddr) error {
	s.seg.mu.Lock()
	defer s.seg.mu.Unlock()
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return ErrClosed
	}
	if _, taken := s.seg.bound[addr]; taken {
		return fmt.Errorf("%w: %s", ErrAddrInUse, addr)
	}
	if s.bound {
		delete(s.seg.bound, s.addr)
	}
	s.seg.bound[addr] = s
	s.addr = addr
	s.bound = true
	return nil
}

// LocalAddr returns the bound address.
func (s *Socket) LocalAddr() (MACAddr, bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.addr, s.bound
}

// Connect fixes the default peer for Send (the paper's u_connect).
func (s *Socket) Connect(peer MACAddr) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return ErrClosed
	}
	s.peer = peer
	s.conn = true
	return nil
}

// Send transmits one frame to the connected peer (the paper's u_send).
// It returns the number of payload bytes accepted.
func (s *Socket) Send(buf []byte) (int, error) {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return 0, ErrClosed
	}
	if !s.conn {
		s.mu.Unlock()
		return 0, ErrNotConn
	}
	peer := s.peer
	s.mu.Unlock()
	return s.SendTo(peer, buf)
}

// SendTo transmits one frame to an explicit peer.
func (s *Socket) SendTo(peer MACAddr, buf []byte) (int, error) {
	if len(buf) > MTU {
		return 0, ErrTooLarge
	}
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return 0, ErrClosed
	}
	if !s.bound {
		s.mu.Unlock()
		return 0, ErrNotBound
	}
	from := s.addr
	s.mu.Unlock()

	g := s.seg
	g.mu.Lock()
	g.sends++
	if g.lossEvery > 0 && g.sends%g.lossEvery == 0 {
		g.mu.Unlock()
		return len(buf), nil // dropped on the wire; sender can't tell
	}
	dst, ok := g.bound[peer]
	g.mu.Unlock()
	if !ok {
		// No such endpoint: the frame dies on the wire. Like Ethernet,
		// the sender sees success.
		return len(buf), nil
	}
	dst.deposit(from, append([]byte(nil), buf...))
	return len(buf), nil
}

// SendIovec gathers the iovec and transmits it as one frame to the
// connected peer (the paper's u_send_iovec).
func (s *Socket) SendIovec(iov []Iovec) (int, error) {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return 0, ErrClosed
	}
	if !s.conn {
		s.mu.Unlock()
		return 0, ErrNotConn
	}
	peer := s.peer
	s.mu.Unlock()
	return s.SendIovecTo(peer, iov)
}

// SendIovecTo gathers the iovec and transmits it as one frame to an
// explicit peer. The gather happens directly into the frame the
// receiver will own, so a scatter-gather send costs exactly one copy —
// the same as SendTo — instead of gather-then-copy.
func (s *Socket) SendIovecTo(peer MACAddr, iov []Iovec) (int, error) {
	total := 0
	for _, v := range iov {
		total += len(v.Base)
	}
	if total > MTU {
		return 0, ErrTooLarge
	}
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return 0, ErrClosed
	}
	if !s.bound {
		s.mu.Unlock()
		return 0, ErrNotBound
	}
	from := s.addr
	s.mu.Unlock()

	g := s.seg
	g.mu.Lock()
	g.sends++
	if g.lossEvery > 0 && g.sends%g.lossEvery == 0 {
		g.mu.Unlock()
		return total, nil // dropped on the wire; sender can't tell
	}
	dst, ok := g.bound[peer]
	g.mu.Unlock()
	if !ok {
		// No such endpoint: the frame dies on the wire, sender sees
		// success — same as SendTo.
		return total, nil
	}
	frame := make([]byte, 0, total)
	for _, v := range iov {
		frame = append(frame, v.Base...)
	}
	dst.deposit(from, frame)
	return total, nil
}

func (s *Socket) deposit(from MACAddr, data []byte) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return
	}
	if len(s.queue) >= s.recvCap {
		s.overflow++ // receive queue overflow: U-Net drops the frame
		return
	}
	//vet:ignore buffer-ownership — ownership transferred: SendTo copies the frame before depositing
	s.queue = append(s.queue, frame{from: from, data: data})
	s.cond.Signal()
}

// Recv blocks for one frame, copying its payload into buf (the paper's
// u_recv). It returns the payload length (truncated to len(buf)) and the
// sender address. timeout <= 0 waits forever.
func (s *Socket) Recv(buf []byte, timeout time.Duration) (int, MACAddr, error) {
	f, err := s.dequeue(timeout)
	if err != nil {
		return 0, MACAddr{}, err
	}
	n := copy(buf, f.data)
	return n, f.from, nil
}

// RecvIovec scatters one frame across the iovec (the paper's
// u_recv_iovec). It returns the total bytes scattered and the sender.
func (s *Socket) RecvIovec(iov []Iovec, timeout time.Duration) (int, MACAddr, error) {
	f, err := s.dequeue(timeout)
	if err != nil {
		return 0, MACAddr{}, err
	}
	total := 0
	rest := f.data
	for _, v := range iov {
		if len(rest) == 0 {
			break
		}
		n := copy(v.Base, rest)
		rest = rest[n:]
		total += n
	}
	return total, f.from, nil
}

func (s *Socket) dequeue(timeout time.Duration) (frame, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if !sim.CondWaitTimeout(s.cond, timeout, func() bool {
		return len(s.queue) > 0 || s.closed
	}) {
		return frame{}, ErrTimeout
	}
	if len(s.queue) == 0 {
		return frame{}, ErrClosed
	}
	f := s.queue[0]
	s.queue = s.queue[1:]
	return f, nil
}

// Overflow reports how many frames the receive queue has dropped.
func (s *Socket) Overflow() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.overflow
}

// RecvCap returns the receive queue capacity in frames. The bulk
// protocol's window negotiation uses it as the receiver's buffer space.
func (s *Socket) RecvCap() int { return s.recvCap }

// Close releases the socket and its binding (the paper's u_close).
//
// dodo:releases(sock)
func (s *Socket) Close() error {
	s.seg.mu.Lock()
	s.mu.Lock()
	if s.bound {
		delete(s.seg.bound, s.addr)
		s.bound = false
	}
	s.closed = true
	s.queue = nil
	s.cond.Broadcast()
	s.mu.Unlock()
	s.seg.mu.Unlock()
	return nil
}
