package usocket

import (
	"bytes"
	"errors"
	"testing"
	"testing/quick"
	"time"

	"dodo/internal/transport"
)

func mustAton(t *testing.T, s string) MACAddr {
	t.Helper()
	m, err := Aton(s)
	if err != nil {
		t.Fatalf("Aton(%q): %v", s, err)
	}
	return m
}

func pair(t *testing.T) (*Segment, *Socket, *Socket, MACAddr, MACAddr) {
	t.Helper()
	seg := NewSegment()
	a, err := seg.Socket(32, 32)
	if err != nil {
		t.Fatal(err)
	}
	b, err := seg.Socket(32, 32)
	if err != nil {
		t.Fatal(err)
	}
	ma := mustAton(t, "00:00:00:00:00:0a")
	mb := mustAton(t, "00:00:00:00:00:0b")
	if err := a.Bind(ma); err != nil {
		t.Fatal(err)
	}
	if err := b.Bind(mb); err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { a.Close(); b.Close() })
	return seg, a, b, ma, mb
}

func TestAtonNtoaRoundTrip(t *testing.T) {
	for _, s := range []string{"00:11:22:33:44:55", "aa:bb:cc:dd:ee:ff", "01:02:03:04:05:06"} {
		m, err := Aton(s)
		if err != nil {
			t.Fatalf("Aton(%q): %v", s, err)
		}
		if got := m.String(); got != s {
			t.Errorf("round trip of %q = %q", s, got)
		}
	}
}

func TestAtonRejectsGarbage(t *testing.T) {
	for _, s := range []string{"", "nope", "00:11:22:33:44", "zz:11:22:33:44:55"} {
		if _, err := Aton(s); err == nil {
			t.Errorf("Aton(%q) succeeded, want error", s)
		}
	}
}

func TestPropertyAtonNtoa(t *testing.T) {
	f := func(m MACAddr) bool {
		parsed, err := Aton(m.String())
		return err == nil && parsed == m
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestSendRecv(t *testing.T) {
	_, a, b, ma, mb := pair(t)
	if err := a.Connect(mb); err != nil {
		t.Fatal(err)
	}
	msg := []byte("frame one")
	n, err := a.Send(msg)
	if err != nil || n != len(msg) {
		t.Fatalf("Send = %d, %v", n, err)
	}
	buf := make([]byte, MTU)
	n, from, err := b.Recv(buf, time.Second)
	if err != nil {
		t.Fatalf("Recv: %v", err)
	}
	if !bytes.Equal(buf[:n], msg) || from != ma {
		t.Fatalf("Recv = %q from %v, want %q from %v", buf[:n], from, msg, ma)
	}
}

func TestSendWithoutConnect(t *testing.T) {
	_, a, _, _, _ := pair(t)
	if _, err := a.Send([]byte("x")); !errors.Is(err, ErrNotConn) {
		t.Fatalf("Send unconnected = %v, want ErrNotConn", err)
	}
}

func TestSendToUnboundSocketFails(t *testing.T) {
	seg := NewSegment()
	s, err := seg.Socket(4, 4)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := s.SendTo(MACAddr{1}, []byte("x")); !errors.Is(err, ErrNotBound) {
		t.Fatalf("SendTo from unbound = %v, want ErrNotBound", err)
	}
}

func TestSendOversizeFrame(t *testing.T) {
	_, a, _, _, mb := pair(t)
	if _, err := a.SendTo(mb, make([]byte, MTU+1)); !errors.Is(err, ErrTooLarge) {
		t.Fatalf("SendTo oversize = %v, want ErrTooLarge", err)
	}
}

func TestSendToAbsentPeerSucceedsSilently(t *testing.T) {
	_, a, _, _, _ := pair(t)
	ghost := mustAton(t, "de:ad:be:ef:00:01")
	n, err := a.SendTo(ghost, []byte("void"))
	if err != nil || n != 4 {
		t.Fatalf("SendTo absent peer = %d, %v; want Ethernet-style silent drop", n, err)
	}
}

func TestBindConflict(t *testing.T) {
	seg := NewSegment()
	a, _ := seg.Socket(4, 4)
	b, _ := seg.Socket(4, 4)
	m := MACAddr{1, 2, 3, 4, 5, 6}
	if err := a.Bind(m); err != nil {
		t.Fatal(err)
	}
	if err := b.Bind(m); !errors.Is(err, ErrAddrInUse) {
		t.Fatalf("second Bind = %v, want ErrAddrInUse", err)
	}
}

func TestRebindMovesAddress(t *testing.T) {
	seg := NewSegment()
	a, _ := seg.Socket(4, 4)
	m1 := MACAddr{1}
	m2 := MACAddr{2}
	if err := a.Bind(m1); err != nil {
		t.Fatal(err)
	}
	if err := a.Bind(m2); err != nil {
		t.Fatal(err)
	}
	// old address must be free again
	b, _ := seg.Socket(4, 4)
	if err := b.Bind(m1); err != nil {
		t.Fatalf("Bind to released address = %v", err)
	}
}

func TestRecvTimeout(t *testing.T) {
	_, _, b, _, _ := pair(t)
	buf := make([]byte, 16)
	if _, _, err := b.Recv(buf, 30*time.Millisecond); !errors.Is(err, ErrTimeout) {
		t.Fatalf("Recv = %v, want ErrTimeout", err)
	}
}

func TestRecvQueueOverflowDrops(t *testing.T) {
	seg := NewSegment()
	a, _ := seg.Socket(4, 4)
	b, _ := seg.Socket(4, 2) // tiny receive queue
	ma, mb := MACAddr{0xa}, MACAddr{0xb}
	if err := a.Bind(ma); err != nil {
		t.Fatal(err)
	}
	if err := b.Bind(mb); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 5; i++ {
		if _, err := a.SendTo(mb, []byte{byte(i)}); err != nil {
			t.Fatal(err)
		}
	}
	if got := b.Overflow(); got != 3 {
		t.Fatalf("Overflow() = %d, want 3 (capacity 2, 5 sent)", got)
	}
	buf := make([]byte, 4)
	for i := 0; i < 2; i++ {
		n, _, err := b.Recv(buf, time.Second)
		if err != nil || n != 1 || buf[0] != byte(i) {
			t.Fatalf("Recv %d = %v %v, want in-order survivor", i, buf[:n], err)
		}
	}
}

func TestIovecGatherScatter(t *testing.T) {
	_, a, b, _, mb := pair(t)
	if err := a.Connect(mb); err != nil {
		t.Fatal(err)
	}
	iov := []Iovec{{Base: []byte("dodo ")}, {Base: []byte("is ")}, {Base: []byte("a memory")}}
	n, err := a.SendIovec(iov)
	if err != nil || n != 16 {
		t.Fatalf("SendIovec = %d, %v", n, err)
	}
	p1, p2 := make([]byte, 8), make([]byte, 8)
	rn, _, err := b.RecvIovec([]Iovec{{Base: p1}, {Base: p2}}, time.Second)
	if err != nil || rn != 16 {
		t.Fatalf("RecvIovec = %d, %v", rn, err)
	}
	if string(p1)+string(p2) != "dodo is a memory" {
		t.Fatalf("scattered = %q + %q", p1, p2)
	}
}

func TestSendIovecOversize(t *testing.T) {
	_, a, _, _, mb := pair(t)
	if err := a.Connect(mb); err != nil {
		t.Fatal(err)
	}
	iov := []Iovec{{Base: make([]byte, MTU)}, {Base: make([]byte, 1)}}
	if _, err := a.SendIovec(iov); !errors.Is(err, ErrTooLarge) {
		t.Fatalf("SendIovec oversize = %v, want ErrTooLarge", err)
	}
}

func TestRecvTruncatesToBuffer(t *testing.T) {
	_, a, b, _, mb := pair(t)
	if _, err := a.SendTo(mb, []byte("0123456789")); err != nil {
		t.Fatal(err)
	}
	small := make([]byte, 4)
	n, _, err := b.Recv(small, time.Second)
	if err != nil || n != 4 || string(small) != "0123" {
		t.Fatalf("Recv into small buffer = %d %q %v", n, small, err)
	}
}

func TestCloseUnblocksRecv(t *testing.T) {
	_, _, b, _, _ := pair(t)
	done := make(chan error, 1)
	go func() {
		_, _, err := b.Recv(make([]byte, 4), 0)
		done <- err
	}()
	time.Sleep(20 * time.Millisecond)
	b.Close()
	select {
	case err := <-done:
		if !errors.Is(err, ErrClosed) {
			t.Fatalf("Recv after close = %v, want ErrClosed", err)
		}
	case <-time.After(2 * time.Second):
		t.Fatal("Recv did not return after Close")
	}
}

func TestSegmentLoss(t *testing.T) {
	seg, a, b, _, mb := pair(t)
	seg.SetLoss(2) // drop every second frame
	for i := 0; i < 10; i++ {
		if _, err := a.SendTo(mb, []byte{byte(i)}); err != nil {
			t.Fatal(err)
		}
	}
	got := 0
	buf := make([]byte, 4)
	for {
		_, _, err := b.Recv(buf, 20*time.Millisecond)
		if errors.Is(err, ErrTimeout) {
			break
		}
		if err != nil {
			t.Fatal(err)
		}
		got++
	}
	if got != 5 {
		t.Fatalf("received %d frames with 1-in-2 loss, want 5", got)
	}
}

func TestBadBufferSizes(t *testing.T) {
	seg := NewSegment()
	if _, err := seg.Socket(0, 4); err == nil {
		t.Fatal("Socket(0,4) succeeded, want error")
	}
	if _, err := seg.Socket(4, -1); err == nil {
		t.Fatal("Socket(4,-1) succeeded, want error")
	}
}

func TestTransportAdapter(t *testing.T) {
	_, a, b, ma, mb := pair(t)
	ta, err := NewTransport(a)
	if err != nil {
		t.Fatal(err)
	}
	tb, err := NewTransport(b)
	if err != nil {
		t.Fatal(err)
	}
	if ta.LocalAddr() != ma.String() || tb.MTU() != MTU {
		t.Fatalf("adapter identity wrong: %s %d", ta.LocalAddr(), tb.MTU())
	}
	if err := ta.Send(mb.String(), []byte("over unet")); err != nil {
		t.Fatal(err)
	}
	data, from, err := tb.Recv(time.Second)
	if err != nil || string(data) != "over unet" || from != ma.String() {
		t.Fatalf("adapter Recv = %q from %q, %v", data, from, err)
	}
	if err := ta.Send("garbage-addr", []byte("x")); !errors.Is(err, transport.ErrNoRoute) {
		t.Fatalf("Send to garbage = %v, want ErrNoRoute", err)
	}
	if err := ta.Send(mb.String(), make([]byte, MTU+1)); !errors.Is(err, transport.ErrTooLarge) {
		t.Fatalf("oversize via adapter = %v, want ErrTooLarge", err)
	}
	if _, _, err := tb.Recv(20 * time.Millisecond); !errors.Is(err, transport.ErrTimeout) {
		t.Fatalf("adapter timeout = %v, want transport.ErrTimeout", err)
	}
	tb.Close()
	if _, _, err := tb.Recv(time.Second); !errors.Is(err, transport.ErrClosed) {
		t.Fatalf("adapter recv after close = %v, want transport.ErrClosed", err)
	}
}

func TestTransportAdapterRequiresBoundSocket(t *testing.T) {
	seg := NewSegment()
	s, _ := seg.Socket(4, 4)
	if _, err := NewTransport(s); !errors.Is(err, ErrNotBound) {
		t.Fatalf("NewTransport(unbound) = %v, want ErrNotBound", err)
	}
}

func BenchmarkSendRecvFrame(b *testing.B) {
	seg := NewSegment()
	sa, _ := seg.Socket(64, 64)
	sb, _ := seg.Socket(64, 64)
	ma, mb := MACAddr{0xa}, MACAddr{0xb}
	if err := sa.Bind(ma); err != nil {
		b.Fatal(err)
	}
	if err := sb.Bind(mb); err != nil {
		b.Fatal(err)
	}
	payload := make([]byte, MTU)
	buf := make([]byte, MTU)
	b.SetBytes(MTU)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := sa.SendTo(mb, payload); err != nil {
			b.Fatal(err)
		}
		if _, _, err := sb.Recv(buf, time.Second); err != nil {
			b.Fatal(err)
		}
	}
}
