package usocket

import (
	"errors"
	"time"

	"dodo/internal/transport"
)

// UNet adapts a usocket Socket to the transport.Transport interface so
// every Dodo daemon can run unchanged over the U-Net substrate, just as
// the paper's implementation selects UDP or U-Net at startup (§4).
// Addresses on this transport are MAC strings ("aa:bb:cc:dd:ee:ff").
type UNet struct {
	sock *Socket
}

var (
	_ transport.Transport = (*UNet)(nil)
	_ transport.VecSender = (*UNet)(nil)
)

// NewTransport wraps a bound socket. On success the socket's lifetime
// moves to the transport: UNet.Close closes it. On error the caller
// still owns the socket.
//
// dodo:transfers(sock)
func NewTransport(sock *Socket) (*UNet, error) {
	if _, bound := sock.LocalAddr(); !bound {
		return nil, ErrNotBound
	}
	return &UNet{sock: sock}, nil
}

// LocalAddr returns the socket's MAC string.
func (u *UNet) LocalAddr() string {
	addr, _ := u.sock.LocalAddr()
	return addr.String()
}

// MTU returns the single-frame U-Net payload limit.
func (u *UNet) MTU() int { return MTU }

// Send transmits one frame to the MAC string address.
func (u *UNet) Send(to string, data []byte) error {
	mac, err := Aton(to)
	if err != nil {
		return transport.ErrNoRoute
	}
	_, err = u.sock.SendTo(mac, data)
	switch {
	case errors.Is(err, ErrTooLarge):
		return transport.ErrTooLarge
	case errors.Is(err, ErrClosed):
		return transport.ErrClosed
	}
	return err
}

// SendVec transmits prefix+payload as one frame via the socket's iovec
// send: the two segments ride U-Net's scatter-gather path and are
// copied exactly once, into the receiver-owned frame.
func (u *UNet) SendVec(to string, prefix, payload []byte) error {
	mac, err := Aton(to)
	if err != nil {
		return transport.ErrNoRoute
	}
	_, err = u.sock.SendIovecTo(mac, []Iovec{{Base: prefix}, {Base: payload}})
	switch {
	case errors.Is(err, ErrTooLarge):
		return transport.ErrTooLarge
	case errors.Is(err, ErrClosed):
		return transport.ErrClosed
	}
	return err
}

// Recv blocks for one frame.
func (u *UNet) Recv(timeout time.Duration) ([]byte, string, error) {
	buf := make([]byte, MTU)
	n, from, err := u.sock.Recv(buf, timeout)
	switch {
	case errors.Is(err, ErrTimeout):
		return nil, "", transport.ErrTimeout
	case errors.Is(err, ErrClosed):
		return nil, "", transport.ErrClosed
	case err != nil:
		return nil, "", err
	}
	return buf[:n:n], from.String(), nil
}

// Close releases the underlying socket.
func (u *UNet) Close() error { return u.sock.Close() }
