package vet

import (
	"go/ast"
	"go/token"
	"go/types"
	"sort"
	"strings"
)

// LockOrder is the whole-program lock-acquisition analyzer. It builds
// the acquisition graph over every locks.Mutex/sync.Mutex holder in the
// internal packages: a node per lock class (struct field or package
// variable), and an edge A -> B for every path on which B is acquired
// while A is held — directly, or transitively through calls. It fails
// on
//
//  1. cycles in the graph: two lock classes acquired in both orders can
//     deadlock, and a cycle is exactly a schedule the declared rank
//     hierarchy (internal/locks) cannot admit;
//  2. RPC or Send calls made while holding more than one lock: a
//     remote peer's latency (or its own blocking on the same locks)
//     must never extend a multi-lock critical section.
//
// The analysis is a static under-approximation: held sets are tracked
// in statement order per function with optimistic branch merging
// (intersection of non-terminating branches), calls through interfaces
// and function values contribute no acquisitions, and goroutine bodies
// start with an empty held set. The `-tags lockcheck` runtime is the
// deliberate cross-check for everything this pass cannot resolve.
//
// Excluded packages: internal/locks (the wrapper's own sync.Mutex is
// the mechanism, not a class) and internal/sim (the clock mutex sits
// outside the hierarchy by design — timers are armed from under nearly
// every lock and fire callbacks that re-enter from the outside).
var LockOrder = &Analyzer{
	Name:       "lock-order",
	Doc:        "build the whole-program lock-acquisition graph; fail on cycles and on RPC calls under more than one lock",
	Run:        func(p *Pass) []Finding { return runLockOrder([]*Pass{p}) },
	RunProgram: runLockOrder,
}

// lockClass names one lock in the graph: "pkg.Type.field" for struct
// fields, "pkg.var" for package-level mutexes.
type lockClass string

// lockSite is a call made with locks held: a plain call (callee may
// acquire more), or an RPC (callee talks to the network).
type lockSite struct {
	callee  string // types.Func.FullName of the callee, "" if unresolved
	held    []lockClass
	pos     token.Pos
	pass    *Pass
	node    ast.Node
	rpc     bool
	rpcWhat string // display name of the RPC callee
}

type lockEdge struct {
	from, to lockClass
	pos      token.Pos
	pass     *Pass
	node     ast.Node
}

type lockSummary struct {
	acquires map[lockClass]bool // direct acquisitions anywhere in the body
	calls    []lockSite
	edges    []lockEdge

	// fixpoint results
	acquiresAll map[lockClass]bool
	reachesRPC  bool
}

// lockOrderSkips returns true for packages whose internal mutexes are
// outside the analyzed hierarchy.
func lockOrderSkips(path string) bool {
	if !strings.Contains(path, "/internal/") {
		return true // cmd, examples: no lock holders by policy
	}
	return strings.HasSuffix(path, "/internal/locks") || strings.HasSuffix(path, "/internal/sim")
}

// isMutexMethod reports whether fn is Lock/RLock (+1) or Unlock/RUnlock
// (-1) on a sync or locks mutex.
func isMutexMethod(fn *types.Func) (delta int) {
	if fn == nil || fn.Pkg() == nil || !isLockPkg(fn.Pkg().Path()) {
		return 0
	}
	switch fn.Name() {
	case "Lock", "RLock":
		return 1
	case "Unlock", "RUnlock":
		return -1
	}
	return 0
}

// rpcMethods are the network-facing calls whose latency must never be
// absorbed inside a multi-lock critical section.
var rpcMethods = map[string]bool{
	"Call": true, "CallT": true, "Notify": true,
	"Send": true, "SendTo": true, "SendIovec": true,
	"SendBulk": true, "RecvBulk": true,
}

func isRPCFunc(fn *types.Func) bool {
	if fn == nil || fn.Pkg() == nil || !rpcMethods[fn.Name()] {
		return false
	}
	p := fn.Pkg().Path()
	return strings.HasSuffix(p, "/internal/bulk") ||
		strings.HasSuffix(p, "/internal/transport") ||
		strings.HasSuffix(p, "/internal/usocket")
}

// classOf resolves the lock class of the mutex expression recv (the X
// of a recv.Lock() selector). Returns "" when the class cannot be
// named statically.
func classOf(pass *Pass, recv ast.Expr) lockClass {
	switch e := ast.Unparen(recv).(type) {
	case *ast.SelectorExpr:
		if sel, ok := pass.Info.Selections[e]; ok && sel.Kind() == types.FieldVal {
			t := sel.Recv()
			if ptr, ok := t.(*types.Pointer); ok {
				t = ptr.Elem()
			}
			if named, ok := t.(*types.Named); ok && named.Obj().Pkg() != nil {
				return lockClass(named.Obj().Pkg().Name() + "." + named.Obj().Name() + "." + sel.Obj().Name())
			}
		}
		// Package-qualified variable: pkg.Var.
		if obj, ok := pass.Info.Uses[e.Sel].(*types.Var); ok && obj.Pkg() != nil && obj.Parent() == obj.Pkg().Scope() {
			return lockClass(obj.Pkg().Name() + "." + obj.Name())
		}
	case *ast.Ident:
		if obj, ok := pass.Info.Uses[e].(*types.Var); ok && obj.Pkg() != nil {
			if obj.Parent() == obj.Pkg().Scope() {
				return lockClass(obj.Pkg().Name() + "." + obj.Name())
			}
			// Local or parameter mutex: name it by its type so two
			// functions locking the same struct's embedded mutex agree.
			t := obj.Type()
			if ptr, ok := t.(*types.Pointer); ok {
				t = ptr.Elem()
			}
			if named, ok := t.(*types.Named); ok && named.Obj().Pkg() != nil {
				return lockClass(named.Obj().Pkg().Name() + "." + named.Obj().Name())
			}
		}
	}
	return ""
}

// heldIntersect returns the classes of a present in every set of bs,
// preserving a's order.
func heldIntersect(a []lockClass, bs ...[]lockClass) []lockClass {
	out := a[:0:0]
	for _, c := range a {
		in := true
		for _, b := range bs {
			found := false
			for _, bc := range b {
				if bc == c {
					found = true
					break
				}
			}
			if !found {
				in = false
				break
			}
		}
		if in {
			out = append(out, c)
		}
	}
	return out
}

func heldRemove(held []lockClass, c lockClass) []lockClass {
	for i := len(held) - 1; i >= 0; i-- {
		if held[i] == c {
			return append(append([]lockClass(nil), held[:i]...), held[i+1:]...)
		}
	}
	return held
}

// summarizeFunc walks one function body and records direct
// acquisitions, acquisition edges, and call sites with their held
// snapshots.
func summarizeFunc(pass *Pass, body *ast.BlockStmt) *lockSummary {
	s := &lockSummary{acquires: make(map[lockClass]bool)}

	// collectCalls scans one expression for call sites, skipping nested
	// function literals (their bodies are summarized on their own, with
	// an empty held set — a closure may run on any goroutine).
	collectCalls := func(expr ast.Expr, held []lockClass) {
		if expr == nil {
			return
		}
		ast.Inspect(expr, func(n ast.Node) bool {
			if _, ok := n.(*ast.FuncLit); ok {
				return false
			}
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			fn := funcFor(pass.Info, call)
			if fn == nil || isMutexMethod(fn) != 0 {
				return true
			}
			site := lockSite{
				callee: fn.FullName(),
				held:   append([]lockClass(nil), held...),
				pos:    call.Pos(),
				pass:   pass,
				node:   call,
			}
			if isRPCFunc(fn) {
				site.rpc = true
				site.rpcWhat = fn.Name()
			}
			s.calls = append(s.calls, site)
			return true
		})
	}

	// walk processes stmts in order with the given entry held set and
	// returns the fall-through held set plus whether the sequence always
	// terminates before falling through.
	var walk func(stmts []ast.Stmt, held []lockClass) ([]lockClass, bool)

	walkBranches := func(held []lockClass, mayskip bool, bodies ...[]ast.Stmt) []lockClass {
		var results [][]lockClass
		for _, b := range bodies {
			h, term := walk(b, held)
			if !term {
				results = append(results, h)
			}
		}
		if mayskip {
			results = append(results, held)
		}
		if len(results) == 0 {
			return held
		}
		return heldIntersect(results[0], results[1:]...)
	}

	walk = func(stmts []ast.Stmt, held []lockClass) ([]lockClass, bool) {
		for _, stmt := range stmts {
			switch st := stmt.(type) {
			case *ast.ExprStmt:
				if call, ok := st.X.(*ast.CallExpr); ok {
					if fn := funcFor(pass.Info, call); fn != nil {
						if d := isMutexMethod(fn); d != 0 {
							if sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr); ok {
								c := classOf(pass, sel.X)
								if c == "" {
									continue
								}
								if d > 0 {
									s.acquires[c] = true
									for _, h := range held {
										s.edges = append(s.edges, lockEdge{from: h, to: c, pos: call.Pos(), pass: pass, node: call})
									}
									held = append(append([]lockClass(nil), held...), c)
								} else {
									held = heldRemove(held, c)
								}
							}
							continue
						}
					}
				}
				collectCalls(st.X, held)
			case *ast.AssignStmt:
				for _, r := range st.Rhs {
					collectCalls(r, held)
				}
			case *ast.DeclStmt:
				if gd, ok := st.Decl.(*ast.GenDecl); ok {
					for _, spec := range gd.Specs {
						if vs, ok := spec.(*ast.ValueSpec); ok {
							for _, v := range vs.Values {
								collectCalls(v, held)
							}
						}
					}
				}
			case *ast.ReturnStmt:
				for _, r := range st.Results {
					collectCalls(r, held)
				}
				return held, true
			case *ast.BranchStmt:
				return held, true
			case *ast.DeferStmt, *ast.GoStmt:
				// Deferred unlocks release at return; goroutine bodies
				// run with their own (empty) held set and are
				// summarized via their function literals.
			case *ast.SendStmt:
				collectCalls(st.Value, held)
			case *ast.IncDecStmt:
			case *ast.BlockStmt:
				h, term := walk(st.List, held)
				held = h
				if term {
					return held, true
				}
			case *ast.IfStmt:
				if st.Init != nil {
					held, _ = walk([]ast.Stmt{st.Init}, held)
				}
				collectCalls(st.Cond, held)
				bodyHeld, bodyTerm := walk(st.Body.List, held)
				elseHeld, elseTerm := held, false
				hasElse := st.Else != nil
				if hasElse {
					elseHeld, elseTerm = walk([]ast.Stmt{st.Else}, held)
				}
				switch {
				case bodyTerm && elseTerm && hasElse:
					return held, true
				case bodyTerm:
					held = elseHeld
				case elseTerm:
					held = bodyHeld
				case hasElse:
					held = heldIntersect(bodyHeld, elseHeld)
				default:
					held = heldIntersect(held, bodyHeld)
				}
			case *ast.ForStmt:
				held = walkBranches(held, true, st.Body.List)
			case *ast.RangeStmt:
				collectCalls(st.X, held)
				held = walkBranches(held, true, st.Body.List)
			case *ast.SwitchStmt:
				collectCalls(st.Tag, held)
				var bodies [][]ast.Stmt
				for _, c := range st.Body.List {
					if cc, ok := c.(*ast.CaseClause); ok {
						bodies = append(bodies, cc.Body)
					}
				}
				held = walkBranches(held, true, bodies...)
			case *ast.TypeSwitchStmt:
				var bodies [][]ast.Stmt
				for _, c := range st.Body.List {
					if cc, ok := c.(*ast.CaseClause); ok {
						bodies = append(bodies, cc.Body)
					}
				}
				held = walkBranches(held, true, bodies...)
			case *ast.SelectStmt:
				var bodies [][]ast.Stmt
				for _, c := range st.Body.List {
					if cc, ok := c.(*ast.CommClause); ok {
						bodies = append(bodies, cc.Body)
					}
				}
				held = walkBranches(held, true, bodies...)
			case *ast.LabeledStmt:
				h, term := walk([]ast.Stmt{st.Stmt}, held)
				held = h
				if term {
					return held, true
				}
			}
		}
		return held, false
	}
	walk(body.List, nil)
	return s
}

func runLockOrder(passes []*Pass) []Finding {
	// Phase 1: summarize every function (and function literal) in the
	// analyzed packages. Summaries are keyed by types.Func.FullName so
	// cross-package call sites resolve; literals get synthetic keys and
	// participate only through their direct edges and sites.
	summaries := make(map[string]*lockSummary)
	var anon []*lockSummary
	for _, pass := range passes {
		if lockOrderSkips(pass.Pkg.Path()) {
			continue
		}
		for _, file := range pass.Files {
			if pass.isTestFile(file.Pos()) {
				continue
			}
			ast.Inspect(file, func(n ast.Node) bool {
				switch fn := n.(type) {
				case *ast.FuncDecl:
					if fn.Body == nil {
						return true
					}
					if obj, ok := pass.Info.Defs[fn.Name].(*types.Func); ok {
						summaries[obj.FullName()] = summarizeFunc(pass, fn.Body)
					}
					return true
				case *ast.FuncLit:
					anon = append(anon, summarizeFunc(pass, fn.Body))
					return false // summarizeFunc skips nested literals itself
				}
				return true
			})
		}
	}
	all := make([]*lockSummary, 0, len(summaries)+len(anon))
	for _, s := range summaries {
		all = append(all, s)
	}
	all = append(all, anon...)

	// Phase 2: fixpoint. acquiresAll is the transitive closure of
	// acquisitions through resolved calls; reachesRPC marks functions
	// that (transitively) perform a network call.
	for _, s := range all {
		s.acquiresAll = make(map[lockClass]bool, len(s.acquires))
		for c := range s.acquires {
			s.acquiresAll[c] = true
		}
		for _, cs := range s.calls {
			if cs.rpc {
				s.reachesRPC = true
			}
		}
	}
	for changed := true; changed; {
		changed = false
		for _, s := range all {
			for _, cs := range s.calls {
				callee := summaries[cs.callee]
				if callee == nil {
					continue
				}
				for c := range callee.acquiresAll {
					if !s.acquiresAll[c] {
						s.acquiresAll[c] = true
						changed = true
					}
				}
				if callee.reachesRPC && !s.reachesRPC {
					s.reachesRPC = true
					changed = true
				}
			}
		}
	}

	// Phase 3: assemble the global edge set — direct edges plus, for
	// every call site with locks held, edges from each held class to
	// everything the callee may acquire.
	var edges []lockEdge
	var findings []Finding
	for _, s := range all {
		edges = append(edges, s.edges...)
		for _, cs := range s.calls {
			callee := summaries[cs.callee]
			if callee != nil && len(cs.held) > 0 {
				for c := range callee.acquiresAll {
					for _, h := range cs.held {
						edges = append(edges, lockEdge{from: h, to: c, pos: cs.pos, pass: cs.pass, node: cs.node})
					}
				}
			}
			// Rule 2: RPC under more than one lock, directly or through
			// a callee that reaches the network.
			rpc := cs.rpc
			what := cs.rpcWhat
			if !rpc && callee != nil && callee.reachesRPC {
				rpc = true
				what = cs.callee
			}
			if rpc && len(cs.held) >= 2 {
				names := make([]string, len(cs.held))
				for i, h := range cs.held {
					names[i] = string(h)
				}
				findings = append(findings, findingAt(cs.pass, "lock-order", cs.node,
					"RPC %s while holding %d locks (%s); release all but one before going to the network",
					what, len(cs.held), strings.Join(names, ", ")))
			}
		}
	}

	// Rule 1: cycles. Tarjan SCC over the class graph; any SCC with
	// more than one class — or a self-loop — is an ordering violation.
	findings = append(findings, lockCycles(edges)...)
	return findings
}

// lockCycles reports one finding per strongly connected component of
// the acquisition graph that contains a cycle, anchored at the
// earliest edge inside the component.
func lockCycles(edges []lockEdge) []Finding {
	adj := make(map[lockClass][]lockClass)
	for _, e := range edges {
		adj[e.from] = append(adj[e.from], e.to)
	}
	var nodes []lockClass
	seenNode := make(map[lockClass]bool)
	for _, e := range edges {
		for _, c := range []lockClass{e.from, e.to} {
			if !seenNode[c] {
				seenNode[c] = true
				nodes = append(nodes, c)
			}
		}
	}
	sort.Slice(nodes, func(i, j int) bool { return nodes[i] < nodes[j] })

	index := make(map[lockClass]int)
	low := make(map[lockClass]int)
	onStack := make(map[lockClass]bool)
	var stack []lockClass
	next := 0
	comp := make(map[lockClass]int)
	ncomp := 0

	var strongconnect func(v lockClass)
	strongconnect = func(v lockClass) {
		index[v] = next
		low[v] = next
		next++
		stack = append(stack, v)
		onStack[v] = true
		for _, w := range adj[v] {
			if _, ok := index[w]; !ok {
				strongconnect(w)
				if low[w] < low[v] {
					low[v] = low[w]
				}
			} else if onStack[w] && index[w] < low[v] {
				low[v] = index[w]
			}
		}
		if low[v] == index[v] {
			for {
				w := stack[len(stack)-1]
				stack = stack[:len(stack)-1]
				onStack[w] = false
				comp[w] = ncomp
				if w == v {
					break
				}
			}
			ncomp++
		}
	}
	for _, v := range nodes {
		if _, ok := index[v]; !ok {
			strongconnect(v)
		}
	}

	// A component cycles if it has >1 member, or a self-loop.
	size := make(map[int]int)
	for _, c := range comp {
		size[c]++
	}
	selfLoop := make(map[int]bool)
	for _, e := range edges {
		if e.from == e.to {
			selfLoop[comp[e.from]] = true
		}
	}

	type cycleInfo struct {
		members []string
		edge    *lockEdge
	}
	cycles := make(map[int]*cycleInfo)
	for v, c := range comp {
		if size[c] > 1 || selfLoop[c] {
			ci := cycles[c]
			if ci == nil {
				ci = &cycleInfo{}
				cycles[c] = ci
			}
			ci.members = append(ci.members, string(v))
		}
	}
	for i := range edges {
		e := &edges[i]
		c := comp[e.from]
		ci := cycles[c]
		if ci == nil || comp[e.to] != c {
			continue
		}
		if ci.edge == nil || e.pass.Fset.Position(e.pos).Offset < ci.edge.pass.Fset.Position(ci.edge.pos).Offset {
			ci.edge = e
		}
	}

	var findings []Finding
	var order []int
	for c := range cycles {
		order = append(order, c)
	}
	sort.Ints(order)
	for _, c := range order {
		ci := cycles[c]
		sort.Strings(ci.members)
		findings = append(findings, findingAt(ci.edge.pass, "lock-order", ci.edge.node,
			"lock acquisition cycle among {%s}; these locks are taken in inconsistent orders and can deadlock",
			strings.Join(ci.members, ", ")))
	}
	return findings
}
