package vet

import (
	"fmt"
	"regexp"
	"strings"
	"testing"
)

// wantRe extracts the quoted expectation patterns from a // want
// comment; both forms are accepted: want "pat" and want `pat`.
var wantRe = regexp.MustCompile(`"((?:[^"\\]|\\.)*)"|` + "`([^`]*)`")

type expectation struct {
	file    string
	line    int
	pattern *regexp.Regexp
	matched bool
}

// collectWants parses the fixture's // want comments into positional
// expectations, keyed to the line the comment sits on.
func collectWants(t *testing.T, pass *Pass) []*expectation {
	t.Helper()
	var wants []*expectation
	for _, file := range pass.Files {
		for _, cg := range file.Comments {
			for _, c := range cg.List {
				text := strings.TrimPrefix(c.Text, "//")
				idx := strings.Index(text, "want ")
				if idx < 0 {
					continue
				}
				pos := pass.Fset.Position(c.Pos())
				for _, m := range wantRe.FindAllStringSubmatch(text[idx:], -1) {
					pat := m[1]
					if pat == "" {
						pat = m[2]
					}
					re, err := regexp.Compile(pat)
					if err != nil {
						t.Fatalf("%s:%d: bad want pattern %q: %v", pos.Filename, pos.Line, pat, err)
					}
					wants = append(wants, &expectation{file: pos.Filename, line: pos.Line, pattern: re})
				}
			}
		}
	}
	return wants
}

// runGolden checks one analyzer against its testdata fixture: every
// finding must match a // want comment on its line, and every want
// must be hit. //vet:ignore directives are honored, exactly as in
// Check — a fixture site carrying a directive and no want comment
// proves the suppression path works.
func runGolden(t *testing.T, a *Analyzer, fixture, pkgPath string) {
	t.Helper()
	pass, err := LoadFixtureDir("testdata/"+fixture, pkgPath)
	if err != nil {
		t.Fatal(err)
	}
	wants := collectWants(t, pass)
	findings := Suppress([]*Pass{pass}, a.Run(pass))
	for _, f := range findings {
		ok := false
		for _, w := range wants {
			if !w.matched && w.file == f.Pos.Filename && w.line == f.Pos.Line && w.pattern.MatchString(f.Message) {
				w.matched = true
				ok = true
				break
			}
		}
		if !ok {
			t.Errorf("unexpected finding: %s", f)
		}
	}
	for _, w := range wants {
		if !w.matched {
			t.Errorf("%s:%d: expected finding matching %q, got none", w.file, w.line, w.pattern)
		}
	}
}

func TestClockDisciplineGolden(t *testing.T) {
	runGolden(t, ClockDiscipline, "clock", "dodo/internal/experiments")
}

func TestClockDisciplineAllowlist(t *testing.T) {
	// The same fixture checked under an allowlisted import path must be
	// silent: sim/transport/usocket implement the clocks themselves.
	pass, err := LoadFixtureDir("testdata/clock", "dodo/internal/sim")
	if err != nil {
		t.Fatal(err)
	}
	if fs := ClockDiscipline.Run(pass); len(fs) != 0 {
		t.Fatalf("allowlisted package produced findings: %v", fs)
	}
}

func TestSeededRandGolden(t *testing.T) {
	runGolden(t, SeededRand, "rand", "dodo/internal/workload")
}

func TestUncheckedErrorGolden(t *testing.T) {
	runGolden(t, UncheckedError, "errcheck", "dodo/internal/core")
}

func TestMutexHygieneGolden(t *testing.T) {
	runGolden(t, MutexHygiene, "mutex", "dodo/internal/manager")
}

func TestGoroutineLifecycleGolden(t *testing.T) {
	runGolden(t, GoroutineLifecycle, "goroutine", "dodo/internal/manager")
}

func TestGoroutineLifecycleOnlyDaemonPackages(t *testing.T) {
	// Outside the daemon set the same fixture must be silent: request-
	// scoped helpers may use fire-and-forget goroutines.
	pass, err := LoadFixtureDir("testdata/goroutine", "dodo/internal/experiments")
	if err != nil {
		t.Fatal(err)
	}
	if fs := GoroutineLifecycle.Run(pass); len(fs) != 0 {
		t.Fatalf("non-daemon package produced findings: %v", fs)
	}
}

func TestLockOrderGolden(t *testing.T) {
	runGolden(t, LockOrder, "lockorder", "dodo/internal/transport")
}

func TestLockOrderSkipsNonInternal(t *testing.T) {
	// Outside internal/ the same fixture must be silent: cmd and
	// example binaries hold no hierarchy locks by policy.
	pass, err := LoadFixtureDir("testdata/lockorder", "dodo/cmd/dodo-bench")
	if err != nil {
		t.Fatal(err)
	}
	if fs := LockOrder.Run(pass); len(fs) != 0 {
		t.Fatalf("non-internal package produced findings: %v", fs)
	}
}

func TestBufferOwnershipGolden(t *testing.T) {
	runGolden(t, BufferOwnership, "bufown", "dodo/internal/usocket")
}

func TestBufferOwnershipOnlyZeroCopyPackages(t *testing.T) {
	// Outside the zero-copy set the same fixture must be silent:
	// ordinary packages own the slices they pass around.
	pass, err := LoadFixtureDir("testdata/bufown", "dodo/internal/manager")
	if err != nil {
		t.Fatal(err)
	}
	if fs := BufferOwnership.Run(pass); len(fs) != 0 {
		t.Fatalf("non-zero-copy package produced findings: %v", fs)
	}
}

func TestWireExhaustivenessGolden(t *testing.T) {
	runGolden(t, WireExhaustiveness, "wireexhaust", "dodo/internal/wire")
}

func TestGuardedByGolden(t *testing.T) {
	runGolden(t, GuardedBy, "guardedby", "dodo/internal/manager")
}

func TestGuardedBySkipsNonInternal(t *testing.T) {
	// Outside internal/ the same fixture must be silent: cmd and example
	// binaries hold no annotated shared state by policy.
	pass, err := LoadFixtureDir("testdata/guardedby", "dodo/cmd/dodo-bench")
	if err != nil {
		t.Fatal(err)
	}
	if fs := GuardedBy.Run(pass); len(fs) != 0 {
		t.Fatalf("non-internal package produced findings: %v", fs)
	}
}

// TestCleanTree is the enforcement test: the repository itself must be
// free of findings. It is the same check `go run ./cmd/dodo-vet ./...`
// performs in verify.sh, kept here so a plain `go test ./...` also
// fails when an invariant regresses.
func TestCleanTree(t *testing.T) {
	if testing.Short() {
		t.Skip("loads and type-checks the whole module")
	}
	passes, skipped, err := LoadPackages("../..", "./...")
	if err != nil {
		t.Fatal(err)
	}
	if len(passes) == 0 {
		t.Fatal("no packages loaded")
	}
	for _, s := range skipped {
		t.Errorf("package skipped: %s", s)
	}
	findings := Check(passes, All())
	for _, f := range findings {
		t.Errorf("%s", f)
	}
}

// TestFindingFormat pins the file:line: analyzer: message contract that
// editors and CI log-matchers rely on.
func TestFindingFormat(t *testing.T) {
	pass, err := LoadFixtureDir("testdata/clock", "dodo/internal/experiments")
	if err != nil {
		t.Fatal(err)
	}
	findings := ClockDiscipline.Run(pass)
	if len(findings) == 0 {
		t.Fatal("fixture produced no findings")
	}
	got := findings[0].String()
	want := fmt.Sprintf("%s:%d: clock-discipline: ", findings[0].Pos.Filename, findings[0].Pos.Line)
	if !strings.HasPrefix(got, want) {
		t.Fatalf("finding %q does not start with %q", got, want)
	}
}

// TestLoadPackagesExcludesTests documents that the loader analyzes only
// non-test compilation units.
func TestLoadPackagesExcludesTests(t *testing.T) {
	if testing.Short() {
		t.Skip("loads and type-checks the whole module")
	}
	passes, _, err := LoadPackages("../..", "./internal/sim")
	if err != nil {
		t.Fatal(err)
	}
	for _, p := range passes {
		for _, f := range p.Files {
			name := p.Fset.Position(f.Pos()).Filename
			if strings.HasSuffix(name, "_test.go") {
				t.Errorf("test file %s was loaded", name)
			}
		}
	}
}

func TestResourceLifecycleGolden(t *testing.T) {
	runGolden(t, ResourceLifecycle, "resource", "dodo/internal/region")
}
