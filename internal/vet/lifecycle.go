package vet

// resource-lifecycle: whole-program, path-sensitive must-release
// analysis (DESIGN.md §12).
//
// Dodo's correctness rests on paired operations the compiler cannot
// see: every fd clone, manager grant, region pend marker, worker-pool
// slot and WaitGroup.Add must be matched on every path — including the
// error returns that reviews keep finding leaks on. This pass tracks
// acquired resources through each function body, merges branches with
// a union (a resource leaks if it is live on ANY path reaching a
// return), and reports every return a live resource can flow to,
// together with the acquisition site and the path condition.
//
// A small built-in registry seeds the tracking structurally:
//
//	os.Open/Create/OpenFile/CreateTemp  -> acquires kind "file"
//	(*os.File).Close                    -> releases "file"
//	(*sync.WaitGroup).Add / Done        -> acquires/releases "wg"
//	locks/sync (R)Lock / (R)Unlock      -> acquires/releases "lock"
//
// User code extends it with function annotations in doc comments:
//
//	// dodo:acquires(kind)   the caller receives ownership of one
//	//                       <kind> via the results (or, for expr-keyed
//	//                       kinds, the function intentionally leaves
//	//                       the counter elevated for its caller)
//	// dodo:releases(kind)   the function consumes a <kind> passed in
//	//                       via receiver or arguments
//	// dodo:transfers(kind)  ownership moves to a struct field, map,
//	//                       channel or collection inside this function
//	//                       (the region cache's r.pend markers and the
//	//                       manager's draining grants are the motivating
//	//                       cases)
//
// Per-function summaries (net resource delta per kind per return path,
// error vs nil-error returns distinguished) are inferred bottom-up and
// iterated to a fixpoint, so a helper that returns an os.File it opened
// is understood as an acquirer without any annotation.
//
// Deliberate approximations (documented in DESIGN.md §12):
//   - branch joins are unions, so correlated conditionals
//     ("if ok { acquire } ... if ok { release }") can report a false
//     leak; restructure or annotate — never //vet:ignore this pass.
//   - expr-keyed kinds (wg, lock) match across calls by the textual
//     receiver path ("c.prefetchWG"), so a release only discharges a
//     go-launched obligation when the receiver names line up.
//   - resources stored into collections are tracked as one obligation
//     on the collection variable, not per element.

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"regexp"
	"sort"
	"strings"
)

var ResourceLifecycle = &Analyzer{
	Name:       "resource-lifecycle",
	Doc:        "acquired resources (fds, grants, WaitGroup counts, locks) must be released or transferred on every path, including error returns",
	Run:        func(p *Pass) []Finding { return runResourceLifecycle([]*Pass{p}) },
	RunProgram: runResourceLifecycle,
}

// rlSkips returns true for packages whose internals implement the
// primitives themselves and would self-flag (locks.Mutex.Lock returns
// holding its own mutex by design).
func rlSkips(path string) bool {
	return strings.HasSuffix(path, "/internal/locks")
}

// ---------------------------------------------------------------------
// Annotations.

type rlAnnotation struct {
	acquires  map[string]bool
	releases  map[string]bool
	transfers map[string]bool
}

func (a rlAnnotation) empty() bool {
	return len(a.acquires) == 0 && len(a.releases) == 0 && len(a.transfers) == 0
}

var rlDirectiveRe = regexp.MustCompile(`^dodo:(acquires|releases|transfers)\(([a-zA-Z0-9_, -]+)\)`)

// rlParseDirectives extracts dodo:acquires/releases/transfers lines
// from a doc comment. Malformed kind lists are reported as findings so
// a typo cannot silently disable checking.
func rlParseDirectives(pass *Pass, doc *ast.CommentGroup, findings *[]Finding) rlAnnotation {
	ann := rlAnnotation{
		acquires:  map[string]bool{},
		releases:  map[string]bool{},
		transfers: map[string]bool{},
	}
	if doc == nil {
		return ann
	}
	for _, c := range doc.List {
		text := strings.TrimSpace(strings.TrimPrefix(c.Text, "//"))
		if !strings.HasPrefix(text, "dodo:") {
			continue
		}
		verb := text[len("dodo:"):]
		if !strings.HasPrefix(verb, "acquires") && !strings.HasPrefix(verb, "releases") && !strings.HasPrefix(verb, "transfers") {
			continue // a guarded-by directive or other dodo: family
		}
		m := rlDirectiveRe.FindStringSubmatch(text)
		if m == nil {
			*findings = append(*findings, findingAt(pass, "resource-lifecycle", c,
				"malformed lifecycle directive %q: want dodo:acquires(kind[, kind...]), dodo:releases(...) or dodo:transfers(...)", text))
			continue
		}
		var set map[string]bool
		switch m[1] {
		case "acquires":
			set = ann.acquires
		case "releases":
			set = ann.releases
		case "transfers":
			set = ann.transfers
		}
		for _, kind := range strings.Split(m[2], ",") {
			kind = strings.TrimSpace(kind)
			if kind == "" {
				*findings = append(*findings, findingAt(pass, "resource-lifecycle", c,
					"empty kind in lifecycle directive %q", text))
				continue
			}
			set[kind] = true
		}
	}
	return ann
}

// rlCollectAnnotations gathers lifecycle directives from every function
// declaration and interface method in the program, keyed by the
// function object's full name (so a call through region.Dodo picks up
// the interface method's annotation).
func rlCollectAnnotations(passes []*Pass) (map[string]rlAnnotation, []Finding) {
	anns := make(map[string]rlAnnotation)
	var findings []Finding
	record := func(pass *Pass, obj types.Object, doc *ast.CommentGroup) {
		fn, ok := obj.(*types.Func)
		if !ok {
			return
		}
		ann := rlParseDirectives(pass, doc, &findings)
		if !ann.empty() {
			anns[fn.FullName()] = ann
		}
	}
	for _, pass := range passes {
		for _, file := range pass.Files {
			for _, decl := range file.Decls {
				fd, ok := decl.(*ast.FuncDecl)
				if ok {
					record(pass, pass.Info.Defs[fd.Name], fd.Doc)
					continue
				}
				gd, ok := decl.(*ast.GenDecl)
				if !ok || gd.Tok != token.TYPE {
					continue
				}
				for _, spec := range gd.Specs {
					ts, ok := spec.(*ast.TypeSpec)
					if !ok {
						continue
					}
					it, ok := ts.Type.(*ast.InterfaceType)
					if !ok {
						continue
					}
					for _, f := range it.Methods.List {
						if len(f.Names) != 1 {
							continue
						}
						doc := f.Doc
						if doc == nil {
							doc = f.Comment
						}
						record(pass, pass.Info.Defs[f.Names[0]], doc)
					}
				}
			}
		}
	}
	return anns, findings
}

// ---------------------------------------------------------------------
// Summaries.

// rlSummary is a function's externally visible lifecycle behaviour:
// the union of its annotation and what the walker inferred from its
// body.
type rlSummary struct {
	acquires  map[string]bool // kinds the caller receives via the results
	releases  map[string]bool // kinds consumed via receiver/arguments
	transfers map[string]bool // kinds whose stores are sanctioned

	// releasesExprs holds textual receiver paths of expr-keyed releases
	// in the body ("c.prefetchWG"): a go statement launching this
	// function discharges a matching live obligation.
	releasesExprs map[string]bool

	// paramReleases maps parameter index -> kind for parameters the
	// body provably releases (an *os.File parameter that is Closed).
	paramReleases map[int]string
}

func newRLSummary() *rlSummary {
	return &rlSummary{
		acquires:      map[string]bool{},
		releases:      map[string]bool{},
		transfers:     map[string]bool{},
		releasesExprs: map[string]bool{},
		paramReleases: map[int]string{},
	}
}

// merge folds src into s and reports whether s changed.
func (s *rlSummary) merge(src *rlSummary) bool {
	changed := false
	for _, pair := range []struct{ dst, src map[string]bool }{
		{s.acquires, src.acquires},
		{s.releases, src.releases},
		{s.transfers, src.transfers},
		{s.releasesExprs, src.releasesExprs},
	} {
		for k := range pair.src {
			if !pair.dst[k] {
				pair.dst[k] = true
				changed = true
			}
		}
	}
	for i, k := range src.paramReleases {
		if s.paramReleases[i] != k {
			s.paramReleases[i] = k
			changed = true
		}
	}
	return changed
}

// ---------------------------------------------------------------------
// Built-in registry.

// rlFileAcquirers are stdlib functions whose (non-error) result is an
// open *os.File the caller owns.
var rlFileAcquirers = map[string]bool{
	"os.Open":       true,
	"os.Create":     true,
	"os.OpenFile":   true,
	"os.CreateTemp": true,
}

func rlIsFileClose(fn *types.Func) bool {
	if fn == nil || fn.Name() != "Close" {
		return false
	}
	sig, ok := fn.Type().(*types.Signature)
	if !ok || sig.Recv() == nil {
		return false
	}
	t := sig.Recv().Type()
	if ptr, ok := t.(*types.Pointer); ok {
		t = ptr.Elem()
	}
	named, ok := t.(*types.Named)
	return ok && named.Obj().Pkg() != nil && named.Obj().Pkg().Path() == "os" && named.Obj().Name() == "File"
}

// rlWaitGroupMethod reports Add (+1) / Done (-1) on a sync.WaitGroup
// receiver; atomic counters named Add resolve to different receivers
// and return 0.
func rlWaitGroupMethod(fn *types.Func) int {
	if fn == nil || fn.Pkg() == nil || fn.Pkg().Path() != "sync" {
		return 0
	}
	sig, ok := fn.Type().(*types.Signature)
	if !ok || sig.Recv() == nil {
		return 0
	}
	t := sig.Recv().Type()
	if ptr, ok := t.(*types.Pointer); ok {
		t = ptr.Elem()
	}
	named, ok := t.(*types.Named)
	if !ok || named.Obj().Name() != "WaitGroup" {
		return 0
	}
	switch fn.Name() {
	case "Add":
		return 1
	case "Done":
		return -1
	}
	return 0
}

// rlMutexMethod classifies (R)Lock/(R)Unlock on sync or locks mutexes:
// mode "w" or "r", delta +1/-1.
func rlMutexMethod(fn *types.Func) (mode string, delta int) {
	if fn == nil || fn.Pkg() == nil || !isLockPkg(fn.Pkg().Path()) {
		return "", 0
	}
	switch fn.Name() {
	case "Lock":
		return "w", 1
	case "RLock":
		return "r", 1
	case "Unlock":
		return "w", -1
	case "RUnlock":
		return "r", -1
	}
	return "", 0
}

// rlExprPath renders the textual receiver path of an expression
// ("c.prefetchWG", "wg"); "" when it has no stable ident root.
func rlExprPath(e ast.Expr) string {
	switch x := ast.Unparen(e).(type) {
	case *ast.Ident:
		return x.Name
	case *ast.SelectorExpr:
		base := rlExprPath(x.X)
		if base == "" {
			return ""
		}
		return base + "." + x.Sel.Name
	case *ast.StarExpr:
		return rlExprPath(x.X)
	}
	return ""
}

// ---------------------------------------------------------------------
// Per-path state.

// rlRes is one live obligation.
type rlRes struct {
	kind   string
	obj    types.Object // binding variable; nil for expr-keyed kinds
	expr   string       // textual path for expr-keyed kinds ("c.mu")
	mode   string       // lock mode "r"/"w"
	pos    token.Pos    // acquisition site
	errObj types.Object // paired error result: non-nil error means not acquired
	okObj  types.Object // paired bool result: false means not acquired
	cond   string       // innermost if-guard at acquisition ("d != nil"):
	//                     a later branch on the same text prunes the
	//                     opposite arm (correlated-conditional pattern)
}

func (r rlRes) key() string {
	if r.obj != nil {
		return fmt.Sprintf("v:%p", r.obj)
	}
	return "e:" + r.kind + ":" + r.mode + ":" + r.expr
}

func (r rlRes) what() string {
	if r.expr != "" {
		return r.kind + " " + r.expr
	}
	if r.obj != nil {
		return r.kind + " " + r.obj.Name()
	}
	return r.kind
}

const (
	rlErrUnknown = iota
	rlErrNonNil
	rlErrNil
)

// rlState is the per-path analysis state: live obligations plus what is
// known about error/ok variables on this path.
type rlState struct {
	live map[string]rlRes
	err  map[types.Object]int // error idents: rlErrNonNil / rlErrNil
	ok   map[types.Object]int // bool idents: rlErrNonNil = true, rlErrNil = false

	// debt records expr-keyed resources released below the baseline the
	// function was entered with (CondWaitTimeout's cond.L.Unlock): the
	// matching re-acquire repays the debt instead of creating a new
	// obligation, so the lock-juggling idiom nets to zero.
	debt map[string]bool
}

func newRLState() rlState {
	return rlState{live: map[string]rlRes{}, err: map[types.Object]int{}, ok: map[types.Object]int{}, debt: map[string]bool{}}
}

func (s rlState) clone() rlState {
	c := newRLState()
	for k, v := range s.live {
		c.live[k] = v
	}
	for k, v := range s.err {
		c.err[k] = v
	}
	for k, v := range s.ok {
		c.ok[k] = v
	}
	for k, v := range s.debt {
		c.debt[k] = v
	}
	return c
}

// rlUnion merges path states: obligations union (leak if live on any
// path), fact maps intersect (kept only where paths agree).
func rlUnion(states []rlState) rlState {
	out := newRLState()
	for _, s := range states {
		for k, v := range s.live {
			if _, dup := out.live[k]; !dup {
				out.live[k] = v
			}
		}
	}
	if len(states) > 0 {
		for k, v := range states[0].debt {
			agree := true
			for _, s := range states[1:] {
				if !s.debt[k] {
					agree = false
					break
				}
			}
			if agree {
				out.debt[k] = v
			}
		}
		for obj, v := range states[0].err {
			agree := true
			for _, s := range states[1:] {
				if s.err[obj] != v {
					agree = false
					break
				}
			}
			if agree {
				out.err[obj] = v
			}
		}
		for obj, v := range states[0].ok {
			agree := true
			for _, s := range states[1:] {
				if s.ok[obj] != v {
					agree = false
					break
				}
			}
			if agree {
				out.ok[obj] = v
			}
		}
	}
	return out
}

// dropPaired removes obligations whose paired error/ok variable proves
// the acquisition did not happen on this path.
func (s rlState) dropPaired(errObj types.Object, failed bool) {
	for k, r := range s.live {
		if failed && ((r.errObj != nil && r.errObj == errObj) || (r.okObj != nil && r.okObj == errObj)) {
			delete(s.live, k)
		}
	}
}

// ---------------------------------------------------------------------
// Walker.

type rlBreakable struct {
	isLoop     bool
	entry      rlState   // state at loop entry (for back-edge checks)
	breakOuts  []rlState // states at break statements targeting this
	sawBackRep map[string]bool
	// bodyPos/bodyEnd bound the loop body: obligations bound to a
	// variable declared outside it are accumulators (fds = append(fds,
	// fd)) that stay reachable across iterations, so the back-edge
	// check defers to the return-path checks instead of flagging them.
	bodyPos token.Pos
	bodyEnd token.Pos
}

type rlWalker struct {
	pass      *Pass
	summaries map[string]*rlSummary
	anns      map[string]rlAnnotation
	findings  *[]Finding
	report    bool

	fnName  string           // full name of the declared function ("" for literals)
	ann     rlAnnotation     // the function's own annotation
	sig     *types.Signature // for return classification
	results []*ast.Ident     // named results, for bare returns
	// entryPoint marks main.main: returning from it exits the process,
	// which releases every OS-backed resource, so end-of-path leak
	// reports are suppressed there (loop back-edge leaks still fire —
	// those accumulate while the process runs).
	entryPoint bool

	inferred *rlSummary // built during the walk
	params   []types.Object

	conds     []string // lexical path conditions, for diagnostics
	ifGuards  []string // enclosing if-branch guards, for correlation
	breakable []*rlBreakable
	inlineRet []*[]rlState // collectors for inline-invoked literals
}

// guard returns the innermost enclosing if-branch condition, used to
// correlate "if d != nil { acquire }" with a later "if d != nil {
// release }" over the same untouched condition.
func (w *rlWalker) guard() string {
	if len(w.ifGuards) == 0 {
		return ""
	}
	return w.ifGuards[len(w.ifGuards)-1]
}

func (w *rlWalker) condString() string {
	if len(w.conds) == 0 {
		return ""
	}
	return " [path: " + strings.Join(w.conds, " && ") + "]"
}

func (w *rlWalker) leak(retPos ast.Node, r rlRes, class string) {
	if !w.report || w.entryPoint {
		return
	}
	at := w.pass.Fset.Position(r.pos)
	*w.findings = append(*w.findings, findingAt(w.pass, "resource-lifecycle", retPos,
		"%s acquired at %s:%d is neither released nor transferred on this %s%s",
		r.what(), at.Filename, at.Line, class, w.condString()))
}

func (w *rlWalker) reportf(n ast.Node, format string, args ...any) {
	if !w.report {
		return
	}
	*w.findings = append(*w.findings, findingAt(w.pass, "resource-lifecycle", n, format, args...))
}

func (w *rlWalker) objOf(id *ast.Ident) types.Object {
	if obj := w.pass.Info.Defs[id]; obj != nil {
		return obj
	}
	return w.pass.Info.Uses[id]
}

// summaryFor resolves the effective summary of a called function:
// annotation first, then whatever the inference rounds produced.
func (w *rlWalker) summaryFor(fn *types.Func) (rlAnnotation, *rlSummary) {
	if fn == nil {
		return rlAnnotation{}, nil
	}
	name := fn.FullName()
	return w.anns[name], w.summaries[name]
}

// callEffects describes what one call does in lifecycle terms.
type rlCallEffect struct {
	acquires []string // var-kinds to bind to the result
	exprAcq  *rlRes   // expr-keyed acquisition (wg/lock), nil if none
	exprRel  string   // key of expr-keyed release, "" if none
	relKinds []string // kinds released via args/receiver
	trnKinds []string // kinds consumed (transferred into) via args
	parRel   map[int]string
}

func (w *rlWalker) effectOf(call *ast.CallExpr) rlCallEffect {
	var eff rlCallEffect
	fn := funcFor(w.pass.Info, call)
	if fn == nil {
		return eff
	}
	// Structural built-ins.
	if rlFileAcquirers[fn.FullName()] {
		eff.acquires = append(eff.acquires, "file")
		return eff
	}
	if rlIsFileClose(fn) {
		eff.relKinds = append(eff.relKinds, "file")
		return eff
	}
	if d := rlWaitGroupMethod(fn); d != 0 {
		sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr)
		if !ok {
			return eff
		}
		path := rlExprPath(sel.X)
		if path == "" {
			return eff
		}
		r := rlRes{kind: "wg", expr: path, pos: call.Pos()}
		if d > 0 {
			eff.exprAcq = &r
		} else {
			eff.exprRel = r.key()
		}
		return eff
	}
	if mode, d := rlMutexMethod(fn); d != 0 {
		sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr)
		if !ok {
			return eff
		}
		path := rlExprPath(sel.X)
		if path == "" {
			return eff
		}
		r := rlRes{kind: "lock", expr: path, mode: mode, pos: call.Pos()}
		if d > 0 {
			eff.exprAcq = &r
		} else {
			eff.exprRel = r.key()
		}
		return eff
	}
	// Annotations and inferred summaries.
	ann, sum := w.summaryFor(fn)
	for k := range ann.acquires {
		eff.acquires = append(eff.acquires, k)
	}
	for k := range ann.releases {
		eff.relKinds = append(eff.relKinds, k)
	}
	for k := range ann.transfers {
		eff.trnKinds = append(eff.trnKinds, k)
	}
	if sum != nil {
		for k := range sum.acquires {
			if !ann.acquires[k] {
				eff.acquires = append(eff.acquires, k)
			}
		}
		for k := range sum.releases {
			if !ann.releases[k] {
				eff.relKinds = append(eff.relKinds, k)
			}
		}
		eff.parRel = sum.paramReleases
	}
	sort.Strings(eff.acquires)
	return eff
}

// argExprs returns the receiver (if a method call) followed by the
// arguments: the expressions through which obligations can be handed to
// a callee.
func rlArgExprs(call *ast.CallExpr) []ast.Expr {
	var out []ast.Expr
	if sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr); ok {
		out = append(out, sel.X)
	}
	out = append(out, call.Args...)
	return out
}

// rlRootIdent is gbRootIdent plus &-unwrapping: settle(&victims[i])
// hands the obligation riding victims to the callee.
func rlRootIdent(e ast.Expr) *ast.Ident {
	if ue, ok := ast.Unparen(e).(*ast.UnaryExpr); ok && ue.Op == token.AND {
		e = ue.X
	}
	return gbRootIdent(e)
}

// discharge removes every live obligation of kind k whose binding
// object is referenced by one of the exprs. Returns true if anything
// was discharged.
func (w *rlWalker) discharge(st rlState, kind string, exprs []ast.Expr) bool {
	any := false
	for _, e := range exprs {
		id := rlRootIdent(e)
		if id == nil {
			continue
		}
		obj := w.objOf(id)
		if obj == nil {
			continue
		}
		for k, r := range st.live {
			if r.kind == kind && r.obj != nil && r.obj == obj {
				delete(st.live, k)
				any = true
			}
		}
	}
	return any
}

// call processes one call expression's lifecycle effects against st,
// binding acquisitions to binds (parallel to the call's results; nil
// entries or a nil slice discard). Statement position stmt anchors
// discarded-result findings.
func (w *rlWalker) call(call *ast.CallExpr, st rlState, binds []types.Object, stmt ast.Node) {
	// Inline-invoked literal: walk the body sharing this path's state.
	if lit, ok := ast.Unparen(call.Fun).(*ast.FuncLit); ok {
		out := w.walkInlineLit(lit, st)
		// walkInlineLit mutated a clone; fold its result back in place.
		for k := range st.live {
			if _, keep := out.live[k]; !keep {
				delete(st.live, k)
			}
		}
		for k, v := range out.live {
			st.live[k] = v
		}
		return
	}
	eff := w.effectOf(call)
	if eff.exprAcq != nil {
		r := *eff.exprAcq
		if st.debt[r.key()] {
			// Re-acquiring what this function released below baseline
			// (lock juggling): the pair nets to zero.
			delete(st.debt, r.key())
			return
		}
		r.cond = w.guard()
		st.live[r.key()] = r
		return
	}
	if eff.exprRel != "" {
		if _, ok := st.live[eff.exprRel]; ok {
			delete(st.live, eff.exprRel)
		} else {
			// Releasing a counter this function never raised: the
			// baseline came from the caller. Record it in the summary so
			// go-launch sites can match it up, and as a debt so a
			// matching re-acquire nets out.
			w.inferred.releasesExprs[eff.exprRel] = true
			st.debt[eff.exprRel] = true
		}
		return
	}
	args := rlArgExprs(call)
	for _, k := range eff.relKinds {
		if w.discharge(st, k, args) {
			continue
		}
		// A release whose resource came in via one of our own
		// parameters: infer a param-release summary.
		w.noteParamRelease(k, args)
	}
	for _, k := range eff.trnKinds {
		w.discharge(st, k, args)
	}
	for i, k := range eff.parRel {
		if i < len(call.Args) {
			w.discharge(st, k, []ast.Expr{call.Args[i]})
			_ = k
		}
	}
	if len(eff.acquires) > 0 {
		// An acquirer whose results are all bool/error (tryHedgeLeg)
		// raises an expr-keyed counter for its caller; there is nothing
		// caller-side to bind, so nothing to demand.
		if fn := funcFor(w.pass.Info, call); fn != nil {
			if sig, ok := fn.Type().(*types.Signature); ok {
				trackable := false
				for i := 0; i < sig.Results().Len(); i++ {
					t := sig.Results().At(i).Type()
					if isErrorType(t) {
						continue
					}
					if basic, ok := t.(*types.Basic); ok && basic.Kind() == types.Bool {
						continue
					}
					trackable = true
				}
				if !trackable {
					return
				}
			}
		}
		bound := false
		for _, obj := range binds {
			if obj == nil || obj.Name() == "_" {
				continue
			}
			bound = true
			break
		}
		if !bound {
			w.reportf(stmt, "result of %s carries %s but is discarded; bind it or release it",
				callName(call), strings.Join(eff.acquires, ", "))
			return
		}
		// Bind every acquired kind to the first usable (non-error,
		// non-bool) result object; record err/ok pairings.
		var target types.Object
		var errObj, okObj types.Object
		for _, obj := range binds {
			if obj == nil || obj.Name() == "_" {
				continue
			}
			if isErrorType(obj.Type()) {
				errObj = obj
				continue
			}
			if basic, ok := obj.Type().(*types.Basic); ok && basic.Kind() == types.Bool {
				okObj = obj
				continue
			}
			if target == nil {
				target = obj
			}
		}
		if target == nil {
			// Only error/bool results bound: expr-keyed contract (e.g. an
			// annotated tryHedgeLeg); nothing trackable caller-side.
			return
		}
		for _, kind := range eff.acquires {
			r := rlRes{kind: kind, obj: target, pos: call.Pos(), errObj: errObj, okObj: okObj, cond: w.guard()}
			st.live[r.key()] = r
		}
	}
}

func callName(call *ast.CallExpr) string {
	switch fun := ast.Unparen(call.Fun).(type) {
	case *ast.SelectorExpr:
		return rlExprPath(fun.X) + "." + fun.Sel.Name
	case *ast.Ident:
		return fun.Name
	}
	return "call"
}

// noteParamRelease records that kind k was released through one of this
// function's own parameters.
func (w *rlWalker) noteParamRelease(k string, exprs []ast.Expr) {
	for _, e := range exprs {
		id := rlRootIdent(e)
		if id == nil {
			continue
		}
		obj := w.objOf(id)
		if obj == nil {
			continue
		}
		for i, p := range w.params {
			if p == obj {
				w.inferred.paramReleases[i] = k
				if i == 0 && w.sig != nil && w.sig.Recv() != nil {
					// receiver-released kinds surface as plain releases
					w.inferred.releases[k] = true
				}
			}
		}
	}
}

// scanRelease looks through an arbitrary statement tree (a deferred or
// go-launched function literal body) for releases matching live
// obligations: expr-keyed Done/Unlock with the same textual path,
// Close-style releases of captured variables, and calls to functions
// whose summary releases a kind through an argument.
func (w *rlWalker) scanRelease(root ast.Node, st rlState) {
	ast.Inspect(root, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		eff := w.effectOf(call)
		if eff.exprRel != "" {
			delete(st.live, eff.exprRel)
		}
		args := rlArgExprs(call)
		for _, k := range eff.relKinds {
			w.discharge(st, k, args)
		}
		for _, k := range eff.trnKinds {
			w.discharge(st, k, args)
		}
		return true
	})
}

// walkLitFresh analyzes a function literal as its own anonymous
// function (goroutine bodies, closures bound to variables): fresh
// state, same summaries, leaks inside it reported in place.
func (w *rlWalker) walkLitFresh(lit *ast.FuncLit) {
	sig, _ := w.pass.Info.Types[lit].Type.(*types.Signature)
	sub := &rlWalker{
		pass:      w.pass,
		summaries: w.summaries,
		anns:      w.anns,
		findings:  w.findings,
		report:    w.report,
		sig:       sig,
		inferred:  newRLSummary(),
	}
	out, terminated := sub.walk(lit.Body.List, newRLState())
	if !terminated {
		sub.endOfBody(lit, out)
	}
	// Expr-keyed releases inside the literal count toward the enclosing
	// function's summary: "go c.run()" where run's body defers
	// c.wg.Done() must discharge the caller's obligation whether run is
	// a method or a literal wrapped by one.
	for k := range sub.inferred.releasesExprs {
		w.inferred.releasesExprs[k] = true
	}
}

// walkInlineLit walks an immediately-invoked literal sharing the
// caller's path state; returns the union of the states at its returns
// and fallthrough.
func (w *rlWalker) walkInlineLit(lit *ast.FuncLit, st rlState) rlState {
	collector := &[]rlState{}
	w.inlineRet = append(w.inlineRet, collector)
	out, terminated := w.walk(lit.Body.List, st.clone())
	w.inlineRet = w.inlineRet[:len(w.inlineRet)-1]
	states := *collector
	if !terminated {
		states = append(states, out)
	}
	if len(states) == 0 {
		return st
	}
	return rlUnion(states)
}

// splitCond prunes obligations and records error facts for the two
// arms of a condition.
func (w *rlWalker) splitCond(cond ast.Expr, thenSt, elseSt rlState) {
	switch e := ast.Unparen(cond).(type) {
	case *ast.BinaryExpr:
		switch e.Op {
		case token.LAND:
			w.splitCond(e.X, thenSt, newRLState())
			w.splitCond(e.Y, thenSt, newRLState())
			return
		case token.LOR:
			w.splitCond(e.X, newRLState(), elseSt)
			w.splitCond(e.Y, newRLState(), elseSt)
			return
		case token.NEQ, token.EQL:
			id, nilSide := rlIdentVsNil(w.pass, e)
			if id == nil || !nilSide {
				return
			}
			obj := w.objOf(id)
			if obj == nil {
				return
			}
			neq := e.Op == token.NEQ
			if isErrorType(obj.Type()) {
				if neq { // err != nil: then => failed, else => succeeded
					thenSt.dropPaired(obj, true)
					thenSt.err[obj] = rlErrNonNil
					elseSt.err[obj] = rlErrNil
				} else { // err == nil
					elseSt.dropPaired(obj, true)
					thenSt.err[obj] = rlErrNil
					elseSt.err[obj] = rlErrNonNil
				}
				return
			}
			// x != nil where x binds a resource: nil means not acquired.
			if neq {
				rlDropBoundTo(thenSt, obj, false)
				rlDropBoundTo(elseSt, obj, true)
			} else {
				rlDropBoundTo(thenSt, obj, true)
				rlDropBoundTo(elseSt, obj, false)
			}
			return
		}
	case *ast.Ident:
		obj := w.objOf(e)
		if obj == nil {
			return
		}
		// if ok { ... }: the else path never acquired.
		elseSt.dropPaired(obj, true)
		thenSt.ok[obj] = rlErrNonNil
		elseSt.ok[obj] = rlErrNil
	case *ast.UnaryExpr:
		if e.Op == token.NOT {
			if id, ok := ast.Unparen(e.X).(*ast.Ident); ok {
				obj := w.objOf(id)
				if obj == nil {
					return
				}
				thenSt.dropPaired(obj, true)
				thenSt.ok[obj] = rlErrNil
				elseSt.ok[obj] = rlErrNonNil
			}
		}
	}
}

// rlIdentVsNil matches `ident OP nil` / `nil OP ident`.
func rlIdentVsNil(pass *Pass, e *ast.BinaryExpr) (*ast.Ident, bool) {
	isNil := func(x ast.Expr) bool {
		id, ok := ast.Unparen(x).(*ast.Ident)
		if !ok {
			return false
		}
		_, isNilObj := pass.Info.Uses[id].(*types.Nil)
		return isNilObj
	}
	if id, ok := ast.Unparen(e.X).(*ast.Ident); ok && isNil(e.Y) {
		return id, true
	}
	if id, ok := ast.Unparen(e.Y).(*ast.Ident); ok && isNil(e.X) {
		return id, true
	}
	return nil, false
}

// rlDropGuard removes obligations that were acquired under the given
// if-guard text: control cannot be on the opposite arm of the same
// (untouched) condition.
func rlDropGuard(st rlState, guard string) {
	for k, r := range st.live {
		if r.cond != "" && r.cond == guard {
			delete(st.live, k)
		}
	}
}

// rlDropBoundTo removes (drop=true) obligations bound to obj.
func rlDropBoundTo(st rlState, obj types.Object, drop bool) {
	if !drop {
		return
	}
	for k, r := range st.live {
		if r.obj != nil && r.obj == obj {
			delete(st.live, k)
		}
	}
}

// ---------------------------------------------------------------------
// Statement walk.

// walk analyzes stmts against st (mutated in place) and reports whether
// every path through them terminated (returned, broke, or panicked).
func (w *rlWalker) walk(stmts []ast.Stmt, st rlState) (rlState, bool) {
	for _, stmt := range stmts {
		var terminated bool
		st, terminated = w.stmt(stmt, st)
		if terminated {
			return st, true
		}
	}
	return st, false
}

func (w *rlWalker) pushCond(c string) { w.conds = append(w.conds, c) }
func (w *rlWalker) popCond()          { w.conds = w.conds[:len(w.conds)-1] }

func rlCondText(pass *Pass, e ast.Expr) string {
	if e == nil {
		return "true"
	}
	path := rlExprPath(e)
	if path != "" {
		return path
	}
	if be, ok := ast.Unparen(e).(*ast.BinaryExpr); ok {
		l, r := rlExprPath(be.X), rlExprPath(be.Y)
		if id, nilSide := rlIdentVsNil(pass, be); id != nil && nilSide {
			return id.Name + " " + be.Op.String() + " nil"
		}
		if l != "" && r != "" {
			return l + " " + be.Op.String() + " " + r
		}
	}
	if ue, ok := ast.Unparen(e).(*ast.UnaryExpr); ok && ue.Op == token.NOT {
		if p := rlExprPath(ue.X); p != "" {
			return "!" + p
		}
	}
	return "…"
}

func (w *rlWalker) stmt(s ast.Stmt, st rlState) (rlState, bool) {
	switch stmt := s.(type) {
	case *ast.ExprStmt:
		if call, ok := ast.Unparen(stmt.X).(*ast.CallExpr); ok {
			w.scanNestedLits(call)
			w.call(call, st, nil, stmt)
		}
		return st, false

	case *ast.AssignStmt:
		return w.assign(stmt, st), false

	case *ast.DeclStmt:
		if gd, ok := stmt.Decl.(*ast.GenDecl); ok {
			for _, spec := range gd.Specs {
				vs, ok := spec.(*ast.ValueSpec)
				if !ok || len(vs.Values) == 0 {
					continue
				}
				w.bindValues(vs.Names, vs.Values, st, stmt)
			}
		}
		return st, false

	case *ast.ReturnStmt:
		w.ret(stmt, st)
		return st, true

	case *ast.IfStmt:
		if stmt.Init != nil {
			st, _ = w.stmt(stmt.Init, st)
		}
		w.scanExprCalls(stmt.Cond, st)
		thenSt, elseSt := st.clone(), st.clone()
		w.splitCond(stmt.Cond, thenSt, elseSt)
		cond := rlCondText(w.pass, stmt.Cond)
		// Correlated conditionals: a resource acquired under this same
		// guard text earlier cannot be live on the opposite arm.
		rlDropGuard(thenSt, "!("+cond+")")
		rlDropGuard(elseSt, cond)
		w.pushCond(cond)
		w.ifGuards = append(w.ifGuards, cond)
		thenOut, thenTerm := w.walk(stmt.Body.List, thenSt)
		w.ifGuards = w.ifGuards[:len(w.ifGuards)-1]
		w.popCond()
		var elseOut rlState
		elseTerm := false
		if stmt.Else != nil {
			w.pushCond("!(" + cond + ")")
			w.ifGuards = append(w.ifGuards, "!("+cond+")")
			elseOut, elseTerm = w.stmt(stmt.Else, elseSt)
			w.ifGuards = w.ifGuards[:len(w.ifGuards)-1]
			w.popCond()
		} else {
			elseOut = elseSt
		}
		switch {
		case thenTerm && elseTerm:
			return st, true
		case thenTerm:
			return elseOut, false
		case elseTerm:
			return thenOut, false
		default:
			return rlUnion([]rlState{thenOut, elseOut}), false
		}

	case *ast.BlockStmt:
		return w.walk(stmt.List, st)

	case *ast.LabeledStmt:
		return w.stmt(stmt.Stmt, st)

	case *ast.ForStmt:
		if stmt.Init != nil {
			st, _ = w.stmt(stmt.Init, st)
		}
		w.scanExprCalls(stmt.Cond, st)
		return w.loop(stmt.Body, st, stmt.Cond != nil, rlCondText(w.pass, stmt.Cond))

	case *ast.RangeStmt:
		w.scanExprCalls(stmt.X, st)
		return w.loop(stmt.Body, st, true, "range "+rlCondText(w.pass, stmt.X))

	case *ast.SwitchStmt:
		if stmt.Init != nil {
			st, _ = w.stmt(stmt.Init, st)
		}
		w.scanExprCalls(stmt.Tag, st)
		return w.switchLike(stmt.Body, st, func(cc *ast.CaseClause) ([]ast.Stmt, string, bool) {
			return cc.Body, rlCaseText(stmt.Tag, cc), cc.List == nil
		})

	case *ast.TypeSwitchStmt:
		if stmt.Init != nil {
			st, _ = w.stmt(stmt.Init, st)
		}
		return w.switchLike(stmt.Body, st, func(cc *ast.CaseClause) ([]ast.Stmt, string, bool) {
			return cc.Body, "case …", cc.List == nil
		})

	case *ast.SelectStmt:
		w.breakable = append(w.breakable, &rlBreakable{})
		var outs []rlState
		allTerm := true
		hasDefault := false
		for _, clause := range stmt.Body.List {
			comm, ok := clause.(*ast.CommClause)
			if !ok {
				continue
			}
			cs := st.clone()
			if comm.Comm == nil {
				hasDefault = true
			} else {
				cs, _ = w.stmt(comm.Comm, cs)
			}
			w.pushCond("select-case")
			out, term := w.walk(comm.Body, cs)
			w.popCond()
			if !term {
				outs = append(outs, out)
				allTerm = false
			}
		}
		br := w.breakable[len(w.breakable)-1]
		w.breakable = w.breakable[:len(w.breakable)-1]
		outs = append(outs, br.breakOuts...)
		_ = hasDefault
		if len(outs) == 0 {
			return st, allTerm && len(stmt.Body.List) > 0
		}
		return rlUnion(outs), false

	case *ast.GoStmt:
		w.goStmt(stmt, st)
		return st, false

	case *ast.DeferStmt:
		w.deferStmt(stmt, st)
		return st, false

	case *ast.SendStmt:
		w.scanExprCalls(stmt.Value, st)
		w.transferInto(stmt.Value, st, stmt, "channel send")
		return st, false

	case *ast.BranchStmt:
		switch stmt.Tok {
		case token.BREAK:
			for i := len(w.breakable) - 1; i >= 0; i-- {
				if stmt.Label == nil || w.breakable[i].isLoop {
					w.breakable[i].breakOuts = append(w.breakable[i].breakOuts, st.clone())
					break
				}
			}
			return st, true
		case token.CONTINUE:
			for i := len(w.breakable) - 1; i >= 0; i-- {
				if w.breakable[i].isLoop {
					w.backEdge(w.breakable[i], st, stmt)
					break
				}
			}
			return st, true
		case token.GOTO:
			return st, true
		}
		return st, false

	case *ast.IncDecStmt, *ast.EmptyStmt:
		return st, false

	default:
		return st, false
	}
}

func rlCaseText(tag ast.Expr, cc *ast.CaseClause) string {
	if cc.List == nil {
		return "default"
	}
	t := "case"
	if tag != nil {
		if p := rlExprPath(tag); p != "" {
			t = p + " ="
		}
	}
	if len(cc.List) > 0 {
		if p := rlExprPath(cc.List[0]); p != "" {
			return t + " " + p
		}
	}
	return t + " …"
}

func (w *rlWalker) switchLike(body *ast.BlockStmt, st rlState, caseOf func(*ast.CaseClause) ([]ast.Stmt, string, bool)) (rlState, bool) {
	w.breakable = append(w.breakable, &rlBreakable{})
	var outs []rlState
	hasDefault := false
	allTerm := true
	n := 0
	for _, clause := range body.List {
		cc, ok := clause.(*ast.CaseClause)
		if !ok {
			continue
		}
		n++
		stmts, cond, isDefault := caseOf(cc)
		if isDefault {
			hasDefault = true
		}
		w.pushCond(cond)
		out, term := w.walk(stmts, st.clone())
		w.popCond()
		if !term {
			outs = append(outs, out)
			allTerm = false
		}
	}
	br := w.breakable[len(w.breakable)-1]
	w.breakable = w.breakable[:len(w.breakable)-1]
	outs = append(outs, br.breakOuts...)
	if len(br.breakOuts) > 0 {
		allTerm = false
	}
	if !hasDefault {
		outs = append(outs, st)
		allTerm = false
	}
	if len(outs) == 0 {
		return st, allTerm && n > 0
	}
	return rlUnion(outs), allTerm && len(outs) == 0
}

// backEdge flags resources acquired inside a loop body that are still
// live when control heads back to the top: the next iteration
// re-acquires and the previous obligation is lost.
func (w *rlWalker) backEdge(br *rlBreakable, st rlState, at ast.Node) {
	for k, r := range st.live {
		if _, atEntry := br.entry.live[k]; atEntry {
			continue
		}
		if br.sawBackRep[k] {
			continue
		}
		if r.obj != nil && (r.obj.Pos() < br.bodyPos || r.obj.Pos() >= br.bodyEnd) {
			// Bound to a variable declared outside the loop: the next
			// iteration still sees it, so nothing is lost on the
			// back-edge. The leak, if any, is caught at the returns.
			continue
		}
		br.sawBackRep[k] = true
		if w.report {
			pos := w.pass.Fset.Position(r.pos)
			*w.findings = append(*w.findings, findingAt(w.pass, "resource-lifecycle", at,
				"%s acquired at %s:%d inside the loop body is still live on the loop back-edge; the next iteration re-acquires and this one leaks%s",
				r.what(), pos.Filename, pos.Line, w.condString()))
		}
		delete(st.live, k)
	}
}

func (w *rlWalker) loop(body *ast.BlockStmt, st rlState, mayskip bool, cond string) (rlState, bool) {
	br := &rlBreakable{
		isLoop: true, entry: st.clone(), sawBackRep: map[string]bool{},
		bodyPos: body.Pos(), bodyEnd: body.End(),
	}
	w.breakable = append(w.breakable, br)
	w.pushCond(cond)
	out, term := w.walk(body.List, st.clone())
	w.popCond()
	w.breakable = w.breakable[:len(w.breakable)-1]
	if !term {
		w.backEdge(br, out, body)
	}
	var outs []rlState
	if mayskip {
		outs = append(outs, st)
	}
	outs = append(outs, br.breakOuts...)
	if !term {
		outs = append(outs, out)
	}
	if len(outs) == 0 {
		// for {} with no break and a terminating body: nothing follows.
		return st, true
	}
	return rlUnion(outs), false
}

// scanExprCalls handles calls buried in non-statement expressions
// (conditions, range targets): lifecycle effects still apply, results
// are unbound.
func (w *rlWalker) scanExprCalls(e ast.Expr, st rlState) {
	if e == nil {
		return
	}
	ast.Inspect(e, func(n ast.Node) bool {
		if lit, ok := n.(*ast.FuncLit); ok {
			w.walkLitFresh(lit)
			return false
		}
		if call, ok := n.(*ast.CallExpr); ok {
			if _, isLit := ast.Unparen(call.Fun).(*ast.FuncLit); !isLit {
				w.call(call, st, nil, call)
			}
		}
		return true
	})
}

// scanNestedLits walks function literals appearing as call arguments
// (callbacks) as fresh anonymous functions.
func (w *rlWalker) scanNestedLits(call *ast.CallExpr) {
	for _, arg := range call.Args {
		if lit, ok := ast.Unparen(arg).(*ast.FuncLit); ok {
			w.walkLitFresh(lit)
		}
	}
}

// transferInto handles a tracked resource moving into a field, map,
// channel or composite: sanctioned only under a dodo:transfers
// annotation on the enclosing function. The obligation is discharged
// either way so one move is reported once, at the move.
func (w *rlWalker) transferInto(rhs ast.Expr, st rlState, at ast.Node, how string) {
	if rhs == nil {
		return
	}
	ast.Inspect(rhs, func(n ast.Node) bool {
		if _, ok := n.(*ast.FuncLit); ok {
			return false
		}
		id, ok := n.(*ast.Ident)
		if !ok {
			return true
		}
		obj := w.objOf(id)
		if obj == nil {
			return true
		}
		for k, r := range st.live {
			if r.obj == nil || r.obj != obj {
				continue
			}
			delete(st.live, k)
			if !w.ann.transfers[r.kind] {
				w.reportf(at, "%s moves into a %s without a dodo:transfers(%s) annotation on the enclosing function",
					r.what(), how, r.kind)
			}
		}
		return true
	})
}

// assign handles binding acquisitions, rebinding/collecting
// obligations, and stores that transfer ownership.
func (w *rlWalker) assign(stmt *ast.AssignStmt, st rlState) rlState {
	if len(stmt.Lhs) == len(stmt.Rhs) {
		names := make([]*ast.Ident, len(stmt.Lhs))
		simple := true
		for i, l := range stmt.Lhs {
			if id, ok := ast.Unparen(l).(*ast.Ident); ok {
				names[i] = id
			} else {
				simple = false
			}
		}
		if simple && len(stmt.Rhs) > 1 {
			for i := range stmt.Rhs {
				w.bindValues([]*ast.Ident{names[i]}, []ast.Expr{stmt.Rhs[i]}, st, stmt)
			}
			return st
		}
	}
	if len(stmt.Rhs) == 1 {
		rhs := stmt.Rhs[0]
		// Store into a field/map/slice element: ownership transfer.
		allIdent := true
		for _, l := range stmt.Lhs {
			if _, ok := ast.Unparen(l).(*ast.Ident); !ok {
				allIdent = false
			}
		}
		if !allIdent {
			w.scanExprCalls(rhs, st)
			w.transferInto(rhs, st, stmt, "field, map or element store")
			return st
		}
		var names []*ast.Ident
		for _, l := range stmt.Lhs {
			names = append(names, ast.Unparen(l).(*ast.Ident))
		}
		w.bindValues(names, []ast.Expr{rhs}, st, stmt)
		return st
	}
	// n := m assignments with mixed shapes: conservatively scan calls.
	for _, r := range stmt.Rhs {
		w.scanExprCalls(r, st)
	}
	return st
}

// bindValues binds the lifecycle effects of values (one call with
// multiple results, or element-wise values) to the named targets.
func (w *rlWalker) bindValues(names []*ast.Ident, values []ast.Expr, st rlState, at ast.Node) {
	if len(values) == 1 {
		rhs := ast.Unparen(values[0])
		if call, ok := rhs.(*ast.CallExpr); ok {
			w.scanNestedLits(call)
			// Nested acquiring calls inside a wrapper (append(xs,
			// acquire()...)) bind to the first target.
			binds := make([]types.Object, len(names))
			for i, id := range names {
				if id != nil {
					binds[i] = w.objOf(id)
				}
			}
			if inner := rlInnerAcquiringCall(w, call); inner != nil && inner != call {
				w.call(inner, st, []types.Object{rlFirstObj(binds)}, at)
				// The wrapper may also move live obligations (append).
				w.rebindInto(call, rlFirstObj(binds), st)
				return
			}
			w.call(call, st, binds, at)
			// xs = append(xs, job): obligations riding the appended
			// values follow them into the collection binding.
			if rlIsAppend(w.pass, call) {
				w.rebindInto(call, rlFirstObj(binds), st)
			}
			return
		}
		if _, ok := rhs.(*ast.CompositeLit); ok {
			// job := evictJob{marker: newInflight()}: the acquisition
			// binds to the composite's variable.
			binds := make([]types.Object, len(names))
			for i, id := range names {
				if id != nil {
					binds[i] = w.objOf(id)
				}
			}
			if inner := rlInnerAcquiringCall(w, rhs); inner != nil {
				w.call(inner, st, []types.Object{rlFirstObj(binds)}, at)
				return
			}
			w.scanExprCalls(values[0], st)
			return
		}
		// Plain expression: a live resource flowing to a new name
		// (aliasing) or into a collection via append handled above; a
		// bare `x = res` rebind keeps the original binding object.
		for _, id := range names {
			_ = id
		}
		w.scanExprCalls(values[0], st)
		return
	}
	for i, v := range values {
		var n []*ast.Ident
		if i < len(names) {
			n = []*ast.Ident{names[i]}
		}
		w.bindValues(n, []ast.Expr{v}, st, at)
	}
}

func rlFirstObj(objs []types.Object) types.Object {
	for _, o := range objs {
		if o != nil && o.Name() != "_" {
			return o
		}
	}
	return nil
}

// rlInnerAcquiringCall finds an acquiring call nested inside wrapper
// expressions: append(orphans, m.discardDrainingLocked(addr)...) or a
// composite literal field (evictJob{marker: newInflight()}).
func rlInnerAcquiringCall(w *rlWalker, e ast.Expr) *ast.CallExpr {
	switch x := ast.Unparen(e).(type) {
	case *ast.CallExpr:
		if len(w.effectOf(x).acquires) > 0 {
			return x
		}
		var found *ast.CallExpr
		for _, arg := range x.Args {
			if c := rlInnerAcquiringCall(w, arg); c != nil {
				found = c
			}
		}
		return found
	case *ast.CompositeLit:
		var found *ast.CallExpr
		for _, elt := range x.Elts {
			if kv, ok := elt.(*ast.KeyValueExpr); ok {
				elt = kv.Value
			}
			if c := rlInnerAcquiringCall(w, elt); c != nil {
				found = c
			}
		}
		return found
	case *ast.UnaryExpr:
		if x.Op == token.AND {
			return rlInnerAcquiringCall(w, x.X)
		}
	}
	return nil
}

// rlIsAppend reports a call to the builtin append.
func rlIsAppend(pass *Pass, call *ast.CallExpr) bool {
	id, ok := ast.Unparen(call.Fun).(*ast.Ident)
	if !ok {
		return false
	}
	b, ok := pass.Info.Uses[id].(*types.Builtin)
	return ok && b.Name() == "append"
}

// rebindInto moves obligations referenced by call arguments onto the
// assignment target: grants = append(grants, g) re-keys g's obligation
// to grants.
func (w *rlWalker) rebindInto(call *ast.CallExpr, target types.Object, st rlState) {
	if target == nil {
		return
	}
	for _, arg := range call.Args {
		id := rlRootIdent(arg)
		if id == nil {
			continue
		}
		obj := w.objOf(id)
		if obj == nil || obj == target {
			continue
		}
		for k, r := range st.live {
			if r.obj != nil && r.obj == obj {
				delete(st.live, k)
				r.obj = target
				st.live[r.key()] = r
			}
		}
	}
}

// goStmt discharges obligations handed to a launched goroutine and
// analyzes literal bodies as fresh functions.
func (w *rlWalker) goStmt(stmt *ast.GoStmt, st rlState) {
	call := stmt.Call
	if lit, ok := ast.Unparen(call.Fun).(*ast.FuncLit); ok {
		w.scanRelease(lit.Body, st)
		w.walkLitFresh(lit)
		return
	}
	fn := funcFor(w.pass.Info, call)
	_, sum := w.summaryFor(fn)
	if sum != nil {
		for key := range sum.releasesExprs {
			delete(st.live, key)
		}
		args := rlArgExprs(call)
		for _, k := range rlKeys(sum.releases) {
			w.discharge(st, k, args)
		}
		for i, k := range sum.paramReleases {
			if i < len(call.Args) {
				w.discharge(st, k, []ast.Expr{call.Args[i]})
			}
		}
	}
	// A released-by-param WaitGroup pointer: go worker(&wg).
	for _, arg := range call.Args {
		if ue, ok := ast.Unparen(arg).(*ast.UnaryExpr); ok && ue.Op == token.AND {
			if path := rlExprPath(ue.X); path != "" {
				delete(st.live, "e:wg::"+path)
			}
		}
	}
}

func rlKeys(m map[string]bool) []string {
	out := make([]string, 0, len(m))
	for k := range m {
		out = append(out, k)
	}
	sort.Strings(out)
	return out
}

// deferStmt discharges obligations released by a deferred call: the
// release runs at every downstream return.
func (w *rlWalker) deferStmt(stmt *ast.DeferStmt, st rlState) {
	call := stmt.Call
	if lit, ok := ast.Unparen(call.Fun).(*ast.FuncLit); ok {
		w.scanRelease(lit.Body, st)
		// Releases of counters never raised here still belong in the
		// summary (defer c.wg.Done() in a worker body).
		w.scanSummaryReleases(lit.Body)
		return
	}
	w.call(call, st, nil, stmt)
}

// scanSummaryReleases records expr-keyed releases found in a deferred
// literal into the function summary even when nothing was live.
func (w *rlWalker) scanSummaryReleases(root ast.Node) {
	ast.Inspect(root, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		eff := w.effectOf(call)
		if eff.exprRel != "" {
			w.inferred.releasesExprs[eff.exprRel] = true
		}
		return true
	})
}

// ---------------------------------------------------------------------
// Returns.

// retClass classifies a return's error disposition.
func (w *rlWalker) retClass(stmt *ast.ReturnStmt, st rlState) string {
	if w.sig == nil {
		return "return"
	}
	res := w.sig.Results()
	if res.Len() == 0 || !isErrorType(res.At(res.Len()-1).Type()) {
		return "return"
	}
	var errExpr ast.Expr
	if len(stmt.Results) == res.Len() {
		errExpr = stmt.Results[len(stmt.Results)-1]
	} else if len(stmt.Results) == 0 && len(w.results) == res.Len() {
		errExpr = w.results[len(w.results)-1]
	}
	if errExpr == nil {
		return "return"
	}
	switch e := ast.Unparen(errExpr).(type) {
	case *ast.Ident:
		if _, isNil := w.pass.Info.Uses[e].(*types.Nil); isNil {
			return "nil-error return"
		}
		if obj := w.objOf(e); obj != nil {
			switch st.err[obj] {
			case rlErrNonNil:
				return "error return"
			case rlErrNil:
				return "nil-error return"
			}
		}
		return "return"
	case *ast.CallExpr:
		if fn := funcFor(w.pass.Info, e); fn != nil {
			switch fn.FullName() {
			case "errors.New", "fmt.Errorf":
				return "error return"
			}
		}
		return "return"
	}
	return "return"
}

func (w *rlWalker) ret(stmt *ast.ReturnStmt, st rlState) {
	// Inside an inline-invoked literal the return ends the literal, not
	// the function: record the state and skip leak checks.
	if len(w.inlineRet) > 0 {
		top := w.inlineRet[len(w.inlineRet)-1]
		*top = append(*top, st.clone())
		return
	}
	// Resources flowing out through the results transfer to the caller.
	for _, res := range stmt.Results {
		ast.Inspect(res, func(n ast.Node) bool {
			if lit, ok := n.(*ast.FuncLit); ok {
				w.walkLitFresh(lit)
				return false
			}
			if call, ok := n.(*ast.CallExpr); ok {
				// return os.Open(p): acquired and immediately handed to
				// the caller — apply releases but not a discard finding.
				eff := w.effectOf(call)
				if eff.exprRel != "" {
					delete(st.live, eff.exprRel)
				}
				args := rlArgExprs(call)
				for _, k := range eff.relKinds {
					w.discharge(st, k, args)
				}
				for _, k := range eff.trnKinds {
					w.discharge(st, k, args)
				}
				for _, kind := range eff.acquires {
					w.inferred.acquires[kind] = true
				}
			}
			id, ok := n.(*ast.Ident)
			if !ok {
				return true
			}
			obj := w.objOf(id)
			if obj == nil {
				return true
			}
			for k, r := range st.live {
				if r.obj != nil && r.obj == obj {
					delete(st.live, k)
					w.inferred.acquires[r.kind] = true
				}
			}
			return true
		})
	}
	class := w.retClass(stmt, st)
	for _, k := range rlSortedLive(st) {
		r := st.live[k]
		if w.ann.acquires[r.kind] {
			// The function's contract is to hand this kind to its
			// caller; only a definite error return is a leak.
			if class != "error return" {
				continue
			}
		}
		w.leak(stmt, r, class)
	}
}

// endOfBody flags obligations still live when a body with no final
// return falls off the end.
func (w *rlWalker) endOfBody(at ast.Node, st rlState) {
	for _, k := range rlSortedLive(st) {
		r := st.live[k]
		if w.ann.acquires[r.kind] {
			continue
		}
		w.leak(at, r, "fall-through return")
	}
}

func rlSortedLive(st rlState) []string {
	keys := make([]string, 0, len(st.live))
	for k := range st.live {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}

// ---------------------------------------------------------------------
// Driver.

func rlFuncName(pass *Pass, fd *ast.FuncDecl) string {
	obj, ok := pass.Info.Defs[fd.Name].(*types.Func)
	if !ok {
		return ""
	}
	return obj.FullName()
}

// rlAnalyzeFunc walks one declared function and returns its inferred
// summary.
func rlAnalyzeFunc(pass *Pass, fd *ast.FuncDecl, summaries map[string]*rlSummary, anns map[string]rlAnnotation, findings *[]Finding, report bool) *rlSummary {
	name := rlFuncName(pass, fd)
	obj, _ := pass.Info.Defs[fd.Name].(*types.Func)
	var sig *types.Signature
	if obj != nil {
		sig, _ = obj.Type().(*types.Signature)
	}
	w := &rlWalker{
		pass:      pass,
		summaries: summaries,
		anns:      anns,
		findings:  findings,
		report:    report,
		fnName:    name,
		ann:       anns[name],
		sig:       sig,
		inferred:  newRLSummary(),
		entryPoint: pass.Pkg != nil && pass.Pkg.Name() == "main" &&
			fd.Name.Name == "main" && fd.Recv == nil,
	}
	if w.ann.acquires == nil {
		w.ann = rlAnnotation{acquires: map[string]bool{}, releases: map[string]bool{}, transfers: map[string]bool{}}
		if a, ok := anns[name]; ok {
			w.ann = a
		}
	}
	// Parameter objects, receiver first, for param-release inference.
	if fd.Recv != nil {
		for _, f := range fd.Recv.List {
			for _, n := range f.Names {
				w.params = append(w.params, pass.Info.Defs[n])
			}
		}
	}
	if fd.Type.Params != nil {
		for _, f := range fd.Type.Params.List {
			for _, n := range f.Names {
				w.params = append(w.params, pass.Info.Defs[n])
			}
		}
	}
	if fd.Type.Results != nil {
		for _, f := range fd.Type.Results.List {
			for _, n := range f.Names {
				w.results = append(w.results, n)
			}
		}
	}
	out, terminated := w.walk(fd.Body.List, newRLState())
	if !terminated {
		w.endOfBody(fd.Body, out)
	}
	// Annotated releases/transfers carry into the summary verbatim.
	for k := range w.ann.releases {
		w.inferred.releases[k] = true
	}
	return w.inferred
}

func runResourceLifecycle(passes []*Pass) []Finding {
	anns, findings := rlCollectAnnotations(passes)
	summaries := make(map[string]*rlSummary)
	type fnUnit struct {
		pass *Pass
		fd   *ast.FuncDecl
		name string
	}
	var units []fnUnit
	for _, pass := range passes {
		if pass.Pkg == nil || rlSkips(pass.Pkg.Path()) {
			continue
		}
		for _, file := range pass.Files {
			for _, decl := range file.Decls {
				fd, ok := decl.(*ast.FuncDecl)
				if !ok || fd.Body == nil {
					continue
				}
				units = append(units, fnUnit{pass, fd, rlFuncName(pass, fd)})
			}
		}
	}
	// Inference rounds: propagate inferred summaries bottom-up until
	// stable (call chains through helpers are shallow; cap the rounds).
	for round := 0; round < 4; round++ {
		changed := false
		var discard []Finding
		for _, u := range units {
			inf := rlAnalyzeFunc(u.pass, u.fd, summaries, anns, &discard, false)
			s, ok := summaries[u.name]
			if !ok {
				s = newRLSummary()
				summaries[u.name] = s
			}
			if s.merge(inf) {
				changed = true
			}
		}
		if !changed {
			break
		}
	}
	// Final reporting pass.
	for _, u := range units {
		rlAnalyzeFunc(u.pass, u.fd, summaries, anns, &findings, true)
	}
	return findings
}
