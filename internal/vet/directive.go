package vet

import (
	"strings"
)

// Suppression directives. A finding is dropped when the line it sits
// on, or the line directly above it, carries a comment of the form
//
//	//vet:ignore <analyzer-name> — reviewed reason
//
// The analyzer name must match the finding's rule exactly. Directives
// exist for reviewed false positives: a buffer whose ownership is
// transferred by documented contract, a deliberately narrow switch
// over a correlated message subset. They are grep-able, so the set of
// exemptions is itself reviewable.

const directivePrefix = "vet:ignore"

// ignoreIndex maps filename -> line -> set of suppressed analyzer
// names ("*" suppresses every analyzer on that line).
type ignoreIndex map[string]map[int]map[string]bool

// buildIgnoreIndex scans every comment in the passes for //vet:ignore
// directives. A directive on line N suppresses findings on lines N and
// N+1, so it works both trailing a statement and on its own line above
// one.
func buildIgnoreIndex(passes []*Pass) ignoreIndex {
	idx := make(ignoreIndex)
	for _, pass := range passes {
		for _, file := range pass.Files {
			for _, cg := range file.Comments {
				for _, c := range cg.List {
					text := strings.TrimSpace(strings.TrimPrefix(c.Text, "//"))
					if !strings.HasPrefix(text, directivePrefix) {
						continue
					}
					rest := strings.TrimSpace(strings.TrimPrefix(text, directivePrefix))
					fields := strings.Fields(rest)
					if len(fields) == 0 {
						continue
					}
					name := fields[0]
					pos := pass.Fset.Position(c.Pos())
					lines := idx[pos.Filename]
					if lines == nil {
						lines = make(map[int]map[string]bool)
						idx[pos.Filename] = lines
					}
					for _, ln := range []int{pos.Line, pos.Line + 1} {
						if lines[ln] == nil {
							lines[ln] = make(map[string]bool)
						}
						lines[ln][name] = true
					}
				}
			}
		}
	}
	return idx
}

func (idx ignoreIndex) suppresses(f Finding) bool {
	lines, ok := idx[f.Pos.Filename]
	if !ok {
		return false
	}
	names, ok := lines[f.Pos.Line]
	if !ok {
		return false
	}
	return names[f.Analyzer] || names["*"]
}

// Suppress filters out findings covered by a //vet:ignore directive in
// the given passes. Check applies it automatically; the golden-test
// runner applies it too, so fixtures can prove their false positives
// are suppressible.
func Suppress(passes []*Pass, findings []Finding) []Finding {
	if len(findings) == 0 {
		return findings
	}
	idx := buildIgnoreIndex(passes)
	kept := findings[:0]
	for _, f := range findings {
		if !idx.suppresses(f) {
			kept = append(kept, f)
		}
	}
	return kept
}
