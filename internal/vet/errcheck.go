package vet

import (
	"go/ast"
	"go/types"
)

// monitoredMethods are the method names whose error results carry
// correctness-critical information in this codebase: the client API of
// §3.2 (a discarded Mwrite error silently loses the remote copy), the
// region cache layer, the transport primitives, and io.Closer.Close on
// resources whose teardown can fail. bulk.Endpoint.Notify is
// deliberately absent: it is the protocol's best-effort fire-and-forget
// path.
var monitoredMethods = map[string]bool{
	"Mread":  true,
	"Mwrite": true,
	"Mclose": true,
	"Msync":  true,
	"Cread":  true,
	"Cwrite": true,
	"Send":   true,
	"Recv":   true,
	"Close":  true,
}

// UncheckedError flags statement-position calls to the monitored
// methods, where every result — including the error — is discarded.
// Explicit discards (`_ = f.Close()`) and deferred cleanup
// (`defer f.Close()`) remain allowed: both are visible declarations
// that the error was considered.
var UncheckedError = &Analyzer{
	Name: "unchecked-error",
	Doc:  "flag discarded errors from the client API (Mread/Mwrite/...), transport Send/Recv and Close",
	Run:  runUncheckedError,
}

func runUncheckedError(pass *Pass) []Finding {
	var findings []Finding
	check := func(stmt ast.Stmt) {
		var call *ast.CallExpr
		switch s := stmt.(type) {
		case *ast.ExprStmt:
			if c, ok := s.X.(*ast.CallExpr); ok {
				call = c
			}
		case *ast.GoStmt:
			call = s.Call
		}
		if call == nil {
			return
		}
		fn := funcFor(pass.Info, call)
		if fn == nil || !monitoredMethods[fn.Name()] {
			return
		}
		sig, ok := fn.Type().(*types.Signature)
		if !ok || sig.Recv() == nil {
			return // plain functions (e.g. signal.Notify) are out of scope
		}
		results := sig.Results()
		if results.Len() == 0 || !isErrorType(results.At(results.Len()-1).Type()) {
			return
		}
		findings = append(findings, findingAt(pass, "unchecked-error", call,
			"error result of %s is discarded; check it or assign it to _ explicitly", fn.Name()))
	}
	for _, file := range pass.Files {
		if pass.isTestFile(file.Pos()) {
			continue
		}
		ast.Inspect(file, func(n ast.Node) bool {
			if stmt, ok := n.(ast.Stmt); ok {
				check(stmt)
			}
			return true
		})
	}
	return findings
}
