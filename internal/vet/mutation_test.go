package vet

import (
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// TestResourceLifecycleMutations pins the analyzer's real-world firing
// power: deleting any single release call from internal/region — the
// package whose eviction/clone/prefetch machinery motivated the pass —
// must produce at least one resource-lifecycle finding (a non-zero
// dodo-vet exit). The repo is copied to a temp dir and each mutation is
// applied and reverted in turn, so the working tree is never touched.
func TestResourceLifecycleMutations(t *testing.T) {
	if testing.Short() {
		t.Skip("copies the repository and reloads it per mutation")
	}
	root, err := filepath.Abs("../..")
	if err != nil {
		t.Fatal(err)
	}
	tmp := t.TempDir()
	copyTree(t, root, tmp)

	load := func() []Finding {
		passes, skipped, err := LoadPackages(tmp, "./internal/region")
		if err != nil {
			t.Fatalf("loading mutated tree: %v", err)
		}
		if len(skipped) > 0 {
			t.Fatalf("mutated tree did not compile: %v", skipped)
		}
		return Suppress(passes, runResourceLifecycle(passes))
	}
	if fs := load(); len(fs) != 0 {
		t.Fatalf("baseline tree not clean: %v", fs)
	}

	// Each mutation deletes the nth line matching pattern from file.
	// The sites span two files and every tracked kind the package uses:
	// dodofd clone error paths, the worker-pool WaitGroup handoff, and
	// lock brackets.
	muts := []struct {
		name    string
		file    string
		pattern string
		nth     int
	}{
		{"cloneRemote disk-read error path drops Mclose", "internal/region/cache.go", "_ = c.dodo.Mclose(mfd)", 1},
		{"cloneRemote stale-data abort drops Mclose", "internal/region/cache.go", "_ = c.dodo.Mclose(mfd)", 2},
		{"cloneRemote push error path drops Mclose", "internal/region/cache.go", "_ = c.dodo.Mclose(mfd)", 3},
		{"cloneRemote closed-region path drops Mclose", "internal/region/cache.go", "_ = c.dodo.Mclose(mfd)", 4},
		{"cloneRemote raced-copy path drops Mclose", "internal/region/cache.go", "_ = c.dodo.Mclose(mfd)", 5},
		{"Stats drops its deferred Unlock", "internal/region/cache.go", "defer c.mu.Unlock()", 1},
		{"prefetchWorker drops its deferred Done", "internal/region/prefetch.go", "defer c.prefetchWG.Done()", 1},
		{"finishPrefetchJob drops its Unlock", "internal/region/prefetch.go", "c.mu.Unlock()", 1},
	}
	for _, m := range muts {
		t.Run(m.name, func(t *testing.T) {
			path := filepath.Join(tmp, m.file)
			orig, err := os.ReadFile(path)
			if err != nil {
				t.Fatal(err)
			}
			defer func() {
				if err := os.WriteFile(path, orig, 0o644); err != nil {
					t.Fatal(err)
				}
			}()
			mutated, ok := deleteNthMatch(string(orig), m.pattern, m.nth)
			if !ok {
				t.Fatalf("pattern %q (occurrence %d) not found in %s — site moved, update the mutation table", m.pattern, m.nth, m.file)
			}
			if err := os.WriteFile(path, []byte(mutated), 0o644); err != nil {
				t.Fatal(err)
			}
			fs := load()
			if len(fs) == 0 {
				t.Fatalf("deleting %q (occurrence %d) in %s produced no findings: the analyzer would miss this leak", m.pattern, m.nth, m.file)
			}
		})
	}
}

// deleteNthMatch removes the nth line containing pattern, reporting
// whether it was found.
func deleteNthMatch(src, pattern string, nth int) (string, bool) {
	lines := strings.Split(src, "\n")
	seen := 0
	for i, l := range lines {
		if strings.Contains(l, pattern) {
			seen++
			if seen == nth {
				return strings.Join(append(lines[:i:i], lines[i+1:]...), "\n"), true
			}
		}
	}
	return src, false
}

// copyTree mirrors src into dst, skipping VCS metadata.
func copyTree(t *testing.T, src, dst string) {
	t.Helper()
	err := filepath.WalkDir(src, func(path string, d os.DirEntry, err error) error {
		if err != nil {
			return err
		}
		rel, err := filepath.Rel(src, path)
		if err != nil {
			return err
		}
		if d.IsDir() {
			if d.Name() == ".git" {
				return filepath.SkipDir
			}
			return os.MkdirAll(filepath.Join(dst, rel), 0o755)
		}
		if !d.Type().IsRegular() {
			return nil
		}
		data, err := os.ReadFile(path)
		if err != nil {
			return err
		}
		return os.WriteFile(filepath.Join(dst, rel), data, 0o644)
	})
	if err != nil {
		t.Fatal(err)
	}
}
