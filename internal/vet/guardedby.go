package vet

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"strings"
)

// GuardedBy is the whole-program shared-state analyzer. Struct fields
// declare their protection with a field comment:
//
//	// dodo:guardedby <mutexfield>  — reads/writes require the mutex
//	// dodo:atomic                  — touched only through sync/atomic
//	// dodo:unguarded — <reason>    — reviewed: needs no lock
//
// and the pass enforces four rules:
//
//  1. completeness: every struct containing a locks.Mutex / sync.Mutex /
//     sync.RWMutex field must have all its other fields annotated — no
//     silent unguarded state next to a lock;
//  2. domination: every read of a dodo:guardedby field must happen with
//     the declared mutex held (RLock suffices for reads), and every
//     write with it held exclusively. The proof is inter-procedural:
//     an access in a helper is accepted when the helper locks, or when
//     every call site in the program reaches it with the mutex held
//     (directly, or through a caller that itself qualifies and never
//     releases the mutex mid-body). Taking a guarded field's address is
//     a finding — an escaped pointer cannot be checked;
//  3. atomicity: dodo:atomic fields are touched only through the
//     sync/atomic method set (atomic.Int64.Add, atomic.LoadUint64(&f),
//     ...); any plain read, write, copy or escaping address is a mixed
//     plain/atomic access and a finding;
//  4. rank: a mutex named by a dodo:guardedby annotation that is a
//     locks.Mutex must receive a SetRank somewhere in the program — a
//     guarding lock outside the declared hierarchy (DESIGN.md §8) would
//     be invisible to lock-order and the lockcheck runtime.
//
// The held-set tracking is the same static under-approximation as
// lock-order: statement order with optimistic branch merging, function
// literals inherit the held set at their creation point (except `go`
// bodies, which start empty), and deferred unlocks release at return.
// Accesses through a variable freshly allocated in the same function
// (&T{...}, new(T)) are exempt — a struct that has not escaped its
// constructor needs no lock. Residual false positives carry a
// //vet:ignore guarded-by directive with a reviewed reason.
//
// Like the other whole-program passes it analyzes internal/... only,
// excluding internal/locks (the mutex wrapper is the mechanism, not a
// client of it).
var GuardedBy = &Analyzer{
	Name:       "guarded-by",
	Doc:        "prove dodo:guardedby fields are accessed under their declared mutex, dodo:atomic fields only via sync/atomic, and mutex-holding structs fully annotated",
	Run:        func(p *Pass) []Finding { return runGuardedBy([]*Pass{p}) },
	RunProgram: runGuardedBy,
}

// gbSkips mirrors the lock-order package policy, minus the internal/sim
// exclusion: sim's clock mutex is outside the rank hierarchy but its
// fields still deserve guarded-by classification.
func gbSkips(path string) bool {
	if !strings.Contains(path, "/internal/") {
		return true
	}
	return strings.HasSuffix(path, "/internal/locks")
}

type gbKind int

const (
	gbGuarded gbKind = iota
	gbAtomic
	gbUnguarded
)

// gbSpec is one annotated field: its protection kind, the guard key for
// dodo:guardedby ("pkgpath.Type.mutexfield"), and display names. For
// guards that are locks.Mutex, rankPass/rankPos anchor the SetRank
// cross-check finding at the annotated field.
type gbSpec struct {
	kind      gbKind
	guardKey  string
	guardName string // "Type.mu" for messages
	owner     string // "pkg.Type.field" for messages
	rankPass  *Pass
	rankPos   token.Pos
}

// gbMutexType classifies t as a lockable mutex type: sync.Mutex,
// sync.RWMutex or locks.Mutex held by value.
func gbMutexType(t types.Type) (isMutex, isRW bool) {
	named, ok := t.(*types.Named)
	if !ok {
		return false, false
	}
	obj := named.Obj()
	if obj == nil || obj.Pkg() == nil {
		return false, false
	}
	switch {
	case obj.Pkg().Path() == "sync" && obj.Name() == "Mutex":
		return true, false
	case obj.Pkg().Path() == "sync" && obj.Name() == "RWMutex":
		return true, true
	case isLockPkg(obj.Pkg().Path()) && obj.Name() == "Mutex":
		return true, false
	}
	return false, false
}

func gbIsLocksMutex(t types.Type) bool {
	named, ok := t.(*types.Named)
	if !ok {
		return false
	}
	obj := named.Obj()
	return obj != nil && obj.Pkg() != nil && obj.Pkg().Path() != "sync" &&
		isLockPkg(obj.Pkg().Path()) && obj.Name() == "Mutex"
}

// gbAnnotation is a parsed dodo: field comment.
type gbAnnotation struct {
	kind   gbKind
	target string // guardedby mutex field name
	reason string // unguarded justification
}

// parseGBAnnotation extracts the first dodo: directive from the field's
// doc or trailing comment. ok is false when no directive is present;
// err carries a grammar problem worth reporting.
func parseGBAnnotation(af *ast.Field) (ann gbAnnotation, ok bool, err string) {
	var lines []string
	if af.Doc != nil {
		for _, c := range af.Doc.List {
			lines = append(lines, c.Text)
		}
	}
	if af.Comment != nil {
		for _, c := range af.Comment.List {
			lines = append(lines, c.Text)
		}
	}
	for _, line := range lines {
		text := strings.TrimSpace(strings.TrimPrefix(strings.TrimSpace(line), "//"))
		if !strings.HasPrefix(text, "dodo:") {
			continue
		}
		rest := strings.TrimPrefix(text, "dodo:")
		fields := strings.Fields(rest)
		if len(fields) == 0 {
			return ann, false, "empty dodo: directive"
		}
		switch fields[0] {
		case "guardedby":
			if len(fields) < 2 {
				return ann, false, "dodo:guardedby needs a mutex field name"
			}
			return gbAnnotation{kind: gbGuarded, target: fields[1]}, true, ""
		case "atomic":
			return gbAnnotation{kind: gbAtomic}, true, ""
		case "unguarded":
			reason := strings.TrimLeft(strings.TrimPrefix(rest, "unguarded"), " \t—–-")
			if strings.TrimSpace(reason) == "" {
				return ann, false, "dodo:unguarded needs a reason (\"// dodo:unguarded — why\")"
			}
			return gbAnnotation{kind: gbUnguarded, reason: reason}, true, ""
		default:
			return ann, false, fmt.Sprintf("unknown dodo: directive %q (want guardedby/atomic/unguarded)", fields[0])
		}
	}
	return ann, false, ""
}

// gbNamedOf unwraps pointers to the named type, or nil.
func gbNamedOf(t types.Type) *types.Named {
	if ptr, ok := t.(*types.Pointer); ok {
		t = ptr.Elem()
	}
	named, _ := t.(*types.Named)
	return named
}

// gbFieldKey resolves a field selection to its declaring-struct key
// "pkgpath.Type.field" by walking the selection index path. Returns ""
// when the owner cannot be named (anonymous structs).
func gbFieldKey(sel *types.Selection) string {
	t := sel.Recv()
	index := sel.Index()
	for i, idx := range index {
		named := gbNamedOf(t)
		if named == nil || named.Obj().Pkg() == nil {
			return ""
		}
		st, ok := named.Underlying().(*types.Struct)
		if !ok || idx >= st.NumFields() {
			return ""
		}
		f := st.Field(idx)
		if i == len(index)-1 {
			return named.Obj().Pkg().Path() + "." + named.Obj().Name() + "." + f.Name()
		}
		t = f.Type()
	}
	return ""
}

// gbCollect gathers field specs and annotation-grammar findings across
// all passes, plus the set of guard keys that receive a SetRank call.
func gbCollect(passes []*Pass) (specs map[string]*gbSpec, findings []Finding) {
	specs = make(map[string]*gbSpec)
	for _, pass := range passes {
		if gbSkips(pass.Pkg.Path()) {
			continue
		}
		for _, file := range pass.Files {
			if pass.isTestFile(file.Pos()) {
				continue
			}
			for _, decl := range file.Decls {
				gd, ok := decl.(*ast.GenDecl)
				if !ok || gd.Tok != token.TYPE {
					continue
				}
				for _, spec := range gd.Specs {
					ts, ok := spec.(*ast.TypeSpec)
					if !ok {
						continue
					}
					st, ok := ts.Type.(*ast.StructType)
					if !ok {
						continue
					}
					obj, ok := pass.Info.Defs[ts.Name].(*types.TypeName)
					if !ok {
						continue
					}
					tst, ok := obj.Type().Underlying().(*types.Struct)
					if !ok {
						continue
					}
					findings = append(findings, gbCollectStruct(pass, obj, st, tst, specs)...)
				}
			}
		}
	}
	return specs, findings
}

// gbCollectStruct processes one struct declaration: parses each field's
// annotation, validates guardedby targets, and enforces completeness
// when the struct holds a mutex.
func gbCollectStruct(pass *Pass, obj *types.TypeName, st *ast.StructType, tst *types.Struct, specs map[string]*gbSpec) []Finding {
	var findings []Finding
	typeKey := obj.Pkg().Path() + "." + obj.Name()
	display := obj.Pkg().Name() + "." + obj.Name()

	type fieldDecl struct {
		af *ast.Field
		v  *types.Var
	}
	var decls []fieldDecl
	idx := 0
	for _, af := range st.Fields.List {
		n := len(af.Names)
		if n == 0 {
			n = 1
		}
		for i := 0; i < n && idx < tst.NumFields(); i++ {
			decls = append(decls, fieldDecl{af: af, v: tst.Field(idx)})
			idx++
		}
	}

	mutexFields := make(map[string]types.Type)
	for _, d := range decls {
		if isMutex, _ := gbMutexType(d.v.Type()); isMutex {
			mutexFields[d.v.Name()] = d.v.Type()
		}
	}

	for _, d := range decls {
		if _, isMutexField := mutexFields[d.v.Name()]; isMutexField {
			continue
		}
		ann, ok, errText := parseGBAnnotation(d.af)
		if errText != "" {
			findings = append(findings, findingAt(pass, "guarded-by", d.af,
				"field %s.%s: %s", display, d.v.Name(), errText))
			continue
		}
		if !ok {
			if len(mutexFields) > 0 {
				findings = append(findings, findingAt(pass, "guarded-by", d.af,
					"field %s.%s has no dodo: annotation but the struct holds a mutex; declare dodo:guardedby <mutex>, dodo:atomic, or dodo:unguarded — reason",
					display, d.v.Name()))
			}
			continue
		}
		fieldKey := typeKey + "." + d.v.Name()
		switch ann.kind {
		case gbGuarded:
			mt, isMutexTarget := mutexFields[ann.target]
			if !isMutexTarget {
				findings = append(findings, findingAt(pass, "guarded-by", d.af,
					"field %s.%s: dodo:guardedby %q does not name a sibling mutex field", display, d.v.Name(), ann.target))
				continue
			}
			specs[fieldKey] = &gbSpec{
				kind:      gbGuarded,
				guardKey:  typeKey + "." + ann.target,
				guardName: obj.Name() + "." + ann.target,
				owner:     display + "." + d.v.Name(),
			}
			if gbIsLocksMutex(mt) {
				// Rank cross-check is resolved after SetRank collection;
				// remember where to anchor the finding.
				specs[fieldKey].rankPos = d.af.Pos()
				specs[fieldKey].rankPass = pass
			}
		case gbAtomic:
			specs[fieldKey] = &gbSpec{kind: gbAtomic, owner: display + "." + d.v.Name()}
		case gbUnguarded:
			specs[fieldKey] = &gbSpec{kind: gbUnguarded, owner: display + "." + d.v.Name()}
		}
	}
	return findings
}

// gbHeld is one held lock in the walker's tracked set.
type gbHeld struct {
	key  string // guard key ("pkgpath.Type.mu") or "pkgpath.var"
	excl bool   // Lock (true) vs RLock (false)
}

func gbHeldSatisfies(held []gbHeld, key string, write bool) bool {
	for _, h := range held {
		if h.key == key && (h.excl || !write) {
			return true
		}
	}
	return false
}

// gbPending is a guarded access not dominated by a local Lock; the
// inter-procedural phase decides whether every caller provides it.
type gbPending struct {
	spec  *gbSpec
	write bool
	pass  *Pass
	node  ast.Node
}

type gbCallSite struct {
	callee string
	held   []gbHeld
}

type gbSummary struct {
	key      string
	pending  []gbPending
	calls    []gbCallSite
	releases map[string]bool // guard keys unlocked anywhere in the body
}

// gbWalker carries the per-function analysis state.
type gbWalker struct {
	pass     *Pass
	specs    map[string]*gbSpec
	sum      *gbSummary
	fresh    map[types.Object]bool
	findings *[]Finding
}

// gbLockKey resolves the mutex expression of a Lock/Unlock receiver to
// its class key, or "".
func gbLockKey(pass *Pass, recv ast.Expr) string {
	switch e := ast.Unparen(recv).(type) {
	case *ast.SelectorExpr:
		if sel, ok := pass.Info.Selections[e]; ok && sel.Kind() == types.FieldVal {
			return gbFieldKey(sel)
		}
		if obj, ok := pass.Info.Uses[e.Sel].(*types.Var); ok && obj.Pkg() != nil && obj.Parent() == obj.Pkg().Scope() {
			return obj.Pkg().Path() + "." + obj.Name()
		}
	case *ast.Ident:
		if obj, ok := pass.Info.Uses[e].(*types.Var); ok && obj.Pkg() != nil && obj.Parent() == obj.Pkg().Scope() {
			return obj.Pkg().Path() + "." + obj.Name()
		}
	}
	return ""
}

// gbFreshLocals pre-scans a function body for local variables holding a
// freshly allocated value (&T{...}, T{}, new(T)): accesses through them
// precede publication and need no lock.
func gbFreshLocals(pass *Pass, body *ast.BlockStmt) map[types.Object]bool {
	fresh := make(map[types.Object]bool)
	isAlloc := func(e ast.Expr) bool {
		switch x := ast.Unparen(e).(type) {
		case *ast.CompositeLit:
			return true
		case *ast.UnaryExpr:
			if x.Op == token.AND {
				_, ok := ast.Unparen(x.X).(*ast.CompositeLit)
				return ok
			}
		case *ast.CallExpr:
			if id, ok := ast.Unparen(x.Fun).(*ast.Ident); ok {
				if b, ok := pass.Info.Uses[id].(*types.Builtin); ok && b.Name() == "new" {
					return true
				}
			}
		}
		return false
	}
	mark := func(lhs ast.Expr) {
		if id, ok := lhs.(*ast.Ident); ok {
			if obj := pass.Info.Defs[id]; obj != nil {
				fresh[obj] = true
			} else if obj := pass.Info.Uses[id]; obj != nil {
				fresh[obj] = true
			}
		}
	}
	ast.Inspect(body, func(n ast.Node) bool {
		switch st := n.(type) {
		case *ast.AssignStmt:
			if len(st.Lhs) == len(st.Rhs) {
				for i, r := range st.Rhs {
					if isAlloc(r) {
						mark(st.Lhs[i])
					}
				}
			}
		case *ast.ValueSpec:
			if len(st.Names) == len(st.Values) {
				for i, r := range st.Values {
					if isAlloc(r) {
						mark(st.Names[i])
					}
				}
			}
		}
		return true
	})
	return fresh
}

// gbRootIdent returns the identifier at the root of a selector/index
// path, or nil.
func gbRootIdent(e ast.Expr) *ast.Ident {
	for {
		switch x := ast.Unparen(e).(type) {
		case *ast.Ident:
			return x
		case *ast.SelectorExpr:
			e = x.X
		case *ast.IndexExpr:
			e = x.X
		case *ast.SliceExpr:
			e = x.X
		case *ast.StarExpr:
			e = x.X
		default:
			return nil
		}
	}
}

func (w *gbWalker) exempt(e ast.Expr) bool {
	id := gbRootIdent(e)
	if id == nil {
		return false
	}
	if obj := w.pass.Info.Uses[id]; obj != nil && w.fresh[obj] {
		return true
	}
	return false
}

// specFor resolves a selector expression to its annotated-field spec.
func (w *gbWalker) specFor(e *ast.SelectorExpr) *gbSpec {
	sel, ok := w.pass.Info.Selections[e]
	if !ok || sel.Kind() != types.FieldVal {
		return nil
	}
	key := gbFieldKey(sel)
	if key == "" {
		return nil
	}
	return w.specs[key]
}

func (w *gbWalker) report(n ast.Node, format string, args ...any) {
	*w.findings = append(*w.findings, findingAt(w.pass, "guarded-by", n, format, args...))
}

// access records one touch of an annotated field.
func (w *gbWalker) access(spec *gbSpec, write bool, node ast.Node, held []gbHeld) {
	switch spec.kind {
	case gbUnguarded:
	case gbAtomic:
		verb := "read of"
		if write {
			verb = "write to"
		}
		w.report(node, "plain %s dodo:atomic field %s mixes with sync/atomic access; use the atomic API everywhere", verb, spec.owner)
	case gbGuarded:
		if gbHeldSatisfies(held, spec.guardKey, write) {
			return
		}
		w.sum.pending = append(w.sum.pending, gbPending{spec: spec, write: write, pass: w.pass, node: node})
	}
}

// scan walks an expression recording annotated-field accesses under the
// given held set. write marks the expression as an assignment target.
// walkLit is called for function literals so the statement walker can
// analyze their bodies with the inherited held set.
func (w *gbWalker) scan(e ast.Expr, write bool, held []gbHeld, walkLit func(*ast.FuncLit, []gbHeld)) {
	if e == nil {
		return
	}
	switch x := ast.Unparen(e).(type) {
	case *ast.SelectorExpr:
		if spec := w.specFor(x); spec != nil && !w.exempt(x) {
			w.access(spec, write, x, held)
		}
		w.scan(x.X, write, held, walkLit)
	case *ast.IndexExpr:
		w.scan(x.X, write, held, walkLit)
		w.scan(x.Index, false, held, walkLit)
	case *ast.IndexListExpr:
		w.scan(x.X, write, held, walkLit)
		for _, i := range x.Indices {
			w.scan(i, false, held, walkLit)
		}
	case *ast.SliceExpr:
		w.scan(x.X, false, held, walkLit)
		w.scan(x.Low, false, held, walkLit)
		w.scan(x.High, false, held, walkLit)
		w.scan(x.Max, false, held, walkLit)
	case *ast.StarExpr:
		w.scan(x.X, false, held, walkLit)
	case *ast.UnaryExpr:
		if x.Op == token.AND {
			w.addrOf(x, held, walkLit)
			return
		}
		w.scan(x.X, false, held, walkLit)
	case *ast.BinaryExpr:
		w.scan(x.X, false, held, walkLit)
		w.scan(x.Y, false, held, walkLit)
	case *ast.CallExpr:
		w.call(x, held, walkLit)
	case *ast.CompositeLit:
		for _, elt := range x.Elts {
			if kv, ok := elt.(*ast.KeyValueExpr); ok {
				w.scan(kv.Value, false, held, walkLit)
				continue
			}
			w.scan(elt, false, held, walkLit)
		}
	case *ast.TypeAssertExpr:
		w.scan(x.X, false, held, walkLit)
	case *ast.KeyValueExpr:
		w.scan(x.Key, false, held, walkLit)
		w.scan(x.Value, false, held, walkLit)
	case *ast.FuncLit:
		if walkLit != nil {
			walkLit(x, held)
		}
	}
}

// addrOf handles &expr: taking the address of a guarded or atomic field
// defeats the static proof, so outside the sanctioned sync/atomic call
// forms (intercepted in call) it is a finding.
func (w *gbWalker) addrOf(x *ast.UnaryExpr, held []gbHeld, walkLit func(*ast.FuncLit, []gbHeld)) {
	if sel, ok := ast.Unparen(x.X).(*ast.SelectorExpr); ok {
		if spec := w.specFor(sel); spec != nil && !w.exempt(sel) {
			switch spec.kind {
			case gbGuarded:
				w.report(x, "address of guarded field %s escapes; a pointer cannot be proven to stay under %s", spec.owner, spec.guardName)
			case gbAtomic:
				w.report(x, "address of dodo:atomic field %s escapes outside a sync/atomic call", spec.owner)
			}
			w.scan(sel.X, false, held, walkLit)
			return
		}
	}
	w.scan(x.X, false, held, walkLit)
}

// call handles a call expression: mutex methods are ignored (the
// statement walker tracks them), sync/atomic forms sanction atomic
// fields, everything else records a call site and scans operands.
func (w *gbWalker) call(call *ast.CallExpr, held []gbHeld, walkLit func(*ast.FuncLit, []gbHeld)) {
	fn := funcFor(w.pass.Info, call)

	// Builtins: delete/copy mutate their first operand.
	if fn == nil {
		if id, ok := ast.Unparen(call.Fun).(*ast.Ident); ok {
			if b, ok := w.pass.Info.Uses[id].(*types.Builtin); ok {
				write := b.Name() == "delete" || b.Name() == "copy"
				for i, arg := range call.Args {
					w.scan(arg, write && i == 0, held, walkLit)
				}
				return
			}
		}
		w.scan(call.Fun, false, held, walkLit)
		for _, arg := range call.Args {
			w.scan(arg, false, held, walkLit)
		}
		return
	}

	if fn.Pkg() != nil && fn.Pkg().Path() == "sync/atomic" {
		w.atomicCall(call, fn, held, walkLit)
		return
	}

	if isMutexMethod(fn) != 0 || (fn.Name() == "SetRank" && fn.Pkg() != nil && isLockPkg(fn.Pkg().Path())) {
		// Lock/Unlock/SetRank receivers are mutex fields, which carry no
		// annotation; nothing to scan but the base path.
		if sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr); ok {
			if inner, ok := ast.Unparen(sel.X).(*ast.SelectorExpr); ok {
				w.scan(inner.X, false, held, walkLit)
			}
		}
		return
	}

	w.sum.calls = append(w.sum.calls, gbCallSite{callee: fn.FullName(), held: append([]gbHeld(nil), held...)})
	w.scan(call.Fun, false, held, walkLit)
	for _, arg := range call.Args {
		w.scan(arg, false, held, walkLit)
	}
}

// atomicCall sanctions the two sync/atomic access forms — method calls
// on atomic.XXX fields and free functions taking &field — for
// dodo:atomic fields, and flags them as mixed discipline on guarded
// fields.
func (w *gbWalker) atomicCall(call *ast.CallExpr, fn *types.Func, held []gbHeld, walkLit func(*ast.FuncLit, []gbHeld)) {
	if sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr); ok {
		if fieldSel, ok := ast.Unparen(sel.X).(*ast.SelectorExpr); ok {
			if spec := w.specFor(fieldSel); spec != nil {
				if spec.kind == gbGuarded && !w.exempt(fieldSel) {
					w.report(call, "dodo:guardedby field %s accessed through sync/atomic (%s); pick one discipline", spec.owner, fn.Name())
				}
				// Sanctioned atomic method call: scan only the base path.
				w.scan(fieldSel.X, false, held, walkLit)
				for _, arg := range call.Args {
					w.scan(arg, false, held, walkLit)
				}
				return
			}
		}
		w.scan(sel.X, false, held, walkLit)
	}
	for _, arg := range call.Args {
		if un, ok := ast.Unparen(arg).(*ast.UnaryExpr); ok && un.Op == token.AND {
			if fieldSel, ok := ast.Unparen(un.X).(*ast.SelectorExpr); ok {
				if spec := w.specFor(fieldSel); spec != nil {
					if spec.kind == gbGuarded && !w.exempt(fieldSel) {
						w.report(call, "dodo:guardedby field %s accessed through sync/atomic (%s); pick one discipline", spec.owner, fn.Name())
					}
					w.scan(fieldSel.X, false, held, walkLit)
					continue
				}
			}
		}
		w.scan(arg, false, held, walkLit)
	}
}

// gbHeldRemove drops the most recent matching hold.
func gbHeldRemove(held []gbHeld, key string, excl bool) []gbHeld {
	for i := len(held) - 1; i >= 0; i-- {
		if held[i].key == key && held[i].excl == excl {
			return append(append([]gbHeld(nil), held[:i]...), held[i+1:]...)
		}
	}
	// Mode-mismatched unlock (or unlock of something never seen): drop
	// any hold on the key rather than tracking garbage.
	for i := len(held) - 1; i >= 0; i-- {
		if held[i].key == key {
			return append(append([]gbHeld(nil), held[:i]...), held[i+1:]...)
		}
	}
	return held
}

func gbHeldIntersect(a []gbHeld, bs ...[]gbHeld) []gbHeld {
	out := a[:0:0]
	for _, h := range a {
		in := true
		for _, b := range bs {
			found := false
			for _, bh := range b {
				if bh == h {
					found = true
					break
				}
			}
			if !found {
				in = false
				break
			}
		}
		if in {
			out = append(out, h)
		}
	}
	return out
}

// gbSummarize walks one function body, producing its summary and
// reporting immediately-decidable findings.
func gbSummarize(pass *Pass, body *ast.BlockStmt, key string, specs map[string]*gbSpec, findings *[]Finding) *gbSummary {
	sum := &gbSummary{key: key, releases: make(map[string]bool)}
	w := &gbWalker{pass: pass, specs: specs, sum: sum, fresh: gbFreshLocals(pass, body), findings: findings}

	var walk func(stmts []ast.Stmt, held []gbHeld) ([]gbHeld, bool)

	walkLit := func(lit *ast.FuncLit, held []gbHeld) {
		walk(lit.Body.List, append([]gbHeld(nil), held...))
	}
	scan := func(e ast.Expr, write bool, held []gbHeld) {
		w.scan(e, write, held, walkLit)
	}

	walkBranches := func(held []gbHeld, mayskip bool, bodies ...[]ast.Stmt) []gbHeld {
		var results [][]gbHeld
		for _, b := range bodies {
			h, term := walk(b, held)
			if !term {
				results = append(results, h)
			}
		}
		if mayskip {
			results = append(results, held)
		}
		if len(results) == 0 {
			return held
		}
		return gbHeldIntersect(results[0], results[1:]...)
	}

	walk = func(stmts []ast.Stmt, held []gbHeld) ([]gbHeld, bool) {
		for _, stmt := range stmts {
			switch st := stmt.(type) {
			case *ast.ExprStmt:
				if call, ok := st.X.(*ast.CallExpr); ok {
					if fn := funcFor(pass.Info, call); fn != nil {
						if d := isMutexMethod(fn); d != 0 {
							if sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr); ok {
								key := gbLockKey(pass, sel.X)
								if key == "" {
									continue
								}
								excl := fn.Name() == "Lock" || fn.Name() == "Unlock"
								if d > 0 {
									held = append(append([]gbHeld(nil), held...), gbHeld{key: key, excl: excl})
								} else {
									held = gbHeldRemove(held, key, excl)
									sum.releases[key] = true
								}
							}
							continue
						}
					}
				}
				scan(st.X, false, held)
			case *ast.AssignStmt:
				for _, l := range st.Lhs {
					if _, isIdent := ast.Unparen(l).(*ast.Ident); isIdent {
						continue // plain local assignment: no field touched
					}
					scan(l, true, held)
				}
				for _, r := range st.Rhs {
					scan(r, false, held)
				}
			case *ast.IncDecStmt:
				scan(st.X, true, held)
			case *ast.DeclStmt:
				if gd, ok := st.Decl.(*ast.GenDecl); ok {
					for _, spec := range gd.Specs {
						if vs, ok := spec.(*ast.ValueSpec); ok {
							for _, v := range vs.Values {
								scan(v, false, held)
							}
						}
					}
				}
			case *ast.ReturnStmt:
				for _, r := range st.Results {
					scan(r, false, held)
				}
				return held, true
			case *ast.BranchStmt:
				return held, true
			case *ast.DeferStmt:
				// Deferred unlocks release at return, so the held set is
				// unchanged for the rest of the body. Deferred calls and
				// literals run with the locks held at return time; we
				// approximate with the current set.
				if fn := funcFor(pass.Info, st.Call); fn != nil && isMutexMethod(fn) != 0 {
					continue
				}
				scan(st.Call, false, held)
			case *ast.GoStmt:
				// The goroutine body starts with no locks: record the
				// call site with an empty held set (and walk literals
				// the same way), but evaluate receiver and arguments in
				// the spawning goroutine's context.
				if fn := funcFor(pass.Info, st.Call); fn != nil && isMutexMethod(fn) == 0 {
					sum.calls = append(sum.calls, gbCallSite{callee: fn.FullName()})
				}
				if lit, ok := ast.Unparen(st.Call.Fun).(*ast.FuncLit); ok {
					walkLit(lit, nil)
				} else if sel, ok := ast.Unparen(st.Call.Fun).(*ast.SelectorExpr); ok {
					scan(sel.X, false, held)
				}
				for _, arg := range st.Call.Args {
					scan(arg, false, held)
				}
			case *ast.SendStmt:
				scan(st.Chan, false, held)
				scan(st.Value, false, held)
			case *ast.BlockStmt:
				h, term := walk(st.List, held)
				held = h
				if term {
					return held, true
				}
			case *ast.IfStmt:
				if st.Init != nil {
					held, _ = walk([]ast.Stmt{st.Init}, held)
				}
				scan(st.Cond, false, held)
				bodyHeld, bodyTerm := walk(st.Body.List, held)
				elseHeld, elseTerm := held, false
				hasElse := st.Else != nil
				if hasElse {
					elseHeld, elseTerm = walk([]ast.Stmt{st.Else}, held)
				}
				switch {
				case bodyTerm && elseTerm && hasElse:
					return held, true
				case bodyTerm:
					held = elseHeld
				case elseTerm:
					held = bodyHeld
				case hasElse:
					held = gbHeldIntersect(bodyHeld, elseHeld)
				default:
					held = gbHeldIntersect(held, bodyHeld)
				}
			case *ast.ForStmt:
				if st.Init != nil {
					held, _ = walk([]ast.Stmt{st.Init}, held)
				}
				scan(st.Cond, false, held)
				held = walkBranches(held, true, st.Body.List)
			case *ast.RangeStmt:
				scan(st.X, false, held)
				held = walkBranches(held, true, st.Body.List)
			case *ast.SwitchStmt:
				if st.Init != nil {
					held, _ = walk([]ast.Stmt{st.Init}, held)
				}
				scan(st.Tag, false, held)
				var bodies [][]ast.Stmt
				for _, c := range st.Body.List {
					if cc, ok := c.(*ast.CaseClause); ok {
						bodies = append(bodies, cc.Body)
					}
				}
				held = walkBranches(held, true, bodies...)
			case *ast.TypeSwitchStmt:
				if st.Init != nil {
					held, _ = walk([]ast.Stmt{st.Init}, held)
				}
				held, _ = walk([]ast.Stmt{st.Assign}, held)
				var bodies [][]ast.Stmt
				for _, c := range st.Body.List {
					if cc, ok := c.(*ast.CaseClause); ok {
						bodies = append(bodies, cc.Body)
					}
				}
				held = walkBranches(held, true, bodies...)
			case *ast.SelectStmt:
				var bodies [][]ast.Stmt
				for _, c := range st.Body.List {
					if cc, ok := c.(*ast.CommClause); ok {
						body := cc.Body
						if cc.Comm != nil {
							body = append([]ast.Stmt{cc.Comm}, body...)
						}
						bodies = append(bodies, body)
					}
				}
				held = walkBranches(held, true, bodies...)
			case *ast.LabeledStmt:
				h, term := walk([]ast.Stmt{st.Stmt}, held)
				held = h
				if term {
					return held, true
				}
			}
		}
		return held, false
	}
	walk(body.List, nil)
	return sum
}

func runGuardedBy(passes []*Pass) []Finding {
	specs, findings := gbCollect(passes)
	if len(specs) == 0 {
		return findings
	}

	// SetRank coverage: every locks.Mutex named as a guard must be
	// ranked somewhere in the program.
	ranked := make(map[string]bool)
	for _, pass := range passes {
		for _, file := range pass.Files {
			if pass.isTestFile(file.Pos()) {
				continue
			}
			ast.Inspect(file, func(n ast.Node) bool {
				call, ok := n.(*ast.CallExpr)
				if !ok {
					return true
				}
				fn := funcFor(pass.Info, call)
				if fn == nil || fn.Name() != "SetRank" || fn.Pkg() == nil || !isLockPkg(fn.Pkg().Path()) {
					return true
				}
				if sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr); ok {
					if key := gbLockKey(pass, sel.X); key != "" {
						ranked[key] = true
					}
				}
				return true
			})
		}
	}
	reportedRank := make(map[string]bool)
	for _, spec := range specs {
		if spec.kind != gbGuarded || spec.rankPass == nil || ranked[spec.guardKey] || reportedRank[spec.guardKey] {
			continue
		}
		reportedRank[spec.guardKey] = true
		findings = append(findings, Finding{
			Pos:      spec.rankPass.Fset.Position(spec.rankPos),
			Analyzer: "guarded-by",
			Message: fmt.Sprintf("guardedby mutex %s is a locks.Mutex but never receives SetRank; a guarding lock must carry a rank in the hierarchy (DESIGN.md §8)",
				spec.guardName),
		})
	}

	// Summarize every function in the analyzed packages.
	summaries := make(map[string]*gbSummary)
	var order []*gbSummary
	for _, pass := range passes {
		if gbSkips(pass.Pkg.Path()) {
			continue
		}
		for _, file := range pass.Files {
			if pass.isTestFile(file.Pos()) {
				continue
			}
			for _, decl := range file.Decls {
				fd, ok := decl.(*ast.FuncDecl)
				if !ok || fd.Body == nil {
					continue
				}
				obj, ok := pass.Info.Defs[fd.Name].(*types.Func)
				if !ok {
					continue
				}
				s := gbSummarize(pass, fd.Body, obj.FullName(), specs, &findings)
				summaries[s.key] = s
				order = append(order, s)
			}
		}
	}

	// Inter-procedural coverage: an access pending in F is accepted when
	// every call site of F holds the guard (locally, or because the
	// caller itself qualifies and never releases the guard mid-body).
	callers := make(map[string][]struct {
		caller *gbSummary
		held   []gbHeld
	})
	for _, s := range order {
		for _, c := range s.calls {
			callers[c.callee] = append(callers[c.callee], struct {
				caller *gbSummary
				held   []gbHeld
			}{s, c.held})
		}
	}

	type needKey struct {
		guard string
		write bool
	}
	needs := make(map[needKey]bool)
	for _, s := range order {
		for _, p := range s.pending {
			needs[needKey{p.spec.guardKey, p.write}] = true
		}
	}
	covered := make(map[needKey]map[string]bool)
	for nk := range needs {
		cov := make(map[string]bool)
		for _, s := range order {
			if len(callers[s.key]) > 0 {
				cov[s.key] = true
			}
		}
		for changed := true; changed; {
			changed = false
			for _, s := range order {
				if !cov[s.key] {
					continue
				}
				for _, site := range callers[s.key] {
					ok := gbHeldSatisfies(site.held, nk.guard, nk.write) ||
						(cov[site.caller.key] && !site.caller.releases[nk.guard])
					if !ok {
						cov[s.key] = false
						changed = true
						break
					}
				}
			}
		}
		covered[nk] = cov
	}

	for _, s := range order {
		for _, p := range s.pending {
			if covered[needKey{p.spec.guardKey, p.write}][s.key] {
				continue
			}
			verb := "read of"
			req := ""
			if p.write {
				verb = "write to"
				req = " exclusively"
			}
			findings = append(findings, findingAt(p.pass, "guarded-by", p.node,
				"%s %s is not dominated by %s.Lock%s: lock it here, or ensure every caller holds it",
				verb, p.spec.owner, p.spec.guardName, req))
		}
	}
	return findings
}
