package vet

import (
	"fmt"
	"go/ast"
	"go/types"
	"sort"
	"strings"
)

// WireExhaustiveness keeps the wire protocol closed under extension.
// Two checks:
//
//  1. registry completeness (in internal/wire itself): every exported
//     wire.Type constant except TInvalid must have a case in
//     newMessage, a message whose Kind() returns it, and an entry in
//     typeNames. A type constant without a registered message encodes
//     frames nobody can decode.
//  2. dispatch exhaustiveness (in wire, bulk, imd, manager, core):
//     every type switch over wire.Message must list every registered
//     message type. A default clause does not count as coverage — it
//     is exactly how a newly added type gets silently dropped. Narrow
//     correlation switches that intentionally match a message subset
//     (a sender draining its own response channel) are marked
//     //vet:ignore wire-exhaustiveness.
//
// Together with FuzzWireRoundTrip (internal/wire) this means adding a
// wire.Type constant fails vet until the message is registered and
// every dispatcher has decided what to do with it.
var WireExhaustiveness = &Analyzer{
	Name: "wire-exhaustiveness",
	Doc:  "every wire.Type has a registered message, and every wire.Message type switch handles or explicitly ignores every type",
	Run:  runWireExhaustiveness,
}

func isWirePkg(path string) bool {
	return strings.HasSuffix(path, "/internal/wire")
}

// wireDispatchPkg reports whether dispatch switches in this package
// are held to exhaustiveness.
func wireDispatchPkg(path string) bool {
	for _, suf := range []string{"/internal/wire", "/internal/bulk", "/internal/imd", "/internal/manager", "/internal/core"} {
		if strings.HasSuffix(path, suf) {
			return true
		}
	}
	return false
}

// wireWorld locates the wire package visible from pass (the package
// itself, or one of its direct imports) and extracts the Message
// interface and the set of registered message types (named types whose
// pointer implements Message).
type wireWorld struct {
	pkg      *types.Package
	message  *types.Named
	iface    *types.Interface
	messages map[string]bool // type names, e.g. "AllocReq"
}

func findWireWorld(pass *Pass) *wireWorld {
	var wirePkg *types.Package
	if isWirePkg(pass.Pkg.Path()) {
		wirePkg = pass.Pkg
	} else {
		for _, imp := range pass.Pkg.Imports() {
			if isWirePkg(imp.Path()) {
				wirePkg = imp
				break
			}
		}
	}
	if wirePkg == nil {
		return nil
	}
	obj, ok := wirePkg.Scope().Lookup("Message").(*types.TypeName)
	if !ok {
		return nil
	}
	named, ok := obj.Type().(*types.Named)
	if !ok {
		return nil
	}
	iface, ok := named.Underlying().(*types.Interface)
	if !ok {
		return nil
	}
	w := &wireWorld{pkg: wirePkg, message: named, iface: iface, messages: make(map[string]bool)}
	for _, name := range wirePkg.Scope().Names() {
		tn, ok := wirePkg.Scope().Lookup(name).(*types.TypeName)
		if !ok || !tn.Exported() {
			continue
		}
		nt, ok := tn.Type().(*types.Named)
		if !ok {
			continue
		}
		if _, isIface := nt.Underlying().(*types.Interface); isIface {
			continue
		}
		if types.Implements(types.NewPointer(nt), iface) {
			w.messages[name] = true
		}
	}
	if len(w.messages) == 0 {
		return nil
	}
	return w
}

func runWireExhaustiveness(pass *Pass) []Finding {
	if !wireDispatchPkg(pass.Pkg.Path()) {
		return nil
	}
	w := findWireWorld(pass)
	if w == nil {
		return nil
	}
	var findings []Finding
	if isWirePkg(pass.Pkg.Path()) {
		findings = append(findings, checkWireRegistry(pass)...)
	}
	findings = append(findings, checkWireDispatch(pass, w)...)
	return findings
}

// checkWireRegistry verifies newMessage, Kind and typeNames cover every
// exported Type constant.
func checkWireRegistry(pass *Pass) []Finding {
	var findings []Finding

	// The Type named type of this package.
	typeObj, ok := pass.Pkg.Scope().Lookup("Type").(*types.TypeName)
	if !ok {
		return nil
	}
	typeType := typeObj.Type()

	// All exported constants of type Type, except TInvalid (the zero
	// guard; unexported sentinels are excluded by the export check).
	type constInfo struct {
		name string
		node ast.Node
	}
	var constants []constInfo
	isTypeConst := func(obj types.Object) bool {
		c, ok := obj.(*types.Const)
		return ok && types.Identical(c.Type(), typeType)
	}
	newMessageCases := make(map[string]bool)
	kindReturns := make(map[string]bool)
	typeNameKeys := make(map[string]bool)

	for _, file := range pass.Files {
		if pass.isTestFile(file.Pos()) {
			continue
		}
		ast.Inspect(file, func(n ast.Node) bool {
			switch node := n.(type) {
			case *ast.ValueSpec:
				for _, name := range node.Names {
					obj := pass.Info.Defs[name]
					if obj == nil || !isTypeConst(obj) || !obj.Exported() || name.Name == "TInvalid" {
						continue
					}
					constants = append(constants, constInfo{name: name.Name, node: name})
				}
			case *ast.FuncDecl:
				switch {
				case node.Name.Name == "newMessage" && node.Recv == nil:
					ast.Inspect(node, func(m ast.Node) bool {
						cc, ok := m.(*ast.CaseClause)
						if !ok {
							return true
						}
						for _, e := range cc.List {
							if id, ok := ast.Unparen(e).(*ast.Ident); ok {
								if obj := pass.Info.Uses[id]; obj != nil && isTypeConst(obj) {
									newMessageCases[id.Name] = true
								}
							}
						}
						return true
					})
				case node.Name.Name == "Kind" && node.Recv != nil:
					ast.Inspect(node, func(m ast.Node) bool {
						ret, ok := m.(*ast.ReturnStmt)
						if !ok {
							return true
						}
						for _, r := range ret.Results {
							if id, ok := ast.Unparen(r).(*ast.Ident); ok {
								if obj := pass.Info.Uses[id]; obj != nil && isTypeConst(obj) {
									kindReturns[id.Name] = true
								}
							}
						}
						return true
					})
				}
				return false
			case *ast.CompositeLit:
				return true
			}
			return true
		})
		// typeNames map keys.
		ast.Inspect(file, func(n ast.Node) bool {
			vs, ok := n.(*ast.ValueSpec)
			if !ok {
				return true
			}
			for i, name := range vs.Names {
				if name.Name != "typeNames" || i >= len(vs.Values) {
					continue
				}
				if lit, ok := vs.Values[i].(*ast.CompositeLit); ok {
					for _, elt := range lit.Elts {
						kv, ok := elt.(*ast.KeyValueExpr)
						if !ok {
							continue
						}
						if id, ok := ast.Unparen(kv.Key).(*ast.Ident); ok {
							typeNameKeys[id.Name] = true
						}
					}
				}
			}
			return true
		})
	}

	for _, c := range constants {
		if !newMessageCases[c.name] {
			findings = append(findings, findingAt(pass, "wire-exhaustiveness", c.node,
				"wire type %s has no case in newMessage; frames of this type cannot be decoded", c.name))
		}
		if !kindReturns[c.name] {
			findings = append(findings, findingAt(pass, "wire-exhaustiveness", c.node,
				"no message's Kind() returns %s; the type constant has no registered message", c.name))
		}
		if !typeNameKeys[c.name] {
			findings = append(findings, findingAt(pass, "wire-exhaustiveness", c.node,
				"wire type %s has no entry in typeNames; it will log as an opaque number", c.name))
		}
	}
	return findings
}

// checkWireDispatch flags type switches over wire.Message that do not
// enumerate every registered message type.
func checkWireDispatch(pass *Pass, w *wireWorld) []Finding {
	var findings []Finding
	for _, file := range pass.Files {
		if pass.isTestFile(file.Pos()) {
			continue
		}
		ast.Inspect(file, func(n ast.Node) bool {
			ts, ok := n.(*ast.TypeSwitchStmt)
			if !ok {
				return true
			}
			// The switched expression must have static type wire.Message.
			var subject ast.Expr
			switch a := ts.Assign.(type) {
			case *ast.ExprStmt:
				if ta, ok := a.X.(*ast.TypeAssertExpr); ok {
					subject = ta.X
				}
			case *ast.AssignStmt:
				if len(a.Rhs) == 1 {
					if ta, ok := a.Rhs[0].(*ast.TypeAssertExpr); ok {
						subject = ta.X
					}
				}
			}
			if subject == nil {
				return true
			}
			tv, ok := pass.Info.Types[subject]
			if !ok || !types.Identical(tv.Type, w.message) {
				return true
			}
			covered := make(map[string]bool)
			for _, clause := range ts.Body.List {
				cc, ok := clause.(*ast.CaseClause)
				if !ok {
					continue
				}
				for _, e := range cc.List {
					t, ok := pass.Info.Types[e]
					if !ok {
						continue
					}
					ptr, ok := t.Type.(*types.Pointer)
					if !ok {
						continue
					}
					if named, ok := ptr.Elem().(*types.Named); ok && named.Obj().Pkg() == w.pkg {
						covered[named.Obj().Name()] = true
					}
				}
			}
			var missing []string
			for name := range w.messages {
				if !covered[name] {
					missing = append(missing, name)
				}
			}
			if len(missing) == 0 {
				return true
			}
			sort.Strings(missing)
			shown := missing
			const maxShown = 4
			suffix := ""
			if len(shown) > maxShown {
				suffix = fmt.Sprintf(", … %d more", len(shown)-maxShown)
				shown = shown[:maxShown]
			}
			findings = append(findings, findingAt(pass, "wire-exhaustiveness", ts,
				"type switch over wire.Message misses %d of %d message types (%s%s); handle or explicitly ignore every type, or mark a narrow correlation switch with //vet:ignore wire-exhaustiveness",
				len(missing), len(w.messages), strings.Join(shown, ", "), suffix))
			return true
		})
	}
	return findings
}
