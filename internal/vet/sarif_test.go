package vet

import (
	"encoding/json"
	"path/filepath"
	"strings"
	"testing"
)

// TestSARIFStructure validates the -sarif output against the SARIF
// 2.1.0 structural requirements GitHub code scanning enforces: version
// and $schema pinned to 2.1.0, a named driver whose rule table covers
// every ruleId, in-bounds ruleIndex values, one physical location per
// result with a relative forward-slash URI and a 1-based startLine.
// The findings come from a real analyzer run over the resource fixture
// so the shapes under test are the shapes production emits.
func TestSARIFStructure(t *testing.T) {
	pass, err := LoadFixtureDir("testdata/resource", "dodo/internal/region")
	if err != nil {
		t.Fatal(err)
	}
	findings := Suppress([]*Pass{pass}, ResourceLifecycle.Run(pass))
	if len(findings) == 0 {
		t.Fatal("resource fixture produced no findings; the structural checks below would be vacuous")
	}
	root := filepath.Dir(pass.Fset.Position(pass.Files[0].Pos()).Filename)
	log := NewSARIFLog(All(), findings, root)

	data, err := json.Marshal(log)
	if err != nil {
		t.Fatal(err)
	}
	// Decode generically: the assertions must hold on the emitted JSON,
	// not on Go-side struct defaults.
	var doc struct {
		Version string `json:"version"`
		Schema  string `json:"$schema"`
		Runs    []struct {
			Tool struct {
				Driver struct {
					Name  string `json:"name"`
					Rules []struct {
						ID               string `json:"id"`
						ShortDescription struct {
							Text string `json:"text"`
						} `json:"shortDescription"`
					} `json:"rules"`
				} `json:"driver"`
			} `json:"tool"`
			Results []struct {
				RuleID    string `json:"ruleId"`
				RuleIndex *int   `json:"ruleIndex"`
				Level     string `json:"level"`
				Message   struct {
					Text string `json:"text"`
				} `json:"message"`
				Locations []struct {
					PhysicalLocation struct {
						ArtifactLocation struct {
							URI string `json:"uri"`
						} `json:"artifactLocation"`
						Region struct {
							StartLine int `json:"startLine"`
						} `json:"region"`
					} `json:"physicalLocation"`
				} `json:"locations"`
			} `json:"results"`
		} `json:"runs"`
	}
	if err := json.Unmarshal(data, &doc); err != nil {
		t.Fatal(err)
	}

	if doc.Version != "2.1.0" {
		t.Errorf("version = %q, want 2.1.0", doc.Version)
	}
	if !strings.Contains(doc.Schema, "sarif-2.1.0") {
		t.Errorf("$schema = %q, want a sarif-2.1.0 schema URI", doc.Schema)
	}
	if len(doc.Runs) != 1 {
		t.Fatalf("runs = %d, want 1", len(doc.Runs))
	}
	run := doc.Runs[0]
	if run.Tool.Driver.Name == "" {
		t.Error("tool.driver.name is empty")
	}
	ruleIdx := make(map[string]int)
	for i, r := range run.Tool.Driver.Rules {
		if r.ID == "" {
			t.Fatalf("rules[%d].id is empty", i)
		}
		if _, dup := ruleIdx[r.ID]; dup {
			t.Errorf("duplicate rule id %q", r.ID)
		}
		if r.ShortDescription.Text == "" {
			t.Errorf("rules[%d] (%s) has no shortDescription.text", i, r.ID)
		}
		ruleIdx[r.ID] = i
	}
	// Every registered analyzer must be in the rule table: a clean rule
	// must read as "ran clean", not "never ran".
	for _, a := range All() {
		if _, ok := ruleIdx[a.Name]; !ok {
			t.Errorf("analyzer %q missing from the rule table", a.Name)
		}
	}
	if len(run.Results) != len(findings) {
		t.Fatalf("results = %d, want %d (one per finding)", len(run.Results), len(findings))
	}
	for i, res := range run.Results {
		idx, known := ruleIdx[res.RuleID]
		if !known {
			t.Errorf("results[%d].ruleId %q not in the rule table", i, res.RuleID)
		}
		if res.RuleIndex == nil {
			t.Errorf("results[%d] has no ruleIndex", i)
		} else if *res.RuleIndex != idx {
			t.Errorf("results[%d].ruleIndex = %d, want %d (index of %q)", i, *res.RuleIndex, idx, res.RuleID)
		}
		switch res.Level {
		case "error", "warning", "note":
		default:
			t.Errorf("results[%d].level = %q, not a SARIF level", i, res.Level)
		}
		if res.Message.Text == "" {
			t.Errorf("results[%d].message.text is empty", i)
		}
		if len(res.Locations) != 1 {
			t.Fatalf("results[%d] has %d locations, want 1", i, len(res.Locations))
		}
		loc := res.Locations[0].PhysicalLocation
		uri := loc.ArtifactLocation.URI
		if uri == "" {
			t.Errorf("results[%d] has an empty artifact URI", i)
		}
		if strings.HasPrefix(uri, "/") || strings.Contains(uri, "\\") {
			t.Errorf("results[%d].uri = %q, want a relative forward-slash path", i, uri)
		}
		if loc.Region.StartLine < 1 {
			t.Errorf("results[%d].startLine = %d, want >= 1", i, loc.Region.StartLine)
		}
	}
}

// TestSARIFEmptyResults: a clean run still emits a valid log with an
// empty (not null) results array — required for upload on green runs.
func TestSARIFEmptyResults(t *testing.T) {
	data, err := json.Marshal(NewSARIFLog(All(), nil, "/tmp"))
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(string(data), `"results":[]`) {
		t.Fatalf("empty run does not serialize results as []: %s", data)
	}
}
