package vet

import (
	"go/ast"
	"go/types"
)

// allowedRandFuncs are the math/rand entry points that construct an
// explicitly seeded generator rather than consulting the global one.
var allowedRandFuncs = map[string]bool{
	"New":       true,
	"NewSource": true,
	"NewZipf":   true,
}

// SeededRand forbids the top-level math/rand convenience functions
// (rand.Intn, rand.Float64, rand.Shuffle, ...): they draw from the
// process-global generator, whose state depends on everything else that
// has run, so two invocations of the same experiment diverge. All
// randomness must flow from a rand.New(rand.NewSource(seed)) owned by
// the component, with the seed recorded in its config.
var SeededRand = &Analyzer{
	Name: "seeded-rand",
	Doc:  "forbid global math/rand functions; use rand.New(rand.NewSource(seed)) for reproducibility",
	Run:  runSeededRand,
}

func runSeededRand(pass *Pass) []Finding {
	var findings []Finding
	for _, file := range pass.Files {
		if pass.isTestFile(file.Pos()) {
			continue
		}
		ast.Inspect(file, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			fn := funcFor(pass.Info, call)
			if fn == nil || fn.Pkg() == nil {
				return true
			}
			if path := fn.Pkg().Path(); path != "math/rand" && path != "math/rand/v2" {
				return true
			}
			// Methods on *rand.Rand carry their own source; only the
			// package-level functions touch the global generator.
			if sig, ok := fn.Type().(*types.Signature); ok && sig.Recv() != nil {
				return true
			}
			if allowedRandFuncs[fn.Name()] {
				return true
			}
			findings = append(findings, findingAt(pass, "seeded-rand", call,
				"call to %s.%s uses the process-global generator; use rand.New(rand.NewSource(seed)) so experiments replay deterministically", fn.Pkg().Path(), fn.Name()))
			return true
		})
	}
	return findings
}
