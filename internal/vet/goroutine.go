package vet

import (
	"go/ast"
	"go/types"
)

// daemonPackages are the long-running server components. A goroutine
// leaked there outlives requests, pins buffers, and — in the virtual-
// time harness — keeps firing events after the experiment window, so
// every launch must be tied to a shutdown mechanism.
var daemonPackages = map[string]bool{
	"dodo/internal/manager": true,
	"dodo/internal/monitor": true,
	"dodo/internal/imd":     true,
	"dodo/internal/bulk":    true,
}

// GoroutineLifecycle flags `go` statements in daemon packages that are
// tied to no lifecycle mechanism. A launch passes when the goroutine
// body (for function literals) receives from a channel, selects,
// touches a sync.WaitGroup or uses a context.Context — or when a named
// callee is handed (or carries on its receiver) a channel, WaitGroup or
// context through which it can be stopped or awaited.
var GoroutineLifecycle = &Analyzer{
	Name: "goroutine-lifecycle",
	Doc:  "flag goroutines in daemon packages not tied to a done-channel, context or WaitGroup",
	Run:  runGoroutineLifecycle,
}

func runGoroutineLifecycle(pass *Pass) []Finding {
	if !daemonPackages[pass.Pkg.Path()] {
		return nil
	}
	var findings []Finding
	for _, file := range pass.Files {
		if pass.isTestFile(file.Pos()) {
			continue
		}
		ast.Inspect(file, func(n ast.Node) bool {
			g, ok := n.(*ast.GoStmt)
			if !ok {
				return true
			}
			if goHasLifecycle(pass.Info, g) {
				return true
			}
			findings = append(findings, findingAt(pass, "goroutine-lifecycle", g,
				"goroutine in a daemon package captures no done-channel, context.Context or sync.WaitGroup; it cannot be stopped or awaited at shutdown"))
			return true
		})
	}
	return findings
}

func goHasLifecycle(info *types.Info, g *ast.GoStmt) bool {
	if lit, ok := ast.Unparen(g.Call.Fun).(*ast.FuncLit); ok {
		return litHasLifecycle(info, lit)
	}
	// Named function or method: accept a lifecycle-typed argument...
	for _, arg := range g.Call.Args {
		if tv, ok := info.Types[arg]; ok && isLifecycleType(tv.Type) {
			return true
		}
	}
	// ...or a method receiver that carries one in its struct (the
	// `go ep.recvLoop()` pattern, where Endpoint holds stop+wg fields).
	if sel, ok := ast.Unparen(g.Call.Fun).(*ast.SelectorExpr); ok {
		if tv, ok := info.Types[sel.X]; ok && typeCarriesLifecycle(tv.Type) {
			return true
		}
	}
	return false
}

// litHasLifecycle reports whether the goroutine body contains any
// shutdown/await signal: a channel receive (includes select recv
// cases), a sync.WaitGroup method call, or any use of a
// context.Context value.
func litHasLifecycle(info *types.Info, lit *ast.FuncLit) bool {
	found := false
	ast.Inspect(lit.Body, func(n ast.Node) bool {
		if found {
			return false
		}
		switch node := n.(type) {
		case *ast.UnaryExpr:
			if node.Op.String() == "<-" {
				found = true
				return false
			}
		case *ast.CallExpr:
			if fn := funcFor(info, node); fn != nil && fn.Pkg() != nil {
				if fn.Pkg().Path() == "sync" {
					if recv := fn.Type().(*types.Signature).Recv(); recv != nil && isWaitGroup(recv.Type()) {
						found = true
						return false
					}
				}
			}
		case *ast.Ident:
			if obj := info.Uses[node]; obj != nil && isContext(obj.Type()) {
				found = true
				return false
			}
		}
		return true
	})
	return found
}

func isContext(t types.Type) bool {
	named, ok := t.(*types.Named)
	if !ok {
		return false
	}
	obj := named.Obj()
	return obj != nil && obj.Pkg() != nil && obj.Pkg().Path() == "context" && obj.Name() == "Context"
}

func isWaitGroup(t types.Type) bool {
	if ptr, ok := t.(*types.Pointer); ok {
		t = ptr.Elem()
	}
	named, ok := t.(*types.Named)
	if !ok {
		return false
	}
	obj := named.Obj()
	return obj != nil && obj.Pkg() != nil && obj.Pkg().Path() == "sync" && obj.Name() == "WaitGroup"
}

// isLifecycleType reports whether t can act as a shutdown/await handle
// when passed as an argument: any channel, a context.Context, or a
// (pointer to) sync.WaitGroup.
func isLifecycleType(t types.Type) bool {
	if t == nil {
		return false
	}
	if _, ok := t.Underlying().(*types.Chan); ok {
		return true
	}
	return isContext(t) || isWaitGroup(t)
}

// typeCarriesLifecycle reports whether the (possibly pointer) struct
// type has any field of lifecycle type, searching one level of nesting.
func typeCarriesLifecycle(t types.Type) bool {
	if t == nil {
		return false
	}
	if ptr, ok := t.(*types.Pointer); ok {
		t = ptr.Elem()
	}
	st, ok := t.Underlying().(*types.Struct)
	if !ok {
		return false
	}
	for i := 0; i < st.NumFields(); i++ {
		if isLifecycleType(st.Field(i).Type()) {
			return true
		}
	}
	return false
}
