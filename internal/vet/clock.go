package vet

import (
	"go/ast"
	"go/types"
)

// clockAllowlist names the packages that may touch the process clock
// directly: sim implements the Clock abstraction itself, and the
// transport/usocket substrates sit below it (kernel socket deadlines
// and condition-variable polling are inherently wall-clock).
// Everything else must take a sim.Clock.
var clockAllowlist = map[string]bool{
	"dodo/internal/sim":       true,
	"dodo/internal/transport": true,
	"dodo/internal/usocket":   true,
}

// bannedTimeFuncs are the package time entry points that read or
// schedule against the process clock. Pure data (time.Time,
// time.Duration, time.Date, constants) stays allowed everywhere.
var bannedTimeFuncs = map[string]bool{
	"Now":       true,
	"Sleep":     true,
	"Since":     true,
	"Until":     true,
	"After":     true,
	"AfterFunc": true,
	"Tick":      true,
	"NewTimer":  true,
	"NewTicker": true,
}

// ClockDiscipline enforces the virtual-clock discipline that keeps the
// simulation deterministic: a single time.Now in a daemon makes every
// trace-driven run diverge, so outside the allowlist all time flows
// through an injected sim.Clock (sim.WallClock in live deployments).
var ClockDiscipline = &Analyzer{
	Name: "clock-discipline",
	Doc:  "forbid direct time.Now/Sleep/After etc. outside sim/transport/usocket; inject a sim.Clock",
	Run:  runClockDiscipline,
}

func runClockDiscipline(pass *Pass) []Finding {
	if clockAllowlist[pass.Pkg.Path()] {
		return nil
	}
	var findings []Finding
	for _, file := range pass.Files {
		if pass.isTestFile(file.Pos()) {
			continue
		}
		ast.Inspect(file, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			fn := funcFor(pass.Info, call)
			if fn == nil || fn.Pkg() == nil || fn.Pkg().Path() != "time" {
				return true
			}
			// Methods (t.After(u), t.Sub(u), timer.Stop()) are pure data
			// manipulation; only the package-level functions read or
			// schedule against the process clock.
			if sig, ok := fn.Type().(*types.Signature); ok && sig.Recv() != nil {
				return true
			}
			if !bannedTimeFuncs[fn.Name()] {
				return true
			}
			findings = append(findings, findingAt(pass, "clock-discipline", call,
				"call to time.%s bypasses the injected sim.Clock; take a sim.Clock (sim.WallClock in live code) so simulated runs stay deterministic", fn.Name()))
			return true
		})
	}
	return findings
}
