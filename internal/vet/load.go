package vet

import (
	"bytes"
	"encoding/json"
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"io"
	"os"
	"os/exec"
	"path/filepath"
	"sort"
	"strconv"
)

// listPkg is the subset of `go list -json` output the loader consumes.
type listPkg struct {
	ImportPath string
	Dir        string
	Export     string
	GoFiles    []string
	Standard   bool
	DepOnly    bool
	Error      *struct{ Err string }
}

// goList runs `go list -e -export -deps -json` in dir over the given
// patterns and returns the decoded package stream. The -export flag
// makes the go command compile (or fetch from the build cache) every
// listed package and report the file holding its export data, which is
// what lets the stdlib gc importer resolve imports without
// golang.org/x/tools.
func goList(dir string, patterns []string) ([]listPkg, error) {
	args := append([]string{
		"list", "-e", "-export", "-deps",
		"-json=ImportPath,Dir,Export,GoFiles,Standard,DepOnly,Error",
	}, patterns...)
	cmd := exec.Command("go", args...)
	cmd.Dir = dir
	var stderr bytes.Buffer
	cmd.Stderr = &stderr
	out, err := cmd.Output()
	if err != nil {
		return nil, fmt.Errorf("vet: go list %v: %v\n%s", patterns, err, stderr.Bytes())
	}
	var pkgs []listPkg
	dec := json.NewDecoder(bytes.NewReader(out))
	for {
		var p listPkg
		if err := dec.Decode(&p); err == io.EOF {
			break
		} else if err != nil {
			return nil, fmt.Errorf("vet: decoding go list output: %v", err)
		}
		pkgs = append(pkgs, p)
	}
	return pkgs, nil
}

// exportImporter builds a types.Importer that reads gc export data from
// the files go list reported.
func exportImporter(fset *token.FileSet, exports map[string]string) types.Importer {
	lookup := func(path string) (io.ReadCloser, error) {
		file, ok := exports[path]
		if !ok {
			return nil, fmt.Errorf("vet: no export data for %q", path)
		}
		return os.Open(file)
	}
	return importer.ForCompiler(fset, "gc", lookup)
}

// newInfo allocates the types.Info maps the analyzers rely on.
func newInfo() *types.Info {
	return &types.Info{
		Types:      make(map[ast.Expr]types.TypeAndValue),
		Defs:       make(map[*ast.Ident]types.Object),
		Uses:       make(map[*ast.Ident]types.Object),
		Selections: make(map[*ast.SelectorExpr]*types.Selection),
		Implicits:  make(map[ast.Node]types.Object),
	}
}

// LoadPackages loads, parses and type-checks every non-test package
// matched by patterns (relative to dir, e.g. "./..."), returning one
// Pass per package. Test files are excluded: the invariants govern the
// product code, and tests legitimately poke at wall clocks.
//
// Because go list runs with -e, a pattern can match packages the build
// cannot compile (a broken package, or one whose dependency produced
// no export data). Those are skipped rather than aborting the whole
// run; the returned skipped list carries one "importpath: reason"
// entry per skipped package so callers can surface them. Hard
// failures — go list itself erroring (with its stderr attached), or a
// target file that does not parse — still return an error.
func LoadPackages(dir string, patterns ...string) (passes []*Pass, skipped []string, err error) {
	pkgs, err := goList(dir, patterns)
	if err != nil {
		return nil, nil, err
	}
	exports := make(map[string]string)
	var targets []listPkg
	for _, p := range pkgs {
		if p.Export != "" {
			exports[p.ImportPath] = p.Export
		}
		if p.DepOnly || p.Standard {
			continue
		}
		if p.Error != nil {
			skipped = append(skipped, fmt.Sprintf("%s: %s", p.ImportPath, p.Error.Err))
			continue
		}
		targets = append(targets, p)
	}
	fset := token.NewFileSet()
	imp := exportImporter(fset, exports)
	for _, p := range targets {
		if len(p.GoFiles) == 0 {
			continue
		}
		var files []*ast.File
		for _, name := range p.GoFiles {
			f, err := parser.ParseFile(fset, filepath.Join(p.Dir, name), nil, parser.ParseComments)
			if err != nil {
				return nil, nil, fmt.Errorf("vet: %v", err)
			}
			files = append(files, f)
		}
		conf := types.Config{Importer: imp}
		info := newInfo()
		pkg, err := conf.Check(p.ImportPath, fset, files, info)
		if err != nil {
			// Most commonly a dependency with no export data (it failed
			// to compile, so go list -e reported it without an Export
			// file and the importer's lookup failed). The package cannot
			// be analyzed; skip it with the reason rather than killing
			// the run for every other package.
			skipped = append(skipped, fmt.Sprintf("%s: type-checking: %v", p.ImportPath, err))
			continue
		}
		passes = append(passes, &Pass{Fset: fset, Files: files, Pkg: pkg, Info: info})
	}
	sort.Slice(passes, func(i, j int) bool { return passes[i].Pkg.Path() < passes[j].Pkg.Path() })
	sort.Strings(skipped)
	return passes, skipped, nil
}

// LoadFixtureDir parses and type-checks the single package of Go files
// under dir (a testdata fixture, invisible to the go tool), checking it
// under the given import path so path-sensitive analyzers (allowlists,
// daemon-package sets) can be exercised from fixtures. Fixture imports
// must resolve via the toolchain — in practice, standard library only.
func LoadFixtureDir(dir, pkgPath string) (*Pass, error) {
	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, fmt.Errorf("vet: %v", err)
	}
	fset := token.NewFileSet()
	var files []*ast.File
	importSet := make(map[string]bool)
	for _, e := range entries {
		if e.IsDir() || filepath.Ext(e.Name()) != ".go" {
			continue
		}
		f, err := parser.ParseFile(fset, filepath.Join(dir, e.Name()), nil, parser.ParseComments)
		if err != nil {
			return nil, fmt.Errorf("vet: %v", err)
		}
		files = append(files, f)
		for _, spec := range f.Imports {
			if path, err := strconv.Unquote(spec.Path.Value); err == nil {
				importSet[path] = true
			}
		}
	}
	if len(files) == 0 {
		return nil, fmt.Errorf("vet: no Go files in %s", dir)
	}
	var imports []string
	for path := range importSet {
		imports = append(imports, path)
	}
	sort.Strings(imports)

	exports := make(map[string]string)
	if len(imports) > 0 {
		pkgs, err := goList(dir, imports)
		if err != nil {
			return nil, err
		}
		for _, p := range pkgs {
			if p.Export != "" {
				exports[p.ImportPath] = p.Export
			}
		}
	}
	conf := types.Config{Importer: exportImporter(fset, exports)}
	info := newInfo()
	pkg, err := conf.Check(pkgPath, fset, files, info)
	if err != nil {
		return nil, fmt.Errorf("vet: type-checking fixture %s: %v", dir, err)
	}
	return &Pass{Fset: fset, Files: files, Pkg: pkg, Info: info}, nil
}
