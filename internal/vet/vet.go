// Package vet implements dodo-vet, the repo-specific static-analysis
// suite. Every speedup curve this repository reproduces rests on the
// calibrated simulation being deterministic and race-free, so the
// invariants that keep it honest are enforced mechanically rather than
// by convention:
//
//   - clock-discipline: no direct time.Now/time.Sleep/time.After (and
//     friends) outside the low-level packages that implement clocks and
//     transports; everything else takes a sim.Clock.
//   - seeded-rand: no top-level math/rand calls; randomness flows from
//     rand.New(rand.NewSource(seed)) so experiments replay bit-for-bit.
//   - unchecked-error: the client API (Mread/Mwrite/Mclose/Msync,
//     Cread/Cwrite), transport Send/Recv and io.Closer Close must not
//     have their error results silently discarded in non-test code.
//   - mutex-hygiene: no value receivers or value copies of types
//     containing sync.Mutex/sync.RWMutex, and no channel sends while a
//     mutex is held.
//   - goroutine-lifecycle: goroutines launched in daemon packages must
//     be tied to a done-channel, context.Context or sync.WaitGroup.
//   - lock-order: whole-program lock-acquisition graph over every
//     locks.Mutex/sync.Mutex holder in internal/...; fails on cycles in
//     the graph and on RPC/Send calls made while holding more than one
//     lock. Cross-checked at runtime by `-tags lockcheck`
//     (internal/locks).
//   - buffer-ownership: in the zero-copy packages (usocket, bulk,
//     transport), no writes to or retention of a byte slice after it was
//     handed to Send, and no storing of borrowed []byte parameters
//     beyond the callback — copy first or transfer ownership explicitly
//     with a //vet:ignore directive.
//   - wire-exhaustiveness: every wire.Type constant has a registered
//     message (newMessage, Kind, typeNames), and every dispatch switch
//     over wire.Message handles or explicitly ignores every type.
//   - guarded-by: struct fields next to a mutex declare their
//     protection (// dodo:guardedby <mutex>, // dodo:atomic,
//     // dodo:unguarded — reason) and the whole-program pass proves
//     every guarded access is dominated by the declared Lock/RLock,
//     atomic fields go only through sync/atomic, guarded addresses
//     never escape, and guarding locks.Mutexes carry a rank
//     (DESIGN.md §10).
//
// A finding can be suppressed at a single site with a trailing or
// preceding comment: //vet:ignore <analyzer-name>. Directives are for
// reviewed false positives (ownership transferred by documented
// contract, deliberately narrow correlation switches); each one should
// say why on the same comment line.
//
// The analyzers are written against the stdlib go/ast + go/types stack
// only; package loading shells out to the go command for export data
// (see load.go), so the tool needs no dependencies beyond the toolchain.
package vet

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"sort"
	"strings"
)

// Finding is one rule violation at a source position.
type Finding struct {
	Pos      token.Position
	Analyzer string
	Message  string
}

// String formats the finding as "file:line: analyzer: message".
func (f Finding) String() string {
	return fmt.Sprintf("%s:%d: %s: %s", f.Pos.Filename, f.Pos.Line, f.Analyzer, f.Message)
}

// Pass is the per-package unit of work handed to each analyzer: the
// parsed syntax plus full type information.
type Pass struct {
	Fset  *token.FileSet
	Files []*ast.File
	Pkg   *types.Package
	Info  *types.Info
}

// isTestFile reports whether the file containing pos is a _test.go file.
func (p *Pass) isTestFile(pos token.Pos) bool {
	return strings.HasSuffix(p.Fset.Position(pos).Filename, "_test.go")
}

// Analyzer is one invariant checker.
type Analyzer struct {
	// Name is the short rule name used in findings ("clock-discipline").
	Name string
	// Doc is a one-line description for -list output.
	Doc string
	// Run inspects one package and returns its violations. For
	// whole-program analyzers Run analyzes the package in isolation
	// (used by golden tests); Check prefers RunProgram when set.
	Run func(*Pass) []Finding
	// RunProgram, when non-nil, inspects all loaded packages at once.
	// Inter-procedural analyzers (lock-order) need the whole program:
	// an acquisition edge can span packages.
	RunProgram func([]*Pass) []Finding
}

// findingAt builds a Finding for the given rule at n's position. Run
// functions use it with their literal rule name (rather than through
// the Analyzer variable) to avoid initialization cycles.
func findingAt(p *Pass, analyzer string, n ast.Node, format string, args ...any) Finding {
	return Finding{
		Pos:      p.Fset.Position(n.Pos()),
		Analyzer: analyzer,
		Message:  fmt.Sprintf(format, args...),
	}
}

// All returns every analyzer in the suite, in reporting order.
func All() []*Analyzer {
	return []*Analyzer{
		ClockDiscipline,
		SeededRand,
		UncheckedError,
		MutexHygiene,
		GoroutineLifecycle,
		LockOrder,
		BufferOwnership,
		WireExhaustiveness,
		GuardedBy,
		ResourceLifecycle,
	}
}

// Check runs the given analyzers over every pass — whole-program
// analyzers once over all passes — filters out directive-suppressed
// findings, and returns the rest sorted by file, line and analyzer.
func Check(passes []*Pass, analyzers []*Analyzer) []Finding {
	var all []Finding
	for _, a := range analyzers {
		if a.RunProgram != nil {
			all = append(all, a.RunProgram(passes)...)
			continue
		}
		for _, pass := range passes {
			all = append(all, a.Run(pass)...)
		}
	}
	all = Suppress(passes, all)
	sort.Slice(all, func(i, j int) bool {
		a, b := all[i], all[j]
		if a.Pos.Filename != b.Pos.Filename {
			return a.Pos.Filename < b.Pos.Filename
		}
		if a.Pos.Line != b.Pos.Line {
			return a.Pos.Line < b.Pos.Line
		}
		return a.Analyzer < b.Analyzer
	})
	return all
}

// funcFor resolves the called function object of a call expression, or
// nil when the callee is not a known *types.Func (e.g. a func-typed
// variable or a type conversion).
func funcFor(info *types.Info, call *ast.CallExpr) *types.Func {
	switch fun := ast.Unparen(call.Fun).(type) {
	case *ast.SelectorExpr:
		if fn, ok := info.Uses[fun.Sel].(*types.Func); ok {
			return fn
		}
	case *ast.Ident:
		if fn, ok := info.Uses[fun].(*types.Func); ok {
			return fn
		}
	}
	return nil
}

// isErrorType reports whether t is the built-in error interface.
func isErrorType(t types.Type) bool {
	named, ok := t.(*types.Named)
	if !ok {
		return false
	}
	obj := named.Obj()
	return obj != nil && obj.Pkg() == nil && obj.Name() == "error"
}
