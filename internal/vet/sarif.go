package vet

import (
	"path/filepath"
	"sort"
)

// SARIF 2.1.0 emission: dodo-vet findings as a Static Analysis Results
// Interchange Format log, the shape GitHub code scanning and most
// analysis dashboards ingest. Only the slice of the format dodo-vet
// needs is modeled; every field emitted is required or recommended by
// the SARIF 2.1.0 spec (§3 of OASIS sarif-v2.1.0).

// SARIFSchemaURI identifies the SARIF 2.1.0 JSON schema.
const SARIFSchemaURI = "https://json.schemastore.org/sarif-2.1.0.json"

// SARIFLog is the top-level sarifLog object (spec §3.13).
type SARIFLog struct {
	Version string     `json:"version"`
	Schema  string     `json:"$schema"`
	Runs    []SARIFRun `json:"runs"`
}

// SARIFRun is one analysis run (spec §3.14).
type SARIFRun struct {
	Tool    SARIFTool     `json:"tool"`
	Results []SARIFResult `json:"results"`
}

// SARIFTool wraps the driver description (spec §3.18).
type SARIFTool struct {
	Driver SARIFDriver `json:"driver"`
}

// SARIFDriver describes the tool and its rule set (spec §3.19).
type SARIFDriver struct {
	Name           string      `json:"name"`
	InformationURI string      `json:"informationUri,omitempty"`
	Rules          []SARIFRule `json:"rules"`
}

// SARIFRule is one reportingDescriptor (spec §3.49).
type SARIFRule struct {
	ID               string       `json:"id"`
	ShortDescription SARIFMessage `json:"shortDescription"`
}

// SARIFMessage is a message object (spec §3.11).
type SARIFMessage struct {
	Text string `json:"text"`
}

// SARIFResult is one finding (spec §3.27).
type SARIFResult struct {
	RuleID    string          `json:"ruleId"`
	RuleIndex int             `json:"ruleIndex"`
	Level     string          `json:"level"`
	Message   SARIFMessage    `json:"message"`
	Locations []SARIFLocation `json:"locations"`
}

// SARIFLocation wraps a physical location (spec §3.28).
type SARIFLocation struct {
	PhysicalLocation SARIFPhysicalLocation `json:"physicalLocation"`
}

// SARIFPhysicalLocation names a file region (spec §3.29).
type SARIFPhysicalLocation struct {
	ArtifactLocation SARIFArtifactLocation `json:"artifactLocation"`
	Region           SARIFRegion           `json:"region"`
}

// SARIFArtifactLocation points at the source file (spec §3.4).
type SARIFArtifactLocation struct {
	URI       string `json:"uri"`
	URIBaseID string `json:"uriBaseId,omitempty"`
}

// SARIFRegion is the line anchor (spec §3.30).
type SARIFRegion struct {
	StartLine int `json:"startLine"`
}

// NewSARIFLog builds a SARIF 2.1.0 log for one dodo-vet run. analyzers
// is the selected rule set — every selected rule appears in the driver's
// rule table whether or not it fired, so dashboards can tell "rule ran
// clean" from "rule not run". findings are the surviving (unsuppressed)
// results; file paths are emitted relative to root with forward slashes
// so the log is machine-independent. Findings are emitted at level
// "error": dodo-vet exits non-zero on any of them.
func NewSARIFLog(analyzers []*Analyzer, findings []Finding, root string) *SARIFLog {
	rules := make([]SARIFRule, 0, len(analyzers))
	index := make(map[string]int, len(analyzers))
	for _, a := range analyzers {
		if _, dup := index[a.Name]; dup {
			continue
		}
		index[a.Name] = len(rules)
		rules = append(rules, SARIFRule{
			ID:               a.Name,
			ShortDescription: SARIFMessage{Text: a.Doc},
		})
	}
	results := make([]SARIFResult, 0, len(findings))
	for _, f := range findings {
		idx, known := index[f.Analyzer]
		if !known {
			// A finding from an unregistered analyzer (should not
			// happen): grow the rule table rather than emit a dangling
			// ruleIndex, which SARIF consumers reject.
			idx = len(rules)
			index[f.Analyzer] = idx
			rules = append(rules, SARIFRule{
				ID:               f.Analyzer,
				ShortDescription: SARIFMessage{Text: f.Analyzer},
			})
		}
		results = append(results, SARIFResult{
			RuleID:    f.Analyzer,
			RuleIndex: idx,
			Level:     "error",
			Message:   SARIFMessage{Text: f.Message},
			Locations: []SARIFLocation{{
				PhysicalLocation: SARIFPhysicalLocation{
					ArtifactLocation: SARIFArtifactLocation{
						URI:       sarifURI(root, f.Pos.Filename),
						URIBaseID: "SRCROOT",
					},
					Region: SARIFRegion{StartLine: max(f.Pos.Line, 1)},
				},
			}},
		})
	}
	// Findings arrive grouped by analyzer; keep a stable file/line order
	// within the whole log so reruns diff cleanly.
	sort.SliceStable(results, func(i, j int) bool {
		a, b := results[i], results[j]
		la, lb := a.Locations[0].PhysicalLocation, b.Locations[0].PhysicalLocation
		if la.ArtifactLocation.URI != lb.ArtifactLocation.URI {
			return la.ArtifactLocation.URI < lb.ArtifactLocation.URI
		}
		if la.Region.StartLine != lb.Region.StartLine {
			return la.Region.StartLine < lb.Region.StartLine
		}
		return a.RuleID < b.RuleID
	})
	return &SARIFLog{
		Version: "2.1.0",
		Schema:  SARIFSchemaURI,
		Runs: []SARIFRun{{
			Tool:    SARIFTool{Driver: SARIFDriver{Name: "dodo-vet", Rules: rules}},
			Results: results,
		}},
	}
}

// sarifURI renders path relative to root as a forward-slash URI; an
// out-of-root path falls back to its absolute form.
func sarifURI(root, path string) string {
	if root != "" {
		if rel, err := filepath.Rel(root, path); err == nil && rel != "" && !startsWithDotDot(rel) {
			return filepath.ToSlash(rel)
		}
	}
	return filepath.ToSlash(path)
}

func startsWithDotDot(rel string) bool {
	return rel == ".." || len(rel) >= 3 && rel[:3] == ".."+string(filepath.Separator)
}
