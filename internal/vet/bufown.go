package vet

import (
	"go/ast"
	"go/types"
	"regexp"
	"strings"
)

// BufferOwnership enforces the zero-copy contract in the packet-path
// packages (internal/usocket, internal/bulk, internal/transport). Two
// rules, both intra-procedural:
//
//  1. use-after-send: once a byte slice has been passed to a zero-copy
//     Send/SendTo/SendIovec call, the caller no longer owns it — the
//     transport (or the receiver it delivered to synchronously) may
//     still be reading it. Writing into the slice, copy()ing over it,
//     or storing it into longer-lived state after the send is flagged.
//     Wholesale reassignment of the variable re-establishes ownership.
//  2. borrowed parameters: a []byte parameter in these packages is a
//     loan from the caller, valid for the duration of the call —
//     receive paths hand the same backing array to every handler.
//     Storing the parameter (or a subslice of it) into a field, map,
//     slice element, channel or composite literal retains it beyond
//     the callback and is flagged; retain a copy instead
//     (append([]byte(nil), p...) is fresh and never flagged).
//
// Where a parameter's ownership really is transferred by documented
// contract — the caller hands the buffer over and must not touch it
// until the API's own rules give it back (bulk.ExpectBulkInto's
// destination buffer is the canonical case) — annotate the function
// with `dodo:adopts(param)` in its doc comment; the named parameter is
// then exempt from the borrowed-parameter rule. The directive is
// deliberately narrow: it only silences retention of that one
// parameter, and a name that matches no []byte parameter is itself a
// finding so a typo cannot silently disable checking. For one-off
// transfers that are not part of a function's contract, mark the site
// with //vet:ignore buffer-ownership and say so.
var BufferOwnership = &Analyzer{
	Name: "buffer-ownership",
	Doc:  "flag writes to or retention of byte slices after zero-copy sends, and retention of borrowed []byte parameters",
	Run:  runBufferOwnership,
}

// bufOwnPackage reports whether path is in the zero-copy set.
func bufOwnPackage(path string) bool {
	for _, suf := range []string{"/internal/usocket", "/internal/bulk", "/internal/transport"} {
		if strings.HasSuffix(path, suf) {
			return true
		}
	}
	return false
}

// zeroCopySends are the methods that lend their []byte arguments to
// the network layer.
var zeroCopySends = map[string]bool{"Send": true, "SendTo": true, "SendIovec": true}

func isZeroCopySend(fn *types.Func) bool {
	if fn == nil || fn.Pkg() == nil || !zeroCopySends[fn.Name()] {
		return false
	}
	return bufOwnPackage(fn.Pkg().Path())
}

// adoptsRe matches a dodo:adopts directive naming parameters whose
// ownership the function takes over by documented contract.
var adoptsRe = regexp.MustCompile(`^dodo:adopts\(([a-zA-Z0-9_, ]+)\)$`)

// adoptedParams parses dodo:adopts lines from a function's doc
// comment. Malformed directives are reported so a typo cannot
// silently disable checking.
func adoptedParams(pass *Pass, doc *ast.CommentGroup, findings *[]Finding) map[string]bool {
	if doc == nil {
		return nil
	}
	var names map[string]bool
	for _, c := range doc.List {
		text := strings.TrimSpace(strings.TrimPrefix(c.Text, "//"))
		if !strings.HasPrefix(text, "dodo:adopts") {
			continue
		}
		m := adoptsRe.FindStringSubmatch(text)
		if m == nil {
			*findings = append(*findings, findingAt(pass, "buffer-ownership", c,
				"malformed directive %q: want dodo:adopts(param[, param...])", text))
			continue
		}
		for _, name := range strings.Split(m[1], ",") {
			name = strings.TrimSpace(name)
			if name == "" {
				continue
			}
			if names == nil {
				names = map[string]bool{}
			}
			names[name] = true
		}
	}
	return names
}

func isByteSlice(t types.Type) bool {
	s, ok := t.Underlying().(*types.Slice)
	if !ok {
		return false
	}
	b, ok := s.Elem().Underlying().(*types.Basic)
	return ok && b.Kind() == types.Byte
}

// bareVar resolves expr to the object it reads when expr is the bare
// variable or a subslice of it (p, p[i:j]); nil otherwise. Function
// call results — including copying appends — are fresh values.
func bareVar(info *types.Info, expr ast.Expr) *types.Var {
	switch e := ast.Unparen(expr).(type) {
	case *ast.Ident:
		if v, ok := info.Uses[e].(*types.Var); ok {
			return v
		}
	case *ast.SliceExpr:
		return bareVar(info, e.X)
	}
	return nil
}

// storesVar reports whether expr, used as a stored value, retains v:
// the bare variable, a subslice, a composite literal carrying either,
// or an append whose appended elements carry it. append's spread form
// over the bare slice (append(dst, p...)) copies the bytes and is
// fresh; appending a struct that holds p copies only the slice header
// and retains the backing array.
func storesVar(info *types.Info, expr ast.Expr, v *types.Var) bool {
	if bareVar(info, expr) == v {
		return true
	}
	switch e := ast.Unparen(expr).(type) {
	case *ast.CompositeLit:
		for _, elt := range e.Elts {
			val := elt
			if kv, ok := elt.(*ast.KeyValueExpr); ok {
				val = kv.Value
			}
			if storesVar(info, val, v) {
				return true
			}
		}
	case *ast.CallExpr:
		id, ok := ast.Unparen(e.Fun).(*ast.Ident)
		if !ok || id.Name != "append" || len(e.Args) < 2 {
			return false
		}
		for i, arg := range e.Args[1:] {
			spread := e.Ellipsis.IsValid() && i == len(e.Args)-2
			if spread && bareVar(info, arg) == v {
				continue // append(dst, p...) copies the bytes
			}
			if storesVar(info, arg, v) {
				return true
			}
		}
	}
	return false
}

// isLongLivedTarget reports whether an assignment LHS outlives the
// enclosing call: a struct field, or an element of a map/slice reached
// through one.
func isLongLivedTarget(expr ast.Expr) bool {
	switch e := ast.Unparen(expr).(type) {
	case *ast.SelectorExpr:
		return true
	case *ast.IndexExpr:
		return isLongLivedTarget(e.X) || isIdent(e.X)
	case *ast.StarExpr:
		return true
	}
	return false
}

func isIdent(expr ast.Expr) bool {
	_, ok := ast.Unparen(expr).(*ast.Ident)
	return ok
}

func runBufferOwnership(pass *Pass) []Finding {
	if !bufOwnPackage(pass.Pkg.Path()) {
		return nil
	}
	var findings []Finding
	for _, file := range pass.Files {
		if pass.isTestFile(file.Pos()) {
			continue
		}
		ast.Inspect(file, func(n ast.Node) bool {
			switch fn := n.(type) {
			case *ast.FuncDecl:
				if fn.Body != nil {
					findings = append(findings, checkBufferOwnership(pass, fn.Doc, fn.Type, fn.Body)...)
				}
				return false
			case *ast.FuncLit:
				findings = append(findings, checkBufferOwnership(pass, nil, fn.Type, fn.Body)...)
				return false
			}
			return true
		})
	}
	return findings
}

func checkBufferOwnership(pass *Pass, doc *ast.CommentGroup, ftype *ast.FuncType, body *ast.BlockStmt) []Finding {
	var findings []Finding
	report := func(n ast.Node, format string, args ...any) {
		findings = append(findings, findingAt(pass, "buffer-ownership", n, format, args...))
	}

	// Borrowed []byte parameters, minus those the function adopts by
	// documented contract.
	adopted := adoptedParams(pass, doc, &findings)
	borrowed := make(map[*types.Var]bool)
	if ftype.Params != nil {
		for _, field := range ftype.Params.List {
			for _, name := range field.Names {
				if v, ok := pass.Info.Defs[name].(*types.Var); ok && isByteSlice(v.Type()) {
					if adopted[v.Name()] {
						delete(adopted, v.Name())
						continue
					}
					borrowed[v] = true
				}
			}
		}
	}
	for name := range adopted {
		report(ftype, "dodo:adopts(%s) names no []byte parameter", name)
	}

	// lent maps a variable to true once it has been passed to a
	// zero-copy send in source order.
	lent := make(map[*types.Var]bool)

	// The walk is source-order and flow-insensitive across branches: a
	// send anywhere earlier in the text lends the buffer for everything
	// after it. Nested function literals are handled by the caller's
	// Inspect (each gets its own scan); skip them here.
	ast.Inspect(body, func(n ast.Node) bool {
		switch node := n.(type) {
		case *ast.FuncLit:
			return false
		case *ast.AssignStmt:
			for i, lhs := range node.Lhs {
				// Wholesale reassignment returns ownership.
				if v := directIdentVar(pass.Info, lhs); v != nil && lent[v] {
					delete(lent, v)
					continue
				}
				// Writes into a lent buffer: buf[i] = x.
				if idx, ok := ast.Unparen(lhs).(*ast.IndexExpr); ok {
					if v := bareVar(pass.Info, idx.X); v != nil && lent[v] {
						report(lhs, "write into %s after it was passed to a zero-copy send; the transport may still be reading it", v.Name())
					}
				}
				// Retention of lent buffers or borrowed parameters into
				// long-lived state.
				if i < len(node.Rhs) && isLongLivedTarget(lhs) {
					rhs := node.Rhs[i]
					for v := range lent {
						if storesVar(pass.Info, rhs, v) {
							report(rhs, "%s stored after it was passed to a zero-copy send; copy before retaining", v.Name())
						}
					}
					for v := range borrowed {
						if storesVar(pass.Info, rhs, v) {
							report(rhs, "borrowed []byte parameter %s stored beyond the call; the caller reuses its backing array — retain a copy (append([]byte(nil), %s...))", v.Name(), v.Name())
						}
					}
				}
			}
			// Multi-value or mismatched assigns: scan rhs for sends below.
		case *ast.SendStmt:
			for v := range borrowed {
				if storesVar(pass.Info, node.Value, v) {
					report(node.Value, "borrowed []byte parameter %s sent on a channel; the receiver outlives the call — send a copy", v.Name())
				}
			}
			for v := range lent {
				if storesVar(pass.Info, node.Value, v) {
					report(node.Value, "%s sent on a channel after a zero-copy send; copy before sharing", v.Name())
				}
			}
		case *ast.CallExpr:
			fn := funcFor(pass.Info, node)
			// copy(dst, ...) over a lent buffer rewrites bytes in flight.
			if id, ok := ast.Unparen(node.Fun).(*ast.Ident); ok && id.Name == "copy" && len(node.Args) == 2 {
				if v := bareVar(pass.Info, node.Args[0]); v != nil && lent[v] {
					report(node.Args[0], "copy into %s after it was passed to a zero-copy send; the transport may still be reading it", v.Name())
				}
			}
			if isZeroCopySend(fn) {
				for _, arg := range node.Args {
					if v := bareVar(pass.Info, arg); v != nil && isByteSlice(v.Type()) {
						lent[v] = true
					}
				}
			}
		}
		return true
	})
	return findings
}

// directIdentVar returns the variable when expr is exactly a bare
// identifier.
func directIdentVar(info *types.Info, expr ast.Expr) *types.Var {
	if id, ok := ast.Unparen(expr).(*ast.Ident); ok {
		if v, ok := info.Uses[id].(*types.Var); ok {
			return v
		}
	}
	return nil
}
