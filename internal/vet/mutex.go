package vet

import (
	"go/ast"
	"go/types"
	"strings"
)

// MutexHygiene enforces three rules about lock-bearing types:
//
//  1. methods on types containing a sync.Mutex/sync.RWMutex must use
//     pointer receivers (a value receiver locks a copy, guarding
//     nothing);
//  2. values of such types must not be copied — by assignment,
//     dereference, parameter passing or range — for the same reason;
//  3. no channel send may happen while a mutex is held: the receiver
//     may be arbitrarily slow (or itself blocked on the same lock),
//     turning a critical section into a deadlock.
//
// The send check is a linear, intra-procedural approximation: lock
// depth is tracked in statement order, branches that end in return are
// treated as leaving the lock state unchanged on the fall-through path,
// and loop bodies are assumed to balance their locks. It under-reports
// in convoluted flows but never needs annotations.
var MutexHygiene = &Analyzer{
	Name: "mutex-hygiene",
	Doc:  "flag value receivers/copies of mutex-bearing types and channel sends under a held lock",
	Run:  runMutexHygiene,
}

// containsMutex reports whether a value of type t directly embeds a
// sync.Mutex or sync.RWMutex (possibly through nested structs and
// arrays). Pointers, slices, maps and interfaces stop the walk: copying
// a pointer to a lock is fine.
func containsMutex(t types.Type, seen map[types.Type]bool) bool {
	if seen[t] {
		return false
	}
	seen[t] = true
	switch u := t.(type) {
	case *types.Named:
		if obj := u.Obj(); obj != nil && obj.Pkg() != nil && obj.Pkg().Path() == "sync" &&
			(obj.Name() == "Mutex" || obj.Name() == "RWMutex") {
			return true
		}
		return containsMutex(u.Underlying(), seen)
	case *types.Struct:
		for i := 0; i < u.NumFields(); i++ {
			if containsMutex(u.Field(i).Type(), seen) {
				return true
			}
		}
	case *types.Array:
		return containsMutex(u.Elem(), seen)
	}
	return false
}

func hasMutex(t types.Type) bool {
	if t == nil {
		return false
	}
	return containsMutex(t, make(map[types.Type]bool))
}

func isBlank(e ast.Expr) bool {
	id, ok := e.(*ast.Ident)
	return ok && id.Name == "_"
}

func runMutexHygiene(pass *Pass) []Finding {
	var findings []Finding
	report := func(n ast.Node, format string, args ...any) {
		findings = append(findings, findingAt(pass, "mutex-hygiene", n, format, args...))
	}

	checkParams := func(ft *ast.FuncType) {
		if ft.Params == nil {
			return
		}
		for _, field := range ft.Params.List {
			tv, ok := pass.Info.Types[field.Type]
			if !ok {
				continue
			}
			if _, isPtr := tv.Type.(*types.Pointer); isPtr {
				continue
			}
			if hasMutex(tv.Type) {
				report(field.Type, "parameter of type %s passes a lock by value; use a pointer", tv.Type)
			}
		}
	}

	// copySource reports whether expr reads an existing value (so that
	// assigning it copies), as opposed to creating one (composite
	// literal, function call) — constructors legitimately return
	// zero-valued lock-bearing structs.
	var copySource func(expr ast.Expr) bool
	copySource = func(expr ast.Expr) bool {
		switch e := ast.Unparen(expr).(type) {
		case *ast.Ident, *ast.SelectorExpr, *ast.IndexExpr:
			return true
		case *ast.StarExpr:
			_ = e
			return true
		}
		return false
	}
	checkCopy := func(rhs ast.Expr) {
		if !copySource(rhs) {
			return
		}
		tv, ok := pass.Info.Types[rhs]
		if !ok {
			return
		}
		if _, isPtr := tv.Type.(*types.Pointer); isPtr {
			return
		}
		if hasMutex(tv.Type) {
			report(rhs, "assignment copies a value of type %s, which contains a mutex; use a pointer", tv.Type)
		}
	}

	for _, file := range pass.Files {
		if pass.isTestFile(file.Pos()) {
			continue
		}
		ast.Inspect(file, func(n ast.Node) bool {
			switch node := n.(type) {
			case *ast.FuncDecl:
				if node.Recv != nil && len(node.Recv.List) == 1 {
					if fn, ok := pass.Info.Defs[node.Name].(*types.Func); ok {
						recv := fn.Type().(*types.Signature).Recv()
						if recv != nil {
							if _, isPtr := recv.Type().(*types.Pointer); !isPtr && hasMutex(recv.Type()) {
								report(node.Recv.List[0].Type,
									"method %s has a value receiver but %s contains a mutex; use a pointer receiver", node.Name.Name, recv.Type())
							}
						}
					}
				}
				checkParams(node.Type)
				if node.Body != nil {
					findings = append(findings, checkSendsUnderLock(pass, node.Body)...)
				}
			case *ast.FuncLit:
				checkParams(node.Type)
				findings = append(findings, checkSendsUnderLock(pass, node.Body)...)
			case *ast.AssignStmt:
				for i, rhs := range node.Rhs {
					// `_ = x` discards the value; no lock escapes.
					if len(node.Lhs) == len(node.Rhs) && isBlank(node.Lhs[i]) {
						continue
					}
					checkCopy(rhs)
				}
			case *ast.ValueSpec:
				for i, rhs := range node.Values {
					if len(node.Names) == len(node.Values) && node.Names[i].Name == "_" {
						continue
					}
					checkCopy(rhs)
				}
			case *ast.RangeStmt:
				if node.Value != nil && !isBlank(node.Value) {
					// In a `for _, v := range` the value ident is being
					// defined, so its type lives in Defs, not Types.
					var t types.Type
					if tv, ok := pass.Info.Types[node.Value]; ok {
						t = tv.Type
					} else if id, ok := node.Value.(*ast.Ident); ok {
						if obj := pass.Info.Defs[id]; obj != nil {
							t = obj.Type()
						}
					}
					if hasMutex(t) {
						report(node.Value, "range copies values of type %s, which contains a mutex; range over indices or pointers", t)
					}
				}
			}
			return true
		})
	}
	return findings
}

// isLockPkg reports whether path is a package whose Lock/Unlock methods
// manage a mutex: the stdlib sync package or Dodo's rank-ordered
// wrapper (internal/locks).
func isLockPkg(path string) bool {
	return path == "sync" || path == "dodo/internal/locks" || strings.HasSuffix(path, "/internal/locks")
}

// lockDelta classifies a statement-position call: +1 for
// Lock/RLock on sync or locks mutexes, -1 for Unlock/RUnlock,
// 0 otherwise.
func lockDelta(info *types.Info, stmt ast.Stmt) int {
	es, ok := stmt.(*ast.ExprStmt)
	if !ok {
		return 0
	}
	call, ok := es.X.(*ast.CallExpr)
	if !ok {
		return 0
	}
	fn := funcFor(info, call)
	if fn == nil || fn.Pkg() == nil || !isLockPkg(fn.Pkg().Path()) {
		return 0
	}
	switch fn.Name() {
	case "Lock", "RLock":
		return 1
	case "Unlock", "RUnlock":
		return -1
	}
	return 0
}

// checkSendsUnderLock walks one function body (not descending into
// nested function literals, which run in their own lock context) and
// flags channel sends made while the lock-depth counter is positive.
// defer mu.Unlock() intentionally does not decrement: the lock stays
// held for the remainder of the body.
func checkSendsUnderLock(pass *Pass, body *ast.BlockStmt) []Finding {
	var findings []Finding
	flag := func(s *ast.SendStmt) {
		findings = append(findings, findingAt(pass, "mutex-hygiene", s,
			"channel send while holding a mutex; the receiver can stall (or deadlock) the critical section — send after unlocking"))
	}

	// walk processes stmts in order at the given entry lock depth and
	// returns the fall-through depth plus whether the sequence always
	// terminates (return/break/continue/goto) before falling through.
	var walk func(stmts []ast.Stmt, depth int) (int, bool)

	walkClauses := func(bodies [][]ast.Stmt, depth int, sends []*ast.SendStmt) int {
		for _, s := range sends {
			if depth > 0 {
				flag(s)
			}
		}
		// The fall-through depth is the most optimistic (lowest) over
		// the entry depth and every non-terminating clause: under-flag
		// rather than false-positive on asymmetric branches.
		min := depth
		for _, b := range bodies {
			d, term := walk(b, depth)
			if !term && d < min {
				min = d
			}
		}
		return min
	}

	walk = func(stmts []ast.Stmt, depth int) (int, bool) {
		for _, stmt := range stmts {
			switch s := stmt.(type) {
			case *ast.ExprStmt:
				if d := lockDelta(pass.Info, stmt); d != 0 {
					depth += d
					if depth < 0 {
						depth = 0
					}
				}
			case *ast.SendStmt:
				if depth > 0 {
					flag(s)
				}
			case *ast.DeferStmt:
				// Deferred unlocks release at return, not here; deferred
				// sends run outside this statement order. Skip.
			case *ast.BlockStmt:
				d, term := walk(s.List, depth)
				depth = d
				if term {
					return depth, true
				}
			case *ast.IfStmt:
				bodyDepth, bodyTerm := walk(s.Body.List, depth)
				elseDepth, elseTerm := depth, false
				hasElse := s.Else != nil
				if hasElse {
					elseDepth, elseTerm = walk([]ast.Stmt{s.Else}, depth)
				}
				switch {
				case bodyTerm && elseTerm && hasElse:
					return depth, true
				case bodyTerm:
					depth = elseDepth
				case elseTerm:
					depth = bodyDepth
				default:
					if bodyDepth < elseDepth {
						depth = bodyDepth
					} else {
						depth = elseDepth
					}
				}
			case *ast.ForStmt:
				depth = walkClauses([][]ast.Stmt{s.Body.List}, depth, nil)
			case *ast.RangeStmt:
				depth = walkClauses([][]ast.Stmt{s.Body.List}, depth, nil)
			case *ast.SwitchStmt:
				var bodies [][]ast.Stmt
				for _, c := range s.Body.List {
					if cc, ok := c.(*ast.CaseClause); ok {
						bodies = append(bodies, cc.Body)
					}
				}
				depth = walkClauses(bodies, depth, nil)
			case *ast.TypeSwitchStmt:
				var bodies [][]ast.Stmt
				for _, c := range s.Body.List {
					if cc, ok := c.(*ast.CaseClause); ok {
						bodies = append(bodies, cc.Body)
					}
				}
				depth = walkClauses(bodies, depth, nil)
			case *ast.SelectStmt:
				var bodies [][]ast.Stmt
				var sends []*ast.SendStmt
				for _, c := range s.Body.List {
					if cc, ok := c.(*ast.CommClause); ok {
						if send, ok := cc.Comm.(*ast.SendStmt); ok {
							sends = append(sends, send)
						}
						bodies = append(bodies, cc.Body)
					}
				}
				depth = walkClauses(bodies, depth, sends)
			case *ast.LabeledStmt:
				d, term := walk([]ast.Stmt{s.Stmt}, depth)
				depth = d
				if term {
					return depth, true
				}
			case *ast.ReturnStmt, *ast.BranchStmt:
				return depth, true
			case *ast.GoStmt:
				// The goroutine body runs concurrently with its own lock
				// state; function literals are analyzed separately.
			}
		}
		return depth, false
	}
	walk(body.List, 0)
	return findings
}
