// Fixture for the unchecked-error analyzer. The monitored surface is
// name-based (Mread/Mwrite/Mclose/Msync, Cread/Cwrite, Send/Recv,
// Close) so the fixture models it with local types.
package fixture

type conn struct{}

func (conn) Send(to string, data []byte) error { return nil }
func (conn) Recv() ([]byte, string, error)     { return nil, "", nil }
func (conn) Close() error                      { return nil }

type client struct{}

func (client) Mread(fd int, off int64, buf []byte) (int, error)  { return 0, nil }
func (client) Mwrite(fd int, off int64, buf []byte) (int, error) { return 0, nil }
func (client) Mclose(fd int) error                               { return nil }
func (client) Msync(fd int) error                                { return nil }
func (client) Notify(to string) error                            { return nil }

type region struct{}

func (region) Cread(buf []byte) (int, error)  { return 0, nil }
func (region) Cwrite(buf []byte) (int, error) { return 0, nil }

// silent has no error result; statement position is fine.
type quiet struct{}

func (quiet) Close() {}

func discarded(c conn, cl client, r region) {
	c.Send("host", nil)    // want `error result of Send is discarded`
	c.Recv()               // want `error result of Recv is discarded`
	c.Close()              // want `error result of Close is discarded`
	cl.Mread(0, 0, nil)    // want `error result of Mread is discarded`
	cl.Mwrite(0, 0, nil)   // want `error result of Mwrite is discarded`
	cl.Mclose(0)           // want `error result of Mclose is discarded`
	cl.Msync(0)            // want `error result of Msync is discarded`
	r.Cread(nil)           // want `error result of Cread is discarded`
	r.Cwrite(nil)          // want `error result of Cwrite is discarded`
	go c.Send("host", nil) // want `error result of Send is discarded`
}

func handled(c conn, cl client, r region, q quiet) {
	if err := c.Send("host", nil); err != nil {
		_ = err
	}
	_, _, _ = c.Recv()
	defer c.Close() // deferred cleanup is a visible idiom, allowed
	_ = c.Close()   // explicit discard, allowed
	if _, err := cl.Mread(0, 0, nil); err != nil {
		_ = err
	}
	_ = cl.Mclose(0)
	_ = cl.Notify("host") // Notify is best-effort, not monitored
	cl.Notify("host")
	n, err := r.Cwrite(nil)
	_, _ = n, err
	q.Close() // no error result to lose
}
