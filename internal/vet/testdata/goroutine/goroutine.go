// Fixture for the goroutine-lifecycle analyzer. Checked under a daemon
// import path (dodo/internal/manager) every marked launch must be
// flagged; under a non-daemon path the file must be silent.
package fixture

import (
	"context"
	"sync"
)

type daemon struct{ n int }

func (d *daemon) pump() { d.n++ }

type loop struct {
	stop chan struct{}
	wg   sync.WaitGroup
}

func (l *loop) run() { <-l.stop }

func untracked(d *daemon) {
	go func() { d.n++ }() // want `cannot be stopped or awaited`
	go d.pump()           // want `cannot be stopped or awaited`
}

func tracked(l *loop, ctx context.Context, work func(context.Context)) {
	stop := make(chan struct{})
	go func() { <-stop }()

	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
	}()

	go func() {
		select {
		case <-ctx.Done():
		}
	}()

	go func() {
		work(ctx) // references a context.Context
	}()

	// Named launches: the receiver carries stop+wg, or an argument does.
	go l.run()
	go work(ctx)
	d := &daemon{}
	go pumpUntil(d, stop)
	close(stop)
	wg.Wait()
}

func pumpUntil(d *daemon, stop chan struct{}) {
	for {
		select {
		case <-stop:
			return
		default:
			d.pump()
		}
	}
}
