// Fixture for the lock-order analyzer. Checked under the import path
// dodo/internal/transport so the local Send method counts as an RPC
// and the package is inside the analyzed internal/ set.
package transport

import "sync"

// Net stands in for a transport endpoint; its Send is recognized as an
// RPC because this fixture type-checks under internal/transport.
type Net struct{}

func (n *Net) Send(to string, data []byte) error { return nil }

// A and B are locked in both orders below: a cycle.
type A struct{ mu sync.Mutex }

type B struct{ mu sync.Mutex }

func lockAB(a *A, b *B) {
	a.mu.Lock()
	b.mu.Lock() // want `lock acquisition cycle among \{transport.A.mu, transport.B.mu\}`
	b.mu.Unlock()
	a.mu.Unlock()
}

func lockBA(a *A, b *B) {
	b.mu.Lock()
	a.mu.Lock()
	a.mu.Unlock()
	b.mu.Unlock()
}

// C and D are always nested in the same order: consistent, no cycle.
type C struct{ mu sync.Mutex }

type D struct{ mu sync.Mutex }

func lockCD(c *C, d *D) {
	c.mu.Lock()
	d.mu.Lock()
	d.mu.Unlock()
	c.mu.Unlock()
}

// Direct RPC under two held locks: flagged.
func sendUnderTwo(c *C, d *D, n *Net) {
	c.mu.Lock()
	d.mu.Lock()
	_ = n.Send("x", nil) // want `RPC Send while holding 2 locks \(transport.C.mu, transport.D.mu\)`
	d.mu.Unlock()
	c.mu.Unlock()
}

// Transitive: the helper reaches the network, the caller holds two
// locks at the call.
func sendViaHelper(c *C, d *D, n *Net) {
	c.mu.Lock()
	d.mu.Lock()
	relay(n) // want `RPC .*relay while holding 2 locks`
	d.mu.Unlock()
	c.mu.Unlock()
}

func relay(n *Net) { _ = n.Send("y", nil) }

// RPC under a single lock is within policy: not flagged.
func sendUnderOne(c *C, n *Net) {
	c.mu.Lock()
	_ = n.Send("z", nil)
	c.mu.Unlock()
}

// Reviewed false positive: the send is double-locked only on a path a
// human verified cannot race the peer; the directive records the
// review. Without it this line would be a finding — the golden test
// proves the suppression works because no want comment matches here.
func sendUnderTwoReviewed(c *C, d *D, n *Net) {
	c.mu.Lock()
	d.mu.Lock()
	//vet:ignore lock-order — fixture: reviewed double-locked send
	_ = n.Send("w", nil)
	d.mu.Unlock()
	c.mu.Unlock()
}
