// Fixture for the seeded-rand analyzer: top-level math/rand calls draw
// from the process-global generator and are forbidden; explicitly
// seeded generators are the sanctioned path.
package fixture

import "math/rand"

func global() {
	_ = rand.Intn(10)     // want `math/rand\.Intn`
	_ = rand.Float64()    // want `math/rand\.Float64`
	_ = rand.Int63()      // want `math/rand\.Int63`
	_ = rand.Perm(8)      // want `math/rand\.Perm`
	rand.Shuffle(4, func(i, j int) {}) // want `math/rand\.Shuffle`
}

func seeded(seed int64) {
	rng := rand.New(rand.NewSource(seed))
	_ = rng.Intn(10)
	_ = rng.Float64()
	rng.Shuffle(4, func(i, j int) {})
	z := rand.NewZipf(rng, 1.1, 1, 100)
	_ = z.Uint64()
}
