// Fixture for the clock-discipline analyzer. Checked twice: under a
// non-allowlisted import path every marked line must be flagged; under
// dodo/internal/sim the whole file must be silent.
package fixture

import "time"

func readsClock() time.Time {
	return time.Now() // want `call to time\.Now`
}

func sleeps() {
	time.Sleep(10 * time.Millisecond) // want `call to time\.Sleep`
}

func measures(start time.Time) time.Duration {
	elapsed := time.Since(start) // want `call to time\.Since`
	_ = time.Until(start)        // want `call to time\.Until`
	return elapsed
}

func schedules(done chan struct{}) {
	select {
	case <-time.After(time.Second): // want `call to time\.After`
	case <-done:
	}
	timer := time.NewTimer(time.Second) // want `call to time\.NewTimer`
	timer.Stop()
	ticker := time.NewTicker(time.Second) // want `call to time\.NewTicker`
	ticker.Stop()
	time.AfterFunc(time.Second, func() {}) // want `call to time\.AfterFunc`
}

// Pure time data is allowed everywhere: only clock reads and timer
// scheduling break determinism.
func allowed() {
	var t time.Time
	d := 3 * time.Second
	t = t.Add(d)
	_ = t.Before(time.Date(1999, 8, 2, 0, 0, 0, 0, time.UTC))
	_ = t.After(time.Date(1999, 8, 2, 0, 0, 0, 0, time.UTC)) // method, not time.After
	_ = time.Duration(42).String()
	_ = time.Unix(99, 0)
}
