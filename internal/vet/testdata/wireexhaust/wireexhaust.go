// Fixture for the wire-exhaustiveness analyzer: a self-contained
// miniature of internal/wire, checked under the import path
// dodo/internal/wire so both the registry and the dispatch checks
// apply.
package wire

// Type tags a frame on the wire.
type Type uint8

// TOrphan is deliberately unregistered: no newMessage case, no message
// whose Kind() returns it, no typeNames entry — three findings on its
// declaration line.
const (
	TInvalid Type = iota
	TPing
	TPong
	TReport
	TReportAck
	TOrphan // want `wire type TOrphan has no case in newMessage` `no message's Kind\(\) returns TOrphan` `wire type TOrphan has no entry in typeNames`
	typeSentinel
)

var typeNames = map[Type]string{
	TInvalid:   "invalid",
	TPing:      "ping",
	TPong:      "pong",
	TReport:    "report",
	TReportAck: "report-ack",
}

func (t Type) String() string {
	if s, ok := typeNames[t]; ok {
		return s
	}
	return "unknown"
}

// Message is the decoded form of a frame.
type Message interface {
	Kind() Type
}

type Ping struct{}

func (*Ping) Kind() Type { return TPing }

type Pong struct{}

func (*Pong) Kind() Type { return TPong }

// Report and ReportAck miniature the inventory re-report pair: a
// request pushed by a daemon and its acknowledgement. Fully registered,
// so their only job here is growing the registry the dispatch checks
// count against.
type Report struct{}

func (*Report) Kind() Type { return TReport }

type ReportAck struct{}

func (*ReportAck) Kind() Type { return TReportAck }

func newMessage(t Type) Message {
	switch t {
	case TPing:
		return &Ping{}
	case TPong:
		return &Pong{}
	case TReport:
		return &Report{}
	case TReportAck:
		return &ReportAck{}
	}
	return nil
}

// dispatch forgets everything but Ping: a default clause would not save
// it either — that is exactly how a new type gets silently dropped.
func dispatch(msg Message) {
	switch msg.(type) { // want `type switch over wire.Message misses 3 of 4 message types \(Pong, Report, ReportAck\)`
	case *Ping:
	}
}

// correlate intentionally matches a subset (a sender draining its own
// responses); the directive records that decision. Without it the
// switch would be a finding — the golden test proves the suppression
// works because no want comment matches here.
func correlate(msg Message) {
	//vet:ignore wire-exhaustiveness — narrow correlation switch: only replies reach this channel
	switch msg.(type) {
	case *Pong:
	case *ReportAck:
	}
}

// handleAll covers every registered message: no finding.
func handleAll(msg Message) {
	switch msg.(type) {
	case *Ping:
	case *Pong:
	case *Report:
	case *ReportAck:
	}
}
