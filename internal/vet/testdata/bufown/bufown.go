// Fixture for the buffer-ownership analyzer. Checked under the import
// path dodo/internal/usocket so the local Send method counts as a
// zero-copy sender and the package is inside the zero-copy set.
package usocket

type conn struct {
	last   []byte
	q      [][]byte
	frames []wrap
}

type wrap struct{ data []byte }

// Send is recognized as a zero-copy sender because this fixture
// type-checks under internal/usocket.
func (c *conn) Send(to string, data []byte) error { return nil }

// Writing into a buffer after lending it to the transport: flagged.
func useAfterSend(c *conn) {
	buf := make([]byte, 64)
	_ = c.Send("x", buf)
	buf[0] = 1 // want `write into buf after it was passed to a zero-copy send`
}

// copy() over a lent buffer rewrites bytes in flight: flagged.
func copyAfterSend(c *conn) {
	buf := make([]byte, 8)
	_ = c.Send("x", buf)
	copy(buf, "new") // want `copy into buf after it was passed to a zero-copy send`
}

// Retaining a lent buffer in long-lived state: flagged.
func retainAfterSend(c *conn) {
	buf := make([]byte, 8)
	_ = c.Send("x", buf)
	c.last = buf // want `buf stored after it was passed to a zero-copy send`
}

// Wholesale reassignment returns ownership: not flagged.
func reassignAfterSend(c *conn) {
	buf := make([]byte, 8)
	_ = c.Send("x", buf)
	buf = make([]byte, 8)
	buf[0] = 1
}

// Storing a borrowed []byte parameter beyond the call: flagged.
func (c *conn) deposit(data []byte) {
	c.q = append(c.q, data) // want `borrowed \[\]byte parameter data stored beyond the call`
}

// Wrapping the borrowed parameter in a composite literal is still
// retention — only the slice header is copied: flagged.
func (c *conn) depositFramed(data []byte) {
	c.frames = append(c.frames, wrap{data: data}) // want `borrowed \[\]byte parameter data stored beyond the call`
}

// Retaining a copy is the sanctioned pattern: not flagged.
func (c *conn) depositCopy(data []byte) {
	c.q = append(c.q, append([]byte(nil), data...))
}

// Reviewed ownership transfer: the caller copies before calling, so
// this queue takes over the frame by contract. Without the directive
// this line would be a finding — the golden test proves the
// suppression works because no want comment matches here.
func (c *conn) depositOwned(data []byte) {
	//vet:ignore buffer-ownership — fixture: ownership transferred by contract
	c.q = append(c.q, data)
}

// An adopted parameter is an ownership transfer that is part of the
// function's documented contract: the caller hands dst over and must
// not touch it until the API gives it back. Not flagged.
//
// dodo:adopts(data)
func (c *conn) depositAdopted(data []byte) {
	c.q = append(c.q, data)
}

// A directive naming a parameter that does not exist (or is not a
// []byte) is itself a finding, so a typo cannot silently disable the
// borrowed-parameter rule — and the real parameter stays checked.
//
// dodo:adopts(bogus)
func (c *conn) adoptTypo(data []byte) { // want `dodo:adopts\(bogus\) names no \[\]byte parameter`
	c.q = append(c.q, data) // want `borrowed \[\]byte parameter data stored beyond the call`
}

// A malformed adopts directive is reported, not silently ignored.
//
// dodo:adopts() want `malformed directive`
func (c *conn) adoptMalformed(data []byte) {
	c.q = append(c.q, append([]byte(nil), data...))
}
