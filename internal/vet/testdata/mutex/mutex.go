// Fixture for the mutex-hygiene analyzer: value receivers and copies
// of lock-bearing types, and channel sends under a held mutex.
package fixture

import "sync"

type counter struct {
	mu sync.Mutex
	n  int
}

// nested embeds a mutex two levels down; the copy rules must see it.
type nested struct {
	inner counter
	tag   string
}

type rwguard struct {
	mu sync.RWMutex
	m  map[string]int
}

func (c counter) IncByValue() { // want `value receiver`
	c.mu.Lock()
	c.n++
	c.mu.Unlock()
}

func (c *counter) Inc() {
	c.mu.Lock()
	c.n++
	c.mu.Unlock()
}

func (g *rwguard) get(k string) int {
	g.mu.RLock()
	defer g.mu.RUnlock()
	return g.m[k]
}

func byValueParam(c counter) int { // want `passes a lock by value`
	return c.n
}

func byPointerParam(c *counter) int { return c.n }

func copies(c *counter, list []nested) {
	snapshot := *c // want `contains a mutex`
	_ = snapshot
	var n nested
	m := n // want `contains a mutex`
	_ = m
	first := list[0] // want `contains a mutex`
	_ = first
	for _, item := range list { // want `range copies`
		_ = item.tag
	}
}

func creations() {
	fresh := counter{}
	_ = fresh
	ptr := &counter{}
	other := ptr // copying the pointer is fine
	_ = other
	for i := range make([]nested, 3) {
		_ = i
	}
}

func sendUnderLock(c *counter, ch chan int) {
	c.mu.Lock()
	ch <- c.n // want `channel send while holding a mutex`
	c.mu.Unlock()
}

func sendUnderDeferredUnlock(c *counter, ch chan int) {
	c.mu.Lock()
	defer c.mu.Unlock()
	ch <- c.n // want `channel send while holding a mutex`
}

func sendUnderRLock(g *rwguard, ch chan int) {
	g.mu.RLock()
	select {
	case ch <- len(g.m): // want `channel send while holding a mutex`
	default:
	}
	g.mu.RUnlock()
}

func sendAfterEarlyReturnUnlock(c *counter, ch chan int) bool {
	c.mu.Lock()
	if c.n == 0 {
		c.mu.Unlock()
		return false
	}
	ch <- c.n // want `channel send while holding a mutex`
	c.mu.Unlock()
	return true
}

func sendAfterUnlock(c *counter, ch chan int) {
	c.mu.Lock()
	n := c.n
	c.mu.Unlock()
	ch <- n
}

func sendOutsideAnyLock(ch chan int) {
	ch <- 1
}

func sendInGoroutineAfterSnapshot(c *counter, ch chan int) {
	c.mu.Lock()
	n := c.n
	c.mu.Unlock()
	go func() { ch <- n }()
}
