// Fixture for the guarded-by analyzer. Checked under the import path
// dodo/internal/manager so it sits inside the analyzed internal/ set
// and mirrors the manager's directory-under-mutex shape.
package manager

import (
	"sync"
	"sync/atomic"

	"dodo/internal/locks"
)

// Directory mirrors manager.Manager: a ranked mutex guarding maps, a
// helper-under-lock call chain, and stats counters. Leak below is the
// acceptance shape — Grant with its Lock() removed.
type Directory struct {
	mu locks.Mutex
	// dodo:guardedby mu
	rows map[string]int
	// dodo:atomic
	hits atomic.Int64
	// dodo:unguarded — signal channel, internally synchronized
	stop chan struct{}
	gen  int // want `field manager.Directory.gen has no dodo: annotation`
}

// NewDirectory touches fields before publication: a freshly allocated
// struct needs no lock.
func NewDirectory() *Directory {
	d := &Directory{rows: make(map[string]int), stop: make(chan struct{})}
	d.mu.SetRank(locks.RankManager)
	d.rows["seed"] = 1
	return d
}

// Grant locks, so the helper's write is dominated through the call.
func (d *Directory) Grant(host string) {
	d.mu.Lock()
	defer d.mu.Unlock()
	d.grantLocked(host)
}

func (d *Directory) grantLocked(host string) {
	d.rows[host]++ // every caller holds mu: covered
}

// Leak is Grant with the Lock() removed.
func (d *Directory) Leak(host string) {
	d.rows[host]++ // want `write to manager.Directory.rows is not dominated by Directory.mu.Lock`
}

// Count reads under the lock; Peek does not.
func (d *Directory) Count() int {
	d.mu.Lock()
	n := len(d.rows)
	d.mu.Unlock()
	return n
}

func (d *Directory) Peek(host string) int {
	return d.rows[host] // want `read of manager.Directory.rows is not dominated by Directory.mu.Lock`
}

// Rebalance's lock dominates accesses two calls down.
func (d *Directory) Rebalance() {
	d.mu.Lock()
	defer d.mu.Unlock()
	d.rebalanceLocked()
}

func (d *Directory) rebalanceLocked() { d.sweepLocked() }

func (d *Directory) sweepLocked() {
	for k := range d.rows {
		delete(d.rows, k)
	}
}

// Update's literal inherits the held set at its creation point.
func (d *Directory) Update() {
	d.mu.Lock()
	defer d.mu.Unlock()
	func() {
		d.rows["x"] = 2
	}()
}

// Watch's goroutine body starts with no locks.
func (d *Directory) Watch() {
	go func() {
		_ = d.rows // want `read of manager.Directory.rows is not dominated by Directory.mu.Lock`
	}()
}

// Audit carries a reviewed suppression: no finding.
func (d *Directory) Audit() int {
	//vet:ignore guarded-by — reviewed: torn snapshot size is acceptable for stats
	return len(d.rows)
}

// Hit and Drain use the atomic field through its method set; the blank
// read below is a plain access and a finding.
func (d *Directory) Hit() { d.hits.Add(1) }

func (d *Directory) Drain() int64 {
	n := d.hits.Load()
	d.hits.Store(0)
	return n
}

func (d *Directory) Torn() {
	_ = d.hits // want `plain read of dodo:atomic field manager.Directory.hits`
}

// Counters exercises the free-function sync/atomic form on a plain
// integer field.
type Counters struct {
	mu sync.Mutex
	// dodo:atomic
	ops int64
	// dodo:guardedby mu
	last string
}

func (c *Counters) Op() { atomic.AddInt64(&c.ops, 1) }

func (c *Counters) Bad() int64 {
	return c.ops // want `plain read of dodo:atomic field manager.Counters.ops`
}

func (c *Counters) Race() {
	c.ops++ // want `plain write to dodo:atomic field manager.Counters.ops`
}

func (c *Counters) Escape() *string {
	return &c.last // want `address of guarded field manager.Counters.last escapes`
}

func (c *Counters) MixedDiscipline() {
	c.mu.Lock()
	c.last = "x"
	c.mu.Unlock()
}

// Stats exercises RWMutex modes: RLock admits reads, not writes.
type Stats struct {
	mu sync.RWMutex
	// dodo:guardedby mu
	total int
}

func (s *Stats) Total() int {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return s.total
}

func (s *Stats) BadWrite() {
	s.mu.RLock()
	s.total++ // want `write to manager.Stats.total is not dominated by Stats.mu.Lock exclusively`
	s.mu.RUnlock()
}

func (s *Stats) GoodWrite(n int) {
	s.mu.Lock()
	s.total += n
	s.mu.Unlock()
}

// Sloppy exercises the annotation grammar findings.
type Sloppy struct {
	mu sync.Mutex
	// dodo:guardedby lock
	a int // want `dodo:guardedby "lock" does not name a sibling mutex field`
	// dodo:unguarded
	b int // want `dodo:unguarded needs a reason`
}

func (s *Sloppy) touch() {
	s.mu.Lock()
	s.a, s.b = 1, 2
	s.mu.Unlock()
}

// Unranked's guard is a locks.Mutex that never receives SetRank.
type Unranked struct {
	mu locks.Mutex
	// dodo:guardedby mu
	n int // want `guardedby mutex Unranked.mu is a locks.Mutex but never receives SetRank`
}

func (u *Unranked) bump() {
	u.mu.Lock()
	u.n++
	u.mu.Unlock()
}
