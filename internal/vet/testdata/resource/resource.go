// Fixture for the resource-lifecycle analyzer: built-in registry pairs
// (os.Open/Close, sync.WaitGroup.Add/Done, sync.Mutex.Lock/Unlock) and
// annotation-declared pairs, across the path shapes the analyzer must
// get right — error-path-only leaks, defer releases, transfers into
// stores, loop re-acquisition, and goroutine handoff.
package region

import (
	"errors"
	"os"
	"sync"
)

func work() error { return nil }

// Plain leak: opened, never closed, nil-error return.
func leakPlain() error {
	f, err := os.Open("x")
	if err != nil {
		return err
	}
	_ = f
	return nil // want `file f acquired at .*resource\.go:\d+ is neither released nor transferred`
}

// Error-path-only leak: the success path closes, the mid-function error
// return does not.
func leakErrorPath() error {
	f, err := os.Open("x")
	if err != nil {
		return err
	}
	if err := work(); err != nil {
		return err // want `file f acquired at .*resource\.go:\d+ is neither released nor transferred`
	}
	return f.Close()
}

// Defer release covers every subsequent path: clean.
func deferRelease() error {
	f, err := os.Open("x")
	if err != nil {
		return err
	}
	defer f.Close()
	return work()
}

type holder struct{ f *os.File }

// A store moves ownership somewhere the intraprocedural analysis cannot
// see; without a transfers annotation that is flagged at the store.
func storeUnannotated(h *holder) error {
	f, err := os.Open("x")
	if err != nil {
		return err
	}
	h.f = f // want `file f moves into a field, map or element store without a dodo:transfers\(file\) annotation`
	return nil
}

// The same store under a transfers annotation is the declared contract:
// silent.
//
// dodo:transfers(file)
func storeAnnotated(h *holder) error {
	f, err := os.Open("x")
	if err != nil {
		return err
	}
	h.f = f
	return nil
}

// Re-acquiring inside a loop while the previous acquisition is still
// live loses it on the back-edge.
func loopReacquire(paths []string) {
	for _, p := range paths { // want `file f acquired at .*resource\.go:\d+ inside the loop body is still live on the loop back-edge`
		f, err := os.Open(p)
		if err != nil {
			return
		}
		_ = f
	}
}

// Close at the bottom of the loop body balances each iteration: clean.
func loopBalanced(paths []string) {
	for _, p := range paths {
		f, err := os.Open(p)
		if err != nil {
			return
		}
		f.Close()
	}
}

// WaitGroup count taken, then abandoned on the early error return; the
// nil-error path hands it to a goroutine that Dones it.
func wgErrorLeak(wg *sync.WaitGroup, fn func()) error {
	wg.Add(1)
	if fn == nil {
		return errors.New("nil fn") // want `wg wg acquired at .*resource\.go:\d+ is neither released nor transferred`
	}
	go func() {
		defer wg.Done()
		fn()
	}()
	return nil
}

// Lock held across an error return.
func lockErrorLeak(mu *sync.Mutex, n int) error {
	mu.Lock()
	if n < 0 {
		return errors.New("negative") // want `lock mu acquired at .*resource\.go:\d+ is neither released nor transferred`
	}
	mu.Unlock()
	return nil
}

// Unlock-before-sleep, re-lock after: the debt machinery must not flag
// the re-acquisition inside the loop.
func lockJuggle(mu *sync.Mutex, spins int) {
	mu.Lock()
	for i := 0; i < spins; i++ {
		mu.Unlock()
		work()
		mu.Lock()
	}
	mu.Unlock()
}

// Annotation-declared pair: takeSlot acquires kind "slot", putSlot
// releases it.
//
// dodo:acquires(slot)
func takeSlot() int { return 1 }

// dodo:releases(slot)
func putSlot(s int) { _ = s }

// The slot leaks only on the error path.
func slotErrorLeak(fail bool) error {
	s := takeSlot()
	if fail {
		return errors.New("boom") // want `slot s acquired at .*resource\.go:\d+ is neither released nor transferred`
	}
	putSlot(s)
	return nil
}

// Balanced slot use: clean.
func slotBalanced() {
	s := takeSlot()
	putSlot(s)
}

// A malformed directive must be reported, not silently ignored.
//
// dodo:acquires() — empty kind list. // want `malformed lifecycle directive`
func malformedDirective() {}
