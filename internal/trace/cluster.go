package trace

import (
	"math"
	"time"

	"dodo/internal/monitor"
)

// Cluster is a set of synthetic workstations monitored together.
type Cluster struct {
	Name  string
	Hosts []*Host
}

// NewClusterA builds the 29-workstation UCSB cluster of §2: a research
// cluster heavy in large-memory machines, calibrated so mean available
// memory lands near Figure 1's 3549 MB (all hosts) / 2747 MB (idle).
func NewClusterA(seed int64) *Cluster {
	return composeCluster("clusterA", ProfileClusterA, seed, map[HostClass]int{
		Class32MB:  2,
		Class64MB:  3,
		Class128MB: 10,
		Class256MB: 14,
	})
}

// NewClusterB builds the 23-workstation GMU cluster of §2: smaller
// machines, calibrated near Figure 1's 852 MB (all) / 742 MB (idle).
func NewClusterB(seed int64) *Cluster {
	return composeCluster("clusterB", ProfileClusterB, seed, map[HostClass]int{
		Class32MB:  10,
		Class64MB:  8,
		Class128MB: 5,
	})
}

func composeCluster(name string, profile ActivityProfile, seed int64, mix map[HostClass]int) *Cluster {
	c := &Cluster{Name: name}
	i := int64(0)
	for _, class := range Table1Classes() {
		for n := 0; n < mix[class]; n++ {
			c.Hosts = append(c.Hosts, NewHost(class, profile, seed+i*7919+1))
			i++
		}
	}
	return c
}

// ClusterSample is one point of the Figure 1 series.
type ClusterSample struct {
	Time time.Time
	// AvailAll is the total available memory across every host.
	AvailAll uint64
	// AvailIdle counts only hosts satisfying the idle predicate.
	AvailIdle uint64
	// IdleHosts is the number of idle hosts.
	IdleHosts int
}

// Series advances every host in lockstep and returns the cluster-level
// availability series — the data behind Figure 1.
func (c *Cluster) Series(start time.Time, duration, step time.Duration) []ClusterSample {
	var out []ClusterSample
	for t := start; t.Before(start.Add(duration)); t = t.Add(step) {
		var s ClusterSample
		s.Time = t
		for _, h := range c.Hosts {
			hs := h.Step(t, step)
			avail := hs.Mem.Available()
			s.AvailAll += avail
			if hs.Idle {
				s.AvailIdle += avail
				s.IdleHosts++
			}
		}
		out = append(out, s)
	}
	return out
}

// SeriesAverages reduces a series to the two Figure 1 headline numbers.
func SeriesAverages(series []ClusterSample) (avgAllMB, avgIdleMB float64) {
	if len(series) == 0 {
		return 0, 0
	}
	var all, idle float64
	for _, s := range series {
		all += float64(s.AvailAll)
		idle += float64(s.AvailIdle)
	}
	n := float64(len(series))
	const MB = 1 << 20
	return all / n / MB, idle / n / MB
}

// HostSeries traces one host alone — the data behind Figure 2.
func HostSeries(h *Host, start time.Time, duration, step time.Duration) []Sample {
	var out []Sample
	for t := start; t.Before(start.Add(duration)); t = t.Add(step) {
		out = append(out, h.Step(t, step))
	}
	return out
}

// ComponentStats aggregates per-class component statistics over a run —
// the data behind Table 1.
type ComponentStats struct {
	Class     HostClass
	Samples   int
	KernelKB  MeanStd
	FileKB    MeanStd
	ProcessKB MeanStd
	AvailKB   MeanStd
}

// MeanStd accumulates a running mean and standard deviation (Welford).
type MeanStd struct {
	n          int
	mean, m2   float64
	Mean, Std  float64
	minv, maxv float64
}

// Add accumulates one observation.
func (m *MeanStd) Add(x float64) {
	if m.n == 0 {
		m.minv, m.maxv = x, x
	}
	m.n++
	d := x - m.mean
	m.mean += d / float64(m.n)
	m.m2 += d * (x - m.mean)
	m.Mean = m.mean
	if m.n > 1 {
		m.Std = math.Sqrt(m.m2 / float64(m.n-1))
	}
	if x < m.minv {
		m.minv = x
	}
	if x > m.maxv {
		m.maxv = x
	}
}

// Min and Max expose the observed extremes.
func (m *MeanStd) Min() float64 { return m.minv }

// Max returns the maximum observation.
func (m *MeanStd) Max() float64 { return m.maxv }

// Table1Study runs hostsPerClass hosts of every class for the given
// duration and aggregates the Table 1 statistics.
func Table1Study(hostsPerClass int, duration time.Duration, seed int64) []ComponentStats {
	start := time.Date(1998, 9, 7, 0, 0, 0, 0, time.UTC)
	step := time.Minute
	var out []ComponentStats
	for ci, class := range Table1Classes() {
		stats := ComponentStats{Class: class}
		for i := 0; i < hostsPerClass; i++ {
			h := NewHost(class, ProfileClusterA, seed+int64(ci*1000+i))
			for t := start; t.Before(start.Add(duration)); t = t.Add(step) {
				s := h.Step(t, step)
				stats.Samples++
				stats.KernelKB.Add(float64(s.Mem.Kernel) / KB)
				stats.FileKB.Add(float64(s.Mem.FileCache) / KB)
				stats.ProcessKB.Add(float64(s.Mem.Process) / KB)
				stats.AvailKB.Add(float64(s.Mem.Available()) / KB)
			}
		}
		out = append(out, stats)
	}
	return out
}

// MonitorSource adapts a synthetic Host to the monitor.Source interface,
// so the rmd state machine (and the live cluster harness) can be driven
// by the same calibrated traces as the §2 study. Busy sessions present
// console activity and load ~1.0; idle periods show background load.
type MonitorSource struct {
	host *Host
	last time.Time
}

// NewMonitorSource wraps a host.
func NewMonitorSource(h *Host) *MonitorSource { return &MonitorSource{host: h} }

// Sample advances the trace to now and reports the activity observation.
func (s *MonitorSource) Sample(now time.Time) monitor.Sample {
	dt := time.Minute
	if !s.last.IsZero() {
		if d := now.Sub(s.last); d > 0 {
			dt = d
		}
	}
	s.last = now
	hs := s.host.Step(now, dt)
	load := 0.05
	if hs.Active {
		load = 1.0
	}
	return monitor.Sample{Time: now, ConsoleActive: hs.Active, Load: load}
}

// Mem returns the host's latest memory sample for harvest sizing.
func (s *MonitorSource) Mem(now time.Time) monitor.MemSample {
	// Peek without advancing activity state: step with zero duration.
	return s.host.Step(now, 0).Mem
}
