package trace

import (
	"math"
	"testing"
	"time"
)

var start = time.Date(1998, 9, 7, 0, 0, 0, 0, time.UTC) // a Monday

func relErr(got, want float64) float64 {
	if want == 0 {
		return math.Abs(got)
	}
	return math.Abs(got-want) / math.Abs(want)
}

func TestAvailMeanMatchesTable1Arithmetic(t *testing.T) {
	// Table 1's available column must equal total minus components.
	wants := map[string]float64{"32MB": 16310, "64MB": 35079, "128MB": 84761, "256MB": 187045}
	for _, c := range Table1Classes() {
		got := c.AvailMeanKB()
		if relErr(got, wants[c.Name]) > 0.01 {
			t.Errorf("%s implied avail = %.0f KB, want ~%.0f", c.Name, got, wants[c.Name])
		}
	}
}

// Table 1 reproduction: a week of synthetic traces must reproduce the
// per-class component means within 15%.
func TestTable1MeansReproduced(t *testing.T) {
	stats := Table1Study(6, 7*24*time.Hour, 42)
	if len(stats) != 4 {
		t.Fatalf("classes = %d", len(stats))
	}
	for _, st := range stats {
		c := st.Class
		if relErr(st.KernelKB.Mean, c.KernelMeanKB) > 0.15 {
			t.Errorf("%s kernel mean = %.0f, want ~%.0f", c.Name, st.KernelKB.Mean, c.KernelMeanKB)
		}
		if relErr(st.FileKB.Mean, c.FileCacheMeanKB) > 0.25 {
			t.Errorf("%s file-cache mean = %.0f, want ~%.0f", c.Name, st.FileKB.Mean, c.FileCacheMeanKB)
		}
		if relErr(st.ProcessKB.Mean, c.ProcessMeanKB) > 0.25 {
			t.Errorf("%s process mean = %.0f, want ~%.0f", c.Name, st.ProcessKB.Mean, c.ProcessMeanKB)
		}
		if relErr(st.AvailKB.Mean, c.AvailMeanKB()) > 0.12 {
			t.Errorf("%s avail mean = %.0f, want ~%.0f", c.Name, st.AvailKB.Mean, c.AvailMeanKB())
		}
	}
}

// The paper's growth observation: the absolute amount of not-in-use
// memory grows with machine size (12-14 MB at 32 MB up to 180-192 MB at
// 256 MB).
func TestAvailabilityGrowsWithMachineSize(t *testing.T) {
	stats := Table1Study(4, 3*24*time.Hour, 7)
	for i := 1; i < len(stats); i++ {
		if stats[i].AvailKB.Mean <= stats[i-1].AvailKB.Mean {
			t.Errorf("avail mean did not grow from %s (%.0f) to %s (%.0f)",
				stats[i-1].Class.Name, stats[i-1].AvailKB.Mean,
				stats[i].Class.Name, stats[i].AvailKB.Mean)
		}
	}
}

// Figure 1 reproduction: cluster-level averages within 15% of the
// paper's numbers, and idle-host availability strictly below all-hosts.
func TestFigure1ClusterAverages(t *testing.T) {
	cases := []struct {
		name           string
		cluster        *Cluster
		wantAll, wIdle float64
	}{
		{"clusterA", NewClusterA(1), 3549, 2747},
		{"clusterB", NewClusterB(2), 852, 742},
	}
	for _, c := range cases {
		series := c.cluster.Series(start, 7*24*time.Hour, time.Minute)
		all, idle := SeriesAverages(series)
		if relErr(all, c.wantAll) > 0.15 {
			t.Errorf("%s all-hosts avail = %.0f MB, want ~%.0f", c.name, all, c.wantAll)
		}
		if relErr(idle, c.wIdle) > 0.20 {
			t.Errorf("%s idle-hosts avail = %.0f MB, want ~%.0f", c.name, idle, c.wIdle)
		}
		if idle >= all {
			t.Errorf("%s idle avail %.0f >= all avail %.0f", c.name, idle, all)
		}
	}
}

// §2's headline: 60-68% of installed memory available across all hosts,
// about 53% when only idle hosts count.
func TestFigure1FractionOfInstalledMemory(t *testing.T) {
	cluster := NewClusterA(3)
	var installedMB float64
	for _, h := range cluster.Hosts {
		installedMB += float64(h.Class.TotalKB) / 1024
	}
	series := cluster.Series(start, 7*24*time.Hour, time.Minute)
	all, idle := SeriesAverages(series)
	fracAll := all / installedMB
	fracIdle := idle / installedMB
	if fracAll < 0.55 || fracAll > 0.75 {
		t.Errorf("all-hosts available fraction = %.2f, want 0.60-0.68", fracAll)
	}
	if fracIdle < 0.42 || fracIdle > 0.65 {
		t.Errorf("idle-hosts available fraction = %.2f, want ~0.53", fracIdle)
	}
}

// Figure 2 reproduction: individual hosts show deep dips but high
// typical availability.
func TestFigure2DipsAndTypicalAvailability(t *testing.T) {
	for _, class := range Table1Classes() {
		h := NewHost(class, ProfileClusterA, 99)
		series := HostSeries(h, start, 7*24*time.Hour, time.Minute)
		var stats MeanStd
		for _, s := range series {
			stats.Add(float64(s.Mem.Available()) / (1 << 20)) // MB
		}
		totalMB := float64(class.TotalKB) / 1024
		// Deep dips occur: minimum well below half the mean.
		if stats.Min() > 0.5*stats.Mean {
			t.Errorf("%s: min avail %.1f MB never dipped below half the mean %.1f MB",
				class.Name, stats.Min(), stats.Mean)
		}
		// But most of the time a large fraction is available.
		if stats.Mean < 0.35*totalMB {
			t.Errorf("%s: mean avail %.1f MB is under 35%% of %-6.0f MB total",
				class.Name, stats.Mean, totalMB)
		}
	}
}

func TestBusyFractionCalibration(t *testing.T) {
	// The profiles must produce the idle-host fractions behind
	// Figure 1's gap: clusterA busier than clusterB.
	a := ProfileClusterA.BusyFraction()
	b := ProfileClusterB.BusyFraction()
	if a <= b {
		t.Errorf("clusterA busy fraction %.3f <= clusterB %.3f", a, b)
	}
	if a < 0.15 || a > 0.40 {
		t.Errorf("clusterA busy fraction = %.3f, want 0.15-0.40", a)
	}
	if b < 0.05 || b > 0.25 {
		t.Errorf("clusterB busy fraction = %.3f, want 0.05-0.25", b)
	}
}

func TestIdlePredicateNeedsFiveQuietMinutes(t *testing.T) {
	h := NewHost(Class128MB, ActivityProfile{MeanBusy: time.Hour, MeanIdle: 100 * time.Hour}, 5)
	// Force a busy session.
	h.busy = true
	h.stateLeft = 2 * time.Minute
	h.idleFor = 0
	now := start
	// Two busy minutes.
	for i := 0; i < 2; i++ {
		s := h.Step(now, time.Minute)
		if s.Idle {
			t.Fatal("busy host classified idle")
		}
		now = now.Add(time.Minute)
	}
	// Then quiet: must take 5 more minutes to become idle.
	idleAt := -1
	for i := 0; i < 10; i++ {
		s := h.Step(now, time.Minute)
		if s.Idle {
			idleAt = i
			break
		}
		now = now.Add(time.Minute)
	}
	// The busy session ends partway through the loop (the renewal timer
	// decrements before the state check), so allow one minute of slack
	// around the five-minute predicate.
	if idleAt < 3 {
		t.Fatalf("host became idle after %d quiet minutes, want ~5", idleAt+1)
	}
}

func TestDeterminism(t *testing.T) {
	a := NewHost(Class64MB, ProfileClusterA, 7)
	b := NewHost(Class64MB, ProfileClusterA, 7)
	now := start
	for i := 0; i < 100; i++ {
		sa := a.Step(now, time.Minute)
		sb := b.Step(now, time.Minute)
		if sa.Mem != sb.Mem || sa.Active != sb.Active {
			t.Fatalf("step %d diverged with identical seeds", i)
		}
		now = now.Add(time.Minute)
	}
}

func TestMemSamplesArePhysical(t *testing.T) {
	h := NewHost(Class32MB, ProfileClusterA, 11)
	now := start
	for i := 0; i < 5000; i++ {
		s := h.Step(now, time.Minute)
		m := s.Mem
		if m.Kernel+m.FileCache+m.Process > m.Total {
			t.Fatalf("step %d: components exceed total: %+v", i, m)
		}
		if m.Available() > m.Total {
			t.Fatalf("step %d: available exceeds total", i)
		}
		now = now.Add(time.Minute)
	}
}

func TestClusterCompositions(t *testing.T) {
	a := NewClusterA(1)
	if len(a.Hosts) != 29 {
		t.Errorf("clusterA hosts = %d, want 29", len(a.Hosts))
	}
	b := NewClusterB(1)
	if len(b.Hosts) != 23 {
		t.Errorf("clusterB hosts = %d, want 23", len(b.Hosts))
	}
}

func TestMeanStdWelford(t *testing.T) {
	var m MeanStd
	for _, x := range []float64{2, 4, 4, 4, 5, 5, 7, 9} {
		m.Add(x)
	}
	if math.Abs(m.Mean-5) > 1e-9 {
		t.Errorf("mean = %v, want 5", m.Mean)
	}
	if math.Abs(m.Std-2.138) > 0.01 { // sample std
		t.Errorf("std = %v, want ~2.138", m.Std)
	}
	if m.Min() != 2 || m.Max() != 9 {
		t.Errorf("min/max = %v/%v", m.Min(), m.Max())
	}
}

func BenchmarkClusterWeekSeries(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		c := NewClusterA(int64(i))
		c.Series(start, 7*24*time.Hour, time.Minute)
	}
}

// The diurnal bias: hosts are busier during weekday working hours, so
// cluster-wide idle-host availability is lower 9-18 on weekdays than
// overnight.
func TestDiurnalPatternInClusterSeries(t *testing.T) {
	cluster := NewClusterA(21)
	series := cluster.Series(start, 7*24*time.Hour, time.Minute)
	var workSum, nightSum float64
	var workN, nightN int
	for _, s := range series {
		h, wd := s.Time.Hour(), s.Time.Weekday()
		weekday := wd != time.Saturday && wd != time.Sunday
		switch {
		case weekday && h >= 10 && h < 17:
			workSum += float64(s.AvailIdle)
			workN++
		case h >= 1 && h < 6:
			nightSum += float64(s.AvailIdle)
			nightN++
		}
	}
	if workN == 0 || nightN == 0 {
		t.Fatal("empty buckets")
	}
	work := workSum / float64(workN)
	night := nightSum / float64(nightN)
	if work >= night {
		t.Fatalf("idle-host availability during working hours (%.0f) >= overnight (%.0f); diurnal bias missing",
			work/(1<<20), night/(1<<20))
	}
}

// Idle-host count is bounded by the cluster size and strictly positive
// on average.
func TestIdleHostCountsSane(t *testing.T) {
	cluster := NewClusterB(13)
	series := cluster.Series(start, 48*time.Hour, time.Minute)
	total := 0
	for _, s := range series {
		if s.IdleHosts < 0 || s.IdleHosts > len(cluster.Hosts) {
			t.Fatalf("idle hosts = %d of %d", s.IdleHosts, len(cluster.Hosts))
		}
		total += s.IdleHosts
	}
	if avg := float64(total) / float64(len(series)); avg < float64(len(cluster.Hosts))/2 {
		t.Fatalf("average idle hosts = %.1f, implausibly low for clusterB", avg)
	}
}
