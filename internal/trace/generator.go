// Package trace synthesizes workstation memory-usage and user-activity
// traces calibrated to the measurement study that motivated Dodo (§2;
// Acharya & Setia [2]). The paper monitored two production Solaris
// clusters for weeks; those raw traces are long gone, so this package
// generates statistically equivalent ones:
//
//   - per-host-class means and standard deviations of kernel, file-cache
//     and process memory match Table 1;
//   - cluster-level aggregate availability matches Figure 1 (clusterA:
//     29 workstations, ~3549 MB available across all hosts / ~2747 MB on
//     idle hosts; clusterB: 23 workstations, ~852 / ~742 MB);
//   - individual hosts show the Figure 2 shape: availability is high
//     most of the time, with recurring deep dips during bursts of user
//     activity.
//
// Memory components evolve as clamped AR(1) (mean-reverting) processes;
// user activity follows an alternating busy/idle renewal process with a
// weekday-working-hours diurnal bias.
package trace

import (
	"math"
	"math/rand"
	"time"

	"dodo/internal/monitor"
)

// KB is 1024 bytes.
const KB = 1024

// HostClass describes one row of Table 1 (all figures in KB).
type HostClass struct {
	Name    string
	TotalKB uint64

	KernelMeanKB, KernelStdKB       float64
	FileCacheMeanKB, FileCacheStdKB float64
	ProcessMeanKB, ProcessStdKB     float64
}

// AvailMeanKB returns the implied mean available memory (Table 1's last
// column equals total minus the three component means).
func (c HostClass) AvailMeanKB() float64 {
	return float64(c.TotalKB) - c.KernelMeanKB - c.FileCacheMeanKB - c.ProcessMeanKB
}

// The four host classes of Table 1.
var (
	Class32MB = HostClass{
		Name: "32MB", TotalKB: 32 * 1024,
		KernelMeanKB: 10310, KernelStdKB: 1133,
		FileCacheMeanKB: 2402, FileCacheStdKB: 2257,
		ProcessMeanKB: 3746, ProcessStdKB: 2686,
	}
	Class64MB = HostClass{
		Name: "64MB", TotalKB: 64 * 1024,
		KernelMeanKB: 16347, KernelStdKB: 2081,
		FileCacheMeanKB: 4093, FileCacheStdKB: 3776,
		ProcessMeanKB: 10017, ProcessStdKB: 6982,
	}
	Class128MB = HostClass{
		Name: "128MB", TotalKB: 128 * 1024,
		KernelMeanKB: 25512, KernelStdKB: 3257,
		FileCacheMeanKB: 8216, FileCacheStdKB: 10271,
		ProcessMeanKB: 12583, ProcessStdKB: 12621,
	}
	Class256MB = HostClass{
		Name: "256MB", TotalKB: 256 * 1024,
		KernelMeanKB: 50109, KernelStdKB: 8625,
		FileCacheMeanKB: 7384, FileCacheStdKB: 7821,
		ProcessMeanKB: 17606, ProcessStdKB: 23335,
	}
)

// Table1Classes returns the four classes in ascending size order.
func Table1Classes() []HostClass {
	return []HostClass{Class32MB, Class64MB, Class128MB, Class256MB}
}

// ActivityProfile tunes the busy/idle renewal process.
type ActivityProfile struct {
	// MeanBusy and MeanIdle are session-length means (exponential).
	MeanBusy time.Duration
	MeanIdle time.Duration
	// WorkBias multiplies the busy-session start rate during weekday
	// working hours (9-18).
	WorkBias float64
}

// Profiles calibrated so clusterA hosts are idle ~78% of the time and
// clusterB hosts ~87% (Figure 1's all-hosts vs idle-hosts gap).
var (
	ProfileClusterA = ActivityProfile{MeanBusy: 35 * time.Minute, MeanIdle: 2 * time.Hour, WorkBias: 3.0}
	ProfileClusterB = ActivityProfile{MeanBusy: 20 * time.Minute, MeanIdle: 3 * time.Hour, WorkBias: 3.0}
)

// Host is one synthetic workstation.
type Host struct {
	Class   HostClass
	profile ActivityProfile
	rng     *rand.Rand

	// procMean is the AR(1) target for process memory with the
	// expected busy-session surge deducted, so the *overall* process
	// mean (including surges) matches Table 1.
	procMean float64

	// AR(1) state (KB).
	kernel, filecache, process float64
	// activity state
	busy      bool
	stateLeft time.Duration
	// extra process memory during busy sessions (the Figure 2 dips)
	busySurge float64
	// idleFor tracks contiguous inactivity for the idle predicate.
	idleFor time.Duration
}

// ar1Phi controls mean reversion per minute of simulated time.
const ar1Phi = 0.98

// expectedSurgeFrac is the long-run mean busy-session surge as a
// fraction of total memory: 15% of sessions grab 40-80% of memory (the
// deep dips of Figure 2), the rest grab 5-20%.
const expectedSurgeFrac = 0.15*0.6 + 0.85*0.125

// BusyFraction returns the long-run fraction of time a host with this
// profile spends busy, accounting for the weekday working-hours bias
// (45 of 168 weekly hours).
func (p ActivityProfile) BusyFraction() float64 {
	non := float64(p.MeanBusy) / float64(p.MeanBusy+p.MeanIdle)
	biasedIdle := float64(p.MeanIdle)
	if p.WorkBias > 0 {
		biasedIdle /= p.WorkBias
	}
	work := float64(p.MeanBusy) / (float64(p.MeanBusy) + biasedIdle)
	const workShare = 45.0 / 168.0
	return (1-workShare)*non + workShare*work
}

// NewHost creates a host of the given class, deterministically seeded.
func NewHost(class HostClass, profile ActivityProfile, seed int64) *Host {
	rng := rand.New(rand.NewSource(seed))
	surgeMean := profile.BusyFraction() * expectedSurgeFrac * float64(class.TotalKB)
	procMean := class.ProcessMeanKB - surgeMean
	if procMean < 0.1*class.ProcessMeanKB {
		procMean = 0.1 * class.ProcessMeanKB
	}
	h := &Host{
		Class:     class,
		profile:   profile,
		rng:       rng,
		procMean:  procMean,
		kernel:    class.KernelMeanKB,
		filecache: class.FileCacheMeanKB,
		process:   procMean,
		// Start idle a while ago so studies begin in steady state.
		busy:      false,
		stateLeft: time.Duration(rng.ExpFloat64() * float64(profile.MeanIdle)),
		idleFor:   time.Hour,
	}
	return h
}

// Sample is one trace observation.
type Sample struct {
	Time time.Time
	Mem  monitor.MemSample
	// Active reports console/CPU activity in the step.
	Active bool
	// Idle reports the paper's idle predicate: no activity and low
	// load for at least five minutes.
	Idle bool
}

// step one AR(1) component.
func (h *Host) ar1(x, mean, std float64) float64 {
	noise := h.rng.NormFloat64() * std * math.Sqrt(1-ar1Phi*ar1Phi)
	return mean + ar1Phi*(x-mean) + noise
}

func clamp(x, lo, hi float64) float64 {
	if x < lo {
		return lo
	}
	if x > hi {
		return hi
	}
	return x
}

// workingHours reports the weekday 9-18 window.
func workingHours(t time.Time) bool {
	wd := t.Weekday()
	if wd == time.Saturday || wd == time.Sunday {
		return false
	}
	return t.Hour() >= 9 && t.Hour() < 18
}

// Step advances the host by dt and returns the sample at the new time.
func (h *Host) Step(now time.Time, dt time.Duration) Sample {
	// Activity renewal process.
	h.stateLeft -= dt
	if h.stateLeft <= 0 {
		if h.busy {
			h.busy = false
			h.stateLeft = time.Duration(h.rng.ExpFloat64() * float64(h.profile.MeanIdle))
			if workingHours(now) && h.profile.WorkBias > 0 {
				h.stateLeft = time.Duration(float64(h.stateLeft) / h.profile.WorkBias)
			}
			h.busySurge = 0
		} else {
			h.busy = true
			h.stateLeft = time.Duration(h.rng.ExpFloat64() * float64(h.profile.MeanBusy))
			// A busy session grabs a chunk of memory: most sessions
			// take 5-20% of total, a 15% minority take 40-80% — the
			// deep dips of Figure 2.
			frac := 0.05 + 0.15*h.rng.Float64()
			if h.rng.Float64() < 0.15 {
				frac = 0.4 + 0.4*h.rng.Float64()
			}
			h.busySurge = frac * float64(h.Class.TotalKB)
		}
	}
	if h.busy {
		h.idleFor = 0
	} else {
		h.idleFor += dt
	}

	// Memory components.
	minutes := dt.Minutes()
	for i := 0; i < int(minutes+0.5); i++ {
		h.kernel = h.ar1(h.kernel, h.Class.KernelMeanKB, h.Class.KernelStdKB)
		h.filecache = h.ar1(h.filecache, h.Class.FileCacheMeanKB, h.Class.FileCacheStdKB)
		h.process = h.ar1(h.process, h.procMean, h.Class.ProcessStdKB*0.5)
	}
	total := float64(h.Class.TotalKB)
	kernel := clamp(h.kernel, 0.5*h.Class.KernelMeanKB, total)
	fc := clamp(h.filecache, 0, total)
	proc := clamp(h.process+h.busySurge, 0, total)
	// Components cannot exceed physical memory; squeeze the file cache
	// first (the OS does the same), then process memory.
	if kernel+fc+proc > total {
		over := kernel + fc + proc - total
		squeeze := math.Min(over, fc)
		fc -= squeeze
		over -= squeeze
		if over > 0 {
			proc = math.Max(0, proc-over)
		}
	}

	mem := monitor.MemSample{
		Total:     h.Class.TotalKB * KB,
		Kernel:    uint64(kernel) * KB,
		FileCache: uint64(fc) * KB,
		Process:   uint64(proc) * KB,
		LotsFree:  h.Class.TotalKB * KB / 64, // kernel keeps ~1.5% free
	}
	return Sample{
		Time:   now,
		Mem:    mem,
		Active: h.busy,
		Idle:   !h.busy && h.idleFor >= 5*time.Minute,
	}
}
