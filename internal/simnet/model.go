// Package simnet provides parametric network cost models for the two
// communication substrates evaluated in the paper: UDP/IP through the
// kernel socket stack, and U-Net, the user-level network architecture of
// von Eicken et al. Both run over the same 100 Mb/s switched Fast Ethernet
// as the paper's Beowulf cluster.
//
// The models capture the property the paper's evaluation turns on: the
// wire is identical, but UDP pays a much larger per-message and per-packet
// software overhead (system calls, kernel buffering, IP stack traversal)
// than U-Net (direct user-level NIC access). The constants are calibrated
// so that end-to-end remote-memory fetch times sit in the regime the
// paper reports (remote memory decisively beats random disk I/O, U-Net
// appreciably beats UDP, and sequential disk roughly ties the network).
package simnet

import (
	"fmt"
	"math/rand"
	"time"
)

// CostModel describes the cost of moving a message of arbitrary size
// between two hosts on the same LAN.
type CostModel struct {
	// Name identifies the model in reports ("udp", "unet").
	Name string
	// PerMessage is fixed software overhead paid once per message on
	// each side (send + receive are folded together here).
	PerMessage time.Duration
	// PerPacket is software overhead paid for every MTU-sized frame of
	// the message.
	PerPacket time.Duration
	// MTU is the maximum payload carried per frame.
	MTU int
	// Bandwidth is the achievable wire bandwidth in bytes/second.
	Bandwidth float64
	// Propagation is the one-way wire/switch propagation delay.
	Propagation time.Duration
}

// Validate reports an error if the model is not usable.
func (m CostModel) Validate() error {
	if m.MTU <= 0 {
		return fmt.Errorf("simnet: model %q: MTU %d must be positive", m.Name, m.MTU)
	}
	if m.Bandwidth <= 0 {
		return fmt.Errorf("simnet: model %q: bandwidth %f must be positive", m.Name, m.Bandwidth)
	}
	if m.PerMessage < 0 || m.PerPacket < 0 || m.Propagation < 0 {
		return fmt.Errorf("simnet: model %q: negative overhead", m.Name)
	}
	return nil
}

// Packets returns the number of MTU-sized frames needed for n bytes.
// A zero-byte message still occupies one frame (the header).
func (m CostModel) Packets(n int) int {
	if n <= 0 {
		return 1
	}
	return (n + m.MTU - 1) / m.MTU
}

// OneWay returns the time for a single n-byte message to leave the sender
// and be available at the receiver.
func (m CostModel) OneWay(n int) time.Duration {
	if n < 0 {
		n = 0
	}
	pkts := m.Packets(n)
	wire := time.Duration(float64(n) / m.Bandwidth * float64(time.Second))
	return m.PerMessage + time.Duration(pkts)*m.PerPacket + wire + m.Propagation
}

// RoundTrip returns the time for a small request followed by an n-byte
// response, the shape of every remote-memory read in Dodo.
func (m CostModel) RoundTrip(n int) time.Duration {
	return m.OneWay(64) + m.OneWay(n)
}

// Constants below are calibrated against the paper's platform (§5.1):
// 200 MHz Pentium Pro nodes, Linux 2.0.35, SMC Etherpower 10/100 (DEC
// Tulip) NICs, BayStack 350 Fast Ethernet switch.

// UDPFastEthernet models kernel UDP/IP on that platform. Linux 2.0-era
// UDP round-trip latency on Fast Ethernet was in the 200-300 µs range and
// sustained application-level bandwidth topped out near 9 MB/s.
func UDPFastEthernet() CostModel {
	return CostModel{
		Name:        "udp",
		PerMessage:  120 * time.Microsecond,
		PerPacket:   15 * time.Microsecond,
		MTU:         1500,
		Bandwidth:   9.5e6,
		Propagation: 20 * time.Microsecond,
	}
}

// UNetFastEthernet models U-Net on the same hardware: user-level NIC
// access eliminates the kernel from the data path, giving ~40 µs one-way
// small-message latency and near-wire bandwidth (~11.5 MB/s of the
// 12.5 MB/s raw).
func UNetFastEthernet() CostModel {
	return CostModel{
		Name:        "unet",
		PerMessage:  25 * time.Microsecond,
		PerPacket:   6 * time.Microsecond,
		MTU:         1500,
		Bandwidth:   11.5e6,
		Propagation: 20 * time.Microsecond,
	}
}

// ModelByName returns the calibrated model with the given name.
func ModelByName(name string) (CostModel, error) {
	switch name {
	case "udp":
		return UDPFastEthernet(), nil
	case "unet":
		return UNetFastEthernet(), nil
	}
	return CostModel{}, fmt.Errorf("simnet: unknown model %q (want \"udp\" or \"unet\")", name)
}

// Faults configures fault injection for an in-memory network. The zero
// value injects nothing.
type Faults struct {
	// LossRate is the probability in [0,1) that a frame is dropped.
	LossRate float64
	// DupRate is the probability in [0,1) that a frame is delivered twice.
	DupRate float64
	// ReorderRate is the probability in [0,1) that a frame is delayed an
	// extra ReorderDelay, letting later frames overtake it.
	ReorderRate  float64
	ReorderDelay time.Duration
	// Seed makes the injection deterministic.
	Seed int64
}

// NewInjector builds a fault injector from the configuration.
func (f Faults) NewInjector() *Injector {
	return &Injector{cfg: f, rng: rand.New(rand.NewSource(f.Seed))}
}

// Injector makes per-frame drop/duplicate/reorder decisions. It is not
// safe for concurrent use; the memnet transport serializes calls.
type Injector struct {
	cfg Faults
	rng *rand.Rand

	drops, dups, reorders, frames int
}

// Decision describes what should happen to one frame.
type Decision struct {
	Drop       bool
	Duplicate  bool
	ExtraDelay time.Duration
}

// Next returns the fate of the next frame.
func (in *Injector) Next() Decision {
	in.frames++
	var d Decision
	if in.cfg.LossRate > 0 && in.rng.Float64() < in.cfg.LossRate {
		in.drops++
		d.Drop = true
		return d
	}
	if in.cfg.DupRate > 0 && in.rng.Float64() < in.cfg.DupRate {
		in.dups++
		d.Duplicate = true
	}
	if in.cfg.ReorderRate > 0 && in.rng.Float64() < in.cfg.ReorderRate {
		in.reorders++
		d.ExtraDelay = in.cfg.ReorderDelay
	}
	return d
}

// Stats reports cumulative injection counts: frames seen, drops,
// duplicates and reorders.
func (in *Injector) Stats() (frames, drops, dups, reorders int) {
	return in.frames, in.drops, in.dups, in.reorders
}
