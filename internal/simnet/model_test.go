package simnet

import (
	"testing"
	"testing/quick"
	"time"
)

func TestValidateAcceptsCalibratedModels(t *testing.T) {
	for _, m := range []CostModel{UDPFastEthernet(), UNetFastEthernet()} {
		if err := m.Validate(); err != nil {
			t.Errorf("Validate(%s) = %v, want nil", m.Name, err)
		}
	}
}

func TestValidateRejectsBadModels(t *testing.T) {
	cases := []CostModel{
		{Name: "zero-mtu", MTU: 0, Bandwidth: 1e6},
		{Name: "neg-bw", MTU: 1500, Bandwidth: -1},
		{Name: "neg-overhead", MTU: 1500, Bandwidth: 1e6, PerMessage: -time.Second},
	}
	for _, m := range cases {
		if err := m.Validate(); err == nil {
			t.Errorf("Validate(%s) = nil, want error", m.Name)
		}
	}
}

func TestPackets(t *testing.T) {
	m := CostModel{MTU: 1500, Bandwidth: 1e6}
	cases := []struct{ n, want int }{
		{0, 1}, {-5, 1}, {1, 1}, {1500, 1}, {1501, 2}, {3000, 2}, {3001, 3},
	}
	for _, c := range cases {
		if got := m.Packets(c.n); got != c.want {
			t.Errorf("Packets(%d) = %d, want %d", c.n, got, c.want)
		}
	}
}

func TestOneWayMonotoneInSize(t *testing.T) {
	for _, m := range []CostModel{UDPFastEthernet(), UNetFastEthernet()} {
		prev := time.Duration(0)
		for n := 0; n <= 1<<20; n += 4096 {
			d := m.OneWay(n)
			if d < prev {
				t.Fatalf("%s: OneWay(%d) = %v < OneWay(%d) = %v", m.Name, n, d, n-4096, prev)
			}
			prev = d
		}
	}
}

func TestUNetBeatsUDPAtAllSizes(t *testing.T) {
	udp, unet := UDPFastEthernet(), UNetFastEthernet()
	for _, n := range []int{64, 1500, 8 << 10, 32 << 10, 128 << 10, 1 << 20} {
		if unet.RoundTrip(n) >= udp.RoundTrip(n) {
			t.Errorf("RoundTrip(%d): unet %v >= udp %v", n, unet.RoundTrip(n), udp.RoundTrip(n))
		}
	}
}

// The paper's regime: an 8 KB remote fetch must be far cheaper than the
// ~14 ms a random 8 KB disk read costs, and in the low-millisecond range.
func TestEightKBFetchRegime(t *testing.T) {
	for _, m := range []CostModel{UDPFastEthernet(), UNetFastEthernet()} {
		rt := m.RoundTrip(8 << 10)
		if rt < 500*time.Microsecond || rt > 4*time.Millisecond {
			t.Errorf("%s: RoundTrip(8KB) = %v, want within [0.5ms, 4ms]", m.Name, rt)
		}
	}
}

// Small-message latency: U-Net should be well under 100 µs one-way,
// UDP a few hundred µs.
func TestSmallMessageLatency(t *testing.T) {
	if d := UNetFastEthernet().OneWay(64); d > 100*time.Microsecond {
		t.Errorf("unet OneWay(64) = %v, want <= 100µs", d)
	}
	d := UDPFastEthernet().OneWay(64)
	if d < 100*time.Microsecond || d > 500*time.Microsecond {
		t.Errorf("udp OneWay(64) = %v, want within [100µs, 500µs]", d)
	}
}

func TestModelByName(t *testing.T) {
	for _, name := range []string{"udp", "unet"} {
		m, err := ModelByName(name)
		if err != nil || m.Name != name {
			t.Errorf("ModelByName(%q) = %v, %v", name, m.Name, err)
		}
	}
	if _, err := ModelByName("tcp"); err == nil {
		t.Error("ModelByName(tcp) = nil error, want error")
	}
}

func TestPropertyOneWayNonNegativeAndSuperadditiveOverhead(t *testing.T) {
	m := UDPFastEthernet()
	f := func(n uint16) bool {
		d := m.OneWay(int(n))
		// Splitting a message into two messages can never be cheaper
		// than sending it whole: overheads are per message.
		half := m.OneWay(int(n)/2 + int(n)%2)
		return d >= 0 && m.OneWay(int(n)/2)+half >= d
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestInjectorDeterministic(t *testing.T) {
	cfg := Faults{LossRate: 0.3, DupRate: 0.2, ReorderRate: 0.1, ReorderDelay: time.Millisecond, Seed: 42}
	a, b := cfg.NewInjector(), cfg.NewInjector()
	for i := 0; i < 1000; i++ {
		da, db := a.Next(), b.Next()
		if da != db {
			t.Fatalf("frame %d: decisions diverge: %+v vs %+v", i, da, db)
		}
	}
}

func TestInjectorZeroValuePassesEverything(t *testing.T) {
	in := Faults{}.NewInjector()
	for i := 0; i < 1000; i++ {
		if d := in.Next(); d.Drop || d.Duplicate || d.ExtraDelay != 0 {
			t.Fatalf("zero-value injector produced fault %+v", d)
		}
	}
	frames, drops, dups, reorders := in.Stats()
	if frames != 1000 || drops != 0 || dups != 0 || reorders != 0 {
		t.Fatalf("Stats() = %d %d %d %d, want 1000 0 0 0", frames, drops, dups, reorders)
	}
}

func TestInjectorLossRateApproximatelyHonored(t *testing.T) {
	in := Faults{LossRate: 0.25, Seed: 7}.NewInjector()
	drops := 0
	const n = 20000
	for i := 0; i < n; i++ {
		if in.Next().Drop {
			drops++
		}
	}
	rate := float64(drops) / n
	if rate < 0.22 || rate > 0.28 {
		t.Fatalf("observed loss rate %.3f, want ~0.25", rate)
	}
}

func TestInjectorDropPreemptsOtherFaults(t *testing.T) {
	in := Faults{LossRate: 1.0, DupRate: 1.0, ReorderRate: 1.0, ReorderDelay: time.Second, Seed: 1}.NewInjector()
	d := in.Next()
	if !d.Drop || d.Duplicate || d.ExtraDelay != 0 {
		t.Fatalf("decision = %+v, want pure drop", d)
	}
}

func BenchmarkOneWay8KB(b *testing.B) {
	m := UNetFastEthernet()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		_ = m.OneWay(8 << 10)
	}
}
