// Package sim provides the deterministic simulation substrate used by the
// trace-driven and virtual-time experiments: a virtual clock and a
// discrete-event queue.
//
// All daemon and client-runtime code is written against the small Clock
// interface so that the same code paths run in real time (WallClock) during
// live deployments and integration tests, and in virtual time
// (VirtualClock) during the deterministic benchmark harness that
// regenerates the paper's figures.
package sim

import (
	"sync"
	"time"
)

// Clock abstracts time for components that must run both live and under
// simulation. Implementations must be safe for concurrent use.
type Clock interface {
	// Now returns the current time on this clock.
	Now() time.Time
	// Sleep blocks the caller for d. On a virtual clock, Sleep only
	// returns once simulated time has advanced past the deadline.
	Sleep(d time.Duration)
}

// WallClock is the real-time clock. The zero value is ready to use.
type WallClock struct{}

// Now returns the current wall-clock time.
func (WallClock) Now() time.Time { return time.Now() }

// Sleep pauses the calling goroutine for d of real time.
func (WallClock) Sleep(d time.Duration) { time.Sleep(d) }

// VirtualClock is a manually advanced clock. Time moves only when Advance
// or Run is called, which makes every experiment using it fully
// deterministic and allows multi-hour workloads to complete in
// milliseconds.
//
// VirtualClock is also an event queue: callbacks scheduled with After fire,
// in timestamp order, as the clock passes their deadline. Ties are broken
// by scheduling order so runs are reproducible.
type VirtualClock struct {
	mu sync.Mutex
	// dodo:guardedby mu
	now time.Time
	// dodo:guardedby mu
	heap eventHeap
	// dodo:guardedby mu
	seq uint64
}

// NewVirtualClock returns a virtual clock positioned at start.
func NewVirtualClock(start time.Time) *VirtualClock {
	return &VirtualClock{now: start}
}

// Now returns the current virtual time.
func (c *VirtualClock) Now() time.Time {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.now
}

// Sleep advances virtual time by d. Unlike a real clock it never blocks:
// the single-threaded simulation driver owns time, so sleeping *is*
// advancing. Events scheduled in the skipped interval fire in order.
func (c *VirtualClock) Sleep(d time.Duration) { c.Advance(d) }

// After schedules fn to run when the clock reaches now+d. It returns a
// Timer that can cancel the callback. fn runs on the goroutine that
// advances the clock, with no locks held.
func (c *VirtualClock) After(d time.Duration, fn func()) *Timer {
	c.mu.Lock()
	defer c.mu.Unlock()
	if d < 0 {
		d = 0
	}
	ev := &event{at: c.now.Add(d), seq: c.seq, fn: fn}
	c.seq++
	c.heap.push(ev)
	return &Timer{clock: c, ev: ev}
}

// Advance moves virtual time forward by d, firing every event whose
// deadline falls within the interval, in deadline order.
func (c *VirtualClock) Advance(d time.Duration) {
	if d < 0 {
		return
	}
	c.mu.Lock()
	deadline := c.now.Add(d)
	for {
		ev := c.heap.peek()
		if ev == nil || ev.at.After(deadline) {
			break
		}
		c.heap.pop()
		if ev.cancelled {
			continue
		}
		c.now = ev.at
		c.mu.Unlock()
		ev.fn()
		c.mu.Lock()
	}
	if c.now.Before(deadline) {
		c.now = deadline
	}
	c.mu.Unlock()
}

// RunUntilIdle fires all pending events in order, advancing time to each
// event's deadline, until the queue is empty. It returns the number of
// events fired.
func (c *VirtualClock) RunUntilIdle() int {
	fired := 0
	for {
		c.mu.Lock()
		ev := c.heap.pop()
		if ev == nil {
			c.mu.Unlock()
			return fired
		}
		if ev.cancelled {
			c.mu.Unlock()
			continue
		}
		c.now = ev.at
		c.mu.Unlock()
		ev.fn()
		fired++
	}
}

// Pending reports the number of scheduled, uncancelled events.
func (c *VirtualClock) Pending() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	n := 0
	for _, ev := range c.heap.events {
		if !ev.cancelled {
			n++
		}
	}
	return n
}

// Timer is a handle to a scheduled callback on a VirtualClock.
type Timer struct {
	clock *VirtualClock
	ev    *event
}

// Stop cancels the callback if it has not fired yet. It reports whether
// the cancellation happened before the event fired.
func (t *Timer) Stop() bool {
	t.clock.mu.Lock()
	defer t.clock.mu.Unlock()
	if t.ev.fired || t.ev.cancelled {
		return false
	}
	t.ev.cancelled = true
	return true
}

type event struct {
	at        time.Time
	seq       uint64
	fn        func()
	cancelled bool
	fired     bool
}

// eventHeap is a binary min-heap ordered by (at, seq).
type eventHeap struct {
	events []*event
}

func (h *eventHeap) less(i, j int) bool {
	a, b := h.events[i], h.events[j]
	if a.at.Equal(b.at) {
		return a.seq < b.seq
	}
	return a.at.Before(b.at)
}

func (h *eventHeap) push(ev *event) {
	h.events = append(h.events, ev)
	i := len(h.events) - 1
	for i > 0 {
		parent := (i - 1) / 2
		if !h.less(i, parent) {
			break
		}
		h.events[i], h.events[parent] = h.events[parent], h.events[i]
		i = parent
	}
}

func (h *eventHeap) peek() *event {
	// Skip over cancelled events at the top so deadline checks see the
	// next live event.
	for len(h.events) > 0 && h.events[0].cancelled {
		h.pop()
	}
	if len(h.events) == 0 {
		return nil
	}
	return h.events[0]
}

func (h *eventHeap) pop() *event {
	if len(h.events) == 0 {
		return nil
	}
	top := h.events[0]
	last := len(h.events) - 1
	h.events[0] = h.events[last]
	h.events = h.events[:last]
	i := 0
	for {
		l, r := 2*i+1, 2*i+2
		smallest := i
		if l < len(h.events) && h.less(l, smallest) {
			smallest = l
		}
		if r < len(h.events) && h.less(r, smallest) {
			smallest = r
		}
		if smallest == i {
			break
		}
		h.events[i], h.events[smallest] = h.events[smallest], h.events[i]
		i = smallest
	}
	top.fired = true
	return top
}

// SleepInterruptible sleeps for d on the given clock, waking early when
// stop closes. It reports whether the full duration elapsed (false when
// interrupted). Long sleeps are taken in small chunks so daemon loops
// shut down promptly regardless of their configured interval.
func SleepInterruptible(c Clock, d time.Duration, stop <-chan struct{}) bool {
	const chunk = 200 * time.Millisecond
	deadline := c.Now().Add(d)
	for {
		select {
		case <-stop:
			return false
		default:
		}
		now := c.Now()
		if !now.Before(deadline) {
			return true
		}
		rem := deadline.Sub(now)
		if rem > chunk {
			rem = chunk
		}
		c.Sleep(rem)
	}
}
