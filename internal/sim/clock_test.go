package sim

import (
	"math/rand"
	"sort"
	"sync"
	"testing"
	"testing/quick"
	"time"
)

var epoch = time.Date(1999, 8, 1, 0, 0, 0, 0, time.UTC)

func TestWallClockNow(t *testing.T) {
	var c WallClock
	before := time.Now()
	got := c.Now()
	after := time.Now()
	if got.Before(before) || got.After(after) {
		t.Fatalf("WallClock.Now() = %v, want within [%v, %v]", got, before, after)
	}
}

func TestVirtualClockStartsAtGivenTime(t *testing.T) {
	c := NewVirtualClock(epoch)
	if got := c.Now(); !got.Equal(epoch) {
		t.Fatalf("Now() = %v, want %v", got, epoch)
	}
}

func TestVirtualClockAdvance(t *testing.T) {
	c := NewVirtualClock(epoch)
	c.Advance(3 * time.Second)
	if got, want := c.Now(), epoch.Add(3*time.Second); !got.Equal(want) {
		t.Fatalf("Now() = %v, want %v", got, want)
	}
}

func TestVirtualClockSleepAdvances(t *testing.T) {
	c := NewVirtualClock(epoch)
	c.Sleep(time.Minute)
	if got, want := c.Now(), epoch.Add(time.Minute); !got.Equal(want) {
		t.Fatalf("Now() after Sleep = %v, want %v", got, want)
	}
}

func TestVirtualClockNegativeAdvanceIsNoop(t *testing.T) {
	c := NewVirtualClock(epoch)
	c.Advance(-time.Second)
	if got := c.Now(); !got.Equal(epoch) {
		t.Fatalf("Now() = %v, want unchanged %v", got, epoch)
	}
}

func TestAfterFiresAtDeadline(t *testing.T) {
	c := NewVirtualClock(epoch)
	var firedAt time.Time
	c.After(10*time.Second, func() { firedAt = c.Now() })
	c.Advance(9 * time.Second)
	if !firedAt.IsZero() {
		t.Fatal("event fired before its deadline")
	}
	c.Advance(2 * time.Second)
	if want := epoch.Add(10 * time.Second); !firedAt.Equal(want) {
		t.Fatalf("event fired at %v, want %v", firedAt, want)
	}
}

func TestAfterNegativeDelayFiresImmediatelyOnAdvance(t *testing.T) {
	c := NewVirtualClock(epoch)
	fired := false
	c.After(-time.Second, func() { fired = true })
	c.Advance(0)
	if !fired {
		t.Fatal("event with negative delay did not fire on Advance(0)")
	}
}

func TestEventsFireInDeadlineOrder(t *testing.T) {
	c := NewVirtualClock(epoch)
	var order []int
	c.After(3*time.Second, func() { order = append(order, 3) })
	c.After(1*time.Second, func() { order = append(order, 1) })
	c.After(2*time.Second, func() { order = append(order, 2) })
	c.Advance(10 * time.Second)
	if len(order) != 3 || order[0] != 1 || order[1] != 2 || order[2] != 3 {
		t.Fatalf("fire order = %v, want [1 2 3]", order)
	}
}

func TestTieBreakBySchedulingOrder(t *testing.T) {
	c := NewVirtualClock(epoch)
	var order []int
	for i := 0; i < 10; i++ {
		i := i
		c.After(time.Second, func() { order = append(order, i) })
	}
	c.Advance(time.Second)
	for i, v := range order {
		if v != i {
			t.Fatalf("tie-broken order = %v, want ascending scheduling order", order)
		}
	}
}

func TestTimerStop(t *testing.T) {
	c := NewVirtualClock(epoch)
	fired := false
	timer := c.After(time.Second, func() { fired = true })
	if !timer.Stop() {
		t.Fatal("Stop() = false on pending timer, want true")
	}
	c.Advance(2 * time.Second)
	if fired {
		t.Fatal("cancelled event fired")
	}
	if timer.Stop() {
		t.Fatal("second Stop() = true, want false")
	}
}

func TestTimerStopAfterFire(t *testing.T) {
	c := NewVirtualClock(epoch)
	timer := c.After(time.Second, func() {})
	c.Advance(2 * time.Second)
	if timer.Stop() {
		t.Fatal("Stop() after fire = true, want false")
	}
}

func TestEventScheduledDuringCallbackFires(t *testing.T) {
	c := NewVirtualClock(epoch)
	var firedAt []time.Duration
	c.After(time.Second, func() {
		firedAt = append(firedAt, c.Now().Sub(epoch))
		c.After(time.Second, func() {
			firedAt = append(firedAt, c.Now().Sub(epoch))
		})
	})
	c.Advance(5 * time.Second)
	if len(firedAt) != 2 || firedAt[0] != time.Second || firedAt[1] != 2*time.Second {
		t.Fatalf("cascade fire times = %v, want [1s 2s]", firedAt)
	}
}

func TestRunUntilIdle(t *testing.T) {
	c := NewVirtualClock(epoch)
	count := 0
	c.After(time.Hour, func() { count++ })
	c.After(time.Minute, func() {
		count++
		c.After(time.Minute, func() { count++ })
	})
	fired := c.RunUntilIdle()
	if fired != 3 || count != 3 {
		t.Fatalf("RunUntilIdle fired %d events (count %d), want 3", fired, count)
	}
	if got, want := c.Now(), epoch.Add(time.Hour); !got.Equal(want) {
		t.Fatalf("clock ended at %v, want %v", got, want)
	}
}

func TestPendingCountsLiveEvents(t *testing.T) {
	c := NewVirtualClock(epoch)
	t1 := c.After(time.Second, func() {})
	c.After(2*time.Second, func() {})
	if got := c.Pending(); got != 2 {
		t.Fatalf("Pending() = %d, want 2", got)
	}
	t1.Stop()
	if got := c.Pending(); got != 1 {
		t.Fatalf("Pending() after Stop = %d, want 1", got)
	}
}

func TestAdvanceSetsNowToEventTimeDuringCallback(t *testing.T) {
	c := NewVirtualClock(epoch)
	var seen time.Time
	c.After(7*time.Second, func() { seen = c.Now() })
	c.Advance(time.Hour)
	if want := epoch.Add(7 * time.Second); !seen.Equal(want) {
		t.Fatalf("Now() inside callback = %v, want %v", seen, want)
	}
}

func TestConcurrentAfterIsSafe(t *testing.T) {
	c := NewVirtualClock(epoch)
	var wg sync.WaitGroup
	var mu sync.Mutex
	count := 0
	for i := 0; i < 50; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			c.After(time.Duration(i)*time.Millisecond, func() {
				mu.Lock()
				count++
				mu.Unlock()
			})
		}(i)
	}
	wg.Wait()
	c.Advance(time.Second)
	if count != 50 {
		t.Fatalf("fired %d events, want 50", count)
	}
}

// TestPropertyEventOrdering: for any set of delays, events fire in
// nondecreasing deadline order and all of them fire.
func TestPropertyEventOrdering(t *testing.T) {
	f := func(delaysMs []uint16) bool {
		c := NewVirtualClock(epoch)
		var fired []time.Time
		for _, d := range delaysMs {
			c.After(time.Duration(d)*time.Millisecond, func() {
				fired = append(fired, c.Now())
			})
		}
		c.RunUntilIdle()
		if len(fired) != len(delaysMs) {
			return false
		}
		return sort.SliceIsSorted(fired, func(i, j int) bool { return fired[i].Before(fired[j]) })
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

// TestPropertyAdvanceSplit: advancing by d1 then d2 fires the same events
// as advancing by d1+d2 in one step.
func TestPropertyAdvanceSplit(t *testing.T) {
	f := func(seed int64, d1, d2 uint16) bool {
		run := func(split bool) []int {
			rng := rand.New(rand.NewSource(seed))
			c := NewVirtualClock(epoch)
			var order []int
			for i := 0; i < 20; i++ {
				i := i
				c.After(time.Duration(rng.Intn(100))*time.Millisecond, func() {
					order = append(order, i)
				})
			}
			if split {
				c.Advance(time.Duration(d1) * time.Millisecond)
				c.Advance(time.Duration(d2) * time.Millisecond)
			} else {
				c.Advance(time.Duration(int(d1)+int(d2)) * time.Millisecond)
			}
			return order
		}
		a, b := run(true), run(false)
		if len(a) != len(b) {
			return false
		}
		for i := range a {
			if a[i] != b[i] {
				return false
			}
		}
		return true
	}
	cfg := &quick.Config{MaxCount: 100}
	if err := quick.Check(f, cfg); err != nil {
		t.Fatal(err)
	}
}

func BenchmarkVirtualClockAfterAdvance(b *testing.B) {
	c := NewVirtualClock(epoch)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		c.After(time.Millisecond, func() {})
		if i%1024 == 1023 {
			c.Advance(time.Second)
		}
	}
	c.RunUntilIdle()
}
