package sim

import (
	"sync"
	"testing"
	"time"
)

func TestAfterFuncVirtual(t *testing.T) {
	vc := NewVirtualClock(time.Unix(0, 0))
	fired := 0
	AfterFunc(vc, 5*time.Second, func() { fired++ })
	vc.Advance(4 * time.Second)
	if fired != 0 {
		t.Fatalf("fired %d times before deadline", fired)
	}
	vc.Advance(2 * time.Second)
	if fired != 1 {
		t.Fatalf("fired %d times, want 1", fired)
	}
}

func TestAfterFuncVirtualStop(t *testing.T) {
	vc := NewVirtualClock(time.Unix(0, 0))
	fired := false
	timer := AfterFunc(vc, time.Second, func() { fired = true })
	if !timer.Stop() {
		t.Fatal("Stop before firing reported false")
	}
	vc.Advance(2 * time.Second)
	if fired {
		t.Fatal("cancelled timer fired")
	}
	if timer.Stop() {
		t.Fatal("second Stop reported true")
	}
}

func TestAfterFuncWall(t *testing.T) {
	done := make(chan struct{})
	AfterFunc(WallClock{}, time.Millisecond, func() { close(done) })
	select {
	case <-done:
	case <-time.After(5 * time.Second):
		t.Fatal("wall-clock AfterFunc never fired")
	}
}

func TestNewTimerVirtual(t *testing.T) {
	vc := NewVirtualClock(time.Unix(0, 0))
	ch, _ := NewTimer(vc, 3*time.Second)
	vc.Advance(5 * time.Second)
	select {
	case at := <-ch:
		if want := time.Unix(3, 0); !at.Equal(want) {
			t.Fatalf("timer delivered %v, want %v", at, want)
		}
	default:
		t.Fatal("virtual timer did not deliver")
	}
}

func TestNewTimerStop(t *testing.T) {
	vc := NewVirtualClock(time.Unix(0, 0))
	ch, timer := NewTimer(vc, 3*time.Second)
	if !timer.Stop() {
		t.Fatal("Stop reported false")
	}
	vc.Advance(5 * time.Second)
	select {
	case <-ch:
		t.Fatal("stopped timer delivered")
	default:
	}
}

func TestTickVirtual(t *testing.T) {
	vc := NewVirtualClock(time.Unix(0, 0))
	stop := make(chan struct{})
	ch := Tick(vc, time.Second, stop)
	ticks := 0
	for i := 0; i < 3; i++ {
		vc.Advance(time.Second)
		select {
		case <-ch:
			ticks++
		default:
			t.Fatalf("no tick after advance %d", i+1)
		}
	}
	close(stop)
	vc.Advance(10 * time.Second)
	if vc.Pending() != 0 {
		t.Fatalf("%d events still pending after stop", vc.Pending())
	}
	if ticks != 3 {
		t.Fatalf("got %d ticks, want 3", ticks)
	}
}

func TestTickWallStops(t *testing.T) {
	stop := make(chan struct{})
	ch := Tick(WallClock{}, time.Millisecond, stop)
	select {
	case <-ch:
	case <-time.After(5 * time.Second):
		t.Fatal("wall-clock tick never arrived")
	}
	close(stop)
}

func TestCondWaitTimeoutReady(t *testing.T) {
	var mu sync.Mutex
	cond := sync.NewCond(&mu)
	ready := false
	go func() {
		time.Sleep(5 * time.Millisecond)
		mu.Lock()
		ready = true
		cond.Broadcast()
		mu.Unlock()
	}()
	mu.Lock()
	ok := CondWaitTimeout(cond, time.Second, func() bool { return ready })
	mu.Unlock()
	if !ok {
		t.Fatal("CondWaitTimeout timed out despite ready")
	}
}

func TestCondWaitTimeoutExpires(t *testing.T) {
	var mu sync.Mutex
	cond := sync.NewCond(&mu)
	mu.Lock()
	start := time.Now()
	ok := CondWaitTimeout(cond, 10*time.Millisecond, func() bool { return false })
	mu.Unlock()
	if ok {
		t.Fatal("CondWaitTimeout reported ready on a never-ready condition")
	}
	if elapsed := time.Since(start); elapsed < 10*time.Millisecond {
		t.Fatalf("returned after %v, before the timeout", elapsed)
	}
}

func TestCondWaitTimeoutBlocking(t *testing.T) {
	var mu sync.Mutex
	cond := sync.NewCond(&mu)
	ready := false
	done := make(chan struct{})
	go func() {
		mu.Lock()
		CondWaitTimeout(cond, 0, func() bool { return ready })
		mu.Unlock()
		close(done)
	}()
	time.Sleep(5 * time.Millisecond)
	mu.Lock()
	ready = true
	cond.Broadcast()
	mu.Unlock()
	select {
	case <-done:
	case <-time.After(5 * time.Second):
		t.Fatal("blocking CondWaitTimeout never woke")
	}
}
