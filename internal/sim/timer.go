package sim

import (
	"sync"
	"time"
)

// StopTimer is the cancellation handle shared by wall-clock and
// virtual-clock timers. Stop reports whether the timer was cancelled
// before it fired.
type StopTimer interface {
	Stop() bool
}

type wallTimer struct{ t *time.Timer }

func (w wallTimer) Stop() bool { return w.t.Stop() }

// AfterFunc schedules fn to run once clock c passes now+d and returns a
// handle that can cancel it. On a VirtualClock the callback fires
// deterministically, in deadline order, on the goroutine advancing the
// clock; on any other clock it falls back to time.AfterFunc.
func AfterFunc(c Clock, d time.Duration, fn func()) StopTimer {
	if vc, ok := c.(*VirtualClock); ok {
		return vc.After(d, fn)
	}
	return wallTimer{time.AfterFunc(d, fn)}
}

// NewTimer returns a channel that delivers the clock's time once, at
// now+d, together with a stop handle. The channel has capacity 1, so
// the firing never blocks the clock.
func NewTimer(c Clock, d time.Duration) (<-chan time.Time, StopTimer) {
	if vc, ok := c.(*VirtualClock); ok {
		ch := make(chan time.Time, 1)
		t := vc.After(d, func() { ch <- vc.Now() })
		return ch, t
	}
	t := time.NewTimer(d)
	return t.C, wallTimer{t}
}

// Tick returns a channel delivering the clock's time every interval
// until stop closes. Unlike time.Tick nothing leaks: the wall-clock
// goroutine exits on stop, and on a VirtualClock the chain of events
// ends once stop is observed. Ticks are dropped, not queued, when the
// consumer lags.
func Tick(c Clock, interval time.Duration, stop <-chan struct{}) <-chan time.Time {
	ch := make(chan time.Time, 1)
	if vc, ok := c.(*VirtualClock); ok {
		var schedule func()
		schedule = func() {
			vc.After(interval, func() {
				select {
				case <-stop:
					return
				default:
				}
				select {
				case ch <- vc.Now():
				default:
				}
				schedule()
			})
		}
		schedule()
		return ch
	}
	go func() {
		t := time.NewTicker(interval)
		defer t.Stop()
		for {
			select {
			case <-stop:
				return
			case now := <-t.C:
				select {
				case ch <- now:
				default:
				}
			}
		}
	}()
	return ch
}

// CondWaitTimeout waits on cond until ready() reports true or timeout
// expires, and reports whether ready became true. The caller must hold
// cond.L, and still holds it when CondWaitTimeout returns.
//
// With timeout <= 0 it degenerates to a plain cond.Wait loop. With a
// positive timeout it polls: sync.Cond has no timed wait, so the lock
// is dropped for at most a millisecond at a time until the deadline.
// The queues this guards are low-traffic test fabrics, where the
// simplicity beats a channel-based rewrite.
func CondWaitTimeout(cond *sync.Cond, timeout time.Duration, ready func() bool) bool {
	if timeout <= 0 {
		for !ready() {
			cond.Wait()
		}
		return true
	}
	deadline := time.Now().Add(timeout)
	for !ready() {
		remaining := time.Until(deadline)
		if remaining <= 0 {
			return false
		}
		wakeup := remaining
		if wakeup > time.Millisecond {
			wakeup = time.Millisecond
		}
		cond.L.Unlock()
		time.Sleep(wakeup)
		cond.L.Lock()
	}
	return true
}
