package sim

import (
	"sync"
	"time"
)

// StopTimer is the cancellation handle shared by wall-clock and
// virtual-clock timers. Stop reports whether the timer was cancelled
// before it fired.
type StopTimer interface {
	Stop() bool
}

type wallTimer struct{ t *time.Timer }

func (w wallTimer) Stop() bool { return w.t.Stop() }

// AfterFunc schedules fn to run once clock c passes now+d and returns a
// handle that can cancel it. On a VirtualClock the callback fires
// deterministically, in deadline order, on the goroutine advancing the
// clock; on any other clock it falls back to time.AfterFunc.
func AfterFunc(c Clock, d time.Duration, fn func()) StopTimer {
	if vc, ok := c.(*VirtualClock); ok {
		return vc.After(d, fn)
	}
	return wallTimer{time.AfterFunc(d, fn)}
}

// NewTimer returns a channel that delivers the clock's time once, at
// now+d, together with a stop handle. The channel has capacity 1, so
// the firing never blocks the clock.
func NewTimer(c Clock, d time.Duration) (<-chan time.Time, StopTimer) {
	if vc, ok := c.(*VirtualClock); ok {
		ch := make(chan time.Time, 1)
		t := vc.After(d, func() { ch <- vc.Now() })
		return ch, t
	}
	t := time.NewTimer(d)
	return t.C, wallTimer{t}
}

// Tick returns a channel delivering the clock's time every interval
// until stop closes. Unlike time.Tick nothing leaks: the wall-clock
// goroutine exits on stop, and on a VirtualClock the chain of events
// ends once stop is observed. Ticks are dropped, not queued, when the
// consumer lags.
func Tick(c Clock, interval time.Duration, stop <-chan struct{}) <-chan time.Time {
	ch := make(chan time.Time, 1)
	if vc, ok := c.(*VirtualClock); ok {
		var schedule func()
		schedule = func() {
			vc.After(interval, func() {
				select {
				case <-stop:
					return
				default:
				}
				select {
				case ch <- vc.Now():
				default:
				}
				schedule()
			})
		}
		schedule()
		return ch
	}
	go func() {
		t := time.NewTicker(interval)
		defer t.Stop()
		for {
			select {
			case <-stop:
				return
			case now := <-t.C:
				select {
				case ch <- now:
				default:
				}
			}
		}
	}()
	return ch
}

// CondWaitTimeout waits on cond until ready() reports true or timeout
// expires, and reports whether ready became true. The caller must hold
// cond.L, and still holds it when CondWaitTimeout returns. Producers
// must Signal or Broadcast cond when the condition may have changed.
//
// With timeout <= 0 it degenerates to a plain cond.Wait loop. With a
// positive timeout, a one-shot timer broadcasts the cond at the
// deadline, so waiters wake the instant a producer signals rather than
// on a polling tick — the receive path of the in-memory and usocket
// transports sits under every RPC round trip, and polling here puts a
// floor under the whole system's latency.
func CondWaitTimeout(cond *sync.Cond, timeout time.Duration, ready func() bool) bool {
	if timeout <= 0 {
		for !ready() {
			cond.Wait()
		}
		return true
	}
	expired := false
	timer := time.AfterFunc(timeout, func() {
		// Take the lock so the flag flip cannot slip between a waiter's
		// ready/expired check and its cond.Wait (a lost wakeup).
		cond.L.Lock()
		expired = true
		cond.L.Unlock()
		cond.Broadcast()
	})
	defer timer.Stop()
	for !ready() {
		if expired {
			return false
		}
		cond.Wait()
	}
	return true
}
