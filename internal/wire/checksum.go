package wire

import "hash/crc32"

// castagnoli is the CRC32-C polynomial table used for end-to-end page
// checksums. Castagnoli is the conventional choice for storage-path
// integrity (iSCSI, ext4, Btrfs): it catches the burst and bit-flip
// patterns a mangled DMA or a flaky NIC produces.
var castagnoli = crc32.MakeTable(crc32.Castagnoli)

// Checksum computes the end-to-end page checksum carried on DataResp,
// WriteReq and HandoffPage frames: CRC32-C over the raw page bytes.
// The wire convention is that a zero Crc field means "unchecked" (test
// rigs and legacy peers omit it); a genuine checksum that lands on
// zero therefore degrades to an unchecked frame — a 2^-32 missed
// check, never a false rejection.
func Checksum(data []byte) uint32 {
	return crc32.Checksum(data, castagnoli)
}
