// Package wire defines Dodo's binary wire protocol: the message types
// exchanged among the central manager daemon (cmd), the resource monitor
// daemons (rmd), the idle memory daemons (imd) and the client runtime
// library, together with their encoding.
//
// Every message travels as a fixed 12-byte header followed by a typed
// payload. Encoding is explicit big-endian binary (no reflection) so the
// format is stable, allocation-light and identical across transports
// (kernel UDP, the U-Net usocket layer, and the in-memory test network).
package wire

import (
	"encoding/binary"
	"errors"
	"fmt"
	"math"
)

// Protocol constants.
const (
	// Magic marks every Dodo frame. 0xD0D0: the bird.
	Magic uint16 = 0xD0D0
	// Version is the protocol version carried in every header.
	Version uint8 = 1
	// HeaderSize is the encoded size of a frame header.
	HeaderSize = 12
	// MaxPayload bounds a single message payload. Bulk data is split
	// across BulkData frames well below this bound.
	MaxPayload = 1 << 20
)

// Type identifies a message type.
type Type uint8

// Message types. Grouped by the pair of components that exchange them.
const (
	TInvalid Type = iota

	// Client <-> central manager.
	TAllocReq
	TAllocResp
	TFreeReq
	TFreeResp
	TCheckAllocReq
	TCheckAllocResp
	TKeepAlive
	TKeepAliveAck

	// rmd/imd <-> central manager.
	THostStatus
	THostStatusAck
	TIMDAllocReq
	TIMDAllocResp
	TIMDFreeReq
	TIMDFreeResp

	// Client <-> imd data path.
	TReadReq
	TWriteReq
	TDataResp

	// Bulk transfer sub-protocol.
	TBulkOffer
	TBulkAccept
	TBulkData
	TBulkNack
	TBulkDone

	// Introspection (dodo-ctl <-> cmd).
	TClusterStatsReq
	TClusterStatsResp

	// Graceful-reclaim handoff (draining imd <-> cmd, imd <-> imd).
	THandoffOffer
	THandoffAccept
	THandoffPage
	THandoffDone

	// Manager crash-recovery: imd inventory re-report (imd <-> cmd).
	TInventoryReport
	TInventoryAck

	// Fast-path data plane: batched region fetch (client <-> imd).
	TReadBatchReq
	TReadBatchResp

	typeSentinel // keep last
)

var typeNames = map[Type]string{
	TInvalid:        "invalid",
	TAllocReq:       "alloc-req",
	TAllocResp:      "alloc-resp",
	TFreeReq:        "free-req",
	TFreeResp:       "free-resp",
	TCheckAllocReq:  "check-alloc-req",
	TCheckAllocResp: "check-alloc-resp",
	TKeepAlive:      "keep-alive",
	TKeepAliveAck:   "keep-alive-ack",
	THostStatus:     "host-status",
	THostStatusAck:  "host-status-ack",
	TIMDAllocReq:    "imd-alloc-req",
	TIMDAllocResp:   "imd-alloc-resp",
	TIMDFreeReq:     "imd-free-req",
	TIMDFreeResp:    "imd-free-resp",
	TReadReq:        "read-req",
	TWriteReq:       "write-req",
	TDataResp:       "data-resp",
	TBulkOffer:      "bulk-offer",
	TBulkAccept:     "bulk-accept",
	TBulkData:       "bulk-data",
	TBulkNack:       "bulk-nack",
	TBulkDone:       "bulk-done",

	TClusterStatsReq:  "cluster-stats-req",
	TClusterStatsResp: "cluster-stats-resp",

	THandoffOffer:  "handoff-offer",
	THandoffAccept: "handoff-accept",
	THandoffPage:   "handoff-page",
	THandoffDone:   "handoff-done",

	TInventoryReport: "inventory-report",
	TInventoryAck:    "inventory-ack",

	TReadBatchReq:  "read-batch-req",
	TReadBatchResp: "read-batch-resp",
}

// Caps is a bitmask of optional protocol features a peer supports.
// Hosts advertise theirs in HostStatus announces, the manager relays
// them in AllocResp/CheckAllocResp, and clients piggyback their own on
// KeepAliveAck — so either end of a data-path conversation knows which
// fast paths the other understands and can fall back to the legacy
// ladder otherwise. A zero Caps means "legacy peer": absence of the
// field decodes as zero, which is exactly the right answer for frames
// produced by builds that predate it.
type Caps uint32

// Capability bits.
const (
	// CapInlineRead: a ReadReq that fits one MTU frame may be answered
	// by a DataResp carrying the payload inline (one round trip).
	CapInlineRead Caps = 1 << iota
	// CapEagerRead: DataResp doubles as the bulk offer and the first
	// window is blasted without waiting for a BulkAccept.
	CapEagerRead
	// CapBatchRead: the peer understands ReadBatchReq/ReadBatchResp.
	CapBatchRead
)

// LocalCaps is the full capability set of this build.
const LocalCaps = CapInlineRead | CapEagerRead | CapBatchRead

func (t Type) String() string {
	if s, ok := typeNames[t]; ok {
		return s
	}
	return fmt.Sprintf("wire.Type(%d)", uint8(t))
}

// Status is the result code carried in every response, mirroring the
// errno-style results of the paper's API (§3.2).
type Status uint8

// Status codes.
const (
	StatusOK Status = iota
	// StatusNoMem: allocation failed for lack of idle memory (ENOMEM).
	StatusNoMem
	// StatusInvalid: malformed request or bad arguments (EINVAL).
	StatusInvalid
	// StatusNotFound: region unknown to the receiver.
	StatusNotFound
	// StatusStale: the region's epoch does not match the host's current
	// epoch; the hosting imd restarted since allocation.
	StatusStale
	// StatusBusy: host was reclaimed by its owner; imd is draining.
	StatusBusy
)

var statusNames = map[Status]string{
	StatusOK:       "ok",
	StatusNoMem:    "no-memory",
	StatusInvalid:  "invalid",
	StatusNotFound: "not-found",
	StatusStale:    "stale-epoch",
	StatusBusy:     "host-busy",
}

func (s Status) String() string {
	if n, ok := statusNames[s]; ok {
		return n
	}
	return fmt.Sprintf("wire.Status(%d)", uint8(s))
}

// Errors returned by the codec.
var (
	ErrBadMagic    = errors.New("wire: bad magic")
	ErrBadVersion  = errors.New("wire: unsupported version")
	ErrBadType     = errors.New("wire: unknown message type")
	ErrShortFrame  = errors.New("wire: frame shorter than declared payload")
	ErrOversize    = errors.New("wire: payload exceeds MaxPayload")
	ErrTruncated   = errors.New("wire: truncated payload")
	ErrFieldBounds = errors.New("wire: field exceeds bounds")
)

// Header is the fixed preamble of every frame.
type Header struct {
	Type Type
	// Seq correlates a response with its request. The requester picks
	// it; responders echo it.
	Seq uint32
	// PayloadLen is the byte length of the payload that follows.
	PayloadLen uint32
}

// PutHeader encodes h into buf, which must be at least HeaderSize bytes.
func PutHeader(buf []byte, h Header) {
	binary.BigEndian.PutUint16(buf[0:2], Magic)
	buf[2] = Version
	buf[3] = uint8(h.Type)
	binary.BigEndian.PutUint32(buf[4:8], h.Seq)
	binary.BigEndian.PutUint32(buf[8:12], h.PayloadLen)
}

// ParseHeader decodes and validates a frame header.
func ParseHeader(buf []byte) (Header, error) {
	if len(buf) < HeaderSize {
		return Header{}, ErrTruncated
	}
	if binary.BigEndian.Uint16(buf[0:2]) != Magic {
		return Header{}, ErrBadMagic
	}
	if buf[2] != Version {
		return Header{}, ErrBadVersion
	}
	t := Type(buf[3])
	if t == TInvalid || t >= typeSentinel {
		return Header{}, ErrBadType
	}
	h := Header{
		Type:       t,
		Seq:        binary.BigEndian.Uint32(buf[4:8]),
		PayloadLen: binary.BigEndian.Uint32(buf[8:12]),
	}
	if h.PayloadLen > MaxPayload {
		return Header{}, ErrOversize
	}
	if uint32(len(buf)-HeaderSize) < h.PayloadLen {
		return Header{}, ErrShortFrame
	}
	return h, nil
}

// RegionKey identifies a region in the central manager's region directory.
// Per §4.3 it is the (inode-number-of-backing-file, offset-in-file) pair;
// ClientID extends the key for multi-client configurations (the paper's
// footnote 4 plans exactly this extension).
type RegionKey struct {
	Inode    uint64
	Offset   int64
	ClientID uint32
}

func (k RegionKey) String() string {
	return fmt.Sprintf("region(%d@%d/c%d)", k.Inode, k.Offset, k.ClientID)
}

const regionKeySize = 8 + 8 + 4

func putRegionKey(buf []byte, k RegionKey) int {
	binary.BigEndian.PutUint64(buf[0:8], k.Inode)
	binary.BigEndian.PutUint64(buf[8:16], uint64(k.Offset))
	binary.BigEndian.PutUint32(buf[16:20], k.ClientID)
	return regionKeySize
}

func getRegionKey(buf []byte) (RegionKey, int, error) {
	if len(buf) < regionKeySize {
		return RegionKey{}, 0, ErrTruncated
	}
	return RegionKey{
		Inode:    binary.BigEndian.Uint64(buf[0:8]),
		Offset:   int64(binary.BigEndian.Uint64(buf[8:16])),
		ClientID: binary.BigEndian.Uint32(buf[16:20]),
	}, regionKeySize, nil
}

// Region is the descriptor the central manager hands back on allocation:
// the host serving the region, the region's identifier and pool offset on
// that host, its length, and the host's epoch at allocation time (§4.3).
type Region struct {
	// HostAddr is the transport address of the hosting imd.
	HostAddr string
	// RegionID is the imd-local identifier of the region.
	RegionID uint64
	// PoolOffset is the region's offset within the imd memory pool.
	PoolOffset uint64
	// Length is the region length in bytes.
	Length uint64
	// Epoch is the hosting imd's epoch when the region was allocated.
	Epoch uint64
}

func putString(buf []byte, s string) (int, error) {
	if len(s) > math.MaxUint16 {
		return 0, ErrFieldBounds
	}
	binary.BigEndian.PutUint16(buf[0:2], uint16(len(s)))
	copy(buf[2:], s)
	return 2 + len(s), nil
}

func getString(buf []byte) (string, int, error) {
	if len(buf) < 2 {
		return "", 0, ErrTruncated
	}
	n := int(binary.BigEndian.Uint16(buf[0:2]))
	if len(buf) < 2+n {
		return "", 0, ErrTruncated
	}
	return string(buf[2 : 2+n]), 2 + n, nil
}

func putRegion(buf []byte, r Region) (int, error) {
	n, err := putString(buf, r.HostAddr)
	if err != nil {
		return 0, err
	}
	binary.BigEndian.PutUint64(buf[n:], r.RegionID)
	binary.BigEndian.PutUint64(buf[n+8:], r.PoolOffset)
	binary.BigEndian.PutUint64(buf[n+16:], r.Length)
	binary.BigEndian.PutUint64(buf[n+24:], r.Epoch)
	return n + 32, nil
}

func getRegion(buf []byte) (Region, int, error) {
	addr, n, err := getString(buf)
	if err != nil {
		return Region{}, 0, err
	}
	if len(buf) < n+32 {
		return Region{}, 0, ErrTruncated
	}
	return Region{
		HostAddr:   addr,
		RegionID:   binary.BigEndian.Uint64(buf[n:]),
		PoolOffset: binary.BigEndian.Uint64(buf[n+8:]),
		Length:     binary.BigEndian.Uint64(buf[n+16:]),
		Epoch:      binary.BigEndian.Uint64(buf[n+24:]),
	}, n + 32, nil
}

func (r Region) encodedSize() int { return 2 + len(r.HostAddr) + 32 }
