package wire

import "encoding/binary"

// ReadBatchItem names one region read within a batched fetch: the same
// (RegionID, Epoch, Offset, Length) quad a ReadReq carries.
type ReadBatchItem struct {
	RegionID uint64
	Epoch    uint64
	Offset   uint64
	Length   uint64
}

const readBatchItemSize = 32

// ReadBatchReq asks an imd for several regions in one control exchange
// (client -> imd data path): the prefetch pipeline's replacement for one
// full ReadReq ladder per region. The served bytes travel as ONE stream —
// the concatenation of per-item slots, each exactly item.Length long
// (short or failed items are zero-padded so the stream length is
// sum(Length), predictable before the response arrives). The requester
// chooses the bulk transfer id (XferID) and pre-registers its receive
// state, exactly as in an eager ReadReq, so the response stream can be
// blasted without an offer/accept exchange; when the whole response fits
// one MTU frame it comes back inline in the ReadBatchResp instead.
// Batched fetch is only sent to peers that advertised CapBatchRead.
type ReadBatchReq struct {
	Caps      Caps
	XferID    uint64
	ChunkSize uint32
	Window    uint32
	Items     []ReadBatchItem
}

func (*ReadBatchReq) Kind() Type { return TReadBatchReq }
func (m *ReadBatchReq) payloadSize() int {
	return 22 + readBatchItemSize*len(m.Items)
}
func (m *ReadBatchReq) encode(b []byte) error {
	if len(m.Items) > math16max {
		return ErrFieldBounds
	}
	binary.BigEndian.PutUint32(b[0:], uint32(m.Caps))
	binary.BigEndian.PutUint64(b[4:], m.XferID)
	binary.BigEndian.PutUint32(b[12:], m.ChunkSize)
	binary.BigEndian.PutUint32(b[16:], m.Window)
	binary.BigEndian.PutUint16(b[20:], uint16(len(m.Items)))
	at := 22
	for _, it := range m.Items {
		binary.BigEndian.PutUint64(b[at:], it.RegionID)
		binary.BigEndian.PutUint64(b[at+8:], it.Epoch)
		binary.BigEndian.PutUint64(b[at+16:], it.Offset)
		binary.BigEndian.PutUint64(b[at+24:], it.Length)
		at += readBatchItemSize
	}
	return nil
}
func (m *ReadBatchReq) decode(b []byte) error {
	if len(b) < 22 {
		return ErrTruncated
	}
	m.Caps = Caps(binary.BigEndian.Uint32(b[0:]))
	m.XferID = binary.BigEndian.Uint64(b[4:])
	m.ChunkSize = binary.BigEndian.Uint32(b[12:])
	m.Window = binary.BigEndian.Uint32(b[16:])
	count := int(binary.BigEndian.Uint16(b[20:]))
	if len(b) < 22+readBatchItemSize*count {
		return ErrTruncated
	}
	m.Items = nil
	if count > 0 {
		m.Items = make([]ReadBatchItem, 0, count)
	}
	at := 22
	for i := 0; i < count; i++ {
		m.Items = append(m.Items, ReadBatchItem{
			RegionID: binary.BigEndian.Uint64(b[at:]),
			Epoch:    binary.BigEndian.Uint64(b[at+8:]),
			Offset:   binary.BigEndian.Uint64(b[at+16:]),
			Length:   binary.BigEndian.Uint64(b[at+24:]),
		})
		at += readBatchItemSize
	}
	return nil
}

// ReadBatchResult reports one item's outcome: its status, the count of
// valid leading bytes within the item's slot in the stream, and the
// CRC32C over those bytes (zero means unchecked).
type ReadBatchResult struct {
	Status Status
	Count  uint64
	Crc    uint32
}

const readBatchResultSize = 13

// ReadBatchResp answers a ReadBatchReq (imd -> client). Results aligns
// with the request's Items. With DataFlagInline set, Payload carries the
// whole slot stream in this frame; with DataFlagEager set, the stream is
// already being blasted under TransferID (the requester's XferID). A
// Status other than StatusOK with no Results means the batch as a whole
// was refused (e.g. stale epoch) and no stream follows.
type ReadBatchResp struct {
	Status     Status
	TransferID uint64
	Flags      uint8
	Results    []ReadBatchResult
	Payload    []byte
}

func (*ReadBatchResp) Kind() Type { return TReadBatchResp }
func (m *ReadBatchResp) payloadSize() int {
	return 12 + readBatchResultSize*len(m.Results) + len(m.Payload)
}
func (m *ReadBatchResp) encode(b []byte) error {
	if len(m.Results) > math16max {
		return ErrFieldBounds
	}
	b[0] = uint8(m.Status)
	binary.BigEndian.PutUint64(b[1:], m.TransferID)
	b[9] = m.Flags
	binary.BigEndian.PutUint16(b[10:], uint16(len(m.Results)))
	at := 12
	for _, r := range m.Results {
		b[at] = uint8(r.Status)
		binary.BigEndian.PutUint64(b[at+1:], r.Count)
		binary.BigEndian.PutUint32(b[at+9:], r.Crc)
		at += readBatchResultSize
	}
	copy(b[at:], m.Payload)
	return nil
}
func (m *ReadBatchResp) decode(b []byte) error {
	if len(b) < 12 {
		return ErrTruncated
	}
	m.Status = Status(b[0])
	m.TransferID = binary.BigEndian.Uint64(b[1:])
	m.Flags = b[9]
	count := int(binary.BigEndian.Uint16(b[10:]))
	if len(b) < 12+readBatchResultSize*count {
		return ErrTruncated
	}
	m.Results = nil
	if count > 0 {
		m.Results = make([]ReadBatchResult, 0, count)
	}
	at := 12
	for i := 0; i < count; i++ {
		m.Results = append(m.Results, ReadBatchResult{
			Status: Status(b[at]),
			Count:  binary.BigEndian.Uint64(b[at+1:]),
			Crc:    binary.BigEndian.Uint32(b[at+9:]),
		})
		at += readBatchResultSize
	}
	m.Payload = nil
	if len(b) > at {
		m.Payload = append([]byte(nil), b[at:]...)
	}
	return nil
}
