package wire

import (
	"bytes"
	"reflect"
	"testing"
)

// FuzzWireRoundTrip drives arbitrary byte strings through the codec and
// checks the Marshal/Unmarshal symmetry on everything that decodes:
//
//   - Decode either rejects the frame or returns a message whose Kind
//     matches the header type;
//   - re-encoding the decoded message yields a frame whose header
//     PayloadLen is exactly the payload length on the wire;
//   - the re-encoded frame decodes to a deeply equal message — the
//     canonical form is a fixed point of Decode ∘ Encode.
//
// The seed corpus holds one zero-valued frame per registered wire type
// (so every decoder is exercised from the first run) plus populated
// frames covering the variable-length fields: strings, NACK lists,
// bulk payloads and host tables.
func FuzzWireRoundTrip(f *testing.F) {
	for t := TInvalid + 1; t < typeSentinel; t++ {
		msg := newMessage(t)
		if msg == nil {
			f.Fatalf("newMessage(%v) returned nil for a registered type", t)
		}
		frame, err := Encode(7, msg)
		if err != nil {
			f.Fatalf("Encode(zero %v): %v", t, err)
		}
		f.Add(frame)
	}
	populated := []Message{
		&AllocReq{Key: RegionKey{Inode: 42, Offset: 1 << 20, ClientID: 3}, Length: 8 << 20},
		&AllocResp{Status: StatusOK, Region: Region{HostAddr: "ws-3:7070", RegionID: 9, PoolOffset: 4096, Length: 1 << 20, Epoch: 5}},
		&HostStatus{HostAddr: "ws-1:7071", State: HostIdle, Epoch: 2, AvailBytes: 64 << 20, LargestFree: 16 << 20},
		&BulkData{TransferID: 11, Seq: 3, Payload: []byte("0123456789abcdef")},
		&BulkNack{TransferID: 11, Missing: []uint32{1, 4, 9}},
		&ClusterStatsResp{
			Status:  StatusOK,
			Hosts:   []HostInfo{{Addr: "ws-2:7070", Epoch: 1, AvailBytes: 32 << 20, LargestFree: 8 << 20}},
			Regions: 4, Clients: 2, Allocs: 17, Frees: 13,
			HandoffOffers: 2, HandoffPagesMoved: 5, ClientHedgedReads: 3,
		},
		&HandoffOffer{HostAddr: "ws-1:7071", Epoch: 4, Regions: []HandoffRegion{
			{RegionID: 3, Length: 1 << 16, Reads: 12},
			{RegionID: 7, Length: 1 << 18, Reads: 2},
		}},
		&HandoffAccept{Status: StatusOK, Grants: []HandoffGrant{
			{OldRegionID: 3, Target: Region{HostAddr: "ws-2:7070", RegionID: 41, PoolOffset: 0, Length: 1 << 16, Epoch: 9}},
		}},
		&HandoffPage{RegionID: 41, Epoch: 9, Length: 1 << 16, TransferID: 77, Crc: 0xDEADBEEF},
		&HandoffDone{HostAddr: "ws-1:7071", OldRegionID: 3, Status: StatusOK},
		&KeepAliveAck{ClientID: 7, Drops: 2, ChecksumFailures: 3, CorruptHosts: []HostCount{
			{Addr: "ws-1:7071", Count: 2},
			{Addr: "ws-2:7070", Count: 1},
		}},
		&InventoryReport{
			HostAddr: "ws-2:7070", Epoch: 3, Incarnation: 2,
			AvailBytes: 48 << 20, LargestFree: 16 << 20,
			Regions: []InventoryRegion{
				{RegionID: 1<<32 | 5, PoolOffset: 0, Length: 1 << 16, WriteSeq: 9,
					Key: RegionKey{Inode: 42, Offset: 0, ClientID: 3}, Client: "client-3"},
				{RegionID: 1<<32 | 6, PoolOffset: 1 << 16, Length: 1 << 17, WriteSeq: 0,
					Key: RegionKey{Inode: 42, Offset: 1 << 16, ClientID: 3}},
			},
		},
		&InventoryAck{Status: StatusStale, Incarnation: 4},
		// Fast-path data plane: extended read request (eager fields in
		// the optional trailer), inline and eager response forms, the
		// batched read exchange, and every capability-carrying trailer.
		&ReadReq{RegionID: 9, Epoch: 5, Offset: 4096, Length: 1 << 16,
			Caps: LocalCaps, XferID: 77, ChunkSize: 1408, Window: 32},
		&DataResp{Status: StatusOK, Count: 16, Crc: 0xFEEDF00D,
			Flags: DataFlagInline, Payload: []byte("0123456789abcdef")},
		&DataResp{Status: StatusOK, Count: 1 << 16, TransferID: 77,
			Crc: 0xFEEDF00D, Flags: DataFlagEager},
		&ReadBatchReq{Caps: LocalCaps, XferID: 78, ChunkSize: 1408, Window: 32,
			Items: []ReadBatchItem{
				{RegionID: 9, Epoch: 5, Offset: 0, Length: 4096},
				{RegionID: 10, Epoch: 5, Offset: 8192, Length: 1 << 14},
			}},
		&ReadBatchResp{Status: StatusOK, TransferID: 78, Flags: DataFlagEager,
			Results: []ReadBatchResult{
				{Status: StatusOK, Count: 4096, Crc: 0xCAFEF00D},
				{Status: StatusStale, Count: 0},
			}},
		&ReadBatchResp{Status: StatusOK, Flags: DataFlagInline,
			Results: []ReadBatchResult{{Status: StatusOK, Count: 8, Crc: 1}},
			Payload: []byte("8bytes!!")},
		&HostStatus{HostAddr: "ws-4:7071", State: HostIdle, Epoch: 3,
			AvailBytes: 32 << 20, LargestFree: 8 << 20, Caps: LocalCaps},
		&AllocResp{Status: StatusOK, HostCaps: LocalCaps,
			Region: Region{HostAddr: "ws-4:7071", RegionID: 12, Length: 1 << 16, Epoch: 3}},
		&CheckAllocResp{Status: StatusOK, Incarnation: 2, HostCaps: LocalCaps},
		&KeepAliveAck{ClientID: 7, Caps: LocalCaps},
	}
	for _, msg := range populated {
		frame, err := Encode(99, msg)
		if err != nil {
			f.Fatalf("Encode(%T): %v", msg, err)
		}
		f.Add(frame)
	}
	// A few deliberately broken frames so the fuzzer starts near the
	// rejection paths too.
	f.Add([]byte{})
	f.Add([]byte{0xD0, 0xD0, 1, 0xFF, 0, 0, 0, 0, 0, 0, 0, 0})
	f.Add(bytes.Repeat([]byte{0xD0}, HeaderSize+4))

	f.Fuzz(func(t *testing.T, frame []byte) {
		h, msg, err := Decode(frame)
		if err != nil {
			return // rejection is a valid outcome; crashes are not
		}
		if msg.Kind() != h.Type {
			t.Fatalf("decoded %T.Kind() = %v, header says %v", msg, msg.Kind(), h.Type)
		}
		re, err := Encode(h.Seq, msg)
		if err != nil {
			t.Fatalf("re-encoding decoded %T: %v", msg, err)
		}
		h2, msg2, err := Decode(re)
		if err != nil {
			t.Fatalf("decoding re-encoded %T: %v", msg, err)
		}
		if h2.Type != h.Type || h2.Seq != h.Seq {
			t.Fatalf("header changed across round trip: %+v -> %+v", h, h2)
		}
		if int(HeaderSize)+int(h2.PayloadLen) != len(re) {
			t.Fatalf("%T: PayloadLen %d inconsistent with frame length %d", msg, h2.PayloadLen, len(re))
		}
		if !reflect.DeepEqual(msg, msg2) {
			t.Fatalf("%T not a fixed point of Decode∘Encode:\n first: %+v\nsecond: %+v", msg, msg, msg2)
		}
		// Canonical form must be stable: encoding again reproduces the
		// same bytes.
		re2, err := Encode(h.Seq, msg2)
		if err != nil {
			t.Fatalf("third encode of %T: %v", msg, err)
		}
		if !bytes.Equal(re, re2) {
			t.Fatalf("%T: canonical encoding not stable", msg)
		}
	})
}
