package wire

import (
	"encoding/binary"
	"sync"
)

// Frame pool: transmit-side buffers for the data plane. The hot path
// encodes one BulkData frame per packet; allocating each from the heap
// made the garbage collector a participant in every bulk transfer.
// Frames here are recycled through a sync.Pool instead.
//
// Ownership rule (checked by the resource-lifecycle vet pass via the
// dodo:acquires/releases annotations below): whoever calls GetFrame
// returns that frame with PutFrame, and does so only after the last
// read of it. A frame handed to a transport Send/SendVec may be
// returned as soon as the call returns — every transport either copies
// the frame before queueing it (mem, usocket) or hands it to the kernel
// synchronously (UDP) — which is what lets senders pair GetFrame with
// an immediate `defer PutFrame`.

// pooledFrameSize is the capacity of pooled frames: big enough for a
// full frame on the largest-MTU transport (kernel UDP, 63 KiB) with
// header room to spare. Larger requests fall through to the heap.
const pooledFrameSize = 64 << 10

var framePool = sync.Pool{
	New: func() any {
		b := make([]byte, pooledFrameSize)
		return &b
	},
}

// GetFrame returns a frame buffer of length n, recycled from the pool
// when n fits a pooled frame and freshly allocated otherwise. The
// buffer's contents are arbitrary; the caller must overwrite every byte
// it sends.
//
// dodo:acquires(frame)
func GetFrame(n int) []byte {
	if n > pooledFrameSize {
		return make([]byte, n)
	}
	p := framePool.Get().(*[]byte)
	return (*p)[:n]
}

// PutFrame returns a frame obtained from GetFrame to the pool. Oversize
// frames (heap-allocated by GetFrame) are left for the garbage
// collector. The frame must not be touched after PutFrame.
//
// dodo:releases(frame)
func PutFrame(b []byte) {
	if cap(b) != pooledFrameSize {
		return
	}
	b = b[:pooledFrameSize]
	framePool.Put(&b)
}

// EncodePooled is Encode into a pooled frame: same wire bytes, but the
// returned frame came from GetFrame and the caller must hand it to
// PutFrame once the transport send returns.
//
// dodo:acquires(frame)
func EncodePooled(seq uint32, msg Message) ([]byte, error) {
	n := msg.payloadSize()
	if n > MaxPayload {
		return nil, ErrOversize
	}
	frame := GetFrame(HeaderSize + n)
	PutHeader(frame, Header{Type: msg.Kind(), Seq: seq, PayloadLen: uint32(n)})
	if err := msg.encode(frame[HeaderSize:]); err != nil {
		PutFrame(frame)
		return nil, err
	}
	return frame, nil
}

// InlineDataLimit is the largest payload a DataResp can carry inline on
// a transport with the given MTU: the frame header and the extended
// DataResp fixed fields (the 21 legacy bytes plus the flags byte) must
// fit alongside it. Requesters use it to predict whether a read will
// come back inline; responders use it to decide.
func InlineDataLimit(mtu int) int { return mtu - HeaderSize - 22 }

// BulkDataPrefixSize is the encoded size of everything in a BulkData
// frame that precedes the payload: the frame header plus the fixed
// TransferID/Seq fields.
const BulkDataPrefixSize = HeaderSize + 12

// PutBulkDataPrefix encodes the header and fixed fields of a BulkData
// frame carrying payloadLen payload bytes into buf (at least
// BulkDataPrefixSize long). It is the scatter-gather half of a BulkData
// send: pair it with a transport SendVec whose second element is the
// payload itself, and no per-packet payload copy happens on this side.
func PutBulkDataPrefix(buf []byte, id uint64, seq uint32, payloadLen int) {
	PutHeader(buf, Header{Type: TBulkData, Seq: 0, PayloadLen: uint32(12 + payloadLen)})
	binary.BigEndian.PutUint64(buf[HeaderSize:], id)
	binary.BigEndian.PutUint32(buf[HeaderSize+8:], seq)
}

// DecodeBulkData parses a BulkData frame in place. Unlike Decode, the
// returned payload ALIASES frame's backing array — it is valid only
// until the receive buffer is reused, so the caller must copy the bytes
// it keeps before returning. This is the receive-side half of the
// zero-copy bulk pipeline: the hot path copies each payload exactly
// once, straight into the assembling transfer buffer. Any frame that is
// not a well-formed BulkData returns an error; callers fall back to the
// general Decode.
func DecodeBulkData(frame []byte) (id uint64, seq uint32, payload []byte, err error) {
	h, err := ParseHeader(frame)
	if err != nil {
		return 0, 0, nil, err
	}
	if h.Type != TBulkData {
		return 0, 0, nil, ErrBadType
	}
	if h.PayloadLen < 12 {
		return 0, 0, nil, ErrTruncated
	}
	b := frame[HeaderSize : HeaderSize+int(h.PayloadLen)]
	id = binary.BigEndian.Uint64(b[0:])
	seq = binary.BigEndian.Uint32(b[8:])
	return id, seq, b[12:], nil
}
